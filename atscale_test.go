package atscale_test

import (
	"strings"
	"testing"

	"atscale"
)

func TestFacadeMachineRoundTrip(t *testing.T) {
	m, err := atscale.NewMachine(atscale.DefaultSystem(), atscale.Page2M, 1)
	if err != nil {
		t.Fatal(err)
	}
	va, err := m.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	m.Store64(va, 123)
	if m.Load64(va) != 123 {
		t.Error("facade machine lost data")
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	if len(atscale.Workloads()) < 16 {
		t.Errorf("only %d workloads registered", len(atscale.Workloads()))
	}
	if len(atscale.PaperWorkloads()) != 13 {
		t.Errorf("paper workload count = %d", len(atscale.PaperWorkloads()))
	}
	spec, err := atscale.WorkloadByName("cc-kron")
	if err != nil || spec.Program != "cc" || spec.Generator != "kron" {
		t.Errorf("WorkloadByName: %+v, %v", spec, err)
	}
}

func TestFacadeRunAndMetrics(t *testing.T) {
	cfg := atscale.DefaultRunConfig()
	cfg.Budget = 60_000
	spec, err := atscale.WorkloadByName("stride-synth")
	if err != nil {
		t.Fatal(err)
	}
	r, err := atscale.Run(&cfg, spec, 24, atscale.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.Instructions == 0 || r.Metrics.CPI <= 0 {
		t.Errorf("metrics degenerate: %+v", r.Metrics)
	}
	if d := r.Metrics.Eq1.Product() - r.Metrics.WCPI; d > 1e-9 || d < -1e-9 {
		t.Errorf("Eq1 identity broken through the facade: product %v vs WCPI %v",
			r.Metrics.Eq1.Product(), r.Metrics.WCPI)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(atscale.Experiments()) != 22 {
		t.Errorf("experiment registry has %d entries", len(atscale.Experiments()))
	}
	exp, err := atscale.ExperimentByID("tables")
	if err != nil {
		t.Fatal(err)
	}
	cfg := atscale.DefaultRunConfig()
	cfg.Budget = 10_000
	r, err := exp.Run(atscale.NewSession(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "Table III") {
		t.Error("tables experiment render incomplete")
	}
}
