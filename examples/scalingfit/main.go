// Scalingfit: reproduce the paper's core scaling result (§V-A) in
// miniature — sweep one workload's footprint ladder, measure relative AT
// overhead, and fit overhead = b0 + b1*log10(M).
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"atscale"
)

func main() {
	cfg := atscale.DefaultRunConfig()
	cfg.Preset = atscale.PresetSmall
	cfg.Budget = 800_000
	cfg.Log = os.Stderr

	session := atscale.NewSession(cfg)
	fig2, err := atscale.Fig2(session) // the cc-urand deep dive
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %14s\n", "footprint", "log10(M)", "rel overhead")
	for _, p := range fig2.Points {
		fmt.Printf("%-12d %10.2f %13.1f%%\n",
			p.Footprint>>20, math.Log10(float64(p.Footprint)), 100*p.RelOverhead)
	}
	fit := fig2.Fit
	fmt.Printf("\nfit: overhead = %.3f + %.3f * log10(M), adjusted R2 = %.3f\n",
		fit.Const, fit.Slope, fit.AdjR2)
	fmt.Println("a 10x footprint increase costs", fmt.Sprintf("%.1f%%", 100*fit.Slope),
		"additional relative AT overhead (paper: ~13% on real hardware)")
}
