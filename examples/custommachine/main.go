// Custommachine: the simulated system is fully configurable — this
// example doubles the STLB and quadruples the paging-structure caches and
// measures how much walk pressure that removes from a TLB-thrashing
// workload. This is the kind of what-if the paper motivates virtual
// memory researchers to run.
package main

import (
	"fmt"
	"log"

	"atscale"
)

func measure(cfg atscale.SystemConfig, label string) {
	m, err := atscale.NewMachine(cfg, atscale.Page4K, 1)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := atscale.WorkloadByName("mcf-rand")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := spec.Build(m, 1<<18) // ~70MB network
	if err != nil {
		log.Fatal(err)
	}
	start := m.Counters()
	inst.Run(1_500_000)
	met := atscale.ComputeMetrics(atscale.CounterDelta(start, m.Counters()))
	fmt.Printf("%-22s %s\n", label, met.Summary())
}

func main() {
	base := atscale.DefaultSystem()
	measure(base, "haswell-ep (default)")

	bigger := atscale.DefaultSystem()
	bigger.Name = "haswell-ep+stlb2048"
	bigger.STLB.Entries = 2048
	measure(bigger, "2x STLB")

	psc := atscale.DefaultSystem()
	psc.Name = "haswell-ep+psc4x"
	psc.PSC.PML4Entries *= 4
	psc.PSC.PDPTEntries *= 4
	psc.PSC.PDEntries *= 4
	measure(psc, "4x MMU caches")

	both := atscale.DefaultSystem()
	both.Name = "haswell-ep+both"
	both.STLB.Entries = 2048
	both.PSC.PDEntries *= 4
	measure(both, "both")
}
