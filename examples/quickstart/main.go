// Quickstart: run one workload on the simulated machine and read the
// paper's headline metric (walk cycles per instruction) off the
// perf-style counters.
package main

import (
	"fmt"
	"log"

	"atscale"
)

func main() {
	// A simulated Haswell-EP memory system with a 4 KB-backed heap.
	m, err := atscale.NewMachine(atscale.DefaultSystem(), atscale.Page4K, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Build a BFS-on-uniform-random-graph instance (GAP benchmark
	// style); scale 16 = 64K vertices, ~2M directed edges.
	spec, err := atscale.WorkloadByName("bfs-urand")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := spec.Build(m, 16)
	if err != nil {
		log.Fatal(err)
	}

	// Measure a two-million-access region.
	start := m.Counters()
	inst.Run(2_000_000)
	metrics := atscale.ComputeMetrics(atscale.CounterDelta(start, m.Counters()))

	fmt.Printf("workload:   %s (footprint %d MB)\n", spec.Name(), m.Footprint()>>20)
	fmt.Printf("CPI:        %.3f\n", metrics.CPI)
	fmt.Printf("WCPI:       %.4f  (walk cycles per instruction)\n", metrics.WCPI)
	fmt.Printf("Eq.1 terms: %.3f acc/inst x %.5f miss/acc x %.2f loads/walk x %.1f cyc/load\n",
		metrics.Eq1.AccessesPerInstruction, metrics.Eq1.TLBMissesPerAccess,
		metrics.Eq1.WalkerLoadsPerWalk, metrics.Eq1.CyclesPerWalkerLoad)
	fmt.Printf("identity:   product = %.4f (must equal WCPI)\n", metrics.Eq1.Product())

	ret, wp, ab := metrics.Outcomes.Fractions()
	fmt.Printf("walks:      %d initiated = %.1f%% retired + %.1f%% wrong-path + %.1f%% aborted\n",
		metrics.Outcomes.Initiated, 100*ret, 100*wp, 100*ab)
}
