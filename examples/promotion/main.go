// Promotion: the paper's discussion proposes WCPI as an online heuristic
// for OS hugepage allocation. This example enables the simulated OS's
// WCPI-guided promotion policy (a khugepaged analogue gated on walk
// cycles per instruction) on a translation-thrashing workload and watches
// it converge toward static 2 MB backing.
package main

import (
	"fmt"
	"log"

	"atscale"
)

func run(label string, policy atscale.PageSize, promote bool) {
	spec, err := atscale.WorkloadByName("mcf-rand")
	if err != nil {
		log.Fatal(err)
	}
	cfg := atscale.DefaultRunConfig()
	cfg.Budget = 1_200_000
	cfg.EnablePromotion = promote
	r, err := atscale.Run(&cfg, spec, 1<<18, policy) // ~70MB network
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %s\n", label, r.Metrics.Summary())
}

func main() {
	fmt.Println("mcf-rand, ~70MB network:")
	run("4KB pages", atscale.Page4K, false)
	run("4KB + WCPI promotion", atscale.Page4K, true)
	run("2MB pages (static)", atscale.Page2M, false)
	fmt.Println("\nthe online policy should recover most of the 4KB->2MB gap")
}
