// Hugepages: apply the paper's §III methodology to one workload — run it
// under 4 KB, 2 MB and 1 GB heap backing and compute the relative address
// translation overhead against the min(2MB, 1GB) baseline.
//
// The run also demonstrates the §III-B subtlety the baseline exists for:
// below 1 GB footprints the 1 GB policy falls back to 4 KB pages and
// loses to 2 MB.
package main

import (
	"fmt"
	"log"

	"atscale"
)

func main() {
	cfg := atscale.DefaultRunConfig()
	cfg.Budget = 1_000_000

	spec, err := atscale.WorkloadByName("uniform-synth")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("uniform random accesses, footprint sweep:")
	fmt.Printf("%-10s %10s %10s %10s %14s\n", "footprint", "CPI 4K", "CPI 2M", "CPI 1G", "rel overhead")
	for _, logBytes := range []uint64{26, 28, 30, 31} { // 64MB .. 2GB
		p, err := atscale.MeasureOverhead(&cfg, spec, logBytes)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %10.2f %10.2f %10.2f %13.1f%%\n",
			uint64(1)<<(logBytes-20), p.CPI4K, p.CPI2M, p.CPI1G, 100*p.RelOverhead)
	}
	fmt.Println("\nnote: below a 1GB footprint the 1GB policy backs the heap with 4KB")
	fmt.Println("pages (pool granularity), so CPI 1G ~= CPI 4K there — the reason the")
	fmt.Println("paper's baseline is min(t_2MB, t_1GB).")
}
