// Walkoutcomes: classify page table walks with the paper's Table VI
// formulae and watch wrong-path and aborted walks grow as a graph
// workload's footprint scales (§V-D).
package main

import (
	"fmt"
	"log"

	"atscale"
)

func main() {
	spec, err := atscale.WorkloadByName("bc-urand")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("bc-urand walk outcomes by graph scale (4KB pages):")
	fmt.Printf("%-8s %-10s %10s %9s %11s %9s\n",
		"scale", "footprint", "initiated", "retired", "wrong-path", "aborted")
	for _, scale := range []uint64{14, 16, 18, 20} {
		m, err := atscale.NewMachine(atscale.DefaultSystem(), atscale.Page4K, 1)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := spec.Build(m, scale)
		if err != nil {
			log.Fatal(err)
		}
		start := m.Counters()
		inst.Run(1_000_000)
		metrics := atscale.ComputeMetrics(atscale.CounterDelta(start, m.Counters()))
		o := metrics.Outcomes
		ret, wp, ab := o.Fractions()
		fmt.Printf("%-8d %-10d %10d %8.1f%% %10.1f%% %8.1f%%\n",
			scale, m.Footprint()>>20, o.Initiated, 100*ret, 100*wp, 100*ab)
	}
	fmt.Println("\nfootprint in MB. Wrong path = completed - retired; aborted =")
	fmt.Println("initiated - completed (Table VI).")
}
