// Benchmarks: one per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out.
//
// Experiment benchmarks share one measurement session: the first bench to
// need a workload's sweep measures it; later benches reuse the memoized
// points. Custom metrics surface each experiment's headline number (the
// fitted slope, the best correlation, the top wrong-path fraction) so a
// bench run doubles as a quick reproduction check:
//
//	go test -bench=. -benchmem
//
// ATSCALE_BENCH_PRESET overrides the ladder preset (tiny|small|medium|
// large; default small) — scripts/bench.sh and the CI bench smoke step
// use tiny to keep the suite to seconds.
package atscale_test

import (
	"os"
	"sync"
	"testing"

	"atscale"
)

// benchBudget keeps the full bench suite to minutes. Raise it (or run
// cmd/atscale -size large) for the full reproduction.
const benchBudget = 400_000

// benchPreset resolves the suite's ladder preset from the environment.
func benchPreset() atscale.SizePreset {
	switch os.Getenv("ATSCALE_BENCH_PRESET") {
	case "tiny":
		return atscale.PresetTiny
	case "medium":
		return atscale.PresetMedium
	case "large":
		return atscale.PresetLarge
	default:
		return atscale.PresetSmall
	}
}

var sessionOnce sync.Once
var sharedSession *atscale.Session

func session() *atscale.Session {
	sessionOnce.Do(func() {
		cfg := atscale.DefaultRunConfig()
		cfg.Preset = benchPreset()
		cfg.Budget = benchBudget
		sharedSession = atscale.NewSession(cfg)
	})
	return sharedSession
}

var sinkString string

func benchExperiment(b *testing.B, id string) {
	exp, err := atscale.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(session())
		if err != nil {
			b.Fatal(err)
		}
		sinkString = r.Render()
	}
}

// BenchmarkTables regenerates the Table I-III inventories.
func BenchmarkTables(b *testing.B) { benchExperiment(b, "tables") }

// BenchmarkFig1 regenerates Figure 1 (overhead vs footprint, all
// workloads) and reports the mean overhead at the largest rung.
func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := atscale.Fig1(session())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		var n int
		for _, pts := range r.ByWorkload {
			if len(pts) > 0 {
				sum += pts[len(pts)-1].RelOverhead
				n++
			}
		}
		mean = sum / float64(n)
		sinkString = r.Render()
	}
	b.ReportMetric(100*mean, "mean-top-overhead-%")
}

// BenchmarkFig2 regenerates Figure 2 and reports the fitted slope and
// adjusted R² (paper: slope ~0.135, adjR² 0.973 for cc-urand).
func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := atscale.Fig2(session())
		if err != nil {
			b.Fatal(err)
		}
		sinkString = r.Render()
		b.ReportMetric(r.Fit.Slope, "slope")
		b.ReportMetric(r.Fit.AdjR2, "adjR2")
	}
}

// BenchmarkFig3 regenerates Figure 3 (the exception workloads).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTable4 regenerates Table IV and reports the mean log10(M)
// coefficient over strong fits (paper: 0.13).
func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := atscale.Table4(session())
		if err != nil {
			b.Fatal(err)
		}
		sinkString = r.Render()
		if mean, n := r.MeanSlopeStrongFits(0.9); n > 0 {
			b.ReportMetric(mean, "mean-strong-slope")
			b.ReportMetric(float64(n), "strong-fits")
		}
	}
}

// BenchmarkTable5 regenerates Table V and reports WCPI's correlations
// (paper: Pearson 0.567, Spearman 0.768 — the best/near-best of the five
// candidate metrics).
func BenchmarkTable5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := atscale.Table5(session())
		if err != nil {
			b.Fatal(err)
		}
		sinkString = r.Render()
		last := r.Inter[len(r.Inter)-1] // WCPI row
		b.ReportMetric(last.Pearson, "wcpi-pearson")
		b.ReportMetric(last.Spearman, "wcpi-spearman")
	}
}

// BenchmarkFig4 regenerates the Figure 4 scatter.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates the Figure 5 intra-workload curve.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates the Figure 6 component breakdown.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 and reports the largest non-retired
// walk fraction seen (paper: up to 57%).
func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := atscale.Fig7(session())
		if err != nil {
			b.Fatal(err)
		}
		sinkString = r.Render()
		var worst float64
		for _, row := range r.Rows {
			if nr := row.WrongPath + row.Aborted; nr > worst {
				worst = nr
			}
		}
		b.ReportMetric(100*worst, "max-non-retired-%")
	}
}

// BenchmarkTable6 evaluates the Table VI formulae on live counters.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkFig8 regenerates the Figure 8 PTE-location bands.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (clears vs wrong-path walks).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates the Figure 10 superpage study and reports
// the WCPI reduction factor 2 MB pages deliver at the largest footprint.
func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := atscale.Fig10(session())
		if err != nil {
			b.Fatal(err)
		}
		sinkString = r.Render()
		last := r.Rows[len(r.Rows)-1]
		if last.WCPI2M > 0 {
			b.ReportMetric(last.WCPI4K/last.WCPI2M, "wcpi-reduction-x")
		}
	}
}

// --- Ablation benches (design-choice studies from DESIGN.md) ---

// ablation measures mcf-rand's WCPI under a modified machine.
func ablation(b *testing.B, mutate func(*atscale.SystemConfig)) {
	cfg := atscale.DefaultSystem()
	mutate(&cfg)
	run := atscale.DefaultRunConfig()
	run.System = cfg
	run.Budget = benchBudget
	spec, err := atscale.WorkloadByName("mcf-rand")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var wcpi float64
	for i := 0; i < b.N; i++ {
		r, err := atscale.Run(&run, spec, 1<<18, atscale.Page4K)
		if err != nil {
			b.Fatal(err)
		}
		wcpi = r.Metrics.WCPI
	}
	b.ReportMetric(wcpi, "wcpi")
}

// BenchmarkAblationBaseline is the unmodified machine.
func BenchmarkAblationBaseline(b *testing.B) {
	ablation(b, func(*atscale.SystemConfig) {})
}

// BenchmarkAblationNoPSC disables the paging-structure caches: every walk
// pays full radix depth.
func BenchmarkAblationNoPSC(b *testing.B) {
	ablation(b, func(c *atscale.SystemConfig) {
		c.PSC.PML4Entries, c.PSC.PDPTEntries, c.PSC.PDEntries = 0, 0, 0
	})
}

// BenchmarkAblationNoSTLB removes the second-level TLB.
func BenchmarkAblationNoSTLB(b *testing.B) {
	ablation(b, func(c *atscale.SystemConfig) { c.STLB.Entries = 0 })
}

// BenchmarkAblationBigSTLB doubles the STLB (a common what-if in the
// papers the introduction cites).
func BenchmarkAblationBigSTLB(b *testing.B) {
	ablation(b, func(c *atscale.SystemConfig) { c.STLB.Entries = 2048 })
}

// BenchmarkAblationNoSpeculation turns off wrong-path modelling,
// quantifying how much of the walk stream §V-D attributes to speculation.
func BenchmarkAblationNoSpeculation(b *testing.B) {
	ablation(b, func(c *atscale.SystemConfig) {
		c.CPU.MaxWrongPathAccesses = 0
		c.CPU.ClearProbability = 0
	})
}

// BenchmarkAblationRandomL3 swaps the L3 to random replacement — the
// replacement-policy family the paper's filtering-effect citations study.
func BenchmarkAblationRandomL3(b *testing.B) {
	ablation(b, func(c *atscale.SystemConfig) { c.L3.Replacement = "random" })
}

// BenchmarkAblationNRUL3 swaps the L3 to not-recently-used replacement.
func BenchmarkAblationNRUL3(b *testing.B) {
	ablation(b, func(c *atscale.SystemConfig) { c.L3.Replacement = "nru" })
}

// BenchmarkAblation5LevelPaging swaps in LA57 5-level tables: one more
// radix level per cold walk.
func BenchmarkAblation5LevelPaging(b *testing.B) {
	ablation(b, func(c *atscale.SystemConfig) { c.PagingLevels = 5 })
}

// BenchmarkAblationTLBPrefetch enables the next-page TLB prefetcher
// (research extension).
func BenchmarkAblationTLBPrefetch(b *testing.B) {
	ablation(b, func(c *atscale.SystemConfig) { c.TLBPrefetchNextPage = true })
}

// --- Campaign scheduler benches ---

// campaignWorkloads are synthetic workloads with negligible setup cost,
// so the serial/parallel comparison measures the scheduler, not graph
// generation (whose CSR cache would warm asymmetrically across benches).
var campaignWorkloads = []string{"uniform-synth", "zipf-synth", "stride-synth", "gups-rand"}

// benchCampaign sweeps the campaign workloads on a fresh session per
// iteration (memoization would otherwise make iterations after the first
// free) at the given parallelism.
func benchCampaign(b *testing.B, parallelism int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := atscale.DefaultRunConfig()
		cfg.Preset = benchPreset()
		cfg.Budget = benchBudget
		cfg.Parallelism = parallelism
		s := atscale.NewSession(cfg)
		if parallelism == 1 {
			for _, w := range campaignWorkloads {
				if _, err := s.Sweep(w); err != nil {
					b.Fatal(err)
				}
			}
			continue
		}
		// Dispatch every sweep at once, as cmd/atscale does for multiple
		// experiments: the session's pool bounds total concurrency.
		errs := make([]error, len(campaignWorkloads))
		var wg sync.WaitGroup
		wg.Add(len(campaignWorkloads))
		for j, w := range campaignWorkloads {
			go func(j int, w string) {
				defer wg.Done()
				_, errs[j] = s.Sweep(w)
			}(j, w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCampaignSerial runs the campaign on the pre-scheduler serial
// schedule (Parallelism 1).
func BenchmarkCampaignSerial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignParallel runs the same campaign with one worker per
// core (Parallelism 0). Results are byte-identical to serial (enforced by
// TestParallelSweepAllMatchesSerial); only the schedule differs.
func BenchmarkCampaignParallel(b *testing.B) { benchCampaign(b, 0) }

// BenchmarkPromotion runs the WCPI-guided hugepage promotion study
// (the extension experiment `promo`) and reports how much of the static
// 2MB benefit the online policy recovers at the largest footprint.
func BenchmarkPromotion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := atscale.PromotionStudy(session(), "mcf-rand")
		if err != nil {
			b.Fatal(err)
		}
		sinkString = r.Render()
		last := r.Rows[len(r.Rows)-1]
		b.ReportMetric(100*last.Recovered, "gap-recovered-%")
		b.ReportMetric(float64(last.Promotions), "promotions")
	}
}
