// Command atperf is `perf stat` for the simulated machine: it runs one
// workload instance under one page-size policy and prints the raw
// counters plus the paper's derived metrics.
//
// Usage:
//
//	atperf -w bfs-urand -param 16 -pages 4KB -budget 2000000
//	atperf -w gups-rand -param 24 -pages all     # §III overhead methodology
//	atperf -w uniform-synth -param 26 -virt -ept-pages 2MB   # nested-paging run
//
// With -pages all, the three policy runs (4KB, 2MB, 1GB) are one small
// campaign: they execute concurrently on the scheduler's worker pool
// (bounded by -p) and reduce to the paper's relative AT overhead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atscale/internal/arch"
	"atscale/internal/core"
	"atscale/internal/perf"
	"atscale/internal/scheme"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atperf:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name   = flag.String("w", "bfs-urand", "workload (program-generator)")
		param  = flag.Uint64("param", 0, "input size parameter (default: smallest rung)")
		pages  = flag.String("pages", "4KB", "backing page size: 4KB|2MB|1GB|all")
		budget = flag.Uint64("budget", 2_000_000, "retired accesses in the measured region")
		seed   = flag.Int64("seed", 2024, "simulation seed")
		par    = flag.Int("p", 0, "max concurrent simulations with -pages all (0: one per core)")
		all    = flag.Bool("counters", true, "print the full counter listing")
		events = flag.String("e", "", "comma-separated event names to print (perf spellings); overrides -counters")

		virt       = flag.Bool("virt", false, "run under nested paging (guest tables over a host EPT)")
		guestPages = flag.String("guest-pages", "", "with -virt: guest page size (4KB|2MB|1GB); overrides -pages")
		eptPages   = flag.String("ept-pages", "4KB", "with -virt: EPT leaf size (4KB|2MB|1GB)")
		schemeName = flag.String("scheme", "", "translation scheme: "+strings.Join(scheme.Names(), "|")+" (default radix)")
		numaNodes  = flag.Int("numa-nodes", 0, "NUMA nodes (0/1: UMA; mitosis defaults to 2)")
	)
	flag.Parse()

	spec, err := workloads.ByName(*name)
	if err != nil {
		return err
	}
	if *param == 0 {
		*param = spec.Ladder[0]
	}
	cfg := core.DefaultRunConfig()
	cfg.Budget = *budget
	cfg.Seed = *seed
	cfg.Parallelism = *par
	if *virt {
		cfg.System.Virt = arch.DefaultVirt()
		cfg.System.Virt.EPTPages, err = arch.ParsePageSize(*eptPages)
		if err != nil {
			return fmt.Errorf("-ept-pages: %w", err)
		}
		if *guestPages != "" {
			*pages = *guestPages
		}
	} else if *guestPages != "" {
		return fmt.Errorf("-guest-pages requires -virt (use -pages for the native policy)")
	}
	if *schemeName != "" {
		if _, err := scheme.ByName(*schemeName); err != nil {
			return err
		}
		cfg.System.Scheme = *schemeName
	}
	nodes := *numaNodes
	if nodes == 0 && cfg.System.Scheme == "mitosis" {
		nodes = 2
	}
	cfg.System.NUMA.Nodes = nodes

	if *pages == "all" {
		return measureAllPages(&cfg, spec, *param)
	}
	ps, err := arch.ParsePageSize(*pages)
	if err != nil {
		return err
	}

	r, err := core.Run(&cfg, spec, *param, ps)
	if err != nil {
		return err
	}
	if *virt {
		fmt.Printf("workload %s  param %d  guest pages %s  EPT pages %s  footprint %s\n\n",
			r.Workload, r.Param, r.PageSize, cfg.System.Virt.EPTPages, arch.FormatBytes(r.Footprint))
	} else {
		fmt.Printf("workload %s  param %d  pages %s  footprint %s\n\n",
			r.Workload, r.Param, r.PageSize, arch.FormatBytes(r.Footprint))
	}
	switch {
	case *events != "":
		for _, name := range strings.Split(*events, ",") {
			e, err := perf.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			fmt.Printf("%20d  %s\n", r.Counters.Get(e), e)
		}
	case *all:
		fmt.Print(r.Counters.Format())
	}
	fmt.Print("\n" + r.Metrics.FormatDerived())
	if *virt {
		fmt.Print("\n" + r.Metrics.FormatVirt(r.Counters.Get(perf.EPTWalkCompleted)))
	}
	return nil
}

// measureAllPages applies the §III methodology: one run per page-size
// policy (scheduled concurrently), reduced to the relative AT overhead.
func measureAllPages(cfg *core.RunConfig, spec *workloads.Spec, param uint64) error {
	p, err := core.MeasureOverhead(cfg, spec, param)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s  param %d  pages all  footprint %s\n\n",
		p.Workload, p.Param, arch.FormatBytes(p.Footprint))
	fmt.Printf("%8s %10s %10s %12s %14s\n", "pages", "CPI", "WCPI", "walk lat", "misses/kacc")
	for _, row := range []struct {
		ps string
		m  perf.Metrics
	}{{"4KB", p.M4K}, {"2MB", p.M2M}, {"1GB", p.M1G}} {
		fmt.Printf("%8s %10.3f %10.4f %12.1f %14.2f\n",
			row.ps, row.m.CPI, row.m.WCPI, row.m.AvgWalkCycles, row.m.TLBMissesPerKiloAccess)
	}
	fmt.Printf("\nrelative AT overhead (4KB vs min(2MB, 1GB)): %.1f%%\n", 100*p.RelOverhead)
	return nil
}
