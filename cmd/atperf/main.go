// Command atperf is `perf stat` for the simulated machine: it runs one
// workload instance under one page-size policy and prints the raw
// counters plus the paper's derived metrics.
//
// Usage:
//
//	atperf -w bfs-urand -param 16 -pages 4KB -budget 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atscale/internal/arch"
	"atscale/internal/core"
	"atscale/internal/perf"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atperf:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name   = flag.String("w", "bfs-urand", "workload (program-generator)")
		param  = flag.Uint64("param", 0, "input size parameter (default: smallest rung)")
		pages  = flag.String("pages", "4KB", "backing page size: 4KB|2MB|1GB")
		budget = flag.Uint64("budget", 2_000_000, "retired accesses in the measured region")
		seed   = flag.Int64("seed", 2024, "simulation seed")
		all    = flag.Bool("counters", true, "print the full counter listing")
		events = flag.String("e", "", "comma-separated event names to print (perf spellings); overrides -counters")
	)
	flag.Parse()

	spec, err := workloads.ByName(*name)
	if err != nil {
		return err
	}
	ps, err := arch.ParsePageSize(*pages)
	if err != nil {
		return err
	}
	if *param == 0 {
		*param = spec.Ladder[0]
	}
	cfg := core.DefaultRunConfig()
	cfg.Budget = *budget
	cfg.Seed = *seed

	r, err := core.Run(&cfg, spec, *param, ps)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s  param %d  pages %s  footprint %s\n\n",
		r.Workload, r.Param, r.PageSize, arch.FormatBytes(r.Footprint))
	switch {
	case *events != "":
		for _, name := range strings.Split(*events, ",") {
			e, err := perf.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			fmt.Printf("%20d  %s\n", r.Counters.Get(e), e)
		}
	case *all:
		fmt.Print(r.Counters.Format())
	}
	m := r.Metrics
	ret, wp, ab := m.Outcomes.Fractions()
	fmt.Printf(`
derived:
  CPI                          %8.3f
  WCPI                         %8.4f
  walk cycle fraction          %8.4f
  TLB misses / kilo access     %8.2f
  TLB misses / kilo instr      %8.2f
  accesses / instruction       %8.3f
  walker loads / walk          %8.3f
  cycles / walker load         %8.1f
  avg walk latency             %8.1f
  STLB hit rate                %8.3f
  PTE hit location L1/L2/L3/M  %6.1f%% %6.1f%% %6.1f%% %6.1f%%
  walks retired/wrong/aborted  %6.1f%% %6.1f%% %6.1f%%
`,
		m.CPI, m.WCPI, m.WalkCycleFraction,
		m.TLBMissesPerKiloAccess, m.TLBMissesPerKiloInstruction,
		m.Eq1.AccessesPerInstruction, m.Eq1.WalkerLoadsPerWalk, m.Eq1.CyclesPerWalkerLoad,
		m.AvgWalkCycles, m.STLBHitRate,
		100*m.PTELocation[0], 100*m.PTELocation[1], 100*m.PTELocation[2], 100*m.PTELocation[3],
		100*ret, 100*wp, 100*ab)
	return nil
}
