// Command atlint is the project's domain-specific multichecker. It
// enforces at lint time the invariants the test suite can only check at
// runtime: deterministic iteration in the campaign-critical packages
// (detrange), no wall-clock or global randomness in simulator code
// (nondet), counter mutation only through the perf API (counterwrite),
// and perf event / workload names that actually exist (eventname).
//
// Usage:
//
//	go run ./cmd/atlint ./...
//	go run ./cmd/atlint -list
//
// Exit status is 0 for a clean tree, 1 when there are findings, 2 on
// load or internal errors. Findings are suppressed site-by-site with
// //atlint:ordered (detrange) or //atlint:allow <analyzer> <reason>;
// unused suppressions are themselves findings.
package main

import (
	"atscale/internal/analysis"
	"atscale/internal/analysis/counterwrite"
	"atscale/internal/analysis/detrange"
	"atscale/internal/analysis/eventname"
	"atscale/internal/analysis/hotalloc"
	"atscale/internal/analysis/lockguard"
	"atscale/internal/analysis/nondet"
	"atscale/internal/analysis/resetdiscipline"
	"atscale/internal/perf"
	"atscale/internal/scheme"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

func main() {
	// Feed eventname from the live registries: linking against the
	// simulator means the linter's notion of a valid name can never
	// drift from the event table or the registered workload set.
	for _, e := range perf.Events() {
		eventname.KnownEvents[e.String()] = true
	}
	for _, s := range workloads.All() {
		eventname.KnownWorkloads[s.Name()] = true
	}
	for _, s := range scheme.Names() {
		eventname.KnownSchemes[s] = true
	}
	analysis.Main(
		detrange.Analyzer,
		nondet.Analyzer,
		counterwrite.Analyzer,
		eventname.Analyzer,
		hotalloc.Analyzer,
		resetdiscipline.Analyzer,
		lockguard.Analyzer,
	)
}
