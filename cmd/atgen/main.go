// Command atgen is the standalone input-generator tool: it regenerates
// the synthetic inputs the workloads are driven by (Table II) and writes
// them in plain-text form, so instances can be inspected or fed to other
// systems.
//
// Usage:
//
//	atgen -gen urand -scale 16 -o graph.el     # "u v" edge lines
//	atgen -gen kron  -scale 18                  # to stdout
//	atgen -gen ycsb  -n 100000                  # uniform key trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"atscale/internal/workloads"
	"atscale/internal/workloads/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		gen   = flag.String("gen", "urand", "generator: urand|kron|ycsb")
		scale = flag.Uint64("scale", 14, "graph scale (2^scale vertices)")
		n     = flag.Uint64("n", 100000, "ycsb: number of key samples")
		keys  = flag.Uint64("keys", 1<<20, "ycsb: key space size")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *gen {
	case "urand", "kron":
		edges, err := graph.WriteEdgeList(w, *gen, *scale)
		if err != nil {
			return err
		}
		s := graph.GraphStats(*gen, *scale)
		fmt.Fprintf(os.Stderr, "%s scale %d: %d vertices, %d undirected edges, max degree %d\n",
			*gen, *scale, s.Vertices, edges, s.MaxDegree)
		return nil
	case "ycsb":
		rng := workloads.NewRNG(*keys ^ 0x79637362)
		bw := bufio.NewWriter(w)
		for i := uint64(0); i < *n; i++ {
			if _, err := fmt.Fprintf(bw, "GET user%d\n", rng.Intn(*keys)); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	return fmt.Errorf("unknown generator %q", *gen)
}
