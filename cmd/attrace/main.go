// Command attrace records and replays workload event traces.
//
// Recording captures a workload's complete machine-visible behaviour
// (allocations, setup prefaults, loads/stores, branches) into a compact
// binary trace; replaying drives a fresh — possibly differently
// configured — machine with it. This is the proxy-workload flow of the
// paper's §II-B: a trace from one system feeds what-if studies on
// another.
//
// Usage:
//
//	attrace record -w gups-rand -param 25 -budget 500000 -o gups.att
//	attrace replay -i gups.att
//	attrace replay -i gups.att -stlb 4096      # what-if: 4x STLB
package main

import (
	"flag"
	"fmt"
	"os"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/telemetry"
	"atscale/internal/trace"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: attrace record|replay [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrace:", err)
		os.Exit(1)
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("w", "gups-rand", "workload to record")
	param := fs.Uint64("param", 0, "input size parameter (default: smallest rung)")
	budget := fs.Uint64("budget", 500_000, "retired accesses to record")
	seed := fs.Int64("seed", 2024, "simulation seed")
	out := fs.String("o", "trace.att", "output trace file")
	fs.Parse(args)

	spec, err := workloads.ByName(*name)
	if err != nil {
		return err
	}
	if *param == 0 {
		*param = spec.Ladder[0]
	}
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := trace.NewWriter(f)
	m.SetTracer(w)
	inst, err := spec.Build(m, *param)
	if err != nil {
		return err
	}
	inst.Run(*budget)
	m.SetTracer(nil)
	if err := w.Flush(); err != nil {
		return err
	}
	st, _ := f.Stat()
	fmt.Fprintf(os.Stderr, "recorded %d events (%d bytes) from %s param %d\n",
		w.Events(), st.Size(), spec.Name(), *param)
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "trace.att", "input trace file")
	pages := fs.String("pages", "4KB", "backing page size")
	seed := fs.Int64("seed", 2024, "simulation seed")
	stlb := fs.Int("stlb", 0, "override STLB entries (what-if)")
	pde := fs.Int("pde", 0, "override PDE-cache entries (what-if)")
	maxEvents := fs.Uint64("n", 0, "replay at most n events (0 = all)")
	timeline := fs.String("timeline", "", "write the replay's deterministic timeline (Chrome trace-event JSON, Perfetto-loadable) to this file")
	fs.Parse(args)

	ps, err := arch.ParsePageSize(*pages)
	if err != nil {
		return err
	}
	cfg := arch.DefaultSystem()
	if *stlb > 0 {
		cfg.STLB.Entries = *stlb
	}
	if *pde > 0 {
		cfg.PSC.PDEntries = *pde
	}
	m, err := machine.New(cfg, ps, *seed)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	var tracer *telemetry.Tracer
	unit := fmt.Sprintf("replay %s %s seed=%d", *in, ps, *seed)
	if *timeline != "" {
		tracer = telemetry.New()
		m.EnableTrace(tracer, unit)
		m.BeginPhase("replay")
	}
	n, err := trace.Replay(m, f, *maxEvents)
	if err != nil {
		return err
	}
	met := perf.Compute(m.Counters())
	if tracer != nil {
		m.EndPhase()
		tracer.FinishUnit(telemetry.Unit{
			Name:   unit,
			Cycles: m.CycleCount(),
			Stats: []telemetry.UnitStat{
				{Name: "wcpi", Val: met.WCPI},
				{Name: "cpi", Val: met.CPI},
			},
		})
		tf, err := os.Create(*timeline)
		if err != nil {
			return err
		}
		if err := tracer.Export(tf); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "replayed %d events\n", n)
	fmt.Println(met.Summary())
	return nil
}
