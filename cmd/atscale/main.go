// Command atscale regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	atscale [flags] <experiment>...
//	atscale -list
//	atscale -size small fig1 table4
//	atscale -size medium all
//
// Each experiment id names one artifact of the paper's evaluation
// (fig1..fig10, table4..table6, tables). Experiments run within one
// session, so artifacts that share measurements (fig1/fig4/table4/table5
// all consume the same sweeps) measure each workload only once.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"atscale/internal/core"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atscale:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		size   = flag.String("size", "medium", "ladder preset: tiny|small|medium|large")
		budget = flag.Uint64("budget", 2_000_000, "retired accesses per measured region")
		seed   = flag.Int64("seed", 2024, "simulation seed")
		quiet  = flag.Bool("quiet", false, "suppress per-run progress")
		list   = flag.Bool("list", false, "list experiments and workloads, then exit")
		out    = flag.String("out", "", "also write rendered output to this file")
		csvDir = flag.String("csv", "", "also write each experiment's data as <dir>/<id>.csv")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range core.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Caption)
		}
		fmt.Println("\nworkloads:")
		for _, w := range workloads.All() {
			fmt.Printf("  %-22s suite=%-10s rungs=%d\n", w.Name(), w.Suite, len(w.Ladder))
		}
		return nil
	}
	ids := flag.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiments given (try -list, or: atscale fig1)")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	preset, err := workloads.ParsePreset(*size)
	if err != nil {
		return err
	}
	cfg := core.DefaultRunConfig()
	cfg.Preset = preset
	cfg.Budget = *budget
	cfg.Seed = *seed
	if !*quiet {
		cfg.Log = os.Stderr
	}
	session := core.NewSession(cfg)

	var rendered strings.Builder
	for _, id := range ids {
		exp, err := core.ExperimentByID(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "== %s: %s\n", exp.ID, exp.Caption)
		result, err := exp.Run(session)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		block := result.Render()
		fmt.Println(block)
		rendered.WriteString(block + "\n")
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, exp.ID+".csv")
			if err := os.WriteFile(path, []byte(core.CSV(result)), 0o644); err != nil {
				return err
			}
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(rendered.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
