// Command atscale regenerates the paper's tables and figures on the
// simulated machine.
//
// Usage:
//
//	atscale [flags] <experiment>...
//	atscale -list
//	atscale -size small fig1 table4
//	atscale -size medium all
//	atscale -p 8 -size medium all            # 8 concurrent simulations
//	atscale -p 1 fig1                        # force the serial schedule
//	atscale -cpuprofile cpu.out fig1         # profile the simulator itself
//	atscale -size small virt                 # nested-paging sweep family
//	atscale -virt -ept-pages 2MB fig1        # re-run a paper artifact inside a VM
//
// Each experiment id names one artifact of the paper's evaluation
// (fig1..fig10, table4..table6, tables). Experiments run within one
// session, so artifacts that share measurements (fig1/fig4/table4/table5
// all consume the same sweeps) measure each workload only once — even
// when several experiments are dispatched concurrently, which they are
// whenever the parallelism (-p, default: all cores) is above one. The
// run schedule never changes results: parallel output is byte-identical
// to serial output, with experiments printed in the order requested.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"atscale/internal/arch"
	"atscale/internal/core"
	"atscale/internal/refute"
	"atscale/internal/scheme"
	"atscale/internal/telemetry"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atscale:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		size       = flag.String("size", "medium", "ladder preset: tiny|small|medium|large")
		budget     = flag.Uint64("budget", 2_000_000, "retired accesses per measured region")
		seed       = flag.Int64("seed", 2024, "simulation seed")
		par        = flag.Int("p", 0, "max concurrent simulations (0: one per core; 1: serial)")
		quiet      = flag.Bool("quiet", false, "suppress per-run progress")
		list       = flag.Bool("list", false, "list experiments and workloads, then exit")
		out        = flag.String("out", "", "also write rendered output to this file")
		csvDir     = flag.String("csv", "", "also write each experiment's data as <dir>/<id>.csv")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at campaign end to this file")
		virt       = flag.Bool("virt", false, "run every simulation under nested paging (guest tables over a host EPT)")
		guestPages = flag.String("guest-pages", "", "with -virt: pin the guest page size (4KB|2MB|1GB), overriding each experiment's policy axis")
		eptPages   = flag.String("ept-pages", "4KB", "with -virt: EPT leaf size (4KB|2MB|1GB)")
		runIDs     = flag.String("run", "", "experiment id(s) to run, comma-separated (alternative to positional ids)")
		timeline   = flag.String("timeline", "", "write the campaign's deterministic timeline (Chrome trace-event JSON, Perfetto-loadable) to this file")
		tlVerify   = flag.Bool("timeline-verify", false, "validate the exported timeline's structure after writing it (requires -timeline)")
		telem      = flag.String("telemetry", "", `live campaign telemetry: "stderr" for JSONL heartbeats, or a listen address (e.g. :8344) for an HTTP /stats endpoint`)
		refuteOn   = flag.Bool("refute", false, "check the counter-identity registry on every run unit; print the refutation report and exit nonzero on any violation")
		refuteOut  = flag.String("refute-out", "", "with -refute: also write the refutation report as JSON to this file")
		schemeName = flag.String("scheme", "", "translation scheme for every simulation: "+strings.Join(scheme.Names(), "|")+" (default radix)")
		numaNodes  = flag.Int("numa-nodes", 0, "NUMA nodes (0/1: UMA; >1 enables the NUMA memory model and the deterministic migration schedule; mitosis defaults to 2)")
		topdownOn  = flag.Bool("topdown", false, "collect per-unit counter deltas and print the top-down cycle attribution tree (campaign-wide plus per scheme group)")
		topdownAB  = flag.String("topdown-diff", "", `signed attribution delta between two scheme groups, as "A,B" (e.g. radix,victima with the schemes experiment)`)
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range core.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Caption)
		}
		fmt.Println("\nworkloads:")
		for _, w := range workloads.All() {
			fmt.Printf("  %-22s suite=%-10s rungs=%d\n", w.Name(), w.Suite, len(w.Ladder))
		}
		return nil
	}
	ids := flag.Args()
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		if *refuteOn {
			// Bare -refute checks the headline ladder.
			ids = []string{"wcpi"}
		} else {
			return fmt.Errorf("no experiments given (try -list, or: atscale fig1)")
		}
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	exps := make([]core.Experiment, len(ids))
	for i, id := range ids {
		exp, err := core.ExperimentByID(id)
		if err != nil {
			return err
		}
		exps[i] = exp
	}

	preset, err := workloads.ParsePreset(*size)
	if err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := core.DefaultRunConfig()
	cfg.Preset = preset
	cfg.Budget = *budget
	cfg.Seed = *seed
	cfg.Parallelism = *par
	if *virt {
		cfg.System.Virt = arch.DefaultVirt()
		cfg.System.Virt.EPTPages, err = arch.ParsePageSize(*eptPages)
		if err != nil {
			return fmt.Errorf("-ept-pages: %w", err)
		}
	} else if *guestPages != "" {
		return fmt.Errorf("-guest-pages requires -virt (native runs take the experiments' own page-size policies)")
	}
	if *guestPages != "" {
		gp, err := arch.ParsePageSize(*guestPages)
		if err != nil {
			return fmt.Errorf("-guest-pages: %w", err)
		}
		cfg.GuestPages = &gp
	}
	if *schemeName != "" {
		if _, err := scheme.ByName(*schemeName); err != nil {
			return err
		}
		cfg.System.Scheme = *schemeName
	}
	nodes := *numaNodes
	if nodes == 0 && cfg.System.Scheme == "mitosis" {
		nodes = 2 // mitosis is meaningless on UMA; default it to two nodes
	}
	cfg.System.NUMA.Nodes = nodes
	if !*quiet {
		cfg.Log = os.Stderr
	}
	var tracer *telemetry.Tracer
	if *timeline != "" {
		tracer = telemetry.New()
		cfg.Trace = tracer
	} else if *tlVerify {
		return fmt.Errorf("-timeline-verify requires -timeline")
	}
	var checker *refute.Checker
	if *refuteOn {
		// The campaign registry: the base identities plus the attribution
		// tree's conservation laws, so -refute audits the tree too.
		checker = core.NewCampaignChecker()
		cfg.Refute = checker
	} else if *refuteOut != "" {
		return fmt.Errorf("-refute-out requires -refute")
	}
	var collector *core.TopdownCollector
	if *topdownOn || *topdownAB != "" {
		collector = core.NewTopdownCollector()
		cfg.Topdown = collector
	}
	var stopTelemetry func()
	if *telem != "" {
		mon := telemetry.NewMonitor()
		cfg.Monitor = mon
		var hub *telemetry.Hub
		if *telem != "stderr" {
			// HTTP mode streams per-unit completion events to the
			// dashboard; the hub is the only consumer, so stderr mode
			// skips the per-unit publish entirely.
			hub = telemetry.NewHub()
			cfg.Events = hub
		}
		stop, err := startTelemetry(*telem, mon, hub)
		if err != nil {
			return err
		}
		stopTelemetry = stop
	}
	session := core.NewSession(cfg)

	parallelism := *par
	if parallelism == 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	concurrent := parallelism > 1 && len(exps) > 1

	var rendered strings.Builder
	emit := func(exp core.Experiment, result core.Renderer) error {
		block := result.Render()
		fmt.Fprintf(os.Stderr, "== %s: %s\n", exp.ID, exp.Caption)
		fmt.Println(block)
		rendered.WriteString(block + "\n")
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, exp.ID+".csv")
			if err := os.WriteFile(path, []byte(core.CSV(result)), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	if concurrent {
		// Dispatch everything at once (shared sweeps coalesce, the pool
		// bounds concurrency), then print in request order.
		results, err := runExperiments(session, exps)
		if err != nil {
			return err
		}
		for i, exp := range exps {
			if err := emit(exp, results[i]); err != nil {
				return err
			}
		}
	} else {
		// Serial schedule: stream each artifact as it completes.
		for _, exp := range exps {
			result, err := exp.Run(session)
			if err != nil {
				return fmt.Errorf("%s: %w", exp.ID, err)
			}
			if err := emit(exp, result); err != nil {
				return err
			}
		}
	}
	if stopTelemetry != nil {
		stopTelemetry()
	}
	if collector != nil {
		block, err := renderTopdown(collector, *topdownOn, *topdownAB)
		if err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "== topdown: cycle attribution")
		fmt.Println(block)
		rendered.WriteString(block + "\n")
	}
	if checker != nil {
		report := checker.Report()
		fmt.Fprintln(os.Stderr, "== refute: counter-identity report")
		fmt.Println(report.Render())
		rendered.WriteString(report.Render() + "\n")
		if *refuteOut != "" {
			if err := os.WriteFile(*refuteOut, report.JSON(), 0o644); err != nil {
				return err
			}
		}
		if report.TotalViolations > 0 {
			return fmt.Errorf("refute: %d identity violation(s) across %d unit(s)", report.TotalViolations, report.Units)
		}
	}
	if tracer != nil {
		if err := writeTimeline(tracer, *timeline, *tlVerify); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(rendered.String()), 0o644); err != nil {
			return err
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// runExperiments dispatches every experiment concurrently over the
// shared session and returns results in request order. The session's
// singleflight memoization keeps shared sweeps measured exactly once,
// and its worker pool bounds how many simulations run at a time. The
// first error (in request order) wins, matching the serial contract.
func runExperiments(session *core.Session, exps []core.Experiment) ([]core.Renderer, error) {
	results := make([]core.Renderer, len(exps))
	errs := make([]error, len(exps))
	var wg sync.WaitGroup
	wg.Add(len(exps))
	for i := range exps {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = exps[i].Run(session)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, err)
		}
	}
	return results, nil
}
