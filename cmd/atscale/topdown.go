package main

// Rendering for the -topdown / -topdown-diff flags: the collector
// already holds per-group and campaign counter aggregates; this file
// only chooses which trees to print.

import (
	"fmt"
	"strings"

	"atscale/internal/core"
	"atscale/internal/topdown"
)

// renderTopdown renders the collected attribution: with full set, the
// campaign tree plus one tree per scheme group; with diff set ("A,B"),
// the signed delta tree between the two named groups.
func renderTopdown(tc *core.TopdownCollector, full bool, diff string) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Top-down cycle attribution over %d run unit(s)\n", tc.Units())
	if full {
		b.WriteString("\ncampaign:\n")
		b.WriteString(tc.CampaignTree().Render())
		groups := tc.Groups()
		if len(groups) > 1 {
			for _, g := range groups {
				t, err := tc.GroupTree(g)
				if err != nil {
					return "", err
				}
				b.WriteString("\ngroup " + g + ":\n")
				b.WriteString(t.Render())
			}
		}
	}
	if diff != "" {
		names := strings.Split(diff, ",")
		if len(names) != 2 {
			return "", fmt.Errorf(`-topdown-diff wants exactly two groups as "A,B" (have %v)`, tc.Groups())
		}
		ga, gb := strings.TrimSpace(names[0]), strings.TrimSpace(names[1])
		ta, err := tc.GroupTree(ga)
		if err != nil {
			return "", err
		}
		tb, err := tc.GroupTree(gb)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\nsigned delta %s -> %s (positive: %s spends more):\n", ga, gb, gb)
		b.WriteString(topdown.Delta(ta, tb).Render())
	}
	return b.String(), nil
}
