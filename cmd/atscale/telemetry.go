package main

// Frontend half of the telemetry subsystem: everything that touches the
// wall clock or the network lives here, in an exempt cmd package, so the
// simulator proper (internal/telemetry included) stays free of
// nondeterminism. The heartbeat loop and the HTTP endpoint only ever
// *snapshot* the monitor's atomics; they perturb no simulation state.

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"atscale/internal/telemetry"
)

// heartbeatPeriod is how often the stderr mode emits a JSONL snapshot.
const heartbeatPeriod = time.Second

// startTelemetry starts live telemetry in the requested mode — "stderr"
// for JSONL heartbeat lines, anything else a TCP listen address serving
// GET /stats — and returns a stop function that emits/serves a final
// consistent snapshot before returning.
func startTelemetry(mode string, mon *telemetry.Monitor) (func(), error) {
	if mode == "stderr" {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(heartbeatPeriod)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					os.Stderr.Write(append(mon.Snapshot().JSON(), '\n'))
				}
			}
		}()
		return func() {
			close(done)
			wg.Wait()
			// Final heartbeat so short campaigns still emit one line.
			os.Stderr.Write(append(mon.Snapshot().JSON(), '\n'))
		}, nil
	}
	ln, err := net.Listen("tcp", mode)
	if err != nil {
		return nil, fmt.Errorf("-telemetry %q: %w", mode, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(mon.Snapshot().JSON(), '\n'))
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "telemetry: serving campaign stats on http://%s/stats\n", ln.Addr())
	return func() { srv.Close() }, nil
}

// writeTimeline exports the tracer to path and, when verify is set,
// parses the written file back through the shared structural validator.
func writeTimeline(tr *telemetry.Tracer, path string, verify bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Export(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !verify {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stats, err := telemetry.Validate(data)
	if err != nil {
		return fmt.Errorf("timeline %s failed validation: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "timeline %s: %s\n", path, stats)
	return nil
}
