package main

//atlint:frontend heartbeat loops timestamp throughput observations; wall time never reaches simulation state

// Frontend half of the telemetry subsystem: everything that touches the
// wall clock or the network lives here, in an exempt cmd package, so the
// simulator proper (internal/telemetry included) stays free of
// nondeterminism. The heartbeat loops and the HTTP server only ever
// *snapshot* the monitor's atomics and drain the event hub; they perturb
// no simulation state. Wall-clock readings enter the monitor as plain
// int64 nanos via ObserveThroughput, which keeps the throughput gauge in
// internal/telemetry clock-free and unit-testable.

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"atscale/internal/telemetry"
)

// heartbeatPeriod is how often the stderr mode emits a JSONL snapshot
// and how often either mode refreshes the cycles/sec throughput gauge.
const heartbeatPeriod = time.Second

// startTelemetry starts live telemetry in the requested mode — "stderr"
// for JSONL heartbeat lines, anything else a TCP listen address serving
// the dashboard (GET /), stats snapshots (GET /stats) and the live SSE
// event feed (GET /events) — and returns a stop function that emits a
// final consistent snapshot / shuts the server down before returning.
func startTelemetry(mode string, mon *telemetry.Monitor, hub *telemetry.Hub) (func(), error) {
	if mode == "stderr" {
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(heartbeatPeriod)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					mon.ObserveThroughput(time.Now().UnixNano())
					os.Stderr.Write(append(mon.Snapshot().JSON(), '\n'))
				}
			}
		}()
		return func() {
			close(done)
			wg.Wait()
			// Final heartbeat so short campaigns still emit one line.
			mon.ObserveThroughput(time.Now().UnixNano())
			os.Stderr.Write(append(mon.Snapshot().JSON(), '\n'))
		}, nil
	}
	ln, err := net.Listen("tcp", mode)
	if err != nil {
		return nil, fmt.Errorf("-telemetry %q: %w", mode, err)
	}
	srv := &http.Server{Handler: telemetry.NewHandler(mon, hub)}
	go srv.Serve(ln)
	// The throughput gauge needs periodic wall-clock observations even
	// when no dashboard is polling; tick them here.
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(heartbeatPeriod)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				mon.ObserveThroughput(time.Now().UnixNano())
			}
		}
	}()
	fmt.Fprintf(os.Stderr, "telemetry: dashboard on http://%s/ (stats: /stats, live events: /events)\n", ln.Addr())
	return func() {
		close(done)
		srv.Close()
	}, nil
}

// writeTimeline exports the tracer to path and, when verify is set,
// parses the written file back through the shared structural validator.
func writeTimeline(tr *telemetry.Tracer, path string, verify bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Export(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !verify {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stats, err := telemetry.Validate(data)
	if err != nil {
		return fmt.Errorf("timeline %s failed validation: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "timeline %s: %s\n", path, stats)
	return nil
}
