// Command atprof is `perf record` + `perf stat -I` for the simulated
// machine: it runs one workload instance with PEBS-style walk sampling
// and interval counter streaming, then renders a hot-page attribution
// report and an instruction-indexed WCPI timeline.
//
// Usage:
//
//	atprof -w bfs-urand -param 16 -period 4096 -interval 100000
//	atprof -w gups-rand -period 2048 -json
//	atprof -w mcf-rand -interval 50000 -csv out/mcf   # out/mcf.timeline.csv, out/mcf.samples.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"atscale/internal/arch"
	"atscale/internal/core"
	"atscale/internal/perf"
	"atscale/internal/telemetry"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "atprof:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("w", "bfs-urand", "workload (program-generator)")
		param    = flag.Uint64("param", 0, "input size parameter (default: smallest rung)")
		pages    = flag.String("pages", "4KB", "backing page size: 4KB|2MB|1GB")
		budget   = flag.Uint64("budget", 2_000_000, "retired accesses in the measured region")
		seed     = flag.Int64("seed", 2024, "simulation seed")
		period   = flag.Uint64("period", 4096, "sampling period (0 disables sampling)")
		events   = flag.String("e", "", "comma-separated events to arm with -period (default: the dtlb walk-duration pair)")
		interval = flag.Uint64("interval", 100_000, "instructions per timeline row (0 disables streaming)")
		topK     = flag.Int("k", 20, "hot pages to report")
		buffer   = flag.Int("buf", 0, "sample ring capacity (0: default)")
		jsonOut  = flag.Bool("json", false, "emit one JSON document instead of text")
		csvOut   = flag.String("csv", "", "write PREFIX.timeline.csv and PREFIX.samples.csv alongside the text output")
		timeline = flag.String("timeline", "", "write the run's deterministic timeline (Chrome trace-event JSON, Perfetto-loadable) to this file")
	)
	flag.Parse()

	spec, err := workloads.ByName(*name)
	if err != nil {
		return err
	}
	ps, err := arch.ParsePageSize(*pages)
	if err != nil {
		return err
	}
	if *param == 0 {
		*param = spec.Ladder[0]
	}
	cfg := core.DefaultRunConfig()
	cfg.Budget = *budget
	cfg.Seed = *seed
	cfg.Interval = *interval
	cfg.SamplePeriod = *period
	cfg.SampleBuffer = *buffer
	if *events != "" {
		for _, n := range strings.Split(*events, ",") {
			e, err := perf.ByName(strings.TrimSpace(n))
			if err != nil {
				return err
			}
			cfg.SampleEvents = append(cfg.SampleEvents, e)
		}
	}

	var tracer *telemetry.Tracer
	if *timeline != "" {
		tracer = telemetry.New()
		cfg.Trace = tracer
	}

	r, err := core.Run(&cfg, spec, *param, ps)
	if err != nil {
		return err
	}
	report := perf.NewReport(r.Samples, r.SampleDropped, r.SampleDroppedWeight, *topK)

	if tracer != nil {
		if err := exportTimeline(tracer, *timeline); err != nil {
			return err
		}
	}

	if *csvOut != "" {
		if err := writeCSVs(*csvOut, r); err != nil {
			return err
		}
	}
	if *jsonOut {
		return writeJSON(os.Stdout, r, report)
	}
	renderText(os.Stdout, &cfg, r, report)
	return nil
}

// renderText prints the run header, the instruction-indexed timeline,
// and the attribution report.
func renderText(w *os.File, cfg *core.RunConfig, r core.RunResult, report perf.Report) {
	fmt.Fprintf(w, "workload %s  param %d  pages %s  footprint %s\n",
		r.Workload, r.Param, r.PageSize, arch.FormatBytes(r.Footprint))
	fmt.Fprintf(w, "aggregate: cpi %.3f  wcpi %.4f  walk cycles %d  walks %d\n",
		r.Metrics.CPI, r.Metrics.WCPI, r.Metrics.WalkCycles, r.Metrics.Walks)

	if len(r.Timeline) > 0 {
		fmt.Fprintf(w, "\ntimeline (every %d instructions):\n", cfg.Interval)
		fmt.Fprintf(w, "  %12s %8s %8s %9s %9s %9s %8s\n",
			"inst", "cpi", "wcpi", "walks/ki", "stlb-hit", "pte-mem%", "abort%")
		for _, row := range r.Timeline {
			m := perf.Compute(row.Delta)
			_, _, ab := m.Outcomes.Fractions()
			fmt.Fprintf(w, "  %12d %8.3f %8.4f %9.2f %9.3f %8.1f%% %7.1f%%\n",
				row.InstEnd, m.CPI, m.WCPI, m.TLBMissesPerKiloInstruction,
				m.STLBHitRate, 100*m.PTELocation[3], 100*ab)
		}
	}

	if cfg.SamplePeriod > 0 {
		fmt.Fprintf(w, "\nsampling report (period %d):\n%s", cfg.SamplePeriod, report.Format())
		agg := r.Metrics.WalkCycles
		if agg > 0 {
			fmt.Fprintf(w, "sampled/aggregate walk cycles: %.1f%%\n",
				100*float64(report.EstWalkCycles)/float64(agg))
		}
	}
}

// jsonTimelineRow mirrors perf's JSONL row shape inside the -json doc.
type jsonTimelineRow struct {
	Index     int      `json:"index"`
	InstStart uint64   `json:"inst_start"`
	InstEnd   uint64   `json:"inst_end"`
	Counts    []uint64 `json:"counts"`
}

// jsonDoc is the -json document.
type jsonDoc struct {
	Workload  string            `json:"workload"`
	Param     uint64            `json:"param"`
	Pages     string            `json:"pages"`
	Footprint uint64            `json:"footprint"`
	Counters  map[string]uint64 `json:"counters"`
	Metrics   perf.Metrics      `json:"metrics"`
	Events    []string          `json:"events"`
	Timeline  []jsonTimelineRow `json:"timeline,omitempty"`
	Report    *perf.Report      `json:"report,omitempty"`
}

func writeJSON(w *os.File, r core.RunResult, report perf.Report) error {
	doc := jsonDoc{
		Workload:  r.Workload,
		Param:     r.Param,
		Pages:     r.PageSize.String(),
		Footprint: r.Footprint,
		Counters:  make(map[string]uint64, perf.NumEvents),
		Metrics:   r.Metrics,
	}
	for _, e := range perf.Events() {
		doc.Counters[e.String()] = r.Counters.Get(e)
		doc.Events = append(doc.Events, e.String())
	}
	for _, row := range r.Timeline {
		counts := make([]uint64, perf.NumEvents)
		for _, e := range perf.Events() {
			counts[e] = row.Delta.Get(e)
		}
		doc.Timeline = append(doc.Timeline, jsonTimelineRow{
			Index: row.Index, InstStart: row.InstStart, InstEnd: row.InstEnd, Counts: counts,
		})
	}
	if r.Samples != nil {
		doc.Report = &report
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// exportTimeline writes the tracer's timeline to path.
func exportTimeline(tr *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSVs(prefix string, r core.RunResult) error {
	tf, err := os.Create(prefix + ".timeline.csv")
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := perf.WriteIntervalsCSV(tf, r.Timeline); err != nil {
		return err
	}
	sf, err := os.Create(prefix + ".samples.csv")
	if err != nil {
		return err
	}
	defer sf.Close()
	return perf.WriteSamplesCSV(sf, r.Samples)
}
