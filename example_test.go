package atscale_test

import (
	"fmt"
	"log"

	"atscale"
)

// Example_singleRun measures one workload instance and reads the paper's
// headline metric off the simulated PMU.
func Example_singleRun() {
	m, err := atscale.NewMachine(atscale.DefaultSystem(), atscale.Page4K, 1)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := atscale.WorkloadByName("gups-rand")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := spec.Build(m, 24) // 16MB update table
	if err != nil {
		log.Fatal(err)
	}
	start := m.Counters()
	inst.Run(1_000_000)
	met := atscale.ComputeMetrics(atscale.CounterDelta(start, m.Counters()))
	fmt.Printf("WCPI is the product of the four Equation 1 terms: %v\n",
		met.Eq1.Product() == met.WCPI)
}

// Example_overheadMethodology applies the paper's §III methodology — the
// same instance under 4 KB, 2 MB and 1 GB backing, overhead against the
// min(2MB, 1GB) baseline.
func Example_overheadMethodology() {
	cfg := atscale.DefaultRunConfig()
	cfg.Budget = 500_000
	spec, err := atscale.WorkloadByName("uniform-synth")
	if err != nil {
		log.Fatal(err)
	}
	point, err := atscale.MeasureOverhead(&cfg, spec, 28) // 256MB
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4KB pages cost %.0f%% extra runtime at %d MB\n",
		100*point.RelOverhead, point.Footprint>>20)
}

// Example_experiment regenerates one of the paper's artifacts.
func Example_experiment() {
	cfg := atscale.DefaultRunConfig()
	cfg.Preset = atscale.PresetTiny
	cfg.Budget = 100_000
	session := atscale.NewSession(cfg)
	fig2, err := atscale.Fig2(session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cc-urand overhead = %.2f + %.2f*log10(M)\n", fig2.Fit.Const, fig2.Fit.Slope)
}
