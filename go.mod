module atscale

go 1.24
