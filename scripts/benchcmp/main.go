// Command benchcmp compares two benchjson documents (schema 1, see
// scripts/benchjson) and exits nonzero when any benchmark present in
// both regresses beyond the configured thresholds — the bench-regression
// gate that keeps the simulator's hot-path speedups from silently
// rotting.
//
// Direct comparison:
//
//	go run ./scripts/benchcmp BENCH_old.json BENCH_new.json
//
// CI gate (pick the newest committed baseline automatically — the
// BENCH_*.json in the directory with the latest date field, skipping any
// recorded at the new document's own sha):
//
//	go run ./scripts/benchcmp -baseline-dir . BENCH_new.json
//
// ns/op and allocs/op are gated separately: allocations are
// machine-independent and get a tight default, while wall-clock
// comparisons across different hardware (CI runners vs the recording
// box) need headroom — raise -ns-threshold there rather than loosening
// the allocation gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Benchmark mirrors scripts/benchjson's result schema.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations uint64  `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	BytesOp    int64   `json:"bytes_op"`
	AllocsOp   int64   `json:"allocs_op"`
}

// Document mirrors scripts/benchjson's top-level schema.
type Document struct {
	Schema     int         `json:"schema"`
	SHA        string      `json:"sha"`
	Date       string      `json:"date"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Document
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d (want 1)", path, d.Schema)
	}
	if len(d.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return &d, nil
}

// pickBaseline returns the BENCH_*.json in dir with the lexically
// greatest date field (RFC 3339 UTC sorts chronologically), excluding
// documents recorded at the new document's own sha — re-running the
// bench on the baseline commit must not compare a file against itself.
func pickBaseline(dir string, next *Document) (*Document, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, "", err
	}
	sort.Strings(paths)
	var best *Document
	var bestPath string
	for _, p := range paths {
		d, err := load(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: skipping %s: %v\n", p, err)
			continue
		}
		if d.SHA == next.SHA {
			continue
		}
		if best == nil || d.Date > best.Date {
			best, bestPath = d, p
		}
	}
	if best == nil {
		return nil, "", fmt.Errorf("no usable baseline BENCH_*.json in %s", dir)
	}
	return best, bestPath, nil
}

func main() {
	var (
		nsThreshold     = flag.Float64("ns-threshold", 10, "max ns/op regression in percent before failing")
		allocsThreshold = flag.Float64("allocs-threshold", 10, "max allocs/op regression in percent before failing")
		minNs           = flag.Float64("min-ns", 0, "skip the ns/op gate (allocs/op still applies) when both sides run shorter than this; single-iteration sub-millisecond timings are noise")
		baselineDir     = flag.String("baseline-dir", "", "pick the newest BENCH_*.json in this directory as the baseline (then pass only the new file)")
	)
	flag.Parse()
	if err := run(*nsThreshold, *allocsThreshold, *minNs, *baselineDir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

func run(nsThreshold, allocsThreshold, minNs float64, baselineDir string, args []string) error {
	var old, next *Document
	var oldPath, nextPath string
	switch {
	case baselineDir != "" && len(args) == 1:
		var err error
		nextPath = args[0]
		if next, err = load(nextPath); err != nil {
			return err
		}
		if old, oldPath, err = pickBaseline(baselineDir, next); err != nil {
			return err
		}
	case baselineDir == "" && len(args) == 2:
		var err error
		oldPath, nextPath = args[0], args[1]
		if old, err = load(oldPath); err != nil {
			return err
		}
		if next, err = load(nextPath); err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: benchcmp [flags] OLD.json NEW.json | benchcmp -baseline-dir DIR NEW.json")
	}

	fmt.Printf("baseline %s (%s, %s)\n", oldPath, old.SHA, old.Date)
	fmt.Printf("new      %s (%s, %s)\n\n", nextPath, next.SHA, next.Date)
	fmt.Printf("%-34s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")

	byName := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		byName[b.Name] = b
	}
	regressions := 0
	compared := 0
	for _, n := range next.Benchmarks {
		o, ok := byName[n.Name]
		if !ok {
			continue // new benchmark: nothing to gate against
		}
		compared++
		nsDelta := pctDelta(o.NsOp, n.NsOp)
		allocsDelta := 0.0
		allocsNote := "-"
		if o.AllocsOp >= 0 && n.AllocsOp >= 0 {
			allocsDelta = pctDelta(float64(o.AllocsOp), float64(n.AllocsOp))
			allocsNote = fmt.Sprintf("%+.1f%%", allocsDelta)
		}
		mark := ""
		if nsDelta > nsThreshold && (o.NsOp >= minNs || n.NsOp >= minNs) {
			mark, regressions = "  REGRESSION(ns/op)", regressions+1
		}
		if o.AllocsOp >= 0 && n.AllocsOp >= 0 && allocsDelta > allocsThreshold {
			mark, regressions = mark+"  REGRESSION(allocs/op)", regressions+1
		}
		fmt.Printf("%-34s %14.0f %14.0f %+7.1f%% %10d %10d %8s%s\n",
			n.Name, o.NsOp, n.NsOp, nsDelta, o.AllocsOp, n.AllocsOp, allocsNote, mark)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks in common between %s and %s", oldPath, nextPath)
	}
	fmt.Printf("\n%d benchmarks compared, %d regressions (thresholds: ns/op %+.0f%%, allocs/op %+.0f%%)\n",
		compared, regressions, nsThreshold, allocsThreshold)
	if regressions > 0 {
		return fmt.Errorf("%d benchmark(s) regressed", regressions)
	}
	return nil
}

// pctDelta returns (new-old)/old in percent; a zero old value only
// regresses if new is nonzero.
func pctDelta(old, next float64) float64 {
	if old == 0 {
		if next == 0 {
			return 0
		}
		return 100
	}
	return (next - old) / old * 100
}
