#!/bin/sh
# lint.sh — one command for the full local lint ladder:
#
#	gofmt      formatting (fails on any unformatted file)
#	go vet     stock vet analyzers
#	staticcheck   (skipped with a warning if not installed)
#	atlint     the project's domain-specific analyzers (DESIGN.md §10, §15):
#	           detrange, nondet, counterwrite, eventname, plus the
#	           flow-sensitive v2 suite — hotalloc (//atlint:hotpath
#	           functions stay heap-allocation-free, //atlint:inline
#	           functions stay under the inliner budget, checked against
#	           real `go build -gcflags=-m=2` diagnostics when the
#	           toolchain matches the pinned go1.24), resetdiscipline
#	           (Reset/Renew must reinitialize every mutable field or
#	           carry //atlint:noreset <why>), and lockguard
#	           (//atlint:guardedby mu fields only touched with the
#	           mutex held on every CFG path).
#	           detrange's deterministic-package list includes
#	           internal/telemetry: the timeline tracer and exporter must
#	           stay byte-identical across runs (DESIGN.md §11), and nondet
#	           keeps it (like all simulator packages) wall-clock-free.
#
# Usage:
#
#	scripts/lint.sh              # lint ./...
#	scripts/lint.sh ./internal/core/...
#
# Exits non-zero on the first failing stage. CI runs the same stages
# (plus govulncheck) in .github/workflows/ci.yml; keep the two in sync.
set -eu

cd "$(dirname "$0")/.."
patterns="${*:-./...}"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet"
# shellcheck disable=SC2086 # patterns are intentionally word-split
go vet $patterns

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
	# shellcheck disable=SC2086
	staticcheck $patterns
else
	echo "staticcheck not installed; skipping (CI runs it pinned)"
fi

echo "== atlint"
# shellcheck disable=SC2086
go run ./cmd/atlint $patterns

echo "lint OK"
