// Command benchjson converts `go test -bench` text output into a
// schema-stable JSON document for dashboards and regression gates, and
// validates such documents in CI.
//
// Emit (stdin -> stdout):
//
//	go test -run '^$' -bench . -benchmem . |
//	    go run ./scripts/benchjson -sha "$(git rev-parse --short HEAD)" -date "$(date -u +%FT%TZ)"
//
// Validate (CI gate — non-zero exit unless the file holds at least one
// well-formed result):
//
//	go run ./scripts/benchjson -validate BENCH_abc123.json
//
// The schema is one top-level object:
//
//	{
//	  "schema": 1,
//	  "sha":  "<commit>",
//	  "date": "<RFC 3339 UTC>",
//	  "benchmarks": [
//	    {"name": "...", "iterations": N, "ns_op": F,
//	     "bytes_op": N, "allocs_op": N},
//	    ...
//	  ]
//	}
//
// bytes_op/allocs_op are -1 when the run lacked -benchmem. Unlike the
// test2json event stream this format is stable across Go releases and
// directly consumable with jq (`.benchmarks[].ns_op`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Schema is the current document schema version.
const Schema = 1

// Benchmark is one result line of a `go test -bench` run.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations uint64  `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	// BytesOp and AllocsOp are -1 when -benchmem was off.
	BytesOp  int64 `json:"bytes_op"`
	AllocsOp int64 `json:"allocs_op"`
}

// Document is the top-level JSON object.
type Document struct {
	Schema     int         `json:"schema"`
	SHA        string      `json:"sha"`
	Date       string      `json:"date"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sha      = flag.String("sha", "unknown", "commit identifier recorded in the document")
		date     = flag.String("date", "unknown", "timestamp recorded in the document (RFC 3339 UTC)")
		validate = flag.Bool("validate", false, "validate the JSON documents named as arguments instead of emitting")
	)
	flag.Parse()

	if *validate {
		if flag.NArg() == 0 {
			return fmt.Errorf("-validate needs at least one file argument")
		}
		for _, path := range flag.Args() {
			if err := validateFile(path); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
		}
		return nil
	}

	doc := Document{Schema: Schema, SHA: *sha, Date: *date}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if doc.Benchmarks == nil {
		// Keep the field an array (not null) even when empty, so jq
		// consumers can always iterate.
		doc.Benchmarks = []Benchmark{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseLine recognizes one benchmark result line:
//
//	BenchmarkWalk4K-8   1000   11943 ns/op   128 B/op   3 allocs/op
//
// The trailing -N GOMAXPROCS suffix stays part of the name (benchstat
// convention).
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Minimum shape: name, iterations, value, "ns/op".
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], BytesOp: -1, AllocsOp: -1}
	iters, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			b.NsOp, err = strconv.ParseFloat(val, 64)
			seenNs = err == nil
		case "B/op":
			b.BytesOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if !seenNs {
		return Benchmark{}, false
	}
	return b, true
}

// validateFile enforces the schema: current version, non-empty sha and
// date, at least one benchmark, every benchmark named with positive
// iteration count and non-negative ns/op.
func validateFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var doc Document
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	if doc.Schema != Schema {
		return fmt.Errorf("schema %d, want %d", doc.Schema, Schema)
	}
	if doc.SHA == "" || doc.Date == "" {
		return fmt.Errorf("missing sha/date")
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results")
	}
	for i, b := range doc.Benchmarks {
		if b.Name == "" || !strings.HasPrefix(b.Name, "Benchmark") {
			return fmt.Errorf("benchmark %d: bad name %q", i, b.Name)
		}
		if b.Iterations == 0 {
			return fmt.Errorf("benchmark %q: zero iterations", b.Name)
		}
		if b.NsOp < 0 {
			return fmt.Errorf("benchmark %q: negative ns/op", b.Name)
		}
	}
	fmt.Printf("%s: ok (%d benchmarks, sha %s)\n", path, len(doc.Benchmarks), doc.SHA)
	return nil
}
