#!/bin/sh
# bench.sh — run the benchmark suite at the tiny preset and archive the
# results for before/after comparison across commits.
#
# Usage:
#
#	scripts/bench.sh                 # tiny preset, 1 iteration per bench
#	ATSCALE_BENCH_PRESET=small scripts/bench.sh
#	BENCHTIME=5x COUNT=3 scripts/bench.sh
#
# Writes two artifacts named after the current commit:
#
#	BENCH_<sha>.txt    raw `go test -bench` output — feed two of these
#	                   to benchstat to compare commits:
#	                       benchstat BENCH_old.txt BENCH_new.txt
#	BENCH_<sha>.json   the same results in the schema-stable benchjson
#	                   format (one object per benchmark: name, iterations,
#	                   ns_op, bytes_op, allocs_op; plus sha and date) —
#	                   see scripts/benchjson. Validate with:
#	                       go run ./scripts/benchjson -validate BENCH_<sha>.json
set -eu

cd "$(dirname "$0")/.."

sha=$(git rev-parse --short HEAD 2>/dev/null || echo workdir)
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
preset=${ATSCALE_BENCH_PRESET:-tiny}
benchtime=${BENCHTIME:-1x}
count=${COUNT:-1}
txt="BENCH_${sha}.txt"
json="BENCH_${sha}.json"

echo "bench: preset=$preset benchtime=$benchtime count=$count -> $txt, $json" >&2

ATSCALE_BENCH_PRESET="$preset" go test -run '^$' -bench . \
	-benchtime "$benchtime" -count "$count" -benchmem . | tee "$txt" |
	go run ./scripts/benchjson -sha "$sha" -date "$date" >"$json"

go run ./scripts/benchjson -validate "$json" >&2
echo "bench: wrote $(grep -c '^Benchmark' "$txt" || true) result lines" >&2
