// Package atscale reproduces "Understanding Address Translation Scaling
// Behaviours Using Hardware Performance Counters" (Lindsay &
// Bhattacharjee, IISWC 2024) on a simulated x86-64 address-translation
// stack.
//
// The package is a facade over the internal packages: it re-exports the
// measurement session, the per-figure/table experiment drivers, the
// workload registry, and the simulated machine, so downstream users can
// run the paper's methodology — or their own — without reaching into
// internal paths.
//
// A minimal campaign:
//
//	cfg := atscale.DefaultRunConfig()
//	cfg.Preset = atscale.PresetSmall
//	session := atscale.NewSession(cfg)
//	fig2, err := atscale.Fig2(session)   // cc-urand log-linear scaling
//	...
//	fmt.Print(fig2.Render())
//
// Or a single instrumented run:
//
//	m, _ := atscale.NewMachine(atscale.DefaultSystem(), atscale.Page4K, 1)
//	spec, _ := atscale.WorkloadByName("bfs-urand")
//	inst, _ := spec.Build(m, 16)
//	inst.Run(2_000_000)
//	metrics := atscale.ComputeMetrics(m.Counters())
//	fmt.Println("WCPI:", metrics.WCPI)
package atscale

import (
	"atscale/internal/arch"
	"atscale/internal/core"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all" // register every workload
)

// Page sizes of the simulated x86-64 machine.
const (
	Page4K = arch.Page4K
	Page2M = arch.Page2M
	Page1G = arch.Page1G
)

// Size presets for workload ladders.
const (
	PresetTiny   = workloads.Tiny
	PresetSmall  = workloads.Small
	PresetMedium = workloads.Medium
	PresetLarge  = workloads.Large
)

// Re-exported core types.
type (
	// SystemConfig describes the simulated machine (Table III).
	SystemConfig = arch.SystemConfig
	// PageSize selects the heap backing granularity.
	PageSize = arch.PageSize
	// Machine is the simulated system workloads run on.
	Machine = machine.Machine
	// Counters is a PMU snapshot.
	Counters = perf.Counters
	// Metrics bundles every derived AT-pressure quantity.
	Metrics = perf.Metrics
	// WalkOutcomes is the Table VI walk classification.
	WalkOutcomes = perf.WalkOutcomes
	// Workload is a program + input generator specification.
	Workload = workloads.Spec
	// SizePreset selects how much of a workload's size ladder to sweep.
	SizePreset = workloads.SizePreset
	// RunConfig parameterizes a measurement campaign.
	RunConfig = core.RunConfig
	// RunResult is one (workload, size, page size) measurement.
	RunResult = core.RunResult
	// OverheadPoint is one size measured under all page sizes (§III).
	OverheadPoint = core.OverheadPoint
	// Session memoizes sweeps across experiments.
	Session = core.Session
	// Experiment names one reproducible paper table/figure.
	Experiment = core.Experiment
)

// DefaultSystem returns the simulated Table III machine.
func DefaultSystem() SystemConfig { return arch.DefaultSystem() }

// DefaultRunConfig returns the standard measurement configuration.
func DefaultRunConfig() RunConfig { return core.DefaultRunConfig() }

// NewMachine builds a simulated machine with the given backing policy.
func NewMachine(cfg SystemConfig, policy PageSize, seed int64) (*Machine, error) {
	return machine.New(cfg, policy, seed)
}

// NewSession creates a measurement session.
func NewSession(cfg RunConfig) *Session { return core.NewSession(cfg) }

// ComputeMetrics derives the paper's metrics from a counter delta.
func ComputeMetrics(c Counters) Metrics { return perf.Compute(c) }

// CounterDelta subtracts two snapshots (end - start).
func CounterDelta(start, end Counters) Counters { return perf.Delta(start, end) }

// Workloads returns every registered workload.
func Workloads() []*Workload { return workloads.All() }

// PaperWorkloads returns the Table I workload set.
func PaperWorkloads() []*Workload { return core.PaperWorkloads() }

// WorkloadByName resolves a program-generator name.
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// Run measures one (workload, size, page size) combination.
func Run(cfg *RunConfig, spec *Workload, param uint64, ps PageSize) (RunResult, error) {
	return core.Run(cfg, spec, param, ps)
}

// MeasureOverhead applies the §III methodology to one (workload, size).
func MeasureOverhead(cfg *RunConfig, spec *Workload, param uint64) (OverheadPoint, error) {
	return core.MeasureOverhead(cfg, spec, param)
}

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment { return core.Experiments() }

// ExperimentByID resolves an experiment name like "fig7".
func ExperimentByID(id string) (Experiment, error) { return core.ExperimentByID(id) }

// Experiment drivers (see each for the paper artifact it regenerates).
var (
	Fig1   = core.Fig1
	Fig2   = core.Fig2
	Fig3   = core.Fig3
	Fig4   = core.Fig4
	Fig5   = core.Fig5
	Fig6   = core.Fig6
	Fig7   = core.Fig7
	Fig8   = core.Fig8
	Fig9   = core.Fig9
	Fig10  = core.Fig10
	Table4 = core.Table4
	Table5 = core.Table5
	Table6 = core.Table6
	Tables = core.Tables
)

// PromotionStudy measures the WCPI-guided hugepage promotion extension
// (the `promo` experiment) on any workload.
var PromotionStudy = core.PromotionStudy

// HashedPTStudy measures the hashed-vs-radix page-table extension (the
// `hashedpt` experiment) on any workload.
var HashedPTStudy = core.HashedPTStudy

// ResultCSV renders an experiment result's tables as CSV.
func ResultCSV(r core.Renderer) string { return core.CSV(r) }
