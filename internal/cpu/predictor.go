package cpu

// gshare is a global-history branch predictor with 2-bit saturating
// counters. The workloads report their real branch outcomes, so mispredict
// rates emerge from actual control flow rather than a fixed probability —
// which is what lets wrong-path walk behaviour vary by workload as in the
// paper's §V-D.
type gshare struct {
	table   []uint8
	history uint64
	mask    uint64
}

func newGshare(bits uint) *gshare {
	size := uint64(1) << bits
	g := &gshare{table: make([]uint8, size), mask: size - 1}
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

// reset restores the predictor to its initial weakly-not-taken state.
func (g *gshare) reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
}

func (g *gshare) index(pc uint64) uint64 {
	return (pc ^ g.history) & g.mask
}

// predict returns the predicted direction without updating state.
func (g *gshare) predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// update trains the counter and shifts the outcome into global history.
func (g *gshare) update(pc uint64, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = g.history<<1 | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
