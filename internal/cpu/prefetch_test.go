package cpu_test

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
)

// strideWalkCounts runs a page-strided scan and returns (retired walks,
// prefetch walks).
func strideWalkCounts(t *testing.T, prefetch bool) (uint64, uint64) {
	t.Helper()
	cfg := arch.DefaultSystem()
	cfg.TLBPrefetchNextPage = prefetch
	m, err := machine.New(cfg, arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 8192 // 32MB: far beyond STLB reach
	va := m.MustMalloc(pages * 4096)
	for p := uint64(0); p < pages; p++ {
		m.Poke64(va+arch.VAddr(p*4096), p) // pre-fault
	}
	start := m.Counters()
	for p := uint64(0); p < pages; p++ {
		m.Load64(va + arch.VAddr(p*4096))
	}
	d := perf.Delta(start, m.Counters())
	return d.Get(perf.STLBMissLoads), d.Get(perf.TLBPrefetchWalks)
}

func TestNextPagePrefetchEliminatesStrideMisses(t *testing.T) {
	base, basePf := strideWalkCounts(t, false)
	pref, prefPf := strideWalkCounts(t, true)
	if basePf != 0 {
		t.Errorf("prefetch walks counted with prefetcher off: %d", basePf)
	}
	if prefPf == 0 {
		t.Error("prefetcher issued no walks")
	}
	// A page-strided scan is the prefetcher's best case: nearly every
	// demand miss should be converted into an STLB hit.
	if pref*10 > base {
		t.Errorf("retired walks %d with prefetch vs %d without; want >=10x reduction", pref, base)
	}
}

func TestPrefetchDoesNotDistortOutcomeFormulae(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.TLBPrefetchNextPage = true
	m, err := machine.New(cfg, arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	va := m.MustMalloc(4 * arch.MB)
	for off := uint64(0); off < 4*arch.MB; off += 4096 {
		m.Load64(va + arch.VAddr(off))
	}
	o := perf.Outcomes(m.Counters())
	// With no speculation (no branches), every architectural walk must
	// be retired: prefetch walks live in their own counter domain.
	if o.WrongPath != 0 || o.Aborted != 0 {
		t.Errorf("prefetch walks leaked into architectural outcomes: %+v", o)
	}
}
