// Package cpu models the core: instruction and cycle accounting, the
// translation datapath (TLBs, walker), demand data accesses through the
// cache hierarchy, and — critically for the paper's §V-D — speculation.
//
// The model is direct-execution: workloads call Load/Store/Ops/Branch with
// their real addresses and branch outcomes. Timing is first-order (a base
// CPI plus partially-hidden memory and walk latencies), but the
// *translation microarchitecture* is simulated faithfully, so every
// counter the paper derives metrics from has a mechanistic origin:
//
//   - Retired walks come from demand accesses that miss both TLB levels.
//   - Wrong-path walks come from mispredicted branches (real outcomes
//     through a gshare predictor) opening a speculation window sized by
//     the resolve latency; wrong-path addresses near the recent working
//     set look up the TLB and may walk.
//   - Aborted walks are speculative walks that outlive their window: the
//     colder the PTEs, the longer the walk, the likelier the abort.
//   - Machine clears come from 4 KB-aliasing/memory-ordering conflicts
//     against a recent-store window, and flush like mispredicts.
package cpu

import (
	"fmt"
	"math/rand"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/perf"
	"atscale/internal/telemetry"
	"atscale/internal/tlb"
	"atscale/internal/walker"
)

// Timeline instant names the core emits on its speculation track.
const (
	traceMispredict   = "mispredict"
	traceMachineClear = "machine_clear"
	traceWalkSquash   = "walk_squash"
	traceWrongPath    = "wrongpath_walk"
)

// osFaultCycles is the cycle cost charged for a demand page fault (kernel
// entry, allocation, map, return).
const osFaultCycles = 1400

// FaultHandler is the OS upcall invoked on a demand page fault. It must
// map the page containing va and return the mapped size.
type FaultHandler func(va arch.VAddr) (arch.PageSize, error)

type aliasEntry struct {
	va  arch.VAddr
	seq uint64
}

// Core is one simulated CPU core.
type Core struct {
	cfg    *arch.SystemConfig
	tlbs   *tlb.Hierarchy
	caches *cache.Hierarchy
	walker walker.Engine
	ctr    perf.Counters

	cr3   arch.PAddr
	fault FaultHandler

	pred *gshare
	rng  *rand.Rand

	// cycleFrac carries sub-cycle remainders so the Cycles counter stays
	// integer and monotonic.
	cycleFrac float64

	// recentLat is an EWMA of demand-access latencies, used as the
	// data-dependent part of branch-resolve latency.
	recentLat float64

	// ring holds recent demand VAs for wrong-path address synthesis.
	//
	//atlint:noreset stale entries are unreachable: Reset zeroes ringLen/ringPos and reads never go past ringLen
	ring    [64]arch.VAddr
	ringLen int
	ringPos int

	// reservoir holds a long-horizon sample of demand VAs: stale pointer
	// values wrong-path micro-ops dereference. Unlike ring entries these
	// are usually no longer TLB-resident once the footprint outgrows the
	// TLB — the mechanism that makes wrong-path walks scale with
	// footprint (§V-D).
	//
	//atlint:noreset stale samples are unreachable: Reset zeroes reservoirLen and draws never go past it
	reservoir    [8192]arch.VAddr
	reservoirLen int

	// vaMin/vaMax bound the touched virtual range.
	vaMin, vaMax arch.VAddr

	// aliases tracks recent stores by page offset for 4K-aliasing clears,
	// direct-indexed by the 512 possible aligned page offsets (va bits
	// 3..11). seq == 0 marks an empty slot: storeSeq pre-increments, so a
	// real entry's sequence number is never zero.
	aliases  [512]aliasEntry
	storeSeq uint64

	// smp holds the attached PEBS-style samplers (usually zero or one;
	// the promotion policy attaches its own). Empty means every sampling
	// hook is a single len check.
	smp []*perf.Sampler

	// lastWalkCycles/lastWalkLevel carry the most recent demand walk's
	// latency and leaf-PTE location into the access-retirement sample
	// (zero / PTENone on TLB hits).
	lastWalkCycles uint64
	lastWalkLevel  perf.PTELevel

	// trk, when non-nil, is the core's speculation timeline track:
	// mispredict and machine-clear flushes, plus squashed and completed
	// wrong-path walks, land on it as instants at core-cycle time.
	trk *telemetry.Track
}

// New builds a core on top of the given translation and cache hardware.
// seed fixes the speculation model's random choices, making runs
// reproducible.
func New(cfg *arch.SystemConfig, tlbs *tlb.Hierarchy, caches *cache.Hierarchy, w walker.Engine, seed int64) *Core {
	return &Core{
		cfg:    cfg,
		tlbs:   tlbs,
		caches: caches,
		walker: w,
		pred:   newGshare(cfg.CPU.GsharePCBits),
		rng:    rand.New(rand.NewSource(seed)),
		vaMin:  ^arch.VAddr(0),
	}
}

// Reset returns the core — and the TLBs and caches it owns — to the
// just-constructed state with a fresh speculation seed, so a pooled
// machine's core is indistinguishable from a newly built one. The
// address space must be re-attached with SetAddressSpace afterwards;
// attached samplers and the timeline track are dropped.
func (c *Core) Reset(seed int64) {
	c.ctr = perf.Counters{}
	c.cr3, c.fault = 0, nil
	c.pred.reset()
	c.rng = rand.New(rand.NewSource(seed))
	c.cycleFrac = 0
	c.recentLat = 0
	c.ringLen, c.ringPos = 0, 0
	c.reservoirLen = 0
	c.vaMin, c.vaMax = ^arch.VAddr(0), 0
	c.aliases = [512]aliasEntry{}
	c.storeSeq = 0
	c.smp = nil
	c.lastWalkCycles, c.lastWalkLevel = 0, perf.PTENone
	c.trk = nil
	c.tlbs.Reset()
	c.caches.Reset()
}

// SetAddressSpace points the core at a page table root and the OS fault
// handler (the simulated CR3 write at process start).
func (c *Core) SetAddressSpace(cr3 arch.PAddr, fault FaultHandler) {
	c.cr3 = cr3
	c.fault = fault
	c.tlbs.Flush()
	c.walker.Flush()
}

// Counters returns a snapshot of the core's PMU.
func (c *Core) Counters() perf.Counters { return c.ctr.Snapshot() }

// CycleCount returns the core cycle counter — the simulated clock every
// timeline track syncs to.
func (c *Core) CycleCount() uint64 { return c.ctr.Get(perf.Cycles) }

// SetTrace attaches the core's speculation timeline track.
func (c *Core) SetTrace(trk *telemetry.Track) { c.trk = trk }

// Accesses returns retired loads+stores so far (cheap progress gauge).
func (c *Core) Accesses() uint64 {
	return c.ctr.Get(perf.AllLoads) + c.ctr.Get(perf.AllStores)
}

// AttachSampler adds a PEBS-style sampler to the datapath's sampling
// hooks. Multiple samplers may be attached (the promotion policy runs a
// private one next to the user-facing one); each sees every candidate.
func (c *Core) AttachSampler(s *perf.Sampler) { c.smp = append(c.smp, s) }

// Instructions returns retired instructions so far without snapshotting
// the full counter file (interval streaming's per-access probe).
func (c *Core) Instructions() uint64 { return c.ctr.Get(perf.InstRetired) }

// InvalidateTranslation drops any cached translation of va at the given
// size from every TLB level (the OS's INVLPG).
func (c *Core) InvalidateTranslation(va arch.VAddr, ps arch.PageSize) {
	c.tlbs.InvalidatePage(va, ps)
}

// InvalidatePDE drops the paging-structure-cache entry covering va's 2 MB
// block — mandatory after a hugepage promotion replaces the PDE.
func (c *Core) InvalidatePDE(va arch.VAddr) {
	c.walker.InvalidateBlock(va)
}

// Stall charges visible cycles for OS work performed on the program's
// behalf (promotion copies, for instance).
func (c *Core) Stall(cycles uint64) { c.charge(float64(cycles)) }

// FlushTLBs drops every TLB level without touching CR3 or the walker —
// the cold-TLB cost of landing on a different core after a thread
// migration (walk-cache scopes are the translation scheme's to flush).
func (c *Core) FlushTLBs() { c.tlbs.Flush() }

// CountSoftware books a software event (OS-level occurrences such as
// hugepage promotions) into the PMU alongside the hardware events.
func (c *Core) CountSoftware(e perf.Event, n uint64) { c.ctr.Add(e, n) }

// charge accrues fractional cycles into the integer cycle counter.
func (c *Core) charge(cy float64) {
	c.cycleFrac += cy
	whole := uint64(c.cycleFrac)
	if whole > 0 {
		c.ctr.Add(perf.Cycles, whole)
		c.cycleFrac -= float64(whole)
	}
}

// Ops retires n non-memory instructions.
func (c *Core) Ops(n uint64) {
	c.ctr.Add(perf.InstRetired, n)
	c.charge(float64(n) * c.cfg.CPU.BaseCPI)
}

// Load retires one load of va and returns the physical address accessed.
func (c *Core) Load(va arch.VAddr) arch.PAddr {
	c.ctr.Inc(perf.InstRetired)
	c.ctr.Inc(perf.AllLoads)
	c.checkAlias(va)
	return c.access(va, false)
}

// Store retires one store to va and returns the physical address accessed.
func (c *Core) Store(va arch.VAddr) arch.PAddr {
	c.ctr.Inc(perf.InstRetired)
	c.ctr.Inc(perf.AllStores)
	c.recordStore(va)
	return c.access(va, true)
}

// access translates va (walking and faulting as needed), performs the data
// access, charges visible latency, and returns the physical address.
func (c *Core) access(va arch.VAddr, isStore bool) arch.PAddr {
	c.charge(c.cfg.CPU.BaseCPI)
	c.noteVA(va)
	c.lastWalkCycles, c.lastWalkLevel = 0, perf.PTENone

	var frame arch.PAddr
	var size arch.PageSize
	switch r := c.tlbs.Lookup(va); r.Level {
	case tlb.HitL1:
		frame, size = r.Entry.Frame, r.Entry.Size
	case tlb.HitSTLB:
		c.countSTLBHit(isStore)
		c.charge(float64(c.cfg.CPU.STLBHitLatency) * c.cfg.CPU.STLBHitVisibility)
		frame, size = r.Entry.Frame, r.Entry.Size
		// An STLB hit still signals first-level pressure; chaining the
		// prefetcher here lets it keep pace with streams (a hit on a
		// prefetched page prefetches the next one).
		if c.cfg.TLBPrefetchNextPage {
			c.prefetchNextPage(va, size)
		}
	default:
		frame, size = c.demandWalk(va, isStore)
	}

	pa := frame + arch.PAddr(uint64(va)&size.Mask())
	lat, _ := c.caches.Access(pa)
	l1 := c.cfg.L1D.Latency
	if lat > l1 {
		c.charge(float64(lat-l1) * c.cfg.CPU.MemVisibility)
	}
	c.recentLat = 0.9*c.recentLat + 0.1*float64(lat)
	c.sampleRetire(isStore, va)
	return pa
}

// demandWalk performs the page walk for a retired access, taking a fault
// and retrying once if the page is not yet mapped.
func (c *Core) demandWalk(va arch.VAddr, isStore bool) (arch.PAddr, arch.PageSize) {
	c.countSTLBMissRetired(isStore)
	c.countWalkInitiated(isStore)
	wr := c.walker.Walk(va, c.cr3, walker.NoBudget)
	c.accountWalk(isStore, wr)
	c.charge(float64(wr.Cycles) * c.cfg.CPU.WalkVisibility)
	walkCycles, eptCycles := wr.Cycles, wr.EPTCycles
	if !wr.OK {
		// Demand page fault: the OS maps the page and the access
		// re-walks. The fault and retry count as one walk (one
		// initiated, one completed) so outcome accounting stays tied to
		// speculation rather than first-touch behaviour; the retry's
		// loads and cycles are still accrued.
		c.ctr.Inc(perf.PageFaults)
		if c.fault == nil {
			panic(fmt.Sprintf("cpu: fault at %#x with no handler", uint64(va)))
		}
		if _, err := c.fault(va); err != nil {
			panic(fmt.Sprintf("cpu: unhandled fault: %v", err))
		}
		c.charge(osFaultCycles)
		wr = c.walker.Walk(va, c.cr3, walker.NoBudget)
		c.accountWalk(isStore, wr)
		c.charge(float64(wr.Cycles) * c.cfg.CPU.WalkVisibility)
		walkCycles += wr.Cycles
		eptCycles += wr.EPTCycles
		if !wr.OK {
			panic(fmt.Sprintf("cpu: fault handler did not map %#x", uint64(va)))
		}
	}
	c.countWalkCompleted(isStore)
	c.countReplicaWalk(wr)
	c.lastWalkCycles, c.lastWalkLevel = walkCycles, pteLevel(wr.LeafLoc)
	c.sampleWalk(isStore, va, walkCycles, eptCycles, wr.LeafLoc, perf.OutcomeRetired)
	c.tlbs.Fill(va, wr.Frame, wr.Size)
	if c.cfg.TLBPrefetchNextPage {
		c.prefetchNextPage(va, wr.Size)
	}
	return wr.Frame, wr.Size
}

// prefetchNextPage walks the page following the one just demanded and
// installs the translation into the STLB. Prefetch walks run off the
// critical path (no visible cycle charge) but consume walker bandwidth
// and cache capacity like real walks; they are accounted in the
// tlb_prefetch.* event domain so the architectural dtlb_* events — and
// the Table VI outcome formulae on top of them — stay undistorted.
func (c *Core) prefetchNextPage(va arch.VAddr, ps arch.PageSize) {
	next := arch.PageBase(va, ps) + arch.VAddr(ps.Bytes())
	if _, hit := c.tlbs.STLB().Lookup(next); hit {
		return
	}
	c.ctr.Inc(perf.TLBPrefetchWalks)
	wr := c.walker.Walk(next, c.cr3, walker.NoBudget)
	c.ctr.Add(perf.TLBPrefetchCycles, wr.Cycles)
	if wr.OK {
		c.tlbs.FillSTLB(next, wr.Frame, wr.Size)
		c.ctr.Inc(perf.TLBPrefetchFills)
	}
}

// Branch retires one branch instruction with the given program counter and
// real outcome. A misprediction opens a wrong-path speculation window.
func (c *Core) Branch(pc uint64, taken bool) {
	c.ctr.Inc(perf.InstRetired)
	c.ctr.Inc(perf.Branches)
	c.charge(c.cfg.CPU.BaseCPI)
	predicted := c.pred.predict(pc)
	c.pred.update(pc, taken)
	if predicted == taken {
		return
	}
	c.ctr.Inc(perf.BranchMispredicts)
	if c.trk != nil {
		c.trk.Sync(c.CycleCount())
		c.trk.Instant(traceMispredict)
	}
	c.flushEpisode()
}

// flushEpisode models one pipeline flush (mispredict or machine clear):
// the resolve window is charged, and the wrong-path micro-ops that issued
// inside it perform speculative TLB lookups, walks, and cache accesses.
func (c *Core) flushEpisode() {
	// The resolve window stretches with the latency of the data feeding
	// the mispredicted branch; the 1.5 factor reflects short dependent
	// chains (load -> compare -> branch) beyond the single load.
	window := float64(c.cfg.CPU.PipelineDepth) + 1.5*c.recentLat
	c.charge(window)
	if c.ringLen == 0 || c.cfg.CPU.MaxWrongPathAccesses <= 0 {
		return
	}
	n := int(window * c.cfg.CPU.IssueWidth * c.accessesPerInstruction())
	if n < 1 {
		n = 1
	}
	if n > c.cfg.CPU.MaxWrongPathAccesses {
		n = c.cfg.CPU.MaxWrongPathAccesses
	}
	for i := 0; i < n; i++ {
		tstart := window * float64(i) / float64(n)
		c.wrongPathAccess(uint64(window - tstart))
	}
}

// wrongPathAccess issues one speculative access with the given cycle
// budget before the flush squashes it.
func (c *Core) wrongPathAccess(budget uint64) {
	va := c.wrongPathVA()
	var frame arch.PAddr
	var size arch.PageSize
	switch r := c.tlbs.Lookup(va); r.Level {
	case tlb.HitL1:
		frame, size = r.Entry.Frame, r.Entry.Size
	case tlb.HitSTLB:
		c.countSTLBHit(false)
		frame, size = r.Entry.Frame, r.Entry.Size
	default:
		// Speculative walk; counts as a load-side walk (stores do not
		// translate speculatively on the modelled machine).
		c.countWalkInitiated(false)
		wr := c.walker.Walk(va, c.cr3, budget)
		c.accountWalk(false, wr)
		if !wr.Completed {
			c.sampleWalk(false, va, wr.Cycles, wr.EPTCycles, wr.LeafLoc, perf.OutcomeAborted)
			if c.trk != nil {
				c.trk.Sync(c.CycleCount())
				c.trk.Instant(traceWalkSquash)
			}
			return // aborted: initiated but never completed
		}
		c.countWalkCompleted(false)
		c.countReplicaWalk(wr)
		c.sampleWalk(false, va, wr.Cycles, wr.EPTCycles, wr.LeafLoc, perf.OutcomeWrongPath)
		if c.trk != nil {
			c.trk.Sync(c.CycleCount())
			c.trk.Instant(traceWrongPath)
		}
		if !wr.OK {
			return // speculative fault is suppressed, no fill
		}
		c.tlbs.Fill(va, wr.Frame, wr.Size)
		frame, size = wr.Frame, wr.Size
	}
	// The wrong-path data access pollutes the caches but costs no
	// visible time (it executes under the flush window).
	c.caches.Access(frame + arch.PAddr(uint64(va)&size.Mask()))
}

// wrongPathVA synthesizes a plausible wrong-path address. Wrong-path
// micro-ops consume stale or mispredicted register values, so most of
// their addresses are valid heap pointers: a stride off a recent access
// or a revisit of one; only a small tail is wild garbage (which walks,
// faults, and is suppressed — as on hardware).
func (c *Core) wrongPathVA() arch.VAddr {
	r := c.rng.Float64()
	switch {
	case r < c.cfg.CPU.WrongPathNearFraction:
		base := c.ring[c.rng.Intn(c.ringLen)]
		stride := c.rng.Int63n(int64(c.cfg.CPU.WrongPathMaxStride)*2+1) - int64(c.cfg.CPU.WrongPathMaxStride)
		va := int64(base) + stride
		if va < int64(c.vaMin) {
			va = int64(c.vaMin)
		}
		if va > int64(c.vaMax) {
			va = int64(c.vaMax)
		}
		return arch.VAddr(va) &^ 7
	case r < 1-c.cfg.CPU.WrongPathWildFraction:
		// Stale pointer: an older working-set address (mapped, but only
		// TLB-resident while the footprint fits the TLB).
		return c.reservoir[c.rng.Intn(c.reservoirLen)]
	default:
		span := uint64(c.vaMax - c.vaMin)
		if span == 0 {
			return c.vaMin
		}
		return (c.vaMin + arch.VAddr(c.rng.Uint64()%span)) &^ 7
	}
}

// checkAlias models 4K-aliasing / memory-ordering machine clears: a load
// whose page offset matches a recent store to a *different* address may
// force a pipeline clear.
func (c *Core) checkAlias(va arch.VAddr) {
	e := c.aliases[(uint64(va)>>3)&0x1FF]
	if e.seq == 0 || e.va == va {
		return
	}
	if c.storeSeq-e.seq > uint64(c.cfg.CPU.StoreBufferSize) {
		return
	}
	if c.rng.Float64() >= c.cfg.CPU.ClearProbability {
		return
	}
	c.ctr.Inc(perf.MachineClears)
	c.ctr.Inc(perf.MachineClearsMemOrder)
	if c.trk != nil {
		c.trk.Sync(c.CycleCount())
		c.trk.Instant(traceMachineClear)
	}
	c.flushEpisode()
}

func (c *Core) recordStore(va arch.VAddr) {
	c.storeSeq++
	c.aliases[(uint64(va)>>3)&0x1FF] = aliasEntry{va: va, seq: c.storeSeq}
}

func (c *Core) noteVA(va arch.VAddr) {
	c.ring[c.ringPos] = va
	c.ringPos = (c.ringPos + 1) % len(c.ring)
	if c.ringLen < len(c.ring) {
		c.ringLen++
	}
	if c.reservoirLen < len(c.reservoir) {
		c.reservoir[c.reservoirLen] = va
		c.reservoirLen++
	} else if c.rng.Intn(8) == 0 {
		c.reservoir[c.rng.Intn(c.reservoirLen)] = va
	}
	if va < c.vaMin {
		c.vaMin = va
	}
	if va > c.vaMax {
		c.vaMax = va
	}
}

func (c *Core) accessesPerInstruction() float64 {
	inst := c.ctr.Get(perf.InstRetired)
	if inst == 0 {
		return 0.3
	}
	return float64(c.ctr.Get(perf.AllLoads)+c.ctr.Get(perf.AllStores)) / float64(inst)
}

// pteLevel maps the cache hit location of the leaf PTE load to the
// sample's level field.
func pteLevel(loc cache.HitLoc) perf.PTELevel {
	switch loc {
	case cache.HitL1:
		return perf.PTEL1
	case cache.HitL2:
		return perf.PTEL2
	case cache.HitL3:
		return perf.PTEL3
	default:
		return perf.PTEMem
	}
}

// sampleWalk offers one walk's record to every attached sampler, under
// both the walk-count and walk-cycle event domains — plus the EPT
// walk-duration domain when the walk spent cycles in the EPT dimension.
// Called at walk completion and abort; with no sampler attached it is
// one len check.
func (c *Core) sampleWalk(isStore bool, va arch.VAddr, cycles, eptCycles uint64, leaf cache.HitLoc, outcome perf.SampleOutcome) {
	if len(c.smp) == 0 {
		return
	}
	miss, dur := perf.DTLBLoadMissWalk, perf.DTLBLoadWalkDuration
	if isStore {
		miss, dur = perf.DTLBStoreMissWalk, perf.DTLBStoreWalkDuration
	}
	s := perf.Sample{
		VA:         uint64(va),
		Page:       uint64(arch.PageBase(va, arch.Page4K)),
		WalkCycles: cycles,
		Level:      pteLevel(leaf),
		Outcome:    outcome,
		Inst:       c.ctr.Get(perf.InstRetired),
	}
	for _, sp := range c.smp {
		sp.Offer(miss, 1, s)
		sp.Offer(dur, cycles, s)
		if eptCycles > 0 {
			sp.Offer(perf.EPTWalkDuration, eptCycles, s)
		}
	}
}

// sampleRetire offers one retired access's record to samplers armed on
// the mem_uops_retired events. The record carries the access's walk
// latency and leaf-PTE location when it walked (zero/none on TLB hits).
func (c *Core) sampleRetire(isStore bool, va arch.VAddr) {
	if len(c.smp) == 0 {
		return
	}
	ev := perf.AllLoads
	if isStore {
		ev = perf.AllStores
	}
	armed := false
	for _, sp := range c.smp {
		if sp.Armed(ev) {
			armed = true
			break
		}
	}
	if !armed {
		return
	}
	s := perf.Sample{
		VA:         uint64(va),
		Page:       uint64(arch.PageBase(va, arch.Page4K)),
		WalkCycles: c.lastWalkCycles,
		Level:      c.lastWalkLevel,
		Outcome:    perf.OutcomeRetired,
		Inst:       c.ctr.Get(perf.InstRetired),
	}
	for _, sp := range c.smp {
		sp.Offer(ev, 1, s)
	}
}

// accountWalk books a walk's cycles and PTE-load locations, split per
// dimension when virtualized. The invariant, native walks included, is
// walk_duration == walk_duration_guest + ept_misses.walk_duration
// (native walks have no EPT share, so they count fully as guest).
func (c *Core) accountWalk(isStore bool, wr walker.Result) {
	guestCycles := wr.Cycles - wr.EPTCycles
	if isStore {
		c.ctr.Add(perf.DTLBStoreWalkDuration, wr.Cycles)
		c.ctr.Add(perf.DTLBStoreWalkDurationGuest, guestCycles)
	} else {
		c.ctr.Add(perf.DTLBLoadWalkDuration, wr.Cycles)
		c.ctr.Add(perf.DTLBLoadWalkDurationGuest, guestCycles)
	}
	if wr.GuestPSCHit {
		c.ctr.Inc(perf.GuestWalkSTLBHit)
	}
	c.ctr.Add(perf.WalkerLoadsL1, uint64(wr.Locs[cache.HitL1]))
	c.ctr.Add(perf.WalkerLoadsL2, uint64(wr.Locs[cache.HitL2]))
	c.ctr.Add(perf.WalkerLoadsL3, uint64(wr.Locs[cache.HitL3]))
	c.ctr.Add(perf.WalkerLoadsMem, uint64(wr.Locs[cache.HitMem]))

	// Scheme dimension (all zero for the built-in engines). Block probes
	// count per Walk call — the fault-retry walk probes again, exactly
	// like its PTE loads are re-charged — while the DRAM-cache split
	// rides the per-load Locs accounting it partitions.
	if wr.BlockProbed {
		if wr.BlockHit {
			c.ctr.Inc(perf.SchemeBlockHits)
		} else {
			c.ctr.Inc(perf.SchemeBlockMisses)
		}
	}
	c.ctr.Add(perf.DRAMCacheHits, uint64(wr.DCHits))
	c.ctr.Add(perf.DRAMCacheMisses, uint64(wr.DCMisses))

	// EPT dimension (all zero for native walks).
	c.ctr.Add(perf.EPTMissWalk, uint64(wr.NTLBMisses))
	c.ctr.Add(perf.EPTWalkCompleted, uint64(wr.EPTWalks))
	c.ctr.Add(perf.EPTWalkDuration, wr.EPTCycles)
	c.ctr.Add(perf.EPTWalkSTLBHit, uint64(wr.NTLBHits))
	c.ctr.Add(perf.EPTWalkerLoadsL1, uint64(wr.EPTLocs[cache.HitL1]))
	c.ctr.Add(perf.EPTWalkerLoadsL2, uint64(wr.EPTLocs[cache.HitL2]))
	c.ctr.Add(perf.EPTWalkerLoadsL3, uint64(wr.EPTLocs[cache.HitL3]))
	c.ctr.Add(perf.EPTWalkerLoadsMem, uint64(wr.EPTLocs[cache.HitMem]))
}

func (c *Core) countWalkInitiated(isStore bool) {
	if isStore {
		c.ctr.Inc(perf.DTLBStoreMissWalk)
	} else {
		c.ctr.Inc(perf.DTLBLoadMissWalk)
	}
}

func (c *Core) countWalkCompleted(isStore bool) {
	if isStore {
		c.ctr.Inc(perf.DTLBStoreWalkCompleted)
	} else {
		c.ctr.Inc(perf.DTLBLoadWalkCompleted)
	}
}

// countReplicaWalk classifies a completed walk under page-table
// replication. It sits exactly beside countWalkCompleted (demand walks
// count once, after the fault retry; aborted wrong-path walks never
// reach it), giving the scheme identity
// replica_local_walks + replica_remote_walks == walk_completed.
func (c *Core) countReplicaWalk(wr walker.Result) {
	switch wr.Replica {
	case walker.ReplicaLocal:
		c.ctr.Inc(perf.ReplicaLocalWalks)
	case walker.ReplicaRemote:
		c.ctr.Inc(perf.ReplicaRemoteWalks)
	}
}

func (c *Core) countSTLBHit(isStore bool) {
	if isStore {
		c.ctr.Inc(perf.DTLBStoreSTLBHit)
	} else {
		c.ctr.Inc(perf.DTLBLoadSTLBHit)
	}
}

func (c *Core) countSTLBMissRetired(isStore bool) {
	if isStore {
		c.ctr.Inc(perf.STLBMissStores)
	} else {
		c.ctr.Inc(perf.STLBMissLoads)
	}
}
