package cpu_test

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
)

func newMachine(t *testing.T, policy arch.PageSize) *machine.Machine {
	t.Helper()
	m, err := machine.New(arch.DefaultSystem(), policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpsAccounting(t *testing.T) {
	m := newMachine(t, arch.Page4K)
	m.Ops(1000)
	c := m.Counters()
	if got := c.Get(perf.InstRetired); got != 1000 {
		t.Errorf("instructions = %d, want 1000", got)
	}
	cfg := m.Config()
	want := uint64(1000 * cfg.CPU.BaseCPI)
	if got := c.Get(perf.Cycles); got < want-1 || got > want+1 {
		t.Errorf("cycles = %d, want ~%d", got, want)
	}
}

func TestFirstTouchFaultsThenHits(t *testing.T) {
	m := newMachine(t, arch.Page4K)
	va := m.MustMalloc(4096)
	m.Store64(va, 42)
	c := m.Counters()
	if c.Get(perf.PageFaults) != 1 {
		t.Fatalf("faults = %d, want 1", c.Get(perf.PageFaults))
	}
	// Second access to the same page: TLB hit, no walk, no fault.
	before := c.Get(perf.DTLBLoadMissWalk) + c.Get(perf.DTLBStoreMissWalk)
	if got := m.Load64(va); got != 42 {
		t.Fatalf("Load64 = %d, want 42", got)
	}
	c = m.Counters()
	after := c.Get(perf.DTLBLoadMissWalk) + c.Get(perf.DTLBStoreMissWalk)
	if after != before {
		t.Errorf("warm access walked (%d -> %d)", before, after)
	}
	if c.Get(perf.PageFaults) != 1 {
		t.Errorf("faults = %d after warm access", c.Get(perf.PageFaults))
	}
}

func TestLoadStoreCounters(t *testing.T) {
	m := newMachine(t, arch.Page4K)
	va := m.MustMalloc(4096)
	for i := 0; i < 10; i++ {
		m.Store64(va+arch.VAddr(i*8), uint64(i))
	}
	for i := 0; i < 20; i++ {
		m.Load64(va + arch.VAddr(i%10*8))
	}
	c := m.Counters()
	if c.Get(perf.AllStores) != 10 || c.Get(perf.AllLoads) != 20 {
		t.Errorf("loads/stores = %d/%d, want 20/10",
			c.Get(perf.AllLoads), c.Get(perf.AllStores))
	}
	if c.Get(perf.InstRetired) != 30 {
		t.Errorf("instructions = %d, want 30", c.Get(perf.InstRetired))
	}
}

func TestWalkCounterInvariants(t *testing.T) {
	m := newMachine(t, arch.Page4K)
	// Touch enough pages to overflow both TLB levels, with branches to
	// trigger speculation.
	const pages = 4096
	va := m.MustMalloc(pages * 4096)
	for pass := 0; pass < 2; pass++ {
		for p := 0; p < pages; p++ {
			addr := va + arch.VAddr(p*4096)
			m.Load64(addr)
			m.Branch(uint64(p%37), p%3 == 0)
		}
	}
	c := m.Counters()
	o := perf.Outcomes(c)
	if o.Initiated == 0 {
		t.Fatal("no walks initiated")
	}
	if o.Completed > o.Initiated {
		t.Errorf("completed %d > initiated %d", o.Completed, o.Initiated)
	}
	if o.Retired > o.Completed {
		t.Errorf("retired %d > completed %d", o.Retired, o.Completed)
	}
	if o.Retired+o.WrongPath+o.Aborted != o.Initiated {
		t.Errorf("outcome conservation broken: %+v", o)
	}
	loads := c.Get(perf.WalkerLoadsL1) + c.Get(perf.WalkerLoadsL2) +
		c.Get(perf.WalkerLoadsL3) + c.Get(perf.WalkerLoadsMem)
	if loads < o.Initiated {
		t.Errorf("walker loads %d < initiated walks %d", loads, o.Initiated)
	}
	if loads > 4*o.Initiated {
		t.Errorf("walker loads %d > 4x initiated walks %d", loads, o.Initiated)
	}
	dur := c.Get(perf.DTLBLoadWalkDuration) + c.Get(perf.DTLBStoreWalkDuration)
	if dur == 0 {
		t.Error("walks accrued no duration")
	}
	if dur >= c.Get(perf.Cycles)*10 {
		t.Errorf("walk duration %d implausible vs cycles %d", dur, c.Get(perf.Cycles))
	}
}

func TestSTLBHitCounted(t *testing.T) {
	m := newMachine(t, arch.Page4K)
	// 512 pages overflow the 64-entry L1 TLB but fit the 1024-entry STLB.
	const pages = 512
	va := m.MustMalloc(pages * 4096)
	for pass := 0; pass < 3; pass++ {
		for p := 0; p < pages; p++ {
			m.Load64(va + arch.VAddr(p*4096))
		}
	}
	c := m.Counters()
	if c.Get(perf.DTLBLoadSTLBHit) == 0 {
		t.Error("no STLB hits recorded for an STLB-sized working set")
	}
	// STLB-resident pages should rarely walk after warmup.
	o := perf.Outcomes(c)
	if o.Retired > pages*2 {
		t.Errorf("retired walks %d for a %d-page STLB-resident set", o.Retired, pages)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	m := newMachine(t, arch.Page4K)
	for i := 0; i < 10000; i++ {
		m.Branch(0x400, true) // always-taken loop branch
	}
	c := m.Counters()
	if c.Get(perf.Branches) != 10000 {
		t.Fatalf("branches = %d", c.Get(perf.Branches))
	}
	// gshare trains one table entry per history state, so allow the
	// cold-start transient.
	if misp := c.Get(perf.BranchMispredicts); misp > 50 {
		t.Errorf("mispredicts = %d on an always-taken branch", misp)
	}
}

func TestBranchPredictorMissesRandom(t *testing.T) {
	m := newMachine(t, arch.Page4K)
	// A pseudo-random data-dependent branch defeats gshare.
	x := uint64(0x123456789)
	for i := 0; i < 8000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Branch(0x500, x&1 == 0)
	}
	c := m.Counters()
	rate := float64(c.Get(perf.BranchMispredicts)) / float64(c.Get(perf.Branches))
	if rate < 0.2 {
		t.Errorf("mispredict rate %.3f on random branch, want >= 0.2", rate)
	}
}

func TestWrongPathWalksNeedMispredicts(t *testing.T) {
	// Without any branches there can be no wrong-path or aborted walks.
	m := newMachine(t, arch.Page4K)
	const pages = 2048
	va := m.MustMalloc(pages * 4096)
	for p := 0; p < pages; p++ {
		m.Load64(va + arch.VAddr(p*4096))
	}
	o := perf.Outcomes(m.Counters())
	if o.WrongPath != 0 || o.Aborted != 0 {
		t.Errorf("speculative walks without branches: %+v", o)
	}
}

func TestWrongPathWalksAppearWithMispredicts(t *testing.T) {
	m := newMachine(t, arch.Page4K)
	const pages = 8192 // 32 MB: beyond STLB reach
	va := m.MustMalloc(pages * 4096)
	x := uint64(0xdeadbeef)
	for i := 0; i < 3*pages; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		m.Load64(va + arch.VAddr(x%pages*4096))
		m.Branch(0x600, x&1 == 0)
	}
	o := perf.Outcomes(m.Counters())
	if o.WrongPath+o.Aborted == 0 {
		t.Error("no speculative walks despite mispredicts on a TLB-thrashing footprint")
	}
}

func TestMachineClearsFromAliasing(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.CPU.ClearProbability = 1.0 // make the conflict deterministic
	m, err := machine.New(cfg, arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	va := m.MustMalloc(2 * 4096)
	m.Store64(va+0x100, 1)      // store at offset 0x100 of page 0
	m.Load64(va + 4096 + 0x100) // load same offset, different page
	c := m.Counters()
	if c.Get(perf.MachineClears) != 1 {
		t.Errorf("machine clears = %d, want 1", c.Get(perf.MachineClears))
	}
	if c.Get(perf.MachineClearsMemOrder) != 1 {
		t.Errorf("memory-ordering clears = %d, want 1", c.Get(perf.MachineClearsMemOrder))
	}
}

func TestNoClearOnTrueDependence(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.CPU.ClearProbability = 1.0
	m, err := machine.New(cfg, arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	va := m.MustMalloc(4096)
	m.Store64(va+0x100, 1)
	m.Load64(va + 0x100) // same address: forwarding, not a clear
	if got := m.Counters().Get(perf.MachineClears); got != 0 {
		t.Errorf("machine clears = %d on a true dependence", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() perf.Counters {
		m := newMachine(t, arch.Page4K)
		va := m.MustMalloc(1024 * 4096)
		x := uint64(7)
		for i := 0; i < 20000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			m.Load64(va + arch.VAddr(x%1024*4096))
			if i%3 == 0 {
				m.Store64(va+arch.VAddr(x%1024*4096), x)
			}
			m.Branch(uint64(i%11), x&3 == 0)
			m.Ops(2)
		}
		return m.Counters()
	}
	a, b := run(), run()
	if a != b {
		t.Error("identical runs produced different counters")
	}
}

func TestSuperpagesReduceWalks(t *testing.T) {
	walks := func(policy arch.PageSize) uint64 {
		m := newMachine(t, policy)
		const pages = 4096 // 16MB
		va := m.MustMalloc(pages * 4096)
		x := uint64(3)
		for i := 0; i < 4*pages; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			m.Load64(va + arch.VAddr(x%(pages*512)*8))
		}
		return perf.Outcomes(m.Counters()).Initiated
	}
	w4k, w2m := walks(arch.Page4K), walks(arch.Page2M)
	if w2m*4 > w4k {
		t.Errorf("2MB pages walked %d vs 4KB %d; expected >=4x reduction", w2m, w4k)
	}
}
