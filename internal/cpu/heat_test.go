package cpu_test

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
)

// TestPromotionTargetsHotBlocks hammers one 2 MB block with TLB-missing
// accesses (interleaved with a scattered stream that keeps evicting its
// translations) and checks the sampler-backed hot-block signal steers
// promotion to that block.
func TestPromotionTargetsHotBlocks(t *testing.T) {
	m2, err := machine.New(arch.DefaultSystem(), arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultPromotionConfig()
	cfg.Epoch = 64 * 1024
	cfg.MaxPerEpoch = 1
	m2.EnablePromotion(cfg)
	va2 := m2.MustMalloc(256 * arch.MB)
	hot2 := arch.VAddr(arch.AlignUp(uint64(va2), arch.Page2M.Bytes()))
	y := uint64(7)
	for i := 0; i < 400_000; i++ {
		y ^= y << 13
		y ^= y >> 7
		y ^= y << 17
		m2.Load64(va2 + arch.VAddr(y%(256*arch.MB/8)*8))
		m2.Load64(hot2 + arch.VAddr(y%(arch.Page2M.Bytes()/8)*8))
	}
	if m2.Promotions() == 0 {
		t.Fatal("no promotions")
	}
	// The hot block must be among the promoted (mapped as 2MB now).
	if _, ps, ok := m2.AddressSpace().PageTable().Lookup(hot2); !ok || ps != arch.Page2M {
		t.Errorf("hot block not promoted: mapped=%v size=%v", ok, ps)
	}
}
