package virt_test

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
	"atscale/internal/virt"
	"atscale/internal/walker"
)

// FuzzNestedTranslationComposition drives the 2D hardware-walker model
// with randomized guest and EPT mapping mixes — 4KB/2MB/1GB leaves in
// either dimension — and asserts every gVA it resolves equals the
// composition of the two software oracles (guest page-table lookup, then
// EPT lookup), at the effective page size min(guest, EPT). Probes land
// on leaf boundaries of both dimensions as well as interior offsets, and
// unmapped probes must fault, not resolve.
func FuzzNestedTranslationComposition(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(2), uint8(1), uint8(2))
	f.Add(int64(3), uint8(2), uint8(1))
	f.Add(int64(4), uint8(0), uint8(5))
	f.Add(int64(5), uint8(1), uint8(7))

	f.Fuzz(func(t *testing.T, seed int64, eptChoice, mix uint8) {
		rng := rand.New(rand.NewSource(seed))
		eptPages := arch.PageSize(eptChoice % uint8(arch.NumPageSizes))

		host := mem.NewPhys(64 * arch.GB)
		hyp, err := virt.NewHypervisor(host, eptPages)
		if err != nil {
			t.Fatal(err)
		}
		gphys := virt.NewGuestPhys(hyp, 48*arch.GB)
		pt, err := pagetable.New(gphys)
		if err != nil {
			t.Fatal(err)
		}

		cfg := arch.DefaultSystem()
		vc := arch.DefaultVirt()
		nc := mmucache.NewNested(cfg.PSC, vc.EPTPSC, vc.NTLBEntries)
		w := walker.NewNested(host, hyp.Root(), eptPages, nc, cache.NewHierarchy(&cfg))

		// Map a randomized set of guest pages. The mix byte biases the
		// size distribution; 1GB guest pages are rare (they back a lot of
		// host memory) but must appear in some corpus entries.
		type mapping struct {
			va arch.VAddr
			ps arch.PageSize
		}
		var maps []mapping
		n := 4 + rng.Intn(10)
		oneGLeft := 1
		for i := 0; i < n; i++ {
			ps := arch.Page4K
			switch {
			case (int(mix)+i)%7 == 3 && oneGLeft > 0 && eptPages == arch.Page4K:
				ps = arch.Page1G
				oneGLeft--
			case (int(mix)+i)%3 == 1:
				ps = arch.Page2M
			}
			va := arch.VAddr(arch.AlignUp(
				0x0000_0100_0000_0000+uint64(rng.Int63n(1<<40)), ps.Bytes()))
			gframe, err := gphys.AllocPage(ps)
			if err != nil {
				t.Skip("guest-physical memory exhausted by this input")
			}
			if err := pt.Map(va, gframe, ps); err != nil {
				continue // overlap with an earlier mapping; skip it
			}
			maps = append(maps, mapping{va, ps})
		}
		if len(maps) == 0 {
			t.Skip("no mappings landed")
		}

		oracle := func(va arch.VAddr) (arch.PAddr, bool) {
			gpa, _, ok := pt.Lookup(va)
			if !ok {
				return 0, false
			}
			hpa, ok := hyp.Translate(gpa)
			if !ok {
				t.Fatalf("mapped VA %#x has EPT-unbacked gPA %#x", uint64(va), uint64(gpa))
			}
			return hpa, true
		}

		check := func(va arch.VAddr) {
			r := w.Walk(va, pt.Root(), walker.NoBudget)
			want, mapped := oracle(va)
			if !mapped {
				if r.OK {
					t.Fatalf("walker resolved unmapped VA %#x to %#x", uint64(va), uint64(r.Frame))
				}
				if !r.Completed {
					t.Fatalf("unbudgeted walk of %#x did not complete", uint64(va))
				}
				return
			}
			if !r.OK {
				t.Fatalf("walker failed on mapped VA %#x", uint64(va))
			}
			got := r.Frame + arch.PAddr(uint64(va)&r.Size.Mask())
			if got != want {
				t.Fatalf("VA %#x: walker hPA %#x != oracle %#x (size %s)", uint64(va), uint64(got), uint64(want), r.Size)
			}
			if r.Frame != arch.PAddr(arch.PageBase(arch.VAddr(got), r.Size))+0 {
				// Frame must be the effSize-aligned base of the composed
				// translation so TLB fills are coherent.
				if uint64(r.Frame)%r.Size.Bytes() != 0 {
					t.Fatalf("VA %#x: frame %#x not %s-aligned", uint64(va), uint64(r.Frame), r.Size)
				}
			}
		}

		for _, m := range maps {
			// Page base, interior offsets, and the EPT/guest leaf
			// boundaries inside (and one byte around) the mapping.
			check(m.va)
			check(m.va + arch.VAddr(rng.Int63n(int64(m.ps.Bytes()))&^7))
			if m.ps.Bytes() > eptPages.Bytes() {
				// Crossing an EPT-leaf boundary inside one guest page.
				check(m.va + arch.VAddr(eptPages.Bytes()))
				check(m.va + arch.VAddr(m.ps.Bytes()-8))
			}
			check(m.va + arch.VAddr(m.ps.Bytes())) // first byte past; often unmapped
		}
		// A handful of wild probes, mostly unmapped.
		for i := 0; i < 8; i++ {
			check(arch.VAddr(0x0000_0100_0000_0000 + uint64(rng.Int63n(1<<41))&^7))
		}
	})
}
