package virt_test

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/mem"
	"atscale/internal/pagetable"
	"atscale/internal/virt"
)

func newStack(t *testing.T, eptPages arch.PageSize) (*virt.Hypervisor, *virt.GuestPhys) {
	t.Helper()
	host := mem.NewPhys(64 * arch.GB)
	hyp, err := virt.NewHypervisor(host, eptPages)
	if err != nil {
		t.Fatal(err)
	}
	return hyp, virt.NewGuestPhys(hyp, 32*arch.GB)
}

func TestGuestPhysReadWriteRoundTrip(t *testing.T) {
	_, gphys := newStack(t, arch.Page4K)
	gpa, err := gphys.AllocPage(arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	for off := arch.PAddr(0); off < 4096; off += 8 {
		if v := gphys.Read64(gpa + off); v != 0 {
			t.Fatalf("fresh frame not zero at +%#x: %#x", uint64(off), v)
		}
	}
	gphys.Write64(gpa+16, 0xdead_beef_cafe_f00d)
	if v := gphys.Read64(gpa + 16); v != 0xdead_beef_cafe_f00d {
		t.Fatalf("readback = %#x", v)
	}
}

// TestGuestPhysRecycledFramesReadZero guards against stale host bytes
// leaking through the EPT: freed guest frames keep their host backing, so
// reuse must re-zero through the translation.
func TestGuestPhysRecycledFramesReadZero(t *testing.T) {
	_, gphys := newStack(t, arch.Page2M)
	gpa, err := gphys.AllocPage(arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	gphys.Write64(gpa+8, ^uint64(0))
	gphys.FreePage(gpa, arch.Page4K)
	gpa2, err := gphys.AllocPage(arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if gpa2 != gpa {
		t.Fatalf("free list did not recycle: got %#x, want %#x", uint64(gpa2), uint64(gpa))
	}
	if v := gphys.Read64(gpa2 + 8); v != 0 {
		t.Fatalf("recycled frame reads stale data: %#x", v)
	}
}

// TestEPTLeafGranularityBacking checks violation counting happens per
// EPT-leaf block: many 4KB guest frames inside one 2MB block cost one
// violation and one host frame.
func TestEPTLeafGranularityBacking(t *testing.T) {
	hyp, gphys := newStack(t, arch.Page2M)
	for i := 0; i < 64; i++ {
		if _, err := gphys.AllocPage(arch.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	if hyp.EPTViolations() != 1 {
		t.Errorf("violations = %d, want 1 (one 2MB block first-touched)", hyp.EPTViolations())
	}
	if hyp.HostMappedBytes() != arch.Page2M.Bytes() {
		t.Errorf("host mapped = %d, want one 2MB frame", hyp.HostMappedBytes())
	}

	hyp4k, gphys4k := newStack(t, arch.Page4K)
	for i := 0; i < 64; i++ {
		if _, err := gphys4k.AllocPage(arch.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	if hyp4k.EPTViolations() != 64 {
		t.Errorf("4KB-EPT violations = %d, want 64", hyp4k.EPTViolations())
	}
}

func TestGuestPhysCopyRange(t *testing.T) {
	_, gphys := newStack(t, arch.Page4K)
	src, err := gphys.AllocPage(arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := gphys.AllocPage(arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	for off := arch.PAddr(0); off < 4096; off += 8 {
		gphys.Write64(src+off, uint64(off)*3+1)
	}
	gphys.CopyRange(dst, src, 4096)
	for off := arch.PAddr(0); off < 4096; off += 8 {
		if v := gphys.Read64(dst + off); v != uint64(off)*3+1 {
			t.Fatalf("copy mismatch at +%#x: %#x", uint64(off), v)
		}
	}
}

// TestGuestPageTableOverGuestPhys builds a real guest page table in
// guest-physical memory and checks both software lookups compose: the
// table's own pages translate through the EPT, and a mapped VA resolves
// to the host bytes that were written through the guest path.
func TestGuestPageTableOverGuestPhys(t *testing.T) {
	hyp, gphys := newStack(t, arch.Page2M)
	pt, err := pagetable.New(gphys)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hyp.Translate(pt.Root()); !ok {
		t.Fatal("guest root table page not EPT-backed")
	}
	va := arch.VAddr(0x0000_0100_0000_0000)
	gframe, err := gphys.AllocPage(arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(va, gframe, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	gphys.Write64(gframe+0x18, 0x1234_5678)

	gpa, size, ok := pt.Lookup(va + 0x18)
	if !ok || size != arch.Page4K {
		t.Fatalf("guest lookup failed: ok=%v size=%s", ok, size)
	}
	hpa, ok := hyp.Translate(gpa)
	if !ok {
		t.Fatalf("gPA %#x not EPT-backed", uint64(gpa))
	}
	if v := hyp.Host().Read64(hpa); v != 0x1234_5678 {
		t.Fatalf("host bytes at composed address = %#x, want 0x12345678", v)
	}
	if hyp.EPTTableBytes() == 0 {
		t.Error("EPT spent no table bytes")
	}
}
