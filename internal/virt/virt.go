// Package virt adds the virtualization layer under the simulated machine:
// a hypervisor owning host physical memory and a second set of page
// tables — the extended page tables (EPT) — that translate guest-physical
// addresses to host-physical ones, plus a guest-physical memory
// implementation of mem.Memory that guest OS structures (page-table pages
// included) are built in.
//
// The layering mirrors hardware nested paging: a guest page table built
// over GuestPhys stores guest-physical pointers in its entries and keeps
// its table pages at guest-physical addresses, so resolving any one guest
// level requires a full EPT walk first. That multiplication — up to
// (n_g+1)·n_e + n_g PTE loads for an n_g-level guest walk over an
// n_e-level EPT, 24 for 4 KB guest pages over a 4 KB EPT — is what the
// nested walker in internal/walker charges, load by load, through the
// same cache hierarchy as everything else.
package virt

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/mem"
	"atscale/internal/pagetable"
)

// gpaBase is the first guest-physical address handed out. Like mem.Phys,
// guest-physical page zero stays unused to catch null-pointer bugs in the
// guest page-table code.
const gpaBase arch.PAddr = 1 << arch.PageShift4K

// Hypervisor owns host physical memory on behalf of its guests: it
// maintains the EPT (a radix table over host memory whose input addresses
// are guest-physical) and backs guest-physical frames with host frames of
// the configured EPT leaf size. One hypervisor may serve several guest
// address spaces; they share the EPT, which is the multi-tenant
// EPT-sharing configuration the virtualization sweeps measure.
type Hypervisor struct {
	host *mem.Phys
	ept  *pagetable.Table
	leaf arch.PageSize

	violations uint64 // EPT mappings installed (first touch of a gPA block)
	hostMapped uint64 // host bytes backing guest-physical memory
}

// NewHypervisor builds a hypervisor over host memory whose EPT maps
// guest-physical memory with leaves of the given size.
func NewHypervisor(host *mem.Phys, eptPages arch.PageSize) (*Hypervisor, error) {
	if eptPages >= arch.NumPageSizes {
		return nil, fmt.Errorf("virt: invalid EPT page size %d", eptPages)
	}
	ept, err := pagetable.New(host)
	if err != nil {
		return nil, fmt.Errorf("virt: allocating EPT: %w", err)
	}
	return &Hypervisor{host: host, ept: ept, leaf: eptPages}, nil
}

// EPT exposes the extended page table (the nested walker reads it through
// host memory; tests use its software Lookup as the host-dimension
// oracle).
func (h *Hypervisor) EPT() *pagetable.Table { return h.ept }

// Root returns the EPT root pointer (the EPTP).
func (h *Hypervisor) Root() arch.PAddr { return h.ept.Root() }

// EPTPages returns the EPT leaf policy.
func (h *Hypervisor) EPTPages() arch.PageSize { return h.leaf }

// Host exposes the host physical memory.
func (h *Hypervisor) Host() *mem.Phys { return h.host }

// EPTViolations counts EPT mappings installed — each is the service of
// one first-touch EPT violation for an EPT-leaf-sized guest-physical
// block.
func (h *Hypervisor) EPTViolations() uint64 { return h.violations }

// HostMappedBytes is the host physical memory backing guest-physical
// memory (EPT leaf granularity, so it exceeds the guest's own mapped
// bytes when EPT leaves are larger than guest frames).
func (h *Hypervisor) HostMappedBytes() uint64 { return h.hostMapped }

// EPTTableBytes is the host memory spent on EPT table pages — the
// host-dimension analogue of the guest's PageTableBytes.
func (h *Hypervisor) EPTTableBytes() uint64 { return h.ept.TableBytes() }

// Translate is the software gPA -> hPA oracle: the composition target the
// nested hardware-walker model is property- and fuzz-tested against.
func (h *Hypervisor) Translate(gpa arch.PAddr) (arch.PAddr, bool) {
	hpa, _, ok := h.ept.Lookup(arch.VAddr(gpa))
	return hpa, ok
}

// ensureBacked maps every EPT-leaf-sized block overlapping
// [gpa, gpa+n) that is not yet present, allocating host frames as it
// goes.
func (h *Hypervisor) ensureBacked(gpa arch.PAddr, n uint64) error {
	size := h.leaf.Bytes()
	start := arch.AlignDown(uint64(gpa), size)
	end := arch.AlignUp(uint64(gpa)+n, size)
	for b := start; b < end; b += size {
		if _, ok := h.Translate(arch.PAddr(b)); ok {
			continue
		}
		frame, err := h.host.AllocPage(h.leaf)
		if err != nil {
			return fmt.Errorf("virt: backing gPA %#x: %w", b, err)
		}
		if err := h.ept.Map(arch.VAddr(b), frame, h.leaf); err != nil {
			return fmt.Errorf("virt: EPT map of gPA %#x: %w", b, err)
		}
		h.violations++
		h.hostMapped += size
	}
	return nil
}

// GuestPhys is guest-physical memory: mem.Memory in guest-physical
// address space. Frames handed out are guest-physical; loads and stores
// translate through the hypervisor's EPT to reach the host bytes. Guest
// page tables built over a GuestPhys therefore keep their table pages —
// root included — at guest-physical addresses, exactly what the 2D
// walker needs.
//
// Backing is eager: allocating a guest-physical frame installs any
// missing EPT mapping immediately, so by the time the guest (or the
// hardware walker) touches a legitimately allocated gPA, translation is
// total. The EPT-violation count still records each first-touch mapping.
type GuestPhys struct {
	hyp   *Hypervisor
	limit uint64 // guest-physical capacity in bytes
	used  uint64 // guest-physical bytes handed out
	next  arch.PAddr

	// free recycles returned guest frames per size class. Recycled
	// frames are re-zeroed through the EPT on reuse (host backing may
	// hold stale guest data).
	free [arch.NumPageSizes][]arch.PAddr

	// lastGCN/lastHCN cache the most recent 4 KB-chunk translation;
	// EPT mappings are never removed, so the cache needs no
	// invalidation.
	lastGCN uint64
	lastHCN arch.PAddr
	lastOK  bool
}

var _ mem.Memory = (*GuestPhys)(nil)

// NewGuestPhys creates a guest-physical memory of the given capacity,
// backed by the hypervisor's host memory through its EPT.
func NewGuestPhys(hyp *Hypervisor, limitBytes uint64) *GuestPhys {
	return &GuestPhys{hyp: hyp, limit: limitBytes, next: gpaBase}
}

// Hypervisor returns the backing hypervisor.
func (g *GuestPhys) Hypervisor() *Hypervisor { return g.hyp }

// ReservedBytes returns the guest-physical bytes handed out.
func (g *GuestPhys) ReservedBytes() uint64 { return g.used }

// AllocPage allocates one naturally aligned guest-physical frame and
// guarantees (a) it is EPT-backed and (b) it reads as zero through the
// guest.
func (g *GuestPhys) AllocPage(ps arch.PageSize) (arch.PAddr, error) {
	if n := len(g.free[ps]); n > 0 {
		gpa := g.free[ps][n-1]
		g.free[ps] = g.free[ps][:n-1]
		g.zero(gpa, ps.Bytes())
		return gpa, nil
	}
	size := ps.Bytes()
	base := arch.PAddr(arch.AlignUp(uint64(g.next), size))
	if uint64(base)+size-uint64(gpaBase) > g.limit {
		return 0, fmt.Errorf("virt: out of guest-physical memory (limit %s, requested %s frame)",
			arch.FormatBytes(g.limit), ps)
	}
	g.next = base + arch.PAddr(size)
	g.used += size
	if err := g.hyp.ensureBacked(base, size); err != nil {
		return 0, err
	}
	// Fresh host frames are zero; the block may still share an EPT leaf
	// with previously freed-and-dirtied guest memory only via the free
	// list, which re-zeroes on reuse, so no zeroing is needed here.
	return base, nil
}

// FreePage returns a guest frame to the allocator. The EPT mapping (and
// host backing) is retained, as production hypervisors retain it.
func (g *GuestPhys) FreePage(gpa arch.PAddr, ps arch.PageSize) {
	if !arch.IsAligned(uint64(gpa), ps.Bytes()) {
		panic(fmt.Sprintf("virt: FreePage(%#x) misaligned for %s", uint64(gpa), ps))
	}
	g.free[ps] = append(g.free[ps], gpa)
}

// translate resolves the host 4 KB chunk containing gpa.
func (g *GuestPhys) translate(gpa arch.PAddr) arch.PAddr {
	gcn := uint64(gpa) >> arch.PageShift4K
	if g.lastOK && g.lastGCN == gcn {
		return g.lastHCN + arch.PAddr(uint64(gpa)&arch.Page4K.Mask())
	}
	hpa, ok := g.hyp.Translate(gpa)
	if !ok {
		panic(fmt.Sprintf("virt: access to unbacked gPA %#x", uint64(gpa)))
	}
	g.lastGCN, g.lastHCN, g.lastOK = gcn, hpa-arch.PAddr(uint64(gpa)&arch.Page4K.Mask()), true
	return hpa
}

// Read64 loads the 8-byte word at guest-physical address gpa.
func (g *GuestPhys) Read64(gpa arch.PAddr) uint64 {
	return g.hyp.host.Read64(g.translate(gpa))
}

// Write64 stores an 8-byte word at guest-physical address gpa.
func (g *GuestPhys) Write64(gpa arch.PAddr, v uint64) {
	g.hyp.host.Write64(g.translate(gpa), v)
}

// CopyRange copies n bytes between guest-physical ranges (4 KB-aligned),
// chunk by chunk through the EPT.
func (g *GuestPhys) CopyRange(dst, src arch.PAddr, n uint64) {
	const chunk = uint64(1) << arch.PageShift4K
	if !arch.IsAligned(uint64(dst), chunk) || !arch.IsAligned(uint64(src), chunk) || !arch.IsAligned(n, chunk) {
		panic(fmt.Sprintf("virt: misaligned CopyRange(%#x, %#x, %d)", uint64(dst), uint64(src), n))
	}
	for off := uint64(0); off < n; off += chunk {
		g.hyp.host.CopyRange(g.translate(dst+arch.PAddr(off)), g.translate(src+arch.PAddr(off)), chunk)
	}
}

// zero clears a guest-physical range (4 KB-aligned) through the EPT.
func (g *GuestPhys) zero(gpa arch.PAddr, n uint64) {
	const chunk = uint64(1) << arch.PageShift4K
	for off := uint64(0); off < n; off += chunk {
		g.hyp.host.ZeroRange(g.translate(gpa+arch.PAddr(off)), chunk)
	}
}
