package vm

import (
	"fmt"

	"atscale/internal/arch"
)

// This file implements hugepage promotion: collapsing 512 base-page
// mappings of an aligned 2 MB block into one superpage mapping, khugepaged
// style. The paper's discussion proposes driving exactly this with the
// WCPI metric; the machine layer supplies that policy, and this is the
// mechanism.

// CanPromote reports whether va's 2 MB block is eligible: inside a
// 4 KB-backed region, fully covered by it, and not already promoted.
func (as *AddrSpace) CanPromote(va arch.VAddr) bool {
	if !as.pt.Superpages() {
		return false
	}
	block := arch.PageBase(va, arch.Page2M)
	r, ok := as.Find(block)
	if !ok || r.Backing != arch.Page4K {
		return false
	}
	if block < r.Base || uint64(block)+arch.Page2M.Bytes() > uint64(r.End()) {
		return false
	}
	if as.promoted[block] {
		return false
	}
	return true
}

// Promote collapses the 2 MB block containing va to a superpage mapping:
// data from every mapped base page is copied into a fresh 2 MB frame, the
// base mappings are destroyed, the page-table level is collapsed, and the
// superpage is installed. Unmapped (never-touched) parts of the block read
// as zero afterwards, exactly as before.
//
// The caller owns TLB and paging-structure-cache invalidation for the
// affected range (hardware state is not the OS's to reach into directly).
func (as *AddrSpace) Promote(va arch.VAddr) error {
	block := arch.PageBase(va, arch.Page2M)
	if !as.CanPromote(block) {
		return fmt.Errorf("vm: block %#x not promotable", uint64(block))
	}
	frame, err := as.phys.AllocPage(arch.Page2M)
	if err != nil {
		return fmt.Errorf("vm: promoting %#x: %w", uint64(block), err)
	}
	pages := arch.Page2M.Bytes() / arch.Page4K.Bytes()
	for i := uint64(0); i < pages; i++ {
		pva := block + arch.VAddr(i*arch.Page4K.Bytes())
		// pva is page-aligned, so Lookup returns the old frame base.
		old, ps, ok := as.pt.Lookup(pva)
		if !ok {
			continue // never faulted; stays zero in the new frame
		}
		if ps != arch.Page4K {
			return fmt.Errorf("vm: promoting %#x: unexpected %s mapping inside block", uint64(block), ps)
		}
		as.phys.CopyRange(frame+arch.PAddr(i*arch.Page4K.Bytes()), old, arch.Page4K.Bytes())
		if err := as.pt.Unmap(pva, arch.Page4K); err != nil {
			return fmt.Errorf("vm: promoting %#x: %w", uint64(block), err)
		}
		as.phys.FreePage(old, arch.Page4K)
		as.mapped -= arch.Page4K.Bytes()
	}
	if err := as.pt.Collapse(block); err != nil {
		return fmt.Errorf("vm: promoting %#x: %w", uint64(block), err)
	}
	if err := as.pt.Map(block, frame, arch.Page2M); err != nil {
		return fmt.Errorf("vm: promoting %#x: %w", uint64(block), err)
	}
	as.mapped += arch.Page2M.Bytes()
	if as.promoted == nil {
		as.promoted = make(map[arch.VAddr]bool)
	}
	as.promoted[block] = true
	as.promotions++
	return nil
}

// Promotions returns how many blocks have been promoted.
func (as *AddrSpace) Promotions() uint64 { return as.promotions }
