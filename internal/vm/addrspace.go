// Package vm is the simulated guest operating system's memory manager: a
// malloc-style virtual allocator, demand paging, and the hugepage backing
// policy the paper configures through hugetlbfs and the
// glibc.malloc.hugetlb tunable (§III).
//
// The policy reproduces the paper's baseline subtlety (§III-B): under the
// 1 GB policy, allocations smaller than 1 GB cannot come from the 1 GB
// pool and fall back to 4 KB pages, which is why min(t_2MB, t_1GB) — not
// t_1GB alone — approximates the translation-free baseline.
package vm

import (
	"fmt"
	"sort"

	"atscale/internal/arch"
	"atscale/internal/mem"
	"atscale/internal/pagetable"
)

const (
	// heapBase is the first heap virtual address.
	heapBase arch.VAddr = 0x0000_0100_0000_0000
	// regionGap separates consecutive regions to catch stray accesses.
	regionGap = 64 * arch.KB
	// mmapThreshold routes large allocations to their own region, like
	// glibc's M_MMAP_THRESHOLD.
	mmapThreshold = 128 * arch.KB
	// arenaChunk is the growth increment of the small-allocation arena.
	arenaChunk = 4 * arch.MB
)

// Region is one contiguous virtual mapping with a single backing page size.
type Region struct {
	// Base is the region's first virtual address.
	Base arch.VAddr
	// Len is the region's length in bytes (a multiple of Backing).
	Len uint64
	// Backing is the page size demand faults map the region with.
	Backing arch.PageSize
}

// End returns the first address past the region.
func (r Region) End() arch.VAddr { return r.Base + arch.VAddr(r.Len) }

// Tables is the page-table organization an address space maintains. The
// radix pagetable.Table is the production implementation; the hashed
// table is the alternative-structure extension.
type Tables interface {
	// Map installs va -> pa at the given page size.
	Map(va arch.VAddr, pa arch.PAddr, ps arch.PageSize) error
	// Unmap removes a translation installed with the same size.
	Unmap(va arch.VAddr, ps arch.PageSize) error
	// Lookup is the software reference walk.
	Lookup(va arch.VAddr) (arch.PAddr, arch.PageSize, bool)
	// Root is the hardware walker's CR3 value.
	Root() arch.PAddr
	// TableBytes is the physical memory spent on translation structures.
	TableBytes() uint64
	// Collapse removes an emptied leaf table under va's 2 MB block
	// (hugepage promotion); unsupported organizations return an error.
	Collapse(va arch.VAddr) error
	// Canonical reports whether va is representable.
	Canonical(va arch.VAddr) bool
	// Superpages reports whether 2 MB/1 GB leaves are supported.
	Superpages() bool
}

// AddrSpace is one process's virtual address space.
type AddrSpace struct {
	phys   mem.Memory
	pt     Tables
	policy arch.PageSize

	next    arch.VAddr // next free virtual address
	regions []Region   // sorted by Base

	// arena is the open small-allocation arena (index into regions, or -1).
	arena    int
	arenaOff uint64

	allocated uint64 // malloc'd bytes (footprint, 4 KB rounded)
	mapped    uint64 // bytes actually mapped by demand faults
	faults    uint64

	// promoted tracks 2 MB blocks collapsed to superpages (see
	// promote.go).
	promoted   map[arch.VAddr]bool
	promotions uint64
}

// NewAddrSpace creates an empty 4-level address space whose heap is backed
// according to the given page-size policy.
func NewAddrSpace(phys mem.Memory, policy arch.PageSize) (*AddrSpace, error) {
	return NewAddrSpaceDepth(phys, policy, 4)
}

// NewAddrSpaceDepth is NewAddrSpace with an explicit paging depth (4 or 5
// levels).
func NewAddrSpaceDepth(phys mem.Memory, policy arch.PageSize, levels int) (*AddrSpace, error) {
	pt, err := pagetable.NewWithDepth(phys, levels)
	if err != nil {
		return nil, err
	}
	return NewAddrSpaceTables(phys, policy, pt)
}

// NewAddrSpaceTables builds an address space over a caller-supplied
// page-table organization (the hashed-table extension's entry point).
func NewAddrSpaceTables(phys mem.Memory, policy arch.PageSize, pt Tables) (*AddrSpace, error) {
	if !pt.Superpages() && policy != arch.Page4K {
		return nil, fmt.Errorf("vm: %s backing requires a page-table organization with superpages", policy)
	}
	return &AddrSpace{
		phys:   phys,
		pt:     pt,
		policy: policy,
		next:   heapBase,
		arena:  -1,
	}, nil
}

// Reset returns the address space to its just-created state under the
// given backing policy, reusing the regions slice and promotion map. The
// caller must reset the underlying physical memory first; Reset then
// rebuilds the (empty) page table over it. Organizations without a Reset
// (the hashed table) report an error and the caller falls back to a full
// rebuild.
func (as *AddrSpace) Reset(policy arch.PageSize) error {
	rt, ok := as.pt.(interface{ Reset() error })
	if !ok {
		return fmt.Errorf("vm: page-table organization does not support Reset")
	}
	if !as.pt.Superpages() && policy != arch.Page4K {
		return fmt.Errorf("vm: %s backing requires a page-table organization with superpages", policy)
	}
	if err := rt.Reset(); err != nil {
		return err
	}
	as.policy = policy
	as.next = heapBase
	as.regions = as.regions[:0]
	as.arena = -1
	as.arenaOff = 0
	as.allocated, as.mapped, as.faults = 0, 0, 0
	clear(as.promoted)
	as.promotions = 0
	return nil
}

// PageTable exposes the address space's page tables (the walker needs
// the root, tests need the oracle Lookup).
func (as *AddrSpace) PageTable() Tables { return as.pt }

// Policy returns the configured backing page size.
func (as *AddrSpace) Policy() arch.PageSize { return as.policy }

// BackingFor returns the page size the policy actually backs an
// allocation of n bytes with. Under the 1 GB policy, sub-1 GB allocations
// fall back to 4 KB (the hugetlbfs pool granularity cannot cover them).
func (as *AddrSpace) BackingFor(n uint64) arch.PageSize {
	if as.policy == arch.Page1G && n < arch.GB {
		return arch.Page4K
	}
	return as.policy
}

// Malloc allocates n bytes of zeroed virtual memory and returns its base
// address (16-byte aligned). Memory is mapped lazily on first access.
func (as *AddrSpace) Malloc(n uint64) (arch.VAddr, error) {
	if n == 0 {
		n = 16
	}
	n = arch.AlignUp(n, 16)
	if n < mmapThreshold {
		return as.smallAlloc(n)
	}
	backing := as.BackingFor(n)
	r, err := as.addRegion(arch.AlignUp(n, backing.Bytes()), backing)
	if err != nil {
		return 0, err
	}
	as.allocated += arch.AlignUp(n, arch.Page4K.Bytes())
	return r.Base, nil
}

// smallAlloc bumps inside the open arena, opening a new arena chunk when
// the current one is exhausted.
func (as *AddrSpace) smallAlloc(n uint64) (arch.VAddr, error) {
	if as.arena < 0 || as.arenaOff+n > as.regions[as.arena].Len {
		backing := as.BackingFor(arenaChunk)
		r, err := as.addRegion(arch.AlignUp(arenaChunk, backing.Bytes()), backing)
		if err != nil {
			return 0, err
		}
		// addRegion may re-sort; find the new region's index by base.
		as.arena = as.regionIndex(r.Base)
		as.arenaOff = 0
	}
	va := as.regions[as.arena].Base + arch.VAddr(as.arenaOff)
	as.arenaOff += n
	as.allocated += arch.AlignUp(n, arch.Page4K.Bytes())
	return va, nil
}

// addRegion reserves a fresh virtual region of len bytes (a multiple of
// backing) and records it for demand paging.
func (as *AddrSpace) addRegion(length uint64, backing arch.PageSize) (Region, error) {
	base := arch.VAddr(arch.AlignUp(uint64(as.next), backing.Bytes()))
	if !as.pt.Canonical(base + arch.VAddr(length)) {
		return Region{}, fmt.Errorf("vm: virtual address space exhausted at %#x", uint64(base))
	}
	r := Region{Base: base, Len: length, Backing: backing}
	as.regions = append(as.regions, r)
	sort.Slice(as.regions, func(i, j int) bool { return as.regions[i].Base < as.regions[j].Base })
	as.next = r.End() + regionGap
	return r, nil
}

func (as *AddrSpace) regionIndex(base arch.VAddr) int {
	return sort.Search(len(as.regions), func(i int) bool { return as.regions[i].Base >= base })
}

// Find returns the region containing va, if any.
func (as *AddrSpace) Find(va arch.VAddr) (Region, bool) {
	i := sort.Search(len(as.regions), func(i int) bool { return as.regions[i].End() > va })
	if i < len(as.regions) && va >= as.regions[i].Base {
		return as.regions[i], true
	}
	return Region{}, false
}

// HandleFault services a demand page fault at va: it allocates a frame of
// the containing region's backing size and installs the mapping. It
// returns the mapped page size. Faults outside any region are guest
// segfaults and return an error.
func (as *AddrSpace) HandleFault(va arch.VAddr) (arch.PageSize, error) {
	r, ok := as.Find(va)
	if !ok {
		return 0, fmt.Errorf("vm: segfault at %#x (no region)", uint64(va))
	}
	base := arch.PageBase(va, r.Backing)
	frame, err := as.phys.AllocPage(r.Backing)
	if err != nil {
		return 0, fmt.Errorf("vm: demand fault at %#x: %w", uint64(va), err)
	}
	if err := as.pt.Map(base, frame, r.Backing); err != nil {
		return 0, fmt.Errorf("vm: demand fault at %#x: %w", uint64(va), err)
	}
	as.mapped += r.Backing.Bytes()
	as.faults++
	return r.Backing, nil
}

// AllocatedBytes is the program's memory footprint: malloc'd bytes rounded
// to 4 KB pages. The paper indexes every experiment by this quantity
// measured under the 4 KB configuration; rounding to the base page keeps
// the number identical across backing policies.
func (as *AddrSpace) AllocatedBytes() uint64 { return as.allocated }

// MappedBytes is the demand-mapped memory (the RSS analogue; includes
// backing-size rounding, so it exceeds AllocatedBytes under superpages).
func (as *AddrSpace) MappedBytes() uint64 { return as.mapped }

// Faults returns the number of demand faults taken.
func (as *AddrSpace) Faults() uint64 { return as.faults }

// Regions returns the live regions (read-only view for tests/tools).
func (as *AddrSpace) Regions() []Region { return as.regions }
