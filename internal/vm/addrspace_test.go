package vm

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/mem"
	"atscale/internal/pagetable"
)

func newAS(t *testing.T, policy arch.PageSize) *AddrSpace {
	t.Helper()
	as, err := NewAddrSpace(mem.NewPhys(64*arch.GB), policy)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestMallocReturnsDistinctAligned(t *testing.T) {
	as := newAS(t, arch.Page4K)
	seen := map[arch.VAddr]bool{}
	for i := 0; i < 100; i++ {
		va, err := as.Malloc(100)
		if err != nil {
			t.Fatal(err)
		}
		if va%16 != 0 {
			t.Errorf("Malloc returned unaligned %#x", uint64(va))
		}
		if seen[va] {
			t.Errorf("Malloc returned %#x twice", uint64(va))
		}
		seen[va] = true
	}
}

func TestSmallAllocsShareArena(t *testing.T) {
	as := newAS(t, arch.Page4K)
	a, _ := as.Malloc(64)
	b, _ := as.Malloc(64)
	if b != a+64 {
		t.Errorf("arena not bump-allocated: %#x then %#x", uint64(a), uint64(b))
	}
	if len(as.Regions()) != 1 {
		t.Errorf("%d regions for two small allocs, want 1 arena", len(as.Regions()))
	}
}

func TestLargeAllocOwnRegion(t *testing.T) {
	as := newAS(t, arch.Page4K)
	_, _ = as.Malloc(64)
	_, err := as.Malloc(10 * arch.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(as.Regions()) != 2 {
		t.Errorf("%d regions, want arena + large region", len(as.Regions()))
	}
}

func TestBackingPolicy(t *testing.T) {
	cases := []struct {
		policy arch.PageSize
		n      uint64
		want   arch.PageSize
	}{
		{arch.Page4K, 10 * arch.MB, arch.Page4K},
		{arch.Page2M, 10 * arch.MB, arch.Page2M},
		{arch.Page2M, 4 * arch.KB, arch.Page2M},
		{arch.Page1G, 2 * arch.GB, arch.Page1G},
		// The paper's §III-B fallback: sub-1GB requests cannot use the
		// 1GB pool.
		{arch.Page1G, 10 * arch.MB, arch.Page4K},
	}
	for _, c := range cases {
		as := newAS(t, c.policy)
		if got := as.BackingFor(c.n); got != c.want {
			t.Errorf("BackingFor(%d) under %v = %v, want %v", c.n, c.policy, got, c.want)
		}
	}
}

func TestRegionBackingRecorded(t *testing.T) {
	as := newAS(t, arch.Page1G)
	va, err := as.Malloc(2 * arch.GB)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := as.Find(va)
	if !ok || r.Backing != arch.Page1G {
		t.Errorf("2GB region under 1G policy: %+v, %v", r, ok)
	}
	va2, _ := as.Malloc(arch.MB)
	r2, ok := as.Find(va2)
	if !ok || r2.Backing != arch.Page4K {
		t.Errorf("small region under 1G policy backed by %v, want 4KB", r2.Backing)
	}
}

func TestHandleFaultMapsPage(t *testing.T) {
	for _, policy := range []arch.PageSize{arch.Page4K, arch.Page2M} {
		as := newAS(t, policy)
		va, _ := as.Malloc(10 * arch.MB)
		target := va + 12345
		if _, _, ok := as.PageTable().Lookup(target); ok {
			t.Fatal("page mapped before fault")
		}
		ps, err := as.HandleFault(target)
		if err != nil {
			t.Fatal(err)
		}
		if ps != policy {
			t.Errorf("fault mapped %v, want %v", ps, policy)
		}
		pa, gotPS, ok := as.PageTable().Lookup(target)
		if !ok || gotPS != policy || pa == 0 {
			t.Errorf("after fault: %#x %v %v", uint64(pa), gotPS, ok)
		}
	}
}

func TestFaultOutsideRegionsFails(t *testing.T) {
	as := newAS(t, arch.Page4K)
	if _, err := as.HandleFault(0xdead0000); err == nil {
		t.Error("segfault address fault succeeded")
	}
}

func TestEachPageFaultsOnce(t *testing.T) {
	as := newAS(t, arch.Page4K)
	va, _ := as.Malloc(arch.MB)
	if _, err := as.HandleFault(va); err != nil {
		t.Fatal(err)
	}
	// Second fault on the same page means the caller faulted a mapped
	// page — Map must reject the double mapping.
	if _, err := as.HandleFault(va + 8); err == nil {
		t.Error("double fault on one page succeeded")
	}
	if as.Faults() != 1 {
		t.Errorf("faults = %d, want 1", as.Faults())
	}
}

func TestFootprintAccounting(t *testing.T) {
	as := newAS(t, arch.Page2M)
	if as.AllocatedBytes() != 0 {
		t.Fatal("fresh space has footprint")
	}
	as.Malloc(100) // rounds to one 4K page
	if got := as.AllocatedBytes(); got != 4*arch.KB {
		t.Errorf("allocated = %d, want 4096", got)
	}
	as.Malloc(arch.MB)
	if got := as.AllocatedBytes(); got != 4*arch.KB+arch.MB {
		t.Errorf("allocated = %d", got)
	}
	// Footprint must be independent of backing policy.
	as4k := newAS(t, arch.Page4K)
	as4k.Malloc(100)
	as4k.Malloc(arch.MB)
	if as4k.AllocatedBytes() != as.AllocatedBytes() {
		t.Errorf("footprint differs across policies: %d vs %d",
			as4k.AllocatedBytes(), as.AllocatedBytes())
	}
}

func TestMappedBytesGrowsWithBacking(t *testing.T) {
	as := newAS(t, arch.Page2M)
	va, _ := as.Malloc(16 * arch.MB)
	as.HandleFault(va)
	if got := as.MappedBytes(); got != 2*arch.MB {
		t.Errorf("mapped = %d after one 2MB fault", got)
	}
}

func TestRegionsDisjointAndSorted(t *testing.T) {
	as := newAS(t, arch.Page4K)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		n := uint64(rng.Intn(4*arch.MB) + 1)
		if _, err := as.Malloc(n); err != nil {
			t.Fatal(err)
		}
	}
	rs := as.Regions()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].End() > rs[i].Base {
			t.Fatalf("regions overlap/unsorted: %+v then %+v", rs[i-1], rs[i])
		}
	}
}

func TestFindBoundaries(t *testing.T) {
	as := newAS(t, arch.Page4K)
	va, _ := as.Malloc(arch.MB)
	r, ok := as.Find(va)
	if !ok {
		t.Fatal("Find(base) failed")
	}
	if _, ok := as.Find(r.End()); ok {
		t.Error("Find(end) hit (end is exclusive)")
	}
	if _, ok := as.Find(r.Base - 1); ok {
		t.Error("Find(base-1) hit")
	}
	if _, ok := as.Find(r.End() - 1); !ok {
		t.Error("Find(end-1) missed")
	}
}

func TestSuperpageRegionAlignment(t *testing.T) {
	as := newAS(t, arch.Page1G)
	va, err := as.Malloc(arch.GB + 5)
	if err != nil {
		t.Fatal(err)
	}
	if !arch.IsAligned(uint64(va), arch.GB) {
		t.Errorf("1GB-backed region base %#x not 1GB aligned", uint64(va))
	}
	r, _ := as.Find(va)
	if r.Len != 2*arch.GB {
		t.Errorf("region len = %d, want 2GB (rounded to backing)", r.Len)
	}
}

func TestTablesWithoutSuperpagesRejectSuperpagePolicy(t *testing.T) {
	phys := mem.NewPhys(8 * arch.GB)
	ht, err := pagetable.NewHashed(phys, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAddrSpaceTables(phys, arch.Page2M, ht); err == nil {
		t.Error("2MB policy accepted over a hashed table")
	}
	if _, err := NewAddrSpaceTables(phys, arch.Page4K, ht); err != nil {
		t.Errorf("4KB policy rejected: %v", err)
	}
}
