package mem

import "atscale/internal/arch"

// Memory is the physical-memory contract the page-table and OS layers
// build on: a frame allocator plus word-granular access. *Phys is the
// host implementation; the virtualization layer implements it a second
// time in guest-physical space (internal/virt), which is what lets one
// pagetable.Table serve both as a native table and as a guest table
// whose table pages are themselves guest-physical.
type Memory interface {
	// AllocPage allocates one naturally aligned zeroed frame.
	AllocPage(ps arch.PageSize) (arch.PAddr, error)
	// FreePage returns a frame obtained from AllocPage.
	FreePage(pa arch.PAddr, ps arch.PageSize)
	// Read64 loads the 8-byte word at pa (8-byte aligned).
	Read64(pa arch.PAddr) uint64
	// Write64 stores an 8-byte word at pa (8-byte aligned).
	Write64(pa arch.PAddr, v uint64)
	// CopyRange copies n bytes from src to dst (4 KB-aligned addresses
	// and length).
	CopyRange(dst, src arch.PAddr, n uint64)
}

var _ Memory = (*Phys)(nil)

// ZeroRange clears [pa, pa+n), both 4 KB chunk-aligned, without
// materializing untouched backing.
func (p *Phys) ZeroRange(pa arch.PAddr, n uint64) {
	if !arch.IsAligned(uint64(pa), 1<<chunkShift) || !arch.IsAligned(n, 1<<chunkShift) {
		panic("mem: misaligned ZeroRange")
	}
	p.zeroRange(pa, n)
}
