// Package mem implements the simulated machine's physical memory: a frame
// allocator for all three x86-64 page sizes and a sparsely backed byte
// store. Backing chunks are materialized lazily on first touch, so a guest
// may reserve far more physical memory than the host process ever commits
// (a 1 GB guest superpage costs host memory only for the 4 KB chunks the
// workload actually writes).
package mem

import (
	"encoding/binary"
	"fmt"

	"atscale/internal/arch"
)

// chunkShift sizes the lazily allocated backing chunks (4 KB, matching the
// base page size so chunk boundaries never split a frame).
const chunkShift = arch.PageShift4K

// chunkBytes is the backing chunk size.
const chunkBytes = 1 << chunkShift

// groupShift sizes the chunk directory's groups: 512 chunks (2 MB of
// physical address space) per group, so group boundaries coincide with
// 2 MB frame boundaries and superpage frees drop whole groups.
const groupShift = 9

// groupChunks / groupBytes derive the group geometry.
const (
	groupChunks = 1 << groupShift
	groupBytes  = groupChunks << chunkShift
)

// physBase is the first physical address handed out. Leaving page zero
// unused catches null-physical-address bugs in the page-table code.
const physBase = 1 << arch.PageShift4K

// group is one 2 MB span of the chunk directory: direct-indexed chunk
// pointers plus a count of materialized chunks (so dropping the group
// adjusts the touched telemetry without a scan).
type group struct {
	chunk [groupChunks]*[chunkBytes]byte
	live  uint32
}

// Phys is the simulated physical memory. It is not safe for concurrent use;
// the machine model is single-core (the paper's per-core counters are what
// we reproduce).
//
// The backing store is a two-level direct-indexed directory — physical
// address → group → chunk — so the walker-loop Read64 is two shifts and
// two array loads, never a map probe. The directory spine is sized from
// the configured limit at construction (a 256 GB machine costs ~1 MB of
// nil group pointers) and groups materialize on first write.
type Phys struct {
	limit    uint64 // total physical bytes available
	reserved uint64 // bytes handed out to allocations

	// nodes holds the per-NUMA-node allocators. A UMA machine has one
	// node spanning the whole address range, making its allocation
	// sequence byte-identical to the pre-NUMA single-allocator model.
	nodes []nodeAlloc

	// stride is the byte span of each node's region (0 with one node);
	// NodeOf divides by it.
	stride uint64

	// dir is the chunk directory spine, indexed by pa >> (chunkShift +
	// groupShift). Entries are nil until a chunk in the group is written.
	dir []*group

	// slab is the current host allocation chunks are carved from;
	// slab-carving keeps the Go allocator out of the per-chunk path.
	//
	//atlint:noreset leftover slab capacity is still-zeroed host memory; carving the next chunk from it is identical to carving from a fresh slab
	slab []byte

	// touched counts backing chunks materialized (host-memory telemetry).
	//
	//atlint:noreset Reset clears chunk contents but does not release them, so the lifetime materialization count stays accurate
	touched uint64
}

// nodeAlloc is one NUMA node's frame allocator: a bump pointer over the
// node's region plus per-size free lists.
type nodeAlloc struct {
	start uint64 // first allocatable address of the region
	end   uint64 // one past the last allocatable address
	next  uint64 // bump pointer for fresh frames

	// free holds returned frames per page size.
	free [arch.NumPageSizes][]arch.PAddr
}

// slabSize is the host allocation granularity backing chunks are carved
// from (256 chunks per slab).
const slabSize = 256 << chunkShift

// NewPhys returns a UMA physical memory of the given capacity in bytes.
func NewPhys(limitBytes uint64) *Phys { return NewPhysNUMA(limitBytes, 1) }

// NewPhysNUMA returns a physical memory of the given capacity split into
// nodes equal NUMA node regions. Node regions are aligned so every node
// can hand out naturally aligned frames of any page size: the region
// stride is a 1 GB multiple when the capacity allows, 2 MB otherwise
// (1 GB frames then live on whichever node their alignment lands them).
func NewPhysNUMA(limitBytes uint64, nodes int) *Phys {
	if nodes < 1 {
		nodes = 1
	}
	p := &Phys{
		limit: limitBytes,
		dir:   make([]*group, (physBase+limitBytes+groupBytes-1)>>(chunkShift+groupShift)),
	}
	if nodes == 1 {
		p.nodes = []nodeAlloc{{start: physBase, end: physBase + limitBytes, next: physBase}}
		return p
	}
	stride := arch.AlignDown(limitBytes/uint64(nodes), arch.Page1G.Bytes())
	if stride == 0 {
		stride = arch.AlignDown(limitBytes/uint64(nodes), groupBytes)
	}
	if stride == 0 {
		panic(fmt.Sprintf("mem: %s too small for %d NUMA nodes", arch.FormatBytes(limitBytes), nodes))
	}
	p.stride = stride
	p.nodes = make([]nodeAlloc, nodes)
	for i := range p.nodes {
		start := uint64(i) * stride
		if i == 0 {
			start = physBase
		}
		end := uint64(i+1) * stride
		if i == nodes-1 {
			end = physBase + limitBytes
		}
		p.nodes[i] = nodeAlloc{start: start, end: end, next: start}
	}
	return p
}

// Nodes returns the number of NUMA nodes (1 for UMA).
func (p *Phys) Nodes() int { return len(p.nodes) }

// NodeOf returns the NUMA node whose region holds pa.
func (p *Phys) NodeOf(pa arch.PAddr) int {
	if p.stride == 0 {
		return 0
	}
	n := int(uint64(pa) / p.stride)
	if n >= len(p.nodes) {
		n = len(p.nodes) - 1
	}
	return n
}

// AllocPage allocates one naturally aligned physical frame of the given
// page size on node 0 and returns its base address. The frame's contents
// are zero.
func (p *Phys) AllocPage(ps arch.PageSize) (arch.PAddr, error) {
	return p.AllocPageOnNode(ps, 0)
}

// AllocPageOnNode allocates one naturally aligned zeroed frame from the
// given NUMA node's region.
func (p *Phys) AllocPageOnNode(ps arch.PageSize, node int) (arch.PAddr, error) {
	if node < 0 || node >= len(p.nodes) {
		return 0, fmt.Errorf("mem: no NUMA node %d (have %d)", node, len(p.nodes))
	}
	na := &p.nodes[node]
	if n := len(na.free[ps]); n > 0 {
		pa := na.free[ps][n-1]
		na.free[ps] = na.free[ps][:n-1]
		p.zeroRange(pa, ps.Bytes())
		return pa, nil
	}
	size := ps.Bytes()
	base := arch.AlignUp(na.next, size)
	if base+size > na.end {
		if len(p.nodes) > 1 {
			return 0, fmt.Errorf("mem: out of physical memory on node %d (limit %s, requested %s frame)",
				node, arch.FormatBytes(p.limit), ps)
		}
		return 0, fmt.Errorf("mem: out of physical memory (limit %s, requested %s frame)",
			arch.FormatBytes(p.limit), ps)
	}
	na.next = base + size
	p.reserved += size
	return arch.PAddr(base), nil
}

// FreePage returns a frame to the allocator (to the free list of the node
// whose region holds it). The caller must pass the same base address and
// page size that AllocPage returned.
func (p *Phys) FreePage(pa arch.PAddr, ps arch.PageSize) {
	if !arch.IsAligned(uint64(pa), ps.Bytes()) {
		panic(fmt.Sprintf("mem: FreePage(%#x) misaligned for %s", uint64(pa), ps))
	}
	na := &p.nodes[p.NodeOf(pa)]
	na.free[ps] = append(na.free[ps], pa)
	// Drop backing for large frames so freed guest memory returns host
	// memory too.
	if ps != arch.Page4K {
		p.dropRange(pa, ps.Bytes())
	}
}

// ReservedBytes returns how many physical bytes are currently handed out
// (including frames on free lists, which remain reserved to their size
// class).
func (p *Phys) ReservedBytes() uint64 { return p.reserved }

// TouchedBytes returns how much backing store has been materialized.
func (p *Phys) TouchedBytes() uint64 { return p.touched << chunkShift }

// Reset returns the allocator to its initial state — every frame free,
// the bump pointer back at physBase — while keeping materialized backing
// chunks (zeroed in place) for the next tenant. Reuse is what makes
// campaign machine pooling cheap: the next run's working set lands on
// already-committed host memory instead of re-faulting it in.
func (p *Phys) Reset() {
	for _, g := range p.dir {
		if g == nil {
			continue
		}
		for _, c := range g.chunk {
			if c != nil {
				clear(c[:])
			}
		}
	}
	for i := range p.nodes {
		na := &p.nodes[i]
		for ps := range na.free {
			na.free[ps] = na.free[ps][:0]
		}
		na.next = na.start
	}
	p.reserved = 0
}

// OnNode returns a Memory view of p whose AllocPage draws frames from
// the given NUMA node's region (page-table replica placement); accesses
// pass straight through. The view shares all state with p.
func (p *Phys) OnNode(node int) Memory {
	return &nodeView{p: p, node: node}
}

// nodeView is the node-pinned Memory adapter OnNode returns.
type nodeView struct {
	p    *Phys
	node int
}

func (v *nodeView) AllocPage(ps arch.PageSize) (arch.PAddr, error) {
	return v.p.AllocPageOnNode(ps, v.node)
}
func (v *nodeView) FreePage(pa arch.PAddr, ps arch.PageSize) { v.p.FreePage(pa, ps) }
func (v *nodeView) Read64(pa arch.PAddr) uint64              { return v.p.Read64(pa) }
func (v *nodeView) Write64(pa arch.PAddr, vv uint64)         { v.p.Write64(pa, vv) }
func (v *nodeView) CopyRange(dst, src arch.PAddr, n uint64)  { v.p.CopyRange(dst, src, n) }

// chunk returns the backing slice for pa, materializing it if needed.
func (p *Phys) chunk(pa arch.PAddr) *[chunkBytes]byte {
	cn := uint64(pa) >> chunkShift
	gi := cn >> groupShift
	g := p.dir[gi]
	if g == nil {
		g = &group{}
		p.dir[gi] = g
	}
	c := g.chunk[cn&(groupChunks-1)]
	if c == nil {
		if len(p.slab) < chunkBytes {
			p.slab = make([]byte, slabSize)
		}
		c = (*[chunkBytes]byte)(p.slab)
		p.slab = p.slab[chunkBytes:]
		g.chunk[cn&(groupChunks-1)] = c
		g.live++
		p.touched++
	}
	return c
}

// peek returns the backing slice for pa without materializing it (nil if
// the chunk was never touched).
func (p *Phys) peek(pa arch.PAddr) *[chunkBytes]byte {
	cn := uint64(pa) >> chunkShift
	gi := cn >> groupShift
	if gi >= uint64(len(p.dir)) {
		return nil
	}
	g := p.dir[gi]
	if g == nil {
		return nil
	}
	return g.chunk[cn&(groupChunks-1)]
}

// Read64 loads the 8-byte word at pa, which must be 8-byte aligned.
//
//atlint:hotpath
func (p *Phys) Read64(pa arch.PAddr) uint64 {
	if pa&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned Read64(%#x)", uint64(pa)))
	}
	c := p.peek(pa)
	if c == nil {
		return 0 // untouched memory reads as zero
	}
	off := uint64(pa) & (chunkBytes - 1)
	return binary.LittleEndian.Uint64(c[off : off+8])
}

// Write64 stores an 8-byte word at pa, which must be 8-byte aligned.
func (p *Phys) Write64(pa arch.PAddr, v uint64) {
	if pa&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned Write64(%#x)", uint64(pa)))
	}
	c := p.chunk(pa)
	off := uint64(pa) & (chunkBytes - 1)
	binary.LittleEndian.PutUint64(c[off:off+8], v)
}

// CopyRange copies n bytes from src to dst (both chunk-aligned, n a
// multiple of the chunk size). Untouched source chunks are skipped — the
// destination reads as zero there anyway.
func (p *Phys) CopyRange(dst, src arch.PAddr, n uint64) {
	if !arch.IsAligned(uint64(dst), chunkBytes) || !arch.IsAligned(uint64(src), chunkBytes) ||
		!arch.IsAligned(n, chunkBytes) {
		panic(fmt.Sprintf("mem: misaligned CopyRange(%#x, %#x, %d)", uint64(dst), uint64(src), n))
	}
	for off := uint64(0); off < n; off += chunkBytes {
		s := p.peek(src + arch.PAddr(off))
		if s == nil {
			continue
		}
		copy(p.chunk(dst + arch.PAddr(off))[:], s[:])
	}
}

// zeroRange clears [pa, pa+n) without materializing untouched chunks.
func (p *Phys) zeroRange(pa arch.PAddr, n uint64) {
	for off := uint64(0); off < n; off += chunkBytes {
		if c := p.peek(pa + arch.PAddr(off)); c != nil {
			clear(c[:])
		}
	}
}

// dropRange releases backing chunks in [pa, pa+n). Callers pass naturally
// aligned superpage extents, so whole directory groups drop at once.
func (p *Phys) dropRange(pa arch.PAddr, n uint64) {
	for off := uint64(0); off < n; off += groupBytes {
		gi := (uint64(pa) + off) >> (chunkShift + groupShift)
		if g := p.dir[gi]; g != nil {
			p.touched -= uint64(g.live)
			p.dir[gi] = nil
		}
	}
}
