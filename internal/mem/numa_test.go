package mem

import (
	"testing"

	"atscale/internal/arch"
)

func TestNUMASingleNodeIsPlain(t *testing.T) {
	p := NewPhysNUMA(8*arch.GB, 1)
	if p.Nodes() != 1 {
		t.Fatalf("Nodes() = %d, want 1", p.Nodes())
	}
	plain := NewPhys(8 * arch.GB)
	for i := 0; i < 100; i++ {
		a, err1 := p.AllocPage(arch.Page4K)
		b, err2 := plain.AllocPage(arch.Page4K)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("NUMA(1) alloc %d = %#x, plain = %#x; single-node layout must match NewPhys",
				i, uint64(a), uint64(b))
		}
		if p.NodeOf(a) != 0 {
			t.Fatalf("NodeOf(%#x) = %d on a single-node Phys", uint64(a), p.NodeOf(a))
		}
	}
}

func TestNUMANodePlacement(t *testing.T) {
	p := NewPhysNUMA(8*arch.GB, 2)
	if p.Nodes() != 2 {
		t.Fatalf("Nodes() = %d, want 2", p.Nodes())
	}
	for node := 0; node < 2; node++ {
		for _, ps := range []arch.PageSize{arch.Page4K, arch.Page2M} {
			pa, err := p.AllocPageOnNode(ps, node)
			if err != nil {
				t.Fatalf("AllocPageOnNode(%v, %d): %v", ps, node, err)
			}
			if got := p.NodeOf(pa); got != node {
				t.Errorf("NodeOf(%#x) = %d, want %d", uint64(pa), got, node)
			}
			if !arch.IsAligned(uint64(pa), ps.Bytes()) {
				t.Errorf("node %d %v frame %#x misaligned", node, ps, uint64(pa))
			}
		}
	}
	// Plain AllocPage defaults to node 0.
	pa, err := p.AllocPage(arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeOf(pa) != 0 {
		t.Errorf("AllocPage landed on node %d, want 0", p.NodeOf(pa))
	}
}

func TestNUMAFreeListStaysOnNode(t *testing.T) {
	p := NewPhysNUMA(8*arch.GB, 2)
	pa, err := p.AllocPageOnNode(arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.FreePage(pa, arch.Page4K)
	// The freed frame must come back from node 1's free list, not leak
	// into node 0's allocations.
	pb, err := p.AllocPageOnNode(arch.Page4K, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pb != pa {
		t.Errorf("node-1 realloc = %#x, want recycled %#x", uint64(pb), uint64(pa))
	}
}

func TestNUMAResetRewindsEveryNode(t *testing.T) {
	p := NewPhysNUMA(8*arch.GB, 2)
	first := make([]arch.PAddr, 2)
	for node := range first {
		pa, err := p.AllocPageOnNode(arch.Page4K, node)
		if err != nil {
			t.Fatal(err)
		}
		first[node] = pa
	}
	// Dirty both nodes, then rewind.
	for i := 0; i < 50; i++ {
		if _, err := p.AllocPageOnNode(arch.Page4K, i%2); err != nil {
			t.Fatal(err)
		}
	}
	p.Reset()
	for node := range first {
		pa, err := p.AllocPageOnNode(arch.Page4K, node)
		if err != nil {
			t.Fatal(err)
		}
		if pa != first[node] {
			t.Errorf("node %d post-Reset alloc = %#x, want %#x (bump pointer not rewound)",
				node, uint64(pa), uint64(first[node]))
		}
	}
}

func TestNUMAOnNodeView(t *testing.T) {
	p := NewPhysNUMA(8*arch.GB, 2)
	v := p.OnNode(1)
	pa, err := v.AllocPage(arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if p.NodeOf(pa) != 1 {
		t.Errorf("OnNode(1) view allocated on node %d", p.NodeOf(pa))
	}
	// Reads and writes go to the same backing bytes as the parent.
	v.Write64(pa, 0xdead_beef)
	if got := p.Read64(pa); got != 0xdead_beef {
		t.Errorf("view write invisible through parent: %#x", got)
	}
}

func TestNUMANodeOfClamps(t *testing.T) {
	p := NewPhysNUMA(8*arch.GB, 2)
	// Addresses beyond the last node's start still classify as the last
	// node (the final region absorbs the division remainder).
	huge := arch.PAddr(^uint64(0) >> 1)
	if got := p.NodeOf(huge); got != 1 {
		t.Errorf("NodeOf(max) = %d, want clamp to last node", got)
	}
}
