package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atscale/internal/arch"
)

func TestAllocAlignment(t *testing.T) {
	p := NewPhys(8 * arch.GB)
	for ps := arch.Page4K; ps < arch.NumPageSizes; ps++ {
		pa, err := p.AllocPage(ps)
		if err != nil {
			t.Fatalf("AllocPage(%v): %v", ps, err)
		}
		if !arch.IsAligned(uint64(pa), ps.Bytes()) {
			t.Errorf("AllocPage(%v) = %#x not aligned", ps, uint64(pa))
		}
		if pa == 0 {
			t.Errorf("AllocPage(%v) returned physical page zero", ps)
		}
	}
}

func TestAllocDistinct(t *testing.T) {
	p := NewPhys(arch.GB)
	seen := map[arch.PAddr]bool{}
	for i := 0; i < 1000; i++ {
		pa, err := p.AllocPage(arch.Page4K)
		if err != nil {
			t.Fatal(err)
		}
		if seen[pa] {
			t.Fatalf("frame %#x allocated twice", uint64(pa))
		}
		seen[pa] = true
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	p := NewPhys(16 * arch.KB)
	var last error
	for i := 0; i < 10; i++ {
		if _, err := p.AllocPage(arch.Page4K); err != nil {
			last = err
			break
		}
	}
	if last == nil {
		t.Fatal("expected out-of-memory error")
	}
}

func TestFreeReuse(t *testing.T) {
	p := NewPhys(arch.GB)
	pa, _ := p.AllocPage(arch.Page2M)
	p.Write64(pa, 0xdeadbeef)
	p.FreePage(pa, arch.Page2M)
	pa2, err := p.AllocPage(arch.Page2M)
	if err != nil {
		t.Fatal(err)
	}
	if pa2 != pa {
		t.Errorf("freed frame not reused: got %#x want %#x", uint64(pa2), uint64(pa))
	}
	if v := p.Read64(pa2); v != 0 {
		t.Errorf("reused frame not zeroed: %#x", v)
	}
}

func TestFreeMisalignedPanics(t *testing.T) {
	p := NewPhys(arch.GB)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for misaligned FreePage")
		}
	}()
	p.FreePage(arch.PAddr(4096+8), arch.Page4K)
}

func TestReadWriteRoundTrip(t *testing.T) {
	p := NewPhys(arch.GB)
	pa, _ := p.AllocPage(arch.Page4K)
	check := func(off uint16, v uint64) bool {
		a := pa + arch.PAddr(off&0xFF8) // aligned offset within the frame
		p.Write64(a, v)
		return p.Read64(a) == v
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestUntouchedReadsZero(t *testing.T) {
	p := NewPhys(arch.GB)
	pa, _ := p.AllocPage(arch.Page1G)
	if v := p.Read64(pa + 512*arch.MB); v != 0 {
		t.Errorf("untouched superpage read %#x, want 0", v)
	}
	if p.TouchedBytes() != 0 {
		t.Errorf("read materialized backing: %d bytes", p.TouchedBytes())
	}
}

func TestLazyBacking(t *testing.T) {
	p := NewPhys(8 * arch.GB)
	pa, _ := p.AllocPage(arch.Page1G)
	if p.ReservedBytes() != arch.GB {
		t.Errorf("reserved = %d, want 1GB", p.ReservedBytes())
	}
	p.Write64(pa, 1)
	p.Write64(pa+700*arch.MB, 2)
	if got := p.TouchedBytes(); got != 2*4*arch.KB {
		t.Errorf("touched = %d, want 8KB", got)
	}
	p.FreePage(pa, arch.Page1G)
	if got := p.TouchedBytes(); got != 0 {
		t.Errorf("touched after free = %d, want 0", got)
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	p := NewPhys(arch.GB)
	pa, _ := p.AllocPage(arch.Page4K)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unaligned Read64")
		}
	}()
	p.Read64(pa + 1)
}

func TestWordIndependence(t *testing.T) {
	// Writing one word must not disturb its neighbours, across chunk
	// boundaries included.
	p := NewPhys(arch.GB)
	pa, _ := p.AllocPage(arch.Page2M)
	rng := rand.New(rand.NewSource(1))
	want := map[arch.PAddr]uint64{}
	for i := 0; i < 4096; i++ {
		a := pa + arch.PAddr(rng.Intn(2*arch.MB/8))*8
		v := rng.Uint64()
		p.Write64(a, v)
		want[a] = v
	}
	for a, v := range want {
		if got := p.Read64(a); got != v {
			t.Fatalf("Read64(%#x) = %#x, want %#x", uint64(a), got, v)
		}
	}
}

func TestMixedSizeAllocationsDontOverlap(t *testing.T) {
	p := NewPhys(256 * arch.GB)
	type frame struct {
		pa arch.PAddr
		ps arch.PageSize
	}
	var frames []frame
	rng := rand.New(rand.NewSource(7))
	sizes := []arch.PageSize{arch.Page4K, arch.Page4K, arch.Page4K, arch.Page2M, arch.Page2M, arch.Page1G}
	for i := 0; i < 200; i++ {
		ps := sizes[rng.Intn(len(sizes))]
		pa, err := p.AllocPage(ps)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame{pa, ps})
	}
	for i, a := range frames {
		for j, b := range frames {
			if i == j {
				continue
			}
			aEnd := uint64(a.pa) + a.ps.Bytes()
			bEnd := uint64(b.pa) + b.ps.Bytes()
			if uint64(a.pa) < bEnd && uint64(b.pa) < aEnd {
				t.Fatalf("frames overlap: %#x/%v and %#x/%v", uint64(a.pa), a.ps, uint64(b.pa), b.ps)
			}
		}
	}
}
