package arch

import (
	"testing"
	"testing/quick"
)

func TestPageSizeBytes(t *testing.T) {
	cases := []struct {
		ps   PageSize
		want uint64
	}{
		{Page4K, 4 * KB},
		{Page2M, 2 * MB},
		{Page1G, 1 * GB},
	}
	for _, c := range cases {
		if got := c.ps.Bytes(); got != c.want {
			t.Errorf("%v.Bytes() = %d, want %d", c.ps, got, c.want)
		}
		if got := c.ps.Mask(); got != c.want-1 {
			t.Errorf("%v.Mask() = %#x, want %#x", c.ps, got, c.want-1)
		}
	}
}

func TestPageSizeWalkLength(t *testing.T) {
	if got := Page4K.WalkLength(); got != 4 {
		t.Errorf("4K walk length = %d, want 4", got)
	}
	if got := Page2M.WalkLength(); got != 3 {
		t.Errorf("2M walk length = %d, want 3", got)
	}
	if got := Page1G.WalkLength(); got != 2 {
		t.Errorf("1G walk length = %d, want 2", got)
	}
}

func TestPageSizeLeafLevel(t *testing.T) {
	if Page4K.LeafLevel() != LevelPT || Page2M.LeafLevel() != LevelPD || Page1G.LeafLevel() != LevelPDPT {
		t.Errorf("leaf levels wrong: %v %v %v", Page4K.LeafLevel(), Page2M.LeafLevel(), Page1G.LeafLevel())
	}
}

func TestPageSizeStringRoundTrip(t *testing.T) {
	for ps := Page4K; ps < NumPageSizes; ps++ {
		got, err := ParsePageSize(ps.String())
		if err != nil || got != ps {
			t.Errorf("ParsePageSize(%q) = %v, %v", ps.String(), got, err)
		}
	}
	if _, err := ParsePageSize("8KB"); err == nil {
		t.Error("ParsePageSize(8KB) should fail")
	}
}

func TestLevelIndex(t *testing.T) {
	// A VA with known per-level indices:
	// PML4=1, PDPT=2, PD=3, PT=4, offset=5.
	va := VAddr(uint64(1)<<39 | uint64(2)<<30 | uint64(3)<<21 | uint64(4)<<12 | 5)
	if got := LevelPML4.Index(va); got != 1 {
		t.Errorf("PML4 index = %d, want 1", got)
	}
	if got := LevelPDPT.Index(va); got != 2 {
		t.Errorf("PDPT index = %d, want 2", got)
	}
	if got := LevelPD.Index(va); got != 3 {
		t.Errorf("PD index = %d, want 3", got)
	}
	if got := LevelPT.Index(va); got != 4 {
		t.Errorf("PT index = %d, want 4", got)
	}
}

func TestLevelPrefixNests(t *testing.T) {
	// Prefixes must nest: the PML4 prefix is a suffix-truncation of the
	// PDPT prefix, and so on.
	check := func(raw uint64) bool {
		va := VAddr(raw & ((1 << VABits) - 1))
		p1 := LevelPT.Prefix(va)
		p2 := LevelPD.Prefix(va)
		p3 := LevelPDPT.Prefix(va)
		p4 := LevelPML4.Prefix(va)
		return p1>>RadixBits == p2 && p2>>RadixBits == p3 && p3>>RadixBits == p4
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexReconstruction(t *testing.T) {
	// The four indices plus offset must reconstruct the VA.
	check := func(raw uint64) bool {
		va := VAddr(raw & ((1 << VABits) - 1))
		rebuilt := LevelPML4.Index(va)<<39 | LevelPDPT.Index(va)<<30 |
			LevelPD.Index(va)<<21 | LevelPT.Index(va)<<12 | uint64(va)&0xFFF
		return VAddr(rebuilt) == va
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignUp(0, 4096) != 0 || AlignUp(1, 4096) != 4096 || AlignUp(4096, 4096) != 4096 {
		t.Error("AlignUp wrong")
	}
	if AlignDown(4095, 4096) != 0 || AlignDown(4096, 4096) != 4096 {
		t.Error("AlignDown wrong")
	}
	if !IsAligned(8192, 4096) || IsAligned(4097, 4096) {
		t.Error("IsAligned wrong")
	}
}

func TestAlignProperties(t *testing.T) {
	check := func(n uint32, shift uint8) bool {
		align := uint64(1) << (shift % 31)
		u := AlignUp(uint64(n), align)
		d := AlignDown(uint64(n), align)
		return u >= uint64(n) && d <= uint64(n) && IsAligned(u, align) &&
			IsAligned(d, align) && u-d < 2*align
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPageBase(t *testing.T) {
	va := VAddr(0x12345678)
	if PageBase(va, Page4K) != 0x12345000 {
		t.Errorf("PageBase 4K = %#x", uint64(PageBase(va, Page4K)))
	}
	if PageBase(va, Page2M) != 0x12200000 {
		t.Errorf("PageBase 2M = %#x", uint64(PageBase(va, Page2M)))
	}
	if PageBase(va, Page1G) != 0 {
		t.Errorf("PageBase 1G = %#x", uint64(PageBase(va, Page1G)))
	}
}

func TestCanonical(t *testing.T) {
	if !Canonical(VAddr(1<<47)) || Canonical(VAddr(1<<48)) {
		t.Error("Canonical boundary wrong")
	}
}

func TestDefaultSystemValidates(t *testing.T) {
	cfg := DefaultSystem()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultSystem invalid: %v", err)
	}
}

func TestValidateCatchesBadGeometry(t *testing.T) {
	cfg := DefaultSystem()
	cfg.STLB.Ways = 3 // 1024/3 not integral
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for non-divisible STLB ways")
	}

	cfg = DefaultSystem()
	cfg.L1D.SizeBytes = 3*KB + 32 // not line-divisible
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for non-line-divisible L1D size")
	}

	cfg = DefaultSystem()
	cfg.DRAMLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for zero DRAM latency")
	}

	cfg = DefaultSystem()
	cfg.CPU.BaseCPI = 0
	if err := cfg.Validate(); err == nil {
		t.Error("expected error for zero BaseCPI")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    uint64
		want string
	}{
		{512, "512B"},
		{4 * KB, "4.0KB"},
		{256 * MB, "256.0MB"},
		{3 * GB / 2, "1.5GB"},
		{2 * TB, "2.0TB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
