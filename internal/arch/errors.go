package arch

import "fmt"

func errf(format string, args ...any) error {
	return fmt.Errorf("arch: "+format, args...)
}
