// Package arch defines the architectural vocabulary shared by every layer of
// the simulated machine: virtual/physical addresses, x86-64 page sizes and
// radix-tree geometry, and helpers for slicing virtual addresses into
// page-table indices.
//
// The model follows the 4-level x86-64 long-mode layout: a 48-bit virtual
// address is split into four 9-bit indices (PML4, PDPT, PD, PT) and a 12-bit
// page offset. Superpage leaves may appear at the PD level (2 MB) and the
// PDPT level (1 GB).
package arch

import "fmt"

// VAddr is a virtual address in the simulated guest address space.
type VAddr uint64

// PAddr is a physical address in the simulated machine's memory.
type PAddr uint64

// Architectural constants for x86-64 4-level paging.
const (
	// PageShift4K is log2 of the base page size.
	PageShift4K = 12
	// PageShift2M is log2 of the 2 MB superpage size.
	PageShift2M = 21
	// PageShift1G is log2 of the 1 GB superpage size.
	PageShift1G = 30

	// RadixBits is the number of virtual-address bits consumed per
	// page-table level.
	RadixBits = 9
	// EntriesPerTable is the number of PTEs in one page-table page.
	EntriesPerTable = 1 << RadixBits
	// PTESize is the size in bytes of one page-table entry.
	PTESize = 8

	// VABits is the number of implemented virtual-address bits with
	// 4-level paging.
	VABits = 48
	// VABits5 is the number of implemented virtual-address bits with
	// 5-level paging (LA57).
	VABits5 = 57
	// CacheLineSize is the size in bytes of one cache line.
	CacheLineSize = 64
	// PTEsPerLine is how many PTEs share one cache line.
	PTEsPerLine = CacheLineSize / PTESize
)

// Handy byte-size constants.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
	TB = 1 << 40
)

// PageSize enumerates the three translation granularities of x86-64.
type PageSize uint8

const (
	// Page4K is the 4 KB base page.
	Page4K PageSize = iota
	// Page2M is the 2 MB superpage (leaf at the PD level).
	Page2M
	// Page1G is the 1 GB superpage (leaf at the PDPT level).
	Page1G
	// NumPageSizes is the number of supported page sizes.
	NumPageSizes
)

// Shift returns log2 of the page size in bytes.
func (p PageSize) Shift() uint {
	switch p {
	case Page4K:
		return PageShift4K
	case Page2M:
		return PageShift2M
	case Page1G:
		return PageShift1G
	}
	panic(fmt.Sprintf("arch: invalid page size %d", p))
}

// Bytes returns the page size in bytes.
func (p PageSize) Bytes() uint64 { return 1 << p.Shift() }

// Mask returns the offset mask for the page size (Bytes()-1).
func (p PageSize) Mask() uint64 { return p.Bytes() - 1 }

// LeafLevel returns the page-table level at which a mapping of this size
// terminates: 1 for 4 KB (PT), 2 for 2 MB (PD), 3 for 1 GB (PDPT).
func (p PageSize) LeafLevel() Level {
	switch p {
	case Page4K:
		return LevelPT
	case Page2M:
		return LevelPD
	case Page1G:
		return LevelPDPT
	}
	panic(fmt.Sprintf("arch: invalid page size %d", p))
}

// WalkLength returns the number of page-table loads a walker performs for a
// full 4-level walk (no paging-structure-cache hits) that ends in a leaf of
// this size: 4 for 4 KB, 3 for 2 MB, 2 for 1 GB.
func (p PageSize) WalkLength() int { return p.WalkLengthAt(4) }

// WalkLengthAt is WalkLength for an arbitrary paging depth.
func (p PageSize) WalkLengthAt(levels int) int {
	return int(RootLevel(levels) - p.LeafLevel() + 1)
}

// String implements fmt.Stringer.
func (p PageSize) String() string {
	switch p {
	case Page4K:
		return "4KB"
	case Page2M:
		return "2MB"
	case Page1G:
		return "1GB"
	}
	return fmt.Sprintf("PageSize(%d)", uint8(p))
}

// ParsePageSize converts a human string ("4KB", "2MB", "1GB", case-exact as
// produced by String) back into a PageSize.
func ParsePageSize(s string) (PageSize, error) {
	switch s {
	case "4KB", "4K", "4k":
		return Page4K, nil
	case "2MB", "2M", "2m":
		return Page2M, nil
	case "1GB", "1G", "1g":
		return Page1G, nil
	}
	return Page4K, fmt.Errorf("arch: unknown page size %q", s)
}

// Level identifies a radix-tree level. Intel numbers the levels from the
// leaves: PT is level 1 and PML4 is level 4.
type Level uint8

const (
	// LevelPT is the leaf level holding 4 KB PTEs.
	LevelPT Level = 1
	// LevelPD holds PDEs; a PDE may be a 2 MB leaf.
	LevelPD Level = 2
	// LevelPDPT holds PDPTEs; a PDPTE may be a 1 GB leaf.
	LevelPDPT Level = 3
	// LevelPML4 is the root level of 4-level paging.
	LevelPML4 Level = 4
	// LevelPML5 is the root level of 5-level (LA57) paging.
	LevelPML5 Level = 5
)

// RootLevel returns the radix root for a paging depth (4 or 5 levels).
func RootLevel(levels int) Level {
	switch levels {
	case 4:
		return LevelPML4
	case 5:
		return LevelPML5
	}
	panic(fmt.Sprintf("arch: unsupported paging depth %d", levels))
}

// CanonicalAt reports whether va is canonical (lower half) for the given
// paging depth.
func CanonicalAt(va VAddr, levels int) bool {
	if levels == 5 {
		return uint64(va)>>VABits5 == 0
	}
	return uint64(va)>>VABits == 0
}

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelPT:
		return "PT"
	case LevelPD:
		return "PD"
	case LevelPDPT:
		return "PDPT"
	case LevelPML4:
		return "PML4"
	case LevelPML5:
		return "PML5"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// IndexShift returns the bit position of the 9-bit index this level consumes.
func (l Level) IndexShift() uint { return PageShift4K + RadixBits*uint(l-1) }

// Index extracts the 9-bit page-table index for level l from va.
func (l Level) Index(va VAddr) uint64 {
	return (uint64(va) >> l.IndexShift()) & (EntriesPerTable - 1)
}

// Prefix returns the virtual-address bits above and including this level's
// index, i.e. the tag a paging-structure cache at this level is indexed by.
func (l Level) Prefix(va VAddr) uint64 { return uint64(va) >> l.IndexShift() }

// PageBase returns va rounded down to the given page size.
func PageBase(va VAddr, p PageSize) VAddr { return va &^ VAddr(p.Mask()) }

// PageNumber returns the virtual page number of va at the given page size.
func PageNumber(va VAddr, p PageSize) uint64 { return uint64(va) >> p.Shift() }

// AlignUp rounds n up to the next multiple of align (a power of two).
func AlignUp(n, align uint64) uint64 { return (n + align - 1) &^ (align - 1) }

// AlignDown rounds n down to a multiple of align (a power of two).
func AlignDown(n, align uint64) uint64 { return n &^ (align - 1) }

// IsAligned reports whether n is a multiple of align (a power of two).
func IsAligned(n, align uint64) bool { return n&(align-1) == 0 }

// Canonical reports whether va is a canonical 48-bit address in the lower
// half of the address space (the only half the simulator uses).
func Canonical(va VAddr) bool { return uint64(va)>>VABits == 0 }

// LineAddr returns the cache-line-aligned address containing pa.
func LineAddr(pa PAddr) PAddr { return pa &^ (CacheLineSize - 1) }

// FormatBytes renders a byte count with a binary-unit suffix, for human
// readable tables ("512.0MB", "1.5GB").
func FormatBytes(n uint64) string {
	switch {
	case n >= TB:
		return fmt.Sprintf("%.1fTB", float64(n)/TB)
	case n >= GB:
		return fmt.Sprintf("%.1fGB", float64(n)/GB)
	case n >= MB:
		return fmt.Sprintf("%.1fMB", float64(n)/MB)
	case n >= KB:
		return fmt.Sprintf("%.1fKB", float64(n)/KB)
	}
	return fmt.Sprintf("%dB", n)
}
