package arch

// TLBGeometry describes one TLB array.
type TLBGeometry struct {
	Entries int // total entries; 0 disables the array
	Ways    int // associativity; Ways == Entries means fully associative
}

// ReplacementPolicy selects a cache's victim-selection policy.
type ReplacementPolicy string

// Supported replacement policies.
const (
	// ReplaceLRU is true least-recently-used (the default).
	ReplaceLRU ReplacementPolicy = "lru"
	// ReplaceRandom evicts a pseudo-random way.
	ReplaceRandom ReplacementPolicy = "random"
	// ReplaceNRU is not-recently-used (one reference bit per line,
	// cleared in bulk when a set saturates) — the cheap hardware
	// approximation many LLCs ship.
	ReplaceNRU ReplacementPolicy = "nru"
)

// CacheGeometry describes one level of the data-cache hierarchy.
type CacheGeometry struct {
	SizeBytes int    // total capacity
	Ways      int    // associativity
	Latency   uint64 // load-to-use latency in cycles
	// Replacement selects the victim policy; empty means LRU.
	Replacement ReplacementPolicy
}

// CPUParams collects the timing and speculation parameters of the core
// model. They are deliberately coarse: the goal is a first-order model whose
// *relative* behaviour across footprints and page sizes matches hardware,
// not a cycle-accurate Haswell.
type CPUParams struct {
	// BaseCPI is the cycles charged per instruction for everything other
	// than memory stalls (issue bandwidth, ALU work, L1 hits).
	BaseCPI float64
	// STLBHitLatency is the extra lookup latency of an L2 TLB hit over an
	// L1 TLB hit (the paper cites 8 cycles on Haswell).
	STLBHitLatency uint64
	// STLBHitVisibility is the fraction of STLBHitLatency that shows up on
	// the critical path (OoO hides most of it).
	STLBHitVisibility float64
	// MemVisibility is the fraction of data-cache miss latency beyond L1
	// that shows up on the critical path.
	MemVisibility float64
	// WalkVisibility is the fraction of page-walk latency that shows up on
	// the critical path (walks serialize dependent loads; hard to hide).
	WalkVisibility float64
	// PipelineDepth is the minimum branch misprediction resolve latency.
	PipelineDepth uint64
	// IssueWidth bounds how many wrong-path micro-ops issue per cycle
	// during a speculation window.
	IssueWidth float64
	// MaxWrongPathAccesses caps the wrong-path memory accesses simulated
	// per misprediction episode (ROB-size bound).
	MaxWrongPathAccesses int
	// GsharePCBits sizes the branch predictor's history table (2^bits
	// two-bit counters).
	GsharePCBits uint
	// StoreBufferSize is how many recent stores are tracked for
	// memory-ordering / 4K-aliasing machine clears.
	StoreBufferSize int
	// ClearProbability is the probability that a detected 4K-aliasing or
	// ordering conflict escalates into a machine clear.
	ClearProbability float64
	// WrongPathNearFraction is the fraction of wrong-path addresses drawn
	// as strides off recent accesses; most of the rest revisit recent
	// addresses exactly.
	WrongPathNearFraction float64
	// WrongPathWildFraction is the small tail of wrong-path addresses
	// that are garbage pointers (walk, fault, suppressed).
	WrongPathWildFraction float64
	// WrongPathMaxStride bounds the byte offset applied to a recent
	// address when synthesizing a near wrong-path access.
	WrongPathMaxStride uint64
}

// PSCGeometry sizes the paging-structure caches (one per non-leaf level).
type PSCGeometry struct {
	PML5Entries int // caches PML5Es (5-level paging only), tagged by VA[56:48]
	PML4Entries int // caches PML4Es, tagged by VA[47:39]
	PDPTEntries int // caches PDPTEs, tagged by VA[47:30]
	PDEntries   int // caches PDEs, tagged by VA[47:21]
}

// VirtConfig configures nested paging (hardware-assisted virtualization):
// the machine's address space becomes a guest over a hypervisor's extended
// page tables, and every TLB miss takes a two-dimensional walk.
type VirtConfig struct {
	// Enabled turns virtualization on; the zero value is a native machine.
	Enabled bool
	// GuestPages is the guest OS heap mapping policy (the native machine's
	// page-size knob, restated per dimension).
	GuestPages PageSize
	// EPTPages is the hypervisor's EPT leaf size: every guest-physical
	// block is backed by a host frame of this size.
	EPTPages PageSize
	// NTLBEntries sizes the EPT translation cache (nTLB) that
	// short-circuits whole EPT walks for warm guest-physical pages.
	NTLBEntries int
	// EPTPSC sizes the EPT-dimension paging-structure caches.
	EPTPSC PSCGeometry
}

// DefaultVirt returns the nested-paging configuration used by the
// virtualization sweeps: 4 KB in both dimensions (the worst case the
// 24-load bound comes from), an nTLB of 32 entries, and EPT PSCs sized
// like the guest's.
func DefaultVirt() VirtConfig {
	return VirtConfig{
		Enabled:     true,
		GuestPages:  Page4K,
		EPTPages:    Page4K,
		NTLBEntries: 32,
		EPTPSC: PSCGeometry{
			PML4Entries: 2,
			PDPTEntries: 4,
			PDEntries:   24,
		},
	}
}

// NUMAConfig adds a NUMA node dimension to the simulated machine:
// physical memory splits into per-node regions, walker PTE loads that
// reach DRAM on a remote node pay an extra latency, and the core
// migrates between nodes on a deterministic round-robin schedule. The
// zero value is a UMA machine, byte-identical to the pre-NUMA model.
type NUMAConfig struct {
	// Nodes is the number of NUMA nodes; 0 or 1 means UMA.
	Nodes int
	// RemoteLatency is the extra cycle cost of a DRAM access homed on a
	// node other than the accessing core's; 0 selects the default.
	RemoteLatency uint64
	// MigrateEvery is the number of retired memory accesses between
	// deterministic round-robin node migrations; 0 selects the default.
	MigrateEvery uint64
}

// Default NUMA parameters: the remote-access penalty approximates one
// QPI hop on the modelled Haswell-EP (≈60 ns at 2.5 GHz over the local
// ≈85 ns), and the migration period keeps several migrations inside a
// typical measured region without dominating it.
const (
	DefaultNUMARemoteLatency = 150
	DefaultNUMAMigrateEvery  = 200_000
	// MaxNUMANodes bounds Nodes in Validate (the model is single-core;
	// nodes beyond a few sockets have no modelled meaning).
	MaxNUMANodes = 8
)

// EffectiveNodes returns the node count with the UMA zero value
// normalized to 1. Callers must use this instead of Nodes so the zero
// value stays untouched in the config struct — struct equality keys the
// campaign machine pool.
func (n NUMAConfig) EffectiveNodes() int {
	if n.Nodes < 1 {
		return 1
	}
	return n.Nodes
}

// EffectiveRemoteLatency returns the remote-DRAM penalty with the zero
// value defaulted.
func (n NUMAConfig) EffectiveRemoteLatency() uint64 {
	if n.RemoteLatency == 0 {
		return DefaultNUMARemoteLatency
	}
	return n.RemoteLatency
}

// EffectiveMigrateEvery returns the migration period with the zero
// value defaulted.
func (n NUMAConfig) EffectiveMigrateEvery() uint64 {
	if n.MigrateEvery == 0 {
		return DefaultNUMAMigrateEvery
	}
	return n.MigrateEvery
}

// SchemeParams tunes the non-radix translation-scheme backends
// (internal/scheme). Zero values select per-scheme defaults; like
// NUMAConfig, the zero value must stay zero in the struct so pool
// keying by struct equality keeps working.
type SchemeParams struct {
	// VictimaEntries sizes the Victima PTE-block directory (number of
	// cached PTE blocks).
	VictimaEntries int
	// DRAMCacheBytes sizes the die-stacked DRAM cache.
	DRAMCacheBytes uint64
	// DRAMCacheHitLatency is the access latency of a DRAM-cache hit
	// (replacing the off-package DRAM latency).
	DRAMCacheHitLatency uint64
	// DRAMCacheMissPenalty is the extra latency of probing the DRAM
	// cache and missing, on top of the off-package DRAM access.
	DRAMCacheMissPenalty uint64
}

// SystemConfig describes the whole simulated machine. The zero value is not
// usable; start from DefaultSystem().
type SystemConfig struct {
	// Name labels the configuration in reports.
	Name string

	// L1TLB holds the first-level TLB geometry per page size
	// (indexed by PageSize).
	L1TLB [NumPageSizes]TLBGeometry
	// STLB is the unified second-level TLB shared by 4 KB and 2 MB
	// translations. 1 GB translations are not cached in the STLB
	// (as on Haswell).
	STLB TLBGeometry
	// STLBHolds1G selects whether 1 GB entries may live in the STLB.
	STLBHolds1G bool

	// PagingLevels selects 4-level (48-bit VA) or 5-level (LA57, 57-bit
	// VA) radix page tables.
	PagingLevels int

	// PageTable selects the page-table organization: "radix" (default,
	// x86-64) or "hashed" (the alternative-structure extension; 4 KB
	// heap policy only, paging-structure caches unused).
	PageTable string

	// PSC sizes the paging-structure caches.
	PSC PSCGeometry

	// Scheme selects the translation-scheme backend (internal/scheme):
	// "" or "radix" (default; byte-identical to the hard-wired walker),
	// "victima", "mitosis", or "dramcache". Nested-paging and hashed
	// machines predate the scheme seam and ignore it.
	Scheme string

	// NUMA configures the NUMA node dimension; the zero value is UMA.
	NUMA NUMAConfig

	// SchemeParams tunes the non-radix scheme backends; zero values pick
	// per-scheme defaults.
	SchemeParams SchemeParams

	// TLBPrefetchNextPage enables the research-extension next-page TLB
	// prefetcher: each demand walk for page P also walks P+1 and
	// installs the result into the STLB (Vavouliotis et al. style
	// sequential TLB prefetching).
	TLBPrefetchNextPage bool

	// L1D, L2, L3 describe the data-cache hierarchy the walker and demand
	// accesses share.
	L1D, L2, L3 CacheGeometry
	// DRAMLatency is the cycle cost of a miss in all cache levels.
	DRAMLatency uint64

	// PhysMemBytes bounds the simulated physical memory.
	PhysMemBytes uint64

	// Virt configures nested paging; the zero value is a native machine.
	Virt VirtConfig

	// CPU holds the core timing/speculation parameters.
	CPU CPUParams
}

// DefaultSystem returns the simulated equivalent of the paper's Table III
// machine: one socket's worth of an Intel Xeon E5-2680 v3 (Haswell-EP)
// memory system.
//
// TLB and cache geometry follow Table III; the paging-structure-cache sizes
// follow the RevAnC reverse-engineering of Haswell; latencies follow the
// 7-cpu Haswell tables the paper cites.
func DefaultSystem() SystemConfig {
	return SystemConfig{
		Name: "haswell-ep-sim",
		L1TLB: [NumPageSizes]TLBGeometry{
			Page4K: {Entries: 64, Ways: 4},
			Page2M: {Entries: 32, Ways: 4},
			Page1G: {Entries: 4, Ways: 4}, // fully associative
		},
		STLB:         TLBGeometry{Entries: 1024, Ways: 8},
		STLBHolds1G:  false,
		PagingLevels: 4,
		PSC: PSCGeometry{
			PML5Entries: 2,
			PML4Entries: 2,
			PDPTEntries: 4,
			PDEntries:   24,
		},
		L1D:          CacheGeometry{SizeBytes: 32 * KB, Ways: 8, Latency: 4},
		L2:           CacheGeometry{SizeBytes: 256 * KB, Ways: 8, Latency: 12},
		L3:           CacheGeometry{SizeBytes: 30 * MB, Ways: 20, Latency: 38},
		DRAMLatency:  210,
		PhysMemBytes: 64 * GB,
		CPU: CPUParams{
			BaseCPI:               0.45,
			STLBHitLatency:        8,
			STLBHitVisibility:     0.25,
			MemVisibility:         0.35,
			WalkVisibility:        0.75,
			PipelineDepth:         16,
			IssueWidth:            1.0,
			MaxWrongPathAccesses:  48,
			GsharePCBits:          14,
			StoreBufferSize:       42,
			ClearProbability:      0.03,
			WrongPathNearFraction: 0.988,
			WrongPathWildFraction: 0.002,
			WrongPathMaxStride:    4 * KB,
		},
	}
}

// Validate reports configuration errors that would make the simulated
// machine unbuildable (zero ways, non-power-of-two set counts, etc.).
func (c *SystemConfig) Validate() error {
	for ps := Page4K; ps < NumPageSizes; ps++ {
		if err := c.L1TLB[ps].validate("L1TLB[" + ps.String() + "]"); err != nil {
			return err
		}
	}
	if err := c.STLB.validate("STLB"); err != nil {
		return err
	}
	for _, cg := range []struct {
		name string
		g    CacheGeometry
	}{{"L1D", c.L1D}, {"L2", c.L2}, {"L3", c.L3}} {
		if err := cg.g.validate(cg.name); err != nil {
			return err
		}
	}
	if c.DRAMLatency == 0 {
		return errf("DRAMLatency must be positive")
	}
	if c.PhysMemBytes < GB {
		return errf("PhysMemBytes %d too small (need >= 1GB)", c.PhysMemBytes)
	}
	if c.CPU.BaseCPI <= 0 {
		return errf("CPU.BaseCPI must be positive")
	}
	if c.CPU.IssueWidth <= 0 {
		return errf("CPU.IssueWidth must be positive")
	}
	if c.PagingLevels != 4 && c.PagingLevels != 5 {
		return errf("PagingLevels must be 4 or 5, got %d", c.PagingLevels)
	}
	switch c.PageTable {
	case "", "radix", "hashed":
	default:
		return errf("PageTable must be \"radix\" or \"hashed\", got %q", c.PageTable)
	}
	if c.PageTable == "hashed" && c.PagingLevels != 4 {
		return errf("hashed page tables pair with PagingLevels=4")
	}
	// Scheme *names* are validated by the scheme registry at machine
	// construction (the registry is the single source of truth); the
	// config layer only rejects combinations no scheme can support.
	if c.Scheme != "" && c.Scheme != "radix" {
		if c.Virt.Enabled {
			return errf("translation scheme %q pairs with native (non-virtualized) machines", c.Scheme)
		}
		if c.PageTable == "hashed" {
			return errf("translation scheme %q pairs with radix page tables", c.Scheme)
		}
	}
	if c.NUMA.Nodes < 0 || c.NUMA.Nodes > MaxNUMANodes {
		return errf("NUMA.Nodes must be in [0, %d], got %d", MaxNUMANodes, c.NUMA.Nodes)
	}
	if c.NUMA.Nodes > 1 {
		if c.Virt.Enabled {
			return errf("NUMA pairs with native (non-virtualized) machines")
		}
		if c.PageTable == "hashed" {
			return errf("NUMA pairs with radix page tables")
		}
		if c.PhysMemBytes/uint64(c.NUMA.Nodes) < GB {
			return errf("PhysMemBytes %d too small for %d NUMA nodes (need >= 1GB per node)",
				c.PhysMemBytes, c.NUMA.Nodes)
		}
	}
	if c.Virt.Enabled {
		if c.PagingLevels != 4 {
			return errf("virtualization pairs with PagingLevels=4")
		}
		if c.PageTable == "hashed" {
			return errf("virtualization pairs with radix page tables")
		}
		if c.Virt.GuestPages >= NumPageSizes {
			return errf("Virt.GuestPages: invalid page size %d", c.Virt.GuestPages)
		}
		if c.Virt.EPTPages >= NumPageSizes {
			return errf("Virt.EPTPages: invalid page size %d", c.Virt.EPTPages)
		}
		if c.Virt.NTLBEntries <= 0 {
			return errf("Virt.NTLBEntries must be positive when virtualized")
		}
	}
	return nil
}

func (g TLBGeometry) validate(name string) error {
	if g.Entries == 0 {
		return nil // disabled array is legal
	}
	if g.Ways <= 0 || g.Entries%g.Ways != 0 {
		return errf("%s: entries %d not divisible by ways %d", name, g.Entries, g.Ways)
	}
	return nil
}

func (g CacheGeometry) validate(name string) error {
	if g.SizeBytes <= 0 || g.Ways <= 0 {
		return errf("%s: size and ways must be positive", name)
	}
	lines := g.SizeBytes / CacheLineSize
	if g.SizeBytes%CacheLineSize != 0 || lines%g.Ways != 0 {
		return errf("%s: size %d not divisible into %d-way line sets", name, g.SizeBytes, g.Ways)
	}
	if g.Latency == 0 {
		return errf("%s: latency must be positive", name)
	}
	switch g.Replacement {
	case "", ReplaceLRU, ReplaceRandom, ReplaceNRU:
	default:
		return errf("%s: unknown replacement policy %q", name, g.Replacement)
	}
	return nil
}
