package walker

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"atscale/internal/arch"
)

// The golden tests lock the walker's exact observable behaviour — the
// touched physical frames, the per-level PTE-load counts, and the cycle
// totals — for a fixed seed, in both the native 4-level and the nested
// 24-step configuration. Any change to walk order, PSC behaviour,
// allocation order, or latency accounting shows up as a golden diff, so
// model changes are always deliberate.

// goldenVAs derives a deterministic, seeded set of page-aligned virtual
// addresses in a heap-like region.
func goldenVAs(seed int64, n int) []arch.VAddr {
	rng := rand.New(rand.NewSource(seed))
	vas := make([]arch.VAddr, n)
	for i := range vas {
		vas[i] = arch.VAddr(0x0000_0100_0000_0000 + uint64(rng.Intn(1<<18))<<arch.PageShift4K)
	}
	return vas
}

func formatWalk(va arch.VAddr, r Result) string {
	return fmt.Sprintf("va=%#x ok=%v frame=%#x size=%s loads=%d guest=%d ept=%d locs=%v eptlocs=%v ntlb=%d/%d cycles=%d",
		uint64(va), r.OK, uint64(r.Frame), r.Size, r.Loads, r.GuestLoads, r.EPTLoads,
		r.Locs, r.EPTLocs, r.NTLBHits, r.NTLBMisses, r.Cycles)
}

func diffGolden(t *testing.T, name, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("%s: line %d:\n got  %s\n want %s", name, i+1, g, w)
		}
	}
}

const goldenNative = `va=0x100364b1000 ok=true frame=0x2000 size=4KB loads=4 guest=4 ept=0 locs=[0 0 0 4] eptlocs=[0 0 0 0] ntlb=0/0 cycles=848
va=0x1002b44b000 ok=true frame=0x6000 size=4KB loads=2 guest=2 ept=0 locs=[0 0 0 2] eptlocs=[0 0 0 0] ntlb=0/0 cycles=424
va=0x1002f284000 ok=true frame=0x8000 size=4KB loads=2 guest=2 ept=0 locs=[0 0 0 2] eptlocs=[0 0 0 0] ntlb=0/0 cycles=424
va=0x1002923e000 ok=true frame=0xa000 size=4KB loads=2 guest=2 ept=0 locs=[0 0 0 2] eptlocs=[0 0 0 0] ntlb=0/0 cycles=424
va=0x100364b1000 ok=true frame=0x2000 size=4KB loads=1 guest=1 ept=0 locs=[1 0 0 0] eptlocs=[0 0 0 0] ntlb=0/0 cycles=6
va=0x1002b44b000 ok=true frame=0x6000 size=4KB loads=1 guest=1 ept=0 locs=[1 0 0 0] eptlocs=[0 0 0 0] ntlb=0/0 cycles=6
va=0x1002f284000 ok=true frame=0x8000 size=4KB loads=1 guest=1 ept=0 locs=[1 0 0 0] eptlocs=[0 0 0 0] ntlb=0/0 cycles=6
va=0x1002923e000 ok=true frame=0xa000 size=4KB loads=1 guest=1 ept=0 locs=[1 0 0 0] eptlocs=[0 0 0 0] ntlb=0/0 cycles=6`

// TestGoldenNativeWalks locks the native 4-level walker: one fully cold
// walk (4 loads), three sharing the warmed PDPT cache (2 loads, the VAs
// fall in one 1 GB region), then four PDE-cache warm walks (1 L1-hit
// load each). Frames follow bump-allocation order.
func TestGoldenNativeWalks(t *testing.T) {
	f := newFixture(t)
	vas := goldenVAs(42, 4)
	for _, va := range vas {
		f.mapPage(t, va, arch.Page4K)
	}
	var lines []string
	for pass := 0; pass < 2; pass++ {
		for _, va := range vas {
			r := f.w.Walk(va, f.pt.Root(), NoBudget)
			lines = append(lines, formatWalk(va, r))
		}
	}
	diffGolden(t, "native", strings.Join(lines, "\n"), goldenNative)
}

const goldenNested = `va=0x100364b1000 ok=true frame=0x6000 size=4KB loads=24 guest=4 ept=20 locs=[0 0 0 4] eptlocs=[16 0 0 4] ntlb=0/5 cycles=1792
va=0x1002b44b000 ok=true frame=0xa000 size=4KB loads=24 guest=4 ept=20 locs=[2 0 0 2] eptlocs=[20 0 0 0] ntlb=0/5 cycles=556
va=0x1002f284000 ok=true frame=0xc000 size=4KB loads=24 guest=4 ept=20 locs=[2 0 0 2] eptlocs=[19 0 0 1] ntlb=0/5 cycles=762
va=0x1002923e000 ok=true frame=0xe000 size=4KB loads=24 guest=4 ept=20 locs=[2 0 0 2] eptlocs=[20 0 0 0] ntlb=0/5 cycles=556
va=0x100364b1000 ok=true frame=0x6000 size=4KB loads=24 guest=4 ept=20 locs=[4 0 0 0] eptlocs=[20 0 0 0] ntlb=0/5 cycles=144
va=0x1002b44b000 ok=true frame=0xa000 size=4KB loads=24 guest=4 ept=20 locs=[4 0 0 0] eptlocs=[20 0 0 0] ntlb=0/5 cycles=144
va=0x1002f284000 ok=true frame=0xc000 size=4KB loads=24 guest=4 ept=20 locs=[4 0 0 0] eptlocs=[20 0 0 0] ntlb=0/5 cycles=144
va=0x1002923e000 ok=true frame=0xe000 size=4KB loads=24 guest=4 ept=20 locs=[4 0 0 0] eptlocs=[20 0 0 0] ntlb=0/5 cycles=144`

// TestGoldenNestedWalks locks the 2D walker with every walk-serving
// cache disabled: each 4KB/4KB walk is the full 24-step sequence (4
// guest loads, 5 EPT walks of 4), and the second pass differs only in
// data-cache hit locations.
func TestGoldenNestedWalks(t *testing.T) {
	f := newNestedFixture(t, arch.Page4K, true)
	vas := goldenVAs(42, 4)
	for _, va := range vas {
		f.mapGuestPage(t, va, arch.Page4K)
	}
	var lines []string
	for pass := 0; pass < 2; pass++ {
		for _, va := range vas {
			r := f.w.Walk(va, f.pt.Root(), NoBudget)
			lines = append(lines, formatWalk(va, r))
		}
	}
	diffGolden(t, "nested", strings.Join(lines, "\n"), goldenNested)
}
