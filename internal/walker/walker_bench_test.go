package walker

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
)

func benchSetup(b *testing.B, pages uint64) (*Walker, *pagetable.Table) {
	b.Helper()
	cfg := arch.DefaultSystem()
	phys := mem.NewPhys(64 * arch.GB)
	pt, err := pagetable.New(phys)
	if err != nil {
		b.Fatal(err)
	}
	for p := uint64(0); p < pages; p++ {
		frame, err := phys.AllocPage(arch.Page4K)
		if err != nil {
			b.Fatal(err)
		}
		if err := pt.Map(arch.VAddr(p<<12), frame, arch.Page4K); err != nil {
			b.Fatal(err)
		}
	}
	return New(phys, mmucache.New(cfg.PSC), cache.NewHierarchy(&cfg)), pt
}

func BenchmarkWalkWarm(b *testing.B) {
	w, pt := benchSetup(b, 1)
	w.Walk(0, pt.Root(), NoBudget)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !w.Walk(0, pt.Root(), NoBudget).OK {
			b.Fatal("walk failed")
		}
	}
}

func BenchmarkWalkSpread(b *testing.B) {
	const pages = 1 << 16 // 256MB of mappings: PSC and caches thrash
	w, pt := benchSetup(b, pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VAddr(uint64(i) * 0x9E3779B9 % pages << 12)
		if !w.Walk(va, pt.Root(), NoBudget).OK {
			b.Fatal("walk failed")
		}
	}
}
