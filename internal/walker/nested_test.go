package walker

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
	"atscale/internal/virt"
)

type nestedFixture struct {
	host  *mem.Phys
	hyp   *virt.Hypervisor
	gphys *virt.GuestPhys
	pt    *pagetable.Table // guest table, pages in guest-physical memory
	nc    *mmucache.Nested
	w     *Nested
}

// newNestedFixture builds the full virtualization stack. With uncached
// true, every walk-serving cache has zero entries, so each walk performs
// the full analytic load count.
func newNestedFixture(t *testing.T, eptPages arch.PageSize, uncached bool) *nestedFixture {
	t.Helper()
	cfg := arch.DefaultSystem()
	vc := arch.DefaultVirt()
	host := mem.NewPhys(64 * arch.GB)
	hyp, err := virt.NewHypervisor(host, eptPages)
	if err != nil {
		t.Fatal(err)
	}
	gphys := virt.NewGuestPhys(hyp, 32*arch.GB)
	pt, err := pagetable.New(gphys)
	if err != nil {
		t.Fatal(err)
	}
	var nc *mmucache.Nested
	if uncached {
		nc = mmucache.NewNested(arch.PSCGeometry{}, arch.PSCGeometry{}, 0)
	} else {
		nc = mmucache.NewNested(cfg.PSC, vc.EPTPSC, vc.NTLBEntries)
	}
	w := NewNested(host, hyp.Root(), eptPages, nc, cache.NewHierarchy(&cfg))
	return &nestedFixture{host: host, hyp: hyp, gphys: gphys, pt: pt, nc: nc, w: w}
}

func (f *nestedFixture) mapGuestPage(t *testing.T, va arch.VAddr, ps arch.PageSize) arch.PAddr {
	t.Helper()
	gframe, err := f.gphys.AllocPage(ps)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.pt.Map(va, gframe, ps); err != nil {
		t.Fatal(err)
	}
	return gframe
}

// oracle composes the two software lookups: guest table then EPT.
func (f *nestedFixture) oracle(t *testing.T, va arch.VAddr) arch.PAddr {
	t.Helper()
	gpa, _, ok := f.pt.Lookup(va)
	if !ok {
		t.Fatalf("oracle: %#x unmapped in guest", uint64(va))
	}
	hpa, ok := f.hyp.Translate(gpa)
	if !ok {
		t.Fatalf("oracle: gPA %#x unmapped in EPT", uint64(gpa))
	}
	return hpa
}

// TestNestedColdWalkLoadCounts pins the analytic 2D load counts: an
// uncached n_g-level guest walk over an n_e-level EPT performs
// n_g + (n_g+1)*n_e PTE loads — 24 in the 4KB/4KB worst case.
func TestNestedColdWalkLoadCounts(t *testing.T) {
	cases := []struct {
		guest, ept arch.PageSize
	}{
		{arch.Page4K, arch.Page4K}, // 4 + 5*4 = 24
		{arch.Page4K, arch.Page2M}, // 4 + 5*3 = 19
		{arch.Page4K, arch.Page1G}, // 4 + 5*2 = 14
		{arch.Page2M, arch.Page4K}, // 3 + 4*4 = 19
		{arch.Page2M, arch.Page2M}, // 3 + 4*3 = 15
		{arch.Page1G, arch.Page4K}, // 2 + 3*4 = 14
	}
	for _, tc := range cases {
		t.Run(tc.guest.String()+"/"+tc.ept.String(), func(t *testing.T) {
			f := newNestedFixture(t, tc.ept, true)
			va := arch.VAddr(arch.AlignUp(0x7f00_0000_0000, tc.guest.Bytes()))
			f.mapGuestPage(t, va, tc.guest)
			r := f.w.Walk(va, f.pt.Root(), NoBudget)
			if !r.OK || !r.Completed {
				t.Fatalf("walk failed: %+v", r)
			}
			gl := tc.guest.WalkLength()
			el := tc.ept.WalkLength()
			want := gl + (gl+1)*el
			if r.Loads != want {
				t.Errorf("total loads = %d, want %d", r.Loads, want)
			}
			if r.GuestLoads != gl {
				t.Errorf("guest loads = %d, want %d", r.GuestLoads, gl)
			}
			if r.EPTLoads != (gl+1)*el {
				t.Errorf("EPT loads = %d, want %d", r.EPTLoads, (gl+1)*el)
			}
			if r.EPTWalks != gl+1 {
				t.Errorf("EPT walks = %d, want %d", r.EPTWalks, gl+1)
			}
			if r.NTLBMisses != gl+1 || r.NTLBHits != 0 {
				t.Errorf("nTLB hits/misses = %d/%d, want 0/%d", r.NTLBHits, r.NTLBMisses, gl+1)
			}
			if got := f.oracle(t, va); r.Frame+arch.PAddr(uint64(va)&r.Size.Mask()) != got {
				t.Errorf("hPA = %#x, oracle %#x", uint64(r.Frame), uint64(got))
			}
		})
	}
}

// TestNestedEffectivePageSize checks the nested TLB-entry granularity is
// the smaller of the two dimensions' mapping sizes.
func TestNestedEffectivePageSize(t *testing.T) {
	// 2MB guest page over a 4KB EPT: gVA->hPA is linear over 4KB only.
	f := newNestedFixture(t, arch.Page4K, false)
	va := arch.VAddr(arch.AlignUp(0x7f00_0000_0000, arch.Page2M.Bytes()))
	f.mapGuestPage(t, va, arch.Page2M)
	r := f.w.Walk(va+0x1000, f.pt.Root(), NoBudget)
	if !r.OK {
		t.Fatalf("walk failed: %+v", r)
	}
	if r.Size != arch.Page4K {
		t.Errorf("effective size = %s, want 4KB", r.Size)
	}
	if want := f.oracle(t, va+0x1000); r.Frame+arch.PAddr(uint64(va+0x1000)&r.Size.Mask()) != want {
		t.Errorf("hPA mismatch")
	}

	// 4KB guest page over a 1GB EPT: still a 4KB translation.
	f2 := newNestedFixture(t, arch.Page1G, false)
	va2 := arch.VAddr(0x5000_0000_0000)
	f2.mapGuestPage(t, va2, arch.Page4K)
	r2 := f2.w.Walk(va2, f2.pt.Root(), NoBudget)
	if !r2.OK || r2.Size != arch.Page4K {
		t.Fatalf("walk = %+v, want OK 4KB", r2)
	}
}

// TestNestedWarmCachesShortenWalks checks the nTLB and both PSC
// dimensions engage: a second walk of a neighbouring page reuses the
// guest PDE entry and the table pages' EPT translations.
func TestNestedWarmCachesShortenWalks(t *testing.T) {
	f := newNestedFixture(t, arch.Page4K, false)
	va1 := arch.VAddr(0x7f00_0000_0000)
	va2 := va1 + 0x1000 // same guest PT page
	f.mapGuestPage(t, va1, arch.Page4K)
	f.mapGuestPage(t, va2, arch.Page4K)

	r1 := f.w.Walk(va1, f.pt.Root(), NoBudget)
	if r1.GuestLoads != 4 || r1.GuestPSCHit {
		t.Fatalf("cold walk: %+v", r1)
	}
	r2 := f.w.Walk(va2, f.pt.Root(), NoBudget)
	if !r2.OK {
		t.Fatalf("warm walk failed: %+v", r2)
	}
	if !r2.GuestPSCHit || r2.GuestLoads != 1 {
		t.Errorf("warm walk guest loads = %d (PSC hit %v), want 1 via PDE cache", r2.GuestLoads, r2.GuestPSCHit)
	}
	// The guest PT page's gPA was nTLB-filled by walk 1; only the new
	// data page's gPA needs an EPT walk.
	if r2.NTLBHits < 1 {
		t.Errorf("warm walk nTLB hits = %d, want >= 1", r2.NTLBHits)
	}
	if r2.Loads >= r1.Loads {
		t.Errorf("warm walk loads = %d, not below cold %d", r2.Loads, r1.Loads)
	}
	if r2.EPTCycles >= r2.Cycles {
		t.Errorf("EPTCycles %d must be a strict subset of Cycles %d (guest dimension loaded too)", r2.EPTCycles, r2.Cycles)
	}
}

// TestNestedFlushKeepsEPTDimension checks Flush (guest context switch)
// drops guest PSCs but keeps the nTLB warm, while FlushAll drops both.
func TestNestedFlushKeepsEPTDimension(t *testing.T) {
	f := newNestedFixture(t, arch.Page4K, false)
	va := arch.VAddr(0x7f00_0000_0000)
	f.mapGuestPage(t, va, arch.Page4K)
	f.w.Walk(va, f.pt.Root(), NoBudget)
	if f.nc.NTLB.Live() == 0 {
		t.Fatal("walk did not fill the nTLB")
	}

	f.w.Flush()
	if f.nc.NTLB.Live() == 0 {
		t.Error("guest-context-switch Flush emptied the nTLB")
	}
	if f.nc.Guest.Live(arch.LevelPD) != 0 {
		t.Error("Flush kept guest PSC entries")
	}
	r := f.w.Walk(va, f.pt.Root(), NoBudget)
	if r.GuestLoads != 4 {
		t.Errorf("post-switch guest loads = %d, want 4 (guest PSCs cold)", r.GuestLoads)
	}
	if r.NTLBHits == 0 {
		t.Errorf("post-switch walk got no nTLB hits; EPT dimension should stay warm")
	}

	f.w.FlushAll()
	if f.nc.NTLB.Live() != 0 {
		t.Error("FlushAll kept nTLB entries")
	}
}

// TestNestedPageFaultAndAbort covers the non-OK exits: a guest
// not-present leaf is a completed fault; a tiny budget aborts mid-walk.
func TestNestedPageFaultAndAbort(t *testing.T) {
	f := newNestedFixture(t, arch.Page4K, false)
	va := arch.VAddr(0x7f00_0000_0000)
	f.mapGuestPage(t, va, arch.Page4K)

	miss := f.w.Walk(va+0x1000, f.pt.Root(), NoBudget)
	if miss.OK || !miss.Completed {
		t.Errorf("unmapped neighbour: got %+v, want completed fault", miss)
	}

	f.w.FlushAll()
	aborted := f.w.Walk(va, f.pt.Root(), 1)
	if aborted.OK || aborted.Completed {
		t.Errorf("budget-1 walk: got %+v, want aborted", aborted)
	}
	if aborted.Loads == 0 || aborted.Cycles == 0 {
		t.Errorf("aborted walk accrued no work: %+v", aborted)
	}
}
