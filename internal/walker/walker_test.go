package walker

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
)

type fixture struct {
	phys *mem.Phys
	pt   *pagetable.Table
	w    *Walker
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cfg := arch.DefaultSystem()
	phys := mem.NewPhys(64 * arch.GB)
	pt, err := pagetable.New(phys)
	if err != nil {
		t.Fatal(err)
	}
	w := New(phys, mmucache.New(cfg.PSC), cache.NewHierarchy(&cfg))
	return &fixture{phys: phys, pt: pt, w: w}
}

func (f *fixture) mapPage(t *testing.T, va arch.VAddr, ps arch.PageSize) arch.PAddr {
	t.Helper()
	frame, err := f.phys.AllocPage(ps)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.pt.Map(va, frame, ps); err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestWalkMatchesOracle4K(t *testing.T) {
	f := newFixture(t)
	va := arch.VAddr(0x7f00_0000_1000)
	frame := f.mapPage(t, va, arch.Page4K)
	r := f.w.Walk(va, f.pt.Root(), NoBudget)
	if !r.OK || !r.Completed || r.Frame != frame || r.Size != arch.Page4K {
		t.Fatalf("walk = %+v; want frame %#x", r, uint64(frame))
	}
	if r.Loads != 4 {
		t.Errorf("cold 4K walk loads = %d, want 4", r.Loads)
	}
}

func TestWalkLengthsBySize(t *testing.T) {
	for _, ps := range []arch.PageSize{arch.Page4K, arch.Page2M, arch.Page1G} {
		f := newFixture(t)
		va := arch.VAddr(arch.AlignUp(0x7f00_0000_0000, ps.Bytes()))
		f.mapPage(t, va, ps)
		r := f.w.Walk(va, f.pt.Root(), NoBudget)
		if !r.OK {
			t.Fatalf("%s walk failed", ps)
		}
		if r.Loads != ps.WalkLength() {
			t.Errorf("%s cold walk loads = %d, want %d", ps, r.Loads, ps.WalkLength())
		}
	}
}

func TestPSCShortensSecondWalk(t *testing.T) {
	f := newFixture(t)
	va1 := arch.VAddr(0x1000_0000)
	va2 := va1 + 0x1000 // same PT page
	f.mapPage(t, va1, arch.Page4K)
	f.mapPage(t, va2, arch.Page4K)
	r1 := f.w.Walk(va1, f.pt.Root(), NoBudget)
	r2 := f.w.Walk(va2, f.pt.Root(), NoBudget)
	if r1.Loads != 4 {
		t.Fatalf("first walk loads = %d", r1.Loads)
	}
	if r2.Loads != 1 {
		t.Errorf("PDE-cached walk loads = %d, want 1", r2.Loads)
	}
	if r2.Cycles >= r1.Cycles {
		t.Errorf("cached walk not cheaper: %d vs %d", r2.Cycles, r1.Cycles)
	}
}

func TestWalkFaultOnUnmapped(t *testing.T) {
	f := newFixture(t)
	r := f.w.Walk(0xdead000, f.pt.Root(), NoBudget)
	if r.OK || !r.Completed {
		t.Fatalf("unmapped walk = %+v; want fault (completed, !ok)", r)
	}
	if r.Loads != 1 {
		t.Errorf("fault after %d loads; empty root should fault on first", r.Loads)
	}
}

func TestWalkAbort(t *testing.T) {
	f := newFixture(t)
	va := arch.VAddr(0x2000_0000)
	f.mapPage(t, va, arch.Page4K)
	r := f.w.Walk(va, f.pt.Root(), 1) // impossible budget
	if r.Completed || r.OK {
		t.Fatalf("walk with 1-cycle budget completed: %+v", r)
	}
	if r.Loads != 1 {
		t.Errorf("aborted walk performed %d loads, want 1", r.Loads)
	}
	if r.Cycles == 0 {
		t.Error("aborted walk charged no cycles")
	}
}

func TestAbortedWalkCheaperThanFull(t *testing.T) {
	f := newFixture(t)
	va := arch.VAddr(0x3000_0000)
	f.mapPage(t, va, arch.Page4K)
	full := f.w.Walk(va, f.pt.Root(), NoBudget)
	// Re-map elsewhere (fresh fixture) so caches are cold again.
	f2 := newFixture(t)
	f2.mapPage(t, va, arch.Page4K)
	aborted := f2.w.Walk(va, f2.pt.Root(), full.Cycles/2)
	if aborted.Completed {
		t.Skip("budget generous enough to complete; geometry changed?")
	}
	if aborted.Cycles > full.Cycles {
		t.Errorf("aborted walk cost %d > full %d", aborted.Cycles, full.Cycles)
	}
	if aborted.Loads >= full.Loads {
		t.Errorf("aborted walk loads %d >= full %d", aborted.Loads, full.Loads)
	}
}

func TestLocsSumEqualsLoads(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(5))
	var vas []arch.VAddr
	for i := 0; i < 64; i++ {
		va := arch.VAddr(uint64(rng.Intn(1<<20)) << 12)
		if _, _, ok := f.pt.Lookup(va); ok {
			continue
		}
		f.mapPage(t, va, arch.Page4K)
		vas = append(vas, va)
	}
	for _, va := range vas {
		r := f.w.Walk(va, f.pt.Root(), NoBudget)
		sum := 0
		for _, n := range r.Locs {
			sum += int(n)
		}
		if sum != r.Loads {
			t.Fatalf("locs sum %d != loads %d", sum, r.Loads)
		}
	}
}

func TestWarmWalkHitsCloserCaches(t *testing.T) {
	f := newFixture(t)
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)
	cold := f.w.Walk(va, f.pt.Root(), NoBudget)
	if cold.Locs[cache.HitMem] == 0 {
		t.Fatal("cold walk touched no memory")
	}
	// Immediately re-walk: the PSC supplies the PT base and the PTE line
	// is in L1.
	warm := f.w.Walk(va, f.pt.Root(), NoBudget)
	if warm.Locs[cache.HitL1] != uint16(warm.Loads) {
		t.Errorf("warm walk locs = %v, want all L1", warm.Locs)
	}
	if warm.Cycles >= cold.Cycles {
		t.Errorf("warm walk %d cycles >= cold %d", warm.Cycles, cold.Cycles)
	}
}

// TestRandomWalksMatchOracle is the translation-correctness property:
// for random mapped/unmapped addresses across all page sizes, the hardware
// walk agrees with the software page-table Lookup.
func TestRandomWalksMatchOracle(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(99))
	for slot := uint64(1); slot <= 32; slot++ {
		ps := arch.PageSize(rng.Intn(3))
		va := arch.VAddr(slot << arch.PageShift1G)
		f.mapPage(t, va, ps)
	}
	for i := 0; i < 3000; i++ {
		va := arch.VAddr(rng.Uint64() & ((1 << 36) - 1))
		wantPA, wantPS, wantOK := f.pt.Lookup(va)
		r := f.w.Walk(va, f.pt.Root(), NoBudget)
		if r.OK != wantOK {
			t.Fatalf("walk(%#x).OK = %v, oracle %v", uint64(va), r.OK, wantOK)
		}
		if r.OK {
			got := r.Frame + arch.PAddr(uint64(va)&r.Size.Mask())
			if got != wantPA || r.Size != wantPS {
				t.Fatalf("walk(%#x) = %#x/%v, oracle %#x/%v",
					uint64(va), uint64(got), r.Size, uint64(wantPA), wantPS)
			}
		}
	}
}
