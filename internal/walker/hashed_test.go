package walker

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/pagetable"
)

func hashedFixture(t *testing.T) (*Hashed, *pagetable.HashedTable, *mem.Phys) {
	t.Helper()
	cfg := arch.DefaultSystem()
	phys := mem.NewPhys(64 * arch.GB)
	ht, err := pagetable.NewHashed(phys, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return NewHashed(phys, cache.NewHierarchy(&cfg), ht), ht, phys
}

func TestHashedWalkMatchesOracle(t *testing.T) {
	w, ht, phys := hashedFixture(t)
	rng := rand.New(rand.NewSource(19))
	var mapped []arch.VAddr
	for i := 0; i < 2000; i++ {
		va := arch.VAddr(uint64(rng.Int63n(1<<26)) << 12)
		if _, _, ok := ht.Lookup(va); ok {
			continue
		}
		frame, err := phys.AllocPage(arch.Page4K)
		if err != nil {
			t.Fatal(err)
		}
		if err := ht.Map(va, frame, arch.Page4K); err != nil {
			t.Fatal(err)
		}
		mapped = append(mapped, va)
	}
	for i := 0; i < 5000; i++ {
		var va arch.VAddr
		if i%2 == 0 {
			va = mapped[rng.Intn(len(mapped))] + arch.VAddr(rng.Intn(4096)&^7)
		} else {
			va = arch.VAddr(uint64(rng.Int63n(1<<26))<<12 + uint64(rng.Intn(4096)&^7))
		}
		wantPA, wantPS, wantOK := ht.Lookup(va)
		r := w.Walk(va, 0, NoBudget)
		if r.OK != wantOK || !r.Completed {
			t.Fatalf("walk(%#x).OK = %v (completed %v), oracle %v", uint64(va), r.OK, r.Completed, wantOK)
		}
		if r.OK {
			got := r.Frame + arch.PAddr(uint64(va)&r.Size.Mask())
			if got != wantPA || r.Size != wantPS {
				t.Fatalf("walk(%#x) = %#x/%v, oracle %#x/%v",
					uint64(va), uint64(got), r.Size, uint64(wantPA), wantPS)
			}
		}
	}
}

func TestHashedWalkIsShort(t *testing.T) {
	w, ht, phys := hashedFixture(t)
	frame, _ := phys.AllocPage(arch.Page4K)
	if err := ht.Map(0x5000, frame, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	r := w.Walk(0x5000, 0, NoBudget)
	if !r.OK {
		t.Fatal("walk failed")
	}
	// At low load factor the translation is in the first probed lines.
	if r.Loads > 2 {
		t.Errorf("hashed walk needed %d line loads, want <=2", r.Loads)
	}
}

func TestHashedWalkAborts(t *testing.T) {
	w, ht, phys := hashedFixture(t)
	frame, _ := phys.AllocPage(arch.Page4K)
	if err := ht.Map(0x7000, frame, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	r := w.Walk(0x7000, 0, 1)
	if r.Completed || r.OK {
		t.Errorf("1-cycle-budget walk completed: %+v", r)
	}
}

func TestHashedWalkNonCanonical(t *testing.T) {
	w, _, _ := hashedFixture(t)
	r := w.Walk(arch.VAddr(1<<50), 0, NoBudget)
	if r.OK || !r.Completed {
		t.Errorf("non-canonical walk = %+v", r)
	}
	if r.Loads != 0 {
		t.Errorf("non-canonical walk loaded %d slots", r.Loads)
	}
}

func TestHashedLocsSumEqualsLoads(t *testing.T) {
	w, ht, phys := hashedFixture(t)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		va := arch.VAddr(uint64(rng.Int63n(1<<22)) << 12)
		if _, _, ok := ht.Lookup(va); ok {
			continue
		}
		frame, _ := phys.AllocPage(arch.Page4K)
		if err := ht.Map(va, frame, arch.Page4K); err != nil {
			t.Fatal(err)
		}
		r := w.Walk(va, 0, NoBudget)
		sum := 0
		for _, n := range r.Locs {
			sum += int(n)
		}
		if sum != r.Loads {
			t.Fatalf("locs sum %d != loads %d", sum, r.Loads)
		}
	}
}
