package walker

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/telemetry"
)

// TestDisabledTracerZeroAllocs is the zero-overhead guard of the
// telemetry subsystem: with no track attached (the default), the walk
// hot path must not allocate — the tracing hooks reduce to one pointer
// compare each.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	f := newFixture(t)
	va := arch.VAddr(0x7f00_0000_1000)
	f.mapPage(t, va, arch.Page4K)
	f.w.Walk(va, f.pt.Root(), NoBudget) // warm the PSCs and caches
	root := f.pt.Root()
	allocs := testing.AllocsPerRun(200, func() {
		f.w.Walk(va, root, NoBudget)
	})
	if allocs != 0 {
		t.Errorf("untraced Walk allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTracedWalkSpans: a traced walk records one span bracketing one
// slice per radix level, each carrying its cache-outcome argument, and
// the span's outcome argument reflects how the walk ended.
func TestTracedWalkSpans(t *testing.T) {
	f := newFixture(t)
	va := arch.VAddr(0x7f00_0000_1000)
	f.mapPage(t, va, arch.Page4K)

	tr := telemetry.New()
	trk := tr.Process("unit").Track("walker")
	clock := uint64(0)
	f.w.SetTrace(trk, func() uint64 { return clock })

	r := f.w.Walk(va, f.pt.Root(), NoBudget)
	if !r.OK {
		t.Fatal("walk failed")
	}
	ev := trk.Events()
	// B, 4 level slices, E.
	if len(ev) != 6 {
		t.Fatalf("recorded %d events, want 6: %+v", len(ev), ev)
	}
	if ev[0].Ph != telemetry.PhBegin || ev[0].Name != "walk" {
		t.Errorf("first event = %+v, want Begin(walk)", ev[0])
	}
	wantLevels := []string{"PML4", "PDPT", "PD", "PT"}
	var sliceCycles uint64
	for i, name := range wantLevels {
		e := ev[1+i]
		if e.Ph != telemetry.PhComplete || e.Name != name {
			t.Errorf("slice %d = %+v, want X %q", i, e, name)
		}
		if e.ArgName != "loc" || e.ArgStr == "" {
			t.Errorf("slice %d missing loc arg: %+v", i, e)
		}
		sliceCycles += e.Dur
	}
	if sliceCycles != r.Cycles {
		t.Errorf("slice durations sum to %d, walk took %d cycles", sliceCycles, r.Cycles)
	}
	end := ev[5]
	if end.Ph != telemetry.PhEnd || end.ArgName != "outcome" || end.ArgStr != "ok" {
		t.Errorf("end event = %+v, want End with outcome=ok", end)
	}
	if trk.Now() != r.Cycles {
		t.Errorf("track cursor = %d, want %d", trk.Now(), r.Cycles)
	}
}

// TestTracedWalkOutcomes: fault and abort walks close their spans with
// the matching outcome argument (no dangling Begin).
func TestTracedWalkOutcomes(t *testing.T) {
	f := newFixture(t)
	mapped := arch.VAddr(0x7f00_0000_1000)
	f.mapPage(t, mapped, arch.Page4K)

	tr := telemetry.New()
	trk := tr.Process("unit").Track("walker")
	f.w.SetTrace(trk, func() uint64 { return 0 })

	f.w.Walk(0x5000_0000_0000, f.pt.Root(), NoBudget) // unmapped: fault
	f.w.Walk(mapped, f.pt.Root(), 1)                  // budget 1: aborts

	var outcomes []string
	for _, e := range trk.Events() {
		if e.Ph == telemetry.PhEnd {
			outcomes = append(outcomes, e.ArgStr)
		}
	}
	if len(outcomes) != 2 || outcomes[0] != "fault" || outcomes[1] != "aborted" {
		t.Errorf("outcomes = %v, want [fault aborted]", outcomes)
	}
}
