package walker

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
)

// TestWalkZeroAllocs pins the single-pass walker's allocation contract:
// resolving a walk — PSC probe, path resolution, batched PTE charging,
// completed or budget-aborted — allocates nothing. The per-walk scratch
// (entry addresses, latencies, hit locations) must stay on the stack.
func TestWalkZeroAllocs(t *testing.T) {
	f := newFixture(t)
	base := arch.VAddr(0x7f00_0000_0000)
	const pages = 512
	for i := 0; i < pages; i++ {
		f.mapPage(t, base+arch.VAddr(i*4096), arch.Page4K)
	}
	rng := rand.New(rand.NewSource(1))
	step := func() {
		va := base + arch.VAddr(rng.Intn(pages)*4096)
		f.w.Walk(va, f.pt.Root(), NoBudget)
		f.w.Walk(va, f.pt.Root(), 5) // budget-abort path
	}
	for i := 0; i < 100; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("Walk allocates %.2f allocs/op, want 0", avg)
	}
}
