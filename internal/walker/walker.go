// Package walker models the hardware page-table walker. On a TLB miss the
// walker resolves a virtual address by loading page-table entries from
// simulated physical memory: it starts from the deepest paging-structure
// cache hit and performs one cache-hierarchy load per remaining level, so
// a walk costs between one load (PDE-cache hit) and four (cold 4 KB walk).
//
// Each PTE load travels through the same L1/L2/L3/DRAM hierarchy as program
// data. The per-load hit locations are recorded — they are the Haswell
// PAGE_WALKER_LOADS.DTLB_{L1,L2,L3,MEMORY} events behind the paper's
// Figure 8 — and a cycle budget allows speculative walks to abort midway,
// producing the initiated-but-not-completed walks of §V-D.
package walker

import (
	"math"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
	"atscale/internal/telemetry"
)

// stepOverhead is the fixed per-level cost of the walker state machine on
// top of the PTE load latency.
const stepOverhead = 2

// NoBudget makes Walk run to completion.
const NoBudget = math.MaxUint64

// Result describes one walk.
type Result struct {
	// OK is true when a present leaf was found. A completed walk with
	// OK == false is a page fault.
	OK bool
	// Completed is false when the walk was aborted by its cycle budget.
	Completed bool
	// Frame is the physical base of the mapped page (valid when OK).
	Frame arch.PAddr
	// Size is the mapping's page size (valid when OK).
	Size arch.PageSize
	// Cycles is the latency accrued, including partial work on aborts.
	Cycles uint64
	// Loads is the number of PTE loads performed, both dimensions
	// included for nested walks (GuestLoads + EPTLoads).
	Loads int
	// Locs counts the guest-dimension loads by the cache level that
	// satisfied them (every load, for native walks).
	Locs [cache.NumHitLocs]uint16
	// LeafLoc is the cache level that served the final (leaf) PTE load
	// of the guest dimension — the per-walk datum behind PEBS-style
	// sample attribution.
	LeafLoc cache.HitLoc

	// The remaining fields are populated by the nested (2D) walker only
	// and stay zero for native walks, except GuestLoads, which always
	// mirrors the guest-dimension load count.

	// GuestLoads is the number of guest page-table entry loads.
	GuestLoads int
	// EPTLoads is the number of EPT entry loads across all the walk's
	// EPT walks.
	EPTLoads int
	// EPTCycles is the latency accrued inside EPT walks (a subset of
	// Cycles; the guest-dimension share is Cycles - EPTCycles).
	EPTCycles uint64
	// EPTLocs counts EPTLoads by the cache level that satisfied them.
	EPTLocs [cache.NumHitLocs]uint16
	// EPTWalks is the number of completed EPT walks.
	EPTWalks int
	// NTLBHits / NTLBMisses count EPT translations served by the nTLB
	// versus requiring an EPT walk.
	NTLBHits, NTLBMisses int
	// GuestPSCHit is true when the guest dimension started below the
	// root thanks to a paging-structure-cache hit.
	GuestPSCHit bool

	// The scheme-accounting fields below are populated by the pluggable
	// translation-scheme backends (internal/scheme) and stay zero for
	// the built-in engines. The core books them into the scheme_* perf
	// event family.

	// BlockProbed marks a walk that probed a Victima-style PTE-block
	// directory; BlockHit records whether the probe short-circuited the
	// walk to a single leaf load.
	BlockProbed bool
	BlockHit    bool
	// Replica classifies a Mitosis walk by where its PTE loads were
	// homed: the walking node's own tables (local) or another node's
	// (remote). ReplicaNone for schemes without replicas.
	Replica ReplicaClass
	// DCHits / DCMisses count this walk's PTE loads that missed SRAM
	// and hit / missed the die-stacked DRAM cache.
	DCHits, DCMisses uint16
}

// ReplicaClass classifies a walk's table locality under page-table
// replication (the Replica field of Result).
type ReplicaClass uint8

// Replica walk classes.
const (
	// ReplicaNone: the scheme does not replicate page tables.
	ReplicaNone ReplicaClass = iota
	// ReplicaLocal: every PTE load stayed on the walking node.
	ReplicaLocal
	// ReplicaRemote: at least one PTE load was homed on another node.
	ReplicaRemote
)

// sizeAtLevel maps a leaf level to its page size (PT->4KB, PD->2MB,
// PDPT->1GB).
func sizeAtLevel(level arch.Level) arch.PageSize {
	switch level {
	case arch.LevelPT:
		return arch.Page4K
	case arch.LevelPD:
		return arch.Page2M
	case arch.LevelPDPT:
		return arch.Page1G
	}
	panic("walker: no page size at level " + level.String())
}

// Engine is the hardware translation engine the core drives on a TLB
// miss. The radix Walker is the production implementation; the hashed
// walker (hashed.go) implements the alternative page-table organization
// the paper's discussion points at.
type Engine interface {
	// Walk resolves va within the cycle budget.
	Walk(va arch.VAddr, cr3 arch.PAddr, budget uint64) Result
	// Flush drops all cached partial-walk state (context switch).
	Flush()
	// InvalidateBlock drops partial-walk state covering va's 2 MB block
	// (hugepage promotion's PDE shootdown).
	InvalidateBlock(va arch.VAddr)
}

// Trace argument and outcome names (constant strings so recording never
// allocates).
const (
	traceWalk     = "walk"
	traceLocArg   = "loc"
	traceOutcome  = "outcome"
	outcomeOK     = "ok"
	outcomeFault  = "fault"
	outcomeAbort  = "aborted"
	outcomeNoWalk = "ept-violation"
	traceEPTWalk  = "ept walk"
	traceNTLBHit  = "ntlb hit"
	traceProbe    = "probe"
	traceHash     = "hash"
)

// levelName returns the timeline slice name of a radix level's PTE load.
func levelName(l arch.Level) string {
	switch l {
	case arch.LevelPT:
		return "PT"
	case arch.LevelPD:
		return "PD"
	case arch.LevelPDPT:
		return "PDPT"
	case arch.LevelPML4:
		return "PML4"
	case arch.LevelPML5:
		return "PML5"
	}
	return "level?"
}

// locName returns the timeline argument naming a PTE load's cache
// outcome.
func locName(loc cache.HitLoc) string {
	switch loc {
	case cache.HitL1:
		return "L1"
	case cache.HitL2:
		return "L2"
	case cache.HitL3:
		return "L3"
	}
	return "DRAM"
}

// Walker is the radix hardware walker plus its paging-structure caches.
type Walker struct {
	phys   *mem.Phys
	psc    *mmucache.PSC
	caches *cache.Hierarchy

	// trk, when non-nil, receives one span per walk with a nested slice
	// per radix level; clock supplies the shared simulated-cycle clock
	// (the core cycle counter) the track syncs to at walk start. With
	// trk nil every hook below is a single pointer compare.
	trk   *telemetry.Track
	clock func() uint64
}

// New builds a walker that loads PTEs through the given cache hierarchy.
func New(phys *mem.Phys, psc *mmucache.PSC, caches *cache.Hierarchy) *Walker {
	return &Walker{phys: phys, psc: psc, caches: caches}
}

// PSC exposes the paging-structure caches (for invalidation on unmap).
func (w *Walker) PSC() *mmucache.PSC { return w.psc }

// SetTrace attaches (or, with a nil track, detaches) the walker's
// timeline track. clock supplies simulated-cycle timestamps for walk
// starts; per-level slice durations come from the walk itself.
func (w *Walker) SetTrace(trk *telemetry.Track, clock func() uint64) {
	w.trk, w.clock = trk, clock
}

// Flush implements Engine.
func (w *Walker) Flush() { w.psc.Flush() }

// Reset returns the walker to its just-constructed state: paging
// structure caches emptied with their clocks rewound, trace detached.
func (w *Walker) Reset() {
	w.psc.Reset()
	w.trk, w.clock = nil, nil
}

// InvalidateBlock implements Engine.
func (w *Walker) InvalidateBlock(va arch.VAddr) {
	w.psc.InvalidatePrefix(arch.LevelPD, va)
}

// maxSteps is the longest radix path (five-level paging, PML5 → PT).
const maxSteps = 5

// Walk resolves va against the page table rooted at cr3. budget bounds the
// cycles the walk may consume before being aborted (pass NoBudget for
// demand walks, which always run to completion).
//
// The walk is single-pass over the radix path: each level's entry address
// is computed exactly once, and the path is resolved first with raw
// physical reads (architecturally invisible — phys.Read64 touches no
// cache or counter state) before the PTE loads are charged in one
// Hierarchy.AccessN call. The observable outcome — cache state, PSC
// contents, latencies, abort point — is identical to the per-level loop
// it replaced; the flatgold differential tests hold it to that.
//
//atlint:hotpath
func (w *Walker) Walk(va arch.VAddr, cr3 arch.PAddr, budget uint64) Result {
	var r Result
	if w.trk != nil {
		w.trk.Sync(w.clock())
		w.trk.Begin(traceWalk)
	}
	level, base := w.psc.LookupDeepest(va, arch.LevelPT, cr3)
	r.GuestPSCHit = level != w.psc.Top()

	// Resolve the path: entry addresses, per-step levels, and the frame
	// each non-terminal step descends into. The path ends at a leaf, a
	// non-present entry (fault), or never early — budget abortion is
	// decided by the charging pass below.
	var (
		ea     [maxSteps]arch.PAddr
		frames [maxSteps]arch.PAddr
		lvls   [maxSteps]arch.Level
		lat    [maxSteps]uint64
		loc    [maxSteps]cache.HitLoc
	)
	steps, ok := 0, false
	var leafLevel arch.Level
	var frame arch.PAddr
	for {
		a := pagetable.EntryAddr(base, level, va)
		ea[steps], lvls[steps] = a, level
		steps++
		e := pagetable.PTE(w.phys.Read64(a))
		if !e.Present() {
			break // page fault at this step
		}
		if e.IsLeaf(level) {
			ok, frame, leafLevel = true, e.Frame(), level
			break
		}
		frames[steps-1] = e.Frame()
		base = e.Frame()
		level--
	}

	// Charge the PTE loads through the cache hierarchy; AccessN stops
	// after the load that first exceeds the budget, so loads past an
	// abort never touch cache state.
	n, cycles := w.caches.AccessN(ea[:steps], stepOverhead, budget, lat[:], loc[:])
	r.Cycles = cycles
	r.Loads, r.GuestLoads = n, n
	for i := 0; i < n; i++ {
		r.Locs[loc[i]]++
		if w.trk != nil {
			w.trk.Slice(levelName(lvls[i]), lat[i]+stepOverhead, traceLocArg, locName(loc[i]))
		}
	}
	r.LeafLoc = loc[n-1]
	// Every step the walk descended past feeds the paging-structure
	// caches: that is steps 0..n-2 whether the last performed step
	// terminated (leaf/fault) or aborted on budget.
	for i := 0; i+1 < n; i++ {
		w.psc.Insert(lvls[i], va, frames[i])
	}
	if cycles > budget {
		w.trk.EndArg(traceOutcome, outcomeAbort)
		return r // aborted: Completed stays false
	}
	r.Completed = true
	if !ok {
		w.trk.EndArg(traceOutcome, outcomeFault)
		return r // page fault
	}
	r.OK = true
	r.Frame = frame
	r.Size = sizeAtLevel(leafLevel)
	w.trk.EndArg(traceOutcome, outcomeOK)
	return r
}
