package walker

import (
	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
	"atscale/internal/telemetry"
)

// Nested is the two-dimensional hardware walker of a machine running
// under nested paging: the guest page table's pages live at
// guest-physical addresses, so resolving each guest level first requires
// the host address of that level's table page — an EPT translation,
// served by the nTLB or by a full EPT walk — and the walk finishes with
// one more EPT translation for the data page itself. Worst case for a
// 4 KB guest walk over a 4 KB EPT that is 4 guest PTE loads plus 5 EPT
// walks of 4 loads each: 24 loads, versus the native walker's 4.
//
// Every load in both dimensions goes through the shared cache hierarchy,
// so the paper's filtering effect — and Patil-style "where do PTE loads
// land" attribution — is observable per dimension: guest-dimension loads
// land in Result.Locs, EPT-dimension loads in Result.EPTLocs.
type Nested struct {
	phys    *mem.Phys // host physical memory (all PTE bytes live here)
	eptRoot arch.PAddr
	eptLeaf arch.Level // leaf level of the EPT mapping policy
	nc      *mmucache.Nested
	caches  *cache.Hierarchy

	// gtrk/etrk, when non-nil, are the guest-dimension and EPT-dimension
	// timeline sub-tracks: guest walks span gtrk with one slice per
	// guest PTE load; every EPT walk spans etrk with one slice per EPT
	// entry load. The two tracks cross-sync so the dimensions interleave
	// in walk order. clock supplies the shared simulated-cycle clock.
	//
	//atlint:noreset trace attachment is session state owned by SetTrace; Flush models a TLB flush, not object recycling
	gtrk, etrk *telemetry.Track
	//atlint:noreset paired with gtrk/etrk: the timestamp source lives and dies with the trace attachment
	clock func() uint64
}

// eptOutcome maps a failed EPT translation to the guest walk span's
// outcome argument.
func eptOutcome(st eptStatus) string {
	if st == eptViolation {
		return outcomeNoWalk
	}
	return outcomeAbort
}

// eptStatus reports how an EPT translation inside a nested walk ended.
type eptStatus uint8

const (
	eptOK        eptStatus = iota // translation resolved
	eptAborted                    // cycle budget exhausted mid-EPT-walk
	eptViolation                  // gPA unmapped in the EPT
)

// NewNested builds the 2D walker: guest walks resolve against a guest
// table rooted at the (guest-physical) CR3 passed to Walk, and every
// guest-physical access resolves through the EPT rooted at eptRoot,
// whose leaves are all of size eptPages.
func NewNested(phys *mem.Phys, eptRoot arch.PAddr, eptPages arch.PageSize, nc *mmucache.Nested, caches *cache.Hierarchy) *Nested {
	return &Nested{
		phys:    phys,
		eptRoot: eptRoot,
		eptLeaf: eptPages.LeafLevel(),
		nc:      nc,
		caches:  caches,
	}
}

// Caches exposes the nested walk-serving caches (machine wiring, tests).
func (w *Nested) Caches() *mmucache.Nested { return w.nc }

// SetTrace attaches the guest and EPT timeline sub-tracks. clock
// supplies simulated-cycle timestamps for walk starts.
func (w *Nested) SetTrace(guest, ept *telemetry.Track, clock func() uint64) {
	w.gtrk, w.etrk, w.clock = guest, ept, clock
}

// Flush implements Engine. For a nested walker, Flush is the guest
// context switch: guest-dimension PSCs drop, but the EPT PSCs and nTLB —
// tagged by guest-physical addresses under an unchanged EPTP — stay
// warm. That persistence is the EPT-sharing benefit multi-tenant sweeps
// measure. Use FlushAll for an EPTP change.
func (w *Nested) Flush() { w.nc.FlushGuest() }

// FlushAll drops both dimensions (EPTP change / INVEPT).
func (w *Nested) FlushAll() { w.nc.Flush() }

// InvalidateBlock implements Engine (guest-dimension PDE shootdown).
func (w *Nested) InvalidateBlock(va arch.VAddr) {
	w.nc.Guest.InvalidatePrefix(arch.LevelPD, va)
}

// eptTranslate resolves a guest-physical address to its backing host
// frame: nTLB first, then an EPT walk whose entry loads go through the
// cache hierarchy and whose skips come from the EPT PSCs. On success it
// returns the host frame base and the EPT mapping size covering gpa.
func (w *Nested) eptTranslate(gpa arch.PAddr, r *Result, budget uint64) (arch.PAddr, arch.PageSize, eptStatus) {
	if hbase, size, ok := w.nc.NTLB.Lookup(gpa); ok {
		r.NTLBHits++
		if w.etrk != nil {
			w.etrk.Sync(w.gtrk.Now())
			w.etrk.Instant(traceNTLBHit)
		}
		return hbase, size, eptOK
	}
	r.NTLBMisses++
	if w.etrk != nil {
		// The EPT dimension runs while the guest dimension is stalled:
		// pull the EPT track up to guest time, walk, and (in Walk) pull
		// the guest track back up to EPT time.
		w.etrk.Sync(w.gtrk.Now())
		w.etrk.Begin(traceEPTWalk)
	}
	// The EPT is a radix table whose input address is the guest-physical
	// address; reuse the virtual-address slicing machinery on it.
	gva := arch.VAddr(gpa)
	level, base := w.nc.EPT.LookupDeepest(gva, w.eptLeaf, w.eptRoot)
	for {
		a := pagetable.EntryAddr(base, level, gva)
		lat, loc := w.caches.Access(a)
		r.Cycles += lat + stepOverhead
		r.EPTCycles += lat + stepOverhead
		r.Loads++
		r.EPTLoads++
		r.EPTLocs[loc]++
		if w.etrk != nil {
			w.etrk.Slice(levelName(level), lat+stepOverhead, traceLocArg, locName(loc))
		}
		if r.Cycles > budget {
			w.etrk.EndArg(traceOutcome, outcomeAbort)
			return 0, 0, eptAborted
		}
		e := pagetable.PTE(w.phys.Read64(a))
		if !e.Present() {
			w.etrk.EndArg(traceOutcome, outcomeNoWalk)
			return 0, 0, eptViolation
		}
		if e.IsLeaf(level) {
			size := sizeAtLevel(level)
			w.nc.NTLB.Insert(arch.PAddr(arch.PageBase(gva, size)), e.Frame(), size)
			r.EPTWalks++
			w.etrk.EndArg(traceOutcome, outcomeOK)
			return e.Frame(), size, eptOK
		}
		w.nc.EPT.Insert(level, gva, e.Frame())
		base = e.Frame()
		level--
	}
}

// Walk implements Engine: the full gVA -> hPA nested walk. cr3 is the
// guest page table root, a guest-physical address.
func (w *Nested) Walk(va arch.VAddr, cr3 arch.PAddr, budget uint64) Result {
	var r Result
	if w.gtrk != nil {
		w.gtrk.Sync(w.clock())
		w.gtrk.Begin(traceWalk)
	}
	level, base := w.nc.Guest.LookupDeepest(va, arch.LevelPT, cr3)
	r.GuestPSCHit = level != w.nc.Guest.Top()
	for {
		// Host address of the guest entry: one EPT translation per
		// guest step.
		entryGPA := pagetable.EntryAddr(base, level, va)
		hbase, esize, st := w.eptTranslate(entryGPA, &r, budget)
		if w.gtrk != nil {
			w.gtrk.Sync(w.etrk.Now()) // EPT-dimension time elapsed first
		}
		if st != eptOK {
			r.Completed = st == eptViolation
			w.gtrk.EndArg(traceOutcome, eptOutcome(st))
			return r
		}
		hpa := hbase + arch.PAddr(uint64(entryGPA)&esize.Mask())

		// The guest-dimension PTE load itself.
		lat, loc := w.caches.Access(hpa)
		r.Cycles += lat + stepOverhead
		r.Loads++
		r.GuestLoads++
		r.Locs[loc]++
		r.LeafLoc = loc
		if w.gtrk != nil {
			w.gtrk.Slice(levelName(level), lat+stepOverhead, traceLocArg, locName(loc))
		}
		if r.Cycles > budget {
			w.gtrk.EndArg(traceOutcome, outcomeAbort)
			return r // aborted: Completed stays false
		}
		e := pagetable.PTE(w.phys.Read64(hpa))
		if !e.Present() {
			r.Completed = true
			w.gtrk.EndArg(traceOutcome, outcomeFault)
			return r // guest page fault
		}
		if e.IsLeaf(level) {
			gsize := sizeAtLevel(level)
			gframe := e.Frame()
			// Final dimension crossing: translate the data page's
			// guest-physical address.
			dataGPA := gframe + arch.PAddr(uint64(va)&gsize.Mask())
			dbase, dsize, st := w.eptTranslate(dataGPA, &r, budget)
			if w.gtrk != nil {
				w.gtrk.Sync(w.etrk.Now())
			}
			if st != eptOK {
				r.Completed = st == eptViolation
				w.gtrk.EndArg(traceOutcome, eptOutcome(st))
				return r
			}
			// The combined translation is linear only over the smaller
			// of the two mapping sizes, so that is the granularity the
			// TLBs may cache (hardware TLBs under nested paging behave
			// the same way).
			eff := gsize
			if dsize < eff {
				eff = dsize
			}
			effBase := arch.PageBase(va, eff)
			gpaBase := gframe + arch.PAddr(uint64(effBase)-uint64(arch.PageBase(va, gsize)))
			r.Frame = dbase + arch.PAddr(uint64(gpaBase)&dsize.Mask())
			r.Size = eff
			r.OK = true
			r.Completed = true
			w.gtrk.EndArg(traceOutcome, outcomeOK)
			return r
		}
		w.nc.Guest.Insert(level, va, e.Frame())
		base = e.Frame() // guest-physical base of the next guest table
		level--
	}
}
