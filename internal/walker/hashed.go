package walker

import (
	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/pagetable"
	"atscale/internal/telemetry"
)

// Hashed is the hardware walker for a hashed page table: one hash
// computation, then a short linear probe over 16-byte slots loaded
// through the cache hierarchy. There is no radix to descend and no
// paging-structure cache to consult, so translation latency is flat in
// the footprint — the property the paper's discussion wants from
// alternative page-table structures.
type Hashed struct {
	phys   *mem.Phys
	caches *cache.Hierarchy
	table  *pagetable.HashedTable

	// trk, when non-nil, receives one span per walk with a "hash" slice
	// for the hash computation and one "probe" slice per cluster load.
	//
	//atlint:noreset trace attachment is session state owned by SetTrace; Flush models a TLB flush, not object recycling
	trk *telemetry.Track
	//atlint:noreset paired with trk: the timestamp source lives and dies with the trace attachment
	clock func() uint64
}

// hashCycles is the fixed cost of the hash computation preceding the
// first slot load.
const hashCycles = 3

// NewHashed builds a hashed-table walker.
func NewHashed(phys *mem.Phys, caches *cache.Hierarchy, table *pagetable.HashedTable) *Hashed {
	return &Hashed{phys: phys, caches: caches, table: table}
}

// SetTrace attaches the walker's timeline track; clock supplies
// simulated-cycle timestamps for walk starts.
func (h *Hashed) SetTrace(trk *telemetry.Track, clock func() uint64) {
	h.trk, h.clock = trk, clock
}

// Walk implements Engine. cr3 is unused: the walker addresses clusters
// through the table geometry (a real design would carry base and size in
// control registers).
func (h *Hashed) Walk(va arch.VAddr, _ arch.PAddr, budget uint64) Result {
	var r Result
	r.Cycles = hashCycles
	if h.trk != nil {
		h.trk.Sync(h.clock())
		h.trk.Begin(traceWalk)
		h.trk.Slice(traceHash, hashCycles, "", "")
	}
	if !h.table.Canonical(va) {
		r.Completed = true
		h.trk.EndArg(traceOutcome, outcomeFault)
		return r
	}
	vpn := arch.PageNumber(va, arch.Page4K)
	group := vpn / 4 // pagetable's clusterSpan
	tag := group + 2 // pagetable's tagBias
	start := h.table.HashGroup(group)
	clusters := h.table.Clusters()
	for p := uint64(0); p < pagetable.MaxProbe; p++ {
		i := (start + p) & (clusters - 1)
		addr := h.table.ClusterAddr(i)
		// One cache access per cluster: tag and frames share the line.
		lat, loc := h.caches.Access(addr)
		r.Cycles += lat
		r.Loads++
		r.Locs[loc]++
		r.LeafLoc = loc
		if h.trk != nil {
			h.trk.Slice(traceProbe, lat, traceLocArg, locName(loc))
		}
		if r.Cycles > budget {
			h.trk.EndArg(traceOutcome, outcomeAbort)
			return r // aborted
		}
		switch h.phys.Read64(addr) {
		case tag:
			frame := h.phys.Read64(addr + arch.PAddr(8+(vpn%4)*8))
			r.Completed = true
			if frame == 0 {
				h.trk.EndArg(traceOutcome, outcomeFault)
				return r // hole in the cluster: page fault
			}
			r.OK = true
			r.Frame = arch.PAddr(frame) &^ arch.PAddr(arch.Page4K.Mask())
			r.Size = arch.Page4K
			h.trk.EndArg(traceOutcome, outcomeOK)
			return r
		case 0: // empty cluster terminates the chain
			r.Completed = true
			h.trk.EndArg(traceOutcome, outcomeFault)
			return r
		}
		// Tombstone or other group: keep probing.
	}
	r.Completed = true
	h.trk.EndArg(traceOutcome, outcomeFault)
	return r
}

// Flush implements Engine (the hashed walker caches nothing).
func (h *Hashed) Flush() {}

// InvalidateBlock implements Engine (nothing cached).
func (h *Hashed) InvalidateBlock(arch.VAddr) {}
