package walker

import (
	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/pagetable"
)

// Hashed is the hardware walker for a hashed page table: one hash
// computation, then a short linear probe over 16-byte slots loaded
// through the cache hierarchy. There is no radix to descend and no
// paging-structure cache to consult, so translation latency is flat in
// the footprint — the property the paper's discussion wants from
// alternative page-table structures.
type Hashed struct {
	phys   *mem.Phys
	caches *cache.Hierarchy
	table  *pagetable.HashedTable
}

// hashCycles is the fixed cost of the hash computation preceding the
// first slot load.
const hashCycles = 3

// NewHashed builds a hashed-table walker.
func NewHashed(phys *mem.Phys, caches *cache.Hierarchy, table *pagetable.HashedTable) *Hashed {
	return &Hashed{phys: phys, caches: caches, table: table}
}

// Walk implements Engine. cr3 is unused: the walker addresses clusters
// through the table geometry (a real design would carry base and size in
// control registers).
func (h *Hashed) Walk(va arch.VAddr, _ arch.PAddr, budget uint64) Result {
	var r Result
	r.Cycles = hashCycles
	if !h.table.Canonical(va) {
		r.Completed = true
		return r
	}
	vpn := arch.PageNumber(va, arch.Page4K)
	group := vpn / 4 // pagetable's clusterSpan
	tag := group + 2 // pagetable's tagBias
	start := h.table.HashGroup(group)
	clusters := h.table.Clusters()
	for p := uint64(0); p < pagetable.MaxProbe; p++ {
		i := (start + p) & (clusters - 1)
		addr := h.table.ClusterAddr(i)
		// One cache access per cluster: tag and frames share the line.
		lat, loc := h.caches.Access(addr)
		r.Cycles += lat
		r.Loads++
		r.Locs[loc]++
		r.LeafLoc = loc
		if r.Cycles > budget {
			return r // aborted
		}
		switch h.phys.Read64(addr) {
		case tag:
			frame := h.phys.Read64(addr + arch.PAddr(8+(vpn%4)*8))
			r.Completed = true
			if frame == 0 {
				return r // hole in the cluster: page fault
			}
			r.OK = true
			r.Frame = arch.PAddr(frame) &^ arch.PAddr(arch.Page4K.Mask())
			r.Size = arch.Page4K
			return r
		case 0: // empty cluster terminates the chain
			r.Completed = true
			return r
		}
		// Tombstone or other group: keep probing.
	}
	r.Completed = true
	return r
}

// Flush implements Engine (the hashed walker caches nothing).
func (h *Hashed) Flush() {}

// InvalidateBlock implements Engine (nothing cached).
func (h *Hashed) InvalidateBlock(arch.VAddr) {}
