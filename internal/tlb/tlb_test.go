package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atscale/internal/arch"
)

func TestInsertLookup(t *testing.T) {
	tl := New(arch.TLBGeometry{Entries: 16, Ways: 4}, arch.Page4K)
	tl.Insert(0x1000, 0x9000, arch.Page4K)
	e, ok := tl.Lookup(0x1abc)
	if !ok || e.Frame != 0x9000 || e.Size != arch.Page4K {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := tl.Lookup(0x2000); ok {
		t.Error("lookup of uninserted page hit")
	}
}

func TestWrongSizeRejected(t *testing.T) {
	tl := New(arch.TLBGeometry{Entries: 16, Ways: 4}, arch.Page4K)
	tl.Insert(0x200000, 0x40000000, arch.Page2M) // not held; dropped
	if _, ok := tl.Lookup(0x200000); ok {
		t.Error("2MB entry visible in 4K-only TLB")
	}
	if tl.Live() != 0 {
		t.Error("rejected insert consumed an entry")
	}
}

func TestUnifiedTLBBothSizes(t *testing.T) {
	tl := New(arch.TLBGeometry{Entries: 64, Ways: 8}, arch.Page4K, arch.Page2M)
	tl.Insert(0x1000, 0x9000, arch.Page4K)
	tl.Insert(0x200000, 0x40000000, arch.Page2M)
	if e, ok := tl.Lookup(0x1008); !ok || e.Size != arch.Page4K {
		t.Errorf("4K entry lost: %+v %v", e, ok)
	}
	if e, ok := tl.Lookup(0x2abcde); !ok || e.Size != arch.Page2M || e.Frame != 0x40000000 {
		t.Errorf("2M entry lost: %+v %v", e, ok)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 8 entries, 2 ways -> 4 sets. VPNs congruent mod 4 conflict.
	tl := New(arch.TLBGeometry{Entries: 8, Ways: 2}, arch.Page4K)
	va := func(vpn uint64) arch.VAddr { return arch.VAddr(vpn << 12) }
	tl.Insert(va(0), 0x1000, arch.Page4K)
	tl.Insert(va(4), 0x2000, arch.Page4K)
	tl.Lookup(va(0)) // 4 becomes LRU
	tl.Insert(va(8), 0x3000, arch.Page4K)
	if _, ok := tl.Lookup(va(4)); ok {
		t.Error("LRU entry survived")
	}
	if _, ok := tl.Lookup(va(0)); !ok {
		t.Error("MRU entry evicted")
	}
	if _, ok := tl.Lookup(va(8)); !ok {
		t.Error("new entry missing")
	}
}

func TestCapacity(t *testing.T) {
	g := arch.TLBGeometry{Entries: 64, Ways: 4}
	tl := New(g, arch.Page4K)
	for vpn := uint64(0); vpn < 1000; vpn++ {
		tl.Insert(arch.VAddr(vpn<<12), arch.PAddr(vpn<<12), arch.Page4K)
	}
	if tl.Live() > g.Entries {
		t.Errorf("live entries %d exceed capacity %d", tl.Live(), g.Entries)
	}
}

func TestInvalidatePage(t *testing.T) {
	tl := New(arch.TLBGeometry{Entries: 16, Ways: 4}, arch.Page4K)
	tl.Insert(0x1000, 0x9000, arch.Page4K)
	tl.InvalidatePage(0x1000, arch.Page4K)
	if _, ok := tl.Lookup(0x1000); ok {
		t.Error("entry survived invalidation")
	}
}

func TestFlush(t *testing.T) {
	tl := New(arch.TLBGeometry{Entries: 16, Ways: 4}, arch.Page4K)
	for vpn := uint64(0); vpn < 8; vpn++ {
		tl.Insert(arch.VAddr(vpn<<12), arch.PAddr(vpn<<12), arch.Page4K)
	}
	tl.Flush()
	if tl.Live() != 0 {
		t.Errorf("%d entries after flush", tl.Live())
	}
}

func TestDisabledTLB(t *testing.T) {
	tl := New(arch.TLBGeometry{}, arch.Page4K)
	tl.Insert(0x1000, 0x9000, arch.Page4K)
	if _, ok := tl.Lookup(0x1000); ok {
		t.Error("disabled TLB hit")
	}
}

func TestReinsertUpdatesFrame(t *testing.T) {
	tl := New(arch.TLBGeometry{Entries: 16, Ways: 4}, arch.Page4K)
	tl.Insert(0x1000, 0x9000, arch.Page4K)
	tl.Insert(0x1000, 0xa000, arch.Page4K)
	e, ok := tl.Lookup(0x1000)
	if !ok || e.Frame != 0xa000 {
		t.Errorf("reinsert: %+v %v", e, ok)
	}
	if tl.Live() != 1 {
		t.Errorf("reinsert duplicated the entry: live=%d", tl.Live())
	}
}

func newTestHierarchy() *Hierarchy {
	cfg := arch.DefaultSystem()
	return NewHierarchy(&cfg)
}

func TestHierarchyMissThenFill(t *testing.T) {
	h := newTestHierarchy()
	if r := h.Lookup(0x1234); r.Level != Miss {
		t.Fatalf("cold lookup = %v", r.Level)
	}
	h.Fill(0x1234, 0x9000, arch.Page4K)
	r := h.Lookup(0x1234)
	if r.Level != HitL1 || r.Entry.Frame != 0x9000 {
		t.Fatalf("after fill = %+v", r)
	}
}

func TestHierarchySTLBPromotion(t *testing.T) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	h.Fill(0x1000, 0x9000, arch.Page4K)
	// Thrash the 4K L1 (64 entries) without thrashing the 1024-entry STLB.
	for vpn := uint64(0x100); vpn < 0x100+256; vpn++ {
		h.Fill(arch.VAddr(vpn<<12), arch.PAddr(vpn<<12), arch.Page4K)
	}
	if _, ok := h.L1(arch.Page4K).Lookup(0x1000); ok {
		t.Skip("original entry unexpectedly survived L1 thrash")
	}
	r := h.Lookup(0x1000)
	if r.Level != HitSTLB {
		t.Fatalf("lookup after L1 thrash = %v, want STLB hit", r.Level)
	}
	// Promotion: the next lookup must hit L1.
	if r := h.Lookup(0x1000); r.Level != HitL1 {
		t.Errorf("no promotion to L1: %v", r.Level)
	}
}

func TestHierarchy1GNotInSTLB(t *testing.T) {
	cfg := arch.DefaultSystem() // STLBHolds1G = false
	h := NewHierarchy(&cfg)
	// Fill 5 distinct 1GB translations; L1-1G holds only 4.
	for i := uint64(0); i < 5; i++ {
		h.Fill(arch.VAddr(i<<30), arch.PAddr(i<<30), arch.Page1G)
	}
	misses := 0
	for i := uint64(0); i < 5; i++ {
		if r := h.Lookup(arch.VAddr(i << 30)); r.Level == Miss {
			misses++
		}
	}
	if misses == 0 {
		t.Error("5 1GB pages fit in a 4-entry TLB with no STLB backing")
	}
}

func TestHierarchyInvalidateEverywhere(t *testing.T) {
	h := newTestHierarchy()
	h.Fill(0x1000, 0x9000, arch.Page4K)
	h.InvalidatePage(0x1000, arch.Page4K)
	if r := h.Lookup(0x1000); r.Level != Miss {
		t.Errorf("lookup after invalidate = %v", r.Level)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := newTestHierarchy()
	h.Fill(0x1000, 0x9000, arch.Page4K)
	h.Fill(0x200000, 0x40000000, arch.Page2M)
	h.Flush()
	if h.Lookup(0x1000).Level != Miss || h.Lookup(0x200000).Level != Miss {
		t.Error("entries survived flush")
	}
}

// TestLookupReturnsInserted is the core property: whatever was inserted
// last for a page is what lookup returns.
func TestLookupReturnsInserted(t *testing.T) {
	h := newTestHierarchy()
	truth := map[uint64]arch.PAddr{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		vpn := uint64(rng.Intn(2000))
		frame := arch.PAddr(rng.Uint64() &^ 0xFFF & 0xFFFF_FFFF)
		h.Fill(arch.VAddr(vpn<<12), frame, arch.Page4K)
		truth[vpn] = frame
		probe := uint64(rng.Intn(2000))
		if r := h.Lookup(arch.VAddr(probe << 12)); r.Level != Miss {
			if want, seen := truth[probe]; !seen || r.Entry.Frame != want {
				t.Fatalf("lookup vpn %d returned %#x, want %#x (seen=%v)",
					probe, uint64(r.Entry.Frame), uint64(want), seen)
			}
		}
	}
}

// TestSmallWorkingSetAlwaysHits: a working set within L1 capacity never
// misses after warmup.
func TestSmallWorkingSetAlwaysHits(t *testing.T) {
	check := func(seed int64) bool {
		h := newTestHierarchy()
		rng := rand.New(rand.NewSource(seed))
		const pages = 15 // < 64-entry 4K L1 and spread over sets
		for vpn := uint64(0); vpn < pages; vpn++ {
			h.Fill(arch.VAddr(vpn<<12), arch.PAddr(vpn<<12), arch.Page4K)
		}
		for i := 0; i < 500; i++ {
			vpn := uint64(rng.Intn(pages))
			if h.Lookup(arch.VAddr(vpn<<12)).Level == Miss {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	if HitL1.String() != "L1TLB" || HitSTLB.String() != "STLB" || Miss.String() != "miss" {
		t.Error("Level.String wrong")
	}
}
