// Package tlb models translation lookaside buffers: set-associative arrays
// mapping virtual page numbers to physical frames, with true LRU within
// each set. The Hierarchy type assembles the Haswell arrangement the paper
// measures: split first-level TLBs per page size backed by a unified
// second-level STLB shared by 4 KB and 2 MB translations.
package tlb

import (
	"math"

	"atscale/internal/arch"
)

// Entry is one cached translation.
type Entry struct {
	// VPN is the virtual page number (va >> size shift).
	VPN uint64
	// Frame is the physical base address of the mapped page.
	Frame arch.PAddr
	// Size is the mapping's page size.
	Size arch.PageSize
}

const invalidVPN = math.MaxUint64

type way struct {
	vpn   uint64
	frame arch.PAddr
	size  arch.PageSize
	stamp uint64
}

// TLB is one set-associative translation cache. A TLB may hold a single
// page size (split L1 arrays) or several (unified STLB); the set index and
// tag are derived from the VPN at each entry's own page size, and lookups
// probe once per size the TLB holds.
type TLB struct {
	sets  int
	ways  int
	holds [arch.NumPageSizes]bool
	data  []way
	clock uint64

	// mask is sets-1 when the set count is a power of two (every Table
	// III TLB geometry), turning the per-lookup set index into an AND;
	// the modulo path remains for arbitrary geometries.
	mask uint64
	pow2 bool
}

// setBase returns the first way index of a VPN's set.
func (t *TLB) setBase(vpn uint64) uint64 {
	if t.pow2 {
		return (vpn & t.mask) * uint64(t.ways)
	}
	return (vpn % uint64(t.sets)) * uint64(t.ways)
}

// New builds a TLB from its geometry, holding the given page sizes.
// A geometry with zero entries yields a disabled TLB that never hits.
func New(g arch.TLBGeometry, sizes ...arch.PageSize) *TLB {
	t := &TLB{}
	if g.Entries == 0 {
		return t
	}
	t.sets = g.Entries / g.Ways
	t.ways = g.Ways
	if t.sets > 0 && t.sets&(t.sets-1) == 0 {
		t.pow2, t.mask = true, uint64(t.sets-1)
	}
	t.data = make([]way, g.Entries)
	for i := range t.data {
		t.data[i].vpn = invalidVPN
	}
	for _, s := range sizes {
		t.holds[s] = true
	}
	return t
}

// Holds reports whether the TLB caches translations of the given size.
func (t *TLB) Holds(ps arch.PageSize) bool { return t.holds[ps] }

// Lookup probes for a translation of va at any size the TLB holds,
// refreshing LRU on a hit.
//
//atlint:hotpath
func (t *TLB) Lookup(va arch.VAddr) (Entry, bool) {
	if t.sets == 0 {
		return Entry{}, false
	}
	t.clock++
	for ps := arch.Page4K; ps < arch.NumPageSizes; ps++ {
		if !t.holds[ps] {
			continue
		}
		vpn := arch.PageNumber(va, ps)
		base := t.setBase(vpn)
		// Slice the set once so the way scan runs without bounds checks
		// (this probe sits on every simulated memory access).
		set := t.data[base : base+uint64(t.ways)]
		for w := range set {
			e := &set[w]
			if e.vpn == vpn && e.size == ps {
				e.stamp = t.clock
				return Entry{VPN: vpn, Frame: e.frame, Size: ps}, true
			}
		}
	}
	return Entry{}, false
}

// Insert caches the translation of va (page base) -> frame at the given
// size, evicting the set's LRU entry if needed. Inserting a translation
// that is already present refreshes it in place.
func (t *TLB) Insert(va arch.VAddr, frame arch.PAddr, ps arch.PageSize) {
	if t.sets == 0 || !t.holds[ps] {
		return
	}
	t.clock++
	vpn := arch.PageNumber(va, ps)
	base := t.setBase(vpn)
	set := t.data[base : base+uint64(t.ways)]
	victim := 0
	oldest := uint64(math.MaxUint64)
	for w := range set {
		e := &set[w]
		if e.vpn == vpn && e.size == ps {
			e.frame = frame
			e.stamp = t.clock
			return
		}
		if e.vpn == invalidVPN {
			if oldest != 0 {
				victim, oldest = w, 0
			}
			continue
		}
		if e.stamp < oldest {
			victim, oldest = w, e.stamp
		}
	}
	set[victim] = way{vpn: vpn, frame: frame, size: ps, stamp: t.clock}
}

// InvalidatePage drops the translation of va at the given size if present.
func (t *TLB) InvalidatePage(va arch.VAddr, ps arch.PageSize) {
	if t.sets == 0 || !t.holds[ps] {
		return
	}
	vpn := arch.PageNumber(va, ps)
	base := t.setBase(vpn)
	for w := 0; w < t.ways; w++ {
		e := &t.data[base+uint64(w)]
		if e.vpn == vpn && e.size == ps {
			e.vpn = invalidVPN
			e.stamp = 0
		}
	}
}

// Reset returns the TLB to its just-constructed state: every way
// invalid and the LRU clock back at zero. Unlike Flush, which keeps the
// clock running (an architectural invalidation mid-run), Reset also
// rewinds the recency clock so a pooled machine's TLB is
// indistinguishable from a fresh one.
func (t *TLB) Reset() {
	t.Flush()
	t.clock = 0
}

// Flush empties the TLB.
func (t *TLB) Flush() {
	for i := range t.data {
		t.data[i].vpn = invalidVPN
		t.data[i].stamp = 0
	}
}

// Live returns the number of valid entries (test/debug helper).
func (t *TLB) Live() int {
	n := 0
	for i := range t.data {
		if t.data[i].vpn != invalidVPN {
			n++
		}
	}
	return n
}

// Level says where a hierarchy lookup was satisfied.
type Level uint8

const (
	// HitL1 means the first-level TLB translated the access.
	HitL1 Level = iota
	// HitSTLB means the second-level TLB translated it (extra latency).
	HitSTLB
	// Miss means no TLB holds the translation; a page walk is required.
	Miss
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1TLB"
	case HitSTLB:
		return "STLB"
	case Miss:
		return "miss"
	}
	return "?"
}

// Result is the outcome of a hierarchy lookup.
type Result struct {
	// Level says which array (if any) translated the access.
	Level Level
	// Entry is valid when Level != Miss.
	Entry Entry
}

// Hierarchy is the two-level TLB arrangement of the simulated machine.
type Hierarchy struct {
	l1   [arch.NumPageSizes]*TLB
	stlb *TLB
}

// NewHierarchy builds the TLB hierarchy described by cfg.
func NewHierarchy(cfg *arch.SystemConfig) *Hierarchy {
	h := &Hierarchy{}
	for ps := arch.Page4K; ps < arch.NumPageSizes; ps++ {
		h.l1[ps] = New(cfg.L1TLB[ps], ps)
	}
	stlbSizes := []arch.PageSize{arch.Page4K, arch.Page2M}
	if cfg.STLBHolds1G {
		stlbSizes = append(stlbSizes, arch.Page1G)
	}
	h.stlb = New(cfg.STLB, stlbSizes...)
	return h
}

// Lookup translates va through the hierarchy. An STLB hit promotes the
// translation into the appropriate L1 array, as hardware does.
//
//atlint:hotpath
func (h *Hierarchy) Lookup(va arch.VAddr) Result {
	for ps := arch.Page4K; ps < arch.NumPageSizes; ps++ {
		if e, ok := h.l1[ps].Lookup(va); ok {
			return Result{Level: HitL1, Entry: e}
		}
	}
	if e, ok := h.stlb.Lookup(va); ok {
		h.l1[e.Size].Insert(va, e.Frame, e.Size)
		return Result{Level: HitSTLB, Entry: e}
	}
	return Result{Level: Miss}
}

// Fill installs a completed walk's translation into the L1 array for its
// size and into the STLB (when the STLB holds that size).
func (h *Hierarchy) Fill(va arch.VAddr, frame arch.PAddr, ps arch.PageSize) {
	h.l1[ps].Insert(va, frame, ps)
	h.stlb.Insert(va, frame, ps)
}

// FillSTLB installs a translation into the STLB only — the insertion
// point for prefetched translations, which must not displace L1 entries.
func (h *Hierarchy) FillSTLB(va arch.VAddr, frame arch.PAddr, ps arch.PageSize) {
	h.stlb.Insert(va, frame, ps)
}

// InvalidatePage removes the translation for va at the given size from
// every array.
func (h *Hierarchy) InvalidatePage(va arch.VAddr, ps arch.PageSize) {
	h.l1[ps].InvalidatePage(va, ps)
	h.stlb.InvalidatePage(va, ps)
}

// Reset returns every array to its just-constructed state (see
// TLB.Reset for how this differs from Flush).
func (h *Hierarchy) Reset() {
	for _, t := range h.l1 {
		t.Reset()
	}
	h.stlb.Reset()
}

// Flush empties every array.
func (h *Hierarchy) Flush() {
	for _, t := range h.l1 {
		t.Flush()
	}
	h.stlb.Flush()
}

// L1 exposes the first-level array for a size (test/debug helper).
func (h *Hierarchy) L1(ps arch.PageSize) *TLB { return h.l1[ps] }

// STLB exposes the second-level array (test/debug helper).
func (h *Hierarchy) STLB() *TLB { return h.stlb }
