package tlb

import (
	"testing"

	"atscale/internal/arch"
)

func BenchmarkLookupHit(b *testing.B) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	h.Fill(0x1000, 0x9000, arch.Page4K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Lookup(0x1000).Level == Miss {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h.Lookup(arch.VAddr(uint64(i)<<12)).Level != Miss {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkFill(b *testing.B) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := arch.VAddr(uint64(i) << 12)
		h.Fill(va, arch.PAddr(va), arch.Page4K)
	}
}
