package tlb

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
)

// TestLookupZeroAllocs pins the TLB hierarchy's allocation contract:
// lookups, fills, and invalidations never touch the heap.
func TestLookupZeroAllocs(t *testing.T) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	rng := rand.New(rand.NewSource(1))
	step := func() {
		va := arch.VAddr(rng.Uint64() % (1 << 32) &^ 0xfff)
		h.Lookup(va)
		h.Fill(va, arch.PAddr(uint64(va)+arch.GB), arch.Page4K)
		h.Lookup(va)
		h.InvalidatePage(va, arch.Page4K)
	}
	for i := 0; i < 100; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("TLB hierarchy allocates %.2f allocs/op, want 0", avg)
	}
}
