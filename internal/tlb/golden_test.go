package tlb

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
)

// goldenSet is a reference LRU set: a slice ordered most-recent-first.
type goldenSet struct {
	ways int
	ents []Entry
}

func (g *goldenSet) lookup(vpn uint64, ps arch.PageSize) (Entry, bool) {
	for i, e := range g.ents {
		if e.VPN == vpn && e.Size == ps {
			// Move to front.
			copy(g.ents[1:i+1], g.ents[:i])
			g.ents[0] = e
			return e, true
		}
	}
	return Entry{}, false
}

func (g *goldenSet) insert(e Entry) {
	if _, hit := g.lookup(e.VPN, e.Size); hit {
		g.ents[0] = e // refresh in place (now at front)
		return
	}
	if len(g.ents) == g.ways {
		g.ents = g.ents[:g.ways-1] // evict LRU (back)
	}
	g.ents = append([]Entry{e}, g.ents...)
}

// TestTLBMatchesGoldenLRU drives the production set-associative TLB and a
// straightforward reference LRU model with the same random operation
// stream and requires identical hit/miss results and identical returned
// frames throughout.
func TestTLBMatchesGoldenLRU(t *testing.T) {
	const entries, ways = 32, 4
	sets := entries / ways
	tl := New(arch.TLBGeometry{Entries: entries, Ways: ways}, arch.Page4K)
	golden := make([]goldenSet, sets)
	for i := range golden {
		golden[i] = goldenSet{ways: ways}
	}
	rng := rand.New(rand.NewSource(21))
	const vpns = 64 // enough conflict pressure
	for op := 0; op < 200000; op++ {
		vpn := uint64(rng.Intn(vpns))
		set := vpn % uint64(sets)
		va := arch.VAddr(vpn << 12)
		if rng.Intn(2) == 0 {
			gotE, got := tl.Lookup(va)
			wantE, want := golden[set].lookup(vpn, arch.Page4K)
			if got != want {
				t.Fatalf("op %d: Lookup(vpn %d) hit=%v, golden %v", op, vpn, got, want)
			}
			if got && gotE.Frame != wantE.Frame {
				t.Fatalf("op %d: Lookup(vpn %d) frame %#x, golden %#x",
					op, vpn, uint64(gotE.Frame), uint64(wantE.Frame))
			}
		} else {
			frame := arch.PAddr(rng.Uint64() &^ 0xFFF & 0xFFFF_FFFF)
			tl.Insert(va, frame, arch.Page4K)
			golden[set].insert(Entry{VPN: vpn, Frame: frame, Size: arch.Page4K})
		}
	}
}

// TestUnifiedTLBMatchesGoldenWithTwoSizes repeats the golden cross-check
// with 4K and 2M entries sharing one array (the STLB arrangement).
func TestUnifiedTLBMatchesGoldenWithTwoSizes(t *testing.T) {
	const entries, ways = 64, 8
	sets := entries / ways
	tl := New(arch.TLBGeometry{Entries: entries, Ways: ways}, arch.Page4K, arch.Page2M)
	golden := make([]goldenSet, sets)
	for i := range golden {
		golden[i] = goldenSet{ways: ways}
	}
	rng := rand.New(rand.NewSource(33))
	for op := 0; op < 100000; op++ {
		ps := arch.Page4K
		if rng.Intn(3) == 0 {
			ps = arch.Page2M
		}
		vpn := uint64(rng.Intn(48))
		set := vpn % uint64(sets)
		va := arch.VAddr(vpn << ps.Shift())
		if rng.Intn(2) == 0 {
			frame := arch.PAddr(uint64(rng.Intn(1<<20)) << ps.Shift())
			tl.Insert(va, frame, ps)
			golden[set].insert(Entry{VPN: vpn, Frame: frame, Size: ps})
		} else {
			// The production TLB probes 4K then 2M; emulate that search
			// order against the golden sets.
			gotE, got := tl.Lookup(va)
			// A VA may match under either size in the golden model; probe
			// in the same order. Note va was built from ps, but lookup is
			// by address, so compute both candidate vpns.
			want := false
			var wantE Entry
			for _, cand := range []arch.PageSize{arch.Page4K, arch.Page2M} {
				cvpn := arch.PageNumber(va, cand)
				cset := cvpn % uint64(sets)
				if e, hit := golden[cset].lookup(cvpn, cand); hit {
					want, wantE = true, e
					break
				}
			}
			if got != want || (got && gotE != wantE) {
				t.Fatalf("op %d: lookup(%#x) = %+v,%v; golden %+v,%v",
					op, uint64(va), gotE, got, wantE, want)
			}
		}
	}
}
