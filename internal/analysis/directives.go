package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one //atlint: control comment.
//
//	//atlint:ordered <why>          suppress detrange at this site
//	//atlint:allow <analyzer> <why> suppress the named analyzer here
//	//atlint:deterministic          mark the package deterministic
//
// Suppression directives cover diagnostics on their own line and the
// line immediately below, so both trailing-comment and
// comment-above-the-statement styles work. A suppression that matches
// no diagnostic in a run that includes its analyzer is itself reported:
// stale justifications are how invariant rot starts.
type directive struct {
	pos      token.Pos
	analyzer string // analyzer it addresses; "" for markers
	verb     string // "ordered", "allow", "deterministic"
	reason   string
	used     bool
	bad      string // non-empty if malformed: the error message
}

// DirectivePrefix is the comment prefix all control comments share.
const DirectivePrefix = "atlint:"

// parseDirectives extracts every atlint directive from the files,
// keyed by file name and line.
func parseDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]*directive {
	out := make(map[string]map[int][]*directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, DirectivePrefix) {
					continue
				}
				d := parseDirective(c.Pos(), strings.TrimPrefix(text, DirectivePrefix))
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*directive)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
	return out
}

func parseDirective(pos token.Pos, body string) *directive {
	verb, rest, _ := strings.Cut(body, " ")
	d := &directive{pos: pos, verb: verb, reason: strings.TrimSpace(rest)}
	switch verb {
	case "ordered":
		d.analyzer = "detrange"
		if d.reason == "" {
			d.bad = "//atlint:ordered needs a justification (why is this iteration order-safe?)"
		}
	case "allow":
		name, why, _ := strings.Cut(d.reason, " ")
		d.analyzer, d.reason = name, strings.TrimSpace(why)
		if d.analyzer == "" {
			d.bad = "//atlint:allow needs an analyzer name and a justification"
		} else if d.reason == "" {
			d.bad = "//atlint:allow " + d.analyzer + " needs a justification"
		}
	case "deterministic":
		// Package marker consumed by detrange; nothing to validate.
	default:
		d.bad = "unknown directive //atlint:" + verb
	}
	return d
}

// suppressor answers "is this diagnostic covered by a directive?" and
// tracks which directives fired.
type suppressor struct {
	fset       *token.FileSet
	directives map[string]map[int][]*directive
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	return &suppressor{fset: fset, directives: parseDirectives(fset, files)}
}

// suppresses reports whether a diagnostic from the named analyzer at
// pos is covered, marking the covering directive used.
func (s *suppressor) suppresses(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	byLine := s.directives[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range byLine[line] {
			if d.bad == "" && d.analyzer == analyzer {
				d.used = true
				return true
			}
		}
	}
	return false
}

// leftovers returns diagnostics for malformed directives and for unused
// suppressions addressed to an analyzer in the run set.
func (s *suppressor) leftovers(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, byLine := range s.directives {
		for _, ds := range byLine {
			for _, d := range ds {
				switch {
				case d.bad != "":
					out = append(out, Diagnostic{Pos: d.pos, Message: d.bad, Analyzer: "atlint"})
				case d.verb == "deterministic" || d.used:
					// markers have no use tracking; fired suppressions are fine
				case ran[d.analyzer]:
					out = append(out, Diagnostic{
						Pos: d.pos,
						Message: "unused //atlint:" + d.verb + " directive for " + d.analyzer +
							" (nothing suppressed; delete it or fix the justification placement)",
						Analyzer: "atlint",
					})
				}
			}
		}
	}
	return out
}

// HasDeterministicMarker reports whether any file carries a
// package-level //atlint:deterministic marker. detrange uses it so new
// packages can opt into the deterministic set without editing the
// analyzer's built-in list.
func HasDeterministicMarker(fset *token.FileSet, files []*ast.File) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if text == DirectivePrefix+"deterministic" {
					return true
				}
			}
		}
	}
	return false
}
