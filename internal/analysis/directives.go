package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A directive is one //atlint: control comment.
//
// Suppressions (consumed by the framework):
//
//	//atlint:ordered <why>          suppress detrange at this site
//	//atlint:allow <analyzer> <why> suppress the named analyzer here
//
// Markers (consumed by the analyzer that owns the verb):
//
//	//atlint:deterministic           package is in detrange's scope
//	//atlint:frontend <why>          CLI package; nondet's wall-clock ban lifted
//	//atlint:hotpath [why]           function must be allocation-free (hotalloc)
//	//atlint:inline [why]            function must stay under the inliner budget (hotalloc)
//	//atlint:guardedby <mu> [why]    field may only be touched with <mu> held (lockguard)
//	//atlint:locked <mu> <why>       function runs with <mu> already held (lockguard)
//	//atlint:noreset <why>           field intentionally survives Reset (resetdiscipline)
//
// Several directives may share one comment by chaining them:
// `//atlint:hotpath //atlint:inline the PR 7 cost-78 contract`.
//
// Suppression directives cover diagnostics on their own line and the
// line immediately below, so both trailing-comment and
// comment-above-the-statement styles work. A suppression that matches
// no diagnostic in a run that includes its analyzer is itself reported:
// stale justifications are how invariant rot starts. Markers have no
// framework-side use tracking — the owning analyzer reports misplaced
// or unused markers with its own domain knowledge (an //atlint:noreset
// naming no field, a guardedby target that is not a mutex).
type directive struct {
	pos      token.Pos
	analyzer string // analyzer it addresses; "" for markers
	verb     string
	reason   string
	used     bool
	marker   bool   // analyzer-owned; exempt from unused reporting here
	bad      string // non-empty if malformed: the error message
}

// DirectivePrefix is the comment prefix all control comments share.
const DirectivePrefix = "atlint:"

// rawDirective is one directive body cut out of a comment, before verb
// parsing.
type rawDirective struct {
	pos  token.Pos
	body string
}

// directiveBodies extracts the directive bodies of a comment. A
// comment participates only if it begins with the atlint prefix;
// further directives may be chained inside it with `//atlint:`.
func directiveBodies(c *ast.Comment) []rawDirective {
	trimmed := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(trimmed, DirectivePrefix) {
		return nil
	}
	const chain = "//" + DirectivePrefix
	var out []rawDirective
	off := strings.Index(c.Text, DirectivePrefix)
	for off >= 0 {
		rest := c.Text[off+len(DirectivePrefix):]
		body := rest
		end := strings.Index(rest, chain)
		if end >= 0 {
			body = rest[:end]
		}
		out = append(out, rawDirective{
			pos:  c.Pos() + token.Pos(off),
			body: strings.TrimSpace(body),
		})
		if end < 0 {
			break
		}
		off += len(DirectivePrefix) + end + len("//")
	}
	return out
}

// parseDirectives extracts every atlint directive from the files,
// keyed by file name and line.
func parseDirectives(fset *token.FileSet, files []*ast.File) map[string]map[int][]*directive {
	out := make(map[string]map[int][]*directive)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, rd := range directiveBodies(c) {
					d := parseDirective(rd.pos, rd.body)
					pos := fset.Position(rd.pos)
					byLine := out[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*directive)
						out[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], d)
				}
			}
		}
	}
	return out
}

func parseDirective(pos token.Pos, body string) *directive {
	verb, rest, _ := strings.Cut(body, " ")
	d := &directive{pos: pos, verb: verb, reason: strings.TrimSpace(rest)}
	switch verb {
	case "ordered":
		d.analyzer = "detrange"
		if d.reason == "" {
			d.bad = "//atlint:ordered needs a justification (why is this iteration order-safe?)"
		}
	case "allow":
		name, why, _ := strings.Cut(d.reason, " ")
		d.analyzer, d.reason = name, strings.TrimSpace(why)
		if d.analyzer == "" {
			d.bad = "//atlint:allow needs an analyzer name and a justification"
		} else if d.reason == "" {
			d.bad = "//atlint:allow " + d.analyzer + " needs a justification"
		}
	case "deterministic":
		// Package marker consumed by detrange; nothing to validate.
		d.marker = true
	case "hotpath", "inline":
		// Function markers consumed by hotalloc; a reason is welcome
		// but optional — the verb is the contract.
		d.marker = true
	case "guardedby":
		d.marker = true
		if d.reason == "" {
			d.bad = "//atlint:guardedby needs the guarding mutex field name"
		}
	case "locked":
		d.marker = true
		guard, why, _ := strings.Cut(d.reason, " ")
		if guard == "" {
			d.bad = "//atlint:locked needs the held guard name and a justification"
		} else if strings.TrimSpace(why) == "" {
			d.bad = "//atlint:locked " + guard + " needs a justification (who holds the lock for this callee?)"
		}
	case "noreset":
		d.marker = true
		if d.reason == "" {
			d.bad = "//atlint:noreset needs a justification (why may this field survive Reset?)"
		}
	case "frontend":
		d.marker = true
		if d.reason == "" {
			d.bad = "//atlint:frontend needs a justification (why may this package read the wall clock?)"
		}
	default:
		d.bad = "unknown directive //atlint:" + verb
	}
	return d
}

// suppressor answers "is this diagnostic covered by a directive?" and
// tracks which directives fired.
type suppressor struct {
	fset       *token.FileSet
	directives map[string]map[int][]*directive
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	return &suppressor{fset: fset, directives: parseDirectives(fset, files)}
}

// suppresses reports whether a diagnostic from the named analyzer at
// pos is covered, marking the covering directive used. Markers never
// suppress: their semantics belong to the owning analyzer.
func (s *suppressor) suppresses(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	byLine := s.directives[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, d := range byLine[line] {
			if d.bad == "" && !d.marker && d.analyzer == analyzer {
				d.used = true
				return true
			}
		}
	}
	return false
}

// leftovers returns diagnostics for malformed directives and for unused
// suppressions addressed to an analyzer in the run set.
func (s *suppressor) leftovers(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, byLine := range s.directives {
		for _, ds := range byLine {
			for _, d := range ds {
				switch {
				case d.bad != "":
					out = append(out, Diagnostic{Pos: d.pos, Message: d.bad, Analyzer: "atlint"})
				case d.marker || d.used:
					// Markers are the owning analyzer's business;
					// fired suppressions are fine.
				case ran[d.analyzer]:
					out = append(out, Diagnostic{
						Pos: d.pos,
						Message: "unused //atlint:" + d.verb + " directive for " + d.analyzer +
							" (nothing suppressed; delete it or fix the justification placement)",
						Analyzer: "atlint",
					})
				}
			}
		}
	}
	return out
}

// Marker is one //atlint: directive seen from an analyzer's side: the
// verb and its raw argument string. Validation of the arguments is the
// owning analyzer's job; the framework only rejects unknown verbs.
type Marker struct {
	Pos  token.Pos
	Verb string
	Args string
}

// CommentMarkers returns the directives found in the given comment
// groups — typically a declaration's Doc and line Comment — as markers.
// Nil groups are allowed.
func CommentMarkers(groups ...*ast.CommentGroup) []Marker {
	var out []Marker
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			for _, rd := range directiveBodies(c) {
				verb, args, _ := strings.Cut(rd.body, " ")
				out = append(out, Marker{Pos: rd.pos, Verb: verb, Args: strings.TrimSpace(args)})
			}
		}
	}
	return out
}

// FileMarkers returns every directive in f whose verb is one of verbs,
// in source order. Analyzers use it to find markers that failed to
// attach to a declaration they understand (a //atlint:hotpath on a
// type, a //atlint:guardedby on a method) and report them.
func FileMarkers(f *ast.File, verbs ...string) []Marker {
	want := make(map[string]bool, len(verbs))
	for _, v := range verbs {
		want[v] = true
	}
	var out []Marker
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, rd := range directiveBodies(c) {
				verb, args, _ := strings.Cut(rd.body, " ")
				if want[verb] {
					out = append(out, Marker{Pos: rd.pos, Verb: verb, Args: strings.TrimSpace(args)})
				}
			}
		}
	}
	return out
}

// HasPackageMarker reports whether any file carries a well-formed
// //atlint:<verb> directive. Package-scoped markers (deterministic,
// frontend) use it.
func HasPackageMarker(files []*ast.File, verb string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, rd := range directiveBodies(c) {
					v, _, _ := strings.Cut(rd.body, " ")
					if v == verb {
						return true
					}
				}
			}
		}
	}
	return false
}

// HasDeterministicMarker reports whether any file carries a
// package-level //atlint:deterministic marker. detrange uses it so new
// packages can opt into the deterministic set without editing the
// analyzer's built-in list.
func HasDeterministicMarker(fset *token.FileSet, files []*ast.File) bool {
	return HasPackageMarker(files, "deterministic")
}
