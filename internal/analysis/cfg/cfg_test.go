package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses a function body and returns its graph plus a lookup from
// statement text fragments to the blocks containing them.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nimport \"os\"\nvar _ = os.Exit\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	return New(fn.Body, nil)
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("entry does not reach exit: %s", g)
	}
}

func TestIfElseJoins(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { x = 2 } else { x = 3 }\n_ = x")
	// Both arms must reach the exit, and the graph must have a join.
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("entry does not reach exit: %s", g)
	}
	if len(g.Entry.Succs) != 2 && len(succOf(g.Entry).Succs) != 2 {
		t.Fatalf("no two-way branch near entry: %s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ { _ = i }")
	if !hasBackEdge(g) {
		t.Fatalf("no back edge in loop graph: %s", g)
	}
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("loop exit unreachable: %s", g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := build(t, "s := []int{1}\nfor _, v := range s { _ = v }")
	if !hasBackEdge(g) {
		t.Fatalf("no back edge in range graph: %s", g)
	}
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("range exit unreachable: %s", g)
	}
}

func TestInfiniteLoopDoesNotReachExit(t *testing.T) {
	g := build(t, "for { }")
	if reaches(g, g.Entry, g.Exit) {
		t.Fatalf("for{} reaches exit: %s", g)
	}
}

func TestBreakEscapesInfiniteLoop(t *testing.T) {
	g := build(t, "for { break }")
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("break does not reach exit: %s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := build(t, "L: for { for { break L } }")
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("labeled break does not reach exit: %s", g)
	}
}

func TestLabeledContinueKeepsLooping(t *testing.T) {
	g := build(t, "L: for { for { continue L } }")
	if reaches(g, g.Entry, g.Exit) {
		t.Fatalf("labeled continue alone must not reach exit: %s", g)
	}
	if !hasBackEdge(g) {
		t.Fatalf("continue produced no back edge: %s", g)
	}
}

func TestGotoForward(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { goto done }\nx = 2\ndone:\n_ = x")
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("goto graph does not reach exit: %s", g)
	}
}

func TestSwitchAllCasesJoin(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n x = 2\ncase 2:\n x = 3\n}\n_ = x")
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("switch does not reach exit: %s", g)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n x = 2\n fallthrough\ncase 2:\n x = 3\n}\n_ = x")
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("fallthrough graph broken: %s", g)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, "c := make(chan int)\nselect {\ncase v := <-c:\n _ = v\ndefault:\n}")
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("select does not reach exit: %s", g)
	}
}

func TestReturnGoesToExit(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 { return }\n_ = x")
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("return does not reach exit: %s", g)
	}
}

func TestPanicBlockTerminal(t *testing.T) {
	g := build(t, "x := 1\nif x > 9 { y := \"boom\"\n panic(y) }\n_ = x")
	reach := g.CanReachExit()
	var panicBlock *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlock = b
					}
				}
			}
		}
	}
	if panicBlock == nil {
		t.Fatalf("no panic block found: %s", g)
	}
	if len(panicBlock.Succs) != 0 {
		t.Fatalf("panic block has successors: %s", g)
	}
	if reach[panicBlock] {
		t.Fatalf("panic block reported as reaching exit")
	}
	if !reach[g.Entry] {
		t.Fatalf("entry must still reach exit around the panic")
	}
}

func TestOsExitTerminal(t *testing.T) {
	g := build(t, "x := 1\nif x > 9 { os.Exit(1) }\n_ = x")
	reach := g.CanReachExit()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if strings.Contains(exprString(es), "Exit") {
					if reach[b] {
						t.Fatalf("os.Exit block reaches exit: %s", g)
					}
				}
			}
		}
	}
}

func TestStringDeterministic(t *testing.T) {
	a := build(t, "x := 1\nif x > 0 { x = 2 }\n_ = x").String()
	b := build(t, "x := 1\nif x > 0 { x = 2 }\n_ = x").String()
	if a != b {
		t.Fatalf("graph rendering not deterministic: %q vs %q", a, b)
	}
}

// reaches reports whether dst is reachable from src along Succs.
func reaches(g *Graph, src, dst *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == dst {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(src)
}

// hasBackEdge reports whether any edge targets a block with a smaller
// index — the creation-order signature of a loop.
func hasBackEdge(g *Graph) bool {
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index <= b.Index && s != g.Exit {
				return true
			}
		}
	}
	return false
}

func succOf(b *Block) *Block {
	if len(b.Succs) > 0 {
		return b.Succs[0]
	}
	return b
}

func exprString(s *ast.ExprStmt) string {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}
