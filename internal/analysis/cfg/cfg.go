// Package cfg builds intraprocedural control-flow graphs over Go
// function bodies using only the standard library, mirroring the shape
// of golang.org/x/tools/go/cfg the way internal/analysis mirrors
// go/analysis. The graph is the substrate the flow-sensitive atlint
// analyzers share: lockguard runs a must-hold dataflow over it, and
// hotalloc uses exit reachability to tell steady-state allocations from
// crash-path ones.
//
// The builder decomposes every statement with internal control flow
// (if/for/range/switch/select, labels, goto, break/continue,
// fallthrough) into basic blocks. Simple statements and the
// control-governing expressions (an if condition, a range operand, a
// switch tag) are appended to block Nodes in evaluation order, so a
// client walking Nodes front to back sees the same order the program
// executes. Function literals are NOT descended into: a closure body is
// its own function with its own graph; clients decide what entry fact
// it inherits.
//
// A block that ends in return gets a single edge to Exit. A block that
// ends in panic (or os.Exit) gets no successors at all — the program
// never re-joins normal control flow — which is exactly the property
// CanReachExit exposes.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Block is one basic block: straight-line nodes then a transfer of
// control described by Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order,
	// deterministic for a given body).
	Index int
	// Nodes holds the block's simple statements and control-governing
	// expressions in evaluation order.
	Nodes []ast.Node
	// Succs are the possible next blocks. Empty for the exit block and
	// for blocks terminated by panic/os.Exit.
	Succs []*Block
}

// Graph is the CFG of one function body.
type Graph struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the single synthetic block every normal return reaches.
	Exit *Block
	// Blocks lists every block, Entry first, Exit last, in creation
	// order.
	Blocks []*Block
}

// New builds the CFG of a function body. info may be nil; when present
// it is used to resolve `panic` to the builtin (guarding against a
// shadowed local named panic).
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	b := &builder{info: info, labels: make(map[string]*labelTarget)}
	b.graph = &Graph{}
	entry := b.newBlock()
	exit := b.newBlock()
	b.graph.Entry, b.graph.Exit = entry, exit
	b.cur = entry
	b.stmtList(body.List)
	b.jump(b.graph.Exit)
	// Resolve forward gotos now that every label has been seen.
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, t.block)
		}
	}
	// Move Exit to the end so Blocks reads entry→…→exit.
	blocks := b.graph.Blocks
	for i, blk := range blocks {
		if blk == exit {
			copy(blocks[i:], blocks[i+1:])
			blocks[len(blocks)-1] = exit
			break
		}
	}
	for i, blk := range blocks {
		blk.Index = i
	}
	return b.graph
}

// CanReachExit reports, for every block, whether any path from it
// reaches the Exit block. Blocks that cannot — regions post-dominated
// by panic — are crash paths: code on them never executes in a run
// that keeps going.
func (g *Graph) CanReachExit() map[*Block]bool {
	reach := make(map[*Block]bool, len(g.Blocks))
	// Fixed point over the reversed edges, iterating until stable; the
	// graph is small (one function) so simplicity beats an explicit
	// reverse-adjacency index.
	reach[g.Exit] = true
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if reach[b] {
				continue
			}
			for _, s := range b.Succs {
				if reach[s] {
					reach[b] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// String renders the graph compactly for tests and debugging:
// "0->[1 2] 1->[3] ...".
func (g *Graph) String() string {
	var sb strings.Builder
	for i, b := range g.Blocks {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d->[", b.Index)
		for j, s := range b.Succs {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", s.Index)
		}
		sb.WriteByte(']')
	}
	return sb.String()
}

type labelTarget struct {
	block *Block // the labeled statement's block (goto/continue target)
	brk   *Block // where break <label> lands; nil until known
	cont  *Block // where continue <label> lands; nil for non-loops
}

type pendingGoto struct {
	from  *Block
	label string
}

type loopFrame struct {
	label string
	brk   *Block
	cont  *Block
}

type builder struct {
	info   *types.Info
	graph  *Graph
	cur    *Block
	loops  []loopFrame
	labels map[string]*labelTarget
	gotos  []pendingGoto
	// pendingLabel is the label naming the next loop/switch statement,
	// so `break L` / `continue L` resolve to it.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// jump terminates the current block with an edge to dst and leaves the
// builder in a fresh unreachable block (dead code after return/break
// still gets blocks; they simply have no predecessors).
func (b *builder) jump(dst *Block) {
	b.cur.Succs = append(b.cur.Succs, dst)
	b.cur = b.newBlock()
}

// terminate ends the current block with no successors (panic, os.Exit).
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		thenB := b.newBlock()
		cond.Succs = append(cond.Succs, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		afterThen := b.cur
		join := b.newBlock()
		afterThen.Succs = append(afterThen.Succs, join)
		if s.Else != nil {
			elseB := b.newBlock()
			cond.Succs = append(cond.Succs, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.cur.Succs = append(b.cur.Succs, join)
		} else {
			cond.Succs = append(cond.Succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.cur.Succs = append(b.cur.Succs, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, after)
		}
		b.pushLoop(after, post)
		b.cur = body
		b.stmt(s.Body)
		b.cur.Succs = append(b.cur.Succs, post)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.cur.Succs = append(b.cur.Succs, head)
		} else {
			post.Succs = append(post.Succs, head)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		b.cur.Nodes = append(b.cur.Nodes, s.X)
		head := b.newBlock()
		b.cur.Succs = append(b.cur.Succs, head)
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		body := b.newBlock()
		after := b.newBlock()
		head.Succs = append(head.Succs, body, after)
		b.pushLoop(after, head)
		b.cur = body
		b.stmt(s.Body)
		b.cur.Succs = append(b.cur.Succs, head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.caseClauses(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.caseClauses(s.Body, nil)

	case *ast.SelectStmt:
		b.caseClauses(s.Body, func(c ast.Stmt) ast.Stmt {
			return c.(*ast.CommClause).Comm
		})

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.cur.Succs = append(b.cur.Succs, target)
		b.cur = target
		b.labels[s.Label.Name] = &labelTarget{block: target}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.cur = b.newBlock()
		case token.BREAK:
			if dst := b.branchTarget(s.Label, true); dst != nil {
				b.jump(dst)
			} else {
				b.cur = b.newBlock()
			}
		case token.CONTINUE:
			if dst := b.branchTarget(s.Label, false); dst != nil {
				b.jump(dst)
			} else {
				b.cur = b.newBlock()
			}
		case token.FALLTHROUGH:
			// Handled by caseClauses wiring; the statement itself is a
			// no-op here.
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.graph.Exit)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if b.neverReturns(s.X) {
			b.terminate()
		}

	default:
		// Assignments, declarations, defers, go statements, sends,
		// inc/dec, empty statements: straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// caseClauses wires a switch/type-switch/select body: every clause is
// entered from the dispatch block, falls out to a common join, and (for
// expression switches) may fall through to the next clause. comm, when
// non-nil, extracts a select clause's communication statement.
func (b *builder) caseClauses(body *ast.BlockStmt, comm func(ast.Stmt) ast.Stmt) {
	dispatch := b.cur
	after := b.newBlock()
	label := b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		b.labels[label].brk = after
	}
	b.loops = append(b.loops, loopFrame{label: label, brk: after, cont: nil})

	hasDefault := false
	blocks := make([]*Block, 0, len(body.List))
	clauses := make([]ast.Stmt, 0, len(body.List))
	for _, c := range body.List {
		blk := b.newBlock()
		dispatch.Succs = append(dispatch.Succs, blk)
		blocks = append(blocks, blk)
		clauses = append(clauses, c)
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			blk.Nodes = append(blk.Nodes, exprNodes(cc.List)...)
		case *ast.CommClause:
			hasDefault = hasDefault || cc.Comm == nil
		}
	}
	if !hasDefault && comm == nil {
		// No default: the tag can match nothing and fall out directly.
		dispatch.Succs = append(dispatch.Succs, after)
	}
	for i, c := range clauses {
		b.cur = blocks[i]
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			if comm != nil && comm(c) != nil {
				b.stmt(comm(c))
			}
			list = cc.Body
		}
		fallsThrough := false
		for _, s := range list {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(s)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.cur.Succs = append(b.cur.Succs, blocks[i+1])
			b.cur = b.newBlock()
		} else {
			b.cur.Succs = append(b.cur.Succs, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func exprNodes(list []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(list))
	for i, e := range list {
		out[i] = e
	}
	return out
}

func (b *builder) pushLoop(brk, cont *Block) {
	label := b.pendingLabel
	b.pendingLabel = ""
	if label != "" {
		b.labels[label].brk = brk
		b.labels[label].cont = cont
	}
	b.loops = append(b.loops, loopFrame{label: label, brk: brk, cont: cont})
}

func (b *builder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

// branchTarget resolves break/continue, labeled or not, to its block.
func (b *builder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		t, ok := b.labels[label.Name]
		if !ok {
			return nil
		}
		if isBreak {
			return t.brk
		}
		return t.cont
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if isBreak {
			if f.brk != nil {
				return f.brk
			}
		} else if f.cont != nil {
			return f.cont
		}
	}
	return nil
}

// neverReturns reports whether an expression statement is a call that
// never returns control: the panic builtin or os.Exit.
func (b *builder) neverReturns(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name != "panic" {
			return false
		}
		if b.info != nil {
			if obj, ok := b.info.Uses[fn]; ok {
				_, isBuiltin := obj.(*types.Builtin)
				return isBuiltin
			}
		}
		return true
	case *ast.SelectorExpr:
		if fn.Sel.Name != "Exit" {
			return false
		}
		id, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		if b.info != nil {
			if pn, ok := b.info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() == "os"
			}
		}
		return id.Name == "os"
	}
	return false
}
