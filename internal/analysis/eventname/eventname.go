// Package eventname resolves constant string arguments passed to the
// perf event registry and the workload registry against the statically
// known name sets. A typo'd event name ("dtlb_load_misses.walk_durtion")
// compiles fine and only fails when the one experiment path that uses
// it runs; this analyzer fails the build instead. cmd/atlint populates
// the name sets from the real registries at startup, so the analyzer
// can never drift from the simulator's actual event table.
package eventname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"atscale/internal/analysis"
)

// Target identifies one registry lookup function and which argument
// carries the name.
type Target struct {
	// PkgSuffix matches the declaring package path ("internal/perf").
	PkgSuffix string
	// Func is the function name ("ByName").
	Func string
	// Arg is the index of the name argument.
	Arg int
	// Set chooses the name set: "event", "workload", or "scheme".
	Set string
}

// Targets lists the lookups the analyzer vets. cmd/atlint and the tests
// may extend it.
var Targets = []Target{
	{PkgSuffix: "internal/perf", Func: "ByName", Arg: 0, Set: "event"},
	{PkgSuffix: "internal/workloads", Func: "ByName", Arg: 0, Set: "workload"},
	{PkgSuffix: "atscale", Func: "WorkloadByName", Arg: 0, Set: "workload"},
	{PkgSuffix: "internal/refute", Func: "Ev", Arg: 0, Set: "event"},
	{PkgSuffix: "internal/topdown", Func: "Ev", Arg: 0, Set: "event"},
	{PkgSuffix: "internal/scheme", Func: "ByName", Arg: 0, Set: "scheme"},
}

// KnownEvents, KnownWorkloads, and KnownSchemes are the valid name
// sets. When a set is empty the corresponding targets are skipped — the
// analyzer refuses to guess. cmd/atlint fills them from the live
// registries.
var (
	KnownEvents    = map[string]bool{}
	KnownWorkloads = map[string]bool{}
	KnownSchemes   = map[string]bool{}
)

// Analyzer is the eventname check.
var Analyzer = &analysis.Analyzer{
	Name: "eventname",
	Doc: "flag unknown perf event and workload names in registry lookups\n\n" +
		"Constant strings passed to perf.ByName / workloads.ByName must name a\n" +
		"registered event or workload. The valid sets come from the live\n" +
		"registries, so adding an event automatically teaches the linter.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			t := matchTarget(pass, call)
			if t == nil || t.Arg >= len(call.Args) {
				return true
			}
			set := KnownEvents
			switch t.Set {
			case "workload":
				set = KnownWorkloads
			case "scheme":
				set = KnownSchemes
			}
			if len(set) == 0 {
				return true
			}
			name, ok := constString(pass, call.Args[t.Arg])
			if !ok || set[name] {
				return true
			}
			msg := "unknown " + t.Set + " name " + strconv(name)
			if near := nearest(name, set); near != "" {
				msg += " (did you mean " + strconv(near) + "?)"
			}
			pass.Reportf(call.Args[t.Arg].Pos(), "%s in call to %s.%s", msg, pathBase(t.PkgSuffix), t.Func)
			return true
		})
	}
	return nil
}

// matchTarget resolves call's callee and returns the Target it matches.
func matchTarget(pass *analysis.Pass, call *ast.CallExpr) *Target {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	for i := range Targets {
		t := &Targets[i]
		if fn.Name() != t.Func {
			continue
		}
		if path == t.PkgSuffix || strings.HasSuffix(path, "/"+t.PkgSuffix) {
			return t
		}
	}
	return nil
}

// constString extracts the constant string value of e, covering
// literals, named constants, and constant concatenations.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// nearest returns the set entry with the smallest Levenshtein distance
// from name, when that distance is small enough to be a plausible typo.
func nearest(name string, set map[string]bool) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	best, bestD := "", len(name)/2+2
	for _, n := range names {
		if d := levenshtein(name, n, bestD); d < bestD {
			best, bestD = n, d
		}
	}
	return best
}

// levenshtein computes edit distance with an early-out bound.
func levenshtein(a, b string, bound int) int {
	if abs(len(a)-len(b)) >= bound {
		return bound
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin >= bound {
			return bound
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func strconv(s string) string { return `"` + s + `"` }

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
