package eventname_test

import (
	"testing"

	"atscale/internal/analysis/analysistest"
	"atscale/internal/analysis/eventname"
)

func TestEventname(t *testing.T) {
	// The fixture registries match the default Targets by path suffix;
	// only the name sets need populating (cmd/atlint fills them from
	// the live registries).
	defer func(e, w map[string]bool) {
		eventname.KnownEvents, eventname.KnownWorkloads = e, w
	}(eventname.KnownEvents, eventname.KnownWorkloads)
	eventname.KnownEvents = map[string]bool{
		"inst_retired.any": true,
		"cycles":           true,
	}
	eventname.KnownWorkloads = map[string]bool{
		"bfs-urand": true,
		"gups-rand": true,
	}
	analysistest.Run(t, "testdata", eventname.Analyzer, "user")
}

// TestEmptySetSkips proves the analyzer refuses to guess when a name
// set is not populated: no diagnostics at all, rather than flagging
// every literal as unknown.
func TestEmptySetSkips(t *testing.T) {
	defer func(e, w map[string]bool) {
		eventname.KnownEvents, eventname.KnownWorkloads = e, w
	}(eventname.KnownEvents, eventname.KnownWorkloads)
	eventname.KnownEvents = map[string]bool{}
	eventname.KnownWorkloads = map[string]bool{}
	analysistest.Run(t, "testdata", eventname.Analyzer, "emptyset")
}
