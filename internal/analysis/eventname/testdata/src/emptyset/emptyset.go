// Package emptyset calls a lookup with a junk name; with no known-name
// set loaded the analyzer must stay silent rather than guess.
package emptyset

import "internal/perf"

func lookup() {
	perf.ByName("utterly.unknown")
}
