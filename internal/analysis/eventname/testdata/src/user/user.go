// Package user calls the registry lookups with good and bad names.
package user

import (
	"internal/perf"
	"internal/refute"
	"internal/topdown"
	"internal/workloads"
)

const aliasedName = "cycles"

func lookups(dynamic string) {
	perf.ByName("inst_retired.any")                     // known: fine
	perf.ByName("cycles")                               // known: fine
	perf.ByName(aliasedName)                            // constant propagation: fine
	perf.ByName("inst_retired.anyy")                    // want `unknown event name "inst_retired.anyy" \(did you mean "inst_retired.any"\?\)`
	perf.ByName("no.such.event.at.all.whatsoever.here") // want `unknown event name`
	perf.ByName(dynamic)                                // not a constant: fine
	perf.ByName("prefix." + dynamic)                    // not a constant: fine

	workloads.ByName("bfs-urand")  // known: fine
	workloads.ByName("bfs-urandd") // want `unknown workload name "bfs-urandd" \(did you mean "bfs-urand"\?\)`

	refute.Ev("cycles")  // known: fine
	refute.Ev("cycless") // want `unknown event name "cycless" \(did you mean "cycles"\?\)`

	topdown.Ev("inst_retired.any") // known: fine
	topdown.Ev("inst_retired.eny") // want `unknown event name "inst_retired.eny" \(did you mean "inst_retired.any"\?\)`

	//atlint:allow eventname exercising the unknown-name error path
	workloads.ByName("bogus-bogus")
}
