// Package workloads is a fixture exposing the workload registry lookup
// the analyzer vets.
package workloads

import "errors"

// ByName finds a workload by its program-generator name.
func ByName(name string) (int, error) {
	return 0, errors.New("fixture")
}
