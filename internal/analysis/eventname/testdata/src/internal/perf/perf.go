// Package perf is a fixture exposing the event registry lookup the
// analyzer vets.
package perf

import "errors"

// ByName resolves a perf-tool event name.
func ByName(name string) (int, error) {
	return 0, errors.New("fixture")
}
