// Package topdown is a fixture exposing the attribution tree's event
// constructor (a thin wrapper over refute.Ev) the analyzer vets.
package topdown

// Ev references a perf event by name inside a tree node expression.
func Ev(name string) int {
	return len(name)
}
