// Package refute is a fixture exposing the identity-expression event
// constructor the analyzer vets.
package refute

// Ev references a perf event by name inside an identity declaration.
func Ev(name string) int {
	return len(name)
}
