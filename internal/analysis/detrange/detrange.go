// Package detrange flags `for … range` over maps in the repo's
// deterministic packages. Map iteration order is randomized by the
// runtime, so any map range whose body feeds rendered tables, CSV rows,
// scheduling decisions, or counter aggregation can silently break the
// campaign scheduler's serial-identical guarantee (DESIGN.md §8). The
// fix is to iterate a sorted key slice; sites whose order provably does
// not matter carry an //atlint:ordered justification.
package detrange

import (
	"go/ast"
	"go/types"
	"strings"

	"atscale/internal/analysis"
)

// Deterministic lists the package-path suffixes whose iteration order
// is contractual. Everything under cmd/ is deterministic too — the
// frontends render the tables and CSV whose byte-identity the campaign
// scheduler guarantees. A package outside both sets can opt in with a
// //atlint:deterministic marker comment.
var Deterministic = []string{
	"internal/core",
	"internal/perf",
	"internal/machine",
	"internal/walker",
	"internal/mmucache",
	"internal/telemetry",
	"internal/virt",
	"internal/refute",
	"internal/scheme",
	"internal/topdown",
}

// Analyzer is the detrange check.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag map iteration in deterministic packages\n\n" +
		"Ranging over a map yields a randomized order. In packages that must\n" +
		"produce byte-identical output across serial and parallel campaign\n" +
		"runs, every map range must either be the canonical sort-keys prelude\n" +
		"(for k := range m { keys = append(keys, k) }) or carry an\n" +
		"//atlint:ordered justification.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !deterministic(pass) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollection(rs) {
				return true
			}
			pass.Reportf(rs.For,
				"non-deterministic map iteration in deterministic package %s: iterate sorted keys, or justify with //atlint:ordered",
				pass.PkgPath)
			return true
		})
	}
	return nil
}

func deterministic(pass *analysis.Pass) bool {
	if strings.HasPrefix(pass.PkgPath, "cmd/") || strings.Contains(pass.PkgPath, "/cmd/") {
		return true
	}
	for _, suffix := range Deterministic {
		if pass.PkgPath == suffix || strings.HasSuffix(pass.PkgPath, "/"+suffix) {
			return true
		}
	}
	return analysis.HasDeterministicMarker(pass.Fset, pass.Files)
}

// isKeyCollection recognizes the one map range that is always safe on
// its own: a body that does nothing but append the key to a slice,
// which the surrounding code then sorts. Any use of the map value, or
// any second statement, disqualifies the site — at that point order
// can leak.
func isKeyCollection(rs *ast.RangeStmt) bool {
	if rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if !sameChain(asg.Lhs[0], call.Args[0]) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// sameChain reports whether two expressions are the same chain of
// plain identifiers and field selections (keys, r.Workloads, a.b.c).
func sameChain(a, b ast.Expr) bool {
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		return ok && ae.Name == be.Name
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		return ok && ae.Sel.Name == be.Sel.Name && sameChain(ae.X, be.X)
	}
	return false
}
