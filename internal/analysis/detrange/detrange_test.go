package detrange_test

import (
	"testing"

	"atscale/internal/analysis/analysistest"
	"atscale/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, "testdata", detrange.Analyzer,
		"detfix", "internal/core", "freepkg")
}
