// Package detfix opts into the deterministic set via the marker below.
//
//atlint:deterministic
package detfix

import "sort"

func flagged(m map[string]int) int {
	total := 0
	for _, v := range m { // want "non-deterministic map iteration"
		total += v
	}
	return total
}

func flaggedKeyValue(m map[string]int, out *[]string) {
	for k, v := range m { // want "non-deterministic map iteration"
		if v > 0 {
			*out = append(*out, k)
		}
	}
}

func keyCollectionExempt(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type result struct {
	Names []string
}

func keyCollectionFieldExempt(m map[string]int) *result {
	r := &result{}
	for k := range m {
		r.Names = append(r.Names, k)
	}
	sort.Strings(r.Names)
	return r
}

func sortedSliceFine(m map[string]int) int {
	total := 0
	for _, k := range keyCollectionExempt(m) {
		total += m[k]
	}
	return total
}

func justified(m map[string]int) int {
	best := 0
	//atlint:ordered max over values is order-independent
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func justifiedTrailing(m map[string]int) int {
	n := 0
	for range m { //atlint:ordered cardinality only
		n++
	}
	return n
}

func staleDirective(xs []int) int {
	total := 0
	//atlint:ordered slice iteration never needed this // want "unused .*ordered directive"
	for _, v := range xs {
		total += v
	}
	return total
}
