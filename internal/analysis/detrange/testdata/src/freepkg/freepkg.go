// Package freepkg is neither listed nor marked deterministic, so map
// ranges here are fine.
package freepkg

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
