// Package core matches the built-in deterministic list by path suffix;
// no //atlint:deterministic marker is needed.
package core

func render(rows map[int]string) []string {
	var out []string
	for _, r := range rows { // want "non-deterministic map iteration"
		out = append(out, r)
	}
	return out
}
