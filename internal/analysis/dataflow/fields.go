package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Coverage is the result of analyzing one method body against its
// receiver: which receiver fields the body writes (directly, through an
// alias, or by calling a method rooted at the field), and which
// same-receiver methods it calls (so a caller can expand coverage
// transitively through helpers like m.quietInvalidate()).
type Coverage struct {
	// Fields maps field name → true for every receiver field the body
	// assigns, clears, copies into, appends into, or invokes a method
	// on — including through aliases (a := &x.f; a.g = 1) and range
	// aliases (for _, g := range x.f { g.touch() }).
	Fields Set
	// Mutates is the subset of Fields that the body demonstrably
	// writes: assignments, ++/--, and clear/copy builtins, directly or
	// through an alias. A bare method call rooted at a field
	// (w.phys.Read64()) is in Fields but not Mutates — delegating to a
	// field's method counts as covering it in a Reset body, but does
	// not prove the field goes stale. Clients use Fields to answer
	// "does Reset reinitialize this?" and Mutates to answer "can this
	// field drift between resets?".
	Mutates Set
	// SelfCalls maps method name → true for every call of the form
	// recv.m(...).
	SelfCalls Set
}

// MethodCoverage analyzes body as a method with receiver object recv
// (a *types.Var; nil receivers yield empty coverage). info supplies
// identifier resolution and expression types; it must cover the body.
//
// The analysis is flow-insensitive: an assignment anywhere in the body
// covers the field. That is the right strength for both of its users —
// a Reset method covers a field no matter which branch assigns it, and
// a field counts as mutable if any statement anywhere mutates it.
// Aliases are tracked when the derived value can actually share storage
// with the field: explicit &x.f, type assertions, and derivations whose
// type is a pointer, slice, map, chan, or interface. Copying a scalar
// or a struct value out of a field creates no alias, so writes to the
// copy never count against the field.
func MethodCoverage(recv types.Object, body *ast.BlockStmt, info *types.Info) Coverage {
	cov := Coverage{Fields: Set{}, Mutates: Set{}, SelfCalls: Set{}}
	if recv == nil || body == nil {
		return cov
	}
	fa := &fieldAnalysis{recv: recv, info: info, aliases: map[types.Object]string{}, cov: &cov}
	ast.Inspect(body, fa.visit)
	return cov
}

type fieldAnalysis struct {
	recv    types.Object
	info    *types.Info
	aliases map[types.Object]string // local object → receiver field it aliases
	cov     *Coverage
}

func (fa *fieldAnalysis) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		// A closure is its own scope; mutations inside it still target
		// the same receiver, so keep descending (ast.Inspect does).
		return true

	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if f, ok := fa.root(lhs); ok {
				fa.cov.Fields[f] = true
				fa.cov.Mutates[f] = true
			}
		}
		// Pairwise alias seeding: v := x.f (or v = x.f) when v can
		// share storage with f.
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				f, ok := fa.root(n.Rhs[i])
				if !ok || !fa.aliasable(n.Rhs[i]) {
					continue
				}
				if obj := fa.objectOf(id); obj != nil {
					fa.aliases[obj] = f
				}
			}
		}

	case *ast.IncDecStmt:
		if f, ok := fa.root(n.X); ok {
			fa.cov.Fields[f] = true
			fa.cov.Mutates[f] = true
		}

	case *ast.RangeStmt:
		if f, ok := fa.root(n.X); ok {
			for _, v := range []ast.Expr{n.Key, n.Value} {
				id, ok := v.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if !fa.aliasableIdent(id) {
					continue
				}
				if obj := fa.objectOf(id); obj != nil {
					fa.aliases[obj] = f
				}
			}
		}

	case *ast.CallExpr:
		fa.call(n)
	}
	return true
}

func (fa *fieldAnalysis) call(call *ast.CallExpr) {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		// Builtins that write their first argument in place.
		if fn.Name == "clear" || fn.Name == "copy" {
			if len(call.Args) > 0 {
				if f, ok := fa.root(call.Args[0]); ok {
					fa.cov.Fields[f] = true
					fa.cov.Mutates[f] = true
				}
			}
		}
	case *ast.SelectorExpr:
		// recv.m(...) is a self call; x.f.m(...) or alias.m(...) is a
		// method invoked on (storage reachable from) field f.
		if id, ok := unparen(fn.X).(*ast.Ident); ok && fa.isReceiver(id) {
			fa.cov.SelfCalls[fn.Sel.Name] = true
			return
		}
		if f, ok := fa.root(fn.X); ok {
			fa.cov.Fields[f] = true
		}
	}
}

// root resolves an expression to the receiver field it is rooted at:
// x.f, x.f.g, x.f[i], *x.f, x.f.(T), &x.f, and aliases thereof all root
// at f.
func (fa *fieldAnalysis) root(e ast.Expr) (string, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := fa.objectOf(e); obj != nil {
			if f, ok := fa.aliases[obj]; ok {
				return f, true
			}
		}
	case *ast.SelectorExpr:
		if id, ok := unparen(e.X).(*ast.Ident); ok && fa.isReceiver(id) {
			return e.Sel.Name, true
		}
		return fa.root(e.X)
	case *ast.IndexExpr:
		return fa.root(e.X)
	case *ast.SliceExpr:
		return fa.root(e.X)
	case *ast.StarExpr:
		return fa.root(e.X)
	case *ast.TypeAssertExpr:
		return fa.root(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fa.root(e.X)
		}
	}
	return "", false
}

// aliasable reports whether binding rhs to a new name can make that
// name share storage with the rooted field: address-of and type
// assertions always do; otherwise only reference types do.
func (fa *fieldAnalysis) aliasable(rhs ast.Expr) bool {
	switch e := unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return true // &x.f
		}
	case *ast.TypeAssertExpr:
		return true // x.f.(T)
	}
	if fa.info == nil {
		return true
	}
	tv, ok := fa.info.Types[rhs]
	if !ok || tv.Type == nil {
		return true
	}
	return isRefType(tv.Type)
}

func (fa *fieldAnalysis) aliasableIdent(id *ast.Ident) bool {
	if fa.info == nil {
		return true
	}
	obj := fa.objectOf(id)
	if obj == nil || obj.Type() == nil {
		return true
	}
	return isRefType(obj.Type())
}

func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func (fa *fieldAnalysis) isReceiver(id *ast.Ident) bool {
	return fa.objectOf(id) == fa.recv
}

func (fa *fieldAnalysis) objectOf(id *ast.Ident) types.Object {
	if fa.info == nil {
		return nil
	}
	if obj := fa.info.Defs[id]; obj != nil {
		return obj
	}
	return fa.info.Uses[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
