// Package dataflow provides the flow analyses the atlint analyzers
// share, built on the internal/analysis/cfg graphs: a forward
// fixed-point solver over string-set facts (must- and may- variants),
// and a receiver-field write analysis with alias tracking.
//
// The solver is deliberately monomorphic: every current client's fact
// is a set of names (held mutexes for lockguard, assigned definitions
// for reaching-style queries), and map[string]bool keeps the solver,
// its merge functions, and its tests trivially readable. Must mode
// intersects facts at merges — a fact survives only if it holds along
// every path, which is the semantics a lock-guard proof needs. May mode
// unions them — a fact survives if it holds along some path, the
// reaching-definitions semantics.
package dataflow

import (
	"atscale/internal/analysis/cfg"
)

// Set is a set of names: held mutex chains, covered fields, reaching
// definitions.
type Set map[string]bool

// Clone returns an independent copy of s (nil stays nil).
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s))
	for k, v := range s {
		if v {
			out[k] = true
		}
	}
	return out
}

// Equal reports whether two sets hold the same names.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if v && !o[k] {
			return false
		}
	}
	return true
}

// Mode selects the merge operator at control-flow joins.
type Mode int

const (
	// Must intersects facts: true only when true on every path.
	Must Mode = iota
	// May unions facts: true when true on any path.
	May
)

// Forward runs the classic iterate-to-fixpoint forward analysis and
// returns each block's IN fact. entry is the fact at function entry.
// transfer must be monotone and must not retain or mutate its input.
// Blocks unreachable from the entry keep a nil IN fact; in Must mode
// nil means ⊤ (everything holds — vacuous truth on dead code), so
// clients should treat nil as "no reports here".
func Forward(g *cfg.Graph, entry Set, mode Mode, transfer func(b *cfg.Block, in Set) Set) map[*cfg.Block]Set {
	preds := make(map[*cfg.Block][]*cfg.Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	in := make(map[*cfg.Block]Set, len(g.Blocks))
	out := make(map[*cfg.Block]Set, len(g.Blocks))
	in[g.Entry] = entry.Clone()
	if in[g.Entry] == nil {
		in[g.Entry] = Set{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if b != g.Entry {
				merged := mergePreds(preds[b], out, mode)
				if merged == nil {
					continue // no reachable predecessor yet
				}
				if in[b] != nil && merged.Equal(in[b]) {
					// IN unchanged; OUT is already up to date.
					continue
				}
				in[b] = merged
			} else if out[b] != nil {
				continue // entry fact never changes
			}
			o := transfer(b, in[b].Clone())
			if o == nil {
				o = Set{}
			}
			if out[b] == nil || !o.Equal(out[b]) {
				out[b] = o
				changed = true
			}
		}
	}
	return in
}

// mergePreds folds the predecessors' OUT facts; unvisited predecessors
// (nil OUT) are skipped — their paths are not yet known, and on a
// cyclic graph they resolve in a later iteration.
func mergePreds(preds []*cfg.Block, out map[*cfg.Block]Set, mode Mode) Set {
	var acc Set
	for _, p := range preds {
		o := out[p]
		if o == nil {
			continue
		}
		if acc == nil {
			acc = o.Clone()
			continue
		}
		switch mode {
		case Must:
			for k := range acc {
				if !o[k] {
					delete(acc, k)
				}
			}
		case May:
			for k, v := range o {
				if v {
					acc[k] = true
				}
			}
		}
	}
	return acc
}
