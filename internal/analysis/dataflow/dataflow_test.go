package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"atscale/internal/analysis/cfg"
)

// typecheck parses src and returns the file, type info, and fset.
func typecheck(t *testing.T, src string) (*ast.File, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info, fset
}

func funcNamed(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

// lockish builds a transfer function that adds "held" at a call to
// Lock() and removes it at Unlock(), by statement text matching — the
// solver does not care how the transfer inspects nodes.
func lockish(b *cfg.Block, in Set) Set {
	for _, n := range b.Nodes {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		switch sel.Sel.Name {
		case "Lock":
			in["held"] = true
		case "Unlock":
			delete(in, "held")
		}
	}
	return in
}

const lockSrc = `package p
import "sync"
type S struct{ mu sync.Mutex; n int }
func branchy(s *S, c bool) {
	if c {
		s.mu.Lock()
	}
	s.n++ // not held on the else path
	if c {
		s.mu.Unlock()
	}
}
func straight(s *S) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
`

// TestForwardMustIntersectsAtJoin proves the must-analysis drops a fact
// that holds on only one arm of a branch.
func TestForwardMustIntersectsAtJoin(t *testing.T) {
	f, info, _ := typecheck(t, lockSrc)

	g := cfg.New(funcNamed(f, "branchy").Body, info)
	in := Forward(g, Set{}, Must, lockish)
	// The block containing s.n++ must NOT have "held": one path skips
	// the Lock.
	blk := blockContainingIncDec(g)
	if blk == nil {
		t.Fatal("no s.n++ block found")
	}
	if in[blk]["held"] {
		t.Errorf("must-analysis claims lock held at join: %v", in[blk])
	}

	g2 := cfg.New(funcNamed(f, "straight").Body, info)
	in2 := Forward(g2, Set{}, Must, lockish)
	blk2 := blockContainingIncDec(g2)
	if blk2 == nil {
		t.Fatal("no s.n++ block in straight")
	}
	// straight's increment shares the entry block with the Lock call;
	// the IN fact is empty but the transfer sees the Lock first. Walk
	// the block to the increment applying the transfer as lockguard
	// does.
	fact := in2[blk2].Clone()
	if fact == nil {
		fact = Set{}
	}
	held := heldAtIncDec(blk2, fact)
	if !held {
		t.Errorf("must-analysis lost the lock on straight-line code")
	}
}

// TestForwardMayUnionsAtJoin proves the may-analysis keeps a fact from
// either arm — the reaching-definitions merge.
func TestForwardMayUnionsAtJoin(t *testing.T) {
	f, info, _ := typecheck(t, lockSrc)
	g := cfg.New(funcNamed(f, "branchy").Body, info)
	in := Forward(g, Set{}, May, lockish)
	blk := blockContainingIncDec(g)
	if blk == nil {
		t.Fatal("no s.n++ block found")
	}
	if !in[blk]["held"] {
		t.Errorf("may-analysis dropped a one-path fact at the join")
	}
}

// TestForwardLoopFixpoint: a fact acquired before a loop and not
// released inside it must hold at every iteration, including via the
// back edge.
func TestForwardLoopFixpoint(t *testing.T) {
	src := `package p
import "sync"
type S struct{ mu sync.Mutex; n int }
func loopy(s *S) {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		s.n++
	}
	s.mu.Unlock()
}
`
	f, info, _ := typecheck(t, src)
	g := cfg.New(funcNamed(f, "loopy").Body, info)
	in := Forward(g, Set{}, Must, lockish)
	blk := blockContainingIncDecOfField(g)
	if blk == nil {
		t.Fatal("no s.n++ block found")
	}
	if !in[blk]["held"] {
		t.Errorf("must-analysis dropped the lock around a loop back edge")
	}
}

func blockContainingIncDec(g *cfg.Graph) *cfg.Block {
	return blockContainingIncDecOfField(g)
}

func blockContainingIncDecOfField(g *cfg.Graph) *cfg.Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if inc, ok := n.(*ast.IncDecStmt); ok {
				if _, ok := inc.X.(*ast.SelectorExpr); ok {
					return b
				}
			}
		}
	}
	return nil
}

func heldAtIncDec(b *cfg.Block, fact Set) bool {
	for _, n := range b.Nodes {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Lock":
						fact["held"] = true
					case "Unlock":
						delete(fact, "held")
					}
				}
			}
		}
		if _, ok := n.(*ast.IncDecStmt); ok {
			return fact["held"]
		}
	}
	return false
}

const coverageSrc = `package p
type inner struct{ v [4]uint64 }
func (in *inner) reset() {}
type T struct {
	a, b   int
	s      []int
	m      map[string]int
	ptr    *inner
	nodes  [3]inner
	deep   inner
	iface  interface{ Reset() }
	scalar uint64
	lat    []uint64
}
func (t *T) Reset() {
	t.a = 0
	t.s = t.s[:0]
	clear(t.m)
	t.ptr.reset()
	na := &t.nodes[0]
	na.v[0] = 0
	for i := range t.nodes {
		t.nodes[i].v[1] = 0
	}
	rt := t.iface.(interface{ Reset() })
	rt.Reset()
	t.deep.v[2] = 0
	t.helper()
}
func (t *T) helper() { t.b = 0 }
func (t *T) Use() {
	v := t.lat[0]
	v++
	_ = v
	x := t.scalar
	x = 9
	_ = x
}
`

func TestMethodCoverage(t *testing.T) {
	f, info, _ := typecheck(t, coverageSrc)
	reset := funcNamed(f, "Reset")
	recv := info.Defs[reset.Recv.List[0].Names[0]]
	cov := MethodCoverage(recv, reset.Body, info)

	for _, want := range []string{"a", "s", "m", "ptr", "nodes", "iface", "deep"} {
		if !cov.Fields[want] {
			t.Errorf("Reset coverage missing field %q (got %v)", want, cov.Fields)
		}
	}
	if cov.Fields["b"] {
		t.Errorf("b covered directly; it is only covered via helper()")
	}
	// Mutates is the write-only subset: assignments and clear() count,
	// bare method calls rooted at a field (t.ptr.reset(), rt.Reset())
	// do not.
	for _, want := range []string{"a", "s", "m", "nodes", "deep"} {
		if !cov.Mutates[want] {
			t.Errorf("mutation census missing field %q (got %v)", want, cov.Mutates)
		}
	}
	if cov.Mutates["ptr"] || cov.Mutates["iface"] {
		t.Errorf("bare method calls counted as mutations: %v", cov.Mutates)
	}
	if !cov.SelfCalls["helper"] {
		t.Errorf("self call helper() not recorded: %v", cov.SelfCalls)
	}

	// Value copies of scalars must not alias: Use writes only locals.
	use := funcNamed(f, "Use")
	recvUse := info.Defs[use.Recv.List[0].Names[0]]
	covUse := MethodCoverage(recvUse, use.Body, info)
	if covUse.Fields["lat"] || covUse.Fields["scalar"] {
		t.Errorf("scalar copy writes leaked into field coverage: %v", covUse.Fields)
	}
}

func TestMethodCoverageEmbeddedCall(t *testing.T) {
	src := `package p
type Inner struct{ x int }
func (i *Inner) Reset() { i.x = 0 }
type Outer struct{ Inner *Inner }
func (o *Outer) Reset() { o.Inner.Reset() }
`
	f, info, _ := typecheck(t, src)
	var reset *ast.FuncDecl
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "Reset" {
			continue
		}
		if id, ok := fd.Recv.List[0].Type.(*ast.StarExpr); ok {
			if base, ok := id.X.(*ast.Ident); ok && base.Name == "Outer" {
				reset = fd
			}
		}
	}
	recv := info.Defs[reset.Recv.List[0].Names[0]]
	cov := MethodCoverage(recv, reset.Body, info)
	if !cov.Fields["Inner"] {
		t.Errorf("method call through field did not cover it: %v", cov.Fields)
	}
}

func TestSetCloneEqual(t *testing.T) {
	s := Set{"a": true, "b": true}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c["c"] = true
	if s.Equal(c) {
		t.Fatal("clone aliased the original")
	}
	if strings.Join([]string{"sanity"}, "") == "" {
		t.Fatal("unreachable")
	}
}
