// Package lock exercises lockguard: straight-line lock/unlock windows,
// must-intersection at branch joins, defer semantics, RWMutex read
// locks, //atlint:locked entry seeding, closures, nested guard chains,
// package-level state, constructor exemption, and marker hygiene.
package lock

import "sync"

type Counter struct {
	mu sync.Mutex
	//atlint:guardedby mu
	n int
}

// NewCounter touches n before the value is published: exempt.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Bad() int {
	return c.n // want "access to c.n .guarded by .mu.. without holding c.mu"
}

// HalfLocked holds the mutex on only one arm, so the join point does
// not hold it on every path.
func (c *Counter) HalfLocked(b bool) int {
	if b {
		c.mu.Lock()
	}
	v := c.n // want "without holding c.mu"
	if b {
		c.mu.Unlock()
	}
	return v
}

func (c *Counter) UseAfterUnlock() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v + c.n // want "without holding c.mu"
}

// Deferred unlock runs at return, after the access: clean.
func (c *Counter) Deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Apply's closure inherits the lexically held lock: clean.
func (c *Counter) Apply(f func(int) int) {
	c.mu.Lock()
	g := func() int { return c.n }
	c.n = f(g())
	c.mu.Unlock()
}

// Spawn's goroutine body checks against the spawning context, which
// holds nothing.
func (c *Counter) Spawn() {
	go func() {
		c.n++ // want "without holding c.mu"
	}()
}

type Table struct {
	mu sync.RWMutex
	//atlint:guardedby mu
	m map[string]int
}

func (t *Table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// sorted is documented as called with the lock held; the marker seeds
// the entry fact.
//
//atlint:locked mu Get-side callers hold the read lock across the snapshot
func (t *Table) size() int {
	return len(t.m)
}

//atlint:locked zz never existed // want "the receiver has no field .zz. to hold"
func (t *Table) broken() {}

// store guards package-level pooled state.
type store struct {
	mu sync.Mutex
	//atlint:guardedby mu
	free []int
}

var pool store

func Put(v int) {
	pool.mu.Lock()
	pool.free = append(pool.free, v)
	pool.mu.Unlock()
}

func Steal() []int {
	return pool.free // want "access to pool.free .guarded by .mu.. without holding pool.mu"
}

// Outer shows a nested chain: the guard is o.inner.mu.
type Outer struct {
	inner store
}

func (o *Outer) Use() int {
	o.inner.mu.Lock()
	defer o.inner.mu.Unlock()
	return o.inner.free[0]
}

func (o *Outer) Misuse() int {
	return o.inner.free[0] // want "without holding o.inner.mu"
}

// Wrong's guard target is not a mutex.
type Wrong struct {
	lock int
	//atlint:guardedby lock // want "not a sync.Mutex or sync.RWMutex field of Wrong"
	v int
}

//atlint:guardedby mu floats free // want "attaches to a struct field"
func helper() {}

//atlint:locked mu floats here as well // want "attaches to a function declaration"
var x int

var _ = []interface{}{helper, x}
