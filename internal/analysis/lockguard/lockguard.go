// Package lockguard proves, along every control-flow path, that fields
// annotated //atlint:guardedby mu are only touched while the named
// mutex is held.
//
// The campaign runner shares telemetry structures between worker
// goroutines; an unguarded read is a data race that -race only catches
// if a test happens to interleave the two sides. lockguard makes the
// guard discipline a static property instead: each annotated field
// records which sibling mutex protects it, and every function in the
// package is checked with a must-hold dataflow analysis over its CFG —
// s.mu.Lock() adds the chain "s.mu" to the fact, Unlock removes it,
// and facts intersect at merges, so a lock held on only one arm of a
// branch does not count. Functions that run with the lock already held
// declare it with //atlint:locked mu <why>, which seeds the entry fact.
//
// Scope and soundness choices:
//
//   - Chains are syntactic paths rooted at a variable (s.mu,
//     pool.mu, w.core.mu); two spellings of the same mutex through
//     different aliases are different chains, so aliasing a guarded
//     struct hides it from the proof. The repo's guarded state is
//     always reached through one name, which keeps the check exact in
//     practice.
//   - defer s.mu.Unlock() does not clear the fact: the unlock runs at
//     return, after every access the analysis is about to check.
//     Deferred closures are skipped entirely — they run under the lock
//     state at return, which a forward analysis does not model.
//   - Closures inherit the lock fact at the point they appear
//     (lexically); goroutine bodies therefore check against the
//     spawning context, which is conservative in the right direction.
//   - Constructors (functions whose results include the owning type)
//     are exempt for that type's fields: state is not shared before it
//     is published.
package lockguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"atscale/internal/analysis"
	"atscale/internal/analysis/cfg"
	"atscale/internal/analysis/dataflow"
)

// Analyzer is the lockguard check.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "//atlint:guardedby fields must be accessed with their mutex held\n\n" +
		"Annotated fields name the sibling mutex that protects them; a\n" +
		"must-hold dataflow analysis over each function's CFG verifies the\n" +
		"mutex is held on every path reaching an access. //atlint:locked mu\n" +
		"<why> seeds the fact for functions documented as called with the\n" +
		"lock held.",
	Run: run,
}

// guardInfo records the protection contract of one annotated field.
type guardInfo struct {
	guard string       // sibling mutex field name
	owner *types.Named // struct type declaring the field
}

func run(pass *analysis.Pass) error {
	guarded := collectGuards(pass)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		consumed := map[token.Pos]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, guarded: guarded, exempt: constructedTypes(pass, fd)}
			entry := dataflow.Set{}
			for _, m := range analysis.CommentMarkers(fd.Doc) {
				if m.Verb != "locked" {
					continue
				}
				consumed[m.Pos] = true
				if chain, ok := c.lockedEntry(fd, m); ok {
					entry[chain] = true
				} else {
					pass.Reportf(m.Pos, "//atlint:locked %s: the receiver has no field %q to hold",
						m.Args, firstToken(m.Args))
				}
			}
			c.check(fd.Body, entry)
		}
		for _, m := range analysis.FileMarkers(f, "locked") {
			if !consumed[m.Pos] {
				pass.Reportf(m.Pos, "//atlint:locked attaches to a function declaration; nothing here for lockguard to check")
			}
		}
	}
	return nil
}

// collectGuards finds //atlint:guardedby fields and validates that the
// named guard is a sibling sync.Mutex/RWMutex.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	guarded := map[types.Object]guardInfo{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		consumed := map[token.Pos]bool{}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				var owner *types.Named
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					owner, _ = obj.Type().(*types.Named)
				}
				for _, field := range st.Fields.List {
					for _, m := range analysis.CommentMarkers(field.Doc, field.Comment) {
						if m.Verb != "guardedby" {
							continue
						}
						consumed[m.Pos] = true
						guard := firstToken(m.Args)
						if !hasMutexField(st, pass.TypesInfo, guard) {
							pass.Reportf(m.Pos, "//atlint:guardedby names %q, which is not a sync.Mutex or sync.RWMutex field of %s",
								guard, ts.Name.Name)
							continue
						}
						for _, id := range field.Names {
							if obj := pass.TypesInfo.Defs[id]; obj != nil {
								guarded[obj] = guardInfo{guard: guard, owner: owner}
							}
						}
					}
				}
			}
		}
		for _, m := range analysis.FileMarkers(f, "guardedby") {
			if !consumed[m.Pos] {
				pass.Reportf(m.Pos, "//atlint:guardedby attaches to a struct field; nothing here for lockguard to check")
			}
		}
	}
	return guarded
}

// checker runs the must-hold analysis over one function (and, via
// recursion, its non-deferred closures).
type checker struct {
	pass    *analysis.Pass
	guarded map[types.Object]guardInfo
	exempt  map[*types.Named]bool
	uniq    int
}

// check solves the lock facts for body and reports unguarded accesses.
func (c *checker) check(body *ast.BlockStmt, entry dataflow.Set) {
	g := cfg.New(body, c.pass.TypesInfo)
	in := dataflow.Forward(g, entry, dataflow.Must, func(b *cfg.Block, fact dataflow.Set) dataflow.Set {
		for _, n := range b.Nodes {
			c.applyEffects(n, fact)
		}
		return fact
	})
	for _, b := range g.Blocks {
		fact := in[b]
		if fact == nil {
			continue // unreachable: vacuously safe
		}
		fact = fact.Clone()
		for _, n := range b.Nodes {
			c.checkNode(n, fact)
			c.applyEffects(n, fact)
		}
	}
}

// applyEffects updates fact with the Lock/Unlock calls in node.
// Deferred statements and closure bodies do not execute here, so they
// contribute nothing.
func (c *checker) applyEffects(node ast.Node, fact dataflow.Set) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				fact[c.render(sel.X)] = true
			case "Unlock", "RUnlock":
				delete(fact, c.render(sel.X))
			}
		}
		return true
	})
}

// checkNode reports guarded-field accesses in node that the current
// fact does not cover. Closures recurse with the lexical fact.
func (c *checker) checkNode(node ast.Node, fact dataflow.Set) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.FuncLit:
			c.check(n.Body, fact.Clone())
			return false
		case *ast.SelectorExpr:
			sel, ok := c.pass.TypesInfo.Selections[n]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			gi, ok := c.guarded[sel.Obj()]
			if !ok || c.exempt[gi.owner] {
				return true
			}
			required := c.render(n.X) + "." + gi.guard
			if !fact[required] {
				c.pass.Reportf(n.Pos(), "access to %s.%s (guarded by %q) without holding %s.%s on every path",
					renderSource(n.X), n.Sel.Name, gi.guard, renderSource(n.X), gi.guard)
			}
		}
		return true
	})
}

// lockedEntry resolves an //atlint:locked marker to a held chain: the
// receiver's guard field.
func (c *checker) lockedEntry(fd *ast.FuncDecl, m analysis.Marker) (string, bool) {
	guard := firstToken(m.Args)
	if guard == "" || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", false
	}
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return "", false
	}
	recv := c.pass.TypesInfo.Defs[names[0]]
	if recv == nil || !typeHasField(recv.Type(), guard) {
		return "", false
	}
	return objKey(recv) + "." + guard, true
}

// render canonicalizes an expression into a chain string. Expressions
// that cannot name stable storage (calls, arbitrary index math) render
// to a fresh unique string, so locking through them protects nothing
// and requiring them matches nothing — the conservative direction for a
// must analysis.
func (c *checker) render(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return c.fresh()
		}
		return objKey(obj)
	case *ast.SelectorExpr:
		return c.render(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return c.render(e.X)
	case *ast.StarExpr:
		return c.render(e.X) // (*p).mu and p.mu are the same storage
	case *ast.IndexExpr:
		return c.render(e.X) + "[" + c.renderIndex(e.Index) + "]"
	}
	return c.fresh()
}

func (c *checker) renderIndex(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return c.render(e)
	case *ast.BasicLit:
		return e.Value
	}
	return c.fresh()
}

func (c *checker) fresh() string {
	c.uniq++
	return fmt.Sprintf("?%d", c.uniq)
}

// objKey identifies a variable uniquely within the package: name plus
// declaration position disambiguates shadowing.
func objKey(obj types.Object) string {
	return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
}

// renderSource prints an expression chain the way the user wrote it,
// for diagnostics only.
func renderSource(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderSource(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return renderSource(e.X)
	case *ast.StarExpr:
		return renderSource(e.X)
	case *ast.IndexExpr:
		return renderSource(e.X) + "[…]"
	}
	return "…"
}

// constructedTypes returns the named types fd publishes: result types
// of a receiverless function. Accesses to their guarded fields inside
// fd are pre-publication and exempt.
func constructedTypes(pass *analysis.Pass, fd *ast.FuncDecl) map[*types.Named]bool {
	if fd.Recv != nil || fd.Type.Results == nil {
		return nil
	}
	out := map[*types.Named]bool{}
	for _, res := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[res.Type]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			out[n] = true
		}
	}
	return out
}

// hasMutexField reports whether the struct declares a field named
// guard whose type is sync.Mutex or sync.RWMutex (or a pointer to one).
func hasMutexField(st *ast.StructType, info *types.Info, guard string) bool {
	if guard == "" {
		return false
	}
	for _, field := range st.Fields.List {
		match := false
		for _, id := range field.Names {
			if id.Name == guard {
				match = true
			}
		}
		if len(field.Names) == 0 && embeddedFieldName(field.Type) == guard {
			match = true
		}
		if !match {
			continue
		}
		tv, ok := info.Types[field.Type]
		if !ok || tv.Type == nil {
			return false
		}
		return isMutexType(tv.Type)
	}
	return false
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	return n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex"
}

// typeHasField reports whether t (after pointer deref) is a struct
// with a field of the given name.
func typeHasField(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

func embeddedFieldName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedFieldName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func firstToken(s string) string {
	fs := strings.Fields(s)
	if len(fs) == 0 {
		return ""
	}
	return fs[0]
}
