package lockguard_test

import (
	"testing"

	"atscale/internal/analysis/analysistest"
	"atscale/internal/analysis/lockguard"
)

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", lockguard.Analyzer, "lock")
}
