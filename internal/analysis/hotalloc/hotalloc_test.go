package hotalloc_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atscale/internal/analysis"
	"atscale/internal/analysis/analysistest"
	"atscale/internal/analysis/gcdiag"
	"atscale/internal/analysis/hotalloc"
)

// TestStaticLayer: with no compiler report, every always-allocating
// construct in a hotpath function is flagged from the AST alone.
func TestStaticLayer(t *testing.T) {
	hotalloc.SetReport(nil)
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hot")
}

// cannedDiagnostics is a go1.24-dialect -m=2 transcript whose positions
// point into testdata/src/hotgc/hotgc.go: a steady-state make escape at
// 11:2, a panic-only concat escape at 13:7 (the flow detail names a
// panic call parameter), and inline verdicts for Add and Big.
const cannedDiagnostics = `testdata/src/hotgc/hotgc.go:11:9: uint64(0) does not escape
testdata/src/hotgc/hotgc.go:11:2: make([]uint64, 8) escapes to heap:
testdata/src/hotgc/hotgc.go:11:2:   flow: {heap} = &{storage for make([]uint64, 8)}:
testdata/src/hotgc/hotgc.go:11:2:     from make([]uint64, 8) (spill) at testdata/src/hotgc/hotgc.go:11:2
testdata/src/hotgc/hotgc.go:13:7: "overflow " + itoa(acc) escapes to heap:
testdata/src/hotgc/hotgc.go:13:7:   flow: {heap} = &{storage for string concatenation}:
testdata/src/hotgc/hotgc.go:13:7:     from panic("overflow " + itoa(acc)) (call parameter) at testdata/src/hotgc/hotgc.go:13:3
testdata/src/hotgc/hotgc.go:19:6: can inline Add with cost 4 as: func(uint64, uint64) uint64 { return a + b }
testdata/src/hotgc/hotgc.go:22:6: cannot inline Big: function too complex: cost 196 exceeds budget 80
`

// TestCompilerLayer: with a report installed, findings come from the
// compiler's escape analysis (panic-only escapes exempt) and the
// inliner's verdicts.
func TestCompilerLayer(t *testing.T) {
	hotalloc.SetReport(gcdiag.Parse(".", cannedDiagnostics))
	defer hotalloc.SetReport(nil)
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotgc")
}

// TestLintSeededViolationLive is the acceptance check end to end: a
// throwaway module with an allocation seeded into a hotpath function
// must make a full Lint run (Init hook included) exit nonzero. It works
// on any toolchain — with the pinned line the compiler layer reports
// the escape, elsewhere Init warns and the static layer catches the
// make call.
func TestLintSeededViolationLive(t *testing.T) {
	hotalloc.SetReport(nil)
	defer hotalloc.SetReport(nil)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmphot\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "hot.go"), `package tmphot

//atlint:hotpath
func Walk(n int) []uint64 {
	return make([]uint64, n)
}
`)
	var out bytes.Buffer
	code, err := analysis.Lint(&out, dir, []string{"./..."}, []*analysis.Analyzer{hotalloc.Analyzer})
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if code != 1 {
		t.Fatalf("Lint exit code = %d, want 1 for the seeded allocation\n%s", code, out.String())
	}
	if s := out.String(); !strings.Contains(s, "hotalloc") || !strings.Contains(s, "Walk") {
		t.Errorf("finding does not name the analyzer and function:\n%s", s)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
