// Package hotalloc statically enforces the flat hot path from PR 7:
// functions marked //atlint:hotpath must be free of steady-state heap
// allocation, and functions marked //atlint:inline must stay under the
// compiler's inlining budget. It is the compile-time twin of the
// AllocsPerRun==0 benchmarks and the manual `-m=2` cost checks those
// replaced — a new scheme backend that sneaks an allocation into its
// Walk loop now fails lint, not a benchmark session three PRs later.
//
// The analyzer has two layers:
//
//   - The compiler layer reads real escape-analysis and inliner
//     diagnostics through internal/analysis/gcdiag (collected once in
//     the Init hook by building with -gcflags=-m=2). It is exact: it
//     sees allocations the AST can't prove (interface conversions,
//     captured variables moved to the heap) and it knows the true
//     inlining cost. Escapes that exist only on panic paths are
//     exempt — a bounds-check panic's message concat never runs in
//     steady state.
//
//   - The static layer walks the AST for constructs that always
//     allocate: make, new, slice/map literals, &T{} literals, append,
//     closures, go statements, and non-constant string concatenation.
//     It runs when the compiler layer is unavailable — mismatched
//     toolchain (gcdiag's dialect pin) or an analysistest fixture,
//     where no real build exists. Allocations on crash paths (blocks
//     that cannot reach the function's exit, per the CFG) are exempt
//     for the same reason panic escapes are.
//
// Markers attach to function declarations; a hotpath/inline marker
// anywhere else is itself reported.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"

	"atscale/internal/analysis"
	"atscale/internal/analysis/cfg"
	"atscale/internal/analysis/gcdiag"
)

// report holds the compiler diagnostics collected by Init; nil when the
// bridge did not run (fixture tests, mismatched toolchain).
var report *gcdiag.Report

// SetReport installs a diagnostics report directly. It exists for
// tests that exercise the compiler layer against synthetic or canned
// diagnostics; Lint invocations populate the report through Init.
func SetReport(r *gcdiag.Report) { report = r }

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "hot-path functions must not allocate; inline-marked functions must inline\n\n" +
		"Functions marked //atlint:hotpath form the per-access simulation loop\n" +
		"(walker.Walk, cache and TLB lookups, Phys.Read64, scheme Walk\n" +
		"implementations). A heap allocation there turns the zero-alloc steady\n" +
		"state back into GC pressure, so any steady-state escape is a finding;\n" +
		"panic-path allocations are exempt. //atlint:inline additionally pins\n" +
		"the function under the compiler's inlining budget, replacing the\n" +
		"manual -gcflags=-m=2 cost audit.",
	Run:  run,
	Init: initBridge,
}

// initBridge collects compiler diagnostics for the whole lint scope,
// once, before any package is analyzed. On a toolchain outside the
// pinned line the bridge is skipped with a warning: the static layer
// still runs, so the lint result degrades rather than lies.
func initBridge(dir string, patterns []string) error {
	v, err := gcdiag.ToolchainVersion()
	if err != nil {
		fmt.Fprintf(os.Stderr, "atlint: hotalloc: cannot determine toolchain (%v); compiler-diagnostics checks skipped\n", err)
		return nil
	}
	if !gcdiag.ToolchainMatches(v) {
		fmt.Fprintf(os.Stderr, "atlint: hotalloc: toolchain %s is outside the pinned %s line; compiler-diagnostics checks (escapes, inline budgets) skipped, static checks still run\n", v, gcdiag.Toolchain)
		return nil
	}
	r, err := gcdiag.Collect(dir, patterns)
	if err != nil {
		return err
	}
	report = r
	return nil
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		consumed := make(map[token.Pos]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var hot, inline bool
			for _, m := range analysis.CommentMarkers(fd.Doc) {
				switch m.Verb {
				case "hotpath":
					hot, consumed[m.Pos] = true, true
				case "inline":
					inline, consumed[m.Pos] = true, true
				}
			}
			if fd.Body == nil {
				if hot || inline {
					pass.Reportf(fd.Pos(), "hotpath/inline marker on a bodiless declaration: nothing to check")
				}
				continue
			}
			if hot {
				checkHotpath(pass, fd)
			}
			if inline {
				checkInline(pass, fd)
			}
		}
		for _, m := range analysis.FileMarkers(f, "hotpath", "inline") {
			if !consumed[m.Pos] {
				pass.Reportf(m.Pos, "//atlint:%s attaches to a function declaration's doc comment; nothing here for hotalloc to check", m.Verb)
			}
		}
	}
	return nil
}

// checkHotpath verifies the function body allocates nothing in steady
// state, preferring compiler escape diagnostics and falling back to the
// static construct scan.
func checkHotpath(pass *analysis.Pass, fd *ast.FuncDecl) {
	crash := crashRanges(fd, pass.TypesInfo)
	pos := pass.Fset.Position(fd.Pos())
	if report != nil {
		end := pass.Fset.Position(fd.End())
		for _, e := range report.EscapesIn(pos.Filename, pos.Line, end.Line) {
			if e.PanicOnly {
				continue
			}
			p := posFor(pass.Fset, fd, e.Line, e.Col)
			if onCrashPath(crash, p) {
				continue
			}
			pass.Reportf(p, "steady-state heap allocation in //atlint:hotpath function %s: %s",
				fd.Name.Name, e.What)
		}
		return
	}
	staticScan(pass, fd, crash)
}

// staticScan flags AST constructs that always allocate. It is the
// fallback proof when no compiler report exists, so it errs toward
// reporting: a construct the escape analysis would have proven
// stack-bound still fails here, and the fix (hoist it out of the hot
// path) is the right one anyway.
func staticScan(pass *analysis.Pass, fd *ast.FuncDecl, crash []posRange) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if onCrashPath(crash, n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && isBuiltin(pass, id) {
				switch id.Name {
				case "make", "new", "append":
					pass.Reportf(n.Pos(), "%s in //atlint:hotpath function %s allocates; preallocate outside the loop", id.Name, fd.Name.Name)
				case "panic":
					// Panic arguments never run in steady state.
					return false
				}
			}
		case *ast.CompositeLit:
			if allocatingLiteral(pass, n) {
				pass.Reportf(n.Pos(), "composite literal in //atlint:hotpath function %s allocates; hoist it to a field or package variable", fd.Name.Name)
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal in //atlint:hotpath function %s heap-allocates", fd.Name.Name)
					return false
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //atlint:hotpath function %s may allocate its capture; use a method value bound at setup time", fd.Name.Name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in //atlint:hotpath function %s allocates a goroutine", fd.Name.Name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstantString(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation in //atlint:hotpath function %s allocates", fd.Name.Name)
				return false
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkInline verifies the compiler judged the function inlinable. The
// check needs real diagnostics; without a report it is skipped (Init
// already warned once).
func checkInline(pass *analysis.Pass, fd *ast.FuncDecl) {
	if report == nil {
		return
	}
	pos := pass.Fset.Position(fd.Pos())
	in, ok := report.InlineAt(pos.Filename, pos.Line)
	if !ok {
		pass.Reportf(fd.Pos(), "no inliner verdict for //atlint:inline function %s: the compiler emitted neither `can inline` nor `cannot inline` (is the package part of the lint build?)", fd.Name.Name)
		return
	}
	if !in.CanInline {
		msg := in.Reason
		if msg == "" {
			msg = "no reason given"
		}
		pass.Reportf(fd.Pos(), "//atlint:inline function %s no longer inlines: %s", fd.Name.Name, msg)
	}
}

// posRange is a [start, end] source span.
type posRange struct{ from, to token.Pos }

// crashRanges returns the source spans of CFG blocks that cannot reach
// the function exit — code that runs only on the way to a panic.
func crashRanges(fd *ast.FuncDecl, info *types.Info) []posRange {
	g := cfg.New(fd.Body, info)
	reach := g.CanReachExit()
	var out []posRange
	for _, b := range g.Blocks {
		if reach[b] || len(b.Nodes) == 0 {
			continue
		}
		// Unreachable-from-entry scratch blocks (dead code after
		// return) also land here; exempting them is harmless.
		for _, n := range b.Nodes {
			out = append(out, posRange{from: n.Pos(), to: n.End()})
		}
	}
	return out
}

func onCrashPath(crash []posRange, p token.Pos) bool {
	for _, r := range crash {
		if p >= r.from && p <= r.to {
			return true
		}
	}
	return false
}

// posFor converts a (line, col) inside the function's file back to a
// token.Pos, falling back to the declaration when the line is unknown.
func posFor(fset *token.FileSet, fd *ast.FuncDecl, line, col int) token.Pos {
	tf := fset.File(fd.Pos())
	if tf == nil || line < 1 || line > tf.LineCount() {
		return fd.Pos()
	}
	p := tf.LineStart(line)
	if col > 1 {
		p += token.Pos(col - 1)
	}
	return p
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// allocatingLiteral reports whether a composite literal necessarily
// heap-allocates: slice and map literals do; array and struct values
// can live on the stack.
func allocatingLiteral(pass *analysis.Pass, cl *ast.CompositeLit) bool {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func isNonConstantString(pass *analysis.Pass, be *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[be]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		return false // constant-folded at compile time
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
