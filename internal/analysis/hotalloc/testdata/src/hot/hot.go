// Package hot exercises the static (no compiler report) layer of
// hotalloc: every construct that always allocates must be flagged
// inside //atlint:hotpath functions and ignored everywhere else.
package hot

import "strconv"

type Pool struct {
	bufs [][]uint64
	fn   func() uint64
}

// setup is unmarked: allocation here is fine.
func setup(n int) []uint64 { return make([]uint64, n) }

func helper(ch chan int) { ch <- 1 }

//atlint:hotpath
func badMake(n int) []uint64 {
	return make([]uint64, n) // want "make in //atlint:hotpath function badMake allocates"
}

//atlint:hotpath
func badNew() *int {
	return new(int) // want "new in //atlint:hotpath function badNew allocates"
}

//atlint:hotpath
func badAppend(s []int, v int) []int {
	return append(s, v) // want "append in //atlint:hotpath function badAppend allocates"
}

//atlint:hotpath
func badSliceLit() []int {
	return []int{1, 2, 3} // want "composite literal in //atlint:hotpath function badSliceLit allocates"
}

//atlint:hotpath
func badMapLit() map[string]int {
	return map[string]int{"a": 1} // want "composite literal in //atlint:hotpath function badMapLit allocates"
}

//atlint:hotpath
func badPtrLit() *Pool {
	return &Pool{} // want "&composite literal in //atlint:hotpath function badPtrLit heap-allocates"
}

//atlint:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want "closure in //atlint:hotpath function badClosure"
}

//atlint:hotpath
func badGo(ch chan int) {
	go helper(ch) // want "go statement in //atlint:hotpath function badGo allocates a goroutine"
}

//atlint:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation in //atlint:hotpath function badConcat allocates"
}

// Constant concatenation folds at compile time: clean.
//
//atlint:hotpath
func constConcat() string {
	return "a" + "b"
}

// Allocation feeding a panic runs only on the crash path: clean.
//
//atlint:hotpath
func guarded(i, n int) int {
	if i >= n {
		msg := "index " + strconv.Itoa(i)
		panic(msg)
	}
	return i
}

// A method body with no allocating constructs: clean.
//
//atlint:hotpath
func (p *Pool) Access(i int) uint64 {
	if p.fn != nil {
		return p.fn()
	}
	return uint64(len(p.bufs))
}

// Inline checks need compiler diagnostics; with none, the marker is
// accepted silently.
//
//atlint:inline contract verified only under the pinned toolchain
func cheap(a int) int { return a + 1 }

//atlint:hotpath // want "attaches to a function declaration"
var sink int

var _ = []interface{}{setup, badMake, badNew, badAppend, badSliceLit, badMapLit,
	badPtrLit, badClosure, badGo, badConcat, constConcat, guarded, cheap, sink}
