// Package hotgc exercises the compiler-diagnostics layer: the test
// installs a canned -m=2 transcript whose line numbers point into this
// file, so keep the layout stable (escapes at lines 11 and 13, Add
// declared at 19, Big at 22, Ghost at 31).
package hotgc

type Stats struct{ vals []uint64 }

//atlint:hotpath
func Sum(s *Stats) uint64 {
	acc := uint64(0) // want "steady-state heap allocation in //atlint:hotpath function Sum"
	for _, v := range s.vals {
		acc += v
	}
	return acc
}

//atlint:inline pinned under budget; the canned verdict is cost 4
func Add(a, b uint64) uint64 { return a + b }

//atlint:inline must stay cheap for the per-access loop
func Big(n int) uint64 { // want "no longer inlines: function too complex: cost 196 exceeds budget 80"
	var t uint64
	for i := 0; i < n; i++ {
		t += uint64(i)
	}
	return t
}

//atlint:inline the canned transcript has no verdict for this one
func Ghost() {} // want "no inliner verdict"
