package resetdiscipline_test

import (
	"testing"

	"atscale/internal/analysis/analysistest"
	"atscale/internal/analysis/resetdiscipline"
)

func TestResetDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", resetdiscipline.Analyzer, "reset")
}
