// Package reset exercises resetdiscipline: coverage through direct
// assignment, clear(), helper self-calls, field-rooted method calls,
// slice aliases, and embedded delegation; constructor immutability;
// used, stale, and misplaced //atlint:noreset exemptions; and the
// Flush fallback entry point.
package reset

import "sync"

// TLB has no Reset/Renew, so Flush is the entry method.
type TLB struct {
	entries map[uint64]uint64
	hits    uint64
}

func (t *TLB) Flush() {
	clear(t.entries)
	t.hits = 0
}

func (t *TLB) Lookup(k uint64) (uint64, bool) {
	v, ok := t.entries[k]
	if ok {
		t.hits++
	}
	return v, ok
}

type Walker struct {
	mu    sync.Mutex
	tlb   *TLB
	depth int
	steps uint64 // want "field Walker.steps is mutated .by Walk. but not reinitialized by Reset"
	radix int    // mutated by no method: constructor-immutable
	//atlint:noreset the arena backing is zeroed by the allocator on reuse
	arena []byte
	gen   uint64 //atlint:noreset generation survives reuse to invalidate stale handles
}

func New(radix int) *Walker {
	return &Walker{radix: radix, arena: make([]byte, 1<<12)}
}

func (w *Walker) Walk(addr uint64) uint64 {
	w.steps++
	w.depth = int(addr) % 4
	w.arena[0] = byte(addr)
	w.gen++
	return addr % uint64(w.radix)
}

func (w *Walker) Reset() {
	w.tlb.Flush()  // method call rooted at the field covers tlb
	w.resetDepth() // helper self-call covers depth transitively
}

func (w *Walker) resetDepth() { w.depth = 0 }

// Buf resets its backing through a slice alias.
type Buf struct {
	data []uint64
	n    int
}

func (b *Buf) Put(v uint64) { b.data[b.n] = v; b.n++ }

func (b *Buf) Reset() {
	d := b.data
	for i := range d {
		d[i] = 0
	}
	b.n = 0
}

// Outer delegates part of its Reset to an embedded type.
type Inner struct{ n int }

func (i *Inner) Reset() { i.n = 0 }
func (i *Inner) Bump()  { i.n++ }

type Outer struct {
	Inner
	used bool
}

func (o *Outer) Reset() {
	o.Inner.Reset()
	o.used = false
}

func (o *Outer) Mark() { o.used = true }

// Stale carries exemptions that no longer bite.
type Stale struct {
	//atlint:noreset kept deliberately // want "unused .*noreset on Stale.count: the field is already reinitialized by Reset"
	count int
	//atlint:noreset nothing ever writes it // want "unused .*noreset on Stale.limit: no method mutates the field"
	limit int
	mu    sync.Mutex //atlint:noreset locks are not state // want "unused .*noreset on Stale.mu: sync primitives are never reset"
}

func (s *Stale) Reset()    { s.count = 0 }
func (s *Stale) Add(n int) { s.count += n }
func (s *Stale) Cap() int  { return s.limit }

// NoPool is never pooled: its exemption is dead weight.
type NoPool struct {
	//atlint:noreset kept warm across calls // want "unused .*noreset on NoPool.keep: NoPool has no Reset/Renew method"
	keep int
}

func (n *NoPool) Touch() { n.keep++ }

//atlint:noreset floats free of any field // want "attaches to a struct field"
var counter int

var _ = counter
