// Package resetdiscipline enforces the pool reuse contract: any type
// that offers a Reset/Renew method (Flush counts when neither exists)
// must reinitialize every field it mutates, or say out loud why not.
//
// The repo leans hard on object reuse — machinePool recycles whole
// simulated machines, walkers and TLBs are Reset between campaign
// sweeps, perf groups between measurement windows. A field that Reset
// misses is state leaking from one tenant, sweep, or measurement into
// the next: exactly the class of bug that corrupts results without
// failing any functional test (the counters are plausible, just wrong).
//
// A field passes when any of these holds:
//
//   - Reset coverage: a reset entry method assigns it, clears/copies
//     into it, calls a method on it (w.tlb.Flush()), or does so through
//     a helper the entry calls on the same receiver — computed with
//     dataflow.MethodCoverage and expanded transitively through self
//     calls.
//
//   - Constructor immutability: no method of the type ever mutates the
//     field, so construction-time state cannot go stale. (Mutation
//     tracking is per-method and alias-aware; package-level functions
//     that build the value don't count against it.)
//
//   - An //atlint:noreset <why> exemption on the field records an
//     intentional survivor — perf.Group.enabled survives Reset because
//     PERF_EVENT_IOC_RESET clears counts, not enablement.
//
// Exemptions that no longer bite (the field became covered or
// immutable, or the type lost its Reset) are themselves reported, so
// stale justifications cannot accumulate. sync.Mutex-family fields are
// exempt by construction: resetting a lock is never the fix.
package resetdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"atscale/internal/analysis"
	"atscale/internal/analysis/dataflow"
)

// Analyzer is the resetdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "resetdiscipline",
	Doc: "Reset/Renew methods must reinitialize every mutable field\n\n" +
		"Pooled objects (machines, walkers, TLBs, perf groups) are reused across\n" +
		"tenants and sweeps; a field Reset misses leaks state between runs and\n" +
		"skews counters silently. Every field a method mutates must be assigned\n" +
		"by Reset (directly or via helpers) or carry //atlint:noreset <why>.",
	Run: run,
}

// fieldDecl is one declared struct field.
type fieldDecl struct {
	name    string
	pos     token.Pos
	sync    bool             // sync.Mutex-family: never reset, never reported
	noreset *analysis.Marker // exemption, when present
}

// typeDecl aggregates a struct type with its methods.
type typeDecl struct {
	name    string
	fields  []fieldDecl
	methods map[string]*ast.FuncDecl
	recvs   map[string]types.Object // method name → receiver object
	order   []string                // method names in declaration order
}

func run(pass *analysis.Pass) error {
	decls := map[string]*typeDecl{}
	var typeOrder []string
	consumed := map[token.Pos]bool{}

	// Pass 1: struct declarations and their noreset markers.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				td := &typeDecl{name: ts.Name.Name,
					methods: map[string]*ast.FuncDecl{}, recvs: map[string]types.Object{}}
				for _, field := range st.Fields.List {
					var noreset *analysis.Marker
					for _, m := range analysis.CommentMarkers(field.Doc, field.Comment) {
						if m.Verb == "noreset" {
							mm := m
							noreset, consumed[m.Pos] = &mm, true
						}
					}
					for _, fd := range namedFields(pass, field) {
						fd.noreset = noreset
						td.fields = append(td.fields, fd)
					}
				}
				decls[td.name] = td
				typeOrder = append(typeOrder, td.name)
			}
		}
	}

	// Pass 2: attach methods.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			td, ok := decls[recvTypeName(fd.Recv.List[0].Type)]
			if !ok {
				continue
			}
			td.methods[fd.Name.Name] = fd
			td.recvs[fd.Name.Name] = recvObject(pass, fd)
			td.order = append(td.order, fd.Name.Name)
		}
	}

	for _, name := range typeOrder {
		checkType(pass, decls[name])
	}

	// Markers that attached to nothing checkable.
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, m := range analysis.FileMarkers(f, "noreset") {
			if !consumed[m.Pos] {
				pass.Reportf(m.Pos, "//atlint:noreset attaches to a struct field; nothing here for resetdiscipline to check")
			}
		}
	}
	return nil
}

func checkType(pass *analysis.Pass, td *typeDecl) {
	entries := entryMethods(td)
	if len(entries) == 0 {
		for _, fd := range td.fields {
			if fd.noreset != nil {
				pass.Reportf(fd.noreset.Pos, "unused //atlint:noreset on %s.%s: %s has no Reset/Renew method", td.name, fd.name, td.name)
			}
		}
		return
	}
	entryLabel := strings.Join(entries, "/")

	// Reset coverage: entry bodies plus everything reachable through
	// same-receiver helper calls.
	covered := dataflow.Set{}
	visited := map[string]bool{}
	queue := append([]string(nil), entries...)
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		if visited[m] {
			continue
		}
		visited[m] = true
		fd, ok := td.methods[m]
		if !ok {
			continue
		}
		cov := dataflow.MethodCoverage(td.recvs[m], fd.Body, pass.TypesInfo)
		for f := range cov.Fields {
			covered[f] = true
		}
		for callee := range cov.SelfCalls {
			queue = append(queue, callee)
		}
	}

	// Mutation census over every method: only demonstrable writes
	// (Mutates, not Fields) count — w.phys.Read64() invokes a method on
	// the field but cannot make it stale. Constructors have no receiver
	// and therefore never count against a field either.
	mutatedBy := map[string]string{}
	for _, m := range td.order {
		cov := dataflow.MethodCoverage(td.recvs[m], td.methods[m].Body, pass.TypesInfo)
		for f := range cov.Mutates {
			if _, ok := mutatedBy[f]; !ok {
				mutatedBy[f] = m
			}
		}
	}

	for _, fd := range td.fields {
		if fd.sync {
			if fd.noreset != nil {
				pass.Reportf(fd.noreset.Pos, "unused //atlint:noreset on %s.%s: sync primitives are never reset", td.name, fd.name)
			}
			continue
		}
		by, mutated := mutatedBy[fd.name]
		switch {
		case covered[fd.name]:
			if fd.noreset != nil {
				pass.Reportf(fd.noreset.Pos, "unused //atlint:noreset on %s.%s: the field is already reinitialized by %s", td.name, fd.name, entryLabel)
			}
		case !mutated:
			if fd.noreset != nil {
				pass.Reportf(fd.noreset.Pos, "unused //atlint:noreset on %s.%s: no method mutates the field, so construction-time state cannot go stale", td.name, fd.name)
			}
		case fd.noreset != nil:
			// Justified survivor.
		default:
			pass.Reportf(fd.pos, "field %s.%s is mutated (by %s) but not reinitialized by %s; pooled state leaks across reuse — reset it or exempt it with //atlint:noreset <why>",
				td.name, fd.name, by, entryLabel)
		}
	}
}

// entryMethods picks the reset entry points: Reset and Renew (any
// casing), falling back to Flush when the type has neither.
func entryMethods(td *typeDecl) []string {
	var entries, flush []string
	for _, m := range td.order {
		switch {
		case strings.EqualFold(m, "Reset") || strings.EqualFold(m, "Renew"):
			entries = append(entries, m)
		case strings.EqualFold(m, "Flush"):
			flush = append(flush, m)
		}
	}
	if len(entries) == 0 {
		return flush
	}
	return entries
}

// namedFields expands one ast.Field into per-name fieldDecls; an
// embedded field is named after its type.
func namedFields(pass *analysis.Pass, field *ast.Field) []fieldDecl {
	sync := isSyncType(fieldType(pass, field))
	if len(field.Names) == 0 {
		name := embeddedName(field.Type)
		if name == "" {
			return nil
		}
		return []fieldDecl{{name: name, pos: field.Pos(), sync: sync}}
	}
	out := make([]fieldDecl, 0, len(field.Names))
	for _, id := range field.Names {
		out = append(out, fieldDecl{name: id.Name, pos: id.Pos(), sync: sync})
	}
	return out
}

func fieldType(pass *analysis.Pass, field *ast.Field) types.Type {
	if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
		return tv.Type
	}
	return nil
}

// isSyncType reports whether t (or its pointee) is a sync package
// primitive that must not be reinitialized by Reset.
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync"
}

// embeddedName derives the field name of an embedded type: T, *T,
// pkg.T, *pkg.T.
func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr: // generic instantiation
		return embeddedName(e.X)
	}
	return ""
}

// recvTypeName unwraps a receiver type expression to its base name.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.IndexExpr:
		return recvTypeName(e.X)
	case *ast.IndexListExpr:
		return recvTypeName(e.X)
	case *ast.ParenExpr:
		return recvTypeName(e.X)
	}
	return ""
}

// recvObject resolves the receiver variable object, nil for unnamed
// receivers.
func recvObject(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return pass.TypesInfo.Defs[names[0]]
}
