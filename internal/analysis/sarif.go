package analysis

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF emission: the minimal, schema-valid subset of SARIF 2.1.0 that
// GitHub code scanning consumes — one run, one driver, one rule per
// analyzer, one result per diagnostic with a physical location. URIs
// are emitted repo-relative so the upload annotates files regardless of
// the runner's checkout path.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
	FullDescription  sarifText `json:"fullDescription,omitempty"`
}

type sarifText struct {
	Text string `json:"text,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. baseDir, when
// non-empty, is stripped from file paths to produce repo-relative URIs.
// The pseudo-analyzer "atlint" (directive hygiene findings) gets a rule
// entry automatically when any of its diagnostics appear.
func WriteSARIF(w io.Writer, fset *token.FileSet, baseDir string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	seen := make(map[string]bool, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: firstLine(a.Doc)},
			FullDescription:  sarifText{Text: a.Doc},
		})
		seen[a.Name] = true
	}
	for _, d := range diags {
		if !seen[d.Analyzer] {
			rules = append(rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifText{Text: "atlint directive hygiene"},
			})
			seen[d.Analyzer] = true
		}
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		p := d.Posn(fset)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error", // every atlint finding fails the build
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relativeURI(baseDir, p.Filename)},
					Region:           sarifRegion{StartLine: p.Line, StartColumn: p.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "atlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relativeURI renders file relative to baseDir with forward slashes,
// falling back to the path as-is when it is not under baseDir.
func relativeURI(baseDir, file string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
