// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of this repo's
// stdlib-only analysis framework.
//
// Fixtures live under testdata/src/<importpath>/ next to the analyzer's
// test file. Imports inside fixtures resolve first against other
// fixture directories (type-checked from source), then against the real
// build's export data via `go list -export`. Expectations are written
// on the offending line:
//
//	for k, v := range m { // want "non-deterministic map iteration"
//
// Each quoted string is a regexp that must match exactly one diagnostic
// reported on that line; diagnostics without a matching want, and wants
// without a matching diagnostic, fail the test. Diagnostics from the
// directive machinery itself (unused suppressions, malformed
// directives) participate like any other, so fixtures can assert them.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"atscale/internal/analysis"
)

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics against // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := &loader{
		src:     filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*analysis.Package),
		exports: make(map[string]string),
	}
	var pkgs []*analysis.Package
	for _, path := range pkgPaths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("fixture %s has type errors: %v", path, pkg.TypeErrors)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, l.fset, pkgs, diags)
}

// loader resolves fixture import paths from testdata/src and everything
// else from the surrounding build's export data.
type loader struct {
	src     string
	fset    *token.FileSet
	pkgs    map[string]*analysis.Package
	exports map[string]string // non-fixture import path -> export file
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	pkg := &analysis.Package{
		PkgPath: path,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
	}
	l.pkgs[path] = pkg

	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if _, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(p))); err == nil {
				dep, err := l.load(p)
				if err != nil {
					return nil, err
				}
				return dep.Types, nil
			}
			return l.importExport(p)
		}),
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, l.fset, files, pkg.Info)
	return pkg, nil
}

// importExport serves a non-fixture import from compiler export data,
// listing each requested package (with its dependencies) on demand.
func (l *loader) importExport(path string) (*types.Package, error) {
	if _, ok := l.exports[path]; !ok {
		if err := l.list(path); err != nil {
			return nil, err
		}
	}
	if _, ok := l.exports[path]; !ok {
		return nil, fmt.Errorf("no export data for %q (fixture imports must be fixture packages or stdlib)", path)
	}
	imp := importer.ForCompiler(l.fset, "gc", func(p string) (io.ReadCloser, error) {
		e, ok := l.exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(e)
	})
	return imp.Import(path)
}

func (l *loader) list(path string) error {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list std: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if lp.Export != "" {
			l.exports[lp.ImportPath] = lp.Export
		}
	}
	return nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation: a regexp anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants parses // want comments from the fixture files and
// reconciles them with the diagnostics.
func checkWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, fset, c)...)
				}
			}
		}
	}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		var hit *want
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", p, d.Message, d.Analyzer)
			continue
		}
		hit.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// parseWants extracts the quoted regexps of a // want comment.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*want {
	t.Helper()
	text := c.Text
	i := strings.Index(text, "// want ")
	if i < 0 {
		return nil
	}
	p := fset.Position(c.Pos())
	rest := strings.TrimSpace(text[i+len("// want "):])
	var out []*want
	for rest != "" {
		lit, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s:%d: malformed // want: %q", p.Filename, p.Line, rest)
		}
		raw, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: malformed // want literal %q", p.Filename, p.Line, lit)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s:%d: bad // want regexp %q: %v", p.Filename, p.Line, raw, err)
		}
		out = append(out, &want{file: p.Filename, line: p.Line, re: re, raw: raw})
		rest = strings.TrimSpace(rest[len(lit):])
	}
	return out
}
