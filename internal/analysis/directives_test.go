package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestDirectiveParsing(t *testing.T) {
	for _, tc := range []struct {
		body     string
		analyzer string
		bad      bool
	}{
		{"ordered totally justified", "detrange", false},
		{"ordered", "detrange", true}, // missing justification
		{"allow nondet logging only", "nondet", false},
		{"allow nondet", "", true},   // missing justification
		{"allow", "", true},          // missing analyzer
		{"deterministic", "", false}, // package marker
		{"frobnicate", "", true},     // unknown verb
		// Analyzer-owned marker verbs.
		{"hotpath", "", false},
		{"hotpath the per-access loop", "", false},
		{"inline", "", false},
		{"guardedby mu", "", false},
		{"guardedby", "", true}, // missing mutex name
		{"locked mu Export holds it", "", false},
		{"locked mu", "", true}, // missing justification
		{"locked", "", true},    // missing guard
		{"noreset slab remainder is zeroed", "", false},
		{"noreset", "", true}, // missing justification
		{"frontend progress output", "", false},
		{"frontend", "", true}, // missing justification
	} {
		d := parseDirective(token.NoPos, tc.body)
		if (d.bad != "") != tc.bad {
			t.Errorf("parseDirective(%q): bad=%q, want bad=%v", tc.body, d.bad, tc.bad)
		}
		if !tc.bad && tc.analyzer != "" && d.analyzer != tc.analyzer {
			t.Errorf("parseDirective(%q): analyzer=%q, want %q", tc.body, d.analyzer, tc.analyzer)
		}
	}
}

func TestMalformedAndUnusedDirectivesReported(t *testing.T) {
	src := `package p

//atlint:ordered
func a() {}

//atlint:allow detrange justified but nothing here to suppress
func b() {}

//atlint:bogusverb
func c() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := newSuppressor(fset, []*ast.File{f})
	diags := sup.leftovers(map[string]bool{"detrange": true})
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, wantSub := range []string{
		"needs a justification",
		"unused //atlint:allow directive for detrange",
		"unknown directive //atlint:bogusverb",
	} {
		if !strings.Contains(joined, wantSub) {
			t.Errorf("leftovers missing %q in:\n%s", wantSub, joined)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d leftover diagnostics, want 3:\n%s", len(diags), joined)
	}
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	src := `package p

//atlint:allow nondet covered below
func a() {}

func b() {} //atlint:allow nondet covered same line
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := newSuppressor(fset, []*ast.File{f})
	// Line 4 is covered by the directive on line 3; line 6 by its own.
	if !sup.suppresses("nondet", posAtLine(fset, f.Pos(), 4)) {
		t.Error("directive on previous line did not suppress")
	}
	if !sup.suppresses("nondet", posAtLine(fset, f.Pos(), 6)) {
		t.Error("same-line directive did not suppress")
	}
	if sup.suppresses("detrange", posAtLine(fset, f.Pos(), 4)) {
		t.Error("directive suppressed the wrong analyzer")
	}
	if len(sup.leftovers(map[string]bool{"nondet": true})) != 0 {
		t.Error("used directives reported as leftovers")
	}
}

// posAtLine fabricates a Pos on the given line of the file containing base.
func posAtLine(fset *token.FileSet, base token.Pos, line int) token.Pos {
	return fset.File(base).LineStart(line)
}

func parseTestFile(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// TestChainedDirectivesOneLine: several directives may share a comment;
// each parses independently with its own position.
func TestChainedDirectivesOneLine(t *testing.T) {
	src := `package p

//atlint:hotpath //atlint:inline the PR 7 cost contract
func a() {}

//atlint:allow nondet logging //atlint:allow detrange keyed table
func b() {}
`
	fset, f := parseTestFile(t, src)
	ds := parseDirectives(fset, []*ast.File{f})
	line3 := ds["fix.go"][3]
	if len(line3) != 2 || line3[0].verb != "hotpath" || line3[1].verb != "inline" {
		t.Fatalf("chained markers on line 3 = %+v, want hotpath then inline", line3)
	}
	if line3[0].pos == line3[1].pos {
		t.Errorf("chained directives share a position")
	}
	line6 := ds["fix.go"][6]
	if len(line6) != 2 || line6[0].analyzer != "nondet" || line6[1].analyzer != "detrange" {
		t.Fatalf("chained suppressions on line 6 = %+v", line6)
	}
	for _, d := range append(line3, line6...) {
		if d.bad != "" {
			t.Errorf("chained directive %q parsed as malformed: %s", d.verb, d.bad)
		}
	}
	// Prose that merely mentions //atlint: mid-comment is not a directive.
	prose := `package p

// See the //atlint:ordered docs for the justification format.
func a() {}
`
	fset2, f2 := parseTestFile(t, prose)
	if n := len(parseDirectives(fset2, []*ast.File{f2})); n != 0 {
		t.Errorf("prose comment parsed as %d directive lines", n)
	}
}

// TestMarkersNotReportedUnused: marker verbs have no framework-side use
// tracking, so a hotpath marker must never show up as an unused
// suppression even when hotalloc is in the run set.
func TestMarkersNotReportedUnused(t *testing.T) {
	src := `package p

//atlint:hotpath
func hot() {}

//atlint:noreset backing kept for the next tenant
var x int

//atlint:frontend progress output
func main2() {}
`
	fset, f := parseTestFile(t, src)
	sup := newSuppressor(fset, []*ast.File{f})
	diags := sup.leftovers(map[string]bool{"hotalloc": true, "resetdiscipline": true, "nondet": true})
	if len(diags) != 0 {
		t.Errorf("markers reported as leftovers: %v", diags)
	}
}

// TestMarkersDoNotSuppress: a marker on the line above a finding must
// not swallow it the way //atlint:allow would.
func TestMarkersDoNotSuppress(t *testing.T) {
	src := `package p

//atlint:hotpath
func hot() {}
`
	fset, f := parseTestFile(t, src)
	sup := newSuppressor(fset, []*ast.File{f})
	if sup.suppresses("hotalloc", posAtLine(fset, f.Pos(), 4)) {
		t.Error("marker acted as a suppression")
	}
}

// TestMalformedMarkerVerbsReported: guardedby without a target, locked
// and noreset without justifications are framework-level errors.
func TestMalformedMarkerVerbsReported(t *testing.T) {
	src := `package p

import "sync"

type S struct {
	mu sync.Mutex
	//atlint:guardedby
	n int
}

//atlint:locked
func helper() {}

type T struct {
	//atlint:noreset
	keep int
}
`
	fset, f := parseTestFile(t, src)
	sup := newSuppressor(fset, []*ast.File{f})
	diags := sup.leftovers(nil)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	joined := ""
	for _, d := range diags {
		joined += d.Message + "\n"
		if d.Analyzer != "atlint" {
			t.Errorf("malformed marker attributed to %q, want atlint", d.Analyzer)
		}
	}
	for _, want := range []string{
		"guardedby needs the guarding mutex field name",
		"locked needs the held guard name",
		"noreset needs a justification",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

// TestCommentMarkersOnDecls: markers attach through Doc comments on any
// declaration shape — functions, methods, struct fields, and fields
// with trailing line comments.
func TestCommentMarkersOnDecls(t *testing.T) {
	src := `package p

import "sync"

//atlint:hotpath
func free() {}

type T struct{ mu sync.Mutex }

//atlint:hotpath //atlint:inline keep under budget
func (t *T) Method() {}

type S struct {
	mu sync.Mutex
	//atlint:guardedby mu
	a int
	b int //atlint:guardedby mu trailing style
}
`
	fset, f := parseTestFile(t, src)
	_ = fset
	var freeFn, method *ast.FuncDecl
	var structS *ast.StructType
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Name.Name == "free" {
				freeFn = d
			}
			if d.Name.Name == "Method" {
				method = d
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == "S" {
					structS = ts.Type.(*ast.StructType)
				}
			}
		}
	}
	if ms := CommentMarkers(freeFn.Doc); len(ms) != 1 || ms[0].Verb != "hotpath" {
		t.Errorf("free markers = %+v", ms)
	}
	ms := CommentMarkers(method.Doc)
	if len(ms) != 2 || ms[0].Verb != "hotpath" || ms[1].Verb != "inline" {
		t.Errorf("method markers = %+v", ms)
	}
	var sawDoc, sawTrailing bool
	for _, field := range structS.Fields.List {
		for _, m := range CommentMarkers(field.Doc, field.Comment) {
			if m.Verb != "guardedby" || !strings.HasPrefix(m.Args, "mu") {
				t.Errorf("field marker = %+v", m)
			}
			switch field.Names[0].Name {
			case "a":
				sawDoc = true
			case "b":
				sawTrailing = true
			}
		}
	}
	if !sawDoc || !sawTrailing {
		t.Errorf("field markers missed: doc=%v trailing=%v", sawDoc, sawTrailing)
	}
}

func TestFileMarkersAndPackageMarker(t *testing.T) {
	src := `package p

//atlint:hotpath
func a() {}

//atlint:frontend reads the clock for progress
func b() {}
`
	fset, f := parseTestFile(t, src)
	_ = fset
	ms := FileMarkers(f, "hotpath", "inline")
	if len(ms) != 1 || ms[0].Verb != "hotpath" {
		t.Errorf("FileMarkers = %+v", ms)
	}
	if !HasPackageMarker([]*ast.File{f}, "frontend") {
		t.Error("frontend package marker not found")
	}
	if HasPackageMarker([]*ast.File{f}, "deterministic") {
		t.Error("phantom deterministic marker")
	}
}
