package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestDirectiveParsing(t *testing.T) {
	for _, tc := range []struct {
		body     string
		analyzer string
		bad      bool
	}{
		{"ordered totally justified", "detrange", false},
		{"ordered", "detrange", true}, // missing justification
		{"allow nondet logging only", "nondet", false},
		{"allow nondet", "", true},   // missing justification
		{"allow", "", true},          // missing analyzer
		{"deterministic", "", false}, // package marker
		{"frobnicate", "", true},     // unknown verb
	} {
		d := parseDirective(token.NoPos, tc.body)
		if (d.bad != "") != tc.bad {
			t.Errorf("parseDirective(%q): bad=%q, want bad=%v", tc.body, d.bad, tc.bad)
		}
		if !tc.bad && tc.analyzer != "" && d.analyzer != tc.analyzer {
			t.Errorf("parseDirective(%q): analyzer=%q, want %q", tc.body, d.analyzer, tc.analyzer)
		}
	}
}

func TestMalformedAndUnusedDirectivesReported(t *testing.T) {
	src := `package p

//atlint:ordered
func a() {}

//atlint:allow detrange justified but nothing here to suppress
func b() {}

//atlint:bogusverb
func c() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := newSuppressor(fset, []*ast.File{f})
	diags := sup.leftovers(map[string]bool{"detrange": true})
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, wantSub := range []string{
		"needs a justification",
		"unused //atlint:allow directive for detrange",
		"unknown directive //atlint:bogusverb",
	} {
		if !strings.Contains(joined, wantSub) {
			t.Errorf("leftovers missing %q in:\n%s", wantSub, joined)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d leftover diagnostics, want 3:\n%s", len(diags), joined)
	}
}

func TestSuppressionCoversSameAndNextLine(t *testing.T) {
	src := `package p

//atlint:allow nondet covered below
func a() {}

func b() {} //atlint:allow nondet covered same line
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := newSuppressor(fset, []*ast.File{f})
	// Line 4 is covered by the directive on line 3; line 6 by its own.
	if !sup.suppresses("nondet", posAtLine(fset, f.Pos(), 4)) {
		t.Error("directive on previous line did not suppress")
	}
	if !sup.suppresses("nondet", posAtLine(fset, f.Pos(), 6)) {
		t.Error("same-line directive did not suppress")
	}
	if sup.suppresses("detrange", posAtLine(fset, f.Pos(), 4)) {
		t.Error("directive suppressed the wrong analyzer")
	}
	if len(sup.leftovers(map[string]bool{"nondet": true})) != 0 {
		t.Error("used directives reported as leftovers")
	}
}

// posAtLine fabricates a Pos on the given line of the file containing base.
func posAtLine(fset *token.FileSet, base token.Pos, line int) token.Pos {
	return fset.File(base).LineStart(line)
}
