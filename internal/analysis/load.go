package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path with any test-variant suffix
	// (" [foo.test]") stripped; ForTest is non-empty for test variants.
	PkgPath string
	ForTest string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds type-checker soft failures. Analysis proceeds on
	// a best-effort basis when non-empty, mirroring go vet.
	TypeErrors []error
}

// listedPackage mirrors the subset of `go list -json` output the loader
// consumes. ImportMap carries the per-package import rewrites that make
// test variants work: inside "p_test [p.test]", the source-level import
// "p" resolves to "p [p.test]".
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	ForTest    string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns with the go command and type-checks every
// non-dependency package (including in-package and external test
// variants) against compiler export data, so no source of any
// dependency is ever re-type-checked. It is the offline stand-in for
// golang.org/x/tools/go/packages.Load in LoadAllSyntax mode.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed)) // ImportPath -> export file
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	// Prefer the test variant when both "p" and "p [p.test]" are
	// listed: the variant's GoFiles are a superset (sources plus
	// in-package tests), so analyzing both would duplicate findings.
	hasVariant := make(map[string]bool)
	for _, lp := range listed {
		if lp.ForTest != "" && stripVariant(lp.ImportPath) == lp.ForTest {
			hasVariant[lp.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		// Skip synthesized test-main packages ("p.test").
		if lp.ForTest == "" && strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if lp.ForTest == "" && hasVariant[lp.ImportPath] {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		pkg, err := typeCheck(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList runs `go list -export -deps -test -json` and decodes the
// package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typeCheck parses lp's files and type-checks them with imports served
// from export data. Each package gets a fresh gc importer: cross-package
// type identity is not needed by the analyzers (they compare package
// paths, not *types.Package pointers), and per-package importers keep
// the ImportMap remapping local.
func typeCheck(fset *token.FileSet, lp *listedPackage, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}

	pkg := &Package{
		PkgPath: stripVariant(lp.ImportPath),
		ForTest: lp.ForTest,
		Dir:     lp.Dir,
		Fset:    fset,
		Files:   files,
		Info:    newInfo(),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(stripVariant(lp.ImportPath), fset, files, pkg.Info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("%s: type-checking failed: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// stripVariant drops the " [foo.test]" suffix go list appends to
// test-variant import paths.
func stripVariant(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
