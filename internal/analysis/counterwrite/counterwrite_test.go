package counterwrite_test

import (
	"testing"

	"atscale/internal/analysis/analysistest"
	"atscale/internal/analysis/counterwrite"
)

func TestCounterwrite(t *testing.T) {
	// "internal/perf" itself is exempt (it may mutate its own state);
	// the consumer package is where the discipline bites.
	analysistest.Run(t, "testdata", counterwrite.Analyzer,
		"internal/perf", "consumer")
}
