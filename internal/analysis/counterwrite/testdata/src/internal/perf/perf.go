// Package perf is a fixture standing in for the real internal/perf: a
// counter type with exported fields, so the analyzer has something to
// protect.
package perf

// Counters is counter state with exported fields (the real package
// keeps them unexported; the analyzer guards the day one is exported
// for serialization).
type Counters struct {
	Vals  [4]uint64
	Total uint64
}

// Inc is the sanctioned mutation path.
func (c *Counters) Inc(e int) {
	c.Vals[e]++
	c.Total++
}

// Sample is a data record emitted by the PMU.
type Sample struct {
	VA     uint64
	Weight uint64
}
