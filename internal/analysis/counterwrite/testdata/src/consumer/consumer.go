// Package consumer imports the perf fixture and pokes at it.
package consumer

import "internal/perf"

type wrapper struct {
	perf.Counters
}

func violations(c *perf.Counters, w *wrapper) {
	c.Total++      // want `direct write to Counters.Total outside perf`
	c.Total = 0    // want `direct write to Counters.Total outside perf`
	c.Vals[2] += 7 // want `direct write to Counters.Vals outside perf`
	w.Total++      // want `direct write to wrapper.Total outside perf`
	p := &c.Total  // want `taking the address of Counters.Total aliases perf counter state`
	_ = p
}

func sanctioned(c *perf.Counters) {
	c.Inc(1)
	_ = c.Total
}

func construction() perf.Counters {
	// Composite literals are construction, not mutation.
	return perf.Counters{Total: 0}
}

func records(s *perf.Sample) {
	// Data records are perf types too: post-construction mutation from
	// outside the package is still flagged.
	s.Weight = 1 // want `direct write to Sample.Weight outside perf`
}

func justified(c *perf.Counters) {
	//atlint:allow counterwrite restoring a snapshot in a checkpoint path
	c.Total = 42
}

func localStructFine() {
	type local struct{ Total uint64 }
	var l local
	l.Total++
}
