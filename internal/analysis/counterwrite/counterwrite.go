// Package counterwrite flags direct writes to fields of types declared
// in internal/perf from any other package. All counter and event
// bookkeeping must flow through the perf API (Counters.Inc/Add,
// Group.Enable/Disable, Sampler.Offer): the Eq. 1 WCPI identity and the
// walk_duration = guest + ept split are arithmetic over those entry
// points, and a stray `g.acc[e]++` or `row.Instructions = 0` elsewhere
// bypasses the invariant checks that guard them. Today most perf state
// is unexported, so the compiler already rejects the worst offenses;
// this analyzer keeps the discipline when fields are exported for
// serialization (Sample, IntervalRow) or become exported later.
package counterwrite

import (
	"go/ast"
	"go/types"
	"strings"

	"atscale/internal/analysis"
)

// PerfPath is the package-path suffix whose types are protected.
// Analysis tests point it at a fixture package.
var PerfPath = "internal/perf"

// Analyzer is the counterwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "counterwrite",
	Doc: "flag direct mutation of perf counter/event struct fields outside internal/perf\n\n" +
		"Counter state must change only through the perf API so the WCPI and\n" +
		"cycle-split invariants cannot be bypassed. Constructing perf values\n" +
		"with composite literals is fine; assigning to their fields after the\n" +
		"fact, from outside the package, is not.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.PkgPath == PerfPath || strings.HasSuffix(pass.PkgPath, "/"+PerfPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					check(pass, lhs)
				}
			case *ast.IncDecStmt:
				check(pass, st.X)
			case *ast.UnaryExpr:
				// Taking a field's address opens an aliased write path
				// that the assignment checks above cannot see.
				if st.Op.String() == "&" {
					if sel, ok := st.X.(*ast.SelectorExpr); ok {
						if owner := perfFieldOwner(pass, sel); owner != "" {
							pass.Reportf(st.Pos(), "taking the address of %s.%s aliases perf counter state: use the %s API instead", owner, sel.Sel.Name, pkgBase())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// check reports lhs when it writes through a field (possibly under
// index expressions, as in g.acc[e]++) of a perf-declared struct type.
func check(pass *analysis.Pass, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.SelectorExpr:
			if owner := perfFieldOwner(pass, e); owner != "" {
				pass.Reportf(e.Pos(), "direct write to %s.%s outside %s: counter and event state must go through the perf API", owner, e.Sel.Name, pkgBase())
			}
		}
		return
	}
}

// perfFieldOwner returns the owning type's display name when sel
// selects a struct field declared in PerfPath, else "". Checking the
// field object's declaring package (rather than the receiver type)
// keeps embedded perf structs protected inside wrapper types.
func perfFieldOwner(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	fieldPkg := s.Obj().Pkg()
	if fieldPkg == nil || (fieldPkg.Path() != PerfPath && !strings.HasSuffix(fieldPkg.Path(), "/"+PerfPath)) {
		return ""
	}
	t := s.Recv()
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Named:
			return u.Obj().Name()
		default:
			return pkgBase()
		}
	}
}

func pkgBase() string {
	if i := strings.LastIndexByte(PerfPath, '/'); i >= 0 {
		return PerfPath[i+1:]
	}
	return PerfPath
}
