// Package gcdiag is the compiler-diagnostics bridge: it runs
// `go build -gcflags=-m=2` and parses the escape-analysis and inliner
// output into a queryable report. hotalloc uses it to prove that
// //atlint:hotpath functions allocate nothing in steady state and that
// //atlint:inline functions stay under the inliner budget — the
// compile-time version of the AllocsPerRun==0 tests and the manual
// cost-78 check on Cache.Lookup.
//
// Two facts about the -m=2 stream shape everything here:
//
//   - Escapes are attributed at every position the allocation surfaces,
//     including call sites where a panicking helper was inlined. A
//     helper's `panic("msg: " + x.String())` therefore shows up inside
//     the caller's body span with the caller's position.
//
//   - Each `… escapes to heap:` record is followed by indented flow
//     detail lines, and an escape whose only sink is a panic argument
//     says so explicitly: `from panic(…) (call parameter)`. Grouping
//     records by (file, line, col, expression) and scanning the group's
//     details for a panic sink classifies crash-path escapes without
//     any AST cross-referencing — which is what lets hotalloc keep
//     bounds-check panics in the hot path without declaring them
//     steady-state allocations.
//
// The diagnostics format is a compiler implementation detail, so the
// bridge is pinned to one toolchain line (Toolchain); on any other
// toolchain callers should skip the bridge with a warning rather than
// trust a parse of an unknown dialect.
package gcdiag

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Toolchain is the Go release line whose -m=2 dialect this parser was
// written and tested against. Patch releases do not change the
// diagnostics format, so any go1.24.x matches.
const Toolchain = "go1.24"

// Escape is one heap-allocation diagnostic: either an `escapes to
// heap` record or a `moved to heap` record.
type Escape struct {
	File string // absolute path
	Line int
	Col  int
	// What is the compiler's description of the allocated value, e.g.
	// `make([]uint64, lines)` or `moved to heap: x`.
	What string
	// PanicOnly marks escapes whose flow detail names a panic argument
	// as the sink: the allocation happens only on a crash path.
	PanicOnly bool
}

// Inline is one inliner verdict for a function declaration.
type Inline struct {
	File string
	Line int
	Col  int
	Name string // as the compiler prints it, e.g. (*Cache).Lookup
	// CanInline is true for `can inline` records; Cost is the inliner
	// cost. For `cannot inline` records Cost is -1 unless the reason
	// named one, and Reason holds the compiler's explanation.
	CanInline bool
	Cost      int
	Reason    string
}

// Report is the parsed diagnostics of one build.
type Report struct {
	Escapes []Escape
	Inlines []Inline

	escByFile map[string][]int
	inlByFile map[string][]int
}

// EscapesIn returns the escapes in file attributed to lines in
// [fromLine, toLine].
func (r *Report) EscapesIn(file string, fromLine, toLine int) []Escape {
	var out []Escape
	for _, i := range r.escByFile[file] {
		e := r.Escapes[i]
		if e.Line >= fromLine && e.Line <= toLine {
			out = append(out, e)
		}
	}
	return out
}

// InlineAt returns the inliner verdict for the function declared at
// (file, line), if the compiler emitted one.
func (r *Report) InlineAt(file string, line int) (Inline, bool) {
	for _, i := range r.inlByFile[file] {
		in := r.Inlines[i]
		if in.Line == line {
			return in, true
		}
	}
	return Inline{}, false
}

// ToolchainVersion returns `go env GOVERSION` for the go on PATH.
func ToolchainVersion() (string, error) {
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOVERSION: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// ToolchainMatches reports whether version belongs to the pinned
// release line: the line itself or any of its patch releases.
func ToolchainMatches(version string) bool {
	return version == Toolchain || strings.HasPrefix(version, Toolchain+".")
}

// Collect builds the given patterns in dir with -gcflags=-m=2 and
// parses the diagnostics. The build cache replays diagnostics, so a
// warm second run costs no compilation.
func Collect(dir string, patterns []string) (*Report, error) {
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2: %v\n%s", err, tail(stderr.String(), 2048))
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	return Parse(abs, stderr.String()), nil
}

// Parse parses raw -m=2 output, resolving relative paths against dir.
// It is separated from Collect so canned transcripts can be tested
// without a toolchain.
func Parse(dir, output string) *Report {
	r := &Report{
		escByFile: make(map[string][]int),
		inlByFile: make(map[string][]int),
	}
	// Group key of the escape record currently collecting detail
	// lines, so a panic sink in the detail marks every record of the
	// group.
	type escKey struct {
		file      string
		line, col int
		what      string
	}
	groups := make(map[escKey][]int)
	var openKey escKey
	var haveOpen bool

	for _, raw := range strings.Split(output, "\n") {
		file, line, col, msg, ok := splitPos(raw)
		if !ok || strings.HasPrefix(file, "<autogenerated>") {
			haveOpen = false
			continue
		}
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			// Indented flow detail of the open escape record.
			if haveOpen && strings.Contains(msg, "from panic(") {
				for _, i := range groups[openKey] {
					r.Escapes[i].PanicOnly = true
				}
			}
			continue
		}
		haveOpen = false
		file = resolve(dir, file)
		switch {
		case strings.HasPrefix(msg, "moved to heap: "):
			r.Escapes = append(r.Escapes, Escape{File: file, Line: line, Col: col, What: msg})
			r.escByFile[file] = append(r.escByFile[file], len(r.Escapes)-1)

		case strings.HasSuffix(msg, " escapes to heap") || strings.HasSuffix(msg, " escapes to heap:"):
			what := strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
			key := escKey{file: file, line: line, col: col, what: what}
			// The compiler prints one record per sink for the same
			// allocation; keep a single Escape per group so late panic
			// detail still marks it.
			if _, seen := groups[key]; !seen {
				r.Escapes = append(r.Escapes, Escape{File: file, Line: line, Col: col, What: what})
				r.escByFile[file] = append(r.escByFile[file], len(r.Escapes)-1)
				groups[key] = []int{len(r.Escapes) - 1}
			}
			openKey, haveOpen = key, true

		case strings.HasPrefix(msg, "can inline "):
			rest := strings.TrimPrefix(msg, "can inline ")
			name, costPart, found := strings.Cut(rest, " with cost ")
			if !found {
				continue
			}
			costStr, _, _ := strings.Cut(costPart, " ")
			cost, err := strconv.Atoi(costStr)
			if err != nil {
				continue
			}
			r.Inlines = append(r.Inlines, Inline{File: file, Line: line, Col: col,
				Name: name, CanInline: true, Cost: cost})
			r.inlByFile[file] = append(r.inlByFile[file], len(r.Inlines)-1)

		case strings.HasPrefix(msg, "cannot inline "):
			rest := strings.TrimPrefix(msg, "cannot inline ")
			name, reason, found := strings.Cut(rest, ": ")
			if !found {
				name, reason = rest, ""
			}
			r.Inlines = append(r.Inlines, Inline{File: file, Line: line, Col: col,
				Name: name, CanInline: false, Cost: costIn(reason), Reason: reason})
			r.inlByFile[file] = append(r.inlByFile[file], len(r.Inlines)-1)
		}
	}
	return r
}

// splitPos splits `file:line:col: message`, keeping the message's
// leading whitespace intact (it distinguishes detail lines).
func splitPos(s string) (file string, line, col int, msg string, ok bool) {
	// Find ":<digits>:<digits>: " scanning from the left; file names
	// contain no colons in this repo.
	i := strings.Index(s, ".go:")
	if i < 0 {
		// <autogenerated>:1: lines and non-diagnostic output.
		if strings.HasPrefix(s, "<autogenerated>") {
			return "<autogenerated>", 0, 0, "", true
		}
		return "", 0, 0, "", false
	}
	file = s[:i+3]
	rest := s[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) < 2 {
		return "", 0, 0, "", false
	}
	line, err := strconv.Atoi(parts[0])
	if err != nil {
		return "", 0, 0, "", false
	}
	if len(parts) == 3 {
		if c, err := strconv.Atoi(parts[1]); err == nil {
			msg = strings.TrimPrefix(parts[2], " ")
			// Detail lines keep their indentation: TrimPrefix removed
			// only the separator space after the colon.
			return file, line, c, msg, true
		}
	}
	// file:line: message (no column).
	msg = strings.TrimPrefix(strings.Join(parts[1:], ":"), " ")
	return file, line, 0, msg, true
}

// costIn extracts a cost from reasons like `function too complex: cost
// 196 exceeds budget 80`; -1 when absent.
func costIn(reason string) int {
	_, after, found := strings.Cut(reason, "cost ")
	if !found {
		return -1
	}
	numStr, _, _ := strings.Cut(after, " ")
	n, err := strconv.Atoi(numStr)
	if err != nil {
		return -1
	}
	return n
}

func resolve(dir, file string) string {
	if filepath.IsAbs(file) {
		return filepath.Clean(file)
	}
	return filepath.Join(dir, file)
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n:]
}
