package analysis

import (
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Run applies every analyzer to every package, resolves //atlint:
// suppressions, and returns the surviving diagnostics in stable
// (file, line, column) order. Unused or malformed directives come back
// as diagnostics too, attributed to the pseudo-analyzer "atlint".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	var (
		all  []Diagnostic
		fset *token.FileSet
	)
	for _, pkg := range pkgs {
		fset = pkg.Fset
		sup := newSuppressor(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.PkgPath,
			}
			pass.Report = func(d Diagnostic) {
				if sup.suppresses(a.Name, d.Pos) {
					return
				}
				d.Analyzer = a.Name
				all = append(all, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		all = append(all, sup.leftovers(ran)...)
	}
	if fset != nil {
		sortDiagnostics(fset, all)
		all = dedupe(fset, all)
	}
	return all, nil
}

// dedupe drops identical findings at identical positions; they occur
// when a package and one of its test variants both contain a file.
func dedupe(fset *token.FileSet, ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	seen := make(map[string]bool, len(ds))
	for _, d := range ds {
		key := fmt.Sprintf("%s\x00%s\x00%s", fset.Position(d.Pos), d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// Main is the multichecker entry point cmd/atlint delegates to: parse
// patterns from argv, load, run, print, and exit non-zero on findings.
func Main(analyzers ...*Analyzer) {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: atlint [-list] [-sarif out.json] [packages]\n\nAnalyzers:\n")
		sorted := append([]*Analyzer(nil), analyzers...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, a := range sorted {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	list := flag.Bool("list", false, "list analyzers and exit")
	sarif := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file")
	flag.Parse()
	if *list {
		flag.Usage()
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	code, err := LintSARIF(os.Stdout, "", patterns, *sarif, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// Lint loads patterns, runs the analyzers, and writes findings to w.
// It returns 0 for a clean tree and 1 when there are findings.
func Lint(w io.Writer, dir string, patterns []string, analyzers []*Analyzer) (int, error) {
	return LintSARIF(w, dir, patterns, "", analyzers)
}

// LintSARIF is Lint with an optional SARIF sink: when sarifPath is
// non-empty the findings (including a clean empty run) are also written
// there for code-scanning upload. It runs each analyzer's Init hook
// first, so whole-build inputs like compiler diagnostics exist before
// any package is analyzed.
func LintSARIF(w io.Writer, dir string, patterns []string, sarifPath string, analyzers []*Analyzer) (int, error) {
	for _, a := range analyzers {
		if a.Init == nil {
			continue
		}
		if err := a.Init(dir, patterns); err != nil {
			return 0, fmt.Errorf("%s init: %v", a.Name, err)
		}
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset // Load shares one FileSet across packages
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s [%s]\n", d.Posn(fset), d.Message, d.Analyzer)
		}
		if sarifPath != "" {
			if err := writeSARIFFile(sarifPath, fset, dir, analyzers, diags); err != nil {
				return 0, err
			}
		}
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// writeSARIFFile writes the SARIF log with repo-relative URIs rooted at
// the lint directory (the current directory when dir is empty).
func writeSARIFFile(path string, fset *token.FileSet, dir string, analyzers []*Analyzer, diags []Diagnostic) error {
	base := dir
	if base == "" {
		if wd, err := os.Getwd(); err == nil {
			base = wd
		}
	}
	if abs, err := filepath.Abs(base); err == nil {
		base = abs
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteSARIF(f, fset, base, analyzers, diags); err != nil {
		return err
	}
	return f.Close()
}

func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
