package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("/repo/internal/x/x.go", -1, 1000)
	f.SetLines([]int{0, 100, 200, 300})
	pos := f.LineStart(3) + 5

	analyzers := []*Analyzer{
		{Name: "detrange", Doc: "flag map iteration\n\nlong text"},
		{Name: "hotalloc", Doc: "hot paths must not allocate"},
	}
	diags := []Diagnostic{
		{Pos: pos, Message: "non-deterministic map iteration", Analyzer: "detrange"},
		{Pos: pos, Message: "unknown directive //atlint:bogus", Analyzer: "atlint"},
	}

	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, "/repo", analyzers, diags); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct {
						ID               string
						ShortDescription struct{ Text string }
					}
				}
			}
			Results []struct {
				RuleID    string
				Level     string
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct{ URI string }
						Region           struct{ StartLine, StartColumn int }
					}
				}
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "atlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Rules: the two analyzers plus the auto-added atlint pseudo-rule,
	// sorted by id.
	ids := make([]string, len(run.Tool.Driver.Rules))
	for i, r := range run.Tool.Driver.Rules {
		ids[i] = r.ID
	}
	if strings.Join(ids, ",") != "atlint,detrange,hotalloc" {
		t.Errorf("rule ids = %v", ids)
	}
	// First rule description must be the doc's first line only.
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "detrange" && r.ShortDescription.Text != "flag map iteration" {
			t.Errorf("short description = %q", r.ShortDescription.Text)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "detrange" || res.Level != "error" {
		t.Errorf("result rule/level = %q/%q", res.RuleID, res.Level)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/x/x.go" {
		t.Errorf("URI = %q, want repo-relative internal/x/x.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 3 {
		t.Errorf("startLine = %d, want 3", loc.Region.StartLine)
	}
}

// TestWriteSARIFEmptyRun: a clean tree still yields a valid log with an
// empty (non-null) results array — GitHub rejects null results.
func TestWriteSARIFEmptyRun(t *testing.T) {
	fset := token.NewFileSet()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, "", []*Analyzer{{Name: "nondet", Doc: "d"}}, nil); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty run must serialize results as []:\n%s", buf.String())
	}
}
