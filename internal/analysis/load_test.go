package analysis

import (
	"strings"
	"testing"
)

// TestLoadPerf proves the export-data loader round trip: list the perf
// package (test variant included), type-check it against compiler
// export data, and confirm full type information came back.
func TestLoadPerf(t *testing.T) {
	pkgs, err := Load("", "atscale/internal/perf")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var perf *Package
	for _, p := range pkgs {
		if p.PkgPath == "atscale/internal/perf" {
			perf = p
		}
	}
	if perf == nil {
		t.Fatalf("perf package not loaded; got %d packages", len(pkgs))
	}
	if len(perf.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", perf.TypeErrors)
	}
	if perf.ForTest == "" {
		t.Errorf("expected the test variant of internal/perf, got the plain package")
	}
	var sawTestFile bool
	for _, f := range perf.Files {
		if strings.HasSuffix(perf.Fset.File(f.Pos()).Name(), "_test.go") {
			sawTestFile = true
		}
	}
	if !sawTestFile {
		t.Errorf("test variant should include _test.go files")
	}
	if obj := perf.Types.Scope().Lookup("Counters"); obj == nil {
		t.Errorf("perf.Counters not found in type info")
	}
}

// TestLoadExternalTestPackage checks ImportMap remapping: an external
// test package imports the package under test and must resolve it to
// the test-variant export data.
func TestLoadExternalTestPackage(t *testing.T) {
	pkgs, err := Load("", "atscale/internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", p.PkgPath, p.TypeErrors)
		}
	}
}
