// Package analysis is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis surface this repo needs: an
// Analyzer value, a Pass handed to each analyzer with parsed syntax and
// full type information, and a Diagnostic stream. The build environment
// is offline, so instead of depending on x/tools the loader shells out
// to `go list -export` and type-checks with the compiler's export data
// (see load.go). Analyzers written against this package look exactly
// like go/analysis analyzers and could be ported by changing imports.
//
// The suite exists to turn the repo's runtime guarantees into lint-time
// law: byte-identical serial/parallel campaign output, the Eq. 1 WCPI
// identity, and the walk_duration = guest + ept split all break through
// bug classes (map-iteration order, wall-clock reads, ad-hoc counter
// mutation, typo'd event names) that are statically detectable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Run is called once per loaded
// package with a fully populated Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //atlint:allow directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the check, reporting findings via pass.Report.
	Run func(pass *Pass) error
	// Init, when non-nil, is called once per Lint invocation — before
	// any package is loaded — with the working directory and package
	// patterns. Analyzers that need whole-build input collect it here:
	// hotalloc runs the compiler for escape and inlining diagnostics.
	// analysistest does not call Init, so analyzers must degrade
	// gracefully (skip the dependent checks) when it never ran.
	Init func(dir string, patterns []string) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass carries one package's worth of parsed, type-checked input to an
// analyzer, plus the Report sink for findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path as the build system sees it, with any
	// " [foo.test]" test-variant suffix stripped.
	PkgPath string
	// Report records a finding. Findings suppressed by an
	// //atlint: directive are counted against the directive and
	// dropped; everything else reaches the checker's output.
	Report func(Diagnostic)
}

// Reportf is a printf convenience over Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether pos is inside a _test.go file. Analyzers
// whose contract covers only non-test simulator code (nondet, detrange)
// use it to skip test files, which the loader deliberately includes so
// that eventname can vet string literals in tests too.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the checker
}

// Posn renders a diagnostic's position under fset.
func (d Diagnostic) Posn(fset *token.FileSet) token.Position { return fset.Position(d.Pos) }

// sortDiagnostics orders findings by file, line, column, then message,
// so checker output is stable regardless of analyzer or package order.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}
