// Package sim stands in for simulator code: wall-clock reads and
// global randomness are violations here.
package sim

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want `time.Now in simulator code`
	return t.Unix()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in simulator code`
}

func constantsFine() time.Duration {
	// Durations and time arithmetic that never read the host clock are
	// fine; only Now/Since/Until are wall-clock reads.
	return 5 * time.Millisecond
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn uses the global random source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the global random source`
}

func seededFine(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func seededUse(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func justified() int64 {
	//atlint:allow nondet progress logging only, value never reaches counters
	return time.Now().UnixNano()
}
