package sim

import (
	crand "crypto/rand" // want `crypto/rand in simulator code`
)

func entropy(buf []byte) {
	_, _ = crand.Read(buf)
}
