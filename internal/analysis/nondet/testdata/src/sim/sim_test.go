package sim

import (
	"testing"
	"time"
)

// Test files are outside nondet's contract: timing a test with the wall
// clock is fine.
func TestWallClockFine(t *testing.T) {
	start := time.Now()
	_ = time.Since(start)
}
