package sim

// A frontend declaration outside cmd/ is a finding, and the package is
// checked regardless (the time.Now/rand wants in sim.go still fire).
//
//atlint:frontend simulators do not get to claim this // want "outside cmd/: only command-line frontends may read host state"
