package sim

import (
	randv2 "math/rand/v2"
)

func globalV2() int {
	return randv2.IntN(10) // want `rand/v2.IntN uses the global random source`
}

func seededV2Fine() *randv2.Rand {
	return randv2.New(randv2.NewPCG(1, 2))
}
