// Package main matches nondet's frontend exemption list: CLIs may read
// the wall clock for progress output.
package main

import "time"

func main() {
	_ = time.Now()
}
