// Package main declares itself a frontend: CLIs may read the wall
// clock for progress output, and under cmd/ the marker is honored.
//
//atlint:frontend progress output reads the wall clock
package main

import "time"

func main() {
	_ = time.Now()
}
