package nondet_test

import (
	"testing"

	"atscale/internal/analysis/analysistest"
	"atscale/internal/analysis/nondet"
)

func TestNondet(t *testing.T) {
	analysistest.Run(t, "testdata", nondet.Analyzer, "sim", "cmd/atscale")
}
