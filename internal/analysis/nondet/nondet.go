// Package nondet flags wall-clock reads and global or entropy-seeded
// randomness in non-test simulator code. The simulator's contract is
// that a (workload, seed, config) triple fully determines every counter
// value; time.Now, the shared math/rand source, and crypto/rand all
// smuggle host state into that function.
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"atscale/internal/analysis"
)

// Exemption is by declaration, not by path omission: a command-line
// frontend that reads host state (wall clock for progress output)
// carries a package-level //atlint:frontend <why> marker. The marker is
// honored only under cmd/ — anywhere else it is itself a finding and
// the package is checked anyway, so the simulator proper can never
// opt out by accident.

// wallClock lists time package functions that read host time.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// sourceConstructors lists math/rand functions that build explicitly
// seeded generators; every other exported function in math/rand and
// math/rand/v2 either uses the global source or harvests entropy.
var sourceConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 seeded constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer is the nondet check.
var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc: "flag wall-clock and global/unseeded randomness in simulator code\n\n" +
		"Simulator output must be a pure function of (workload, seed, config).\n" +
		"time.Now/Since/Until, package-level math/rand functions (the global\n" +
		"source), and crypto/rand are all non-deterministic inputs. Construct\n" +
		"generators with rand.New(rand.NewSource(seed)) from a config seed.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	var frontend []analysis.Marker
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		frontend = append(frontend, analysis.FileMarkers(f, "frontend")...)
	}
	if len(frontend) > 0 {
		if isCmdPackage(pass.PkgPath) {
			return nil // declared frontend: may read host state for UX
		}
		for _, m := range frontend {
			pass.Reportf(m.Pos, "//atlint:frontend outside cmd/: only command-line frontends may read host state; simulator code stays deterministic")
		}
		// Fall through: the bogus exemption does not stop the check.
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "crypto/rand" {
				pass.Reportf(imp.Pos(), "crypto/rand in simulator code: entropy breaks run reproducibility; derive randomness from the config seed")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, obj := pkgLevelUse(pass, sel)
			if obj == nil {
				return true
			}
			switch pkgPath {
			case "time":
				if wallClock[obj.Name()] {
					pass.Reportf(sel.Pos(), "time.%s in simulator code: wall-clock reads make runs irreproducible; thread simulated time or a config seed instead", obj.Name())
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := obj.Type().(*types.Signature); isFunc && !sourceConstructors[obj.Name()] {
					pass.Reportf(sel.Pos(), "%s.%s uses the global random source: construct a seeded *rand.Rand from the config seed instead", pathBase(pkgPath), obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isCmdPackage reports whether the import path is under a cmd/ tree.
func isCmdPackage(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// pkgLevelUse resolves sel to (package path, object) when sel is a
// qualified identifier like time.Now; otherwise ("", nil).
func pkgLevelUse(pass *analysis.Pass, sel *ast.SelectorExpr) (string, types.Object) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", nil
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", nil
	}
	return pn.Imported().Path(), pass.TypesInfo.Uses[sel.Sel]
}

func pathBase(p string) string {
	// Keep version-suffixed paths readable: math/rand/v2 -> rand/v2.
	if strings.HasSuffix(p, "/v2") {
		p = strings.TrimSuffix(p, "/v2")
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			p = p[i+1:]
		}
		return p + "/v2"
	}
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
