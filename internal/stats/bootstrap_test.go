package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary wrong")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Stddev != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	check := func(raw []float64) bool {
		var x []float64
		for _, v := range raw {
			// Keep magnitudes where sums cannot overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e300 {
				x = append(x, math.Mod(v, 1e12))
			}
		}
		if len(x) == 0 {
			return true
		}
		s := Summarize(x)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P5 <= s.Median && s.Median <= s.P95
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{10, 20, 30, 40}
	if Quantile(x, 0) != 10 || Quantile(x, 1) != 40 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(x, 0.5); got != 25 {
		t.Errorf("median = %v, want 25 (interpolated)", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	check := func(raw []float64, qa, qb float64) bool {
		var x []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				x = append(x, v)
			}
		}
		if len(x) == 0 {
			return true
		}
		sort.Float64s(x)
		qa = math.Abs(qa)
		qb = math.Abs(qb)
		qa -= math.Floor(qa)
		qb -= math.Floor(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(x, qa) <= Quantile(x, qb)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCoversTrueCorrelation(t *testing.T) {
	// Strongly correlated data: the CI should be tight, positive, and
	// contain the point estimate.
	rng := rand.New(rand.NewSource(12))
	var x, y []float64
	for i := 0; i < 120; i++ {
		v := rng.NormFloat64()
		x = append(x, v)
		y = append(y, 2*v+0.3*rng.NormFloat64())
	}
	point, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := BootstrapCorrelation(x, y, Pearson, 400, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= point && point <= ci.Hi) {
		t.Errorf("CI [%v, %v] excludes point %v", ci.Lo, ci.Hi, point)
	}
	if ci.Lo < 0.8 {
		t.Errorf("CI lower bound %v too loose for near-perfect correlation", ci.Lo)
	}
}

func TestBootstrapWideForNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var x, y []float64
	for i := 0; i < 30; i++ {
		x = append(x, rng.NormFloat64())
		y = append(y, rng.NormFloat64())
	}
	ci, err := BootstrapCorrelation(x, y, Spearman, 400, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Hi-ci.Lo < 0.2 {
		t.Errorf("CI [%v, %v] implausibly tight for independent noise", ci.Lo, ci.Hi)
	}
	if !(ci.Lo < 0 && ci.Hi > 0) {
		t.Logf("note: CI [%v, %v] excludes 0 (can happen by chance)", ci.Lo, ci.Hi)
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	if _, err := BootstrapCorrelation([]float64{1, 2}, []float64{1, 2}, Pearson, 100, 0.05, 1); err == nil {
		t.Error("tiny sample accepted")
	}
	// Constant x: every resample degenerate.
	x := []float64{1, 1, 1, 1, 1}
	y := []float64{1, 2, 3, 4, 5}
	if _, err := BootstrapCorrelation(x, y, Pearson, 100, 0.05, 1); err == nil {
		t.Error("all-degenerate resamples accepted")
	}
}
