package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPearsonPerfectLinear(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 2x + 1
	r, err := Pearson(x, y)
	if err != nil || !close(r, 1) {
		t.Errorf("Pearson = %v, %v; want 1", r, err)
	}
	yn := []float64{11, 9, 7, 5, 3}
	r, _ = Pearson(x, yn)
	if !close(r, -1) {
		t.Errorf("negative slope Pearson = %v, want -1", r)
	}
}

func TestPearsonKnownValue(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 1, 4, 3, 5}
	r, err := Pearson(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: cov = 8/... check via definition.
	if r < 0.7 || r > 0.9 {
		t.Errorf("Pearson = %v, want ~0.8", r)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if _, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPearsonBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r, err := Pearson(x, y)
		if err != nil {
			return true // degenerate draws are fine
		}
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRanksNoTies(t *testing.T) {
	got := Ranks([]float64{30, 10, 20})
	want := []float64{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Ranks always sum to n(n+1)/2, ties or not.
	check := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		s := 0.0
		for _, r := range Ranks(vals) {
			s += r
		}
		n := float64(len(vals))
		return math.Abs(s-n*(n+1)/2) < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform gives Spearman exactly 1.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // nonlinear but monotone
	}
	r, err := Spearman(x, y)
	if err != nil || !close(r, 1) {
		t.Errorf("Spearman = %v, %v; want 1", r, err)
	}
}

func TestSpearmanMonotoneProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 5
		x := make([]float64, n)
		y := make([]float64, n)
		seen := map[float64]bool{}
		for i := range x {
			v := rng.NormFloat64()
			for seen[v] {
				v = rng.NormFloat64()
			}
			seen[v] = true
			x[i] = v
			y[i] = v*v*v + 5 // strictly monotone transform
		}
		r, err := Spearman(x, y)
		return err == nil && close(r, 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpearmanAntitone(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{10, 8, 5, 1}
	r, _ := Spearman(x, y)
	if !close(r, -1) {
		t.Errorf("Spearman = %v, want -1", r)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	b0, b1, adj, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !close(b0, 1) || !close(b1, 2) || !close(adj, 1) {
		t.Errorf("fit = %v + %v x, adjR2 %v", b0, b1, adj)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, -0.5+0.13*xi+0.01*rng.NormFloat64())
	}
	b0, b1, adj, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b0+0.5) > 0.01 || math.Abs(b1-0.13) > 0.01 {
		t.Errorf("fit = %v + %v x", b0, b1)
	}
	if adj < 0.95 {
		t.Errorf("adjR2 = %v on near-perfect data", adj)
	}
}

func TestAdjR2BelowR2(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var x, y []float64
	for i := 0; i < 20; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i)+5*rng.NormFloat64())
	}
	r, err := OLS(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if r.AdjR2 > r.R2 {
		t.Errorf("adjR2 %v > R2 %v", r.AdjR2, r.R2)
	}
}

func TestOLSMultipleRegressors(t *testing.T) {
	// y = 2 + 3a - 4b, exactly.
	rng := rand.New(rand.NewSource(17))
	var a, b, y []float64
	for i := 0; i < 50; i++ {
		ai, bi := rng.NormFloat64(), rng.NormFloat64()
		a = append(a, ai)
		b = append(b, bi)
		y = append(y, 2+3*ai-4*bi)
	}
	r, err := OLS(y, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !close(r.Coef[0], 2) || !close(r.Coef[1], 3) || !close(r.Coef[2], -4) {
		t.Errorf("coef = %v", r.Coef)
	}
}

func TestOLSResidualOrthogonality(t *testing.T) {
	// Property: OLS residuals are orthogonal to each regressor and sum
	// to ~zero (because of the intercept).
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = 1 + 2*x[i] + rng.NormFloat64()
		}
		r, err := OLS(y, x)
		if err != nil {
			return true
		}
		var sumRes, dotX, scale float64
		for i := range x {
			res := y[i] - r.Coef[0] - r.Coef[1]*x[i]
			sumRes += res
			dotX += res * x[i]
			scale += math.Abs(y[i])
		}
		tol := 1e-7 * (scale + 1)
		return math.Abs(sumRes) < tol && math.Abs(dotX) < tol
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOLSDegenerate(t *testing.T) {
	if _, err := OLS([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	// Collinear regressors.
	x := []float64{1, 2, 3, 4, 5}
	x2 := []float64{2, 4, 6, 8, 10}
	y := []float64{1, 2, 3, 4, 5}
	if _, err := OLS(y, x, x2); err == nil {
		t.Error("collinear regressors accepted")
	}
}
