package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N               int
	Mean, Stddev    float64
	Min, Max        float64
	Median, P5, P95 float64
}

// Summarize computes descriptive statistics. It returns a zero Summary
// for an empty sample.
func Summarize(x []float64) Summary {
	if len(x) == 0 {
		return Summary{}
	}
	s := Summary{N: len(x), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range x {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(len(x))
	for _, v := range x {
		s.Stddev += (v - s.Mean) * (v - s.Mean)
	}
	if len(x) > 1 {
		s.Stddev = math.Sqrt(s.Stddev / float64(len(x)-1))
	}
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P5 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample, with linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// BootstrapCorrelation estimates a confidence interval for a correlation
// statistic (Pearson or Spearman, passed as fn) by the percentile
// bootstrap: resample (x, y) pairs with replacement `resamples` times and
// take the (alpha/2, 1-alpha/2) percentiles of the statistic. seed fixes
// the resampling.
func BootstrapCorrelation(x, y []float64, fn func(a, b []float64) (float64, error),
	resamples int, alpha float64, seed int64) (Interval, error) {
	if len(x) != len(y) || len(x) < 3 {
		return Interval{}, ErrDegenerate
	}
	rng := rand.New(rand.NewSource(seed))
	n := len(x)
	bx := make([]float64, n)
	by := make([]float64, n)
	vals := make([]float64, 0, resamples)
	for r := 0; r < resamples; r++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i], by[i] = x[j], y[j]
		}
		v, err := fn(bx, by)
		if err != nil {
			continue // degenerate resample; skip
		}
		vals = append(vals, v)
	}
	if len(vals) < resamples/2 {
		return Interval{}, ErrDegenerate
	}
	sort.Float64s(vals)
	return Interval{
		Lo: Quantile(vals, alpha/2),
		Hi: Quantile(vals, 1-alpha/2),
	}, nil
}
