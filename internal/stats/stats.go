// Package stats provides the small statistical toolkit the paper's
// analysis uses: Pearson and (tie-aware) Spearman correlation for Table V,
// and ordinary least squares with adjusted R² for the log-footprint
// regressions of Table IV.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerate is returned when an input has no variance (or too few
// points) for the requested statistic.
var ErrDegenerate = errors.New("stats: degenerate input")

func mean(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, ErrDegenerate
	}
	mx, my := mean(x), mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, ErrDegenerate
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Ranks returns the (1-based) fractional ranks of x, assigning tied values
// the average of the ranks they span — the standard treatment for
// Spearman's rank correlation.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns Spearman's rank correlation coefficient of the paired
// samples x and y, handling ties by average ranks.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	return Pearson(Ranks(x), Ranks(y))
}

// OLSResult holds an ordinary-least-squares fit.
type OLSResult struct {
	// Coef holds the intercept followed by one coefficient per regressor.
	Coef []float64
	// R2 is the coefficient of determination.
	R2 float64
	// AdjR2 is R2 adjusted for the number of regressors.
	AdjR2 float64
	// N is the sample count.
	N int
}

// OLS fits y = b0 + b1*xs[0] + b2*xs[1] + ... by least squares.
func OLS(y []float64, xs ...[]float64) (OLSResult, error) {
	n := len(y)
	k := len(xs) + 1 // including intercept
	if n < k+1 {
		return OLSResult{}, ErrDegenerate
	}
	for _, x := range xs {
		if len(x) != n {
			return OLSResult{}, fmt.Errorf("stats: regressor length %d != %d", len(x), n)
		}
	}
	// Build the design matrix row accessor: X[i][0] = 1.
	x := func(i, j int) float64 {
		if j == 0 {
			return 1
		}
		return xs[j-1][i]
	}
	// Normal equations: (X'X) b = X'y.
	a := make([][]float64, k)
	b := make([]float64, k)
	for r := 0; r < k; r++ {
		a[r] = make([]float64, k)
		for c := 0; c < k; c++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += x(i, r) * x(i, c)
			}
			a[r][c] = s
		}
		s := 0.0
		for i := 0; i < n; i++ {
			s += x(i, r) * y[i]
		}
		b[r] = s
	}
	coef, err := solve(a, b)
	if err != nil {
		return OLSResult{}, err
	}
	// R² from residuals.
	my := mean(y)
	var ssRes, ssTot float64
	for i := 0; i < n; i++ {
		pred := 0.0
		for j := 0; j < k; j++ {
			pred += coef[j] * x(i, j)
		}
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	if ssTot == 0 {
		return OLSResult{}, ErrDegenerate
	}
	r2 := 1 - ssRes/ssTot
	adj := 1 - (1-r2)*float64(n-1)/float64(n-k)
	return OLSResult{Coef: coef, R2: r2, AdjR2: adj, N: n}, nil
}

// LinearFit fits y = intercept + slope*x, the Table IV model.
func LinearFit(x, y []float64) (intercept, slope, adjR2 float64, err error) {
	r, err := OLS(y, x)
	if err != nil {
		return 0, 0, 0, err
	}
	return r.Coef[0], r.Coef[1], r.AdjR2, nil
}

// solve performs Gaussian elimination with partial pivoting on a small
// dense system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-12 {
			return nil, ErrDegenerate
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	out := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * out[c]
		}
		out[r] = s / a[r][r]
	}
	return out, nil
}
