package scheme

import (
	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/walker"
)

// victimaScheme models Victima (Kanellopoulos et al.): the underutilized
// L2/L3 capacity caches *PTE blocks* — whole last-level page-table pages
// — so a TLB miss whose block is cached skips the upper radix levels and
// costs a single leaf PTE load. The model keeps a set-associative
// PTE-block directory mapping a VA 2 MB block (one PT page's reach) to
// the physical PT page holding its leaves; the leaf load itself travels
// through the real L2/L3 model, so block-cached PT pages compete for
// SRAM capacity with data exactly as in the paper. Insertion is
// TLB-pressure-driven: only completed 4 KB walks the paging-structure
// caches could not already short-circuit to one load install their
// block, so a TLB-friendly workload never pollutes the cache.
type victimaScheme struct{}

// Victima directory defaults: 16 K blocks tracks 32 GB of 4 KB-mapped
// reach at 8-way associativity.
const (
	victimaDefaultEntries = 16384
	victimaWays           = 8
	// victimaInsertMinLoads gates insertion on walk pressure: a walk the
	// PSCs already served in one load gains nothing from block caching.
	victimaInsertMinLoads = 2
)

func (victimaScheme) Name() string { return "victima" }

func (victimaScheme) Doc() string {
	return "Victima-style PTE blocks cached in L2/L3 with pressure-driven insertion"
}

func (victimaScheme) Build(d Deps) (Instance, error) {
	entries := d.Cfg.SchemeParams.VictimaEntries
	if entries == 0 {
		entries = victimaDefaultEntries
	}
	if entries < 0 {
		return nil, errf("victima: VictimaEntries must be >= 0, got %d", entries)
	}
	return &victima{
		phys:   d.Phys,
		caches: d.Caches,
		psc:    mmucache.NewWithDepth(d.Cfg.PSC, d.Cfg.PagingLevels),
		dir:    newAssocDir(entries, victimaWays),
	}, nil
}

func (victimaScheme) Events() []perf.Event {
	return []perf.Event{perf.SchemeBlockHits, perf.SchemeBlockMisses}
}

func (victimaScheme) Identities() []refute.Identity {
	blockProbes := refute.Sum(refute.Ev("scheme_walk_loads.block_hit"),
		refute.Ev("scheme_walk_loads.block_miss"))
	return []refute.Identity{
		{
			Name: "victima_probe_conservation",
			Doc: "every accounted walk probes the PTE-block directory exactly once " +
				"(fault retries re-probe like they re-load, prefetch walks count in neither domain)",
			L: blockProbes, Rel: refute.EQ,
			R: refute.Sum(refute.Ev("dtlb_load_misses.miss_causes_a_walk"),
				refute.Ev("dtlb_store_misses.miss_causes_a_walk"),
				refute.Ev("faults")),
			Guards: []refute.Expr{blockProbes},
		},
	}
}

// victima is one machine's Victima walk state.
type victima struct {
	phys   *mem.Phys
	caches *cache.Hierarchy
	psc    *mmucache.PSC
	dir    *assocDir

	trk   *telemetry.Track
	clock func() uint64
	pt    path
}

// Walk implements walker.Engine: probe the PTE-block directory first; a
// hit short-circuits to the single leaf load, a miss takes the normal
// radix walk (PSC entry point included) and, under pressure, installs
// the block.
//
//atlint:hotpath
func (v *victima) Walk(va arch.VAddr, cr3 arch.PAddr, budget uint64) walker.Result {
	var r walker.Result
	traceBegin(v.trk, v.clock)
	r.BlockProbed = true
	block := uint64(va) >> arch.PageShift2M
	if base, ok := v.dir.lookup(block); ok {
		r.BlockHit = true
		a := pagetable.EntryAddr(base, arch.LevelPT, va)
		lat, loc := v.caches.Access(a)
		r.Cycles = lat + stepOverhead
		r.Loads, r.GuestLoads = 1, 1
		r.Locs[loc]++
		r.LeafLoc = loc
		if v.trk != nil {
			v.trk.Slice(levelName(arch.LevelPT), lat+stepOverhead, traceLocArg, locName(loc))
		}
		if r.Cycles > budget {
			traceEnd(v.trk, &r)
			return r
		}
		r.Completed = true
		// The cached block located the PT page; the leaf entry itself may
		// still be non-present (a not-yet-faulted page sharing the block)
		// — that is a page fault, and the post-fault retry hits the block
		// again with the entry now filled in.
		if e := pagetable.PTE(v.phys.Read64(a)); e.Present() && e.IsLeaf(arch.LevelPT) {
			r.OK, r.Frame, r.Size = true, e.Frame(), arch.Page4K
		}
		traceEnd(v.trk, &r)
		return r
	}
	level, base := v.psc.LookupDeepest(va, arch.LevelPT, cr3)
	r.GuestPSCHit = level != v.psc.Top()
	v.pt.resolve(v.phys, va, level, base)
	chargePath(&v.pt, v.caches, v.psc, va, budget, nil, &r, v.trk, true)
	if r.OK && v.pt.leaf == arch.LevelPT && r.Loads >= victimaInsertMinLoads {
		// The walk's last entry address sits inside the leaf PT page;
		// its 4 KB base is the block payload.
		ptPage := arch.PAddr(arch.AlignDown(uint64(v.pt.ea[v.pt.steps-1]), arch.Page4K.Bytes()))
		v.dir.insert(block, ptPage)
	}
	traceEnd(v.trk, &r)
	return r
}

// Flush implements walker.Engine: the directory is keyed by virtual
// block, so a context switch drops it along with the PSCs.
func (v *victima) Flush() {
	v.psc.Flush()
	v.dir.flush()
}

// InvalidateBlock implements walker.Engine: promotion replaces the PT
// page with a 2 MB leaf, so the covering block entry (and PDE-cache
// entry) must go.
func (v *victima) InvalidateBlock(va arch.VAddr) {
	v.psc.InvalidatePrefix(arch.LevelPD, va)
	v.dir.invalidate(uint64(va) >> arch.PageShift2M)
}

// Reset implements Instance.
func (v *victima) Reset() {
	v.psc.Reset()
	v.dir.reset()
	v.trk, v.clock = nil, nil
}

// EnableTrace implements Instance.
func (v *victima) EnableTrace(p *telemetry.Process, clock func() uint64) {
	v.trk, v.clock = p.Track("walker"), clock
}

// BlockDirLive returns the number of valid PTE-block directory entries
// (test/debug helper).
func (v *victima) BlockDirLive() int { return v.dir.live() }
