// Package scheme defines the pluggable translation-scheme seam: the
// interface a translation-reach proposal implements to slot in under the
// machine in place of the hard-wired radix walker, plus the registry
// machine construction selects a backend from by name
// (arch.SystemConfig.Scheme).
//
// A scheme owns everything between the TLBs and physical memory: it
// builds its per-machine walk state (paging-structure caches plus
// whatever structure the proposal adds), resolves each TLB miss, defines
// which flush scopes drop which structures, and declares the perf events
// and refute identities its accounting is held to. Four backends ship:
//
//   - radix: the existing walker.Walker behind the seam, byte-identical
//     to the pre-scheme machine (the flatgold goldens prove it); with
//     NUMA.Nodes > 1 it becomes the no-replication NUMA baseline whose
//     remote walks Mitosis exists to remove.
//   - victima: Victima-style PTE blocks cached in the L2/L3 data
//     hierarchy with TLB-pressure-driven insertion (Kanellopoulos et
//     al., PAPERS.md).
//   - mitosis: per-node page-table replicas with replica-local walks
//     (Achermann et al., PAPERS.md) over the NUMA memory model.
//   - dramcache: a Patil-style die-stacked DRAM cache under the walker
//     with a hit/miss latency split.
package scheme

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/walker"
)

// Deps is what a scheme gets to build its per-machine state from: the
// validated system configuration and the machine's physical memory and
// data-cache hierarchy (shared with demand accesses, so scheme-cached
// translation structures compete with data exactly like PTE loads do).
type Deps struct {
	Cfg    *arch.SystemConfig
	Phys   *mem.Phys
	Caches *cache.Hierarchy
}

// Instance is one machine's worth of scheme state. It is the machine's
// walker.Engine plus the lifecycle hooks machine pooling and tracing
// need. Flush scopes follow the engine contract: Flush is the context
// switch (address-space-keyed structures drop; physically-keyed ones
// may survive, like data caches), InvalidateBlock the promotion
// shootdown, and Reset the pooled-machine rewind to as-constructed
// state (clocks included).
type Instance interface {
	walker.Engine
	// Reset returns the instance to its just-constructed state so a
	// renewed machine is byte-identical to a fresh one.
	Reset()
	// EnableTrace attaches the instance's timeline track(s) under the
	// machine's process; clock supplies the simulated-cycle clock.
	EnableTrace(p *telemetry.Process, clock func() uint64)
}

// Migratory is implemented by instances that model a multi-node NUMA
// machine. The machine drives the deterministic migration schedule
// through it: SetNode is the scheme's half of a thread migration (the
// machine flushes the TLBs; the scheme flushes its per-core walk
// caches and retargets walks to the new node).
type Migratory interface {
	Nodes() int
	SetNode(n int)
}

// Scheme is one registered translation-scheme backend.
type Scheme interface {
	// Name is the registry key (the -scheme flag value).
	Name() string
	// Doc is a one-line description for listings.
	Doc() string
	// Build constructs per-machine state. The config is validated.
	Build(d Deps) (Instance, error)
	// Events lists the perf events this scheme populates beyond the
	// baseline walker events.
	Events() []perf.Event
	// Identities lists the refute identities bounding this scheme's
	// accounting. Each must be guarded so it holds (or guards out) on
	// units run under any other scheme: the schemes experiment checks
	// one merged registry across the whole matrix.
	Identities() []refute.Identity
}

// schemes is the registry, in declaration order (stable for Names and
// for merged identity ordering).
var schemes = []Scheme{
	radixScheme{},
	victimaScheme{},
	mitosisScheme{},
	dramCacheScheme{},
}

// errf builds a package-prefixed construction error.
func errf(format string, args ...any) error {
	return fmt.Errorf("scheme: "+format, args...)
}

// ByName resolves a scheme name; the empty string means radix.
func ByName(name string) (Scheme, error) {
	if name == "" {
		name = "radix"
	}
	for _, s := range schemes {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scheme: unknown scheme %q (have %v)", name, Names())
}

// Names returns the registered scheme names in registry order.
func Names() []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = s.Name()
	}
	return out
}

// AllIdentities returns every registered scheme's identities in registry
// order — the identity superset the schemes experiment appends to the
// base registry so one checker covers the whole matrix.
func AllIdentities() []refute.Identity {
	var out []refute.Identity
	for _, s := range schemes {
		out = append(out, s.Identities()...)
	}
	return out
}

// AllEvents returns every registered scheme's extra events in registry
// order (CLI listings).
func AllEvents() []perf.Event {
	var out []perf.Event
	for _, s := range schemes {
		out = append(out, s.Events()...)
	}
	return out
}
