package scheme

import (
	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/walker"
)

// dramCacheScheme models a Patil-style die-stacked DRAM cache under the
// SRAM hierarchy: a PTE load that misses L1/L2/L3 probes the stacked
// die's tag array and, on a hit, is served at the stacked-DRAM latency
// instead of the off-package DRAM latency; a miss pays a tag-check
// penalty on top of the off-package access and fills the block. The
// cache is physically indexed (a tag array over 4 KB blocks), so it
// survives context switches like the data caches do — only the radix
// walk's SRAM-missing loads are repriced, which isolates the stacked
// die's effect on translation from its effect on data (the paper's
// walker-loads decomposition makes that split measurable).
type dramCacheScheme struct{}

// Die-stacked DRAM cache defaults, loosely HBM-class against the
// baseline DRAMLatency of 210 cycles.
const (
	dcDefaultBytes       = 1 << 30 // 1 GB stacked die
	dcWays               = 16
	dcDefaultHitLatency  = 60 // stacked-die access, cycles
	dcDefaultMissPenalty = 25 // tag check before going off-package
)

func (dramCacheScheme) Name() string { return "dramcache" }

func (dramCacheScheme) Doc() string {
	return "die-stacked DRAM cache under the walker with a hit/miss latency split"
}

func (dramCacheScheme) Build(d Deps) (Instance, error) {
	bytes := d.Cfg.SchemeParams.DRAMCacheBytes
	if bytes == 0 {
		bytes = dcDefaultBytes
	}
	if bytes < arch.Page4K.Bytes() {
		return nil, errf("dramcache: DRAMCacheBytes must be >= 4096, got %d", bytes)
	}
	hitLat := d.Cfg.SchemeParams.DRAMCacheHitLatency
	if hitLat == 0 {
		hitLat = dcDefaultHitLatency
	}
	if hitLat >= d.Cfg.DRAMLatency {
		return nil, errf("dramcache: hit latency %d must beat DRAMLatency %d",
			hitLat, d.Cfg.DRAMLatency)
	}
	missPen := d.Cfg.SchemeParams.DRAMCacheMissPenalty
	if missPen == 0 {
		missPen = dcDefaultMissPenalty
	}
	return &dramCache{
		phys:    d.Phys,
		caches:  d.Caches,
		psc:     mmucache.NewWithDepth(d.Cfg.PSC, d.Cfg.PagingLevels),
		dir:     newAssocDir(int(bytes>>arch.PageShift4K), dcWays),
		hitLat:  hitLat,
		missPen: missPen,
		dram:    d.Cfg.DRAMLatency,
	}, nil
}

func (dramCacheScheme) Events() []perf.Event {
	return []perf.Event{perf.DRAMCacheHits, perf.DRAMCacheMisses}
}

func (dramCacheScheme) Identities() []refute.Identity {
	dcProbes := refute.Sum(refute.Ev("dramcache_hits"), refute.Ev("dramcache_misses"))
	return []refute.Identity{
		{
			Name: "dramcache_mem_partition",
			Doc: "every SRAM-missing walker load probes the stacked die exactly once, " +
				"so hits + misses equals the walker's memory-served loads",
			L: dcProbes, Rel: refute.EQ,
			R:      refute.Ev("page_walker_loads.dtlb_memory"),
			Guards: []refute.Expr{dcProbes},
		},
		{
			Name: "dramcache_hits_le_walker_loads",
			Doc: "stacked-die hits are a subset of walker loads " +
				"(trivially 0 <= loads under every other scheme)",
			L: refute.Ev("dramcache_hits"), Rel: refute.LE,
			R: refute.Sum(refute.Ev("page_walker_loads.dtlb_l1"),
				refute.Ev("page_walker_loads.dtlb_l2"),
				refute.Ev("page_walker_loads.dtlb_l3"),
				refute.Ev("page_walker_loads.dtlb_memory")),
		},
	}
}

// dramCache is one machine's die-stacked-cache walk state.
type dramCache struct {
	phys   *mem.Phys
	caches *cache.Hierarchy
	psc    *mmucache.PSC
	dir    *assocDir // PA 4 KB-block tag array (payload unused)

	hitLat  uint64 // stacked-die access latency
	missPen uint64 // tag-check penalty added to an off-package access
	dram    uint64 // cfg.DRAMLatency, the cost Access charged for HitMem

	// dcHits / dcMisses are per-walk probe scratch (accumulated by
	// adjustLoad, copied into the Result after charging).
	//
	//atlint:noreset per-walk scratch: Walk zeroes both before accumulating, so nothing survives into the next walk
	dcHits, dcMisses uint16

	trk   *telemetry.Track
	clock func() uint64
	pt    path
}

// adjustLoad implements loadAdjuster: SRAM hits are untouched; an
// SRAM-missing load probes the stacked die's tags. Hierarchy Access
// charged exactly dram for a HitMem load, so a tag hit reprices it to
// hitLat with a hitLat-dram delta and a miss adds the tag-check penalty
// and fills the block.
func (c *dramCache) adjustLoad(pa arch.PAddr, loc cache.HitLoc) int64 {
	if loc != cache.HitMem {
		return 0
	}
	block := uint64(pa) >> arch.PageShift4K
	if _, ok := c.dir.lookup(block); ok {
		c.dcHits++
		return int64(c.hitLat) - int64(c.dram)
	}
	c.dcMisses++
	c.dir.insert(block, 0)
	return int64(c.missPen)
}

// Walk implements walker.Engine: a standard radix walk whose
// SRAM-missing loads are repriced through the stacked die.
//
//atlint:hotpath
func (c *dramCache) Walk(va arch.VAddr, cr3 arch.PAddr, budget uint64) walker.Result {
	var r walker.Result
	traceBegin(c.trk, c.clock)
	c.dcHits, c.dcMisses = 0, 0
	level, base := c.psc.LookupDeepest(va, arch.LevelPT, cr3)
	r.GuestPSCHit = level != c.psc.Top()
	c.pt.resolve(c.phys, va, level, base)
	chargePath(&c.pt, c.caches, c.psc, va, budget, c, &r, c.trk, true)
	r.DCHits, r.DCMisses = c.dcHits, c.dcMisses
	traceEnd(c.trk, &r)
	return r
}

// Flush implements walker.Engine: only the VA-keyed PSCs drop on a
// context switch — the stacked die is physically indexed and keeps its
// contents, exactly like the SRAM data caches above it.
func (c *dramCache) Flush() { c.psc.Flush() }

// InvalidateBlock implements walker.Engine: promotion rewrites PTEs in
// place, so only the PDE-cache entry is stale — physical blocks in the
// stacked die stay valid.
func (c *dramCache) InvalidateBlock(va arch.VAddr) {
	c.psc.InvalidatePrefix(arch.LevelPD, va)
}

// Reset implements Instance.
func (c *dramCache) Reset() {
	c.psc.Reset()
	c.dir.reset()
	c.trk, c.clock = nil, nil
}

// EnableTrace implements Instance.
func (c *dramCache) EnableTrace(p *telemetry.Process, clock func() uint64) {
	c.trk, c.clock = p.Track("walker"), clock
}

// TagsLive returns the number of valid stacked-die tag entries
// (test/debug helper).
func (c *dramCache) TagsLive() int { return c.dir.live() }
