package scheme

import (
	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/walker"
)

// mitosisScheme models Mitosis (Achermann et al.): on a NUMA machine
// every node keeps its own replica of the page table, so a page walk
// never crosses the interconnect — walker PTE loads stay node-local no
// matter where the thread runs. The model gives each node a lazily
// built replica table whose pages are allocated from that node's memory
// region; a walk on node n descends the local replica, and a replica
// miss falls back to the master table (homed on node 0, paying the
// remote-DRAM penalty per off-node PTE load that reaches memory) before
// the OS-side sync installs the translation into the replica — so the
// remote cost appears exactly once per (node, page), the cost Mitosis's
// eager replication amortizes.
//
// The same walk loop with replication off is the plain NUMA baseline
// the radix scheme uses when NUMA.Nodes > 1: every walk targets the
// master table and repeatedly pays the remote penalty from non-zero
// nodes. Comparing the two isolates the replication benefit.
type mitosisScheme struct{}

func (mitosisScheme) Name() string { return "mitosis" }

func (mitosisScheme) Doc() string {
	return "Mitosis-style per-node page-table replicas with replica-local walks"
}

func (mitosisScheme) Build(d Deps) (Instance, error) {
	if d.Cfg.NUMA.EffectiveNodes() < 2 {
		return nil, errf("mitosis requires NUMA.Nodes >= 2 (got %d); pass -numa-nodes", d.Cfg.NUMA.Nodes)
	}
	return newNUMAWalker(d, mmucache.NewWithDepth(d.Cfg.PSC, d.Cfg.PagingLevels), true), nil
}

func (mitosisScheme) Events() []perf.Event {
	return []perf.Event{perf.ReplicaLocalWalks, perf.ReplicaRemoteWalks, perf.NUMAMigrations}
}

func (mitosisScheme) Identities() []refute.Identity {
	replicaWalks := refute.Sum(refute.Ev("replica_local_walks"), refute.Ev("replica_remote_walks"))
	return []refute.Identity{
		{
			Name: "replica_walk_partition",
			Doc: "every completed walk is classified replica-local or replica-remote, " +
				"counted exactly beside walk_completed",
			L: replicaWalks, Rel: refute.EQ,
			R: refute.Sum(refute.Ev("dtlb_load_misses.walk_completed"),
				refute.Ev("dtlb_store_misses.walk_completed")),
			Guards: []refute.Expr{replicaWalks},
		},
	}
}

// numaWalker is the NUMA-aware radix walk engine, shared by the plain
// NUMA baseline (replicate false) and Mitosis (replicate true).
type numaWalker struct {
	phys   *mem.Phys
	caches *cache.Hierarchy
	psc    *mmucache.PSC

	nodes     int
	node      int // current executing node (SetNode)
	remoteLat uint64
	levels    int

	// replicate enables per-node page-table replicas; replicas[n] is
	// node n's table, nil until the first walk on that node installs a
	// translation (node 0 walks the master directly, so replicas[0]
	// stays nil).
	replicate bool
	replicas  []*pagetable.Table

	// sawRemote is per-walk scratch: set by adjustLoad when any PTE
	// load was homed off the walking node.
	//
	//atlint:noreset per-walk scratch: Walk clears it on entry before any load is charged
	sawRemote bool

	trk   *telemetry.Track
	clock func() uint64
	pt    path // primary descent scratch
	mpt   path // master-fallback descent scratch
}

func newNUMAWalker(d Deps, psc *mmucache.PSC, replicate bool) *numaWalker {
	n := d.Cfg.NUMA.EffectiveNodes()
	return &numaWalker{
		phys:      d.Phys,
		caches:    d.Caches,
		psc:       psc,
		nodes:     n,
		remoteLat: d.Cfg.NUMA.EffectiveRemoteLatency(),
		levels:    d.Cfg.PagingLevels,
		replicate: replicate,
		replicas:  make([]*pagetable.Table, n),
	}
}

// adjustLoad implements loadAdjuster: an off-node PTE load marks the
// walk remote, and pays the interconnect penalty when it reaches DRAM
// (SRAM hits are on-chip regardless of the line's home).
func (w *numaWalker) adjustLoad(pa arch.PAddr, loc cache.HitLoc) int64 {
	if w.phys.NodeOf(pa) != w.node {
		w.sawRemote = true
		if loc == cache.HitMem {
			return int64(w.remoteLat)
		}
	}
	return 0
}

// Walk implements walker.Engine.
//
//atlint:hotpath
func (w *numaWalker) Walk(va arch.VAddr, cr3 arch.PAddr, budget uint64) walker.Result {
	var r walker.Result
	traceBegin(w.trk, w.clock)
	w.sawRemote = false

	// Primary descent: the local replica when this node has one, the
	// master table otherwise — entered at the deepest PSC hit.
	root, onReplica := cr3, false
	if w.replicate && w.node != 0 {
		if rep := w.replicas[w.node]; rep != nil {
			root, onReplica = rep.Root(), true
		}
	}
	level, base := w.psc.LookupDeepest(va, arch.LevelPT, root)
	r.GuestPSCHit = level != w.psc.Top()
	w.pt.resolve(w.phys, va, level, base)

	if w.pt.ok || !onReplica {
		chargePath(&w.pt, w.caches, w.psc, va, budget, w, &r, w.trk, true)
		if r.OK && w.replicate && w.node != 0 && !onReplica {
			// A master-served walk on a non-zero node warms the replica
			// (the OS-side sync Mitosis performs off the critical path).
			w.installReplica(va, w.pt.frame, sizeAtLevel(w.pt.leaf))
		}
	} else {
		// Replica miss: charge the replica prefix the hardware read
		// before discovering the hole, then walk the master from its
		// root (the remote walk replication exists to avoid) and sync
		// the replica on success.
		if aborted := chargePath(&w.pt, w.caches, w.psc, va, budget, w, &r, w.trk, false); !aborted {
			w.mpt.resolve(w.phys, va, w.psc.Top(), cr3)
			chargePath(&w.mpt, w.caches, w.psc, va, budget, w, &r, w.trk, true)
			if r.OK {
				w.installReplica(va, w.mpt.frame, sizeAtLevel(w.mpt.leaf))
			}
		}
	}
	if w.replicate {
		if w.sawRemote {
			r.Replica = walker.ReplicaRemote
		} else {
			r.Replica = walker.ReplicaLocal
		}
	}
	traceEnd(w.trk, &r)
	return r
}

// installReplica maps (va -> frame) into the walking node's replica
// table, creating the table on first use. Replica table pages come from
// the node's own memory region, which is what makes subsequent walks
// node-local. Installation is OS work off the walk's critical path, so
// it charges nothing; failures (node out of memory) just leave future
// walks falling back to the master.
func (w *numaWalker) installReplica(va arch.VAddr, frame arch.PAddr, ps arch.PageSize) {
	rep := w.replicas[w.node]
	if rep == nil {
		t, err := pagetable.NewWithDepth(w.phys.OnNode(w.node), w.levels)
		if err != nil {
			return
		}
		rep = t
		w.replicas[w.node] = t
	}
	_ = rep.Map(arch.PageBase(va, ps), frame, ps)
}

// Flush implements walker.Engine: a context switch drops the PSCs and
// every replica — the replicas mirror the departing address space's
// table. Replica table pages are abandoned to the allocator's bump
// region until the next machine Reset (the model never context-switches
// inside a measured region).
func (w *numaWalker) Flush() {
	w.psc.Flush()
	for i := range w.replicas {
		w.replicas[i] = nil
	}
}

// InvalidateBlock implements walker.Engine: the promotion shootdown
// clears the PDE-cache entry and punches the covering PDE out of every
// replica, so the next walk on each node re-syncs the promoted 2 MB
// leaf from the master.
func (w *numaWalker) InvalidateBlock(va arch.VAddr) {
	w.psc.InvalidatePrefix(arch.LevelPD, va)
	for _, rep := range w.replicas {
		if rep != nil {
			w.clearPDE(rep, va)
		}
	}
}

// clearPDE zeroes the PD-level entry covering va in a replica table via
// raw physical writes (software shootdown; architecturally quiet).
func (w *numaWalker) clearPDE(t *pagetable.Table, va arch.VAddr) {
	base := t.Root()
	for level := t.Top(); level > arch.LevelPD; level-- {
		e := pagetable.PTE(w.phys.Read64(pagetable.EntryAddr(base, level, va)))
		if !e.Present() || e.IsLeaf(level) {
			return
		}
		base = e.Frame()
	}
	w.phys.Write64(pagetable.EntryAddr(base, arch.LevelPD, va), 0)
}

// Reset implements Instance.
func (w *numaWalker) Reset() {
	w.psc.Reset()
	for i := range w.replicas {
		w.replicas[i] = nil
	}
	w.node = 0
	w.trk, w.clock = nil, nil
}

// EnableTrace implements Instance.
func (w *numaWalker) EnableTrace(p *telemetry.Process, clock func() uint64) {
	w.trk, w.clock = p.Track("walker"), clock
}

// Nodes implements Migratory.
func (w *numaWalker) Nodes() int { return w.nodes }

// SetNode implements Migratory: the thread lands on node n with cold
// per-core walk caches (the machine flushes the TLBs; the PSCs flush
// here, clocks running like any other flush).
func (w *numaWalker) SetNode(n int) {
	n %= w.nodes
	if n == w.node {
		return
	}
	w.node = n
	w.psc.Flush()
}

// Node returns the current executing node (test/debug helper).
func (w *numaWalker) Node() int { return w.node }

// ReplicaLive reports whether node n has a materialized replica table
// (test/debug helper).
func (w *numaWalker) ReplicaLive(n int) bool { return w.replicas[n] != nil }
