package scheme

import (
	"atscale/internal/mmucache"
	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/walker"
)

// radixScheme is the default backend: the existing radix walker behind
// the scheme seam. On a UMA machine the instance is a zero-cost wrapper
// around walker.Walker — same walk loop, same PSCs, same trace track —
// so the flatgold goldens hold byte-identically. With NUMA.Nodes > 1 it
// becomes the no-replication NUMA baseline: walks always target the
// master page table (homed on node 0), paying the remote-DRAM penalty
// from every other node — exactly the cost Mitosis's replicas remove.
type radixScheme struct{}

func (radixScheme) Name() string { return "radix" }

func (radixScheme) Doc() string {
	return "x86-64 radix walker (default; NUMA baseline when Nodes > 1)"
}

func (radixScheme) Build(d Deps) (Instance, error) {
	psc := mmucache.NewWithDepth(d.Cfg.PSC, d.Cfg.PagingLevels)
	if d.Cfg.NUMA.EffectiveNodes() > 1 {
		return newNUMAWalker(d, psc, false), nil
	}
	return &radixInstance{Walker: walker.New(d.Phys, psc, d.Caches)}, nil
}

// Events: the radix scheme populates no scheme-family events; with
// NUMA.Nodes > 1 the machine's migration driver books numa.migrations.
func (radixScheme) Events() []perf.Event { return nil }

// Identities: the baseline's bounds are the base refute registry; the
// other schemes' guarded identities guard out on radix units because
// their counters stay zero.
func (radixScheme) Identities() []refute.Identity { return nil }

// radixInstance adapts walker.Walker to the Instance lifecycle.
type radixInstance struct {
	*walker.Walker
}

func (r *radixInstance) Reset() { r.Walker.Reset() }

// EnableTrace creates the same "walker" track, in the same order, as the
// pre-scheme machine did — timeline byte-identity depends on it.
func (r *radixInstance) EnableTrace(p *telemetry.Process, clock func() uint64) {
	r.SetTrace(p.Track("walker"), clock)
}
