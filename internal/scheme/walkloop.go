package scheme

import (
	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/mmucache"
	"atscale/internal/pagetable"
	"atscale/internal/telemetry"
	"atscale/internal/walker"
)

// stepOverhead is the fixed per-level cost of the walker state machine on
// top of the PTE load latency — the same constant walker.Walk charges, so
// scheme walks and built-in walks price identical paths identically.
const stepOverhead = 2

// maxSteps is the longest radix path (five-level paging, PML5 -> PT).
const maxSteps = 5

// path is one resolved radix descent: the entry address and level of
// every step, the frame each non-terminal step descended into, and the
// terminal outcome. Resolution uses raw physical reads (architecturally
// invisible), mirroring walker.Walk's single-pass structure; charging is
// a separate pass so schemes can reprice individual loads.
type path struct {
	ea     [maxSteps]arch.PAddr
	frames [maxSteps]arch.PAddr
	lvls   [maxSteps]arch.Level
	steps  int
	ok     bool
	frame  arch.PAddr
	leaf   arch.Level
}

// resolve fills p with the radix descent for va starting at (level,
// base). The descent ends at a present leaf (ok) or a non-present entry
// (fault at the last recorded step).
//
//atlint:hotpath
func (p *path) resolve(phys *mem.Phys, va arch.VAddr, level arch.Level, base arch.PAddr) {
	p.steps, p.ok = 0, false
	for {
		a := pagetable.EntryAddr(base, level, va)
		p.ea[p.steps], p.lvls[p.steps] = a, level
		p.steps++
		e := pagetable.PTE(phys.Read64(a))
		if !e.Present() {
			return
		}
		if e.IsLeaf(level) {
			p.ok, p.frame, p.leaf = true, e.Frame(), level
			return
		}
		p.frames[p.steps-1] = e.Frame()
		base = e.Frame()
		level--
	}
}

// sizeAtLevel maps a leaf level to its page size.
func sizeAtLevel(level arch.Level) arch.PageSize {
	switch level {
	case arch.LevelPT:
		return arch.Page4K
	case arch.LevelPD:
		return arch.Page2M
	case arch.LevelPDPT:
		return arch.Page1G
	}
	panic("scheme: no page size at level " + level.String())
}

// loadAdjuster reprices one performed PTE load: given its physical
// address and the cache level that served it, it returns a latency delta
// (negative for a faster-than-modelled path, e.g. a DRAM-cache hit).
// Per-walk accounting accumulates in the adjuster's own scratch fields,
// NOT through the Result pointer: passing the Result into this interface
// call would defeat escape analysis and heap-allocate every walk. A nil
// adjuster charges hierarchy latency unmodified, making chargePath
// equivalent to walker.Walk's charging pass.
type loadAdjuster interface {
	adjustLoad(pa arch.PAddr, loc cache.HitLoc) int64
}

// chargePath charges a resolved path's PTE loads through the cache
// hierarchy with walker.Walk's exact semantics: one Access per step plus
// stepOverhead, aborting after the load that first exceeds budget (that
// load still touched cache state), PSC inserts for every step the walk
// descended past, trace slices for performed loads only. It accumulates
// into r's load accounting (cycles continue from r.Cycles, so a walk may
// charge several partial paths against one budget) and reports whether
// the budget aborted the walk. With terminal set it also applies the
// path's terminal outcome — Completed, and OK/Frame/Size on a present
// leaf; a non-terminal call charges a partial descent (e.g. the replica
// prefix a Mitosis walk read before falling back to the master table).
//
//atlint:hotpath
func chargePath(p *path, caches *cache.Hierarchy, psc *mmucache.PSC, va arch.VAddr,
	budget uint64, adj loadAdjuster, r *walker.Result, trk *telemetry.Track,
	terminal bool) (aborted bool) {
	cycles := r.Cycles
	n := 0
	for i := 0; i < p.steps; i++ {
		lat, loc := caches.Access(p.ea[i])
		if adj != nil {
			if d := adj.adjustLoad(p.ea[i], loc); d != 0 {
				lat = uint64(int64(lat) + d)
			}
		}
		cycles += lat + stepOverhead
		n++
		r.Locs[loc]++
		r.LeafLoc = loc
		if trk != nil {
			trk.Slice(levelName(p.lvls[i]), lat+stepOverhead, traceLocArg, locName(loc))
		}
		if cycles > budget {
			break
		}
	}
	r.Cycles = cycles
	r.Loads += n
	r.GuestLoads += n
	for i := 0; i+1 < n; i++ {
		psc.Insert(p.lvls[i], va, p.frames[i])
	}
	if cycles > budget {
		return true // aborted: Completed stays false
	}
	if !terminal {
		return false
	}
	r.Completed = true
	if p.ok {
		r.OK = true
		r.Frame = p.frame
		r.Size = sizeAtLevel(p.leaf)
	}
	return false
}

// Trace names (constant strings so recording never allocates); spellings
// match the built-in walker's so scheme timelines read identically.
const (
	traceWalk    = "walk"
	traceLocArg  = "loc"
	traceOutcome = "outcome"
	outcomeOK    = "ok"
	outcomeFault = "fault"
	outcomeAbort = "aborted"
)

func levelName(l arch.Level) string {
	switch l {
	case arch.LevelPT:
		return "PT"
	case arch.LevelPD:
		return "PD"
	case arch.LevelPDPT:
		return "PDPT"
	case arch.LevelPML4:
		return "PML4"
	case arch.LevelPML5:
		return "PML5"
	}
	return "level?"
}

func locName(loc cache.HitLoc) string {
	switch loc {
	case cache.HitL1:
		return "L1"
	case cache.HitL2:
		return "L2"
	case cache.HitL3:
		return "L3"
	}
	return "DRAM"
}

// traceBegin / traceEnd bracket one walk span (nil-track safe; Sync is
// guarded so the clock closure is never called untraced).
func traceBegin(trk *telemetry.Track, clock func() uint64) {
	if trk != nil {
		trk.Sync(clock())
		trk.Begin(traceWalk)
	}
}

func traceEnd(trk *telemetry.Track, r *walker.Result) {
	switch {
	case !r.Completed:
		trk.EndArg(traceOutcome, outcomeAbort)
	case !r.OK:
		trk.EndArg(traceOutcome, outcomeFault)
	default:
		trk.EndArg(traceOutcome, outcomeOK)
	}
}

// assocDir is a deterministic set-associative directory keyed by an
// arbitrary uint64 block key with an arch.PAddr payload — the shared
// structure behind the Victima PTE-block directory (VA-block -> PT page)
// and the die-stacked DRAM cache's tag array (PA-block presence). LRU
// stamps use a local clock; stamp 0 marks an invalid way.
type assocDir struct {
	keys  []uint64
	base  []arch.PAddr
	stamp []uint64
	ways  int
	sets  uint64
	clock uint64
}

// newAssocDir builds a directory of at least `entries` ways total split
// into sets of `ways`. The set count is rounded up to keep geometry
// exact.
func newAssocDir(entries, ways int) *assocDir {
	if entries < ways {
		entries = ways
	}
	sets := uint64((entries + ways - 1) / ways)
	n := sets * uint64(ways)
	return &assocDir{
		keys:  make([]uint64, n),
		base:  make([]arch.PAddr, n),
		stamp: make([]uint64, n),
		ways:  ways,
		sets:  sets,
	}
}

// lookup finds key's way, refreshing its LRU stamp on hit.
func (d *assocDir) lookup(key uint64) (arch.PAddr, bool) {
	d.clock++
	s := (key % d.sets) * uint64(d.ways)
	for i := s; i < s+uint64(d.ways); i++ {
		if d.stamp[i] != 0 && d.keys[i] == key {
			d.stamp[i] = d.clock
			return d.base[i], true
		}
	}
	return 0, false
}

// insert installs (key, base), evicting the set's LRU way if needed.
func (d *assocDir) insert(key uint64, base arch.PAddr) {
	d.clock++
	s := (key % d.sets) * uint64(d.ways)
	victim, oldest := s, uint64(1)<<63
	for i := s; i < s+uint64(d.ways); i++ {
		if d.stamp[i] != 0 && d.keys[i] == key {
			d.base[i], d.stamp[i] = base, d.clock
			return
		}
		if d.stamp[i] < oldest {
			victim, oldest = i, d.stamp[i]
		}
	}
	d.keys[victim], d.base[victim], d.stamp[victim] = key, base, d.clock
}

// invalidate drops key's way if present.
func (d *assocDir) invalidate(key uint64) {
	s := (key % d.sets) * uint64(d.ways)
	for i := s; i < s+uint64(d.ways); i++ {
		if d.stamp[i] != 0 && d.keys[i] == key {
			d.keys[i], d.base[i], d.stamp[i] = 0, 0, 0
		}
	}
}

// flush empties the directory, keeping the LRU clock running (an OS
// flush does not rewind time).
func (d *assocDir) flush() {
	clear(d.keys)
	clear(d.base)
	clear(d.stamp)
}

// reset returns the directory to its just-constructed state.
func (d *assocDir) reset() {
	d.flush()
	d.clock = 0
}

// live returns the number of valid ways (test/debug helper).
func (d *assocDir) live() int {
	n := 0
	for _, s := range d.stamp {
		if s != 0 {
			n++
		}
	}
	return n
}
