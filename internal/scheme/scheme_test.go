package scheme

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/cache"
	"atscale/internal/mem"
	"atscale/internal/pagetable"
	"atscale/internal/refute"
	"atscale/internal/walker"
)

// fixture is one scheme instance over a hand-built page table.
type fixture struct {
	cfg  arch.SystemConfig
	phys *mem.Phys
	pt   *pagetable.Table
	inst Instance
}

func newFixture(t *testing.T, name string, mut func(*arch.SystemConfig)) *fixture {
	t.Helper()
	cfg := arch.DefaultSystem()
	cfg.Scheme = name
	if mut != nil {
		mut(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	phys := mem.NewPhysNUMA(64*arch.GB, cfg.NUMA.EffectiveNodes())
	pt, err := pagetable.New(phys)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sch.Build(Deps{Cfg: &cfg, Phys: phys, Caches: cache.NewHierarchy(&cfg)})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cfg: cfg, phys: phys, pt: pt, inst: inst}
}

func (f *fixture) mapPage(t *testing.T, va arch.VAddr, ps arch.PageSize) arch.PAddr {
	t.Helper()
	frame, err := f.phys.AllocPage(ps)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.pt.Map(va, frame, ps); err != nil {
		t.Fatal(err)
	}
	return frame
}

func numa2(c *arch.SystemConfig) { c.NUMA.Nodes = 2 }

func TestRegistry(t *testing.T) {
	want := []string{"radix", "victima", "mitosis", "dramcache"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	//atlint:allow eventname empty name exercising the radix default
	s, err := ByName("")
	if err != nil || s.Name() != "radix" {
		t.Errorf("ByName(\"\") = %v, %v; want radix", s, err)
	}
	//atlint:allow eventname deliberately unknown name exercising the error path
	if _, err := ByName("revelator"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeIdentitiesAreGuarded(t *testing.T) {
	ids := AllIdentities()
	if len(ids) == 0 {
		t.Fatal("no scheme identities registered")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id.Name] {
			t.Errorf("duplicate identity name %s", id.Name)
		}
		seen[id.Name] = true
		// EQ identities must be guarded: they run against units of every
		// scheme in one merged registry, and only hold when the scheme's
		// own counters are live.
		if id.Rel == refute.EQ && len(id.Guards) == 0 {
			t.Errorf("EQ identity %s has no guards", id.Name)
		}
	}
}

func TestMitosisRequiresNUMA(t *testing.T) {
	cfg := arch.DefaultSystem()
	cfg.Scheme = "mitosis"
	sch, _ := ByName("mitosis")
	if _, err := sch.Build(Deps{Cfg: &cfg}); err == nil {
		t.Error("mitosis built on a UMA config")
	}
}

func TestRadixColdWalk4Loads(t *testing.T) {
	f := newFixture(t, "radix", nil)
	va := arch.VAddr(0x7f00_0000_1000)
	frame := f.mapPage(t, va, arch.Page4K)
	r := f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	if !r.OK || !r.Completed || r.Frame != frame || r.Size != arch.Page4K {
		t.Fatalf("walk = %+v; want frame %#x", r, uint64(frame))
	}
	if r.Loads != 4 {
		t.Errorf("cold 4K walk loads = %d, want 4", r.Loads)
	}
	if r.BlockProbed || r.Replica != walker.ReplicaNone || r.DCHits != 0 || r.DCMisses != 0 {
		t.Errorf("radix walk carries scheme accounting: %+v", r)
	}
}

func TestVictimaBlockHitShortCircuit(t *testing.T) {
	f := newFixture(t, "victima", nil)
	va := arch.VAddr(0x4000_0000)
	va2 := va + 0x1000 // same 2 MB block, same PT page
	frame := f.mapPage(t, va, arch.Page4K)
	frame2 := f.mapPage(t, va2, arch.Page4K)

	r1 := f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	if !r1.OK || r1.Frame != frame || r1.Loads != 4 {
		t.Fatalf("cold walk = %+v", r1)
	}
	if !r1.BlockProbed || r1.BlockHit {
		t.Fatalf("cold walk block accounting = probed %v hit %v", r1.BlockProbed, r1.BlockHit)
	}
	v := f.inst.(*victima)
	if v.BlockDirLive() != 1 {
		t.Fatalf("block dir live = %d after pressured walk, want 1", v.BlockDirLive())
	}

	r2 := f.inst.Walk(va2, f.pt.Root(), walker.NoBudget)
	if !r2.OK || r2.Frame != frame2 || r2.Size != arch.Page4K {
		t.Fatalf("block-hit walk = %+v; want frame %#x", r2, uint64(frame2))
	}
	if !r2.BlockHit || r2.Loads != 1 {
		t.Errorf("block-hit walk: hit=%v loads=%d, want hit with exactly 1 load", r2.BlockHit, r2.Loads)
	}
}

func TestVictimaBlockHitCanFault(t *testing.T) {
	f := newFixture(t, "victima", nil)
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)
	f.inst.Walk(va, f.pt.Root(), walker.NoBudget) // installs the block

	// A block hit locates the PT page, but the neighbouring entry is
	// still non-present: that is a fault, served in one load.
	va2 := va + 0x2000
	r := f.inst.Walk(va2, f.pt.Root(), walker.NoBudget)
	if !r.BlockHit || r.OK || !r.Completed || r.Loads != 1 {
		t.Fatalf("unmapped block-hit walk = %+v; want completed fault in 1 load", r)
	}
	// The post-fault retry hits the block again and now succeeds.
	frame2 := f.mapPage(t, va2, arch.Page4K)
	r = f.inst.Walk(va2, f.pt.Root(), walker.NoBudget)
	if !r.BlockHit || !r.OK || r.Frame != frame2 || r.Loads != 1 {
		t.Fatalf("post-fault retry = %+v; want block-hit success", r)
	}
}

func TestVictimaFlushLeavesNoResidualHits(t *testing.T) {
	f := newFixture(t, "victima", nil)
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)
	f.mapPage(t, va+0x1000, arch.Page4K)
	f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	v := f.inst.(*victima)
	if v.BlockDirLive() == 0 {
		t.Fatal("no block installed")
	}
	f.inst.Flush()
	if v.BlockDirLive() != 0 {
		t.Fatalf("block dir live = %d after full flush, want 0", v.BlockDirLive())
	}
	r := f.inst.Walk(va+0x1000, f.pt.Root(), walker.NoBudget)
	if r.BlockHit {
		t.Error("block hit served from flushed directory")
	}
}

func TestVictimaInvalidateBlock(t *testing.T) {
	f := newFixture(t, "victima", nil)
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)
	f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	f.inst.InvalidateBlock(va)
	if live := f.inst.(*victima).BlockDirLive(); live != 0 {
		t.Errorf("block dir live = %d after InvalidateBlock, want 0", live)
	}
}

func TestMitosisReplicaLocalAndRemote(t *testing.T) {
	f := newFixture(t, "mitosis", numa2)
	w := f.inst.(*numaWalker)
	va := arch.VAddr(0x4000_0000)
	frame := f.mapPage(t, va, arch.Page4K)

	// Node 0 walks the master table, which lives on node 0: local.
	r := f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	if !r.OK || r.Replica != walker.ReplicaLocal {
		t.Fatalf("node-0 walk = %+v; want replica-local", r)
	}

	// First walk after migrating: no replica yet, so the master walk
	// crosses the interconnect — remote — and installs the replica.
	w.SetNode(1)
	r = f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	if !r.OK || r.Frame != frame || r.Replica != walker.ReplicaRemote {
		t.Fatalf("first node-1 walk = %+v; want replica-remote", r)
	}
	if !w.ReplicaLive(1) {
		t.Fatal("replica not installed after master-served walk")
	}

	// Once the PSC no longer holds master-path entries (a migration
	// round-trip flushes it), walks descend the node-1 replica whose
	// pages live on node 1: local again.
	w.SetNode(0)
	w.SetNode(1)
	r = f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	if !r.OK || r.Frame != frame || r.Replica != walker.ReplicaLocal {
		t.Fatalf("replica walk = %+v; want replica-local to frame %#x", r, uint64(frame))
	}
}

func TestMitosisRemoteWalkCostsMore(t *testing.T) {
	f := newFixture(t, "mitosis", numa2)
	w := f.inst.(*numaWalker)
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)
	local := f.inst.Walk(va, f.pt.Root(), walker.NoBudget)

	// Same cold-PSC walk of master pages from node 1: every DRAM-served
	// PTE load adds the interconnect penalty.
	f2 := newFixture(t, "mitosis", numa2)
	w2 := f2.inst.(*numaWalker)
	va2 := arch.VAddr(0x4000_0000)
	f2.mapPage(t, va2, arch.Page4K)
	w2.SetNode(1)
	remote := f2.inst.Walk(va2, f2.pt.Root(), walker.NoBudget)

	wantDelta := uint64(4) * f.cfg.NUMA.EffectiveRemoteLatency()
	if remote.Cycles != local.Cycles+wantDelta {
		t.Errorf("remote cold walk = %d cycles, local = %d; want delta %d",
			remote.Cycles, local.Cycles, wantDelta)
	}
	_ = w
}

func TestMitosisReplicaMissFallsBack(t *testing.T) {
	f := newFixture(t, "mitosis", numa2)
	w := f.inst.(*numaWalker)
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)
	w.SetNode(1)
	f.inst.Walk(va, f.pt.Root(), walker.NoBudget) // builds node-1 replica

	// A page the replica has never seen: the replica descent dead-ends,
	// the master serves the walk (remote), and the replica syncs.
	va2 := arch.VAddr(0x9000_0000)
	frame2 := f.mapPage(t, va2, arch.Page4K)
	w.SetNode(0)
	w.SetNode(1) // flush PSC so the walk enters via the replica root
	r := f.inst.Walk(va2, f.pt.Root(), walker.NoBudget)
	if !r.OK || r.Frame != frame2 || r.Replica != walker.ReplicaRemote {
		t.Fatalf("replica-miss walk = %+v; want remote fallback to frame %#x", r, uint64(frame2))
	}
	w.SetNode(0)
	w.SetNode(1)
	r = f.inst.Walk(va2, f.pt.Root(), walker.NoBudget)
	if !r.OK || r.Replica != walker.ReplicaLocal {
		t.Fatalf("post-sync walk = %+v; want replica-local", r)
	}
}

func TestNUMABaselineDoesNotClassify(t *testing.T) {
	f := newFixture(t, "radix", numa2)
	w, ok := f.inst.(*numaWalker)
	if !ok {
		t.Fatalf("radix with 2 nodes built %T, want *numaWalker", f.inst)
	}
	if w.replicate {
		t.Fatal("NUMA baseline has replication on")
	}
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)
	r := f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	if !r.OK || r.Replica != walker.ReplicaNone {
		t.Errorf("baseline walk = %+v; want no replica classification", r)
	}
}

func TestDramCacheColdWalkCycles(t *testing.T) {
	f := newFixture(t, "dramcache", nil)
	c := f.inst.(*dramCache)
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)

	// Every cold PTE load misses all SRAM levels (DRAMLatency each),
	// probes the stacked die, and misses it (tag-check penalty each).
	r := f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	if !r.OK || r.Loads != 4 {
		t.Fatalf("cold walk = %+v", r)
	}
	if r.DCMisses != 4 || r.DCHits != 0 {
		t.Fatalf("cold walk stacked-die accounting: hits=%d misses=%d, want 0/4", r.DCHits, r.DCMisses)
	}
	want := 4 * (f.cfg.DRAMLatency + c.missPen + stepOverhead)
	if r.Cycles != want {
		t.Errorf("cold walk cycles = %d, want %d", r.Cycles, want)
	}
}

func TestDramCacheHitReprices(t *testing.T) {
	f := newFixture(t, "dramcache", nil)
	c := f.inst.(*dramCache)
	pa := arch.PAddr(0x1234_5000)
	if d := c.adjustLoad(pa, cache.HitMem); d != int64(c.missPen) {
		t.Errorf("first probe delta = %d, want miss penalty %d", d, c.missPen)
	}
	if d := c.adjustLoad(pa, cache.HitMem); d != int64(c.hitLat)-int64(c.dram) {
		t.Errorf("second probe delta = %d, want %d", d, int64(c.hitLat)-int64(c.dram))
	}
	if c.dcHits != 1 || c.dcMisses != 1 {
		t.Errorf("accounting = %d/%d, want 1 hit 1 miss", c.dcHits, c.dcMisses)
	}
	// SRAM-served loads never probe the die.
	if d := c.adjustLoad(pa, cache.HitL2); d != 0 || c.dcHits != 1 {
		t.Errorf("SRAM-served load probed the die (delta %d, hits %d)", d, c.dcHits)
	}
}

func TestDramCacheSurvivesFlush(t *testing.T) {
	f := newFixture(t, "dramcache", nil)
	c := f.inst.(*dramCache)
	va := arch.VAddr(0x4000_0000)
	f.mapPage(t, va, arch.Page4K)
	f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
	if c.TagsLive() == 0 {
		t.Fatal("cold walk filled no stacked-die tags")
	}
	live := c.TagsLive()
	f.inst.Flush()
	if c.TagsLive() != live {
		t.Errorf("tags live %d -> %d across Flush; physically-indexed contents must survive", live, c.TagsLive())
	}
	c.Reset()
	if c.TagsLive() != 0 {
		t.Errorf("tags live = %d after Reset, want 0", c.TagsLive())
	}
}

// TestWalkPathZeroAllocs gates the steady-state translate path of every
// scheme at zero heap allocations per walk.
func TestWalkPathZeroAllocs(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			var mut func(*arch.SystemConfig)
			if name == "mitosis" {
				mut = numa2
			}
			f := newFixture(t, name, mut)
			va := arch.VAddr(0x4000_0000)
			f.mapPage(t, va, arch.Page4K)
			root := f.pt.Root()
			f.inst.Walk(va, root, walker.NoBudget) // warm structures
			if n := testing.AllocsPerRun(200, func() {
				f.inst.Walk(va, root, walker.NoBudget)
			}); n != 0 {
				t.Errorf("%s Walk allocates %.1f per run, want 0", name, n)
			}
		})
	}
}

func TestSchemeReset(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			var mut func(*arch.SystemConfig)
			if name == "mitosis" {
				mut = numa2
			}
			f := newFixture(t, name, mut)
			va := arch.VAddr(0x4000_0000)
			f.mapPage(t, va, arch.Page4K)
			r1 := f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
			f.inst.Reset()
			r2 := f.inst.Walk(va, f.pt.Root(), walker.NoBudget)
			// After Reset the instance must behave as freshly built with
			// respect to its own structures (the shared data caches are
			// warmer, so only structural accounting is comparable).
			if r1.Loads != r2.Loads || r1.BlockHit != r2.BlockHit {
				t.Errorf("post-Reset walk differs structurally: %+v vs %+v", r1, r2)
			}
		})
	}
}
