package telemetry

import (
	_ "embed"
	"net/http"
)

// The HTTP surface of live telemetry. It lives here — not in cmd/ —
// so httptest can drive it directly, but it stays clock-free like the
// rest of the package: handlers only snapshot the monitor's atomics
// and drain the hub; timestamps and tickers remain the CLI's business.

//go:embed dashboard.html
var dashboardHTML []byte

// NewHandler serves the live-campaign endpoints:
//
//	GET /        the embedded HTML dashboard (progress, WCPI trend,
//	             live attribution tree; stdlib + vanilla JS only)
//	GET /stats   one MonitorStats snapshot as JSON
//	GET /events  the hub's UnitEvent feed as Server-Sent Events, full
//	             history replayed first, then live events until the
//	             client disconnects
//
// mon and hub may each be nil; the endpoints degrade to empty
// snapshots / an immediately-idle stream.
func NewHandler(mon *Monitor, hub *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(dashboardHTML)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(mon.Snapshot().JSON(), '\n'))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		if hub == nil {
			// No stream source: send the snapshot and finish.
			writeSSE(w, "stats", mon.Snapshot().JSON())
			flusher.Flush()
			return
		}
		events, cancel := hub.Subscribe()
		defer cancel()
		// Lead with a stats snapshot so a fresh dashboard paints
		// progress before the first unit completes.
		writeSSE(w, "stats", mon.Snapshot().JSON())
		flusher.Flush()
		for {
			select {
			case <-r.Context().Done():
				return
			case ev, ok := <-events:
				if !ok {
					return
				}
				writeSSE(w, "unit", ev.JSON())
				flusher.Flush()
			}
		}
	})
	return mux
}

// writeSSE frames one event in Server-Sent Events wire format.
func writeSSE(w http.ResponseWriter, event string, data []byte) {
	w.Write([]byte("event: " + event + "\ndata: "))
	w.Write(data)
	w.Write([]byte("\n\n"))
}
