package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The exporter emits Chrome trace-event JSON (the Perfetto-loadable
// array-of-events format). Everything about the emission is
// deterministic: units are laid out in sorted-name order on the campaign
// track, processes and tracks get pids/tids in sorted-name order, and
// per-track events are written in recorded order. A campaign traced
// twice with the same seed and config therefore exports byte-identical
// files, whatever the scheduler did.

// Timestamps are simulated cycles written into the "ts"/"dur"
// microsecond fields: Perfetto renders 1 cycle as 1 µs, which is only a
// display convention (the timeline has no wall-clock meaning at all).

// campaignPid is the fixed pid of the scheduler's campaign process.
const campaignPid = 1

// jsonEvent is one trace event in Chrome trace-event order.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// sortedUnits returns the campaign units in name order, with their
// serial-equivalent start offsets (the prefix sum of unit durations).
//
//atlint:locked mu Export is the only caller and holds tr.mu across the whole emission
func (tr *Tracer) sortedUnits() ([]Unit, []uint64) {
	units := append([]Unit(nil), tr.units...)
	sort.Slice(units, func(i, j int) bool { return units[i].Name < units[j].Name })
	starts := make([]uint64, len(units))
	var w uint64
	for i, u := range units {
		starts[i] = w
		w += u.Cycles
	}
	return units, starts
}

// Export writes the timeline as Chrome trace-event JSON. A nil tracer
// exports an empty (but valid) trace.
func (tr *Tracer) Export(w io.Writer) error {
	ew := &eventWriter{w: w}
	ew.open()

	if tr != nil {
		tr.mu.Lock()
		defer tr.mu.Unlock()

		units, starts := tr.sortedUnits()

		// Campaign process: unit spans tiled in serial-equivalent time,
		// queue-wait annotations, and counter snapshots at boundaries.
		if len(units) > 0 {
			ew.emit(jsonEvent{Name: "process_name", Ph: "M", Pid: campaignPid, Tid: 0,
				Args: map[string]any{"name": "campaign (serial-equivalent schedule)"}})
			ew.emit(jsonEvent{Name: "thread_name", Ph: "M", Pid: campaignPid, Tid: 1,
				Args: map[string]any{"name": "run units"}})
			for i, u := range units {
				ew.emit(jsonEvent{Name: u.Name, Ph: "X", Ts: starts[i], Dur: u.Cycles,
					Pid: campaignPid, Tid: 1,
					Args: map[string]any{"queue_wait_cycles": starts[i]}})
				// All begin-boundary samples precede all end-boundary
				// samples: the lane's timestamps must never run backwards.
				for _, s := range u.Stats {
					ew.emit(jsonEvent{Name: s.Name, Ph: "C", Ts: starts[i],
						Pid: campaignPid, Tid: 1, Args: map[string]any{"v": s.Val}})
				}
				for _, s := range u.Stats {
					ew.emit(jsonEvent{Name: s.Name, Ph: "C", Ts: starts[i] + u.Cycles,
						Pid: campaignPid, Tid: 1, Args: map[string]any{"v": s.Val}})
				}
			}
		}

		// Detail processes, sorted by name, shifted to their unit's
		// campaign offset (0 when no matching unit — standalone traces).
		procs := append([]*Process(nil), tr.procs...)
		sort.Slice(procs, func(i, j int) bool { return procs[i].name < procs[j].name })
		for pi, p := range procs {
			pid := campaignPid + 1 + pi
			offset := uint64(0)
			for i, u := range units {
				if u.Name == p.name {
					offset = starts[i]
					break
				}
			}
			p.offset = offset
			ew.emit(jsonEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
				Args: map[string]any{"name": p.name}})
			// Snapshot under the process lock: campaign workers may
			// still be creating tracks while a mid-campaign export
			// runs. tr.mu does not cover p.tracks — Process.Track
			// takes only p.mu.
			p.mu.Lock()
			tracks := append([]*Track(nil), p.tracks...)
			p.mu.Unlock()
			sort.Slice(tracks, func(i, j int) bool { return tracks[i].name < tracks[j].name })
			for ti, t := range tracks {
				tid := ti + 1
				ew.emit(jsonEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": t.name}})
				for _, e := range t.events {
					je := jsonEvent{Name: e.Name, Ph: string(rune(e.Ph)), Ts: e.Ts + offset,
						Pid: pid, Tid: tid}
					switch e.Ph {
					case PhComplete:
						je.Dur = e.Dur
					case PhInstant:
						je.S = "t"
					case PhCounter:
						je.Args = map[string]any{"v": e.ArgF}
					}
					if e.ArgName != "" {
						if je.Args == nil {
							je.Args = map[string]any{}
						}
						je.Args[e.ArgName] = e.ArgStr
					}
					ew.emit(je)
				}
			}
		}
	}

	ew.close()
	return ew.err
}

// eventWriter streams the trace-event array with explicit separators so
// the output is a single deterministic JSON document.
type eventWriter struct {
	w     io.Writer
	n     int
	err   error
	wrote bool
}

func (ew *eventWriter) open() {
	_, ew.err = io.WriteString(ew.w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
}

func (ew *eventWriter) emit(e jsonEvent) {
	if ew.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		ew.err = err
		return
	}
	sep := ",\n"
	if !ew.wrote {
		sep = ""
		ew.wrote = true
	}
	if _, err := fmt.Fprintf(ew.w, "%s%s", sep, b); err != nil {
		ew.err = err
		return
	}
	ew.n++
}

func (ew *eventWriter) close() {
	if ew.err != nil {
		return
	}
	_, ew.err = io.WriteString(ew.w, "\n]}\n")
}
