// Package telemetry is the simulator's timeline tracer and live campaign
// monitor.
//
// The tracer records span and instant events whose clock is the
// *simulated cycle counter*, never wall time, so a timeline is a pure
// function of (workload, seed, config) — byte-identical across runs and
// across serial/parallel campaign schedules — and the atlint nondet
// analyzer stays clean. Events land in per-track buffers that are
// single-writer by construction (each track belongs to exactly one
// simulated machine or campaign reducer), so the hot-path append takes
// no lock; only track/process creation, which happens a handful of
// times per run unit, synchronizes on the tracer's mutex.
//
// Every recording method is a no-op on a nil receiver: a component holds
// a *Track field that stays nil until tracing is enabled, and the
// disabled hot path is one pointer compare with zero allocations (see
// walker's TestDisabledTracerZeroAllocs).
//
// Clock-domain rules (DESIGN.md §11):
//
//   - Each track carries its own monotonic cursor in simulated cycles.
//     Sync(ts) pulls a cursor forward to a shared clock (the core's
//     cycle counter) but never backwards, so per-track event order is
//     always valid even when visible time advances more slowly than
//     walker-internal time (walk cycles are charged scaled by
//     WalkVisibility).
//   - The campaign track is tiled in *serial-equivalent* time: unit i's
//     span starts at the sum of the simulated durations of all units
//     that precede it in sorted-name order. Parallel and serial
//     campaigns therefore export identical bytes; real worker
//     assignment and wall-clock occupancy are live-monitor concerns and
//     never enter the timeline file.
//   - Wall time exists only in the Monitor consumers (the CLIs' live
//     heartbeat loops); nothing in this package reads the host clock.
package telemetry

import "sync"

// Ph is a Chrome trace-event phase tag.
type Ph byte

// The event phases the tracer records.
const (
	// PhBegin opens a duration span (Chrome "B").
	PhBegin Ph = 'B'
	// PhEnd closes the innermost open span (Chrome "E").
	PhEnd Ph = 'E'
	// PhComplete is a self-contained slice with a duration (Chrome "X").
	PhComplete Ph = 'X'
	// PhInstant is a zero-duration mark (Chrome "i").
	PhInstant Ph = 'i'
	// PhCounter is a counter-series sample (Chrome "C").
	PhCounter Ph = 'C'
)

// Event is one recorded trace event. Name/ArgName/ArgStr are expected to
// be constant strings at the recording sites, so appending an Event
// allocates nothing beyond amortized buffer growth.
type Event struct {
	// Ts is the event timestamp in simulated cycles (track-local; the
	// exporter adds the owning process's campaign offset).
	Ts uint64
	// Dur is the slice duration (PhComplete only).
	Dur uint64
	// Ph is the event phase.
	Ph Ph
	// Name is the span/slice/instant/counter name.
	Name string
	// ArgName/ArgStr attach one string argument (empty ArgName: none).
	ArgName string
	ArgStr  string
	// ArgF is the counter value (PhCounter only).
	ArgF float64
}

// Track is one horizontal lane of the timeline: a single-writer event
// buffer plus a monotonic cycle cursor. All recording methods are
// no-ops on a nil *Track.
type Track struct {
	name   string
	now    uint64
	events []Event
}

// Name returns the track's display name.
func (t *Track) Name() string { return t.name }

// Events returns the recorded events (exporter, tests).
func (t *Track) Events() []Event { return t.events }

// Now returns the track's current cycle cursor (0 on a nil track).
func (t *Track) Now() uint64 {
	if t == nil {
		return 0
	}
	return t.now
}

// Sync pulls the cursor forward to ts; it never moves backwards, so the
// track stays monotonic when the shared clock lags track-local time.
func (t *Track) Sync(ts uint64) {
	if t == nil {
		return
	}
	if ts > t.now {
		t.now = ts
	}
}

// Advance moves the cursor forward by d cycles.
func (t *Track) Advance(d uint64) {
	if t == nil {
		return
	}
	t.now += d
}

// Begin opens a span named name at the current cursor.
func (t *Track) Begin(name string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Ts: t.now, Ph: PhBegin, Name: name})
}

// End closes the innermost open span at the current cursor.
func (t *Track) End() {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Ts: t.now, Ph: PhEnd})
}

// EndArg closes the innermost open span, attaching one string argument
// (for example the walk outcome).
func (t *Track) EndArg(argName, argStr string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Ts: t.now, Ph: PhEnd, ArgName: argName, ArgStr: argStr})
}

// Slice records a complete slice of dur cycles at the current cursor and
// advances the cursor past it. argName may be empty.
func (t *Track) Slice(name string, dur uint64, argName, argStr string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Ts: t.now, Dur: dur, Ph: PhComplete, Name: name, ArgName: argName, ArgStr: argStr})
	t.now += dur
}

// Pin records a complete slice over an explicit cycle range [start,
// end] without advancing the cursor past it — several pins may cover
// the same range (the refute checker pins every violation to the
// unit's measured region). The lane stays monotonic: a start before
// the cursor is clamped to it, and the cursor moves forward to the
// (possibly clamped) start, never past the slice.
func (t *Track) Pin(name string, start, end uint64, argName, argStr string) {
	if t == nil {
		return
	}
	if start < t.now {
		start = t.now
	}
	var dur uint64
	if end > start {
		dur = end - start
	}
	t.events = append(t.events, Event{Ts: start, Dur: dur, Ph: PhComplete, Name: name, ArgName: argName, ArgStr: argStr})
	t.now = start
}

// Instant records a zero-duration mark at the current cursor.
func (t *Track) Instant(name string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Ts: t.now, Ph: PhInstant, Name: name})
}

// Counter records a counter-series sample at the current cursor.
func (t *Track) Counter(name string, v float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Ts: t.now, Ph: PhCounter, Name: name, ArgF: v})
}

// Process groups the tracks of one run unit (one simulated machine) or
// of the campaign reducer. The exporter assigns pids in sorted-name
// order and shifts every track by the process's campaign offset.
type Process struct {
	name   string
	offset uint64
	mu     sync.Mutex
	//atlint:guardedby mu
	tracks []*Track
}

// Name returns the process's display name.
func (p *Process) Name() string { return p.name }

// Track creates (or returns, by name) a track in the process. Creation
// locks; the returned track's recording methods do not.
func (p *Process) Track(name string) *Track {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.tracks {
		if t.name == name {
			return t
		}
	}
	t := &Track{name: name}
	p.tracks = append(p.tracks, t)
	return t
}

// UnitStat is one headline number annotated onto a unit span boundary.
type UnitStat struct {
	Name string
	Val  float64
}

// Unit is one completed run unit's campaign record: its simulated
// duration plus the counter snapshot annotated at its span boundaries.
type Unit struct {
	// Name identifies the unit; it must be unique within a campaign and
	// must match the unit's Process name for the exporter to place the
	// unit's detail tracks at the unit's campaign offset.
	Name string
	// Cycles is the unit's simulated duration (the measured region's
	// cycle delta).
	Cycles uint64
	// Stats are counter-snapshot annotations emitted at the unit span's
	// begin and end boundaries.
	Stats []UnitStat
}

// Tracer owns the timeline: processes, their tracks, and the campaign's
// unit records. A nil *Tracer is the disabled tracer: every method is a
// no-op returning nil, so call sites need no guards.
type Tracer struct {
	mu sync.Mutex
	//atlint:guardedby mu
	procs []*Process
	//atlint:guardedby mu
	units []Unit
}

// New creates an enabled tracer.
func New() *Tracer { return &Tracer{} }

// Process creates (or returns, by name) a process. Unit processes must
// use campaign-unique names; core.Run includes workload, param, page
// size, seed and config variant in the name for exactly that reason.
func (tr *Tracer) Process(name string) *Process {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, p := range tr.procs {
		if p.name == name {
			return p
		}
	}
	p := &Process{name: name}
	tr.procs = append(tr.procs, p)
	return p
}

// FinishUnit records a completed run unit. Safe to call concurrently
// from campaign workers; the exporter orders units by name, so the
// timeline does not depend on completion order.
func (tr *Tracer) FinishUnit(u Unit) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.units = append(tr.units, u)
}
