package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
)

// The validator checks an exported timeline for structural validity:
// the document parses as Chrome trace-event JSON, every Begin has a
// matching End on its track, per-track timestamps never run backwards,
// and every complete slice and instant is bracketed by the span that is
// open around it. Tests run it over every exported timeline, and
// `atscale -timeline-verify` runs it over the file it just wrote.

// Stats summarizes a validated timeline.
type Stats struct {
	// Events is the total event count, metadata included.
	Events int
	// Tracks is the number of distinct (pid, tid) lanes.
	Tracks int
	// Spans is the number of matched Begin/End pairs.
	Spans int
	// Slices is the number of complete ("X") slices.
	Slices int
	// Instants is the number of instant events.
	Instants int
	// Counters is the number of counter samples.
	Counters int
}

// rawEvent is the subset of trace-event fields validation needs.
type rawEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// traceDoc is the exported document shape.
type traceDoc struct {
	TraceEvents []rawEvent `json:"traceEvents"`
}

// trackKey identifies one timeline lane.
type trackKey struct{ pid, tid int }

// Validate parses an exported timeline and checks its structure,
// returning summary statistics. It is the shared backstop of the
// telemetry tests and the -timeline-verify CLI path.
func Validate(data []byte) (Stats, error) {
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return Stats{}, fmt.Errorf("telemetry: timeline does not parse: %w", err)
	}
	var stats Stats
	stats.Events = len(doc.TraceEvents)

	// Group events by lane, preserving the document's per-lane order
	// (which is the recorded order — the invariant under test). Keys are
	// collected in first-appearance order so validation output and
	// errors are deterministic without ranging over the map.
	lanes := make(map[trackKey][]rawEvent)
	var keys []trackKey
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue // metadata carries no timing
		}
		k := trackKey{e.Pid, e.Tid}
		if _, ok := lanes[k]; !ok {
			keys = append(keys, k)
		}
		lanes[k] = append(lanes[k], e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	stats.Tracks = len(keys)

	for _, k := range keys {
		s, err := validateLane(k, lanes[k])
		if err != nil {
			return Stats{}, err
		}
		stats.Spans += s.Spans
		stats.Slices += s.Slices
		stats.Instants += s.Instants
		stats.Counters += s.Counters
	}
	return stats, nil
}

// span is one matched Begin/End pair.
type span struct {
	name     string
	beg, end float64
}

// validateLane checks one lane's event stream.
func validateLane(k trackKey, events []rawEvent) (Stats, error) {
	var stats Stats
	// Pass 1: timestamps monotonic; match Begin/End pairs into spans,
	// remembering each Begin's eventual end time.
	prev := -1.0
	type open struct {
		name string
		beg  float64
		idx  int // index into spans
	}
	var stack []open
	var spans []span
	spanAt := make([]int, len(events)) // event index -> enclosing span index (-1 none)
	for i, e := range events {
		if e.Ts < prev {
			return stats, fmt.Errorf("telemetry: track %d/%d: timestamp runs backwards at event %d (%v after %v)", k.pid, k.tid, i, e.Ts, prev)
		}
		prev = e.Ts
		if len(stack) > 0 {
			spanAt[i] = stack[len(stack)-1].idx
		} else {
			spanAt[i] = -1
		}
		switch e.Ph {
		case "B":
			spans = append(spans, span{name: e.Name, beg: e.Ts, end: -1})
			stack = append(stack, open{name: e.Name, beg: e.Ts, idx: len(spans) - 1})
		case "E":
			if len(stack) == 0 {
				return stats, fmt.Errorf("telemetry: track %d/%d: End without a Begin at event %d", k.pid, k.tid, i)
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			spans[top.idx].end = e.Ts
			stats.Spans++
		case "X":
			stats.Slices++
		case "i":
			stats.Instants++
		case "C":
			stats.Counters++
		}
	}
	if len(stack) > 0 {
		return stats, fmt.Errorf("telemetry: track %d/%d: %d span(s) never closed (innermost %q at %v)",
			k.pid, k.tid, len(stack), stack[len(stack)-1].name, stack[len(stack)-1].beg)
	}
	// Pass 2: every slice/instant must sit inside its enclosing span's
	// (now known) bounds.
	for i, e := range events {
		si := spanAt[i]
		if si < 0 {
			continue
		}
		parent := spans[si]
		switch e.Ph {
		case "X":
			if e.Ts < parent.beg || e.Ts+e.Dur > parent.end {
				return stats, fmt.Errorf("telemetry: track %d/%d: slice %q [%v,%v] escapes enclosing span %q [%v,%v]",
					k.pid, k.tid, e.Name, e.Ts, e.Ts+e.Dur, parent.name, parent.beg, parent.end)
			}
		case "i":
			if e.Ts < parent.beg || e.Ts > parent.end {
				return stats, fmt.Errorf("telemetry: track %d/%d: instant %q at %v outside enclosing span %q [%v,%v]",
					k.pid, k.tid, e.Name, e.Ts, parent.name, parent.beg, parent.end)
			}
		}
	}
	return stats, nil
}

// String renders the stats one-line, for the -timeline-verify output.
func (s Stats) String() string {
	return fmt.Sprintf("%d events on %d tracks: %d spans, %d slices, %d instants, %d counter samples",
		s.Events, s.Tracks, s.Spans, s.Slices, s.Instants, s.Counters)
}
