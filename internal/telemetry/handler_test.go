package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// publishN pushes n fabricated unit events through the hub.
func publishN(h *Hub, n int) {
	for i := 0; i < n; i++ {
		h.Publish(UnitEvent{
			Unit:   fmt.Sprintf("unit-%d", i),
			CPI:    1.5,
			WCPI:   0.1,
			Cycles: 1000,
			Tree:   []TreeNode{{Path: "cycles", Value: 1000, Share: 1}},
		})
	}
}

func TestStatsEndpoint(t *testing.T) {
	mon := NewMonitor()
	mon.AddUnitsTotal(8)
	mon.UnitDone(1000, 2000, 300)
	mon.WorkerBusy()
	// 2000 more cycles land between observations 1 wall-second apart:
	// the gauge reads 2000 cycles/sec.
	mon.ObserveThroughput(1_000_000_000)
	mon.UnitDone(1000, 2000, 300)
	mon.ObserveThroughput(2_000_000_000)

	srv := httptest.NewServer(NewHandler(mon, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var s MonitorStats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.UnitsDone != 2 || s.UnitsTotal != 8 {
		t.Errorf("units: %+v", s)
	}
	if s.Progress != 0.25 {
		t.Errorf("progress %v, want 0.25", s.Progress)
	}
	if s.CyclesPerSec != 2000 {
		t.Errorf("cycles/sec %v, want 2000", s.CyclesPerSec)
	}
	if s.BusyWorkers != 1 {
		t.Errorf("busy workers %v, want 1", s.BusyWorkers)
	}
}

// TestStatsJSONLRoundTrip: the JSONL heartbeat line the stderr mode
// emits parses back into an identical snapshot.
func TestStatsJSONLRoundTrip(t *testing.T) {
	mon := NewMonitor()
	mon.AddUnitsTotal(4)
	mon.UnitStarted()
	mon.UnitDone(500, 1500, 100)
	mon.IdentityResults(21, 0)
	mon.ObserveThroughput(1_000_000_000)
	mon.ObserveThroughput(3_000_000_000)
	snap := mon.Snapshot()

	line := snap.JSON()
	if strings.ContainsRune(string(line), '\n') {
		t.Error("heartbeat line contains a newline")
	}
	var round MonitorStats
	if err := json.Unmarshal(line, &round); err != nil {
		t.Fatal(err)
	}
	if round != snap {
		t.Errorf("round trip changed the snapshot:\n got %+v\nwant %+v", round, snap)
	}
	// Every wire field the dashboard consumes must be present by name.
	for _, field := range []string{"units_total", "progress", "cycles_per_sec", "wcpi", "busy_workers"} {
		if !strings.Contains(string(line), `"`+field+`"`) {
			t.Errorf("heartbeat lacks %q: %s", field, line)
		}
	}
}

func TestDashboardServed(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	for _, needle := range []string{"EventSource", "/events", "/stats", "atscale"} {
		if !strings.Contains(string(body), needle) {
			t.Errorf("dashboard lacks %q", needle)
		}
	}
	// Unknown paths 404 rather than serving the dashboard.
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: %d, want 404", resp.StatusCode)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name string
	data string
}

// readSSE parses n frames off an SSE stream.
func readSSE(t *testing.T, r *bufio.Reader, n int) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{}
	for len(out) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended early after %d frames: %v", len(out), err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			out = append(out, cur)
			cur = sseEvent{}
		}
	}
	return out
}

// TestEventsSSEOrdering: a subscriber that connects mid-campaign sees
// the leading stats frame, the full history in order, then live events,
// with strictly increasing sequence numbers throughout.
func TestEventsSSEOrdering(t *testing.T) {
	mon := NewMonitor()
	hub := NewHub()
	publishN(hub, 3) // history before the client connects

	srv := httptest.NewServer(NewHandler(mon, hub))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	frames := readSSE(t, br, 4) // stats + 3 replayed units
	if frames[0].name != "stats" {
		t.Fatalf("first frame %q, want stats", frames[0].name)
	}
	publishN(hub, 2) // live tail
	frames = append(frames, readSSE(t, br, 2)...)

	var lastSeq uint64
	for i, f := range frames[1:] {
		if f.name != "unit" {
			t.Fatalf("frame %d: %q, want unit", i+1, f.name)
		}
		var ev UnitEvent
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d: %v", i+1, err)
		}
		if ev.Seq != lastSeq+1 {
			t.Errorf("frame %d: seq %d after %d, want strictly increasing by 1", i+1, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if want := fmt.Sprintf("unit-%d", i%3); ev.Unit != want {
			t.Errorf("frame %d: unit %q, want %q", i+1, ev.Unit, want)
		}
		if len(ev.Tree) == 0 || ev.Tree[0].Path != "cycles" {
			t.Errorf("frame %d: tree missing: %+v", i+1, ev.Tree)
		}
	}
}

// TestEventsSSEDisconnect: cancelling the client's request context
// unsubscribes it from the hub (no goroutine or subscription leak).
func TestEventsSSEDisconnect(t *testing.T) {
	mon := NewMonitor()
	hub := NewHub()
	srv := httptest.NewServer(NewHandler(mon, hub))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readSSE(t, br, 1) // the leading stats frame: the handler is live

	if got := hub.Subscribers(); got != 1 {
		t.Fatalf("subscribers %d, want 1", got)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for hub.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber not removed after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	// The hub keeps publishing to nobody without issue.
	publishN(hub, 1)
}

// TestHubReplayThenLive exercises the hub directly: full history
// replay, live tail, cancel idempotence, and the non-blocking publish
// drop policy on a saturated subscriber.
func TestHubReplayThenLive(t *testing.T) {
	hub := NewHub()
	publishN(hub, 5)
	ch, cancel := hub.Subscribe()
	for i := 0; i < 5; i++ {
		ev := <-ch
		if ev.Seq != uint64(i+1) {
			t.Fatalf("replay %d: seq %d", i, ev.Seq)
		}
	}
	publishN(hub, 1)
	if ev := <-ch; ev.Seq != 6 {
		t.Fatalf("live event seq %d, want 6", ev.Seq)
	}
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Error("channel not closed after cancel")
	}
	if hub.Subscribers() != 0 {
		t.Errorf("subscribers %d after cancel", hub.Subscribers())
	}
	if got := len(hub.History()); got != 6 {
		t.Errorf("history %d, want 6", got)
	}
}

// TestHubNilSafe: the disabled-telemetry path (nil hub, nil monitor)
// must be safe to call from campaign hot paths.
func TestHubNilSafe(t *testing.T) {
	var hub *Hub
	hub.Publish(UnitEvent{Unit: "x"})
	if hub.Subscribers() != 0 || hub.History() != nil {
		t.Error("nil hub not inert")
	}
	var mon *Monitor
	mon.AddUnitsTotal(3)
	mon.ObserveThroughput(123)
	if s := mon.Snapshot(); s != (MonitorStats{}) {
		t.Errorf("nil monitor snapshot: %+v", s)
	}
}

// TestDisabledPublishAllocFree: with telemetry off (nil monitor, nil
// hub) the per-unit publish hooks must not allocate — the sim hot path
// pays one pointer compare, nothing more.
func TestDisabledPublishAllocFree(t *testing.T) {
	var hub *Hub
	var mon *Monitor
	ev := UnitEvent{Unit: "u"}
	allocs := testing.AllocsPerRun(1000, func() {
		mon.UnitStarted()
		mon.UnitDone(1, 2, 3)
		mon.WorkerBusy()
		mon.WorkerIdle()
		hub.Publish(ev)
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry hooks allocate %.1f per run, want 0", allocs)
	}
}
