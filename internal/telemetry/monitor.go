package telemetry

import (
	"encoding/json"
	"sync/atomic"
)

// Monitor is the live campaign telemetry hub: a set of atomic gauges and
// counters the scheduler and run units publish into while a campaign
// runs. It holds *no wall-clock state* — the heartbeat loops that
// timestamp and emit snapshots live in the CLI frontends (which the
// nondet analyzer exempts), keeping the simulator proper clock-free.
//
// All methods are safe for concurrent use and are no-ops on a nil
// *Monitor, so the scheduler hooks cost one pointer compare when live
// telemetry is off.
type Monitor struct {
	unitsStarted   atomic.Uint64
	unitsDone      atomic.Uint64
	busyWorkers    atomic.Int64
	instructions   atomic.Uint64
	cycles         atomic.Uint64
	walkCycles     atomic.Uint64
	identsChecked  atomic.Uint64
	identsViolated atomic.Uint64
}

// NewMonitor creates an enabled monitor.
func NewMonitor() *Monitor { return &Monitor{} }

// UnitStarted marks one run unit entering its measured region.
func (m *Monitor) UnitStarted() {
	if m == nil {
		return
	}
	m.unitsStarted.Add(1)
}

// UnitDone publishes one completed unit's counter deltas.
func (m *Monitor) UnitDone(instructions, cycles, walkCycles uint64) {
	if m == nil {
		return
	}
	m.unitsDone.Add(1)
	m.instructions.Add(instructions)
	m.cycles.Add(cycles)
	m.walkCycles.Add(walkCycles)
}

// IdentityResults publishes one unit's refute-checker outcome: how many
// counter identities were evaluated on it and how many were violated.
func (m *Monitor) IdentityResults(checked, violated uint64) {
	if m == nil {
		return
	}
	m.identsChecked.Add(checked)
	m.identsViolated.Add(violated)
}

// WorkerBusy marks one scheduler worker as occupied by a unit.
func (m *Monitor) WorkerBusy() {
	if m == nil {
		return
	}
	m.busyWorkers.Add(1)
}

// WorkerIdle marks one scheduler worker as free again.
func (m *Monitor) WorkerIdle() {
	if m == nil {
		return
	}
	m.busyWorkers.Add(-1)
}

// MonitorStats is one consistent-enough snapshot of the campaign (each
// field is individually atomic; the set is not a transaction, which is
// fine for progress reporting).
type MonitorStats struct {
	// UnitsStarted / UnitsDone count run units entering / leaving their
	// measured regions.
	UnitsStarted uint64 `json:"units_started"`
	UnitsDone    uint64 `json:"units_done"`
	// BusyWorkers is the number of scheduler workers currently running a
	// unit (worker occupancy).
	BusyWorkers int64 `json:"busy_workers"`
	// Instructions / Cycles / WalkCycles aggregate the completed units'
	// counter deltas.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	WalkCycles   uint64 `json:"walk_cycles"`
	// WCPI is the campaign-aggregate walk cycles per instruction over
	// completed units — the paper's headline proxy, live.
	WCPI float64 `json:"wcpi"`
	// IdentitiesChecked / IdentitiesViolated aggregate the refute
	// checker's per-unit results (zero when -refute is off). A non-zero
	// violation count mid-campaign means a counter identity is breaking
	// right now; the final report says where.
	IdentitiesChecked  uint64 `json:"identities_checked"`
	IdentitiesViolated uint64 `json:"identities_violated"`
}

// Snapshot reads the current stats (zero value on a nil monitor).
func (m *Monitor) Snapshot() MonitorStats {
	if m == nil {
		return MonitorStats{}
	}
	s := MonitorStats{
		UnitsStarted:       m.unitsStarted.Load(),
		UnitsDone:          m.unitsDone.Load(),
		BusyWorkers:        m.busyWorkers.Load(),
		Instructions:       m.instructions.Load(),
		Cycles:             m.cycles.Load(),
		WalkCycles:         m.walkCycles.Load(),
		IdentitiesChecked:  m.identsChecked.Load(),
		IdentitiesViolated: m.identsViolated.Load(),
	}
	if s.Instructions > 0 {
		s.WCPI = float64(s.WalkCycles) / float64(s.Instructions)
	}
	return s
}

// JSON renders the snapshot as one JSONL heartbeat line (no trailing
// newline). Field order is fixed by the struct, so heartbeats diff
// cleanly.
func (s MonitorStats) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// MonitorStats contains only numeric fields; Marshal cannot fail.
		panic(err)
	}
	return b
}
