package telemetry

import (
	"encoding/json"
	"math"
	"sync/atomic"
)

// Monitor is the live campaign telemetry hub: a set of atomic gauges and
// counters the scheduler and run units publish into while a campaign
// runs. It holds *no wall-clock state* — the heartbeat loops that
// timestamp and emit snapshots live in the CLI frontends (which the
// nondet analyzer exempts), keeping the simulator proper clock-free.
//
// All methods are safe for concurrent use and are no-ops on a nil
// *Monitor, so the scheduler hooks cost one pointer compare when live
// telemetry is off.
type Monitor struct {
	unitsStarted   atomic.Uint64
	unitsDone      atomic.Uint64
	unitsTotal     atomic.Uint64
	busyWorkers    atomic.Int64
	instructions   atomic.Uint64
	cycles         atomic.Uint64
	walkCycles     atomic.Uint64
	identsChecked  atomic.Uint64
	identsViolated atomic.Uint64

	// Throughput gauge state: the last observation's wall-clock nanos
	// and cycle total, plus the derived simulated-cycles/sec gauge
	// (float64 bits). The nanos flow *in* as plain integers from the
	// CLI heartbeat loops — the monitor itself never reads a clock.
	lastObsNanos  atomic.Int64
	lastObsCycles atomic.Uint64
	cyclesPerSec  atomic.Uint64
}

// NewMonitor creates an enabled monitor.
func NewMonitor() *Monitor { return &Monitor{} }

// UnitStarted marks one run unit entering its measured region.
func (m *Monitor) UnitStarted() {
	if m == nil {
		return
	}
	m.unitsStarted.Add(1)
}

// UnitDone publishes one completed unit's counter deltas.
func (m *Monitor) UnitDone(instructions, cycles, walkCycles uint64) {
	if m == nil {
		return
	}
	m.unitsDone.Add(1)
	m.instructions.Add(instructions)
	m.cycles.Add(cycles)
	m.walkCycles.Add(walkCycles)
}

// IdentityResults publishes one unit's refute-checker outcome: how many
// counter identities were evaluated on it and how many were violated.
func (m *Monitor) IdentityResults(checked, violated uint64) {
	if m == nil {
		return
	}
	m.identsChecked.Add(checked)
	m.identsViolated.Add(violated)
}

// AddUnitsTotal announces n scheduled run units. The scheduler calls it
// once per campaign dispatch, so units_total ratchets up as experiments
// enqueue work and progress = done/total is meaningful mid-campaign.
func (m *Monitor) AddUnitsTotal(n uint64) {
	if m == nil {
		return
	}
	m.unitsTotal.Add(n)
}

// ObserveThroughput updates the simulated-cycles/sec gauge from one
// wall-clock observation. nowNanos is the caller's clock reading (wall
// time is confined to cmd/*; it enters here as a plain integer). The
// first observation only seeds the baseline.
func (m *Monitor) ObserveThroughput(nowNanos int64) {
	if m == nil {
		return
	}
	cycles := m.cycles.Load()
	prevNanos := m.lastObsNanos.Swap(nowNanos)
	prevCycles := m.lastObsCycles.Swap(cycles)
	if prevNanos == 0 || nowNanos <= prevNanos {
		return
	}
	rate := float64(cycles-prevCycles) / (float64(nowNanos-prevNanos) / 1e9)
	m.cyclesPerSec.Store(math.Float64bits(rate))
}

// WorkerBusy marks one scheduler worker as occupied by a unit.
func (m *Monitor) WorkerBusy() {
	if m == nil {
		return
	}
	m.busyWorkers.Add(1)
}

// WorkerIdle marks one scheduler worker as free again.
func (m *Monitor) WorkerIdle() {
	if m == nil {
		return
	}
	m.busyWorkers.Add(-1)
}

// MonitorStats is one consistent-enough snapshot of the campaign (each
// field is individually atomic; the set is not a transaction, which is
// fine for progress reporting).
type MonitorStats struct {
	// UnitsStarted / UnitsDone count run units entering / leaving their
	// measured regions; UnitsTotal is the scheduled unit count announced
	// so far and Progress is done/total (0 until a total is known).
	UnitsStarted uint64  `json:"units_started"`
	UnitsDone    uint64  `json:"units_done"`
	UnitsTotal   uint64  `json:"units_total"`
	Progress     float64 `json:"progress"`
	// BusyWorkers is the number of scheduler workers currently running a
	// unit (worker occupancy).
	BusyWorkers int64 `json:"busy_workers"`
	// Instructions / Cycles / WalkCycles aggregate the completed units'
	// counter deltas.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	WalkCycles   uint64 `json:"walk_cycles"`
	// WCPI is the campaign-aggregate walk cycles per instruction over
	// completed units — the paper's headline proxy, live.
	WCPI float64 `json:"wcpi"`
	// IdentitiesChecked / IdentitiesViolated aggregate the refute
	// checker's per-unit results (zero when -refute is off). A non-zero
	// violation count mid-campaign means a counter identity is breaking
	// right now; the final report says where.
	IdentitiesChecked  uint64 `json:"identities_checked"`
	IdentitiesViolated uint64 `json:"identities_violated"`
	// CyclesPerSec is the simulated-cycles-per-wall-second throughput
	// gauge, updated by the CLI heartbeat's ObserveThroughput calls
	// (zero until two observations land). Clients derive an ETA from it
	// and the remaining progress.
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// Snapshot reads the current stats (zero value on a nil monitor).
func (m *Monitor) Snapshot() MonitorStats {
	if m == nil {
		return MonitorStats{}
	}
	s := MonitorStats{
		UnitsStarted:       m.unitsStarted.Load(),
		UnitsDone:          m.unitsDone.Load(),
		UnitsTotal:         m.unitsTotal.Load(),
		BusyWorkers:        m.busyWorkers.Load(),
		Instructions:       m.instructions.Load(),
		Cycles:             m.cycles.Load(),
		WalkCycles:         m.walkCycles.Load(),
		IdentitiesChecked:  m.identsChecked.Load(),
		IdentitiesViolated: m.identsViolated.Load(),
		CyclesPerSec:       math.Float64frombits(m.cyclesPerSec.Load()),
	}
	if s.Instructions > 0 {
		s.WCPI = float64(s.WalkCycles) / float64(s.Instructions)
	}
	if s.UnitsTotal > 0 {
		s.Progress = float64(s.UnitsDone) / float64(s.UnitsTotal)
	}
	return s
}

// JSON renders the snapshot as one JSONL heartbeat line (no trailing
// newline). Field order is fixed by the struct, so heartbeats diff
// cleanly.
func (s MonitorStats) JSON() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// MonitorStats contains only numeric fields; Marshal cannot fail.
		panic(err)
	}
	return b
}
