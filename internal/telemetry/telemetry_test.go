package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilSafety: every recording entry point must be a no-op on nil
// receivers — the disabled-tracer contract the hot paths rely on.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	p := tr.Process("unit")
	if p != nil {
		t.Fatalf("nil tracer returned non-nil process")
	}
	trk := p.Track("walker")
	if trk != nil {
		t.Fatalf("nil process returned non-nil track")
	}
	trk.Sync(10)
	trk.Advance(5)
	trk.Begin("walk")
	trk.Slice("PT", 4, "loc", "L1")
	trk.Instant("mispredict")
	trk.Counter("wcpi", 0.5)
	trk.EndArg("outcome", "ok")
	trk.End()
	if trk.Now() != 0 {
		t.Errorf("nil track Now = %d", trk.Now())
	}
	tr.FinishUnit(Unit{Name: "unit"})
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
	if _, err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("nil tracer export invalid: %v", err)
	}

	var m *Monitor
	m.UnitStarted()
	m.UnitDone(1, 2, 3)
	m.WorkerBusy()
	m.WorkerIdle()
	if s := m.Snapshot(); s != (MonitorStats{}) {
		t.Errorf("nil monitor snapshot = %+v", s)
	}
}

// TestTrackClockDomain: Sync only moves forward, Slice advances the
// cursor by its duration.
func TestTrackClockDomain(t *testing.T) {
	trk := &Track{name: "walker"}
	trk.Sync(100)
	if trk.Now() != 100 {
		t.Fatalf("Now = %d after Sync(100)", trk.Now())
	}
	trk.Slice("PT", 7, "loc", "L2")
	if trk.Now() != 107 {
		t.Fatalf("Now = %d after 7-cycle slice", trk.Now())
	}
	trk.Sync(50) // backwards: must be ignored
	if trk.Now() != 107 {
		t.Fatalf("Sync moved the cursor backwards to %d", trk.Now())
	}
}

// buildTrace records a small two-unit campaign timeline.
func buildTrace() *Tracer {
	tr := New()
	for _, unit := range []string{"unit-b", "unit-a"} { // reverse order on purpose
		p := tr.Process(unit)
		w := p.Track("walker")
		w.Sync(10)
		w.Begin("walk")
		w.Slice("PML4", 6, "loc", "L1")
		w.Slice("PT", 40, "loc", "DRAM")
		w.EndArg("outcome", "ok")
		s := p.Track("speculation")
		s.Sync(30)
		s.Instant("mispredict")
		tr.FinishUnit(Unit{Name: unit, Cycles: 100, Stats: []UnitStat{{Name: "wcpi", Val: 0.25}}})
	}
	return tr
}

// TestExportValidates: the exporter's output passes the structural
// validator and counts what was recorded.
func TestExportValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().Export(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("export failed validation: %v\n%s", err, buf.String())
	}
	if stats.Spans != 2 || stats.Instants != 2 {
		t.Errorf("stats = %+v, want 2 spans and 2 instants", stats)
	}
	// Two units on the campaign track plus 2x2 walker slices.
	if stats.Slices != 6 {
		t.Errorf("slices = %d, want 6 (2 unit tiles + 4 walk levels)", stats.Slices)
	}
	if stats.Counters != 4 { // wcpi at both boundaries of both units
		t.Errorf("counters = %d, want 4", stats.Counters)
	}
}

// TestTrackPin: Pin records explicit-range slices without breaking lane
// monotonicity — several pins may cover the same range (one per
// violated identity), a start behind the cursor clamps to it, and a
// pinned track still exports through a validating timeline.
func TestTrackPin(t *testing.T) {
	var nilTrack *Track
	nilTrack.Pin("x", 0, 10, "", "") // nil-safe like every hook

	tr := New()
	p := tr.Process("unit")
	trk := p.Track("refute")
	trk.Sync(100)
	trk.Pin("violated: a", 100, 500, "detail", "l=1 r=2")
	trk.Pin("violated: b", 100, 500, "detail", "l=3 r=4") // same range again
	trk.Pin("late", 50, 80, "", "")                       // start behind cursor: clamps
	ev := trk.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Ts != 100 || ev[0].Dur != 400 || ev[1].Ts != 100 || ev[1].Dur != 400 {
		t.Errorf("pinned ranges wrong: %+v %+v", ev[0], ev[1])
	}
	if ev[2].Ts != 100 || ev[2].Dur != 0 {
		t.Errorf("clamped pin = %+v, want ts=100 dur=0", ev[2])
	}
	tr.FinishUnit(Unit{Name: "unit", Cycles: 600})
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("pinned timeline fails validation: %v", err)
	}
}

// TestExportDeterministicOrder: units recorded in any order export in
// sorted-name order with serial-equivalent offsets, so two tracers fed
// the same data in different completion orders export identical bytes.
func TestExportDeterministicOrder(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildTrace().Export(&a); err != nil {
		t.Fatal(err)
	}
	tr := New()
	for _, unit := range []string{"unit-a", "unit-b"} { // opposite insertion order
		p := tr.Process(unit)
		w := p.Track("walker")
		w.Sync(10)
		w.Begin("walk")
		w.Slice("PML4", 6, "loc", "L1")
		w.Slice("PT", 40, "loc", "DRAM")
		w.EndArg("outcome", "ok")
		s := p.Track("speculation")
		s.Sync(30)
		s.Instant("mispredict")
		tr.FinishUnit(Unit{Name: unit, Cycles: 100, Stats: []UnitStat{{Name: "wcpi", Val: 0.25}}})
	}
	if err := tr.Export(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("export depends on recording order:\n--- a ---\n%s\n--- b ---\n%s", a.String(), b.String())
	}
	// unit-b tiles after unit-a: its walker events shift by unit-a's
	// 100-cycle duration.
	if !strings.Contains(a.String(), `"name":"unit-b","ph":"X","ts":100`) {
		t.Errorf("unit-b not tiled at ts=100:\n%s", a.String())
	}
}

// TestExportIsChromeTraceJSON: the document parses as JSON with the
// traceEvents array and pid/tid/ph fields Perfetto expects.
func TestExportIsChromeTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTrace().Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	names := 0
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" {
			names++
			continue
		}
		if _, ok := e["pid"]; !ok {
			t.Fatalf("event missing pid: %v", e)
		}
		if e["ph"] == "i" && e["s"] != "t" {
			t.Errorf("instant without thread scope: %v", e)
		}
	}
	if names < 3 {
		t.Errorf("only %d metadata name events", names)
	}
}

// TestValidateRejectsUnmatchedBegin: a Begin with no End must fail.
func TestValidateRejectsUnmatchedBegin(t *testing.T) {
	doc := `{"traceEvents":[{"name":"walk","ph":"B","ts":0,"pid":2,"tid":1}]}`
	if _, err := Validate([]byte(doc)); err == nil {
		t.Fatal("unmatched Begin validated")
	}
}

// TestValidateRejectsEndWithoutBegin.
func TestValidateRejectsEndWithoutBegin(t *testing.T) {
	doc := `{"traceEvents":[{"name":"","ph":"E","ts":5,"pid":2,"tid":1}]}`
	if _, err := Validate([]byte(doc)); err == nil {
		t.Fatal("End without Begin validated")
	}
}

// TestValidateRejectsEscapingSlice: an X slice reaching past its
// enclosing span's end must fail.
func TestValidateRejectsEscapingSlice(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"walk","ph":"B","ts":0,"pid":2,"tid":1},
		{"name":"PT","ph":"X","ts":5,"dur":20,"pid":2,"tid":1},
		{"name":"","ph":"E","ts":10,"pid":2,"tid":1}]}`
	if _, err := Validate([]byte(doc)); err == nil {
		t.Fatal("slice escaping its parent span validated")
	}
}

// TestValidateRejectsBackwardsTime.
func TestValidateRejectsBackwardsTime(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"a","ph":"i","ts":10,"pid":2,"tid":1},
		{"name":"b","ph":"i","ts":5,"pid":2,"tid":1}]}`
	if _, err := Validate([]byte(doc)); err == nil {
		t.Fatal("backwards timestamps validated")
	}
}

// TestMonitorSnapshot: counters aggregate and WCPI derives from them.
func TestMonitorSnapshot(t *testing.T) {
	m := NewMonitor()
	m.UnitStarted()
	m.WorkerBusy()
	m.UnitDone(1000, 2000, 250)
	m.UnitStarted()
	m.UnitDone(1000, 1000, 150)
	m.WorkerIdle()
	s := m.Snapshot()
	if s.UnitsStarted != 2 || s.UnitsDone != 2 || s.BusyWorkers != 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.WCPI != 0.2 {
		t.Errorf("WCPI = %v, want 0.2", s.WCPI)
	}
	var parsed MonitorStats
	if err := json.Unmarshal(s.JSON(), &parsed); err != nil {
		t.Fatalf("heartbeat not JSON: %v", err)
	}
	if parsed != s {
		t.Errorf("JSON round-trip = %+v, want %+v", parsed, s)
	}
}

// TestMonitorIdentityResults: refute outcomes accumulate into the
// snapshot, survive the JSONL heartbeat round-trip under their wire
// names, and are nil-safe like every other Monitor hook.
func TestMonitorIdentityResults(t *testing.T) {
	var nilMon *Monitor
	nilMon.IdentityResults(3, 1) // must not panic

	m := NewMonitor()
	m.IdentityResults(17, 0)
	m.IdentityResults(17, 2)
	s := m.Snapshot()
	if s.IdentitiesChecked != 34 || s.IdentitiesViolated != 2 {
		t.Errorf("snapshot identities = %d/%d, want 34/2", s.IdentitiesChecked, s.IdentitiesViolated)
	}
	line := s.JSON()
	for _, key := range []string{`"identities_checked":34`, `"identities_violated":2`} {
		if !strings.Contains(string(line), key) {
			t.Errorf("heartbeat %s lacks %s", line, key)
		}
	}
	var parsed MonitorStats
	if err := json.Unmarshal(line, &parsed); err != nil {
		t.Fatalf("heartbeat not JSON: %v", err)
	}
	if parsed != s {
		t.Errorf("JSON round-trip = %+v, want %+v", parsed, s)
	}
}
