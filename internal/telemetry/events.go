package telemetry

import (
	"encoding/json"
	"sync"
)

// This file is the streaming half of live telemetry: a Hub that
// fans per-unit completion events out to any number of subscribers
// (the HTTP /events SSE endpoint, tests), with sequence numbers and
// full-history replay so a late subscriber sees the whole campaign in
// order. Like the Monitor, the Hub holds no wall-clock state and every
// publish-side method is a no-op on a nil receiver, so campaigns run
// without streaming pay one pointer compare.

// TreeNode is one flattened attribution-tree node on the wire: the
// node's path from the root, its counter mass, and its share of the
// nearest same-domain ancestor. The simulator side (internal/topdown)
// projects its trees into this shape; keeping the type here lets the
// streaming layer stay ignorant of how trees are built.
type TreeNode struct {
	Path  string  `json:"path"`
	Value float64 `json:"value"`
	Share float64 `json:"share"`
}

// UnitEvent is one run unit's completion announcement: identity,
// headline metrics, the campaign progress counters at publish time,
// and the unit's flattened attribution tree.
type UnitEvent struct {
	// Seq is the hub-assigned publish sequence number (1-based).
	// Subscribers see strictly increasing Seq, replay included.
	Seq uint64 `json:"seq"`
	// Unit is the campaign-unique unit name.
	Unit string `json:"unit"`
	// CPI / WCPI are the unit's headline metrics.
	CPI  float64 `json:"cpi"`
	WCPI float64 `json:"wcpi"`
	// Cycles / Instructions are the unit's measured-region deltas.
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	// UnitsDone / UnitsTotal / BusyWorkers snapshot campaign progress
	// and worker utilization at publish time.
	UnitsDone   uint64 `json:"units_done"`
	UnitsTotal  uint64 `json:"units_total"`
	BusyWorkers int64  `json:"busy_workers"`
	// Tree is the unit's flattened attribution tree (zero-valued
	// subtrees elided).
	Tree []TreeNode `json:"tree,omitempty"`
}

// JSON renders the event as one JSON object (no trailing newline).
func (e UnitEvent) JSON() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		// UnitEvent is plain numbers and strings; Marshal cannot fail.
		panic(err)
	}
	return b
}

// subscriberBuffer bounds one subscriber's unread backlog. A consumer
// that falls further behind than this loses newest-first (the dropped
// count is observable via Dropped); campaign publishers never block on
// a slow reader.
const subscriberBuffer = 4096

// Hub fans UnitEvents out to subscribers. Publish assigns sequence
// numbers and appends to the replay history; Subscribe delivers the
// full history first, then live events, all in Seq order.
type Hub struct {
	mu      sync.Mutex
	history []UnitEvent
	subs    map[chan UnitEvent]struct{}
	dropped uint64
}

// NewHub creates an enabled hub.
func NewHub() *Hub { return &Hub{subs: make(map[chan UnitEvent]struct{})} }

// Publish assigns the next sequence number to ev, stores it for
// replay, and offers it to every live subscriber. Nil-safe; never
// blocks (a full subscriber buffer drops the event for that subscriber
// only).
func (h *Hub) Publish(ev UnitEvent) {
	if h == nil {
		return
	}
	h.mu.Lock()
	ev.Seq = uint64(len(h.history) + 1)
	h.history = append(h.history, ev)
	//atlint:ordered fan-out order is unobservable: every subscriber receives every event, and each channel carries them in Seq order
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped++
		}
	}
	h.mu.Unlock()
}

// Subscribe registers a new subscriber and returns its event channel
// plus a cancel function. The channel first replays the full history
// in order, then carries live events; cancel unregisters and closes
// it. The replay and the live tail never reorder or duplicate: both
// happen under the hub lock.
func (h *Hub) Subscribe() (<-chan UnitEvent, func()) {
	ch := make(chan UnitEvent, subscriberBuffer)
	h.mu.Lock()
	for _, ev := range h.history {
		if len(ch) == cap(ch) {
			break // pathological: history alone overflows the buffer
		}
		ch <- ev
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, ch)
			h.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Subscribers reports the live subscriber count (tests; the SSE
// disconnect path is verified through it).
func (h *Hub) Subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// History returns a copy of every published event, in Seq order.
func (h *Hub) History() []UnitEvent {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]UnitEvent, len(h.history))
	copy(out, h.history)
	return out
}
