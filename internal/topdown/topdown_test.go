package topdown

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"atscale/internal/perf"
	"atscale/internal/refute"
)

// fabricatedCounters builds a counter set that exercises every subtree
// with hand-checkable arithmetic: 1000 cycles, 200 of them translation
// (40 guest + 160 EPT), 40 L1-TLB misses (10 STLB hits + 30 walks, of
// which 26 complete and 22 retire), 28 walker loads across both
// dimensions, and 2 scheme probes.
func fabricatedCounters(t *testing.T) perf.Counters {
	t.Helper()
	var c perf.Counters
	set := func(name string, v uint64) {
		e, err := perf.ByName(name)
		if err != nil {
			t.Fatalf("fabricated counter %q: %v", name, err)
		}
		c.Add(e, v)
	}
	set("cpu_clk_unhalted.thread", 1000)
	set("dtlb_load_misses.walk_duration", 150)
	set("dtlb_store_misses.walk_duration", 50)
	set("dtlb_load_misses.walk_duration_guest", 30)
	set("dtlb_store_misses.walk_duration_guest", 10)
	set("ept_misses.walk_duration", 160)
	set("dtlb_load_misses.stlb_hit", 5)
	set("dtlb_store_misses.stlb_hit", 5)
	set("dtlb_load_misses.miss_causes_a_walk", 20)
	set("dtlb_store_misses.miss_causes_a_walk", 10)
	set("dtlb_load_misses.walk_completed", 18)
	set("dtlb_store_misses.walk_completed", 8)
	set("mem_uops_retired.stlb_miss_loads", 15)
	set("mem_uops_retired.stlb_miss_stores", 7)
	set("page_walker_loads.dtlb_l1", 10)
	set("page_walker_loads.dtlb_l2", 5)
	set("page_walker_loads.dtlb_l3", 3)
	set("page_walker_loads.dtlb_memory", 2)
	set("page_walker_loads.ept_dtlb_l1", 4)
	set("page_walker_loads.ept_dtlb_l2", 2)
	set("page_walker_loads.ept_dtlb_l3", 1)
	set("page_walker_loads.ept_dtlb_memory", 1)
	set("numa.migrations", 2)
	return c
}

// TestSpecShape validates the declared tree's structural contract:
// unique paths, an expression exactly on kindExpr nodes, residuals as
// childless leaves, and no same-domain kindSum child under a kindExpr
// parent (which would make the generated conservation law partially
// vacuous — Identities' collect relies on this).
func TestSpecShape(t *testing.T) {
	root := treeSpec()
	seen := map[string]bool{}
	var rec func(s *spec, path string)
	rec = func(s *spec, path string) {
		p := s.name
		if path != "" {
			p = path + "/" + s.name
		}
		if seen[p] {
			t.Errorf("duplicate node path %q", p)
		}
		seen[p] = true
		switch s.kind {
		case kindExpr:
			if reflect.DeepEqual(s.expr, refute.Expr{}) {
				t.Errorf("%s: kindExpr with an empty expr", p)
			}
		case kindResidual:
			if !reflect.DeepEqual(s.expr, refute.Expr{}) || len(s.kids) > 0 {
				t.Errorf("%s: residuals must be childless with no expr", p)
			}
		case kindSum:
			if !reflect.DeepEqual(s.expr, refute.Expr{}) {
				t.Errorf("%s: kindSum with an expr", p)
			}
			if len(s.kids) == 0 {
				t.Errorf("%s: kindSum with no children", p)
			}
		}
		if s.kind == kindExpr {
			for i := range s.kids {
				k := &s.kids[i]
				if k.domain == s.domain && k.kind == kindSum {
					t.Errorf("%s: same-domain kindSum child %q under a kindExpr parent", p, k.name)
				}
			}
		}
		for i := range s.kids {
			rec(&s.kids[i], p)
		}
	}
	rec(&root, "")
}

// TestBuildArithmetic hand-checks residual and share math on the
// fabricated counters.
func TestBuildArithmetic(t *testing.T) {
	tr := FromCounters(fabricatedCounters(t))
	checks := []struct {
		path         string
		value, share float64
	}{
		{"cycles", 1000, 1},
		{"cycles/translation", 200, 0.2},
		{"cycles/compute", 800, 0.8},
		{"cycles/translation/guest", 40, 0.2},
		{"cycles/translation/ept", 160, 0.8},
		{"cycles/translation/tlb_misses", 40, 1}, // domain break: new 100%
		{"cycles/translation/tlb_misses/stlb_hit", 10, 0.25},
		{"cycles/translation/tlb_misses/walks", 30, 0.75},
		{"cycles/translation/tlb_misses/walks/completed", 26, 26.0 / 30},
		{"cycles/translation/tlb_misses/walks/aborted", 4, 4.0 / 30},
		{"cycles/translation/tlb_misses/walks/completed/retired", 22, 22.0 / 26},
		{"cycles/translation/tlb_misses/walks/completed/wrong_path", 4, 4.0 / 26},
		{"cycles/translation/walker_loads", 28, 1},
		{"cycles/translation/walker_loads/guest_loads", 20, 20.0 / 28},
		{"cycles/translation/walker_loads/ept_loads", 8, 8.0 / 28},
		{"cycles/translation/walker_loads/guest_loads/memory", 2, 0.1},
		{"cycles/translation/scheme", 2, 1},
		{"cycles/translation/scheme/numa_migrations", 2, 1},
	}
	for _, c := range checks {
		n := tr.Lookup(c.path)
		if n == nil {
			t.Errorf("no node at %q", c.path)
			continue
		}
		if n.Value != c.value {
			t.Errorf("%s: value %v, want %v", c.path, n.Value, c.value)
		}
		if math.Abs(n.Share-c.share) > 1e-12 {
			t.Errorf("%s: share %v, want %v", c.path, n.Share, c.share)
		}
	}
}

// TestIdentitiesGenerated pins the mechanically derived law set: four
// non-vacuous conservation identities, in declaration order, all
// holding on the fabricated unit and all violated when the arithmetic
// is broken.
func TestIdentitiesGenerated(t *testing.T) {
	ids := Identities()
	want := []string{
		"topdown_cycles_conserves",
		"topdown_translation_conserves",
		"topdown_walks_conserves",
		"topdown_completed_conserves",
	}
	if len(ids) != len(want) {
		t.Fatalf("got %d identities, want %d", len(ids), len(want))
	}
	for i, id := range ids {
		if id.Name != want[i] {
			t.Errorf("identity %d: %s, want %s", i, id.Name, want[i])
		}
		if id.Scope != refute.Always {
			t.Errorf("%s: scope %v, want Always (the tree is defined on every unit)", id.Name, id.Scope)
		}
	}

	clean := refute.NewChecker(ids...)
	out := clean.CheckUnit(refute.Unit{Name: "fab", Counters: fabricatedCounters(t)}, nil)
	if len(out.Violations) != 0 || out.Checked != len(ids) {
		t.Fatalf("clean unit: %+v (report:\n%s)", out, clean.Report().Render())
	}

	// Break conservation: more completed walks than initiated ones.
	broken := fabricatedCounters(t)
	e, err := perf.ByName("dtlb_load_misses.walk_completed")
	if err != nil {
		t.Fatal(err)
	}
	broken.Add(e, 1000)
	dirty := refute.NewChecker(ids...)
	out = dirty.CheckUnit(refute.Unit{Name: "broken", Counters: broken}, nil)
	if len(out.Violations) == 0 {
		t.Error("fabricated over-completion violated nothing")
	}
}

// TestDelta checks the signed A/B comparison: values subtract, shares
// become relative change, zero-A nodes report zero change.
func TestDelta(t *testing.T) {
	a := FromCounters(fabricatedCounters(t))
	cb := fabricatedCounters(t)
	e, err := perf.ByName("cpu_clk_unhalted.thread")
	if err != nil {
		t.Fatal(err)
	}
	cb.Add(e, 500) // B spends 1500 cycles
	b := FromCounters(cb)

	d := Delta(a, b)
	if !d.IsDelta {
		t.Error("Delta tree not marked IsDelta")
	}
	root := d.Lookup("cycles")
	if root.Value != 500 || math.Abs(root.Share-0.5) > 1e-12 {
		t.Errorf("delta root: value %v share %v, want 500 and 0.5", root.Value, root.Share)
	}
	// translation is unchanged, so compute absorbs the extra cycles.
	if n := d.Lookup("cycles/translation"); n.Value != 0 || n.Share != 0 {
		t.Errorf("delta translation: %+v, want zero change", n)
	}
	if n := d.Lookup("cycles/compute"); n.Value != 500 {
		t.Errorf("delta compute: value %v, want 500", n.Value)
	}
	// A zero-on-both-sides leaf reports zero change, not NaN.
	if n := d.Lookup("cycles/translation/scheme/dramcache_hit"); n.Value != 0 || n.Share != 0 {
		t.Errorf("zero leaf delta: %+v", n)
	}
}

// TestRenderDeterministic: same counters, same bytes — the property the
// core flatgold-style test holds campaign output to.
func TestRenderDeterministic(t *testing.T) {
	c := fabricatedCounters(t)
	r1, r2 := FromCounters(c).Render(), FromCounters(c).Render()
	if r1 != r2 {
		t.Fatal("Render is not deterministic for identical counters")
	}
	for _, needle := range []string{"cycles", "translation", "compute", "tlb_misses [walks]", "walker_loads [loads]", "scheme [probes]"} {
		if !strings.Contains(r1, needle) {
			t.Errorf("rendered tree lacks %q:\n%s", needle, r1)
		}
	}
	j1, j2 := FromCounters(c).RenderJSON(), FromCounters(c).RenderJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("RenderJSON is not deterministic")
	}
	var round Tree
	if err := json.Unmarshal(j1, &round); err != nil {
		t.Fatalf("RenderJSON round-trip: %v", err)
	}
	if round.Root.Value != 1000 {
		t.Errorf("round-tripped root value %v, want 1000", round.Root.Value)
	}
}

// TestFlatten: zero-valued nodes are elided (except the root), and
// paths arrive in pre-order.
func TestFlatten(t *testing.T) {
	flat := FromCounters(fabricatedCounters(t)).Flatten()
	if len(flat) == 0 || flat[0].Path != "cycles" {
		t.Fatalf("flatten head: %+v", flat)
	}
	for _, n := range flat {
		if n.Value == 0 && n.Path != "cycles" {
			t.Errorf("zero-valued node %q not elided", n.Path)
		}
	}
	// The zero counter set keeps only the root.
	if flat := FromCounters(perf.Counters{}).Flatten(); len(flat) != 1 || flat[0].Path != "cycles" {
		t.Errorf("zero-counter flatten: %+v, want just the root", flat)
	}
}

// TestWalkOrder: pre-order, parents before kids.
func TestWalkOrder(t *testing.T) {
	seen := map[string]bool{}
	FromCounters(fabricatedCounters(t)).Walk(func(n *Node) {
		if i := strings.LastIndexByte(n.Path, '/'); i >= 0 {
			if !seen[n.Path[:i]] {
				t.Errorf("node %q visited before its parent", n.Path)
			}
		}
		seen[n.Path] = true
	})
	if !seen["cycles/translation/tlb_misses/walks/completed/wrong_path"] {
		t.Error("walk missed the deepest leaf")
	}
}
