// Package topdown answers the hierarchical question the flat counter
// listing cannot: where did every simulated cycle go? It declares one
// attribution tree — root `cycles` splitting into compute vs.
// translation, translation into the guest/EPT dimensions, the TLB
// filter, the walk-outcome ladder, the walker's PTE-load levels, and
// the scheme mechanism probes — as pure data over internal/refute's
// Expr trees, so every node is an arithmetic expression over the same
// perf counters the paper's methodology reads.
//
// The tree audits itself: Identities() mechanically derives a refute
// conservation law for every independently-counted parent ("children
// sum to parent", or "parent bounds its non-residual children" when a
// residual child closes the partition), so a campaign run with the
// combined registry (core.CampaignIdentities) checks the tree's
// arithmetic on every unit. Residual nodes (compute, aborted,
// wrong_path) are *defined* as parent minus siblings; the generated
// identities are exactly the statements that those residuals are
// non-negative, i.e. that the tree's rendering never fabricates cycles.
//
// Trees built from the same counters are bit-identical: Build is a pure
// function of the unit, so serial and parallel campaigns render the
// same bytes (core's flatgold-style test holds it to that).
package topdown

import (
	"fmt"

	"atscale/internal/perf"
	"atscale/internal/refute"
)

// Ev references a perf event by its perf-tool spelling. It is the
// package's only source of counter names, and the atlint eventname
// analyzer vets every constant string passed to it against the live
// event table — a typo'd node is a lint error, not a silently-zero
// subtree.
func Ev(name string) refute.Expr { return refute.Ev(name) }

// Domain tags what a node's value counts. Conservation laws only relate
// nodes within one domain: a child in a different domain is a drill-down
// view (walk counts under translation cycles), not a summand.
type Domain string

const (
	// DomainCycles counts simulated core cycles.
	DomainCycles Domain = "cycles"
	// DomainWalks counts page-table walks (and the TLB events that
	// filter them).
	DomainWalks Domain = "walks"
	// DomainLoads counts walker PTE loads.
	DomainLoads Domain = "loads"
	// DomainProbes counts translation-scheme mechanism probes.
	DomainProbes Domain = "probes"
)

// kind discriminates how a node's value is produced.
type kind uint8

const (
	// kindExpr evaluates an independent counter expression.
	kindExpr kind = iota
	// kindResidual is parent minus the non-residual same-domain
	// siblings — the "everything else" slice that closes a partition.
	kindResidual
	// kindSum is defined as the sum of its children. No conservation
	// identity is generated for it (the relation would be vacuous).
	kindSum
)

// spec is one declared tree node.
type spec struct {
	name   string
	doc    string
	domain Domain
	kind   kind
	expr   refute.Expr
	kids   []spec
}

// Spec returns the declared attribution tree. It is rebuilt on each
// call (Exprs are small plain data); Build and Identities both consume
// it, so the rendered tree and the audited laws can never drift apart.
func treeSpec() spec {
	walkDuration := refute.Sum(Ev("dtlb_load_misses.walk_duration"), Ev("dtlb_store_misses.walk_duration"))
	walksInitiated := refute.Sum(Ev("dtlb_load_misses.miss_causes_a_walk"), Ev("dtlb_store_misses.miss_causes_a_walk"))
	walksCompleted := refute.Sum(Ev("dtlb_load_misses.walk_completed"), Ev("dtlb_store_misses.walk_completed"))
	walksRetired := refute.Sum(Ev("mem_uops_retired.stlb_miss_loads"), Ev("mem_uops_retired.stlb_miss_stores"))
	stlbHits := refute.Sum(Ev("dtlb_load_misses.stlb_hit"), Ev("dtlb_store_misses.stlb_hit"))

	walkLadder := spec{
		name: "walks", doc: "initiated page-table walks (Table VI ladder)",
		domain: DomainWalks, expr: walksInitiated,
		kids: []spec{
			{name: "completed", doc: "walks that reached a leaf PTE",
				domain: DomainWalks, expr: walksCompleted,
				kids: []spec{
					{name: "retired", doc: "completed walks whose uop retired",
						domain: DomainWalks, expr: walksRetired},
					{name: "wrong_path", doc: "completed walks squashed before retirement (Completed - Retired)",
						domain: DomainWalks, kind: kindResidual},
				}},
			{name: "aborted", doc: "walks squashed before completion (Initiated - Completed)",
				domain: DomainWalks, kind: kindResidual},
		},
	}
	tlb := spec{
		name: "tlb_misses", doc: "first-level TLB misses: the STLB filters them, the remainder walks",
		domain: DomainWalks, kind: kindSum,
		kids: []spec{
			{name: "stlb_hit", doc: "L1-TLB misses the second-level TLB caught",
				domain: DomainWalks, expr: stlbHits},
			walkLadder,
		},
	}
	loadLevels := func(prefix string) []spec {
		return []spec{
			{name: "l1", doc: "PTE loads served by the L1 data cache",
				domain: DomainLoads, expr: Ev(prefix + "l1")},
			{name: "l2", doc: "PTE loads served by the L2 cache",
				domain: DomainLoads, expr: Ev(prefix + "l2")},
			{name: "l3", doc: "PTE loads served by the L3 cache",
				domain: DomainLoads, expr: Ev(prefix + "l3")},
			{name: "memory", doc: "PTE loads that went to DRAM",
				domain: DomainLoads, expr: Ev(prefix + "memory")},
		}
	}
	loads := spec{
		name: "walker_loads", doc: "PTE loads issued by the page walker, by serving cache level",
		domain: DomainLoads, kind: kindSum,
		kids: []spec{
			{name: "guest_loads", doc: "guest-dimension PTE loads",
				domain: DomainLoads, kind: kindSum, kids: loadLevels("page_walker_loads.dtlb_")},
			{name: "ept_loads", doc: "EPT-dimension PTE loads (nested paging only)",
				domain: DomainLoads, kind: kindSum, kids: loadLevels("page_walker_loads.ept_dtlb_")},
		},
	}
	schemeProbes := spec{
		name: "scheme", doc: "translation-scheme mechanism probes (zero for backends not in play)",
		domain: DomainProbes, kind: kindSum,
		kids: []spec{
			{name: "victima_block_hit", doc: "Victima PTE-block directory hits",
				domain: DomainProbes, expr: Ev("scheme_walk_loads.block_hit")},
			{name: "victima_block_miss", doc: "Victima PTE-block directory misses",
				domain: DomainProbes, expr: Ev("scheme_walk_loads.block_miss")},
			{name: "mitosis_local", doc: "Mitosis walks served from the local replica",
				domain: DomainProbes, expr: Ev("replica_local_walks")},
			{name: "mitosis_remote", doc: "Mitosis walks that crossed the interconnect",
				domain: DomainProbes, expr: Ev("replica_remote_walks")},
			{name: "dramcache_hit", doc: "die-stacked DRAM cache tag hits on walker loads",
				domain: DomainProbes, expr: Ev("dramcache_hits")},
			{name: "dramcache_miss", doc: "die-stacked DRAM cache tag misses",
				domain: DomainProbes, expr: Ev("dramcache_misses")},
			{name: "numa_migrations", doc: "deterministic NUMA thread migrations",
				domain: DomainProbes, expr: Ev("numa.migrations")},
		},
	}
	return spec{
		name: "cycles", doc: "all simulated core cycles of the measured region",
		domain: DomainCycles, expr: Ev("cpu_clk_unhalted.thread"),
		kids: []spec{
			{name: "translation", doc: "cycles with a page walk in flight (walk_duration, both dimensions)",
				domain: DomainCycles, expr: walkDuration,
				kids: []spec{
					{name: "guest", doc: "guest-dimension walk cycles",
						domain: DomainCycles,
						expr: refute.Sum(Ev("dtlb_load_misses.walk_duration_guest"),
							Ev("dtlb_store_misses.walk_duration_guest"))},
					{name: "ept", doc: "EPT-dimension walk cycles (zero natively)",
						domain: DomainCycles, expr: Ev("ept_misses.walk_duration")},
					tlb,
					loads,
					schemeProbes,
				}},
			{name: "compute", doc: "cycles with no walk in flight (cycles - translation)",
				domain: DomainCycles, kind: kindResidual},
		},
	}
}

// Node is one evaluated tree node.
type Node struct {
	// Name is the node's path segment; Path joins the segments from the
	// root ("cycles/translation/guest").
	Name string `json:"name"`
	Path string `json:"path"`
	// Doc says what the node counts.
	Doc string `json:"doc,omitempty"`
	// Domain tags the node's unit of account.
	Domain Domain `json:"domain"`
	// Value is the node's evaluated counter mass. In a delta tree it is
	// the signed difference B - A.
	Value float64 `json:"value"`
	// Share is Value over the nearest same-domain ancestor's Value
	// (1 for each domain's root). In a delta tree it is the relative
	// change against the A side (0 when A was zero).
	Share float64 `json:"share"`
	// Kids are the node's children, in declaration order.
	Kids []*Node `json:"kids,omitempty"`
}

// Tree is one evaluated attribution tree.
type Tree struct {
	Root *Node `json:"root"`
	// IsDelta marks an A/B comparison tree (see Delta).
	IsDelta bool `json:"delta,omitempty"`
}

// Build evaluates the attribution tree against one unit's counters.
// It is a pure function of the unit: same counters, same tree, bit for
// bit.
func Build(u *refute.Unit) *Tree {
	s := treeSpec()
	return &Tree{Root: eval(&s, u, "")}
}

// FromCounters builds the tree over a bare counter set (campaign and
// per-group aggregates; the tree references no derived metrics or
// sampler fields, so counters alone determine it).
func FromCounters(c perf.Counters) *Tree {
	u := refute.Unit{Counters: c}
	return Build(&u)
}

// eval recursively evaluates one spec node. A node's residual children
// and child shares are filled here, after its counted children resolve.
func eval(s *spec, u *refute.Unit, parentPath string) *Node {
	path := s.name
	if parentPath != "" {
		path = parentPath + "/" + s.name
	}
	n := &Node{Name: s.name, Path: path, Doc: s.doc, Domain: s.domain}
	switch s.kind {
	case kindExpr:
		n.Value = s.expr.Eval(u)
	case kindResidual:
		// Filled by the parent after its non-residual kids evaluate.
	case kindSum:
		// Filled after the kids evaluate.
	}
	var kidSum float64
	var residuals []*Node
	for i := range s.kids {
		k := &s.kids[i]
		kn := eval(k, u, path)
		n.Kids = append(n.Kids, kn)
		if k.domain != s.domain {
			continue
		}
		if k.kind == kindResidual {
			residuals = append(residuals, kn)
			continue
		}
		kidSum += kn.Value
	}
	if s.kind == kindSum {
		n.Value = kidSum
	}
	for _, rn := range residuals {
		rn.Value = n.Value - kidSum
	}
	// Shares are relative to the nearest same-domain ancestor; a
	// domain break starts a new 100%.
	for _, kn := range n.Kids {
		if kn.Domain == s.domain && n.Value != 0 {
			kn.Share = kn.Value / n.Value
		} else if kn.Domain != s.domain {
			kn.Share = 1
		}
	}
	if parentPath == "" {
		n.Share = 1
	}
	return n
}

// Walk visits every node of the tree in declaration (depth-first,
// pre-order) order.
func (t *Tree) Walk(fn func(*Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		fn(n)
		for _, k := range n.Kids {
			rec(k)
		}
	}
	if t != nil && t.Root != nil {
		rec(t.Root)
	}
}

// Lookup returns the node at the given path ("cycles/translation"), or
// nil when the tree has no such node.
func (t *Tree) Lookup(path string) *Node {
	var found *Node
	t.Walk(func(n *Node) {
		if n.Path == path {
			found = n
		}
	})
	return found
}

// Identities mechanically derives the tree's conservation laws as
// refute identities: for every independently-counted parent whose
// same-domain children are themselves independently counted, either
// the children partition the parent exactly (EQ) or — when a residual
// child closes the partition — the parent bounds the counted children
// (GE, i.e. the residual is non-negative). Sum-defined nodes generate
// nothing: their relation to their children holds by construction and
// a vacuous identity would only inflate the checked count.
func Identities() []refute.Identity {
	s := treeSpec()
	var out []refute.Identity
	collect(&s, &out)
	return out
}

// collect appends the conservation identity of s (if any) and recurses.
func collect(s *spec, out *[]refute.Identity) {
	if s.kind == kindExpr && len(s.kids) > 0 {
		var counted []refute.Expr
		var residual string
		for i := range s.kids {
			k := &s.kids[i]
			if k.domain != s.domain {
				continue
			}
			switch k.kind {
			case kindExpr:
				counted = append(counted, k.expr)
			case kindResidual:
				residual = k.name
			case kindSum:
				// A same-domain sum child would make the law partially
				// vacuous; the declared tree has none (validated by the
				// package tests).
			}
		}
		if len(counted) > 0 {
			if residual != "" {
				*out = append(*out, refute.Identity{
					Name: "topdown_" + s.name + "_conserves",
					Doc: fmt.Sprintf("topdown: %s bounds its counted children (residual %q stays non-negative)",
						s.name, residual),
					L: s.expr, Rel: refute.GE, R: refute.Sum(counted...),
				})
			} else {
				*out = append(*out, refute.Identity{
					Name: "topdown_" + s.name + "_conserves",
					Doc:  fmt.Sprintf("topdown: the children of %s partition it exactly", s.name),
					L:    refute.Sum(counted...), Rel: refute.EQ, R: s.expr,
				})
			}
		}
	}
	for i := range s.kids {
		collect(&s.kids[i], out)
	}
}
