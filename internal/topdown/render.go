package topdown

import (
	"encoding/json"
	"fmt"
	"strings"

	"atscale/internal/telemetry"
)

// Render emits the tree as indented text: one node per line with its
// value and its share of the nearest same-domain ancestor. A node that
// opens a new domain is tagged with it ("[walks]") and restarts the
// share column at 100%. Delta trees render signed values and the share
// column becomes the relative change against the A side.
//
// The output is deterministic: same tree, same bytes.
func (t *Tree) Render() string {
	var b strings.Builder
	t.renderNode(&b, t.Root, 0, "")
	return b.String()
}

func (t *Tree) renderNode(b *strings.Builder, n *Node, depth int, parentDomain Domain) {
	if n == nil {
		return
	}
	label := strings.Repeat("  ", depth) + n.Name
	if n.Domain != parentDomain && parentDomain != "" {
		label += " [" + string(n.Domain) + "]"
	}
	if t.IsDelta {
		fmt.Fprintf(b, "%-42s %+14.0f  %+7.1f%%\n", label, n.Value, 100*n.Share)
	} else {
		fmt.Fprintf(b, "%-42s %14.0f  %6.1f%%\n", label, n.Value, 100*n.Share)
	}
	for _, k := range n.Kids {
		t.renderNode(b, k, depth+1, n.Domain)
	}
}

// RenderJSON emits the tree as deterministic indented JSON.
func (t *Tree) RenderJSON() []byte {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		// The tree is plain floats and strings; Marshal cannot fail.
		panic(err)
	}
	return b
}

// Delta builds the A/B comparison tree: node-wise Value is b-a and
// Share is the relative change (b-a)/a, 0 where the A side is zero.
// Both trees come from the same declared spec, so their shapes match
// by construction; Delta panics on a shape mismatch (a version skew
// between serialized trees, never a runtime condition).
func Delta(a, b *Tree) *Tree {
	return &Tree{Root: deltaNode(a.Root, b.Root), IsDelta: true}
}

func deltaNode(a, b *Node) *Node {
	if a.Path != b.Path || len(a.Kids) != len(b.Kids) {
		panic(fmt.Sprintf("topdown: delta shape mismatch at %q vs %q", a.Path, b.Path))
	}
	n := &Node{Name: a.Name, Path: a.Path, Doc: a.Doc, Domain: a.Domain, Value: b.Value - a.Value}
	if a.Value != 0 {
		n.Share = (b.Value - a.Value) / a.Value
	}
	for i := range a.Kids {
		n.Kids = append(n.Kids, deltaNode(a.Kids[i], b.Kids[i]))
	}
	return n
}

// Flatten projects the tree onto telemetry's wire shape: one
// (path, value, share) triple per node, in pre-order, ready to embed
// in a streaming unit event. Nodes with zero value and zero share are
// dropped (native runs would otherwise ship the whole EPT and scheme
// subtrees as zeros on every event).
func (t *Tree) Flatten() []telemetry.TreeNode {
	var out []telemetry.TreeNode
	t.Walk(func(n *Node) {
		if n.Value == 0 && n.Path != "cycles" {
			return
		}
		out = append(out, telemetry.TreeNode{Path: n.Path, Value: n.Value, Share: n.Share})
	})
	return out
}
