// Package cache models the data-cache hierarchy of the simulated machine.
// Demand accesses and page-table-walker loads share the same arrays, so
// PTEs compete with program data for capacity — the interaction behind the
// paper's PTE-hotness results (Fig. 8) and the mcf "PTEs outcompete data"
// anomaly (§V-C).
//
// Caches are set-associative with true LRU. Only presence is modelled (no
// data movement): a line address either hits or misses, and the hierarchy
// converts the first hit level into a load-to-use latency.
package cache

import (
	"math"

	"atscale/internal/arch"
)

// invalidTag marks an empty way.
const invalidTag = math.MaxUint64

// Cache is one set-associative level. Line addresses are physical addresses
// shifted right by the cache-line shift; the caller does the shifting once
// so all three levels share it.
type Cache struct {
	sets    int
	ways    int
	latency uint64
	policy  arch.ReplacementPolicy

	tags []uint64
	// stamp carries the policy's recency state: an LRU timestamp, or an
	// NRU reference bit.
	stamp []uint64
	clock uint64
	// rng is the random policy's xorshift state.
	rng uint64
}

// New builds a cache from its geometry.
func New(g arch.CacheGeometry) *Cache {
	lines := g.SizeBytes / arch.CacheLineSize
	sets := lines / g.Ways
	policy := g.Replacement
	if policy == "" {
		policy = arch.ReplaceLRU
	}
	c := &Cache{
		sets:    sets,
		ways:    g.Ways,
		latency: g.Latency,
		policy:  policy,
		tags:    make([]uint64, lines),
		stamp:   make([]uint64, lines),
		rng:     0x853C49E6748FEA9B,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Latency returns the level's load-to-use latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// touch refreshes a way's recency state on a reference.
func (c *Cache) touch(i uint64) {
	switch c.policy {
	case arch.ReplaceNRU:
		c.stamp[i] = 1
	default: // LRU and random both keep timestamps (random ignores them)
		c.stamp[i] = c.clock
	}
}

// Lookup probes for the line and refreshes its recency state on a hit. It
// does not allocate on a miss (the hierarchy decides fills).
func (c *Cache) Lookup(line uint64) bool {
	base := (line % uint64(c.sets)) * uint64(c.ways)
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == line {
			c.touch(base + uint64(w))
			return true
		}
	}
	return false
}

// victim picks the way to evict in a full set starting at base.
func (c *Cache) victim(base uint64) uint64 {
	switch c.policy {
	case arch.ReplaceRandom:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return base + c.rng%uint64(c.ways)
	case arch.ReplaceNRU:
		for w := 0; w < c.ways; w++ {
			if c.stamp[base+uint64(w)] == 0 {
				return base + uint64(w)
			}
		}
		// All referenced: clear the set's bits and take way 0.
		for w := 0; w < c.ways; w++ {
			c.stamp[base+uint64(w)] = 0
		}
		return base
	default: // LRU
		victim := base
		oldest := uint64(math.MaxUint64)
		for w := 0; w < c.ways; w++ {
			if s := c.stamp[base+uint64(w)]; s < oldest {
				victim, oldest = base+uint64(w), s
			}
		}
		return victim
	}
}

// Fill inserts the line, evicting a victim if the set is full. Filling a
// line that is already present only refreshes its recency state.
func (c *Cache) Fill(line uint64) {
	base := (line % uint64(c.sets)) * uint64(c.ways)
	c.clock++
	empty := int64(-1)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == line {
			c.touch(i)
			return
		}
		if c.tags[i] == invalidTag && empty < 0 {
			empty = int64(i)
		}
	}
	i := uint64(empty)
	if empty < 0 {
		i = c.victim(base)
	}
	c.tags[i] = line
	c.touch(i)
}

// Invalidate removes the line if present.
func (c *Cache) Invalidate(line uint64) {
	base := (line % uint64(c.sets)) * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == line {
			c.tags[base+uint64(w)] = invalidTag
			c.stamp[base+uint64(w)] = 0
			return
		}
	}
}

// Contains probes without touching LRU state (test/debug helper).
func (c *Cache) Contains(line uint64) bool {
	base := (line % uint64(c.sets)) * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == line {
			return true
		}
	}
	return false
}

// HitLoc identifies where in the hierarchy an access was satisfied. The
// names mirror the Haswell PAGE_WALKER_LOADS.DTLB_* event suffixes.
type HitLoc uint8

const (
	// HitL1 means the line was found in the L1 data cache.
	HitL1 HitLoc = iota
	// HitL2 means the line was found in the L2 cache.
	HitL2
	// HitL3 means the line was found in the shared L3 cache.
	HitL3
	// HitMem means the access went to DRAM.
	HitMem
	// NumHitLocs is the number of hit locations.
	NumHitLocs
)

// String implements fmt.Stringer.
func (h HitLoc) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	case HitMem:
		return "Memory"
	}
	return "?"
}

// Hierarchy is the three-level cache stack plus DRAM.
type Hierarchy struct {
	l1, l2, l3 *Cache
	dram       uint64
}

// NewHierarchy builds the hierarchy described by cfg.
func NewHierarchy(cfg *arch.SystemConfig) *Hierarchy {
	return &Hierarchy{
		l1:   New(cfg.L1D),
		l2:   New(cfg.L2),
		l3:   New(cfg.L3),
		dram: cfg.DRAMLatency,
	}
}

// Access performs a load of the line containing pa: it returns the
// load-to-use latency and the level that satisfied it, then fills the line
// into every level above the hit (mostly-inclusive, as on Haswell).
func (h *Hierarchy) Access(pa arch.PAddr) (latency uint64, loc HitLoc) {
	line := uint64(pa) >> 6 // arch.CacheLineSize == 64
	switch {
	case h.l1.Lookup(line):
		return h.l1.latency, HitL1
	case h.l2.Lookup(line):
		h.l1.Fill(line)
		return h.l2.latency, HitL2
	case h.l3.Lookup(line):
		h.l1.Fill(line)
		h.l2.Fill(line)
		return h.l3.latency, HitL3
	default:
		h.l1.Fill(line)
		h.l2.Fill(line)
		h.l3.Fill(line)
		return h.dram, HitMem
	}
}

// Latency returns the load-to-use latency of the given hit location.
func (h *Hierarchy) Latency(loc HitLoc) uint64 {
	switch loc {
	case HitL1:
		return h.l1.latency
	case HitL2:
		return h.l2.latency
	case HitL3:
		return h.l3.latency
	default:
		return h.dram
	}
}

// L1 exposes the first-level cache (test/debug helper).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 exposes the second-level cache (test/debug helper).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 exposes the last-level cache (test/debug helper).
func (h *Hierarchy) L3() *Cache { return h.l3 }
