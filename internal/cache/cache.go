// Package cache models the data-cache hierarchy of the simulated machine.
// Demand accesses and page-table-walker loads share the same arrays, so
// PTEs compete with program data for capacity — the interaction behind the
// paper's PTE-hotness results (Fig. 8) and the mcf "PTEs outcompete data"
// anomaly (§V-C).
//
// Caches are set-associative with true LRU. Only presence is modelled (no
// data movement): a line address either hits or misses, and the hierarchy
// converts the first hit level into a load-to-use latency.
package cache

import (
	"math"

	"atscale/internal/arch"
)

// invalidTag marks an empty way.
const invalidTag = math.MaxUint64

// replKind is a replacement policy decoded to a branch-cheap enum at
// construction. The config names policies as strings; comparing those
// per reference (touch and victim run on every probe) would put string
// compares in the hierarchy's hottest loop and push Lookup past the
// compiler's inlining budget.
type replKind uint8

const (
	replLRU replKind = iota
	replRandom
	replNRU
)

// Cache is one set-associative level. Line addresses are physical addresses
// shifted right by the cache-line shift; the caller does the shifting once
// so all three levels share it.
type Cache struct {
	sets    uint64
	ways    uint64
	latency uint64
	kind    replKind

	tags []uint64
	// stamp carries the policy's recency state: an LRU timestamp, or an
	// NRU reference bit.
	stamp []uint64
	clock uint64
	// rng is the random policy's xorshift state.
	rng uint64

	// mask is sets-1 when the set count is a power of two (pow2), letting
	// the per-access set index be an AND instead of a runtime division.
	// Table III's L3 (24576 sets) is not a power of two, so the modulo
	// path stays load-bearing.
	mask uint64
	pow2 bool
}

// rngSeed is the random policy's fixed xorshift seed.
const rngSeed = 0x853C49E6748FEA9B

// setBase returns the first way index of the line's set.
func (c *Cache) setBase(line uint64) uint64 {
	if c.pow2 {
		return (line & c.mask) * c.ways
	}
	return (line % c.sets) * c.ways
}

// New builds a cache from its geometry.
func New(g arch.CacheGeometry) *Cache {
	lines := g.SizeBytes / arch.CacheLineSize
	sets := uint64(lines / g.Ways)
	kind := replLRU
	switch g.Replacement {
	case arch.ReplaceRandom:
		kind = replRandom
	case arch.ReplaceNRU:
		kind = replNRU
	}
	c := &Cache{
		sets:    sets,
		ways:    uint64(g.Ways),
		latency: g.Latency,
		kind:    kind,
		tags:    make([]uint64, lines),
		stamp:   make([]uint64, lines),
		rng:     rngSeed,
	}
	if sets > 0 && sets&(sets-1) == 0 {
		c.pow2, c.mask = true, sets-1
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Reset returns the cache to its just-constructed state: every way
// invalid, recency cleared, the policy clock and random state reseeded.
// A reset cache is indistinguishable from a freshly built one, which is
// what lets campaign machines be pooled without breaking determinism.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	clear(c.stamp)
	c.clock = 0
	c.rng = rngSeed
}

// Latency returns the level's load-to-use latency in cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// touch refreshes a way's recency state on a reference: an NRU
// reference bit, or an LRU timestamp (random keeps timestamps too but
// ignores them).
func (c *Cache) touch(i uint64) {
	s := c.clock
	if c.kind == replNRU {
		s = 1
	}
	c.stamp[i] = s
}

// Lookup probes for the line and refreshes its recency state on a hit. It
// does not allocate on a miss (the hierarchy decides fills).
//
//atlint:hotpath
//atlint:inline
func (c *Cache) Lookup(line uint64) bool {
	base := c.setBase(line)
	c.clock++
	// This way scan is the single hottest loop in the simulator (every
	// demand access and PTE load probes three levels). It must stay
	// within the compiler's inlining budget: losing the inline into
	// Hierarchy.Access costs more than any micro-shaving here gains —
	// which is why the touch logic is open-coded with the stamp value
	// hoisted out of the loop.
	s := c.clock
	if c.kind == replNRU {
		s = 1
	}
	for w := uint64(0); w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.stamp[base+w] = s
			return true
		}
	}
	return false
}

// victim picks the way to evict in a full set starting at base.
func (c *Cache) victim(base uint64) uint64 {
	switch c.kind {
	case replRandom:
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		return base + c.rng%c.ways
	case replNRU:
		for w := uint64(0); w < c.ways; w++ {
			if c.stamp[base+w] == 0 {
				return base + w
			}
		}
		// All referenced: clear the set's bits and take way 0.
		for w := uint64(0); w < c.ways; w++ {
			c.stamp[base+w] = 0
		}
		return base
	default: // LRU
		stamps := c.stamp[base : base+c.ways]
		victim := 0
		oldest := uint64(math.MaxUint64)
		for w, s := range stamps {
			if s < oldest {
				victim, oldest = w, s
			}
		}
		return base + uint64(victim)
	}
}

// Fill inserts the line, evicting a victim if the set is full. Filling a
// line that is already present only refreshes its recency state.
func (c *Cache) Fill(line uint64) {
	base := c.setBase(line)
	c.clock++
	set := c.tags[base : base+c.ways]
	empty := -1
	for w, tag := range set {
		if tag == line {
			c.touch(base + uint64(w))
			return
		}
		if tag == invalidTag && empty < 0 {
			empty = w
		}
	}
	var i uint64
	if empty >= 0 {
		i = base + uint64(empty)
	} else {
		i = c.victim(base)
	}
	c.tags[i] = line
	c.touch(i)
}

// Invalidate removes the line if present.
func (c *Cache) Invalidate(line uint64) {
	base := c.setBase(line)
	for w := uint64(0); w < c.ways; w++ {
		if c.tags[base+w] == line {
			c.tags[base+w] = invalidTag
			c.stamp[base+w] = 0
			return
		}
	}
}

// Contains probes without touching LRU state (test/debug helper).
func (c *Cache) Contains(line uint64) bool {
	base := c.setBase(line)
	for w := uint64(0); w < c.ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// HitLoc identifies where in the hierarchy an access was satisfied. The
// names mirror the Haswell PAGE_WALKER_LOADS.DTLB_* event suffixes.
type HitLoc uint8

const (
	// HitL1 means the line was found in the L1 data cache.
	HitL1 HitLoc = iota
	// HitL2 means the line was found in the L2 cache.
	HitL2
	// HitL3 means the line was found in the shared L3 cache.
	HitL3
	// HitMem means the access went to DRAM.
	HitMem
	// NumHitLocs is the number of hit locations.
	NumHitLocs
)

// String implements fmt.Stringer.
func (h HitLoc) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitL3:
		return "L3"
	case HitMem:
		return "Memory"
	}
	return "?"
}

// Hierarchy is the three-level cache stack plus DRAM.
type Hierarchy struct {
	l1, l2, l3 *Cache
	dram       uint64
}

// NewHierarchy builds the hierarchy described by cfg.
func NewHierarchy(cfg *arch.SystemConfig) *Hierarchy {
	return &Hierarchy{
		l1:   New(cfg.L1D),
		l2:   New(cfg.L2),
		l3:   New(cfg.L3),
		dram: cfg.DRAMLatency,
	}
}

// Access performs a load of the line containing pa: it returns the
// load-to-use latency and the level that satisfied it, then fills the line
// into every level above the hit (mostly-inclusive, as on Haswell).
//
//atlint:hotpath
func (h *Hierarchy) Access(pa arch.PAddr) (latency uint64, loc HitLoc) {
	line := uint64(pa) >> 6 // arch.CacheLineSize == 64
	switch {
	case h.l1.Lookup(line):
		return h.l1.latency, HitL1
	case h.l2.Lookup(line):
		h.l1.Fill(line)
		return h.l2.latency, HitL2
	case h.l3.Lookup(line):
		h.l1.Fill(line)
		h.l2.Fill(line)
		return h.l3.latency, HitL3
	default:
		h.l1.Fill(line)
		h.l2.Fill(line)
		h.l3.Fill(line)
		return h.dram, HitMem
	}
}

// AccessN performs the loads at pas[0..] in order, each charged its
// hierarchy latency plus overhead cycles, and stops after the load whose
// accumulated cost first exceeds budget (the walker's abort semantics:
// the over-budget load still happened and mutated cache state; loads
// after it never issue). Per-load latency and hit location land in
// lat[i]/loc[i]. It returns the number of loads performed and the total
// cycles accrued, identical to n sequential Access calls with the same
// early-exit rule — the batched form exists so the page-table walker's
// per-level loop stays inside one call frame.
//
//atlint:hotpath
func (h *Hierarchy) AccessN(pas []arch.PAddr, overhead, budget uint64, lat []uint64, loc []HitLoc) (n int, cycles uint64) {
	for i, pa := range pas {
		l, where := h.Access(pa)
		lat[i], loc[i] = l, where
		cycles += l + overhead
		n++
		if cycles > budget {
			break
		}
	}
	return n, cycles
}

// Reset restores every level to its just-constructed state.
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
}

// Latency returns the load-to-use latency of the given hit location.
func (h *Hierarchy) Latency(loc HitLoc) uint64 {
	switch loc {
	case HitL1:
		return h.l1.latency
	case HitL2:
		return h.l2.latency
	case HitL3:
		return h.l3.latency
	default:
		return h.dram
	}
}

// L1 exposes the first-level cache (test/debug helper).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 exposes the second-level cache (test/debug helper).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 exposes the last-level cache (test/debug helper).
func (h *Hierarchy) L3() *Cache { return h.l3 }
