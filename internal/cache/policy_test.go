package cache

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
)

func policyGeom(p arch.ReplacementPolicy) arch.CacheGeometry {
	return arch.CacheGeometry{SizeBytes: 4 * arch.KB, Ways: 4, Latency: 4, Replacement: p}
}

func TestPoliciesKeepCapacityBound(t *testing.T) {
	for _, p := range []arch.ReplacementPolicy{arch.ReplaceLRU, arch.ReplaceRandom, arch.ReplaceNRU} {
		c := New(policyGeom(p))
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 50000; i++ {
			c.Fill(rng.Uint64() % 4096)
		}
		live := 0
		for l := uint64(0); l < 4096; l++ {
			if c.Contains(l) {
				live++
			}
		}
		if live > 64 {
			t.Errorf("%s: %d live lines, capacity 64", p, live)
		}
	}
}

func TestPoliciesHitAfterFill(t *testing.T) {
	for _, p := range []arch.ReplacementPolicy{arch.ReplaceLRU, arch.ReplaceRandom, arch.ReplaceNRU} {
		c := New(policyGeom(p))
		c.Fill(123)
		if !c.Lookup(123) {
			t.Errorf("%s: freshly filled line missing", p)
		}
	}
}

func TestNRUPrefersUnreferenced(t *testing.T) {
	// 1KB, 4 ways -> 4 sets. Fill set 0, reference three lines, then
	// conflict: the unreferenced line must go.
	g := arch.CacheGeometry{SizeBytes: arch.KB, Ways: 4, Latency: 4, Replacement: arch.ReplaceNRU}
	c := New(g)
	for _, l := range []uint64{0, 4, 8, 12} {
		c.Fill(l)
	}
	// Fresh fills are referenced; clear by forcing a saturation round.
	c.Fill(16) // all referenced -> bulk clear, evict way 0 (line 0)
	if c.Contains(0) {
		t.Fatal("saturated NRU set did not evict way 0")
	}
	// Now lines 4, 8, 12 have cleared bits; 16 is referenced.
	c.Lookup(4)
	c.Lookup(8) // 12 left unreferenced
	c.Fill(20)
	if c.Contains(12) {
		t.Error("NRU evicted a referenced line over the unreferenced one")
	}
	for _, l := range []uint64{4, 8, 16, 20} {
		if !c.Contains(l) {
			t.Errorf("NRU wrongly evicted %d", l)
		}
	}
}

// TestLRUBeatsRandomOnLoopingPattern checks the policies actually differ:
// a working set slightly over capacity cycled repeatedly is LRU's worst
// case; random keeps a fraction resident.
func TestLRUBeatsRandomOnLoopingPattern(t *testing.T) {
	hits := func(p arch.ReplacementPolicy) int {
		c := New(arch.CacheGeometry{SizeBytes: arch.KB, Ways: 16, Latency: 4, Replacement: p})
		// One 16-way set is exercised: lines congruent mod 1.
		// Working set = 20 lines > 16 ways, cycled.
		n := 0
		for round := 0; round < 300; round++ {
			for l := uint64(0); l < 20; l++ {
				if c.Lookup(l) {
					n++
				} else {
					c.Fill(l)
				}
			}
		}
		return n
	}
	lru, random := hits(arch.ReplaceLRU), hits(arch.ReplaceRandom)
	if lru != 0 {
		t.Errorf("LRU hit %d times on a cyclic over-capacity loop (its pathological case)", lru)
	}
	if random < 500 {
		t.Errorf("random policy hit only %d times; should retain a fraction of the loop", random)
	}
}
