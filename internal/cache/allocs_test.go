package cache

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
)

// TestAccessZeroAllocs pins the hierarchy's allocation contract: demand
// accesses and batched walker loads (AccessN) never touch the heap.
func TestAccessZeroAllocs(t *testing.T) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	rng := rand.New(rand.NewSource(1))
	var (
		pas [5]arch.PAddr
		lat [5]uint64
		loc [5]HitLoc
	)
	step := func() {
		h.Access(arch.PAddr(rng.Uint64() % (1 << 30)))
		for i := range pas {
			pas[i] = arch.PAddr(rng.Uint64() % (1 << 30))
		}
		h.AccessN(pas[:], 2, 1<<20, lat[:], loc[:])
	}
	for i := 0; i < 100; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("Hierarchy access allocates %.2f allocs/op, want 0", avg)
	}
}
