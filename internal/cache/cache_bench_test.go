package cache

import (
	"testing"

	"atscale/internal/arch"
)

func BenchmarkAccessHot(b *testing.B) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	h.Access(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0x1000)
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(arch.PAddr(uint64(i) * 64))
	}
}

func BenchmarkAccessThrashL3(b *testing.B) {
	cfg := arch.DefaultSystem()
	h := NewHierarchy(&cfg)
	// 2x the L3 working set, random-ish stride.
	lines := uint64(2 * cfg.L3.SizeBytes / 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(arch.PAddr((uint64(i) * 0x9E3779B9 % lines) * 64))
	}
}
