package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atscale/internal/arch"
)

func smallGeom(sizeKB, ways int) arch.CacheGeometry {
	return arch.CacheGeometry{SizeBytes: sizeKB * arch.KB, Ways: ways, Latency: 4}
}

func TestFillThenLookupHits(t *testing.T) {
	c := New(smallGeom(4, 4)) // 64 lines, 16 sets
	for line := uint64(0); line < 16; line++ {
		c.Fill(line)
		if !c.Lookup(line) {
			t.Fatalf("line %d missing right after fill", line)
		}
	}
}

func TestLookupDoesNotAllocate(t *testing.T) {
	c := New(smallGeom(4, 4))
	if c.Lookup(99) {
		t.Fatal("empty cache hit")
	}
	if c.Contains(99) {
		t.Fatal("Lookup allocated the line")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallGeom(1, 4)) // 16 lines, 4 sets; same set = line % 4
	// Fill 4 conflicting lines into set 0: 0, 4, 8, 12.
	for _, l := range []uint64{0, 4, 8, 12} {
		c.Fill(l)
	}
	// Touch 0 so 4 becomes LRU.
	if !c.Lookup(0) {
		t.Fatal("line 0 missing")
	}
	c.Fill(16) // conflicts; must evict 4
	if c.Contains(4) {
		t.Error("LRU line 4 survived eviction")
	}
	for _, l := range []uint64{0, 8, 12, 16} {
		if !c.Contains(l) {
			t.Errorf("line %d wrongly evicted", l)
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallGeom(1, 4))
	c.Fill(5)
	c.Invalidate(5)
	if c.Contains(5) {
		t.Error("line survived invalidate")
	}
	c.Invalidate(5) // idempotent
}

func TestSetCapacityNeverExceeded(t *testing.T) {
	c := New(smallGeom(1, 2)) // 16 lines, 8 sets, 2 ways
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		c.Fill(rng.Uint64() % 1024)
	}
	// Count live lines per set.
	perSet := map[uint64]int{}
	for l := uint64(0); l < 1024; l++ {
		if c.Contains(l) {
			perSet[l%8]++
		}
	}
	for set, n := range perSet {
		if n > 2 {
			t.Errorf("set %d holds %d lines, ways=2", set, n)
		}
	}
}

func TestRefillRefreshesInsteadOfDuplicating(t *testing.T) {
	c := New(smallGeom(1, 4))
	c.Fill(0)
	c.Fill(0)
	c.Fill(0)
	// The set must still have room for 3 more distinct lines.
	c.Fill(4)
	c.Fill(8)
	c.Fill(12)
	for _, l := range []uint64{0, 4, 8, 12} {
		if !c.Contains(l) {
			t.Errorf("line %d missing; duplicate fill consumed ways", l)
		}
	}
}

func TestWorkingSetSmallerThanCacheAlwaysHits(t *testing.T) {
	// Property: after a warmup pass, a working set that fits entirely in
	// the cache never misses, regardless of access order.
	check := func(seed int64) bool {
		c := New(smallGeom(4, 4)) // 64 lines
		rng := rand.New(rand.NewSource(seed))
		ws := make([]uint64, 48) // 48 distinct lines < 64, spread across sets
		for i := range ws {
			ws[i] = uint64(i)
		}
		for _, l := range ws {
			c.Fill(l)
		}
		for i := 0; i < 2000; i++ {
			if !c.Lookup(ws[rng.Intn(len(ws))]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func newTestHierarchy() *Hierarchy {
	cfg := arch.DefaultSystem()
	cfg.L1D = smallGeom(1, 4)                                                  // 16 lines
	cfg.L2 = arch.CacheGeometry{SizeBytes: 4 * arch.KB, Ways: 4, Latency: 12}  // 64 lines
	cfg.L3 = arch.CacheGeometry{SizeBytes: 16 * arch.KB, Ways: 8, Latency: 38} // 256 lines
	return NewHierarchy(&cfg)
}

func TestHierarchyMissThenHit(t *testing.T) {
	h := newTestHierarchy()
	lat, loc := h.Access(0x1000)
	if loc != HitMem || lat != 210 {
		t.Fatalf("cold access = %d,%v; want 210,Memory", lat, loc)
	}
	lat, loc = h.Access(0x1008) // same line
	if loc != HitL1 || lat != 4 {
		t.Fatalf("warm access = %d,%v; want 4,L1", lat, loc)
	}
}

func TestHierarchyFillOnHitPromotes(t *testing.T) {
	h := newTestHierarchy()
	h.Access(0x1000) // now in all levels
	// Evict from L1 by filling its set (set = line % 4... line 0x40).
	line := uint64(0x1000) >> 6
	set := line % 4
	filled := 0
	for l := uint64(0); filled < 4; l++ {
		if l != line && l%4 == set {
			h.L1().Fill(l)
			filled++
		}
	}
	if h.L1().Contains(line) {
		t.Fatal("line still in L1 after conflict fills")
	}
	lat, loc := h.Access(0x1000)
	if loc != HitL2 || lat != 12 {
		t.Fatalf("L2 access = %d,%v; want 12,L2", lat, loc)
	}
	if !h.L1().Contains(line) {
		t.Error("L2 hit did not refill L1")
	}
}

func TestHierarchyLatencyMonotone(t *testing.T) {
	h := newTestHierarchy()
	if !(h.Latency(HitL1) < h.Latency(HitL2) &&
		h.Latency(HitL2) < h.Latency(HitL3) &&
		h.Latency(HitL3) < h.Latency(HitMem)) {
		t.Error("latencies not monotone across levels")
	}
}

func TestHitLocString(t *testing.T) {
	want := map[HitLoc]string{HitL1: "L1", HitL2: "L2", HitL3: "L3", HitMem: "Memory"}
	for loc, s := range want {
		if loc.String() != s {
			t.Errorf("%d.String() = %q, want %q", loc, loc.String(), s)
		}
	}
}

func TestHierarchyStreamLargerThanL3MissesOften(t *testing.T) {
	h := newTestHierarchy() // L3 = 256 lines
	misses := 0
	const N = 4096
	for i := 0; i < N; i++ {
		_, loc := h.Access(arch.PAddr(i * 64))
		if loc == HitMem {
			misses++
		}
	}
	if misses != N {
		t.Errorf("streaming pass: %d/%d memory hits, want all (no reuse)", misses, N)
	}
	// Second pass over a window larger than L3 still misses (LRU thrash).
	misses = 0
	for i := 0; i < N; i++ {
		_, loc := h.Access(arch.PAddr(i * 64))
		if loc == HitMem {
			misses++
		}
	}
	if misses != N {
		t.Errorf("second streaming pass: %d/%d memory hits, want all", misses, N)
	}
}
