package cache

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
)

// goldenCacheSet is a reference LRU set ordered most-recent-first.
type goldenCacheSet struct {
	ways  int
	lines []uint64
}

func (g *goldenCacheSet) lookup(line uint64) bool {
	for i, l := range g.lines {
		if l == line {
			copy(g.lines[1:i+1], g.lines[:i])
			g.lines[0] = line
			return true
		}
	}
	return false
}

func (g *goldenCacheSet) fill(line uint64) {
	if g.lookup(line) {
		return
	}
	if len(g.lines) == g.ways {
		g.lines = g.lines[:g.ways-1]
	}
	g.lines = append([]uint64{line}, g.lines...)
}

// TestCacheMatchesGoldenLRU cross-checks the production set-associative
// cache against the reference model over a random Lookup/Fill/Invalidate
// stream.
func TestCacheMatchesGoldenLRU(t *testing.T) {
	g := arch.CacheGeometry{SizeBytes: 4 * arch.KB, Ways: 4, Latency: 4} // 16 sets
	c := New(g)
	sets := g.SizeBytes / arch.CacheLineSize / g.Ways
	golden := make([]goldenCacheSet, sets)
	for i := range golden {
		golden[i] = goldenCacheSet{ways: g.Ways}
	}
	rng := rand.New(rand.NewSource(77))
	const lines = 128
	for op := 0; op < 300000; op++ {
		line := uint64(rng.Intn(lines))
		set := line % uint64(sets)
		switch rng.Intn(4) {
		case 0, 1:
			if got, want := c.Lookup(line), golden[set].lookup(line); got != want {
				t.Fatalf("op %d: Lookup(%d) = %v, golden %v", op, line, got, want)
			}
		case 2:
			c.Fill(line)
			golden[set].fill(line)
		default:
			c.Invalidate(line)
			gl := &golden[set]
			for i, l := range gl.lines {
				if l == line {
					gl.lines = append(gl.lines[:i], gl.lines[i+1:]...)
					break
				}
			}
		}
	}
}
