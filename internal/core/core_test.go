package core

import (
	"strings"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

// testConfig keeps core tests fast: tiny ladder, small measured regions.
func testConfig() RunConfig {
	cfg := DefaultRunConfig()
	cfg.Preset = workloads.Tiny
	cfg.Budget = 120_000
	return cfg
}

func TestRunProducesMetrics(t *testing.T) {
	cfg := testConfig()
	spec, err := workloads.ByName("bfs-urand")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(&cfg, spec, 12, arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if r.Footprint == 0 || r.Metrics.Instructions == 0 || r.Metrics.CPI <= 0 {
		t.Errorf("degenerate run result: %+v", r.Metrics)
	}
	if r.Workload != "bfs-urand" || r.PageSize != arch.Page4K {
		t.Errorf("metadata wrong: %s %v", r.Workload, r.PageSize)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig()
	spec, _ := workloads.ByName("mcf-rand")
	a, err := Run(&cfg, spec, 1<<12, arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(&cfg, spec, 1<<12, arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Error("identical runs differ")
	}
}

func TestMeasureOverheadComparable(t *testing.T) {
	cfg := testConfig()
	spec, _ := workloads.ByName("uniform-synth")
	// 256MB uniform random: far beyond TLB reach, so 4K must lose badly
	// to superpages.
	p, err := MeasureOverhead(&cfg, spec, 28)
	if err != nil {
		t.Fatal(err)
	}
	if p.RelOverhead < 0.2 {
		t.Errorf("uniform-synth@256MB overhead = %v, want substantial (>20%%)", p.RelOverhead)
	}
	if p.CPI2M >= p.CPI4K {
		t.Errorf("2MB CPI %v not better than 4K %v", p.CPI2M, p.CPI4K)
	}
}

func TestOverheadBaselinePicksMin(t *testing.T) {
	cfg := testConfig()
	spec, _ := workloads.ByName("uniform-synth")
	// At a footprint below 1GB, the 1GB policy falls back to 4K backing
	// (§III-B), so the 2MB run must be the baseline.
	p, err := MeasureOverhead(&cfg, spec, 26) // 64MB
	if err != nil {
		t.Fatal(err)
	}
	if p.CPI1G < p.CPI2M {
		t.Errorf("1G CPI %v beat 2M %v at 64MB, fallback not modelled?", p.CPI1G, p.CPI2M)
	}
	base := p.CPI2M
	want := (p.CPI4K - base) / base
	if diff := p.RelOverhead - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("RelOverhead %v != computed %v", p.RelOverhead, want)
	}
}

func TestSessionMemoizes(t *testing.T) {
	s := NewSession(testConfig())
	a, err := s.Sweep("stride-synth")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sweep("stride-synth")
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("sweep not memoized")
	}
	if len(a) != len(mustSpec(t, "stride-synth").Sizes(workloads.Tiny)) {
		t.Errorf("sweep has %d points", len(a))
	}
}

func mustSpec(t *testing.T, name string) *workloads.Spec {
	t.Helper()
	s, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPaperWorkloadsExcludeSynthetic(t *testing.T) {
	for _, s := range PaperWorkloads() {
		if s.Suite == "synthetic" {
			t.Errorf("synthetic workload %s in paper set", s.Name())
		}
	}
	if n := len(PaperWorkloads()); n != 13 {
		t.Errorf("paper workload count = %d, want 13 (Table I)", n)
	}
}

func TestFitLogLinearRecovers(t *testing.T) {
	// Synthetic points on a perfect log-linear relationship.
	var pts []OverheadPoint
	for i := 0; i < 8; i++ {
		fp := uint64(1) << (20 + i)
		p := OverheadPoint{Footprint: fp}
		p.RelOverhead = -0.5 + 0.13*p.Log10Footprint()
		pts = append(pts, p)
	}
	fit := FitLogLinear("x", pts)
	if fit.Err != "" {
		t.Fatal(fit.Err)
	}
	if fit.AdjR2 < 0.999 || fit.Slope < 0.12 || fit.Slope > 0.14 {
		t.Errorf("fit = %+v", fit)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"tables", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "table4", "table5", "table6"}
	for _, id := range want {
		if _, err := ExperimentByID(id); err != nil {
			t.Errorf("missing experiment %s: %v", id, err)
		}
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	want = append(want, "promo", "hashedpt", "xsweep", "stability", "virt", "wcpi", "refute", "schemes")
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Experiments()), len(want))
	}
}

func TestTablesRender(t *testing.T) {
	s := NewSession(testConfig())
	r, err := Tables(s)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, needle := range []string{"Table I", "Table II", "Table III", "memcached", "kron", "64x4KB"} {
		if !strings.Contains(out, needle) {
			t.Errorf("inventory missing %q:\n%s", needle, out)
		}
	}
}

// TestSmallExperimentsEndToEnd exercises the session-driven experiments on
// a single cheap workload by running the ones that only need one sweep.
func TestSmallExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment run")
	}
	s := NewSession(testConfig())

	f2, err := Fig2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Points) == 0 {
		t.Error("fig2 empty")
	}
	if out := f2.Render(); !strings.Contains(out, "fit:") {
		t.Error("fig2 render missing fit")
	}

	f5, err := Fig5(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Points) == 0 || f5.Points[0].Workload != "bc-urand" {
		t.Error("fig5 wrong")
	}

	f8, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f8.Rows {
		sum := row.L1 + row.L2 + row.L3 + row.Mem
		if sum > 1.001 || (sum != 0 && sum < 0.999) {
			t.Errorf("fig8 bands sum to %v", sum)
		}
	}

	f9, err := Fig9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) == 0 {
		t.Error("fig9 empty")
	}

	f10, err := Fig10(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f10.Rows {
		if row.WCPI2M > row.WCPI4K {
			t.Errorf("fig10 footprint %d: 2MB WCPI %v above 4K %v",
				row.Footprint, row.WCPI2M, row.WCPI4K)
		}
	}

	t6, err := Table6(s)
	if err != nil {
		t.Fatal(err)
	}
	o := t6.Outcomes
	if o.Retired+o.WrongPath+o.Aborted != o.Initiated {
		t.Errorf("table6 conservation broken: %+v", o)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	// Renderers must work on hand-built data without running sweeps.
	sc := &ScatterResult{Title: "x", Points: []ScatterPoint{{"w", 1 << 20, 0.1, 0.2}}}
	if !strings.Contains(sc.Render(), "1.0MB") {
		t.Error("scatter render broken")
	}
	ob := &OverheadScaling{Title: "t", ByWorkload: map[string][]OverheadPoint{
		"w": {{Workload: "w", Footprint: 1 << 30, RelOverhead: 0.5, CPI4K: 1.5, CPI2M: 1.0, CPI1G: 1.0}},
	}, Workloads: []string{"w"}}
	if !strings.Contains(ob.Render(), "50.0%") {
		t.Error("overhead render broken")
	}
}

func TestTableHelpers(t *testing.T) {
	tab := NewTable("title", "a", "b")
	tab.Row("x", "y")
	tab.Row("longer-cell", "z")
	out := tab.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "longer-cell") {
		t.Errorf("table render: %s", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv render: %s", csv)
	}
	tab2 := NewTable("", "c")
	tab2.Row(`needs,"quoting"`)
	if !strings.Contains(tab2.CSV(), `"needs,""quoting"""`) {
		t.Errorf("csv quoting: %s", tab2.CSV())
	}
}
