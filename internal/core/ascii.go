package core

import (
	"fmt"
	"strings"
)

// This file renders stacked-band distributions (the paper's Figures 7
// and 8 are band charts) as aligned ASCII bars, so the CLI output
// resembles the figures rather than just tabulating them.

// bandGlyphs paints each band of a stacked bar with a distinct fill.
var bandGlyphs = []rune{'#', 'x', '-', '.', ' '}

// BandBar renders fractions (summing to <= 1) as one width-character
// stacked bar, e.g. "#####xxx--......".
func BandBar(fractions []float64, width int) string {
	var b strings.Builder
	used := 0
	for i, frac := range fractions {
		if frac < 0 {
			frac = 0
		}
		n := int(frac*float64(width) + 0.5)
		if used+n > width {
			n = width - used
		}
		g := bandGlyphs[min(i, len(bandGlyphs)-1)]
		for j := 0; j < n; j++ {
			b.WriteRune(g)
		}
		used += n
	}
	for used < width {
		b.WriteByte(' ')
		used++
	}
	return b.String()
}

// BandChart renders one stacked bar per row with a label column and a
// legend, the text analogue of the paper's band figures.
func BandChart(title string, legend []string, labels []string, rows [][]float64, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, row := range rows {
		fmt.Fprintf(&b, "  %-*s |%s|\n", labelW, labels[i], BandBar(row, width))
	}
	b.WriteString("  legend: ")
	for i, name := range legend {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", bandGlyphs[min(i, len(bandGlyphs)-1)], name)
	}
	b.WriteString("\n")
	return b.String()
}
