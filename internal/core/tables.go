package core

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/workloads"
)

// InventoryResult renders the paper's setup tables: Table I (workloads),
// Table II (input generators) and Table III (the system — here, the
// simulated system standing in for the authors' Haswell-EP testbed).
type InventoryResult struct {
	Specs  []*workloads.Spec
	System arch.SystemConfig
}

// Tables collects the inventories from the live registry and session
// configuration, so the rendered tables always match what the code runs.
func Tables(s *Session) (*InventoryResult, error) {
	return &InventoryResult{Specs: workloads.All(), System: s.Config().System}, nil
}

// Tables exposes all three inventory tables.
func (r *InventoryResult) Tables() []*Table {
	t1 := NewTable("Table I: workloads", "suite", "program", "generator", "type", "ladder rungs")
	for _, s := range r.Specs {
		t1.Row(s.Suite, s.Program, s.Generator, s.Kind, fmt.Sprint(len(s.Ladder)))
	}

	t2 := NewTable("Table II: input generators", "generator", "description")
	t2.Row("urand", "uniform random graph (Erdos-Renyi style), degree 16")
	t2.Row("kron", "Kronecker/R-MAT scale-free graph (A=0.57 B=0.19 C=0.19), degree 16")
	t2.Row("uniform", "YCSB-style uniform keys over a fixed key space")
	t2.Row("rand (mcf)", "random min-cost-flow network, 8 arcs/node")
	t2.Row("rand (streamcluster)", "uniform random points, 16-dim")
	t2.Row("synth", "raw address streams: uniform, zipf(0.99), stride")

	sys := r.System
	t3 := NewTable("Table III: simulated system ("+sys.Name+")", "component", "description")
	t3.Row("TLB-L1D", fmt.Sprintf("%dx4KB, %dx2MB, %dx1GB",
		sys.L1TLB[arch.Page4K].Entries, sys.L1TLB[arch.Page2M].Entries, sys.L1TLB[arch.Page1G].Entries))
	t3.Row("TLB-L2", fmt.Sprintf("%dx shared 4KB/2MB pages", sys.STLB.Entries))
	t3.Row("MMU caches", fmt.Sprintf("PML4E:%d PDPTE:%d PDE:%d entries",
		sys.PSC.PML4Entries, sys.PSC.PDPTEntries, sys.PSC.PDEntries))
	t3.Row("L1D", fmt.Sprintf("%s, %d-way, %d cycles", arch.FormatBytes(uint64(sys.L1D.SizeBytes)), sys.L1D.Ways, sys.L1D.Latency))
	t3.Row("L2", fmt.Sprintf("%s, %d-way, %d cycles", arch.FormatBytes(uint64(sys.L2.SizeBytes)), sys.L2.Ways, sys.L2.Latency))
	t3.Row("L3", fmt.Sprintf("%s, %d-way, %d cycles", arch.FormatBytes(uint64(sys.L3.SizeBytes)), sys.L3.Ways, sys.L3.Latency))
	t3.Row("DRAM", fmt.Sprintf("%d cycles", sys.DRAMLatency))
	t3.Row("Page table walker", "1 walker, PTE loads through the cache hierarchy")
	return []*Table{t1, t2, t3}
}

// Render emits all three inventory tables.
func (r *InventoryResult) Render() string { return RenderTables(r.Tables(), "") }
