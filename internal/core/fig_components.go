package core

import (
	"atscale/internal/arch"
)

// This file drives the component-breakdown experiments: Figure 6 (every
// Equation 1 term against footprint for four representative workloads)
// and Figure 8 (PTE hit-location distribution for pr-kron).

// fig6Workloads are the four workloads §V-C plots.
var fig6Workloads = []string{"bfs-urand", "mcf-rand", "pr-kron", "tc-kron"}

// ComponentRow is one (workload, size) breakdown: the WCPI product and
// its four Equation 1 factors.
type ComponentRow struct {
	Workload  string
	Footprint uint64

	WCPI float64
	// AccessesPerInstr is the program term.
	AccessesPerInstr float64
	// MissesPerKiloAccess is the TLB term, scaled per 1000 accesses for
	// readability (the paper's "TLB misses per access" panel).
	MissesPerKiloAccess float64
	// AccessesPerWalk is the MMU-cache term (walker loads per walk).
	AccessesPerWalk float64
	// LatencyPerWalkAccess is the cache-hierarchy term (cycles per
	// walker load).
	LatencyPerWalkAccess float64
}

// ComponentBreakdown is Figure 6's dataset.
type ComponentBreakdown struct {
	Rows []ComponentRow
}

// Fig6 computes the Equation 1 breakdown for the four representative
// workloads.
func Fig6(s *Session) (*ComponentBreakdown, error) {
	r := &ComponentBreakdown{}
	for _, name := range fig6Workloads {
		pts, err := s.Sweep(name)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			m := p.M4K
			r.Rows = append(r.Rows, ComponentRow{
				Workload:             name,
				Footprint:            p.Footprint,
				WCPI:                 m.WCPI,
				AccessesPerInstr:     m.Eq1.AccessesPerInstruction,
				MissesPerKiloAccess:  1000 * m.Eq1.TLBMissesPerAccess,
				AccessesPerWalk:      m.Eq1.WalkerLoadsPerWalk,
				LatencyPerWalkAccess: m.Eq1.CyclesPerWalkerLoad,
			})
		}
	}
	return r, nil
}

// Tables exposes one row per (workload, footprint) with all Eq. 1 terms.
func (r *ComponentBreakdown) Tables() []*Table {
	t := NewTable("Fig 6: component-wise WCPI breakdown (Equation 1 terms, 4KB pages)",
		"workload", "footprint", "WCPI", "accesses/instr", "misses/kacc", "accesses/walk", "lat/walk-access")
	for _, row := range r.Rows {
		t.Row(row.Workload, arch.FormatBytes(row.Footprint), f(row.WCPI, 4),
			f(row.AccessesPerInstr, 3), f(row.MissesPerKiloAccess, 2),
			f(row.AccessesPerWalk, 3), f(row.LatencyPerWalkAccess, 1))
	}
	return []*Table{t}
}

// Render emits the component breakdown table.
func (r *ComponentBreakdown) Render() string { return RenderTables(r.Tables(), "") }

// PTELocationRow is one Figure 8 band sample: where walker loads were
// satisfied at one footprint.
type PTELocationRow struct {
	Footprint uint64
	// L1, L2, L3, Mem are the fractions of walker loads satisfied at
	// each level (they sum to 1 when any walk happened).
	L1, L2, L3, Mem float64
}

// PTELocationResult is Figure 8's dataset.
type PTELocationResult struct {
	Workload string
	Rows     []PTELocationRow
}

// Fig8 measures the PTE access-location distribution for pr-kron.
func Fig8(s *Session) (*PTELocationResult, error) {
	return PTELocationSweep(s, "pr-kron")
}

// PTELocationSweep computes the Figure 8 bands for any workload.
func PTELocationSweep(s *Session, workload string) (*PTELocationResult, error) {
	pts, err := s.Sweep(workload)
	if err != nil {
		return nil, err
	}
	r := &PTELocationResult{Workload: workload}
	for _, p := range pts {
		loc := p.M4K.PTELocation
		r.Rows = append(r.Rows, PTELocationRow{
			Footprint: p.Footprint,
			L1:        loc[0], L2: loc[1], L3: loc[2], Mem: loc[3],
		})
	}
	return r, nil
}

// Tables exposes the band fractions per footprint.
func (r *PTELocationResult) Tables() []*Table {
	t := NewTable("Fig 8: PTE access location distribution for "+r.Workload+" (4KB pages)",
		"footprint", "L1", "L2", "L3", "memory")
	for _, row := range r.Rows {
		t.Row(arch.FormatBytes(row.Footprint), pct(row.L1), pct(row.L2), pct(row.L3), pct(row.Mem))
	}
	return []*Table{t}
}

// Render emits the band table plus the ASCII band chart (the Figure 8
// visual).
func (r *PTELocationResult) Render() string {
	out := RenderTables(r.Tables(), "")
	var labels []string
	var bands [][]float64
	for _, row := range r.Rows {
		labels = append(labels, arch.FormatBytes(row.Footprint))
		bands = append(bands, []float64{row.L1, row.L2, row.L3, row.Mem})
	}
	return out + "\n" + BandChart("PTE hit location bands", []string{"L1", "L2", "L3", "memory"},
		labels, bands, 50)
}
