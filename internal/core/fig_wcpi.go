package core

import (
	"sort"

	"atscale/internal/arch"
	"atscale/internal/perf"
	"atscale/internal/stats"
)

// This file drives the WCPI-as-proxy experiments: Table V (correlation of
// five AT-pressure metrics with overhead), Figure 4 (inter-workload
// overhead vs WCPI scatter) and Figure 5 (intra-workload bc-urand curve).

// PressureMetric names one of the Table V candidate proxies and extracts
// it from a 4 KB run's derived metrics.
type PressureMetric struct {
	Name    string
	Extract func(perf.Metrics) float64
}

// PressureMetrics are the five candidates compared in Table V.
func PressureMetrics() []PressureMetric {
	return []PressureMetric{
		{"TLB misses per kilo access", func(m perf.Metrics) float64 { return m.TLBMissesPerKiloAccess }},
		{"TLB misses per kilo instruction", func(m perf.Metrics) float64 { return m.TLBMissesPerKiloInstruction }},
		{"Walk cycle fraction", func(m perf.Metrics) float64 { return m.WalkCycleFraction }},
		{"Walk cycles per access", func(m perf.Metrics) float64 { return m.WalkCyclesPerAccess }},
		{"Walk cycles per instruction", func(m perf.Metrics) float64 { return m.WCPI }},
	}
}

// MetricCorrelation is one Table V row.
type MetricCorrelation struct {
	Metric   string
	Pearson  float64
	Spearman float64
	// PearsonCI is a bootstrap 95% confidence interval for Pearson
	// (supplementing the paper's point estimates).
	PearsonCI stats.Interval
	// N is the number of (workload, size) points correlated.
	N int
}

// WorkloadSpearman is the intra-workload supplement of §V-B: Spearman of
// WCPI vs overhead within one workload's sweep.
type WorkloadSpearman struct {
	Workload string
	Spearman float64
	N        int
	Err      string
}

// Table5Result bundles the inter-workload metric correlations and the
// intra-workload WCPI Spearman coefficients.
type Table5Result struct {
	Inter []MetricCorrelation
	Intra []WorkloadSpearman
	// Excluded counts points dropped for negative measured overhead
	// (the paper's not-AT-sensitive exclusion).
	Excluded int
}

// Table5 computes the correlation table over every Table I workload.
func Table5(s *Session) (*Table5Result, error) {
	all, err := s.SweepAll()
	if err != nil {
		return nil, err
	}
	r := &Table5Result{}
	names := sortedSweepNames(all)
	pts, excluded := flattenSweeps(all, names)
	r.Excluded = excluded
	var overhead []float64
	for _, p := range pts {
		overhead = append(overhead, p.RelOverhead)
	}
	for _, pm := range PressureMetrics() {
		var xs []float64
		for _, p := range pts {
			xs = append(xs, pm.Extract(p.M4K))
		}
		pearson, err1 := stats.Pearson(xs, overhead)
		spearman, err2 := stats.Spearman(xs, overhead)
		row := MetricCorrelation{Metric: pm.Name, N: len(pts)}
		if err1 == nil {
			row.Pearson = pearson
			if ci, err := stats.BootstrapCorrelation(xs, overhead, stats.Pearson, 400, 0.05, 7); err == nil {
				row.PearsonCI = ci
			}
		}
		if err2 == nil {
			row.Spearman = spearman
		}
		r.Inter = append(r.Inter, row)
	}
	// Intra-workload WCPI monotonicity.
	for _, n := range names {
		var xs, ys []float64
		for _, p := range all[n] {
			xs = append(xs, p.M4K.WCPI)
			ys = append(ys, p.RelOverhead)
		}
		row := WorkloadSpearman{Workload: n, N: len(xs)}
		if sp, err := stats.Spearman(xs, ys); err != nil {
			row.Err = err.Error()
		} else {
			row.Spearman = sp
		}
		r.Intra = append(r.Intra, row)
	}
	return r, nil
}

// flattenSweeps concatenates the AT-sensitive points of every sweep in
// the given workload order, counting points excluded for negative
// measured overhead. Callers must pass a deterministic order (use
// sortedSweepNames): BootstrapCorrelation resamples positions in the
// returned slice with a fixed seed, so flattening in map-iteration
// order would make the rendered Table V confidence intervals vary run
// to run — exactly the bug atlint's detrange analyzer exists to catch.
func flattenSweeps(all map[string][]OverheadPoint, names []string) (pts []OverheadPoint, excluded int) {
	for _, n := range names {
		for _, p := range all[n] {
			if p.RelOverhead < 0 {
				excluded++
				continue
			}
			pts = append(pts, p)
		}
	}
	return pts, excluded
}

// Tables exposes Table V and the intra-workload Spearman supplement.
func (r *Table5Result) Tables() []*Table {
	t := NewTable("Table V: correlation between AT pressure metric and relative AT overhead",
		"AT pressure metric", "Pearson", "Pearson 95% CI", "Spearman's rank")
	for _, row := range r.Inter {
		t.Row(row.Metric, f(row.Pearson, 3),
			"["+f(row.PearsonCI.Lo, 3)+", "+f(row.PearsonCI.Hi, 3)+"]",
			f(row.Spearman, 3))
	}
	t2 := NewTable("Intra-workload Spearman (WCPI vs overhead)", "workload", "Spearman", "n")
	for _, row := range r.Intra {
		if row.Err != "" {
			t2.Row(row.Workload, row.Err, f(float64(row.N), 0))
			continue
		}
		t2.Row(row.Workload, f(row.Spearman, 3), f(float64(row.N), 0))
	}
	return []*Table{t, t2}
}

// Render emits Table V plus the intra-workload Spearman supplement.
func (r *Table5Result) Render() string {
	ts := r.Tables()
	out := ts[0].String()
	out += "points: " + f(float64(r.Inter[0].N), 0) + " (excluded " + f(float64(r.Excluded), 0) + " with negative overhead)\n\n"
	return out + ts[1].String()
}

// ScatterPoint is one Figure 4/5 point.
type ScatterPoint struct {
	Workload  string
	Footprint uint64
	WCPI      float64
	Overhead  float64
}

// ScatterResult is the overhead-vs-WCPI relationship (Figure 4 across
// workloads, Figure 5 within bc-urand).
type ScatterResult struct {
	Title  string
	Points []ScatterPoint
}

// Fig4 collects the inter-workload overhead/WCPI scatter (AT-sensitive
// points only, as the paper's Figure 4 does).
func Fig4(s *Session) (*ScatterResult, error) {
	all, err := s.SweepAll()
	if err != nil {
		return nil, err
	}
	r := &ScatterResult{Title: "Fig 4: relative AT overhead vs WCPI (all workloads)"}
	var names []string
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, p := range all[n] {
			if p.RelOverhead < 0 {
				continue
			}
			r.Points = append(r.Points, ScatterPoint{n, p.Footprint, p.M4K.WCPI, p.RelOverhead})
		}
	}
	return r, nil
}

// Fig5 collects the bc-urand intra-workload curve, each point labelled by
// footprint as in the paper.
func Fig5(s *Session) (*ScatterResult, error) {
	pts, err := s.Sweep("bc-urand")
	if err != nil {
		return nil, err
	}
	r := &ScatterResult{Title: "Fig 5: bc-urand AT overhead vs WCPI (labelled by footprint)"}
	for _, p := range pts {
		r.Points = append(r.Points, ScatterPoint{"bc-urand", p.Footprint, p.M4K.WCPI, p.RelOverhead})
	}
	return r, nil
}

// Tables exposes the scatter points.
func (r *ScatterResult) Tables() []*Table {
	t := NewTable(r.Title, "workload", "footprint", "WCPI", "rel AT overhead")
	for _, p := range r.Points {
		t.Row(p.Workload, arch.FormatBytes(p.Footprint), f(p.WCPI, 4), pct(p.Overhead))
	}
	return []*Table{t}
}

// Render emits the scatter as a table.
func (r *ScatterResult) Render() string { return RenderTables(r.Tables(), "") }
