package core

import (
	"bytes"
	"testing"

	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/workloads"
)

// TestRefuteSweepHolds is the repo-level golden check: a real (tiny)
// sweep, checked against the full identity registry, must hold every
// identity — the simulator's counters are the registry's ground truth.
func TestRefuteSweepHolds(t *testing.T) {
	cfg := testConfig()
	cfg.Refute = NewCampaignChecker()
	spec, err := workloads.ByName("stride-synth")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepOverhead(&cfg, spec); err != nil {
		t.Fatal(err)
	}
	rep := cfg.Refute.Report()
	if rep.Units == 0 {
		t.Fatal("no units checked")
	}
	if rep.TotalViolations != 0 {
		t.Fatalf("identities violated on a real sweep:\n%s", rep.Render())
	}
	for _, ir := range rep.Identities {
		if ir.Scope == "always" && ir.Checked == 0 {
			t.Errorf("always-scope identity %s never checked", ir.Name)
		}
	}
}

// TestRefuteSamplingUnitChecked: arming the sampler brings the ring-
// accounting identities into scope on a real run — including under
// forced overflow (tiny ring), the regime where drop accounting can
// actually be wrong.
func TestRefuteSamplingUnitChecked(t *testing.T) {
	cfg := testConfig()
	cfg.Refute = refute.NewChecker()
	cfg.SamplePeriod = 257
	cfg.SampleBuffer = 8
	spec, err := workloads.ByName("stride-synth")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(&cfg, spec, 20, policies[0]); err != nil {
		t.Fatal(err)
	}
	rep := cfg.Refute.Report()
	if rep.TotalViolations != 0 {
		t.Fatalf("sampling identities violated:\n%s", rep.Render())
	}
	sampling := 0
	for _, ir := range rep.Identities {
		if ir.Scope == "sampling" && ir.Checked > 0 {
			sampling++
		}
	}
	if sampling == 0 {
		t.Error("no sampling-scope identity checked despite an armed sampler")
	}
}

// TestRefuteReportSerialParallelIdentical: the refutation report is part
// of the campaign's deterministic output, so a parallel sweep must
// produce byte-identical JSON to the serial one.
func TestRefuteReportSerialParallelIdentical(t *testing.T) {
	report := func(parallelism int) []byte {
		cfg := testConfig()
		cfg.Parallelism = parallelism
		cfg.pool = make(limiter, cfg.parallelism())
		cfg.Refute = refute.NewChecker()
		spec, err := workloads.ByName("stride-synth")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := SweepOverhead(&cfg, spec); err != nil {
			t.Fatal(err)
		}
		return cfg.Refute.Report().JSON()
	}
	serial, parallel := report(1), report(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("refute report depends on the schedule:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestRefuteExperimentRuns: the adversarial experiment completes at the
// tiny preset, covers every variant, and holds every identity; its
// outcomes flow into the session-level checker.
func TestRefuteExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial sweep is the slowest core test")
	}
	cfg := testConfig()
	cfg.Budget = 60_000
	// The session checker must run the campaign registry: the
	// experiment's per-variant checkers do, and Absorb panics on a
	// registry-length mismatch by design.
	cfg.Refute = NewCampaignChecker()
	s := NewSession(cfg)
	res, err := RefuteExperiment(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(refuteVariants()) {
		t.Fatalf("got %d variant rows, want %d", len(res.Rows), len(refuteVariants()))
	}
	for _, row := range res.Rows {
		if row.Units == 0 || row.Checked == 0 {
			t.Errorf("variant %s checked nothing: %+v", row.Variant, row)
		}
		if row.Violations != 0 {
			t.Errorf("variant %s violated %d identities", row.Variant, row.Violations)
		}
	}
	if res.Merged == nil || res.Merged.TotalViolations != 0 {
		t.Errorf("merged report: %+v", res.Merged)
	}
	out := res.Render()
	for _, needle := range []string{"base", "hashed-pt", "virt-tenants4", "eq1_product", "HOLDS"} {
		if !bytes.Contains([]byte(out), []byte(needle)) {
			t.Errorf("rendered output lacks %q", needle)
		}
	}
	// The session checker absorbed every variant's units.
	if got := cfg.Refute.Report().Units; got == 0 {
		t.Error("session checker absorbed no units")
	}
}

// TestRefuteMonitorCounts: identity results reach the live Monitor
// snapshot — the mid-campaign view the heartbeat and /stats expose.
func TestRefuteMonitorCounts(t *testing.T) {
	cfg := testConfig()
	cfg.Refute = refute.NewChecker()
	cfg.Monitor = telemetry.NewMonitor()
	spec, err := workloads.ByName("stride-synth")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(&cfg, spec, 20, policies[0]); err != nil {
		t.Fatal(err)
	}
	snap := cfg.Monitor.Snapshot()
	if snap.IdentitiesChecked == 0 {
		t.Error("monitor saw no identity checks")
	}
	if snap.IdentitiesViolated != 0 {
		t.Errorf("monitor reports %d violations on a clean run", snap.IdentitiesViolated)
	}
}

// TestRefuteTimelineTrack: with tracing on, a checked unit's process
// carries a refute track whose counter samples record the verdict, and
// the export still validates.
func TestRefuteTimelineTrack(t *testing.T) {
	cfg := testConfig()
	cfg.Refute = refute.NewChecker()
	cfg.Trace = telemetry.New()
	spec, err := workloads.ByName("stride-synth")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(&cfg, spec, 20, policies[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.Validate(buf.Bytes()); err != nil {
		t.Fatalf("traced refute campaign fails validation: %v", err)
	}
	for _, needle := range []string{`"refute"`, "identities_checked", "identities_violated"} {
		if !bytes.Contains(buf.Bytes(), []byte(needle)) {
			t.Errorf("timeline lacks %q", needle)
		}
	}
}
