package core

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

// parallelTestConfig is testConfig with a lower budget: the determinism
// tests below run full campaigns twice.
func parallelTestConfig(parallelism int) RunConfig {
	cfg := testConfig()
	cfg.Budget = 60_000
	cfg.Parallelism = parallelism
	return cfg
}

// TestParallelSweepAllMatchesSerial is the scheduler's core contract: a
// campaign at Parallelism 8 renders byte-identical tables and CSV to the
// same campaign at Parallelism 1.
func TestParallelSweepAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign comparison")
	}
	run := func(parallelism int) (string, string) {
		s := NewSession(parallelTestConfig(parallelism))
		r, err := Fig1(s)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render(), CSV(r)
	}
	serialText, serialCSV := run(1)
	parallelText, parallelCSV := run(8)
	if serialText != parallelText {
		t.Errorf("parallel render differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialText, parallelText)
	}
	if serialCSV != parallelCSV {
		t.Errorf("parallel CSV differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialCSV, parallelCSV)
	}
}

// TestParallelXSweepMatchesSerial covers the extension-sweep scheduler
// path (two page sizes per unit, multiple workloads).
func TestParallelXSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign comparison")
	}
	run := func(parallelism int) string {
		s := NewSession(parallelTestConfig(parallelism))
		r, err := XSweep(s)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	if serial, parallel := run(1), run(8); serial != parallel {
		t.Errorf("parallel xsweep differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestConcurrentExperimentsSingleflight dispatches experiments that share
// the bc-urand sweep concurrently and checks the session measured it
// exactly once.
func TestConcurrentExperimentsSingleflight(t *testing.T) {
	var log bytes.Buffer
	cfg := parallelTestConfig(4)
	cfg.Log = &log
	s := NewSession(cfg)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, id := range []string{"fig5", "fig10", "table6"} {
		exp, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, exp Experiment) {
			defer wg.Done()
			_, errs[i] = exp.Run(s)
		}(i, exp)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("experiment %d: %v", i, err)
		}
	}
	if n := strings.Count(log.String(), "sweeping bc-urand"); n != 1 {
		t.Errorf("bc-urand swept %d times, want 1 (singleflight)\nlog:\n%s", n, log.String())
	}
	wantRuns := len(mustSpec(t, "bc-urand").Sizes(workloads.Tiny)) * 3
	if n := strings.Count(log.String(), "run bc-urand"); n != wantRuns {
		t.Errorf("bc-urand ran %d units, want %d", n, wantRuns)
	}
}

// TestConcurrentSameSweepShares has many goroutines request one sweep;
// all must get the single memoized result.
func TestConcurrentSameSweepShares(t *testing.T) {
	s := NewSession(parallelTestConfig(4))
	const callers = 8
	results := make([][]OverheadPoint, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			pts, err := s.Sweep("stride-synth")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = pts
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if len(results[i]) == 0 || &results[i][0] != &results[0][0] {
			t.Fatalf("caller %d got a different sweep slice", i)
		}
	}
}

// TestSweepErrorCancelsPool: a failing run unit (hashed page tables
// reject 2MB/1GB policies) must abort the sweep promptly — error out, no
// deadlock, no panic.
func TestSweepErrorCancelsPool(t *testing.T) {
	cfg := parallelTestConfig(8)
	cfg.System.PageTable = "hashed"
	spec := mustSpec(t, "stride-synth")

	done := make(chan error, 1)
	go func() {
		_, err := SweepOverhead(&cfg, spec)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("sweep with failing units returned nil error")
		}
		if !strings.Contains(err.Error(), "hashed page tables") {
			t.Errorf("unexpected error: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("sweep deadlocked after unit error")
	}
}

// TestForEachUnitBound checks the pool never runs more units at once
// than the configured parallelism.
func TestForEachUnitBound(t *testing.T) {
	cfg := RunConfig{Parallelism: 3}
	var cur, max, calls atomic.Int64
	err := forEachUnit(&cfg, 24, func(i int) error {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		calls.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 24 {
		t.Errorf("ran %d units, want 24", calls.Load())
	}
	if max.Load() > 3 {
		t.Errorf("observed %d concurrent units, bound is 3", max.Load())
	}
}

// TestForEachUnitFirstError: an early error skips not-yet-started units
// and is the error returned.
func TestForEachUnitFirstError(t *testing.T) {
	cfg := RunConfig{Parallelism: 2}
	var ran atomic.Int64
	err := forEachUnit(&cfg, 64, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errUnit
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != errUnit {
		t.Fatalf("err = %v, want errUnit", err)
	}
	// Cancellation is best-effort (in-flight units drain), but the vast
	// majority of the 64 units must have been skipped.
	if n := ran.Load(); n > 32 {
		t.Errorf("%d units ran after first error, expected most of 64 to be cancelled", n)
	}
}

var errUnit = &unitError{}

type unitError struct{}

func (*unitError) Error() string { return "unit failed" }

// TestSerialScheduleUnchanged: Parallelism 1 runs units in index order on
// the calling goroutine (the pre-scheduler behaviour experiments' log
// output depends on).
func TestSerialScheduleUnchanged(t *testing.T) {
	cfg := RunConfig{Parallelism: 1}
	var order []int
	err := forEachUnit(&cfg, 5, func(i int) error {
		order = append(order, i) // no lock: serial path must not spawn
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}
