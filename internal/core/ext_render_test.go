package core

import (
	"strings"
	"testing"

	"atscale/internal/stats"
)

func TestPromotionRenderRecoveredColumn(t *testing.T) {
	r := &PromotionResult{Workload: "mcf-rand", Rows: []PromotionRow{{
		Footprint: 1 << 26,
		CPI4K:     10, CPIPromo: 7, CPI2M: 6,
		WCPI4K: 1.0, WCPIPromo: 0.4, WCPI2M: 0.1,
		Promotions: 12, Recovered: 0.75,
	}}}
	out := r.Render()
	if !strings.Contains(out, "75.0%") || !strings.Contains(out, "64.0MB") {
		t.Errorf("promotion render missing fields:\n%s", out)
	}
	if csv := CSV(r); !strings.Contains(csv, "footprint,") {
		t.Errorf("promotion CSV missing header:\n%s", csv)
	}
}

func TestHashedPTRender(t *testing.T) {
	r := &HashedPTResult{Workload: "gups-rand", Rows: []HashedPTRow{{
		Footprint: 1 << 30,
		CPIRadix:  20, CPIHashed: 22,
		WCPIRadix: 5, WCPIHashed: 6,
		WalkCyclesRadix: 70, WalkCyclesHashed: 90,
		LoadsPerWalkRadix: 1.8, LoadsPerWalkHashed: 1.1,
	}}}
	out := r.Render()
	for _, needle := range []string{"1.0GB", "1.80", "1.10"} {
		if !strings.Contains(out, needle) {
			t.Errorf("hashedpt render missing %q:\n%s", needle, out)
		}
	}
}

func TestXSweepRender(t *testing.T) {
	r := &XSweepResult{Rows: []XSweepRow{{
		Workload: "uniform-synth", Footprint: 1 << 35,
		WCPI4K: 30, WCPI2M: 2,
		MissesPerKiloAccess4K: 900, MissesPerKiloAccess2M: 100,
		AvgWalkCycles4K: 150,
	}}}
	out := r.Render()
	if !strings.Contains(out, "32.0GB") || !strings.Contains(out, "uniform-synth") {
		t.Errorf("xsweep render:\n%s", out)
	}
}

func TestTable5RenderIncludesCI(t *testing.T) {
	r := &Table5Result{
		Inter: []MetricCorrelation{{
			Metric: "Walk cycles per instruction", Pearson: 0.6, Spearman: 0.8,
			PearsonCI: stats.Interval{Lo: 0.4, Hi: 0.7}, N: 70,
		}},
		Intra: []WorkloadSpearman{{Workload: "bc-urand", Spearman: 1, N: 6}},
	}
	out := r.Render()
	if !strings.Contains(out, "[0.400, 0.700]") {
		t.Errorf("table5 render missing CI:\n%s", out)
	}
	if !strings.Contains(out, "bc-urand") {
		t.Errorf("table5 render missing intra table:\n%s", out)
	}
}
