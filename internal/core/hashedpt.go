package core

import (
	"atscale/internal/arch"
	"atscale/internal/workloads"
)

// This file drives the second extension experiment the paper's discussion
// motivates: "alternative page table data structures that do not
// introduce a log M overhead are deserving of further study". We compare
// the x86-64 radix organization against a hashed page table across a
// footprint sweep: the radix walk lengthens with footprint (more levels
// missing in the PSCs, colder PTEs); the hashed walk stays ~one load.

// HashedPTRow compares the organizations at one footprint.
type HashedPTRow struct {
	Footprint uint64

	CPIRadix, CPIHashed float64
	// WCPI under each organization.
	WCPIRadix, WCPIHashed float64
	// WalkCyclesRadix/Hashed are mean walk latencies.
	WalkCyclesRadix, WalkCyclesHashed float64
	// LoadsPerWalkRadix/Hashed are mean memory accesses per walk.
	LoadsPerWalkRadix, LoadsPerWalkHashed float64
}

// HashedPTResult is the comparison dataset.
type HashedPTResult struct {
	Workload string
	Rows     []HashedPTRow
}

// HashedPTStudy sweeps one workload under both organizations (4 KB heap;
// the hashed table holds base pages only).
func HashedPTStudy(s *Session, workload string) (*HashedPTResult, error) {
	spec, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	radix := s.Config()
	hashed := radix
	hashed.System.PageTable = "hashed"
	configs := [2]*RunConfig{&radix, &hashed}

	params := spec.Sizes(radix.Preset)
	results := make([][2]RunResult, len(params))
	err = forEachUnit(&radix, len(params)*2, func(u int) error {
		rr, err := Run(configs[u%2], spec, params[u/2], arch.Page4K)
		if err != nil {
			return err
		}
		results[u/2][u%2] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	r := &HashedPTResult{Workload: workload}
	for i := range params {
		rr, rh := results[i][0], results[i][1]
		r.Rows = append(r.Rows, HashedPTRow{
			Footprint:          rr.Footprint,
			CPIRadix:           rr.Metrics.CPI,
			CPIHashed:          rh.Metrics.CPI,
			WCPIRadix:          rr.Metrics.WCPI,
			WCPIHashed:         rh.Metrics.WCPI,
			WalkCyclesRadix:    rr.Metrics.AvgWalkCycles,
			WalkCyclesHashed:   rh.Metrics.AvgWalkCycles,
			LoadsPerWalkRadix:  rr.Metrics.Eq1.WalkerLoadsPerWalk,
			LoadsPerWalkHashed: rh.Metrics.Eq1.WalkerLoadsPerWalk,
		})
	}
	return r, nil
}

// HashedPTExperiment runs the study on gups-rand, the purest
// translation-bound kernel in the suite.
func HashedPTExperiment(s *Session) (*HashedPTResult, error) {
	return HashedPTStudy(s, "gups-rand")
}

// Tables exposes the per-footprint comparison.
func (r *HashedPTResult) Tables() []*Table {
	t := NewTable("Extension: radix vs hashed page table on "+r.Workload+" (4KB pages)",
		"footprint", "CPI radix", "CPI hashed", "WCPI radix", "WCPI hashed",
		"walk-lat radix", "walk-lat hashed", "loads/walk radix", "loads/walk hashed")
	for _, row := range r.Rows {
		t.Row(arch.FormatBytes(row.Footprint),
			f(row.CPIRadix, 3), f(row.CPIHashed, 3),
			f(row.WCPIRadix, 4), f(row.WCPIHashed, 4),
			f(row.WalkCyclesRadix, 1), f(row.WalkCyclesHashed, 1),
			f(row.LoadsPerWalkRadix, 2), f(row.LoadsPerWalkHashed, 2))
	}
	return []*Table{t}
}

// Render emits the comparison table.
func (r *HashedPTResult) Render() string { return RenderTables(r.Tables(), "") }
