package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/topdown"
)

// This file wires the attribution tree (internal/topdown) into the
// campaign layer: the combined identity registry every checker-armed
// campaign runs, the collector that aggregates per-unit counters into
// per-scheme-group and campaign trees, and the table renderer the
// experiments share.

// CampaignIdentities returns the identity registry campaign checkers
// run: the base refute registry plus the attribution tree's generated
// conservation laws. Every construction site that later merges or
// absorbs outcomes (atscale -refute's session checker, the refute
// experiment's per-variant checkers) must use this one helper — refute
// panics on registry-length mismatches by design.
func CampaignIdentities() []refute.Identity {
	return append(refute.Identities(), topdown.Identities()...)
}

// NewCampaignChecker builds a checker over CampaignIdentities.
func NewCampaignChecker() *refute.Checker {
	return refute.NewChecker(CampaignIdentities()...)
}

// TopdownCollector accumulates completed units' counter deltas for
// attribution: per scheme group (the -topdown-diff comparison axis)
// and campaign-wide. The tree's node expressions are linear in the
// counters, so a tree over summed counters *is* the aggregate tree.
// Safe for concurrent use from campaign workers; all derived trees are
// deterministic regardless of completion order.
type TopdownCollector struct {
	mu sync.Mutex
	//atlint:guardedby mu
	groups map[string]*perf.Counters
	//atlint:guardedby mu
	units map[string]*perf.Counters
	//atlint:guardedby mu
	campaign perf.Counters
}

// NewTopdownCollector creates an empty collector.
func NewTopdownCollector() *TopdownCollector {
	return &TopdownCollector{
		groups: make(map[string]*perf.Counters),
		units:  make(map[string]*perf.Counters),
	}
}

// Add folds one completed unit's counter delta into the collector.
// Nil-safe.
func (tc *TopdownCollector) Add(group, unit string, c perf.Counters) {
	if tc == nil {
		return
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	g, ok := tc.groups[group]
	if !ok {
		g = &perf.Counters{}
		tc.groups[group] = g
	}
	uc := c
	tc.units[unit] = &uc
	for e := perf.Event(0); e < perf.NumEvents; e++ {
		g.Add(e, c.Get(e))
		tc.campaign.Add(e, c.Get(e))
	}
}

// Groups returns the collected group names, sorted.
func (tc *TopdownCollector) Groups() []string {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	names := make([]string, 0, len(tc.groups))
	for g := range tc.groups {
		names = append(names, g)
	}
	sort.Strings(names)
	return names
}

// Units returns the collected unit count.
func (tc *TopdownCollector) Units() int {
	if tc == nil {
		return 0
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.units)
}

// CampaignTree builds the attribution tree over every collected unit.
func (tc *TopdownCollector) CampaignTree() *topdown.Tree {
	tc.mu.Lock()
	c := tc.campaign
	tc.mu.Unlock()
	return topdown.FromCounters(c)
}

// GroupTree builds the attribution tree over one scheme group's units,
// or an error naming the known groups when the group never ran.
func (tc *TopdownCollector) GroupTree(group string) (*topdown.Tree, error) {
	tc.mu.Lock()
	g, ok := tc.groups[group]
	var c perf.Counters
	if ok {
		c = *g
	}
	tc.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no attribution group %q (have %v)", group, tc.Groups())
	}
	return topdown.FromCounters(c), nil
}

// UnitTree builds one unit's attribution tree.
func (tc *TopdownCollector) UnitTree(unit string) (*topdown.Tree, error) {
	tc.mu.Lock()
	u, ok := tc.units[unit]
	var c perf.Counters
	if ok {
		c = *u
	}
	tc.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no attribution unit %q", unit)
	}
	return topdown.FromCounters(c), nil
}

// topdownGroup names the attribution group a config's units belong to,
// matching the schemes experiment's column labels: the scheme name,
// with the NUMA node count folded into the radix baseline's name and a
// virt marker when nested paging is on.
func topdownGroup(cfg *RunConfig) string {
	name := cfg.System.Scheme
	if name == "" {
		name = "radix"
	}
	if n := cfg.System.NUMA.EffectiveNodes(); n > 1 && name == "radix" {
		name = fmt.Sprintf("radix-numa%d", n)
	}
	if cfg.System.Virt.Enabled {
		name += "+virt"
	}
	return name
}

// TreeTable renders an attribution tree as a data table (one row per
// node: indented path segment, value, share), so experiment results
// can embed trees in their Tables() output and the CSV export carries
// them.
func TreeTable(title string, t *topdown.Tree) *Table {
	shareCol := "share"
	valueCol := "value"
	if t.IsDelta {
		shareCol = "rel change"
		valueCol = "delta"
	}
	tbl := NewTable(title, "node", valueCol, shareCol, "domain")
	var walkDepth func(n *topdown.Node, depth int)
	walkDepth = func(n *topdown.Node, depth int) {
		label := strings.Repeat("  ", depth) + n.Name
		if t.IsDelta {
			tbl.Row(label, fmt.Sprintf("%+.0f", n.Value),
				fmt.Sprintf("%+.1f%%", 100*n.Share), string(n.Domain))
		} else {
			tbl.Row(label, fmt.Sprintf("%.0f", n.Value),
				fmt.Sprintf("%.1f%%", 100*n.Share), string(n.Domain))
		}
		for _, k := range n.Kids {
			walkDepth(k, depth+1)
		}
	}
	if t.Root != nil {
		walkDepth(t.Root, 0)
	}
	return tbl
}
