package core

import (
	"runtime"
	"sync"

	"atscale/internal/arch"
	"atscale/internal/machine"
)

// This file is the campaign scheduler. Every sweep in the package breaks
// its work into *run units* — one (workload, param, page size) simulation,
// each built on a fresh, seed-deterministic machine with no shared state —
// and executes them on a bounded worker pool. Results are written into
// per-unit slots and reduced in ladder order afterwards, so a parallel
// campaign's tables and CSV are byte-identical to a serial one's; only the
// interleaving of progress lines (each written atomically) differs.
//
// The pool bound is RunConfig.Parallelism (default GOMAXPROCS). A session
// shares one pool across every experiment dispatched on it, so concurrent
// experiments (atscale -p with several ids) together never run more than
// the configured number of simulations at once.

// machinePool recycles simulated machines across a session's run units.
// Building a machine allocates megabytes of cache/TLB tag arrays and
// re-faults its physical backing from scratch — formerly the bulk of a
// campaign's allocation volume. Renewing a pooled machine reuses that
// long-lived state in place; machine.Renew guarantees the renewed
// machine is byte-identical to a fresh build, and the flatgold goldens
// (captured unpooled) hold pooled campaigns to it. Only native radix
// machines are pooled (machine.Poolable), and a machine is only handed
// out for exactly the SystemConfig it was built with.
type machinePool struct {
	mu sync.Mutex
	// max bounds retained machines (the session's parallelism: more can
	// never be in flight at once, so more could never be reused).
	max int
	//atlint:guardedby mu
	free []*machine.Machine
}

func newMachinePool(max int) *machinePool { return &machinePool{max: max} }

// acquire returns a renewed machine matching sys, or nil when the pool
// has no match (the caller builds a fresh one). Nil-safe.
func (p *machinePool) acquire(sys arch.SystemConfig, policy arch.PageSize, seed int64) *machine.Machine {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	var m *machine.Machine
	for i := len(p.free) - 1; i >= 0; i-- {
		if *p.free[i].Config() == sys {
			m = p.free[i]
			p.free[i] = p.free[len(p.free)-1]
			p.free = p.free[:len(p.free)-1]
			break
		}
	}
	p.mu.Unlock()
	if m == nil || !m.Renew(policy, seed) {
		return nil
	}
	return m
}

// release parks a finished unit's machine for reuse (dropped when the
// pool is full or the machine is not poolable). Nil-safe.
func (p *machinePool) release(m *machine.Machine) {
	if p == nil || !m.Poolable() {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, m)
	}
	p.mu.Unlock()
}

// parallelism resolves the configured worker count.
func (c *RunConfig) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// limiter bounds how many run units execute concurrently. A nil limiter
// admits everything (callers size it before use).
type limiter chan struct{}

func (l limiter) acquire() { l <- struct{}{} }
func (l limiter) release() { <-l }

// forEachUnit executes fn(0..n-1) on the config's worker pool and returns
// the first error. With Parallelism 1 the units run in index order on the
// calling goroutine, exactly like the pre-scheduler serial loops. With a
// larger pool, units run concurrently (bounded by the session-shared pool
// when the config came from a session); after the first error no new unit
// starts, in-flight units drain, and the error is returned — a unit's
// result is only meaningful if forEachUnit returned nil.
func forEachUnit(cfg *RunConfig, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// Announce the scheduled unit count before any unit runs, so live
	// progress (done/total) is meaningful from the first heartbeat.
	cfg.Monitor.AddUnitsTotal(uint64(n))
	if cfg.parallelism() == 1 || n == 1 {
		for i := 0; i < n; i++ {
			// A session-shared limiter must bound these units too.
			// Concurrent experiments (Session.SweepAll, the CLI's -p
			// fan-out) each enter this serial path when Parallelism
			// resolves to 1 — on a single-core host that used to mean
			// one unit in flight *per caller* instead of one total,
			// which thrashed the machine pool and ran parallel
			// campaigns slower than serial ones.
			if cfg.pool != nil {
				cfg.pool.acquire()
			}
			cfg.Monitor.WorkerBusy()
			err := fn(i)
			cfg.Monitor.WorkerIdle()
			if cfg.pool != nil {
				cfg.pool.release()
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	pool := cfg.pool
	if pool == nil {
		// Config not built by a session: bound this call on its own.
		pool = make(limiter, cfg.parallelism())
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			pool.acquire()
			defer pool.release()
			if failed() {
				return // cancelled: an earlier unit errored
			}
			cfg.Monitor.WorkerBusy()
			defer cfg.Monitor.WorkerIdle()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
