package core

import (
	"runtime"
	"sync"
)

// This file is the campaign scheduler. Every sweep in the package breaks
// its work into *run units* — one (workload, param, page size) simulation,
// each built on a fresh, seed-deterministic machine with no shared state —
// and executes them on a bounded worker pool. Results are written into
// per-unit slots and reduced in ladder order afterwards, so a parallel
// campaign's tables and CSV are byte-identical to a serial one's; only the
// interleaving of progress lines (each written atomically) differs.
//
// The pool bound is RunConfig.Parallelism (default GOMAXPROCS). A session
// shares one pool across every experiment dispatched on it, so concurrent
// experiments (atscale -p with several ids) together never run more than
// the configured number of simulations at once.

// parallelism resolves the configured worker count.
func (c *RunConfig) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// limiter bounds how many run units execute concurrently. A nil limiter
// admits everything (callers size it before use).
type limiter chan struct{}

func (l limiter) acquire() { l <- struct{}{} }
func (l limiter) release() { <-l }

// forEachUnit executes fn(0..n-1) on the config's worker pool and returns
// the first error. With Parallelism 1 the units run in index order on the
// calling goroutine, exactly like the pre-scheduler serial loops. With a
// larger pool, units run concurrently (bounded by the session-shared pool
// when the config came from a session); after the first error no new unit
// starts, in-flight units drain, and the error is returned — a unit's
// result is only meaningful if forEachUnit returned nil.
func forEachUnit(cfg *RunConfig, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if cfg.parallelism() == 1 || n == 1 {
		for i := 0; i < n; i++ {
			cfg.Monitor.WorkerBusy()
			err := fn(i)
			cfg.Monitor.WorkerIdle()
			if err != nil {
				return err
			}
		}
		return nil
	}
	pool := cfg.pool
	if pool == nil {
		// Config not built by a session: bound this call on its own.
		pool = make(limiter, cfg.parallelism())
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			pool.acquire()
			defer pool.release()
			if failed() {
				return // cancelled: an earlier unit errored
			}
			cfg.Monitor.WorkerBusy()
			defer cfg.Monitor.WorkerIdle()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
