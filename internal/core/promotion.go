package core

import (
	"atscale/internal/arch"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

// This file drives the extension experiment the paper's discussion
// proposes (§VI, "Walk cycles per instruction is a good proxy"): using
// WCPI as the online heuristic for OS hugepage promotion. For each
// footprint we compare untreated 4 KB backing, 4 KB backing with the
// WCPI-guided promoter, and static 2 MB backing (the upper bound).

// PromotionRow compares the three configurations at one footprint.
type PromotionRow struct {
	Footprint uint64

	CPI4K, CPIPromo, CPI2M    float64
	WCPI4K, WCPIPromo, WCPI2M float64
	// Promotions is how many 2 MB blocks the policy collapsed.
	Promotions uint64
	// Recovered is the fraction of the static-2MB CPI improvement the
	// online policy achieved (1.0 = as good as 2 MB backing).
	Recovered float64
}

// PromotionResult is the extension study's dataset.
type PromotionResult struct {
	Workload string
	Rows     []PromotionRow
}

// PromotionStudy measures the WCPI-guided promotion policy on one
// workload's ladder.
func PromotionStudy(s *Session, workload string) (*PromotionResult, error) {
	spec, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	base := s.Config()
	promo := base
	promo.EnablePromotion = true
	// The three per-size configurations, in the serial measurement order.
	variants := [3]struct {
		cfg *RunConfig
		ps  arch.PageSize
	}{{&base, arch.Page4K}, {&promo, arch.Page4K}, {&base, arch.Page2M}}

	params := spec.Sizes(base.Preset)
	results := make([][3]RunResult, len(params))
	err = forEachUnit(&base, len(params)*len(variants), func(u int) error {
		v := variants[u%len(variants)]
		rr, err := Run(v.cfg, spec, params[u/len(variants)], v.ps)
		if err != nil {
			return err
		}
		results[u/len(variants)][u%len(variants)] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	r := &PromotionResult{Workload: workload}
	for i := range params {
		r4, rp, r2 := results[i][0], results[i][1], results[i][2]
		row := PromotionRow{
			Footprint:  r4.Footprint,
			CPI4K:      r4.Metrics.CPI,
			CPIPromo:   rp.Metrics.CPI,
			CPI2M:      r2.Metrics.CPI,
			WCPI4K:     r4.Metrics.WCPI,
			WCPIPromo:  rp.Metrics.WCPI,
			WCPI2M:     r2.Metrics.WCPI,
			Promotions: rp.Counters.Get(perf.THPPromotions),
		}
		if gap := row.CPI4K - row.CPI2M; gap > 0 {
			row.Recovered = (row.CPI4K - row.CPIPromo) / gap
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// PromoExperiment runs the study on mcf-rand, the most
// translation-intensive workload in the suite.
func PromoExperiment(s *Session) (*PromotionResult, error) {
	return PromotionStudy(s, "mcf-rand")
}

// Tables exposes the three-way comparison per footprint.
func (r *PromotionResult) Tables() []*Table {
	t := NewTable("Extension: WCPI-guided hugepage promotion on "+r.Workload,
		"footprint", "CPI 4K", "CPI promo", "CPI 2M", "WCPI 4K", "WCPI promo", "WCPI 2M",
		"promotions", "gap recovered")
	for _, row := range r.Rows {
		t.Row(arch.FormatBytes(row.Footprint),
			f(row.CPI4K, 3), f(row.CPIPromo, 3), f(row.CPI2M, 3),
			f(row.WCPI4K, 4), f(row.WCPIPromo, 4), f(row.WCPI2M, 4),
			f(float64(row.Promotions), 0), pct(row.Recovered))
	}
	return []*Table{t}
}

// Render emits the comparison table.
func (r *PromotionResult) Render() string { return RenderTables(r.Tables(), "") }
