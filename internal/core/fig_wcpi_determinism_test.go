package core

import (
	"fmt"
	"testing"

	"atscale/internal/stats"
)

// TestFlattenSweepsOrderIndependent is the regression test for the
// Table V nondeterminism atlint's detrange analyzer surfaced: the old
// code flattened SweepAll's map in map-iteration order, and because
// BootstrapCorrelation resamples positions of the flattened slice with
// a fixed seed, the rendered Pearson confidence intervals differed run
// to run. Flattening must follow sortedSweepNames and nothing else.
func TestFlattenSweepsOrderIndependent(t *testing.T) {
	// Many trials: a map-iteration-order implementation produces the
	// sorted order only by chance, so any revert fails almost surely.
	const trials = 25
	var refCI stats.Interval
	for trial := 0; trial < trials; trial++ {
		all := make(map[string][]OverheadPoint)
		for w := 0; w < 8; w++ {
			name := fmt.Sprintf("wl-%c", 'a'+w)
			var pts []OverheadPoint
			for i := 0; i < 4; i++ {
				p := OverheadPoint{
					Footprint:   uint64(1) << (20 + i),
					RelOverhead: float64(w)*0.01 + float64(i)*0.1,
				}
				p.M4K.WCPI = float64(w) + float64(i)*0.25
				if w == 3 && i == 0 {
					p.RelOverhead = -0.05 // excluded as not AT-sensitive
				}
				pts = append(pts, p)
			}
			all[name] = pts
		}

		pts, excluded := flattenSweeps(all, sortedSweepNames(all))
		if excluded != 1 {
			t.Fatalf("trial %d: excluded = %d, want 1", trial, excluded)
		}
		if len(pts) != 8*4-1 {
			t.Fatalf("trial %d: %d points, want %d", trial, len(pts), 8*4-1)
		}
		// The flattened order must be exactly sorted-name concatenation.
		idx := 0
		for w := 0; w < 8; w++ {
			for i := 0; i < 4; i++ {
				if w == 3 && i == 0 {
					continue
				}
				wantWCPI := float64(w) + float64(i)*0.25
				if pts[idx].M4K.WCPI != wantWCPI {
					t.Fatalf("trial %d: pts[%d].M4K.WCPI = %v, want %v (order leaked map iteration)",
						trial, idx, pts[idx].M4K.WCPI, wantWCPI)
				}
				idx++
			}
		}

		// And the position-sensitive bootstrap CI must be identical
		// across trials, which is what the rendered Table V needs.
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.M4K.WCPI)
			ys = append(ys, p.RelOverhead)
		}
		ci, err := stats.BootstrapCorrelation(xs, ys, stats.Pearson, 100, 0.05, 7)
		if err != nil {
			t.Fatalf("trial %d: bootstrap: %v", trial, err)
		}
		if trial == 0 {
			refCI = ci
		} else if ci != refCI {
			t.Fatalf("trial %d: bootstrap CI %+v != %+v: flattening order is not deterministic", trial, ci, refCI)
		}
	}
}
