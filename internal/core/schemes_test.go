package core

import (
	"strings"
	"testing"
)

// TestSchemesExperiment runs the matrix at the tiny preset: every
// variant builds, every merged identity holds (a violation fails the
// experiment with an error), and the parallel schedule renders
// byte-identically to the serial one.
func TestSchemesExperiment(t *testing.T) {
	serialCfg := testConfig()
	serialCfg.Parallelism = 1
	// The tiny budget never reaches the default 200k-access migration
	// cadence; tighten it so the NUMA variants actually migrate.
	serialCfg.System.NUMA.MigrateEvery = 20_000
	serial, err := SchemesExperiment(NewSession(serialCfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Variants) != len(schemeVariants()) {
		t.Fatalf("variants = %v", serial.Variants)
	}
	if len(serial.Rows) == 0 || len(serial.Mechanics) == 0 {
		t.Fatal("empty matrix")
	}
	out := serial.Render()
	for _, needle := range []string{"radix", "radix-numa2", "victima", "mitosis", "dramcache",
		"victima_probe_conservation", "replica_walk_partition", "dramcache_mem_partition"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}
	if strings.Contains(out, "BREAKS") {
		t.Errorf("identity verdict BREAKS in:\n%s", out)
	}

	// Every WCPI cell must be populated for translation-bound units; the
	// 4K gups rows in particular cannot be zero across the board.
	sawNonZero := false
	for _, row := range serial.Rows {
		if len(row.WCPI) != len(serial.Variants) {
			t.Fatalf("row %v has %d cells", row, len(row.WCPI))
		}
		for _, w := range row.WCPI {
			if w > 0 {
				sawNonZero = true
			}
		}
	}
	if !sawNonZero {
		t.Error("all WCPI cells zero")
	}

	// Mechanism engagement: each proposal's counters must actually move
	// somewhere in the matrix, or the comparison compares nothing.
	var blockHit, replicaSeen, dcSeen, migrated bool
	for _, m := range serial.Mechanics {
		if m.Variant == "victima" && m.BlockHitRate > 0 {
			blockHit = true
		}
		if m.Variant == "mitosis" && m.ReplicaLocalFrac > 0 {
			replicaSeen = true
		}
		if m.Variant == "dramcache" && m.DRAMCacheHitRate >= 0 && m.LoadsPerWalk > 0 {
			dcSeen = true
		}
		if (m.Variant == "mitosis" || m.Variant == "radix-numa2") && m.Migrations > 0 {
			migrated = true
		}
	}
	if !blockHit || !replicaSeen || !dcSeen || !migrated {
		t.Errorf("mechanisms unengaged: blockHit=%v replica=%v dc=%v migrated=%v\n%s",
			blockHit, replicaSeen, dcSeen, migrated, out)
	}

	// Attribution: one aggregate tree per variant, one signed delta per
	// non-baseline variant, and both tables in the render.
	if len(serial.Attribution) != len(serial.Variants) || len(serial.Deltas) != len(serial.Variants) {
		t.Fatalf("attribution slices sized %d/%d, want %d",
			len(serial.Attribution), len(serial.Deltas), len(serial.Variants))
	}
	for vi, tree := range serial.Attribution {
		if tree == nil || tree.Root == nil || tree.Root.Value == 0 {
			t.Errorf("variant %s: empty attribution tree", serial.Variants[vi])
		}
	}
	if serial.Deltas[0] != nil {
		t.Error("baseline variant should have no delta tree")
	}
	for vi := 1; vi < len(serial.Deltas); vi++ {
		if serial.Deltas[vi] == nil || !serial.Deltas[vi].IsDelta {
			t.Errorf("variant %s: missing delta tree", serial.Variants[vi])
		}
	}
	// The scheme probes that engaged above must surface in the trees.
	if n := serial.Attribution[2].Lookup("cycles/translation/scheme"); n == nil || n.Value == 0 {
		t.Error("victima attribution tree shows no scheme probes")
	}
	for _, needle := range []string{"cycle attribution by variant", "signed attribution delta vs radix"} {
		if !strings.Contains(out, needle) {
			t.Errorf("render missing %q", needle)
		}
	}

	parCfg := testConfig()
	parCfg.Parallelism = 4
	parCfg.System.NUMA.MigrateEvery = 20_000
	parallel, err := SchemesExperiment(NewSession(parCfg))
	if err != nil {
		t.Fatal(err)
	}
	if pout := parallel.Render(); pout != out {
		t.Errorf("parallel render differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", out, pout)
	}
}
