package core

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

// The flat-layout goldens lock the simulator's observable outputs —
// counter deltas, exported timelines, and refute reports — across the
// hot-path refactor (direct-indexed physical memory, single-pass
// walker, zero-alloc hierarchies, machine reuse). They were captured
// from the pre-refactor tree and must never change: any optimization
// that shifts a byte here changed the model, not just its speed.
//
// Regenerate (only when the *model* deliberately changes) with:
//
//	UPDATE_FLATGOLD=1 go test ./internal/core -run TestFlatGold
const flatgoldDir = "testdata/flatgold"

// flatgoldCase is one configuration of the differential matrix. It
// deliberately crosses every walker/page-table/policy dimension the
// refactor touches: the radix walker at 4/5 levels, all three page-size
// policies, hashed page tables, nested paging at both EPT leaf sizes,
// and WCPI-guided promotion (which exercises machine-internal state the
// quiet path caches).
type flatgoldCase struct {
	name     string
	workload string
	ps       arch.PageSize
	mutate   func(*RunConfig)
}

func flatgoldCases() []flatgoldCase {
	return []flatgoldCase{
		{name: "native-4k", workload: "gups-rand", ps: arch.Page4K},
		{name: "native-2m", workload: "gups-rand", ps: arch.Page2M},
		{name: "native-1g", workload: "uniform-synth", ps: arch.Page1G},
		{name: "lvl5", workload: "stride-synth", ps: arch.Page4K,
			mutate: func(c *RunConfig) { c.System.PagingLevels = 5 }},
		{name: "hashed", workload: "mcf-rand", ps: arch.Page4K,
			mutate: func(c *RunConfig) { c.System.PageTable = "hashed" }},
		{name: "virt-ept4k", workload: "gups-rand", ps: arch.Page4K,
			mutate: func(c *RunConfig) { c.System = virtualize(c.System, arch.Page4K) }},
		{name: "virt-ept2m", workload: "zipf-synth", ps: arch.Page4K,
			mutate: func(c *RunConfig) { c.System = virtualize(c.System, arch.Page2M) }},
		{name: "promo", workload: "gups-rand", ps: arch.Page4K,
			mutate: func(c *RunConfig) { c.EnablePromotion = true }},
		{name: "sampling", workload: "stride-synth", ps: arch.Page4K,
			mutate: func(c *RunConfig) {
				c.SamplePeriod = refuteSamplePeriod
				c.SampleBuffer = refuteSampleRing
			}},
	}
}

// flatgoldCounters renders one case's full result as a stable text
// dump: the unit name plus every counter (zeros included, so event
// reordering or a newly-missing increment cannot hide).
func flatgoldCounters(t *testing.T, c flatgoldCase) string {
	t.Helper()
	cfg := testConfig()
	cfg.Budget = 60_000
	if c.mutate != nil {
		c.mutate(&cfg)
	}
	spec := mustSpec(t, c.workload)
	r, err := Run(&cfg, spec, spec.Ladder[0], c.ps)
	if err != nil {
		t.Fatalf("flatgold %s: %v", c.name, err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "unit: %s\n", unitName(&cfg, spec, spec.Ladder[0], c.ps))
	fmt.Fprintf(&b, "footprint: %d\n", r.Footprint)
	fmt.Fprintf(&b, "samples: %d dropped: %d droppedWeight: %d\n",
		len(r.Samples), r.SampleDropped, r.SampleDroppedWeight)
	b.WriteString(r.Counters.Format())
	return b.String()
}

// flatgoldTimeline exports the traced wcpi campaign (the same campaign
// the timeline determinism tests run) as the timeline golden.
func flatgoldTimeline(t *testing.T) []byte {
	t.Helper()
	return timelineCampaign(t, 1)
}

// flatgoldRefute runs a two-variant identity sweep (native + nested
// paging) and returns the checker's deterministic JSON report.
func flatgoldRefute(t *testing.T) []byte {
	t.Helper()
	checker := refute.NewChecker()
	cfg := testConfig()
	cfg.Budget = 40_000
	cfg.Refute = checker
	spec := mustSpec(t, "uniform-synth")
	if _, err := SweepOverhead(&cfg, spec); err != nil {
		t.Fatal(err)
	}
	vcfg := testConfig()
	vcfg.Budget = 40_000
	vcfg.Refute = checker
	vcfg.UnitTag = " @virt"
	vcfg.System = virtualize(vcfg.System, arch.Page2M)
	if _, err := Run(&vcfg, spec, spec.Ladder[0], arch.Page4K); err != nil {
		t.Fatal(err)
	}
	return checker.Report().JSON()
}

// flatgoldCompare asserts got matches the committed golden, or rewrites
// the golden when UPDATE_FLATGOLD=1.
func flatgoldCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join(flatgoldDir, name)
	if os.Getenv("UPDATE_FLATGOLD") != "" {
		if err := os.MkdirAll(flatgoldDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_FLATGOLD=1 to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from pre-refactor golden (%d vs %d bytes)\n"+
			"the hot-path refactor must be byte-identical; diff the file to find the drift",
			name, len(got), len(want))
		diffPath := path + ".got"
		if err := os.WriteFile(diffPath, got, 0o644); err == nil {
			t.Logf("wrote divergent output to %s", diffPath)
		}
	}
}

// TestFlatGoldCounters locks the per-unit counter deltas across the
// configuration matrix.
func TestFlatGoldCounters(t *testing.T) {
	for _, c := range flatgoldCases() {
		t.Run(c.name, func(t *testing.T) {
			flatgoldCompare(t, "counters-"+c.name+".txt", []byte(flatgoldCounters(t, c)))
		})
	}
}

// TestFlatGoldTimeline locks the exported campaign timeline bytes. The
// export is ~11 MB, so the golden stores its SHA-256 plus the length:
// that still pins every byte without committing megabytes of JSON.
func TestFlatGoldTimeline(t *testing.T) {
	data := flatgoldTimeline(t)
	if _, err := telemetry.Validate(data); err != nil {
		t.Fatalf("timeline invalid before comparison: %v", err)
	}
	sum := sha256.Sum256(data)
	digest := fmt.Sprintf("sha256:%x len:%d\n", sum, len(data))
	flatgoldCompare(t, "timeline.sha256", []byte(digest))
}

// TestFlatGoldRefute locks the refute checker's JSON report over a
// native sweep plus a nested-paging unit.
func TestFlatGoldRefute(t *testing.T) {
	flatgoldCompare(t, "refute.json", flatgoldRefute(t))
}

// TestFlatGoldCampaign locks the campaign artifact of the overhead
// sweep: every point's derived numbers in ladder order, exactly the
// dataset the figure pipeline consumes.
func TestFlatGoldCampaign(t *testing.T) {
	cfg := testConfig()
	cfg.Budget = 40_000
	spec := mustSpec(t, "stride-synth")
	pts, err := SweepOverhead(&cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("workload,param,footprint,cpi4k,cpi2m,cpi1g,reloverhead,wcpi4k\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%d,%d,%.9g,%.9g,%.9g,%.9g,%.9g\n",
			p.Workload, p.Param, p.Footprint,
			p.CPI4K, p.CPI2M, p.CPI1G, p.RelOverhead, p.M4K.WCPI)
	}
	flatgoldCompare(t, "campaign-stride.csv", []byte(b.String()))
}

var _ = workloads.Tiny // keep the import pinned alongside testConfig
