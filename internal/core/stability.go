package core

import (
	"atscale/internal/arch"
	"atscale/internal/stats"
	"atscale/internal/workloads"
)

// This file drives the measurement-stability experiment. The paper's
// methodology (§IV) goes to lengths against noise and systematic error
// (pinned machines, disabled DVFS/ASLR, warmup runs); the simulator's
// analogue of run-to-run noise is its seeded speculation model. This
// study quantifies how much the headline metrics move across seeds — the
// error bars for every other experiment.

// stabilitySeeds is how many seeds the study samples.
const stabilitySeeds = 7

// StabilityRow summarizes one metric across seeds.
type StabilityRow struct {
	Metric  string
	Summary stats.Summary
	// RelSpread is (max-min)/mean, the quick error-bar figure.
	RelSpread float64
}

// StabilityResult is the study's dataset.
type StabilityResult struct {
	Workload  string
	Param     uint64
	Footprint uint64
	Seeds     int
	Rows      []StabilityRow
}

// StabilityStudy runs one (workload, size) under several seeds and
// summarizes metric dispersion.
func StabilityStudy(s *Session, workload string, param uint64) (*StabilityResult, error) {
	spec, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	if param == 0 {
		sizes := spec.Sizes(s.Config().Preset)
		param = sizes[len(sizes)/2]
	}
	base := s.Config()
	results := make([]RunResult, stabilitySeeds)
	err = forEachUnit(&base, stabilitySeeds, func(i int) error {
		cfg := base
		cfg.Seed = int64(i + 1)
		rr, err := Run(&cfg, spec, param, arch.Page4K)
		if err != nil {
			return err
		}
		results[i] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cpi, wcpi, nonRetired, clears []float64
	r := &StabilityResult{Workload: workload, Param: param, Seeds: stabilitySeeds}
	for _, rr := range results {
		r.Footprint = rr.Footprint
		m := rr.Metrics
		_, wp, ab := m.Outcomes.Fractions()
		cpi = append(cpi, m.CPI)
		wcpi = append(wcpi, m.WCPI)
		nonRetired = append(nonRetired, wp+ab)
		clears = append(clears, m.MachineClearsPerKiloInstruction)
	}
	for _, mr := range []struct {
		name string
		xs   []float64
	}{
		{"CPI", cpi},
		{"WCPI", wcpi},
		{"non-retired walk fraction", nonRetired},
		{"machine clears / kinst", clears},
	} {
		sum := stats.Summarize(mr.xs)
		row := StabilityRow{Metric: mr.name, Summary: sum}
		if sum.Mean != 0 {
			row.RelSpread = (sum.Max - sum.Min) / sum.Mean
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

// StabilityExperiment runs the study on mcf-rand's middle rung.
func StabilityExperiment(s *Session) (*StabilityResult, error) {
	return StabilityStudy(s, "mcf-rand", 0)
}

// Tables exposes per-metric dispersion.
func (r *StabilityResult) Tables() []*Table {
	t := NewTable("Measurement stability across seeds: "+r.Workload+
		" @ "+arch.FormatBytes(r.Footprint)+" ("+f(float64(r.Seeds), 0)+" seeds, 4KB pages)",
		"metric", "mean", "stddev", "min", "max", "rel spread")
	for _, row := range r.Rows {
		t.Row(row.Metric, f(row.Summary.Mean, 4), f(row.Summary.Stddev, 4),
			f(row.Summary.Min, 4), f(row.Summary.Max, 4), pct(row.RelSpread))
	}
	return []*Table{t}
}

// Render emits the dispersion table.
func (r *StabilityResult) Render() string { return RenderTables(r.Tables(), "") }
