package core

import (
	"fmt"
	"strings"
)

// Table is a small text-table builder used by every experiment's Render.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with a title line and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// Row appends one row; cell counts beyond the header are allowed (they
// simply widen the table).
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the aligned table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows), for
// plotting outside the tool.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	write := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	write(t.header)
	for _, r := range t.rows {
		write(r)
	}
	return b.String()
}

// f formats a float at the given precision (render helper).
func f(x float64, prec int) string { return fmt.Sprintf("%.*f", prec, x) }

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
