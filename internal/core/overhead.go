package core

import (
	"math"

	"atscale/internal/arch"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

// OverheadPoint is one input size of one workload, measured under all
// three page-size policies and reduced per the paper's §III methodology.
type OverheadPoint struct {
	// Workload is the program-generator name.
	Workload string
	// Param is the input-size parameter.
	Param uint64
	// Footprint is the memory footprint (identical across policies; the
	// paper indexes by the 4 KB configuration's footprint).
	Footprint uint64

	// CPI4K, CPI2M, CPI1G are the per-policy cycles per instruction.
	// The workloads retire identical instruction streams under every
	// policy, so CPI ratios equal runtime ratios.
	CPI4K, CPI2M, CPI1G float64

	// RelOverhead is (t_4K - baseline) / baseline with
	// baseline = min(t_2MB, t_1GB) — the paper's relative AT overhead.
	RelOverhead float64

	// M4K, M2M, M1G are the full derived metrics per policy.
	M4K, M2M, M1G perf.Metrics
}

// Log10Footprint returns log10 of the footprint in bytes (the regression
// abscissa of Table IV).
func (p OverheadPoint) Log10Footprint() float64 { return math.Log10(float64(p.Footprint)) }

// MeasureOverhead runs one (workload, size) under 4 KB, 2 MB and 1 GB
// policies and reduces to an OverheadPoint.
func MeasureOverhead(cfg *RunConfig, spec *workloads.Spec, param uint64) (OverheadPoint, error) {
	var rr [3]RunResult
	for _, ps := range []arch.PageSize{arch.Page4K, arch.Page2M, arch.Page1G} {
		r, err := Run(cfg, spec, param, ps)
		if err != nil {
			return OverheadPoint{}, err
		}
		rr[ps] = r
	}
	p := OverheadPoint{
		Workload:  spec.Name(),
		Param:     param,
		Footprint: rr[arch.Page4K].Footprint,
		CPI4K:     rr[arch.Page4K].Metrics.CPI,
		CPI2M:     rr[arch.Page2M].Metrics.CPI,
		CPI1G:     rr[arch.Page1G].Metrics.CPI,
		M4K:       rr[arch.Page4K].Metrics,
		M2M:       rr[arch.Page2M].Metrics,
		M1G:       rr[arch.Page1G].Metrics,
	}
	baseline := math.Min(p.CPI2M, p.CPI1G)
	if baseline > 0 {
		p.RelOverhead = (p.CPI4K - baseline) / baseline
	}
	return p, nil
}

// SweepOverhead measures every ladder rung the preset selects.
func SweepOverhead(cfg *RunConfig, spec *workloads.Spec) ([]OverheadPoint, error) {
	var out []OverheadPoint
	for _, param := range spec.Sizes(cfg.Preset) {
		p, err := MeasureOverhead(cfg, spec, param)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Session memoizes per-workload sweeps so the experiments that share data
// (Figures 1-10, Tables IV-V) measure each workload once.
type Session struct {
	cfg    *RunConfig
	sweeps map[string][]OverheadPoint
}

// NewSession creates a measurement session with the given configuration.
func NewSession(cfg RunConfig) *Session {
	return &Session{cfg: &cfg, sweeps: make(map[string][]OverheadPoint)}
}

// Config returns the session's run configuration.
func (s *Session) Config() *RunConfig { return s.cfg }

// Sweep returns the (memoized) overhead sweep of the named workload.
func (s *Session) Sweep(name string) ([]OverheadPoint, error) {
	if pts, ok := s.sweeps[name]; ok {
		return pts, nil
	}
	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	s.cfg.logf("sweeping %s (%s preset)", name, s.cfg.Preset)
	pts, err := SweepOverhead(s.cfg, spec)
	if err != nil {
		return nil, err
	}
	s.sweeps[name] = pts
	return pts, nil
}

// SweepAll sweeps every Table I workload and returns points grouped by
// workload name.
func (s *Session) SweepAll() (map[string][]OverheadPoint, error) {
	out := make(map[string][]OverheadPoint)
	for _, spec := range PaperWorkloads() {
		pts, err := s.Sweep(spec.Name())
		if err != nil {
			return nil, err
		}
		out[spec.Name()] = pts
	}
	return out, nil
}
