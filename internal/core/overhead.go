package core

import (
	"math"
	"sort"
	"sync"

	"atscale/internal/arch"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

// OverheadPoint is one input size of one workload, measured under all
// three page-size policies and reduced per the paper's §III methodology.
type OverheadPoint struct {
	// Workload is the program-generator name.
	Workload string
	// Param is the input-size parameter.
	Param uint64
	// Footprint is the memory footprint (identical across policies; the
	// paper indexes by the 4 KB configuration's footprint).
	Footprint uint64

	// CPI4K, CPI2M, CPI1G are the per-policy cycles per instruction.
	// The workloads retire identical instruction streams under every
	// policy, so CPI ratios equal runtime ratios.
	CPI4K, CPI2M, CPI1G float64

	// RelOverhead is (t_4K - baseline) / baseline with
	// baseline = min(t_2MB, t_1GB) — the paper's relative AT overhead.
	RelOverhead float64

	// M4K, M2M, M1G are the full derived metrics per policy.
	M4K, M2M, M1G perf.Metrics

	// C4K is the 4 KB policy's raw counter delta, kept so downstream
	// reports can attribute the overhead policy's cycles (the 2 MB/1 GB
	// baselines are summarized by their metrics alone).
	C4K perf.Counters
}

// Log10Footprint returns log10 of the footprint in bytes (the regression
// abscissa of Table IV).
func (p OverheadPoint) Log10Footprint() float64 { return math.Log10(float64(p.Footprint)) }

// policies is the fixed page-size order of the §III methodology. The
// values double as indices into per-point result arrays.
var policies = [...]arch.PageSize{arch.Page4K, arch.Page2M, arch.Page1G}

// reduceOverhead folds one size's three per-policy runs into a point.
func reduceOverhead(rr [3]RunResult) OverheadPoint {
	p := OverheadPoint{
		Workload:  rr[arch.Page4K].Workload,
		Param:     rr[arch.Page4K].Param,
		Footprint: rr[arch.Page4K].Footprint,
		CPI4K:     rr[arch.Page4K].Metrics.CPI,
		CPI2M:     rr[arch.Page2M].Metrics.CPI,
		CPI1G:     rr[arch.Page1G].Metrics.CPI,
		M4K:       rr[arch.Page4K].Metrics,
		M2M:       rr[arch.Page2M].Metrics,
		M1G:       rr[arch.Page1G].Metrics,
		C4K:       rr[arch.Page4K].Counters,
	}
	baseline := math.Min(p.CPI2M, p.CPI1G)
	if baseline > 0 {
		p.RelOverhead = (p.CPI4K - baseline) / baseline
	}
	return p
}

// MeasureOverhead runs one (workload, size) under 4 KB, 2 MB and 1 GB
// policies — concurrently when the config allows — and reduces to an
// OverheadPoint.
func MeasureOverhead(cfg *RunConfig, spec *workloads.Spec, param uint64) (OverheadPoint, error) {
	var rr [3]RunResult
	err := forEachUnit(cfg, len(policies), func(i int) error {
		r, err := Run(cfg, spec, param, policies[i])
		if err != nil {
			return err
		}
		rr[policies[i]] = r
		return nil
	})
	if err != nil {
		return OverheadPoint{}, err
	}
	return reduceOverhead(rr), nil
}

// SweepOverhead measures every ladder rung the preset selects. All
// (rung, page size) units of the sweep are scheduled onto the worker pool
// together; points come back in ladder order regardless of completion
// order, so parallel output is identical to serial output.
func SweepOverhead(cfg *RunConfig, spec *workloads.Spec) ([]OverheadPoint, error) {
	params := spec.Sizes(cfg.Preset)
	results := make([][3]RunResult, len(params))
	err := forEachUnit(cfg, len(params)*len(policies), func(u int) error {
		ps := policies[u%len(policies)]
		r, err := Run(cfg, spec, params[u/len(policies)], ps)
		if err != nil {
			return err
		}
		results[u/len(policies)][ps] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]OverheadPoint, len(params))
	for i := range params {
		out[i] = reduceOverhead(results[i])
	}
	return out, nil
}

// Session memoizes per-workload sweeps so the experiments that share data
// (Figures 1-10, Tables IV-V) measure each workload once. A Session is
// safe for concurrent use: overlapping experiments that need the same
// workload coalesce onto a single in-flight sweep (duplicates wait for
// and share its result), and all of a session's work runs on one bounded
// worker pool.
type Session struct {
	cfg *RunConfig
	mu  sync.Mutex
	//atlint:guardedby mu
	sweeps map[string]*sweepCall
}

// sweepCall is one memoized (possibly in-flight) sweep.
type sweepCall struct {
	done chan struct{} // closed when pts/err are final
	pts  []OverheadPoint
	err  error
}

// NewSession creates a measurement session with the given configuration.
// The config is copied; the session's copy must not be mutated afterwards
// (concurrent sweeps read it without locks). Configure Parallelism before
// calling NewSession — it sizes the session's worker pool.
func NewSession(cfg RunConfig) *Session {
	if cfg.pool == nil {
		cfg.pool = make(limiter, cfg.parallelism())
	}
	if cfg.machines == nil {
		cfg.machines = newMachinePool(cfg.parallelism())
	}
	return &Session{cfg: &cfg, sweeps: make(map[string]*sweepCall)}
}

// Config returns a copy of the session's run configuration. Experiments
// that need a variant (different seed, promotion on, hashed page tables)
// mutate the copy before its first use; the copy shares the session's
// worker pool, so variant runs count against the same parallelism bound.
func (s *Session) Config() RunConfig { return *s.cfg }

// Sweep returns the (memoized) overhead sweep of the named workload. If
// another goroutine is already measuring the same workload, Sweep waits
// for that measurement and shares its result instead of repeating it.
func (s *Session) Sweep(name string) ([]OverheadPoint, error) {
	s.mu.Lock()
	if c, ok := s.sweeps[name]; ok {
		s.mu.Unlock()
		<-c.done
		return c.pts, c.err
	}
	c := &sweepCall{done: make(chan struct{})}
	s.sweeps[name] = c
	s.mu.Unlock()
	defer close(c.done)

	spec, err := workloads.ByName(name)
	if err != nil {
		c.err = err
		return nil, err
	}
	s.cfg.logf("sweeping %s (%s preset)", name, s.cfg.Preset)
	c.pts, c.err = SweepOverhead(s.cfg, spec)
	return c.pts, c.err
}

// SweepAll sweeps every Table I workload and returns points grouped by
// workload name. With a parallel config the sweeps are dispatched
// together so the pool stays busy across workload boundaries; the result
// (and the error returned, taken in workload order) is the same either
// way.
func (s *Session) SweepAll() (map[string][]OverheadPoint, error) {
	specs := PaperWorkloads()
	out := make(map[string][]OverheadPoint, len(specs))
	if s.cfg.parallelism() == 1 {
		for _, spec := range specs {
			pts, err := s.Sweep(spec.Name())
			if err != nil {
				return nil, err
			}
			out[spec.Name()] = pts
		}
		return out, nil
	}
	pts := make([][]OverheadPoint, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	wg.Add(len(specs))
	for i, spec := range specs {
		go func(i int, name string) {
			defer wg.Done()
			pts[i], errs[i] = s.Sweep(name)
		}(i, spec.Name())
	}
	wg.Wait()
	for i, spec := range specs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[spec.Name()] = pts[i]
	}
	return out, nil
}

// sortedSweepNames returns a SweepAll result's workload names in sorted
// order. Every consumer that flattens or renders sweep results iterates
// this slice: position-sensitive downstream math (bootstrap resampling
// in Table V) and rendered row order must not inherit map iteration
// order.
func sortedSweepNames(all map[string][]OverheadPoint) []string {
	var names []string
	for n := range all {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
