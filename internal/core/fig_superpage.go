package core

import (
	"atscale/internal/arch"
	"atscale/internal/perf"
)

// This file drives Figure 10: the 2 MB superpage study (§V-E) — key AT
// metrics for bc-urand under 2 MB pages with the 4 KB configuration
// alongside for comparison.

// SuperpageRow compares one footprint's 4 KB and 2 MB behaviour.
type SuperpageRow struct {
	Footprint uint64

	WCPI4K, WCPI2M float64
	// MissesPerKiloAccess is the TLB-walk rate per 1000 accesses.
	MissesPerKiloAccess4K, MissesPerKiloAccess2M float64
	// AvgWalkCycles is the mean page-walk latency.
	AvgWalkCycles4K, AvgWalkCycles2M float64
	// NonRetired2M is the wrong-path + aborted walk fraction with 2 MB
	// pages (the paper's Figure 10 walk-outcome panel).
	NonRetired2M float64
	// NonRetired4K is the 4 KB counterpart (Figure 7's data point).
	NonRetired4K float64
	// Outcomes2M is the raw 2 MB outcome distribution.
	Outcomes2M perf.WalkOutcomes
}

// SuperpageResult is Figure 10's dataset.
type SuperpageResult struct {
	Workload string
	Rows     []SuperpageRow
}

// Fig10 measures bc-urand's key AT metrics with 2 MB superpages across
// the footprint ladder.
func Fig10(s *Session) (*SuperpageResult, error) {
	return SuperpageStudy(s, "bc-urand")
}

// SuperpageStudy computes the Figure 10 panels for any workload.
func SuperpageStudy(s *Session, workload string) (*SuperpageResult, error) {
	pts, err := s.Sweep(workload)
	if err != nil {
		return nil, err
	}
	r := &SuperpageResult{Workload: workload}
	for _, p := range pts {
		_, wp4, ab4 := p.M4K.Outcomes.Fractions()
		_, wp2, ab2 := p.M2M.Outcomes.Fractions()
		r.Rows = append(r.Rows, SuperpageRow{
			Footprint:             p.Footprint,
			WCPI4K:                p.M4K.WCPI,
			WCPI2M:                p.M2M.WCPI,
			MissesPerKiloAccess4K: p.M4K.TLBMissesPerKiloAccess,
			MissesPerKiloAccess2M: p.M2M.TLBMissesPerKiloAccess,
			AvgWalkCycles4K:       p.M4K.AvgWalkCycles,
			AvgWalkCycles2M:       p.M2M.AvgWalkCycles,
			NonRetired4K:          wp4 + ab4,
			NonRetired2M:          wp2 + ab2,
			Outcomes2M:            p.M2M.Outcomes,
		})
	}
	return r, nil
}

// Tables exposes the 4 KB / 2 MB comparison per footprint.
func (r *SuperpageResult) Tables() []*Table {
	t := NewTable("Fig 10: key AT metrics for "+r.Workload+" with 2MB pages (4KB alongside)",
		"footprint", "WCPI 4K", "WCPI 2M", "misses/kacc 4K", "misses/kacc 2M",
		"walk lat 4K", "walk lat 2M", "non-retired 4K", "non-retired 2M")
	for _, row := range r.Rows {
		t.Row(arch.FormatBytes(row.Footprint),
			f(row.WCPI4K, 4), f(row.WCPI2M, 4),
			f(row.MissesPerKiloAccess4K, 2), f(row.MissesPerKiloAccess2M, 2),
			f(row.AvgWalkCycles4K, 1), f(row.AvgWalkCycles2M, 1),
			pct(row.NonRetired4K), pct(row.NonRetired2M))
	}
	return []*Table{t}
}

// Render emits the superpage comparison table.
func (r *SuperpageResult) Render() string { return RenderTables(r.Tables(), "") }
