package core

import (
	"fmt"
	"sort"
)

// Renderer is what every experiment result implements.
type Renderer interface {
	Render() string
	// Tables exposes the result's data tables (CSV export, plotting).
	Tables() []*Table
}

// RenderTables joins tables into the standard text rendering.
func RenderTables(ts []*Table, footer string) string {
	var b []byte
	for i, t := range ts {
		if i > 0 {
			b = append(b, '\n')
		}
		b = append(b, t.String()...)
	}
	if footer != "" {
		b = append(b, footer...)
	}
	return string(b)
}

// CSV renders a result's tables as CSV blocks separated by blank lines.
func CSV(r Renderer) string {
	var b []byte
	for i, t := range r.Tables() {
		if i > 0 {
			b = append(b, '\n')
		}
		b = append(b, t.CSV()...)
	}
	return string(b)
}

// Experiment is a named, runnable reproduction of one paper table/figure.
type Experiment struct {
	// ID is the CLI name ("fig1", "table5", ...).
	ID string
	// Caption summarizes what the paper's artifact shows.
	Caption string
	// Run executes the experiment within a session.
	Run func(*Session) (Renderer, error)
}

// wrap adapts a typed experiment function to the registry signature.
func wrap[T Renderer](fn func(*Session) (T, error)) func(*Session) (Renderer, error) {
	return func(s *Session) (Renderer, error) {
		r, err := fn(s)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// Experiments returns the full reproduction index: one entry per table
// and figure of the paper's evaluation.
func Experiments() []Experiment {
	return []Experiment{
		{"tables", "Tables I-III: workload, generator and system inventories", wrap(Tables)},
		{"fig1", "Relative AT overhead vs memory footprint, all workloads", wrap(Fig1)},
		{"fig2", "cc-urand overhead vs log10 footprint with linear fit", wrap(Fig2)},
		{"fig3", "Exception workloads with weak/nonlinear scaling", wrap(Fig3)},
		{"table4", "Per-workload regression overhead = b0 + b1*log10(M)", wrap(Table4)},
		{"table5", "Correlation of five AT-pressure metrics with overhead", wrap(Table5)},
		{"fig4", "Overhead vs WCPI scatter across workloads", wrap(Fig4)},
		{"fig5", "Overhead vs WCPI within bc-urand", wrap(Fig5)},
		{"fig6", "Equation 1 component breakdown for four workloads", wrap(Fig6)},
		{"fig7", "Walk outcome distribution vs footprint", wrap(Fig7)},
		{"table6", "Walk outcome formulae evaluated on live counters", wrap(Table6)},
		{"fig8", "PTE access location distribution for pr-kron", wrap(Fig8)},
		{"fig9", "Wrong-path walk fraction vs machine clears (bc-kron)", wrap(Fig9)},
		{"fig10", "2MB superpage study for bc-urand", wrap(Fig10)},
		{"promo", "Extension: WCPI-guided hugepage promotion (paper §VI proposal)", wrap(PromoExperiment)},
		{"hashedpt", "Extension: hashed vs radix page tables (paper §VI proposal)", wrap(HashedPTExperiment)},
		{"xsweep", "Extension: synthetic streams swept to tens-of-GB virtual footprints", wrap(XSweep)},
		{"stability", "Extension: metric dispersion across simulation seeds", wrap(StabilityExperiment)},
		{"virt", "Extension: nested paging — native-vs-nested sweep, page-size matrix, multi-tenant EPT sharing", wrap(VirtExperiment)},
		{"wcpi", "Headline WCPI ladder for bc-urand (shares fig5's sweep; pairs with -timeline)", wrap(WCPIExperiment)},
		{"refute", "Adversarial counter-identity sweep: perturb page sizes, virt, walker, promotion, sampling, tenants and hunt invariant breakage", wrap(RefuteExperiment)},
		{"schemes", "Extension: translation-scheme matrix — radix vs Victima vs Mitosis vs die-stacked DRAM cache, identity-audited", wrap(SchemesExperiment)},
	}
}

// ExperimentByID finds an experiment by CLI name.
func ExperimentByID(id string) (Experiment, error) {
	var ids []string
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (have %v)", id, ids)
}
