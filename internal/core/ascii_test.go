package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBandBarWidths(t *testing.T) {
	bar := BandBar([]float64{0.5, 0.3, 0.2}, 10)
	if len(bar) != 10 {
		t.Fatalf("bar width %d, want 10", len(bar))
	}
	if bar != "#####xxx--" {
		t.Errorf("bar = %q", bar)
	}
}

func TestBandBarNeverOverflows(t *testing.T) {
	check := func(a, b, c float64, w uint8) bool {
		width := int(w%60) + 1
		clamp := func(x float64) float64 {
			if x != x || x < 0 {
				return 0
			}
			if x > 1 {
				return 1
			}
			return x
		}
		bar := BandBar([]float64{clamp(a), clamp(b), clamp(c)}, width)
		return len(bar) == width
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestBandBarEmpty(t *testing.T) {
	if bar := BandBar(nil, 8); bar != strings.Repeat(" ", 8) {
		t.Errorf("empty bar = %q", bar)
	}
}

func TestBandChartLayout(t *testing.T) {
	out := BandChart("title", []string{"a", "b"}, []string{"row1", "longer-row"},
		[][]float64{{0.9, 0.1}, {0.2, 0.8}}, 20)
	if !strings.Contains(out, "title") || !strings.Contains(out, "legend: #=a  x=b") {
		t.Errorf("chart missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
	// Bars must align: both rows' '|' at the same column.
	if strings.Index(lines[1], "|") != strings.Index(lines[2], "|") {
		t.Errorf("bars misaligned:\n%s", out)
	}
}
