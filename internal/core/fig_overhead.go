package core

import (
	"sort"

	"atscale/internal/arch"
	"atscale/internal/stats"
)

// This file drives the footprint-scaling experiments: Figure 1 (overhead
// vs footprint, all workloads), Figure 2 (cc-urand log-linear fit),
// Figure 3 (the four exception workloads) and Table IV (per-workload
// regressions of overhead against log10 footprint).

// exceptionWorkloads are the four workloads §V-A singles out for weak or
// nonlinear log-footprint scaling.
var exceptionWorkloads = []string{"mcf-rand", "memcached-uniform", "streamcluster-rand", "tc-kron"}

// OverheadScaling is the result of Figures 1-3: overhead sweeps grouped
// by workload.
type OverheadScaling struct {
	// Title distinguishes fig1 (all) from fig3 (exceptions).
	Title string
	// ByWorkload holds sweeps keyed by workload, Workloads the key order.
	ByWorkload map[string][]OverheadPoint
	Workloads  []string
}

// Fig1 measures relative AT overhead against footprint for every Table I
// workload.
func Fig1(s *Session) (*OverheadScaling, error) {
	all, err := s.SweepAll()
	if err != nil {
		return nil, err
	}
	return newScaling("Fig 1: relative AT overhead vs memory footprint", all), nil
}

// Fig3 is the Figure 3 subset: the exception workloads.
func Fig3(s *Session) (*OverheadScaling, error) {
	sub := make(map[string][]OverheadPoint)
	for _, name := range exceptionWorkloads {
		pts, err := s.Sweep(name)
		if err != nil {
			return nil, err
		}
		sub[name] = pts
	}
	return newScaling("Fig 3: exception workloads (weak/nonlinear scaling)", sub), nil
}

func newScaling(title string, by map[string][]OverheadPoint) *OverheadScaling {
	r := &OverheadScaling{Title: title, ByWorkload: by}
	for name := range by {
		r.Workloads = append(r.Workloads, name)
	}
	sort.Strings(r.Workloads)
	return r
}

// Tables exposes one row per (workload, size).
func (r *OverheadScaling) Tables() []*Table {
	t := NewTable(r.Title, "workload", "footprint", "log10(M)", "rel AT overhead", "CPI 4K", "CPI 2M", "CPI 1G")
	for _, name := range r.Workloads {
		for _, p := range r.ByWorkload[name] {
			t.Row(name, arch.FormatBytes(p.Footprint), f(p.Log10Footprint(), 2),
				pct(p.RelOverhead), f(p.CPI4K, 3), f(p.CPI2M, 3), f(p.CPI1G, 3))
		}
	}
	return []*Table{t}
}

// Render emits one row per (workload, size).
func (r *OverheadScaling) Render() string { return RenderTables(r.Tables(), "") }

// LogLinearFit is one workload's Figure 2 / Table IV regression:
// relative overhead = Const + Slope*log10(footprint).
type LogLinearFit struct {
	Workload     string
	Const, Slope float64
	AdjR2        float64
	N            int
	// Err is non-empty when the fit was degenerate.
	Err string
}

// FitLogLinear regresses a sweep's overhead on log10 footprint.
func FitLogLinear(name string, pts []OverheadPoint) LogLinearFit {
	var x, y []float64
	for _, p := range pts {
		x = append(x, p.Log10Footprint())
		y = append(y, p.RelOverhead)
	}
	c, m, adj, err := stats.LinearFit(x, y)
	if err != nil {
		return LogLinearFit{Workload: name, N: len(pts), Err: err.Error()}
	}
	return LogLinearFit{Workload: name, Const: c, Slope: m, AdjR2: adj, N: len(pts)}
}

// Fig2Result is the cc-urand deep dive of Figure 2.
type Fig2Result struct {
	Points []OverheadPoint
	Fit    LogLinearFit
}

// Fig2 measures cc-urand and fits the log-linear model.
func Fig2(s *Session) (*Fig2Result, error) {
	pts, err := s.Sweep("cc-urand")
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Points: pts, Fit: FitLogLinear("cc-urand", pts)}, nil
}

// Tables exposes the points plus per-point fitted values.
func (r *Fig2Result) Tables() []*Table {
	t := NewTable("Fig 2: cc-urand relative AT overhead vs log10 footprint",
		"footprint", "log10(M)", "rel AT overhead", "fit value")
	for _, p := range r.Points {
		fit := r.Fit.Const + r.Fit.Slope*p.Log10Footprint()
		t.Row(arch.FormatBytes(p.Footprint), f(p.Log10Footprint(), 2), pct(p.RelOverhead), pct(fit))
	}
	return []*Table{t}
}

// Render emits the points plus the fitted line's parameters.
func (r *Fig2Result) Render() string {
	footer := "fit: overhead = " + f(r.Fit.Const, 3) + " + " + f(r.Fit.Slope, 3) +
		" * log10(M)   adjR2 = " + f(r.Fit.AdjR2, 3) + "\n"
	return RenderTables(r.Tables(), footer)
}

// Table4Result holds the per-workload regressions of Table IV.
type Table4Result struct {
	Fits []LogLinearFit
}

// Table4 fits the log-linear overhead model for every workload.
func Table4(s *Session) (*Table4Result, error) {
	all, err := s.SweepAll()
	if err != nil {
		return nil, err
	}
	names := sortedSweepNames(all)
	r := &Table4Result{}
	for _, n := range names {
		r.Fits = append(r.Fits, FitLogLinear(n, all[n]))
	}
	return r, nil
}

// MeanSlopeStrongFits averages the log10(M) coefficient over fits with
// adjusted R² above the threshold — the paper reports 0.13 across fits
// with adjR² > 0.9.
func (r *Table4Result) MeanSlopeStrongFits(minAdjR2 float64) (float64, int) {
	var sum float64
	var n int
	for _, fit := range r.Fits {
		if fit.Err == "" && fit.AdjR2 > minAdjR2 {
			sum += fit.Slope
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Tables exposes the Table IV layout: const, log10(M) slope, adjusted R².
func (r *Table4Result) Tables() []*Table {
	t := NewTable("Table IV: overhead = b0 + b1*log10(M) regression per workload",
		"workload", "const", "log10(M)", "adj R2", "n")
	for _, fit := range r.Fits {
		if fit.Err != "" {
			t.Row(fit.Workload, "-", "-", fit.Err, f(float64(fit.N), 0))
			continue
		}
		t.Row(fit.Workload, f(fit.Const, 3), f(fit.Slope, 3), f(fit.AdjR2, 3), f(float64(fit.N), 0))
	}
	return []*Table{t}
}

// Render emits Table IV plus the strong-fit slope summary.
func (r *Table4Result) Render() string {
	footer := ""
	if mean, n := r.MeanSlopeStrongFits(0.9); n > 0 {
		footer = "mean log10(M) coefficient over " + f(float64(n), 0) +
			" strong fits (adjR2>0.9): " + f(mean, 3) + "\n"
	}
	return RenderTables(r.Tables(), footer)
}
