package core

import (
	"reflect"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/perf"
	"atscale/internal/workloads"
	_ "atscale/internal/workloads/all"
)

// TestRunObservabilityGolden is the zero-perturbation check: arming
// sampling and interval streaming must not change a single counter value
// versus the plain run.
func TestRunObservabilityGolden(t *testing.T) {
	spec, err := workloads.ByName("bfs-urand")
	if err != nil {
		t.Fatal(err)
	}
	run := func(observe bool) RunResult {
		cfg := DefaultRunConfig()
		cfg.Budget = 300_000
		if observe {
			cfg.SamplePeriod = 2048
			cfg.Interval = 50_000
		}
		r, err := Run(&cfg, spec, spec.Ladder[0], arch.Page4K)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := run(false)
	observed := run(true)
	if !reflect.DeepEqual(plain.Counters, observed.Counters) {
		t.Errorf("observability changed counters:\nplain:\n%s\nobserved:\n%s",
			plain.Counters.FormatNonZero(), observed.Counters.FormatNonZero())
	}
	if len(observed.Timeline) == 0 || len(observed.Samples) == 0 {
		t.Fatalf("observability produced nothing: %d rows, %d samples",
			len(observed.Timeline), len(observed.Samples))
	}
	if len(plain.Timeline) != 0 || len(plain.Samples) != 0 {
		t.Error("plain run produced observability output")
	}
}

// TestRunSamplingReconstructsWalkCycles checks the PEBS estimator: total
// sampled walk-cycle weight (plus weight lost to ring overflow) matches
// the aggregate dtlb_*_misses.walk_duration counters to within one
// period per armed event.
func TestRunSamplingReconstructsWalkCycles(t *testing.T) {
	spec, err := workloads.ByName("bfs-urand")
	if err != nil {
		t.Fatal(err)
	}
	const period = 4096
	cfg := DefaultRunConfig()
	cfg.Budget = 500_000
	cfg.SamplePeriod = period
	r, err := Run(&cfg, spec, spec.Ladder[0], arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	report := perf.NewReport(r.Samples, r.SampleDropped, r.SampleDroppedWeight, 10)
	agg := r.Counters.Get(perf.DTLBLoadWalkDuration) + r.Counters.Get(perf.DTLBStoreWalkDuration)
	est := report.EstWalkCycles + r.SampleDroppedWeight
	diff := int64(agg) - int64(est)
	if diff < 0 {
		diff = -diff
	}
	if diff >= 2*period {
		t.Errorf("sampled walk cycles %d (+%d dropped) vs aggregate %d: off by %d >= 2 periods",
			report.EstWalkCycles, r.SampleDroppedWeight, agg, diff)
	}
	// Hot-page attribution must account for every sampled cycle.
	full := perf.NewReport(r.Samples, r.SampleDropped, r.SampleDroppedWeight, 0)
	var pageSum uint64
	for _, p := range full.HotPages {
		pageSum += p.Cycles
	}
	if pageSum != full.EstWalkCycles {
		t.Errorf("per-page attribution %d != sampled total %d", pageSum, full.EstWalkCycles)
	}
}

// TestRunTimelineTilesRegion checks interval rows tile the measured
// region exactly: contiguous windows, deltas summing to the run delta.
func TestRunTimelineTilesRegion(t *testing.T) {
	spec, err := workloads.ByName("gups-rand")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig()
	cfg.Budget = 200_000
	cfg.Interval = 40_000
	r, err := Run(&cfg, spec, spec.Ladder[0], arch.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) < 2 {
		t.Fatalf("only %d timeline rows", len(r.Timeline))
	}
	var sum perf.Counters
	prevEnd := r.Timeline[0].InstStart
	for _, row := range r.Timeline {
		if row.InstStart != prevEnd {
			t.Errorf("row %d not contiguous: starts %d, previous ended %d",
				row.Index, row.InstStart, prevEnd)
		}
		prevEnd = row.InstEnd
		for _, e := range perf.Events() {
			sum.Add(e, row.Delta.Get(e))
		}
	}
	if !reflect.DeepEqual(sum, r.Counters) {
		t.Errorf("timeline deltas do not sum to the run delta:\nsum:\n%s\nrun:\n%s",
			sum.FormatNonZero(), r.Counters.FormatNonZero())
	}
}
