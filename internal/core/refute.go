package core

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/refute"
	"atscale/internal/workloads"
)

// This file drives the adversarial refutation experiment: instead of
// measuring the paper's artifacts, it perturbs the configuration and
// workload dimensions that most plausibly break a counter identity —
// page sizes (every variant sweeps all three policies), nested paging
// with both EPT leaf sizes, the hashed page-table walker, WCPI-guided
// promotion, five-level paging, PEBS sampling into a deliberately tiny
// ring (forcing overflow, so the drop-accounting identities carry
// weight), and multi-tenant EPT sharing — and checks the full identity
// registry on every unit. The verdict is CounterPoint's question asked
// of our own simulator: which identities hold, which break, and under
// what conditions.

// refuteSweepWorkload climbs the same synthetic ladder as the virt
// experiment: footprint-controllable and cheap, so nine config variants
// stay affordable at every preset.
const refuteSweepWorkload = "uniform-synth"

// refuteSamplePeriod / refuteSampleRing configure the sampling variant:
// a short period into a tiny ring guarantees overflow, so the ring- and
// weight-accounting identities are exercised under drops, not just in
// the easy all-captured regime.
const (
	refuteSamplePeriod = 257
	refuteSampleRing   = 64
)

// refuteVariant is one adversarial configuration.
type refuteVariant struct {
	name    string
	mutate  func(*RunConfig)
	tenants int  // >0: multi-tenant consolidation unit instead of a ladder
	only4K  bool // ladder under 4KB only (hashed walker rejects superpage policies)
}

// refuteVariants enumerates the perturbation matrix.
func refuteVariants() []refuteVariant {
	return []refuteVariant{
		{name: "base"},
		{name: "hashed-pt", mutate: func(c *RunConfig) { c.System.PageTable = "hashed" }, only4K: true},
		{name: "promo", mutate: func(c *RunConfig) { c.EnablePromotion = true }},
		{name: "lvl5", mutate: func(c *RunConfig) { c.System.PagingLevels = 5 }},
		{name: "virt-ept4k", mutate: func(c *RunConfig) { c.System = sysWith(c.System, arch.Page4K) }},
		{name: "virt-ept2m", mutate: func(c *RunConfig) { c.System = sysWith(c.System, arch.Page2M) }},
		{name: "sampling", mutate: func(c *RunConfig) {
			c.SamplePeriod = refuteSamplePeriod
			c.SampleBuffer = refuteSampleRing
		}},
		{name: "virt-tenants2", tenants: 2},
		{name: "virt-tenants4", tenants: 4},
	}
}

// sysWith returns sys virtualized at the given EPT leaf size.
func sysWith(sys arch.SystemConfig, ept arch.PageSize) arch.SystemConfig {
	return virtualize(sys, ept)
}

// RefuteVariantRow is one adversarial variant's verdict.
type RefuteVariantRow struct {
	Variant     string
	Units       int
	Checked     int
	Skipped     int
	Violations  int
	MaxResidual float64
	WorstID     string
}

// RefuteResult is the experiment's dataset: the per-variant verdict
// rows plus the merged per-identity report.
type RefuteResult struct {
	Rows   []RefuteVariantRow
	Merged *refute.Report
}

// RefuteExperiment runs the perturbation matrix. Each variant gets its
// own checker (so breakage attributes to a variant) and a unit tag (so
// unit names stay campaign-unique across variants); the per-variant
// reports then merge into one identity-level verdict. When the session
// itself carries a checker (atscale -refute), every variant's outcomes
// are absorbed into it too, so the CLI's exit status covers the
// adversarial units as well.
func RefuteExperiment(s *Session) (*RefuteResult, error) {
	variants := refuteVariants()
	res := &RefuteResult{}
	reports := make([]*refute.Report, len(variants))
	sessionChecker := s.Config().Refute

	for vi := range variants {
		v := &variants[vi]
		// The campaign registry (base + topdown conservation laws), not
		// the bare default: the session checker these outcomes absorb
		// into runs the same registry, and Absorb panics on a length
		// mismatch by design.
		checker := NewCampaignChecker()
		cfg := s.Config()
		cfg.Refute = checker
		cfg.UnitTag = " @" + v.name
		if v.mutate != nil {
			v.mutate(&cfg)
		}
		switch {
		case v.tenants > 0:
			if _, err := runMultiTenant(&cfg, v.tenants); err != nil {
				return nil, fmt.Errorf("refute variant %s: %w", v.name, err)
			}
		case v.only4K:
			spec, err := workloads.ByName(refuteSweepWorkload)
			if err != nil {
				return nil, err
			}
			params := spec.Sizes(cfg.Preset)
			err = forEachUnit(&cfg, len(params), func(i int) error {
				_, err := Run(&cfg, spec, params[i], arch.Page4K)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("refute variant %s: %w", v.name, err)
			}
		default:
			spec, err := workloads.ByName(refuteSweepWorkload)
			if err != nil {
				return nil, err
			}
			if _, err := SweepOverhead(&cfg, spec); err != nil {
				return nil, fmt.Errorf("refute variant %s: %w", v.name, err)
			}
		}
		rep := checker.Report()
		reports[vi] = rep
		row := RefuteVariantRow{Variant: v.name, Units: rep.Units}
		for i := range rep.Identities {
			ir := &rep.Identities[i]
			row.Checked += ir.Checked
			row.Skipped += ir.Skipped
			row.Violations += ir.Violations
			if ir.MaxResidual > row.MaxResidual {
				row.MaxResidual, row.WorstID = ir.MaxResidual, ir.Name
			}
		}
		res.Rows = append(res.Rows, row)
		if sessionChecker != nil {
			sessionChecker.Absorb(checker)
		}
	}
	res.Merged = refute.MergeReports(reports...)
	return res, nil
}

// Tables renders the variant verdicts and the merged identity table.
func (r *RefuteResult) Tables() []*Table {
	t1 := NewTable("Refute: adversarial config sweep ("+refuteSweepWorkload+" ladder x 4KB/2MB/1GB per variant)",
		"variant", "units", "checked", "skipped", "violated", "max residual", "worst identity")
	for _, row := range r.Rows {
		worst := row.WorstID
		if worst == "" {
			worst = "-"
		}
		t1.Row(row.Variant, fmt.Sprint(row.Units), fmt.Sprint(row.Checked),
			fmt.Sprint(row.Skipped), fmt.Sprint(row.Violations),
			fmt.Sprintf("%.3g", row.MaxResidual), worst)
	}
	t2 := NewTable("Refute: identity verdicts over all variants",
		"identity", "scope", "verdict", "checked", "skipped", "violated", "max residual")
	if r.Merged != nil {
		for i := range r.Merged.Identities {
			ir := &r.Merged.Identities[i]
			verdict := "HOLDS"
			switch {
			case ir.Checked == 0:
				verdict = "skip"
			case !ir.Holds():
				verdict = "BREAKS"
			}
			t2.Row(ir.Name, ir.Scope, verdict, fmt.Sprint(ir.Checked),
				fmt.Sprint(ir.Skipped), fmt.Sprint(ir.Violations),
				fmt.Sprintf("%.3g", ir.MaxResidual))
		}
	}
	return []*Table{t1, t2}
}

// Render emits both tables plus any violation detail.
func (r *RefuteResult) Render() string {
	footer := ""
	if r.Merged != nil && r.Merged.TotalViolations > 0 {
		footer = "\n" + r.Merged.Render()
	}
	return RenderTables(r.Tables(), footer)
}
