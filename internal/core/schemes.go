package core

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/scheme"
	"atscale/internal/topdown"
	"atscale/internal/workloads"
)

// This file drives the translation-scheme comparison matrix: the paper's
// scaling methodology (WCPI vs footprint) applied across the pluggable
// backends of internal/scheme. Each proposal attacks a different term of
// the Equation 1 decomposition — Victima shrinks walker loads per walk
// by caching PTE blocks in SRAM, Mitosis removes the NUMA interconnect
// from the cycles-per-walker-load term, a die-stacked DRAM cache shrinks
// the DRAM component of the same term — so sweeping them over one
// footprint ladder shows which mechanisms bend the scaling curve and
// where. Every unit is additionally held to the merged refute registry
// (base identities plus every scheme's guarded identities), so the
// comparison is self-auditing: a backend that miscounts its own
// mechanism fails the experiment rather than mis-plotting it.

// schemeSweepWorkloads are the matrix's workload dimension: the
// footprint-controllable uniform stream and the translation-bound
// random-access kernel.
var schemeSweepWorkloads = []string{"uniform-synth", "gups-rand"}

// schemeSweepPages is the page-size dimension (1 GB adds little here:
// the schemes differentiate on walks, which 1 GB heaps mostly remove).
var schemeSweepPages = []arch.PageSize{arch.Page4K, arch.Page2M}

// schemeVariant is one column of the comparison matrix.
type schemeVariant struct {
	name   string // column label
	scheme string // arch.SystemConfig.Scheme
	nodes  int    // NUMA nodes (0 = UMA)
}

// schemeVariants enumerates the matrix columns: the UMA radix baseline,
// the no-replication NUMA baseline Mitosis is judged against, and the
// three proposals.
func schemeVariants() []schemeVariant {
	return []schemeVariant{
		{name: "radix", scheme: "radix"},
		{name: "radix-numa2", scheme: "radix", nodes: 2},
		{name: "victima", scheme: "victima"},
		{name: "mitosis", scheme: "mitosis", nodes: 2},
		{name: "dramcache", scheme: "dramcache"},
	}
}

// schemeUnit is one cell of the flattened sweep.
type schemeUnit struct {
	vi, wi, pi, si int
	spec           *workloads.Spec
	param          uint64
	ps             arch.PageSize
}

// SchemeRow is one (workload, footprint, page size) row of the WCPI
// matrix, one column per variant.
type SchemeRow struct {
	Workload  string
	Footprint uint64
	PageSize  arch.PageSize
	WCPI      []float64 // indexed like SchemesResult.Variants
}

// SchemeMechanics aggregates one variant's mechanism counters over a
// workload's whole ladder (all footprints, one page size).
type SchemeMechanics struct {
	Variant  string
	Workload string
	PageSize arch.PageSize

	LoadsPerWalk float64
	// BlockHitRate is Victima's PTE-block directory hit rate (NaN-free:
	// zero when the scheme never probes).
	BlockHitRate float64
	// ReplicaLocalFrac is the fraction of Mitosis walks served without
	// crossing the interconnect.
	ReplicaLocalFrac float64
	// DRAMCacheHitRate is the stacked die's tag hit rate over
	// SRAM-missing walker loads.
	DRAMCacheHitRate float64
	// Migrations counts the deterministic NUMA thread migrations.
	Migrations uint64
}

// SchemesResult is the comparison dataset.
type SchemesResult struct {
	Variants  []string
	Rows      []SchemeRow
	Mechanics []SchemeMechanics
	// Attribution holds one cycle-attribution tree per variant,
	// aggregated over the variant's whole sweep (indexed like
	// Variants). Deltas holds the signed comparison tree of each
	// non-baseline variant against Variants[0] (nil at index 0).
	Attribution []*topdown.Tree
	Deltas      []*topdown.Tree
	// Refute is the merged identity report over every unit (base
	// registry, topdown conservation laws, all scheme identities).
	Refute *refute.Report
}

// SchemesExperiment sweeps scheme x workload x footprint x page size on
// the session's machine pool and checks the merged identity registry on
// every unit. Identity violations fail the experiment: a scheme whose
// accounting cannot survive its own declared invariants has no business
// in the comparison.
func SchemesExperiment(s *Session) (*SchemesResult, error) {
	variants := schemeVariants()
	base := s.Config()

	// One checker per variant so breakage attributes to a backend; all
	// share the merged registry so reports merge into one verdict. The
	// registry is the campaign set (base identities plus the attribution
	// tree's conservation laws) plus every scheme's guarded identities,
	// so each variant's attribution tree is audited alongside its
	// mechanism accounting.
	merged := append(CampaignIdentities(), scheme.AllIdentities()...)
	checkers := make([]*refute.Checker, len(variants))
	cfgs := make([]*RunConfig, len(variants))
	for vi, v := range variants {
		cfg := s.Config()
		cfg.System.Scheme = v.scheme
		cfg.System.NUMA.Nodes = v.nodes
		checkers[vi] = refute.NewChecker(merged...)
		cfg.Refute = checkers[vi]
		cfgs[vi] = &cfg
	}

	// Flatten the matrix into slot-indexed units: the schedule (and so
	// the tables and the refute report) is identical serial or parallel.
	var units []schemeUnit
	for wi, wname := range schemeSweepWorkloads {
		spec, err := workloads.ByName(wname)
		if err != nil {
			return nil, err
		}
		for pi, param := range spec.Sizes(base.Preset) {
			for si, ps := range schemeSweepPages {
				for vi := range variants {
					units = append(units, schemeUnit{vi: vi, wi: wi, pi: pi, si: si,
						spec: spec, param: param, ps: ps})
				}
			}
		}
	}
	results := make([]RunResult, len(units))
	err := forEachUnit(&base, len(units), func(i int) error {
		u := &units[i]
		rr, err := Run(cfgs[u.vi], u.spec, u.param, u.ps)
		if err != nil {
			return fmt.Errorf("scheme variant %s: %w", variants[u.vi].name, err)
		}
		results[i] = rr
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &SchemesResult{}
	for _, v := range variants {
		res.Variants = append(res.Variants, v.name)
	}

	// WCPI matrix rows, in unit declaration order (variants fill the
	// columns of one row).
	rowIdx := map[[3]int]int{}
	for i := range units {
		u := &units[i]
		key := [3]int{u.wi, u.pi, u.si}
		ri, ok := rowIdx[key]
		if !ok {
			ri = len(res.Rows)
			rowIdx[key] = ri
			res.Rows = append(res.Rows, SchemeRow{
				Workload:  results[i].Workload,
				Footprint: results[i].Footprint,
				PageSize:  u.ps,
				WCPI:      make([]float64, len(variants)),
			})
		}
		res.Rows[ri].WCPI[u.vi] = results[i].Metrics.WCPI
	}

	// Mechanism aggregates: sum counters over each (variant, workload,
	// page size) ladder, then derive the rates.
	type aggKey struct{ vi, wi, si int }
	agg := map[aggKey]*perf.Counters{}
	var aggOrder []aggKey
	for i := range units {
		u := &units[i]
		k := aggKey{u.vi, u.wi, u.si}
		c, ok := agg[k]
		if !ok {
			c = &perf.Counters{}
			agg[k] = c
			aggOrder = append(aggOrder, k)
		}
		for _, e := range perf.Events() {
			c.Add(e, results[i].Counters.Get(e))
		}
	}
	for _, k := range aggOrder {
		c := agg[k]
		walks := c.Get(perf.DTLBLoadWalkCompleted) + c.Get(perf.DTLBStoreWalkCompleted)
		loads := c.Get(perf.WalkerLoadsL1) + c.Get(perf.WalkerLoadsL2) +
			c.Get(perf.WalkerLoadsL3) + c.Get(perf.WalkerLoadsMem)
		res.Mechanics = append(res.Mechanics, SchemeMechanics{
			Variant:          variants[k.vi].name,
			Workload:         schemeSweepWorkloads[k.wi],
			PageSize:         schemeSweepPages[k.si],
			LoadsPerWalk:     ratioOrZero(loads, walks),
			BlockHitRate:     ratioOrZero(c.Get(perf.SchemeBlockHits), c.Get(perf.SchemeBlockHits)+c.Get(perf.SchemeBlockMisses)),
			ReplicaLocalFrac: ratioOrZero(c.Get(perf.ReplicaLocalWalks), c.Get(perf.ReplicaLocalWalks)+c.Get(perf.ReplicaRemoteWalks)),
			DRAMCacheHitRate: ratioOrZero(c.Get(perf.DRAMCacheHits), c.Get(perf.DRAMCacheHits)+c.Get(perf.DRAMCacheMisses)),
			Migrations:       c.Get(perf.NUMAMigrations),
		})
	}

	// Per-variant attribution: sum each variant's counters over its
	// whole sweep and build the tree; the baseline's tree anchors the
	// signed deltas ("which subtree did this scheme move").
	variantAgg := make([]perf.Counters, len(variants))
	for i := range units {
		u := &units[i]
		for e := perf.Event(0); e < perf.NumEvents; e++ {
			variantAgg[u.vi].Add(e, results[i].Counters.Get(e))
		}
	}
	res.Attribution = make([]*topdown.Tree, len(variants))
	res.Deltas = make([]*topdown.Tree, len(variants))
	for vi := range variants {
		res.Attribution[vi] = topdown.FromCounters(variantAgg[vi])
		if vi > 0 {
			res.Deltas[vi] = topdown.Delta(res.Attribution[0], res.Attribution[vi])
		}
	}

	reports := make([]*refute.Report, len(checkers))
	violations := 0
	for vi, ch := range checkers {
		reports[vi] = ch.Report()
		for i := range reports[vi].Identities {
			violations += reports[vi].Identities[i].Violations
		}
	}
	res.Refute = refute.MergeReports(reports...)
	if violations > 0 {
		return nil, fmt.Errorf("core: schemes matrix broke %d identity check(s):\n%s",
			violations, res.Refute.Render())
	}
	return res, nil
}

// ratioOrZero is a/b with 0 (not NaN) for an empty denominator, so
// mechanism rates render cleanly for schemes that never engage one.
func ratioOrZero(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Tables renders the WCPI matrix and the mechanism aggregates.
func (r *SchemesResult) Tables() []*Table {
	cols := append([]string{"workload", "footprint", "pages"}, r.Variants...)
	t1 := NewTable("Schemes: WCPI by translation scheme (lower is better)", cols...)
	for _, row := range r.Rows {
		cells := []string{row.Workload, arch.FormatBytes(row.Footprint), row.PageSize.String()}
		for _, w := range row.WCPI {
			cells = append(cells, f(w, 4))
		}
		t1.Row(cells...)
	}
	t2 := NewTable("Schemes: mechanism engagement per (variant, workload) ladder",
		"variant", "workload", "pages", "loads/walk", "block-hit", "replica-local", "dc-hit", "migrations")
	for _, m := range r.Mechanics {
		t2.Row(m.Variant, m.Workload, m.PageSize.String(),
			f(m.LoadsPerWalk, 2), f(m.BlockHitRate, 3), f(m.ReplicaLocalFrac, 3),
			f(m.DRAMCacheHitRate, 3), fmt.Sprint(m.Migrations))
	}
	tables := []*Table{t1, t2}
	// Cycle attribution matrix: where each variant's cycles went, as
	// shares of the same-domain parent (so columns are comparable
	// across variants whose absolute cycle counts differ).
	attrRows := []struct{ label, path string }{
		{"translation (of cycles)", "cycles/translation"},
		{"compute (of cycles)", "cycles/compute"},
		{"guest walk cycles (of translation)", "cycles/translation/guest"},
		{"EPT walk cycles (of translation)", "cycles/translation/ept"},
		{"aborted (of walks)", "cycles/translation/tlb_misses/walks/aborted"},
		{"wrong-path (of completed)", "cycles/translation/tlb_misses/walks/completed/wrong_path"},
		{"DRAM PTE loads (of loads)", "cycles/translation/walker_loads/guest_loads/memory"},
	}
	ta := NewTable("Schemes: cycle attribution by variant (share of same-domain parent)",
		append([]string{"subtree"}, r.Variants...)...)
	if len(r.Attribution) != len(r.Variants) {
		attrRows = nil
	}
	for _, ar := range attrRows {
		cells := []string{ar.label}
		for vi := range r.Variants {
			n := r.Attribution[vi].Lookup(ar.path)
			if n == nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.1f%%", 100*n.Share))
		}
		ta.Row(cells...)
	}
	// Signed deltas against the baseline column: the A/B evidence for
	// "which subtree did this scheme move".
	deltaRows := []struct{ label, path string }{
		{"cycles", "cycles"},
		{"translation cycles", "cycles/translation"},
		{"walks initiated", "cycles/translation/tlb_misses/walks"},
		{"walker loads", "cycles/translation/walker_loads"},
		{"DRAM PTE loads", "cycles/translation/walker_loads/guest_loads/memory"},
		{"scheme probes", "cycles/translation/scheme"},
	}
	td := NewTable(fmt.Sprintf("Schemes: signed attribution delta vs %s (value change, relative change)", r.Variants[0]),
		append([]string{"subtree"}, r.Variants[1:]...)...)
	if len(r.Deltas) != len(r.Variants) {
		deltaRows = nil
	}
	for _, dr := range deltaRows {
		cells := []string{dr.label}
		for vi := 1; vi < len(r.Variants); vi++ {
			n := r.Deltas[vi].Lookup(dr.path)
			if n == nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, fmt.Sprintf("%+.0f (%+.1f%%)", n.Value, 100*n.Share))
		}
		td.Row(cells...)
	}
	t3 := NewTable("Schemes: identity verdicts over the whole matrix",
		"identity", "scope", "verdict", "checked", "skipped", "violated")
	if r.Refute != nil {
		for i := range r.Refute.Identities {
			ir := &r.Refute.Identities[i]
			verdict := "HOLDS"
			switch {
			case ir.Checked == 0:
				verdict = "skip"
			case !ir.Holds():
				verdict = "BREAKS"
			}
			t3.Row(ir.Name, ir.Scope, verdict, fmt.Sprint(ir.Checked),
				fmt.Sprint(ir.Skipped), fmt.Sprint(ir.Violations))
		}
	}
	if len(r.Attribution) == len(r.Variants) {
		tables = append(tables, ta, td)
	}
	return append(tables, t3)
}

// Render emits the matrix tables.
func (r *SchemesResult) Render() string { return RenderTables(r.Tables(), "") }
