package core

import (
	"fmt"
	"math"
	"math/rand"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/workloads"
)

// This file drives the virtualization experiment: the paper's scaling
// methodology re-run under nested paging. Three questions, one table
// each:
//
//  1. How does the nested-paging translation tax scale with footprint?
//     The same synthetic ladder runs native and virtualized; the
//     WCPI ratio per rung is the virtualization multiplier, and the
//     guest/EPT walk-cycle split attributes it per dimension.
//  2. How do the two page-size knobs interact? A guest-pages x EPT-pages
//     matrix at one rung, since the dimensions' leaves compound
//     (loads/walk runs from 24 down to 14).
//  3. Does EPT sharing help consolidation? N guest address spaces
//     round-robin on one machine over a shared EPT: nTLB and EPT-PSC
//     state survives the guest context switches that kill every
//     guest-dimension structure.

// virtSweepWorkload is the ladder the native-vs-nested sweep climbs.
const virtSweepWorkload = "uniform-synth"

// VirtSweepRow is one ladder rung measured native and nested.
type VirtSweepRow struct {
	Param     uint64
	Footprint uint64

	WCPINative, WCPINested float64
	Ratio                  float64 // nested / native
	EPTShare               float64 // EPT walk cycles / nested walk cycles
	NTLBHitRate            float64
	LoadsPerWalkNative     float64
	LoadsPerWalkNested     float64
}

// VirtMatrixRow is one guest x EPT page-size combination.
type VirtMatrixRow struct {
	GuestPages, EPTPages arch.PageSize
	Footprint            uint64
	WCPI                 float64
	LoadsPerWalk         float64
	EPTShare             float64
	HostMapped           uint64
}

// VirtTenantRow is one consolidation level.
type VirtTenantRow struct {
	Tenants     int
	WCPI        float64
	NTLBHitRate float64
	EPTShare    float64
	Switches    uint64
}

// VirtResult is the virtualization experiment's dataset.
type VirtResult struct {
	Sweep   []VirtSweepRow
	Matrix  []VirtMatrixRow
	Tenants []VirtTenantRow
}

// virtualize returns a copy of sys with nested paging enabled at the
// given EPT leaf size (guest pages ride on the run's policy argument).
func virtualize(sys arch.SystemConfig, ept arch.PageSize) arch.SystemConfig {
	sys.Virt = arch.DefaultVirt()
	sys.Virt.EPTPages = ept
	return sys
}

// VirtExperiment runs all three virtualization studies on the session's
// worker pool. Every unit is an independent seed-deterministic machine,
// so parallel campaigns render byte-identical to serial ones.
func VirtExperiment(s *Session) (*VirtResult, error) {
	cfg := s.Config()
	spec, err := workloads.ByName(virtSweepWorkload)
	if err != nil {
		return nil, err
	}
	params := spec.Sizes(cfg.Preset)
	matrix := []struct{ guest, ept arch.PageSize }{
		{arch.Page4K, arch.Page4K},
		{arch.Page4K, arch.Page2M},
		{arch.Page4K, arch.Page1G},
		{arch.Page2M, arch.Page4K},
		{arch.Page2M, arch.Page2M},
		{arch.Page2M, arch.Page1G},
	}
	tenantCounts := []int{1, 2, 4}

	// Unit layout: [2*len(params)] ladder (native, nested interleaved),
	// then the matrix runs, then the tenant runs.
	nSweep := 2 * len(params)
	nUnits := nSweep + len(matrix) + len(tenantCounts)
	sweepRes := make([]RunResult, nSweep)
	matrixRes := make([]VirtMatrixRow, len(matrix))
	tenantRes := make([]VirtTenantRow, len(tenantCounts))

	// The matrix and tenant studies measure one mid-ladder rung: large
	// enough to pressure the TLBs, small enough to keep 6 extra machines
	// cheap.
	midParam := params[(len(params)-1)/2]

	err = forEachUnit(&cfg, nUnits, func(i int) error {
		switch {
		case i < nSweep:
			u := cfg
			ps := arch.Page4K
			if i%2 == 1 {
				u.System = virtualize(u.System, arch.Page4K)
			}
			r, err := Run(&u, spec, params[i/2], ps)
			if err != nil {
				return err
			}
			sweepRes[i] = r
			return nil
		case i < nSweep+len(matrix):
			j := i - nSweep
			u := cfg
			u.System = virtualize(u.System, matrix[j].ept)
			r, err := Run(&u, spec, midParam, matrix[j].guest)
			if err != nil {
				return err
			}
			matrixRes[j] = VirtMatrixRow{
				GuestPages:   matrix[j].guest,
				EPTPages:     matrix[j].ept,
				Footprint:    r.Footprint,
				WCPI:         r.Metrics.WCPI,
				LoadsPerWalk: r.Metrics.Eq1.WalkerLoadsPerWalk,
				EPTShare:     r.Metrics.EPTShare,
			}
			return nil
		default:
			j := i - nSweep - len(matrix)
			row, err := runMultiTenant(&cfg, tenantCounts[j])
			if err != nil {
				return err
			}
			tenantRes[j] = row
			return nil
		}
	})
	if err != nil {
		return nil, err
	}

	r := &VirtResult{Matrix: matrixRes, Tenants: tenantRes}
	for i := 0; i < len(params); i++ {
		nat, nst := sweepRes[2*i], sweepRes[2*i+1]
		row := VirtSweepRow{
			Param:              nat.Param,
			Footprint:          nat.Footprint,
			WCPINative:         nat.Metrics.WCPI,
			WCPINested:         nst.Metrics.WCPI,
			EPTShare:           nst.Metrics.EPTShare,
			NTLBHitRate:        nst.Metrics.NTLBHitRate,
			LoadsPerWalkNative: nat.Metrics.Eq1.WalkerLoadsPerWalk,
			LoadsPerWalkNested: nst.Metrics.Eq1.WalkerLoadsPerWalk,
		}
		if nat.Metrics.WCPI > 0 {
			row.Ratio = nst.Metrics.WCPI / nat.Metrics.WCPI
		}
		r.Sweep = append(r.Sweep, row)
	}
	return r, nil
}

// tenantSliceAccesses is how many accesses one tenant retires before the
// scheduler switches to the next — the guest time slice, in accesses.
const tenantSliceAccesses = 20_000

// tenantFootprintBytes is each tenant's array size: several times STLB
// reach under 4KB pages, so the TLBs (and the nTLB) are genuinely
// pressured.
const tenantFootprintBytes = 16 * arch.MB

// runMultiTenant measures the consolidation study's one data point: n
// guest address spaces over one shared EPT, round-robined in
// tenantSliceAccesses slices until the config's access budget is spent.
// Workload instances are single-run, so the tenants run a direct
// machine-level kernel: uniform random loads over a per-tenant array
// (the uniform-synth access pattern, restated per tenant).
func runMultiTenant(cfg *RunConfig, n int) (VirtTenantRow, error) {
	sys := cfg.System
	if !sys.Virt.Enabled {
		sys = virtualize(sys, arch.Page4K)
	}
	if sys.PhysMemBytes < 256*arch.GB {
		sys.PhysMemBytes = 256 * arch.GB
	}
	m, err := machine.New(sys, arch.Page4K, cfg.Seed)
	if err != nil {
		return VirtTenantRow{}, err
	}
	for t := 1; t < n; t++ {
		if _, err := m.AddTenant(); err != nil {
			return VirtTenantRow{}, err
		}
	}

	// Setup (untimed): every tenant builds and pre-faults its array.
	words := uint64(tenantFootprintBytes / 8)
	bases := make([]arch.VAddr, n)
	rngs := make([]*rand.Rand, n)
	for t := 0; t < n; t++ {
		if err := m.SwitchTenant(t); err != nil {
			return VirtTenantRow{}, err
		}
		base, err := m.Malloc(tenantFootprintBytes)
		if err != nil {
			return VirtTenantRow{}, err
		}
		bases[t] = base
		rngs[t] = rand.New(rand.NewSource(cfg.Seed + int64(t)*7919))
		for off := uint64(0); off < tenantFootprintBytes; off += 4096 {
			m.Poke64(base+arch.VAddr(off), off)
		}
	}

	// Measured region: round-robin slices until the budget is spent.
	start := m.Counters()
	startCycle := m.CycleCount()
	var switches uint64
	spent := uint64(0)
	for t := 0; spent < cfg.Budget; t = (t + 1) % n {
		if err := m.SwitchTenant(t); err != nil {
			return VirtTenantRow{}, err
		}
		if n > 1 {
			switches++
		}
		slice := uint64(tenantSliceAccesses)
		if cfg.Budget-spent < slice {
			slice = cfg.Budget - spent
		}
		rng := rngs[t]
		for i := uint64(0); i < slice; i++ {
			m.Load64(bases[t] + arch.VAddr(rng.Uint64()%words*8))
		}
		spent += slice
	}
	delta := perf.Delta(start, m.Counters())
	mt := perf.Compute(delta)
	if cfg.Refute != nil {
		// The consolidation kernel bypasses Run, so it feeds the refute
		// checker itself: same evidence shape, tenant-count unit name.
		u := refute.Unit{
			Name:       fmt.Sprintf("multi-tenant n=%d seed=%d%s", n, cfg.Seed, cfg.UnitTag),
			StartCycle: startCycle,
			EndCycle:   m.CycleCount(),
			Virt:       true,
			Counters:   delta,
			Metrics:    mt,
		}
		out := cfg.Refute.CheckUnit(u, m.TraceProcess())
		cfg.Monitor.IdentityResults(uint64(out.Checked), uint64(len(out.Violations)))
	}
	cfg.logf("  run multi-tenant          n=%-8d %-4s footprint=%-9s wcpi=%.4f ntlb=%.3f",
		n, arch.Page4K, arch.FormatBytes(uint64(n)*tenantFootprintBytes), mt.WCPI, mt.NTLBHitRate)
	return VirtTenantRow{
		Tenants:     n,
		WCPI:        mt.WCPI,
		NTLBHitRate: mt.NTLBHitRate,
		EPTShare:    mt.EPTShare,
		Switches:    switches,
	}, nil
}

// Tables renders the three studies.
func (r *VirtResult) Tables() []*Table {
	t1 := NewTable("Virtualization: native vs nested WCPI ("+virtSweepWorkload+", 4KB guest / 4KB EPT)",
		"footprint", "log10", "WCPI native", "WCPI nested", "ratio", "EPT share", "nTLB hit", "loads/walk nat", "loads/walk nest")
	for _, row := range r.Sweep {
		t1.Row(arch.FormatBytes(row.Footprint), f(math.Log10(float64(row.Footprint)), 2),
			f(row.WCPINative, 4), f(row.WCPINested, 4), f(row.Ratio, 2),
			f(row.EPTShare, 3), f(row.NTLBHitRate, 3),
			f(row.LoadsPerWalkNative, 2), f(row.LoadsPerWalkNested, 2))
	}
	t2 := NewTable("Virtualization: guest x EPT page-size matrix ("+virtSweepWorkload+", mid rung)",
		"guest pages", "EPT pages", "WCPI", "loads/walk", "EPT share")
	for _, row := range r.Matrix {
		t2.Row(row.GuestPages.String(), row.EPTPages.String(),
			f(row.WCPI, 4), f(row.LoadsPerWalk, 2), f(row.EPTShare, 3))
	}
	t3 := NewTable(fmt.Sprintf("Virtualization: multi-tenant round-robin over one shared EPT (%s per tenant, %d-access slices)",
		arch.FormatBytes(tenantFootprintBytes), tenantSliceAccesses),
		"tenants", "WCPI", "nTLB hit", "EPT share", "switches")
	for _, row := range r.Tenants {
		t3.Row(fmt.Sprint(row.Tenants), f(row.WCPI, 4), f(row.NTLBHitRate, 3),
			f(row.EPTShare, 3), fmt.Sprint(row.Switches))
	}
	return []*Table{t1, t2, t3}
}

// Render emits all three tables.
func (r *VirtResult) Render() string { return RenderTables(r.Tables(), "") }
