package core

import (
	"strings"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/topdown"
)

// TestCampaignIdentities: the combined registry is the base set plus
// the tree's conservation laws, with no name collisions — the contract
// that keeps every Absorb/Merge site compatible.
func TestCampaignIdentities(t *testing.T) {
	ids := CampaignIdentities()
	if want := len(refute.Identities()) + len(topdown.Identities()); len(ids) != want {
		t.Fatalf("registry has %d identities, want %d", len(ids), want)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id.Name] {
			t.Errorf("duplicate identity name %q", id.Name)
		}
		seen[id.Name] = true
	}
	if !seen["topdown_cycles_conserves"] || !seen["eq1_product"] {
		t.Error("registry missing expected members from either half")
	}
}

// TestTopdownSerialParallelIdentical is the flatgold-style schedule
// test for attribution: the campaign tree rendered from a parallel
// sweep must be byte-identical to the serial one's.
func TestTopdownSerialParallelIdentical(t *testing.T) {
	render := func(parallelism int) string {
		cfg := testConfig()
		cfg.Budget = 60_000
		cfg.Parallelism = parallelism
		cfg.pool = make(limiter, cfg.parallelism())
		cfg.Topdown = NewTopdownCollector()
		if _, err := SweepOverhead(&cfg, mustSpec(t, "stride-synth")); err != nil {
			t.Fatal(err)
		}
		if cfg.Topdown.Units() == 0 {
			t.Fatal("collector saw no units")
		}
		return cfg.Topdown.CampaignTree().Render()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Fatalf("attribution tree depends on the schedule:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "translation") || !strings.Contains(serial, "compute") {
		t.Errorf("campaign tree incomplete:\n%s", serial)
	}
}

// TestTopdownCollectorGroups: units land in the group named by their
// config, group trees resolve, and unknown groups error helpfully.
func TestTopdownCollectorGroups(t *testing.T) {
	tc := NewTopdownCollector()
	cfg := testConfig()
	cfg.Topdown = tc
	spec := mustSpec(t, "stride-synth")
	if _, err := Run(&cfg, spec, spec.Ladder[0], arch.Page4K); err != nil {
		t.Fatal(err)
	}
	vcfg := testConfig()
	vcfg.Topdown = tc
	vcfg.System.Scheme = "victima"
	vcfg.UnitTag = " @victima"
	if _, err := Run(&vcfg, spec, spec.Ladder[0], arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if got := tc.Groups(); len(got) != 2 || got[0] != "radix" || got[1] != "victima" {
		t.Fatalf("groups %v, want [radix victima]", got)
	}
	if tc.Units() != 2 {
		t.Fatalf("units %d, want 2", tc.Units())
	}
	gt, err := tc.GroupTree("radix")
	if err != nil || gt.Root == nil || gt.Root.Value == 0 {
		t.Fatalf("radix group tree: %v, %+v", err, gt)
	}
	if _, err := tc.GroupTree("nope"); err == nil || !strings.Contains(err.Error(), "radix") {
		t.Fatalf("unknown group error should list known groups, got %v", err)
	}
	// The two groups differ, so Delta between them is well-formed.
	vt, err := tc.GroupTree("victima")
	if err != nil {
		t.Fatal(err)
	}
	d := topdown.Delta(gt, vt)
	if !d.IsDelta {
		t.Error("group delta not marked")
	}
}

// TestTopdownGroupNaming pins the group-name scheme to the schemes
// experiment's column labels.
func TestTopdownGroupNaming(t *testing.T) {
	cases := []struct {
		mutate func(*RunConfig)
		want   string
	}{
		{func(c *RunConfig) {}, "radix"},
		{func(c *RunConfig) { c.System.Scheme = "victima" }, "victima"},
		{func(c *RunConfig) { c.System.NUMA.Nodes = 2 }, "radix-numa2"},
		{func(c *RunConfig) { c.System.Scheme = "mitosis"; c.System.NUMA.Nodes = 2 }, "mitosis"},
		{func(c *RunConfig) { c.System = virtualize(c.System, arch.Page4K) }, "radix+virt"},
	}
	for _, c := range cases {
		cfg := testConfig()
		c.mutate(&cfg)
		if got := topdownGroup(&cfg); got != c.want {
			t.Errorf("topdownGroup = %q, want %q", got, c.want)
		}
	}
}

// TestWCPIExperimentAttribution: the headline experiment's conservation
// laws hold on every unit (zero violations under the campaign registry)
// and its tables carry the attribution columns plus the top-rung tree.
func TestWCPIExperimentAttribution(t *testing.T) {
	cfg := testConfig()
	cfg.Budget = 60_000
	cfg.Refute = NewCampaignChecker()
	res, err := WCPIExperiment(NewSession(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rep := cfg.Refute.Report()
	if rep.Units == 0 {
		t.Fatal("no units audited")
	}
	if rep.TotalViolations != 0 {
		t.Fatalf("conservation violated on the wcpi experiment:\n%s", rep.Render())
	}
	tables := res.Tables()
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want ladder + attribution + tree", len(tables))
	}
	out := res.Render()
	for _, needle := range []string{"top-down attribution per rung", "translation share",
		"attribution tree at the top rung", "compute"} {
		if !strings.Contains(out, needle) {
			t.Errorf("wcpi render lacks %q", needle)
		}
	}
	for _, p := range res.Points {
		tree := topdown.FromCounters(p.C4K)
		if tree.Root.Value == 0 {
			t.Errorf("rung %d: empty attribution counters", p.Param)
		}
	}
}

// TestRunPublishesUnitEvents: with a hub wired, every completed unit
// publishes one event carrying its metrics, the campaign progress at
// publish time, and a non-empty flattened tree.
func TestRunPublishesUnitEvents(t *testing.T) {
	cfg := testConfig()
	cfg.Monitor = telemetry.NewMonitor()
	cfg.Events = telemetry.NewHub()
	spec := mustSpec(t, "stride-synth")
	if _, err := MeasureOverhead(&cfg, spec, spec.Ladder[0]); err != nil {
		t.Fatal(err)
	}
	events := cfg.Events.History()
	if len(events) != 3 { // one per page-size policy
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: seq %d", i, ev.Seq)
		}
		if ev.Unit == "" || ev.Cycles == 0 || ev.Instructions == 0 {
			t.Errorf("event %d incomplete: %+v", i, ev)
		}
		if ev.UnitsTotal != 3 {
			t.Errorf("event %d: units_total %d, want 3", i, ev.UnitsTotal)
		}
		if len(ev.Tree) == 0 || ev.Tree[0].Path != "cycles" {
			t.Errorf("event %d: missing attribution tree", i)
		}
		if ev.CPI <= 0 {
			t.Errorf("event %d: CPI %v", i, ev.CPI)
		}
	}
	// Without a hub the same campaign publishes nothing and runs clean.
	quiet := testConfig()
	if _, err := Run(&quiet, spec, spec.Ladder[0], arch.Page4K); err != nil {
		t.Fatal(err)
	}
}

// TestTreeTableRendering: trees embed as data tables, absolute and
// delta-labelled.
func TestTreeTableRendering(t *testing.T) {
	tc := NewTopdownCollector()
	cfg := testConfig()
	cfg.Topdown = tc
	spec := mustSpec(t, "stride-synth")
	if _, err := Run(&cfg, spec, spec.Ladder[0], arch.Page4K); err != nil {
		t.Fatal(err)
	}
	tree := tc.CampaignTree()
	tbl := TreeTable("attribution", tree)
	text := tbl.String()
	for _, needle := range []string{"node", "value", "share", "translation"} {
		if !strings.Contains(text, needle) {
			t.Errorf("tree table lacks %q:\n%s", needle, text)
		}
	}
	dtbl := TreeTable("delta", topdown.Delta(tree, tree))
	dtext := dtbl.String()
	if !strings.Contains(dtext, "delta") || !strings.Contains(dtext, "rel change") {
		t.Errorf("delta table lacks signed column labels:\n%s", dtext)
	}
}
