package core

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/perf"
	"atscale/internal/topdown"
)

// This file drives the headline-WCPI experiment: the bc-urand ladder
// reduced to the walk-cycles-per-instruction column the paper treats as
// its overhead proxy, now annotated with the top-down attribution view
// of the same cycles. It shares Fig5's memoized sweep, so running both
// in one session measures the workload once; it also pairs naturally
// with -timeline (a small, representative campaign whose trace shows
// the full track layout).

// WCPIResult is the headline WCPI ladder.
type WCPIResult struct {
	Points []OverheadPoint
}

// WCPIExperiment sweeps bc-urand and reports WCPI next to the §III
// overhead it proxies at every rung.
func WCPIExperiment(s *Session) (*WCPIResult, error) {
	pts, err := s.Sweep("bc-urand")
	if err != nil {
		return nil, err
	}
	return &WCPIResult{Points: pts}, nil
}

// Tables exposes the ladder, the per-rung attribution columns derived
// from each rung's 4 KB counter delta, and the full attribution tree of
// the ladder's largest rung (where translation pressure peaks).
func (r *WCPIResult) Tables() []*Table {
	t := NewTable("Headline WCPI: bc-urand ladder (4 KB policy)",
		"param", "footprint", "WCPI", "CPI", "walk cycle fraction", "rel AT overhead")
	for _, p := range r.Points {
		t.Row(f(float64(p.Param), 0), arch.FormatBytes(p.Footprint),
			f(p.M4K.WCPI, 4), f(p.CPI4K, 3), f(p.M4K.WalkCycleFraction, 4), pct(p.RelOverhead))
	}
	tables := []*Table{t}

	// Attribution columns: each rung's tree, reduced to the shares that
	// explain the WCPI column — how much of the cycle budget translation
	// takes, how walks split between completed and aborted, and how many
	// walker loads fall through to DRAM.
	ta := NewTable("Headline WCPI: top-down attribution per rung (4 KB policy)",
		"param", "translation share", "compute share", "aborted walks", "wrong-path walks", "DRAM PTE loads")
	haveCounters := false
	for _, p := range r.Points {
		tree := topdown.FromCounters(p.C4K)
		if tree.Root == nil || tree.Root.Value == 0 {
			continue
		}
		haveCounters = true
		ta.Row(f(float64(p.Param), 0),
			nodeShare(tree, "cycles/translation"),
			nodeShare(tree, "cycles/compute"),
			nodeShare(tree, "cycles/translation/tlb_misses/walks/aborted"),
			nodeShare(tree, "cycles/translation/tlb_misses/walks/completed/wrong_path"),
			nodeShare(tree, "cycles/translation/walker_loads/guest_loads/memory"))
	}
	if haveCounters {
		tables = append(tables, ta)
		if top := r.Points[len(r.Points)-1]; top.C4K != (perf.Counters{}) {
			title := fmt.Sprintf("Headline WCPI: attribution tree at the top rung (param %d, 4 KB policy)", top.Param)
			tables = append(tables, TreeTable(title, topdown.FromCounters(top.C4K)))
		}
	}
	return tables
}

// nodeShare formats one tree node's share of its same-domain parent, or
// "-" when the node is absent or empty.
func nodeShare(t *topdown.Tree, path string) string {
	n := t.Lookup(path)
	if n == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*n.Share)
}

// Render emits the ladder as a table.
func (r *WCPIResult) Render() string { return RenderTables(r.Tables(), "") }
