package core

import (
	"atscale/internal/arch"
)

// This file drives the headline-WCPI experiment: the bc-urand ladder
// reduced to the walk-cycles-per-instruction column the paper treats as
// its overhead proxy. It shares Fig5's memoized sweep, so running both
// in one session measures the workload once; it also pairs naturally
// with -timeline (a small, representative campaign whose trace shows
// the full track layout).

// WCPIResult is the headline WCPI ladder.
type WCPIResult struct {
	Points []OverheadPoint
}

// WCPIExperiment sweeps bc-urand and reports WCPI next to the §III
// overhead it proxies at every rung.
func WCPIExperiment(s *Session) (*WCPIResult, error) {
	pts, err := s.Sweep("bc-urand")
	if err != nil {
		return nil, err
	}
	return &WCPIResult{Points: pts}, nil
}

// Tables exposes the ladder.
func (r *WCPIResult) Tables() []*Table {
	t := NewTable("Headline WCPI: bc-urand ladder (4 KB policy)",
		"param", "footprint", "WCPI", "CPI", "walk cycle fraction", "rel AT overhead")
	for _, p := range r.Points {
		t.Row(f(float64(p.Param), 0), arch.FormatBytes(p.Footprint),
			f(p.M4K.WCPI, 4), f(p.CPI4K, 3), f(p.M4K.WalkCycleFraction, 4), pct(p.RelOverhead))
	}
	return []*Table{t}
}

// Render emits the ladder as a table.
func (r *WCPIResult) Render() string { return RenderTables(r.Tables(), "") }
