package core

import (
	"bytes"
	"strings"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/telemetry"
	_ "atscale/internal/workloads/all"
)

// timelineCampaign runs the wcpi experiment (the bc-urand ladder) with
// tracing on and returns the exported timeline bytes.
func timelineCampaign(t *testing.T, parallelism int) []byte {
	t.Helper()
	cfg := testConfig()
	cfg.Budget = 60_000
	cfg.Parallelism = parallelism
	cfg.Trace = telemetry.New()
	s := NewSession(cfg)
	if _, err := WCPIExperiment(s); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTimelineDeterministic is the tentpole acceptance test: the same
// campaign traced twice exports byte-identical timelines, and the export
// passes the structural validator with real content on it.
func TestTimelineDeterministic(t *testing.T) {
	a := timelineCampaign(t, 1)
	b := timelineCampaign(t, 1)
	if !bytes.Equal(a, b) {
		t.Error("same-seed timelines differ between runs")
	}
	stats, err := telemetry.Validate(a)
	if err != nil {
		t.Fatalf("timeline failed validation: %v", err)
	}
	if stats.Spans == 0 || stats.Slices == 0 || stats.Instants == 0 {
		t.Errorf("timeline suspiciously empty: %+v", stats)
	}
	// Every (rung, page size) unit of the sweep appears on the campaign
	// track and as a detail process.
	if n := bytes.Count(a, []byte(`"name":"bc-urand`)); n == 0 {
		t.Error("no bc-urand unit events in timeline")
	}
}

// TestTimelineSerialParallelIdentical: the scheduler must not leak into
// the timeline — a parallel campaign exports the same bytes as a serial
// one (worker assignment and completion order are live-monitor data,
// never trace data). Run with -race this also proves the tracer's
// single-writer discipline under the concurrent scheduler.
func TestTimelineSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign comparison")
	}
	serial := timelineCampaign(t, 1)
	parallel := timelineCampaign(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Error("parallel timeline differs from serial")
	}
}

// TestTimelinePhases: the workload phase track brackets setup and steady
// spans for each unit.
func TestTimelinePhases(t *testing.T) {
	data := timelineCampaign(t, 1)
	s := string(data)
	for _, phase := range []string{`"name":"setup"`, `"name":"steady"`} {
		if !strings.Contains(s, phase) {
			t.Errorf("timeline missing phase %s", phase)
		}
	}
	if !strings.Contains(s, `"name":"prefaulted_pages"`) {
		t.Error("timeline missing prefault counter annotation")
	}
}

// TestTimelineVirtAndHashed: the nested walker's guest/EPT sub-tracks
// and the hashed walker's probe slices validate too.
func TestTimelineVirtAndHashed(t *testing.T) {
	run := func(mutate func(*RunConfig), ps arch.PageSize) []byte {
		cfg := testConfig()
		cfg.Budget = 30_000
		cfg.Trace = telemetry.New()
		mutate(&cfg)
		spec := mustSpec(t, "gups-rand")
		if _, err := Run(&cfg, spec, spec.Ladder[0], ps); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Trace.Export(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	virt := run(func(cfg *RunConfig) { cfg.System.Virt = arch.DefaultVirt() }, arch.Page4K)
	if _, err := telemetry.Validate(virt); err != nil {
		t.Errorf("virt timeline invalid: %v", err)
	}
	for _, track := range []string{`"name":"walker (guest)"`, `"name":"walker (ept)"`, `"name":"ept walk"`} {
		if !bytes.Contains(virt, []byte(track)) {
			t.Errorf("virt timeline missing %s", track)
		}
	}

	hashed := run(func(cfg *RunConfig) { cfg.System.PageTable = "hashed" }, arch.Page4K)
	if _, err := telemetry.Validate(hashed); err != nil {
		t.Errorf("hashed timeline invalid: %v", err)
	}
	if !bytes.Contains(hashed, []byte(`"name":"probe"`)) {
		t.Error("hashed timeline missing probe slices")
	}
}

// TestMonitorCampaign: the live monitor sees every unit start and
// finish, workers return to idle, and the aggregate WCPI is real.
func TestMonitorCampaign(t *testing.T) {
	cfg := testConfig()
	cfg.Budget = 30_000
	cfg.Parallelism = 4
	cfg.Monitor = telemetry.NewMonitor()
	spec := mustSpec(t, "stride-synth")
	if _, err := SweepOverhead(&cfg, spec); err != nil {
		t.Fatal(err)
	}
	s := cfg.Monitor.Snapshot()
	wantUnits := uint64(len(spec.Sizes(cfg.Preset)) * 3) // three page policies
	if s.UnitsStarted != wantUnits || s.UnitsDone != wantUnits {
		t.Errorf("units started/done = %d/%d, want %d", s.UnitsStarted, s.UnitsDone, wantUnits)
	}
	if s.BusyWorkers != 0 {
		t.Errorf("busy workers = %d after campaign end", s.BusyWorkers)
	}
	if s.Instructions == 0 || s.WCPI <= 0 {
		t.Errorf("aggregates empty: %+v", s)
	}
}
