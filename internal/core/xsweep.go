package core

import (
	"atscale/internal/arch"
	"atscale/internal/workloads"
)

// This file drives the extended-sweep experiment: the paper's largest
// footprints (hundreds of gigabytes) are out of reach for the
// data-backed workloads, so the synthetic address streams carry the
// TLB/walker-side sweeps into the tens-of-gigabytes of *virtual*
// footprint, under both 4 KB and 2 MB backing. This is where the §V-E
// claim — 2 MB benefits eroding at very large footprints — becomes
// visible: the 2 MB TLB miss rate turns upward once the footprint
// outgrows 2 MB-page STLB reach (2 GB on the Table III machine).

// xsweepWorkloads are the synthetic streams swept.
var xsweepWorkloads = []string{"uniform-synth", "zipf-synth", "stride-synth"}

// XSweepRow is one (stream, footprint) sample.
type XSweepRow struct {
	Workload  string
	Footprint uint64

	WCPI4K, WCPI2M                               float64
	MissesPerKiloAccess4K, MissesPerKiloAccess2M float64
	AvgWalkCycles4K                              float64
}

// XSweepResult is the extended sweep's dataset.
type XSweepResult struct {
	Rows []XSweepRow
}

// XSweep measures the synthetic streams across their full virtual
// ladders under 4 KB and 2 MB backing. The (stream, param, page size)
// units run on the campaign worker pool; rows assemble in ladder order.
func XSweep(s *Session) (*XSweepResult, error) {
	cfg := s.Config()
	type unit struct {
		spec  *workloads.Spec
		param uint64
	}
	var units []unit
	for _, name := range xsweepWorkloads {
		spec, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, param := range spec.Sizes(cfg.Preset) {
			units = append(units, unit{spec, param})
		}
	}
	pages := [2]arch.PageSize{arch.Page4K, arch.Page2M}
	results := make([][2]RunResult, len(units))
	err := forEachUnit(&cfg, len(units)*2, func(i int) error {
		u := units[i/2]
		r, err := Run(&cfg, u.spec, u.param, pages[i%2])
		if err != nil {
			return err
		}
		results[i/2][i%2] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	r := &XSweepResult{}
	for i, u := range units {
		r4, r2 := results[i][0], results[i][1]
		r.Rows = append(r.Rows, XSweepRow{
			Workload:              u.spec.Name(),
			Footprint:             r4.Footprint,
			WCPI4K:                r4.Metrics.WCPI,
			WCPI2M:                r2.Metrics.WCPI,
			MissesPerKiloAccess4K: r4.Metrics.TLBMissesPerKiloAccess,
			MissesPerKiloAccess2M: r2.Metrics.TLBMissesPerKiloAccess,
			AvgWalkCycles4K:       r4.Metrics.AvgWalkCycles,
		})
	}
	return r, nil
}

// Tables exposes the sweep rows.
func (r *XSweepResult) Tables() []*Table {
	t := NewTable("Extended sweep: synthetic streams to tens-of-GB virtual footprints",
		"workload", "footprint", "WCPI 4K", "WCPI 2M", "misses/kacc 4K", "misses/kacc 2M", "walk-lat 4K")
	for _, row := range r.Rows {
		t.Row(row.Workload, arch.FormatBytes(row.Footprint),
			f(row.WCPI4K, 4), f(row.WCPI2M, 4),
			f(row.MissesPerKiloAccess4K, 2), f(row.MissesPerKiloAccess2M, 2),
			f(row.AvgWalkCycles4K, 1))
	}
	return []*Table{t}
}

// Render emits the sweep table.
func (r *XSweepResult) Render() string { return RenderTables(r.Tables(), "") }
