package core

import (
	"fmt"
	"strings"
	"testing"

	_ "atscale/internal/workloads/all"
)

// TestVirtExperimentProducesAllTables runs the full virtualization
// experiment on the tiny preset and sanity-checks its physics: nested
// WCPI never beats native on the same rung, the loads/walk matrix orders
// 4KB-EPT above 1GB-EPT, and multi-tenant consolidation keeps nTLB hit
// rates meaningful.
func TestVirtExperimentProducesAllTables(t *testing.T) {
	cfg := testConfig()
	cfg.Budget = 60_000
	s := NewSession(cfg)
	r, err := VirtExperiment(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sweep) == 0 || len(r.Matrix) != 6 || len(r.Tenants) != 3 {
		t.Fatalf("result shape: sweep=%d matrix=%d tenants=%d", len(r.Sweep), len(r.Matrix), len(r.Tenants))
	}
	for _, row := range r.Sweep {
		if row.WCPINested < row.WCPINative {
			t.Errorf("rung %s: nested WCPI %g below native %g", fmt.Sprint(row.Footprint), row.WCPINested, row.WCPINative)
		}
		if row.WCPINested > 0 && (row.EPTShare <= 0 || row.EPTShare >= 1) {
			t.Errorf("rung %s: EPT share %g outside (0,1)", fmt.Sprint(row.Footprint), row.EPTShare)
		}
	}
	// The analytic cold-walk ordering (more EPT levels -> more loads) is
	// pinned by the walker's own tests; with warm nTLB/PSC state the
	// measured loads/walk only has to be sane.
	for _, row := range r.Matrix {
		if row.WCPI <= 0 || row.LoadsPerWalk <= 0 {
			t.Errorf("matrix %s/%s: WCPI %g loads/walk %g, want positive",
				row.GuestPages, row.EPTPages, row.WCPI, row.LoadsPerWalk)
		}
		if row.EPTShare < 0 || row.EPTShare >= 1 {
			t.Errorf("matrix %s/%s: EPT share %g outside [0,1)", row.GuestPages, row.EPTPages, row.EPTShare)
		}
	}
	for _, row := range r.Tenants {
		if row.NTLBHitRate <= 0 || row.NTLBHitRate > 1 {
			t.Errorf("tenants=%d: nTLB hit rate %g", row.Tenants, row.NTLBHitRate)
		}
	}
	if r.Tenants[0].Switches != 0 || r.Tenants[1].Switches == 0 {
		t.Errorf("switch counts: %d (n=1), %d (n=2)", r.Tenants[0].Switches, r.Tenants[1].Switches)
	}
	out := r.Render()
	for _, want := range []string{"native vs nested", "page-size matrix", "multi-tenant"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if CSV(r) == "" {
		t.Error("empty CSV")
	}
}

// TestVirtSweepParallelMatchesSerial extends the scheduler's determinism
// contract to the virtualization campaign: Parallelism 8 renders
// byte-identical tables and CSV to Parallelism 1, multi-tenant kernel
// included.
func TestVirtSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign comparison")
	}
	run := func(parallelism int) (string, string) {
		cfg := testConfig()
		cfg.Budget = 60_000
		cfg.Parallelism = parallelism
		s := NewSession(cfg)
		r, err := VirtExperiment(s)
		if err != nil {
			t.Fatal(err)
		}
		return r.Render(), CSV(r)
	}
	serialText, serialCSV := run(1)
	parallelText, parallelCSV := run(8)
	if serialText != parallelText {
		t.Errorf("parallel virt render differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialText, parallelText)
	}
	if serialCSV != parallelCSV {
		t.Errorf("parallel virt CSV differs from serial")
	}
}
