// Package core implements the paper's contribution: the address
// translation overhead methodology of §III (superpage-baseline overhead
// estimation, walk cycles per instruction and its Equation 1
// decomposition) and a driver for every experiment in the evaluation —
// each figure and table of §V maps to one function here.
package core

import (
	"fmt"
	"io"
	"sync"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/refute"
	"atscale/internal/telemetry"
	"atscale/internal/topdown"
	"atscale/internal/workloads"
)

// RunConfig parameterizes a measurement campaign.
//
// A RunConfig handed to NewSession is copied and the session's copy is
// immutable from then on: sweeps may read it from many goroutines at
// once. Experiments that need a variant (different seed, promotion on,
// hashed page tables) copy the config — Session.Config returns a copy for
// exactly that — and mutate the copy before its first use.
type RunConfig struct {
	// System is the simulated machine description.
	System arch.SystemConfig
	// Preset selects how much of each workload's size ladder to sweep.
	Preset workloads.SizePreset
	// Budget is the retired-access budget of one measured region.
	Budget uint64
	// Seed fixes the machine's randomized model decisions.
	Seed int64
	// EnablePromotion switches on the WCPI-guided hugepage promotion
	// policy (extension experiments only; the paper's machines run
	// without it).
	EnablePromotion bool
	// Interval, when non-zero, streams one row of counter deltas per
	// Interval retired instructions over the measured region
	// (`perf stat -I` keyed on instruction count); the timeline lands in
	// RunResult.Timeline. Zero leaves streaming off.
	Interval uint64
	// SamplePeriod, when non-zero, arms PEBS-style sampling over the
	// measured region with this period on each event in SampleEvents;
	// the drained records land in RunResult.Samples. Zero leaves
	// sampling off, which provably changes no counter value.
	SamplePeriod uint64
	// SampleEvents lists the events armed with SamplePeriod. Empty
	// defaults to the two dtlb walk-duration events, making the period a
	// walk-cycle count and sample weights reconstruct walk cycles.
	SampleEvents []perf.Event
	// SampleBuffer overrides the sample ring capacity (records);
	// <= 0 uses perf.DefaultSampleCapacity.
	SampleBuffer int
	// GuestPages, when non-nil, overrides every run's page-size policy.
	// Under nested paging (System.Virt.Enabled) the policy is the guest
	// OS page size, so this pins the guest dimension while experiments
	// vary everything else; page-size-sweep artifacts degenerate to one
	// policy under the override.
	GuestPages *arch.PageSize
	// Parallelism bounds how many simulations a campaign runs at once.
	// Zero (the default) means runtime.GOMAXPROCS(0); 1 forces the
	// serial schedule. Parallel and serial campaigns produce
	// byte-identical tables and CSV.
	Parallelism int
	// Log, when non-nil, receives progress lines. Lines are written
	// atomically (one Write per line), so a parallel campaign's log is
	// interleaved per-run but never corrupted mid-line.
	Log io.Writer
	// Trace, when non-nil, records every run unit's timeline (walker
	// spans, speculation instants, workload phases) plus the campaign
	// schedule; export it with Trace.Export. Timelines are clocked in
	// simulated cycles, so the exported file is byte-identical across
	// runs and across serial/parallel schedules. Nil leaves tracing off
	// at zero allocation cost on the simulation hot paths.
	Trace *telemetry.Tracer
	// Monitor, when non-nil, receives live campaign progress (unit
	// starts/completions, worker occupancy, aggregate counter deltas);
	// the CLIs' heartbeat loops snapshot it. Nil disables the hooks.
	Monitor *telemetry.Monitor
	// Refute, when non-nil, evaluates the declared counter-identity
	// registry against every run unit's measured delta as it completes.
	// Violations are pinned to the unit's cycle range on a `refute`
	// timeline track (when tracing), counted into the Monitor, and
	// aggregated into the checker's deterministic report.
	Refute *refute.Checker
	// Topdown, when non-nil, folds every completed unit's counter delta
	// into the attribution collector (per-unit, per-scheme-group, and
	// campaign-wide cycle attribution trees; atscale -topdown /
	// -topdown-diff render them). Nil skips collection entirely.
	Topdown *TopdownCollector
	// Events, when non-nil, receives one streaming UnitEvent per
	// completed unit (headline metrics, campaign progress, flattened
	// attribution tree); the telemetry HTTP layer fans it out over SSE.
	// Nil skips event construction entirely.
	Events *telemetry.Hub
	// UnitTag is appended verbatim to every unit name. Campaigns that
	// re-run identically-parameterized units under config variants the
	// name does not otherwise encode (sampling, tenant counts) tag them
	// so unit names — which key the refute report and the timeline —
	// stay campaign-unique.
	UnitTag string

	// pool is the worker pool shared by every config copied from one
	// session; NewSession creates it (see schedule.go).
	pool limiter
	// machines recycles simulated machines across the session's run
	// units (see schedule.go); nil — every standalone config — disables
	// pooling and every unit builds a fresh machine.
	machines *machinePool
}

// DefaultRunConfig returns the standard campaign configuration: the
// Table III machine, the medium ladder, and a two-million-access measured
// region per run.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		System: arch.DefaultSystem(),
		Preset: workloads.Medium,
		Budget: 2_000_000,
		Seed:   2024,
	}
}

// logMu serializes progress lines: concurrent run units may share one
// Log writer, and a single locked Write per line keeps output readable
// and race-free whatever the writer is.
var logMu sync.Mutex

func (c *RunConfig) logf(format string, args ...any) {
	if c.Log == nil {
		return
	}
	line := fmt.Sprintf(format+"\n", args...)
	logMu.Lock()
	defer logMu.Unlock()
	c.Log.Write([]byte(line))
}

// RunResult is one (workload, input size, page size) measurement.
type RunResult struct {
	// Workload is the program-generator name.
	Workload string
	// Param is the input-size parameter.
	Param uint64
	// PageSize is the heap backing policy of this run.
	PageSize arch.PageSize
	// Footprint is the program's memory footprint in bytes.
	Footprint uint64
	// Counters is the measured region's counter delta.
	Counters perf.Counters
	// Metrics is derived from Counters.
	Metrics perf.Metrics
	// Timeline is the interval stream (nil unless RunConfig.Interval).
	Timeline []perf.IntervalRow
	// Samples is the drained sample ring (nil unless sampling armed).
	Samples []perf.Sample
	// SampleDropped / SampleDroppedWeight count ring-overflow losses.
	SampleDropped       uint64
	SampleDroppedWeight uint64
}

// Run executes one measurement: build the instance on a fresh machine
// backed with the given page size, then run the measured region.
func Run(cfg *RunConfig, spec *workloads.Spec, param uint64, ps arch.PageSize) (RunResult, error) {
	if cfg.GuestPages != nil {
		ps = *cfg.GuestPages
	}
	sys := cfg.System
	// Synthetic sweeps reach virtual footprints beyond the default
	// physical memory; give the simulated machine DRAM headroom (it is
	// sparse — untouched memory costs nothing).
	if sys.PhysMemBytes < 256*arch.GB {
		sys.PhysMemBytes = 256 * arch.GB
	}
	m := cfg.machines.acquire(sys, ps, cfg.Seed)
	if m == nil {
		var err error
		m, err = machine.New(sys, ps, cfg.Seed)
		if err != nil {
			return RunResult{}, err
		}
	}
	if cfg.EnablePromotion && ps == arch.Page4K {
		m.EnablePromotion(machine.DefaultPromotionConfig())
	}
	// Tracing attaches before the build so the setup phase is on the
	// timeline too; the unit name doubles as the process name, so it
	// carries every config variant that distinguishes otherwise-equal
	// (workload, param, page size) units within one campaign.
	unit := unitName(cfg, spec, param, ps)
	m.EnableTrace(cfg.Trace, unit)
	cfg.Monitor.UnitStarted()
	inst, err := spec.Instantiate(m, param)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: building %s param %d: %w", spec.Name(), param, err)
	}
	// Observability is armed after Build so samples and intervals cover
	// exactly the measured region, like the counter delta does.
	var smp *perf.Sampler
	if cfg.SamplePeriod > 0 {
		smp = perf.NewSampler(cfg.SampleBuffer)
		events := cfg.SampleEvents
		if len(events) == 0 {
			events = []perf.Event{perf.DTLBLoadWalkDuration, perf.DTLBStoreWalkDuration}
		}
		for _, e := range events {
			if err := smp.Arm(e, cfg.SamplePeriod); err != nil {
				return RunResult{}, fmt.Errorf("core: %w", err)
			}
		}
		m.AttachSampler(smp)
	}
	if cfg.Interval > 0 {
		if _, err := m.StartIntervals(cfg.Interval); err != nil {
			return RunResult{}, fmt.Errorf("core: %w", err)
		}
	}
	start := m.Counters()
	startCycle := m.CycleCount()
	workloads.RunPhased(m, inst, cfg.Budget)
	endCycle := m.CycleCount()
	delta := perf.Delta(start, m.Counters())
	r := RunResult{
		Workload:  spec.Name(),
		Param:     param,
		PageSize:  ps,
		Footprint: m.Footprint(),
		Counters:  delta,
		Metrics:   perf.Compute(delta),
	}
	if cfg.Interval > 0 {
		r.Timeline = m.StopIntervals()
	}
	if smp != nil {
		r.Samples = smp.Drain()
		r.SampleDropped = smp.Dropped()
		r.SampleDroppedWeight = smp.DroppedWeight()
	}
	walkCycles := delta.Get(perf.DTLBLoadWalkDuration) + delta.Get(perf.DTLBStoreWalkDuration)
	stats := []telemetry.UnitStat{
		{Name: "wcpi", Val: r.Metrics.WCPI},
		{Name: "cpi", Val: r.Metrics.CPI},
		{Name: "walk_cycles", Val: float64(walkCycles)},
		{Name: "instructions", Val: float64(delta.Get(perf.InstRetired))},
	}
	if cfg.Refute != nil {
		out := checkIdentities(cfg, m, unit, startCycle, endCycle, &r, smp)
		stats = append(stats,
			telemetry.UnitStat{Name: "identities_checked", Val: float64(out.Checked)},
			telemetry.UnitStat{Name: "identities_violated", Val: float64(len(out.Violations))})
	}
	cfg.Trace.FinishUnit(telemetry.Unit{
		// Cycles spans the machine's whole traced extent (warmup
		// included), so the unit's detail tracks fit inside its
		// campaign tile.
		Name:   unit,
		Cycles: m.CycleCount(),
		Stats:  stats,
	})
	cfg.Monitor.UnitDone(delta.Get(perf.InstRetired), delta.Get(perf.Cycles), walkCycles)
	cfg.Topdown.Add(topdownGroup(cfg), unit, delta)
	if cfg.Events != nil {
		// The streaming event embeds the unit's flattened attribution
		// tree; building it costs a few hundred Expr evals per *unit*
		// (not per access) and only when streaming is armed.
		snap := cfg.Monitor.Snapshot()
		cfg.Events.Publish(telemetry.UnitEvent{
			Unit:         unit,
			CPI:          r.Metrics.CPI,
			WCPI:         r.Metrics.WCPI,
			Cycles:       delta.Get(perf.Cycles),
			Instructions: delta.Get(perf.InstRetired),
			UnitsDone:    snap.UnitsDone,
			UnitsTotal:   snap.UnitsTotal,
			BusyWorkers:  snap.BusyWorkers,
			Tree:         topdown.FromCounters(delta).Flatten(),
		})
	}
	cfg.logf("  run %-22s param=%-8d %-4s footprint=%-9s cpi=%.3f wcpi=%.4f",
		r.Workload, r.Param, ps, arch.FormatBytes(r.Footprint), r.Metrics.CPI, r.Metrics.WCPI)
	cfg.machines.release(m)
	return r, nil
}

// checkIdentities runs the refute checker over one completed unit: it
// assembles the unit's evidence (counter delta, derived metrics, cycle
// extent, sampler ring accounting), evaluates the identity registry,
// and publishes the outcome to the Monitor. Violations are pinned to
// [startCycle, endCycle] on the unit's `refute` timeline track.
func checkIdentities(cfg *RunConfig, m *machine.Machine, unit string, startCycle, endCycle uint64, r *RunResult, smp *perf.Sampler) refute.Outcome {
	u := refute.Unit{
		Name:       unit,
		StartCycle: startCycle,
		EndCycle:   endCycle,
		Virt:       cfg.System.Virt.Enabled,
		Counters:   r.Counters,
		Metrics:    r.Metrics,
	}
	if smp != nil {
		u.Sampling = true
		u.SamplesDrained = uint64(len(r.Samples))
		u.SamplesCaptured = smp.Captured()
		u.SamplesDropped = r.SampleDropped
		u.SampleCapacity = uint64(smp.Capacity())
		u.SampleDroppedWeight = r.SampleDroppedWeight
		for _, s := range r.Samples {
			u.SampleWeight += s.Weight
		}
		for _, e := range perf.Events() {
			if p := smp.Period(e); p > 0 {
				u.SampleEventsTotal += r.Counters.Get(e)
				u.SampleSlack += p
			}
		}
	}
	out := cfg.Refute.CheckUnit(u, m.TraceProcess())
	cfg.Monitor.IdentityResults(uint64(out.Checked), uint64(len(out.Violations)))
	for _, v := range out.Violations {
		cfg.logf("  REFUTE %-22s identity %s violated (l=%g r=%g residual=%g)",
			r.Workload, v.Identity, v.L, v.R, v.Residual)
	}
	return out
}

// unitName builds the campaign-unique run unit name: workload, size
// parameter, page size, seed, plus a marker per config variant that can
// coexist with the plain config in one campaign.
func unitName(cfg *RunConfig, spec *workloads.Spec, param uint64, ps arch.PageSize) string {
	name := fmt.Sprintf("%s p=%d %s seed=%d", spec.Name(), param, ps, cfg.Seed)
	if cfg.System.Virt.Enabled {
		name += " +virt"
	}
	if cfg.System.PageTable == "hashed" {
		name += " +hashed"
	}
	if cfg.EnablePromotion {
		name += " +promo"
	}
	if cfg.System.PagingLevels != 0 && cfg.System.PagingLevels != 4 {
		name += fmt.Sprintf(" +lvl%d", cfg.System.PagingLevels)
	}
	if cfg.System.Scheme != "" && cfg.System.Scheme != "radix" {
		name += " +" + cfg.System.Scheme
	}
	if n := cfg.System.NUMA.EffectiveNodes(); n > 1 {
		name += fmt.Sprintf(" +numa%d", n)
	}
	return name + cfg.UnitTag
}

// paperSuites are the benchmark suites of the paper's Table I.
var paperSuites = map[string]bool{
	"gapbs":    true,
	"ycsb":     true,
	"spec2006": true,
	"parsec":   true,
}

// PaperWorkloads returns the Table I workload set (the extension suites —
// synthetic streams and the micro kernels — are excluded from the paper's
// sweeps but available to custom campaigns).
func PaperWorkloads() []*workloads.Spec {
	var out []*workloads.Spec
	for _, s := range workloads.All() {
		if paperSuites[s.Suite] {
			out = append(out, s)
		}
	}
	return out
}
