package core

import (
	"atscale/internal/arch"
	"atscale/internal/perf"
	"atscale/internal/stats"
)

// This file drives the speculation experiments: Figure 7 (walk outcome
// bands vs footprint), Table VI (the outcome formulae, demonstrated live)
// and Figure 9 (wrong-path walks vs machine clears for bc-kron).

// fig7Workloads are the three workloads the paper's Figure 7 plots.
var fig7Workloads = []string{"bc-urand", "streamcluster-rand", "mcf-rand"}

// OutcomeRow is one (workload, footprint) walk-outcome sample.
type OutcomeRow struct {
	Workload  string
	Footprint uint64
	Outcomes  perf.WalkOutcomes
	// Retired, WrongPath, Aborted are the band fractions of initiated
	// walks.
	Retired, WrongPath, Aborted float64
}

// WalkOutcomeResult is Figure 7's dataset.
type WalkOutcomeResult struct {
	Title string
	Rows  []OutcomeRow
}

// Fig7 measures walk-outcome distributions for the paper's three
// workloads under 4 KB pages.
func Fig7(s *Session) (*WalkOutcomeResult, error) {
	r := &WalkOutcomeResult{Title: "Fig 7: walk outcome distribution vs footprint (4KB pages)"}
	for _, name := range fig7Workloads {
		pts, err := s.Sweep(name)
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			r.Rows = append(r.Rows, outcomeRow(name, p.Footprint, p.M4K))
		}
	}
	return r, nil
}

func outcomeRow(name string, footprint uint64, m perf.Metrics) OutcomeRow {
	ret, wp, ab := m.Outcomes.Fractions()
	return OutcomeRow{
		Workload: name, Footprint: footprint, Outcomes: m.Outcomes,
		Retired: ret, WrongPath: wp, Aborted: ab,
	}
}

// Tables exposes the band fractions per (workload, footprint).
func (r *WalkOutcomeResult) Tables() []*Table {
	t := NewTable(r.Title,
		"workload", "footprint", "initiated", "retired", "wrong-path", "aborted", "non-retired")
	for _, row := range r.Rows {
		t.Row(row.Workload, arch.FormatBytes(row.Footprint),
			f(float64(row.Outcomes.Initiated), 0),
			pct(row.Retired), pct(row.WrongPath), pct(row.Aborted),
			pct(row.WrongPath+row.Aborted))
	}
	return []*Table{t}
}

// Render emits the outcome-band table plus an ASCII band chart per
// workload (the Figure 7 visual).
func (r *WalkOutcomeResult) Render() string {
	out := RenderTables(r.Tables(), "")
	var labels []string
	var bands [][]float64
	for _, row := range r.Rows {
		labels = append(labels, row.Workload+" @ "+arch.FormatBytes(row.Footprint))
		bands = append(bands, []float64{row.Retired, row.WrongPath, row.Aborted})
	}
	return out + "\n" + BandChart("walk outcome bands", []string{"retired", "wrong-path", "aborted"},
		labels, bands, 50)
}

// Fig9Row is one bc-kron sample relating machine clears to non-retired
// walks.
type Fig9Row struct {
	Footprint uint64
	// ClearsPerKiloInstr is machine clears per 1000 instructions.
	ClearsPerKiloInstr float64
	// NonRetiredFraction is (wrong-path + aborted) / initiated walks.
	NonRetiredFraction float64
	// MispredictRate is retired branch mispredicts per branch.
	MispredictRate float64
}

// Fig9Result is Figure 9's dataset plus the association strength.
type Fig9Result struct {
	Workload string
	Rows     []Fig9Row
	// Pearson is the correlation between clears/kiloinstr and the
	// non-retired walk fraction across the sweep.
	Pearson float64
}

// Fig9 measures bc-kron's machine clears against its wrong-path/aborted
// walk fraction.
func Fig9(s *Session) (*Fig9Result, error) {
	pts, err := s.Sweep("bc-kron")
	if err != nil {
		return nil, err
	}
	r := &Fig9Result{Workload: "bc-kron"}
	var xs, ys []float64
	for _, p := range pts {
		m := p.M4K
		_, wp, ab := m.Outcomes.Fractions()
		row := Fig9Row{
			Footprint:          p.Footprint,
			ClearsPerKiloInstr: m.MachineClearsPerKiloInstruction,
			NonRetiredFraction: wp + ab,
			MispredictRate:     m.BranchMispredictRate,
		}
		r.Rows = append(r.Rows, row)
		xs = append(xs, row.ClearsPerKiloInstr)
		ys = append(ys, row.NonRetiredFraction)
	}
	if p, err := stats.Pearson(xs, ys); err == nil {
		r.Pearson = p
	}
	return r, nil
}

// Tables exposes clears vs non-retired walk fraction per footprint.
func (r *Fig9Result) Tables() []*Table {
	t := NewTable("Fig 9: wrong-path/aborted walk fraction vs machine clears ("+r.Workload+", 4KB)",
		"footprint", "clears/kinst", "non-retired walks", "br mispredict rate")
	for _, row := range r.Rows {
		t.Row(arch.FormatBytes(row.Footprint), f(row.ClearsPerKiloInstr, 4),
			pct(row.NonRetiredFraction), pct(row.MispredictRate))
	}
	return []*Table{t}
}

// Render emits the table plus the association strength.
func (r *Fig9Result) Render() string {
	return RenderTables(r.Tables(),
		"Pearson(clears, non-retired fraction) = "+f(r.Pearson, 3)+"\n")
}

// Table6Result demonstrates the Table VI walk-outcome formulae on a live
// run: the raw counters, the derived outcomes, and the conservation
// identity.
type Table6Result struct {
	Workload string
	Counters perf.Counters
	Outcomes perf.WalkOutcomes
}

// Table6 runs one bc-urand instance and derives the outcome counts
// exactly as Table VI prescribes.
func Table6(s *Session) (*Table6Result, error) {
	pts, err := s.Sweep("bc-urand")
	if err != nil {
		return nil, err
	}
	last := pts[len(pts)-1]
	return &Table6Result{Workload: "bc-urand", Outcomes: last.M4K.Outcomes}, nil
}

// Tables exposes the formulae with the measured values substituted in.
func (r *Table6Result) Tables() []*Table {
	o := r.Outcomes
	t := NewTable("Table VI: walk outcome formulae (evaluated on "+r.Workload+")",
		"walk outcome", "formula", "value")
	t.Row("Initiated", "dtlb_load_misses.miss_causes_a_walk + dtlb_store_misses.miss_causes_a_walk", f(float64(o.Initiated), 0))
	t.Row("Completed", "dtlb_load_misses.walk_completed + dtlb_store_misses.walk_completed", f(float64(o.Completed), 0))
	t.Row("Retired", "mem_uops_retired.stlb_miss_loads + mem_uops_retired.stlb_miss_stores", f(float64(o.Retired), 0))
	t.Row("Aborted", "Initiated - Completed", f(float64(o.Aborted), 0))
	t.Row("Wrong path", "Completed - Retired", f(float64(o.WrongPath), 0))
	return []*Table{t}
}

// Render emits the formula table.
func (r *Table6Result) Render() string { return RenderTables(r.Tables(), "") }
