// Package mmucache models Intel's paging-structure caches (PSCs): small
// fully-associative caches that let the page-table walker skip loads at or
// near the top of the radix tree ("skip, don't walk", Barr et al.). One
// cache exists per non-leaf entry kind:
//
//   - the PML4E cache maps VA[47:39] to the PDPT page that PML4E points at,
//   - the PDPTE cache maps VA[47:30] to the PD page,
//   - the PDE cache maps VA[47:21] to the PT page.
//
// On a TLB miss the walker starts from the deepest hit, so a PDE-cache hit
// turns a 4-load walk into a single PTE load.
//
// Because these caches are tiny and see only the TLB-miss residual stream,
// they are the locus of the paper's TLB filtering effect (§V-C): the
// observations reaching them are sparser — and less local — the better the
// TLB performs.
package mmucache

import (
	"math"

	"atscale/internal/arch"
)

type entry struct {
	prefix uint64
	base   arch.PAddr
	stamp  uint64
}

// levelCache is one fully-associative PSC array.
type levelCache struct {
	entries []entry
	//atlint:noreset flush deliberately keeps the clock running (an OS flush does not rewind replacement age); PSC.Reset rewinds it for pooled reuse
	clock uint64
}

func newLevelCache(n int) *levelCache {
	c := &levelCache{entries: make([]entry, n)}
	for i := range c.entries {
		c.entries[i].prefix = math.MaxUint64
	}
	return c
}

func (c *levelCache) lookup(prefix uint64) (arch.PAddr, bool) {
	c.clock++
	for i := range c.entries {
		if c.entries[i].prefix == prefix {
			c.entries[i].stamp = c.clock
			return c.entries[i].base, true
		}
	}
	return 0, false
}

func (c *levelCache) insert(prefix uint64, base arch.PAddr) {
	if len(c.entries) == 0 {
		return
	}
	c.clock++
	victim := 0
	oldest := uint64(math.MaxUint64)
	for i := range c.entries {
		if c.entries[i].prefix == prefix {
			c.entries[i].base = base
			c.entries[i].stamp = c.clock
			return
		}
		if c.entries[i].prefix == math.MaxUint64 {
			if oldest != 0 {
				victim, oldest = i, 0
			}
			continue
		}
		if c.entries[i].stamp < oldest {
			victim, oldest = i, c.entries[i].stamp
		}
	}
	c.entries[victim] = entry{prefix: prefix, base: base, stamp: c.clock}
}

func (c *levelCache) flush() {
	for i := range c.entries {
		c.entries[i] = entry{prefix: math.MaxUint64}
	}
}

func (c *levelCache) live() int {
	n := 0
	for i := range c.entries {
		if c.entries[i].prefix != math.MaxUint64 {
			n++
		}
	}
	return n
}

// PSC is the set of paging-structure caches, one per non-leaf level.
type PSC struct {
	// byLevel[l] caches entries *read at* level l, i.e. pointers to the
	// level l-1 table. Indexed by arch.Level (2..top used).
	byLevel [arch.LevelPML5 + 1]*levelCache
	// top is the radix root level (PML4 or PML5).
	top arch.Level
}

// New builds the PSCs of a 4-level machine with the configured entry
// counts.
func New(g arch.PSCGeometry) *PSC { return NewWithDepth(g, 4) }

// NewWithDepth builds the PSCs for a machine with the given paging depth.
func NewWithDepth(g arch.PSCGeometry, levels int) *PSC {
	p := &PSC{top: arch.RootLevel(levels)}
	p.byLevel[arch.LevelPD] = newLevelCache(g.PDEntries)
	p.byLevel[arch.LevelPDPT] = newLevelCache(g.PDPTEntries)
	p.byLevel[arch.LevelPML4] = newLevelCache(g.PML4Entries)
	if p.top == arch.LevelPML5 {
		p.byLevel[arch.LevelPML5] = newLevelCache(g.PML5Entries)
	}
	return p
}

// LookupDeepest finds the deepest cached partial walk for va, considering
// only caches at or above minEntryLevel (the walk's leaf entry level: PSCs
// cache non-leaf entries only, so a 2 MB walk cannot use the PDE cache).
//
// It returns the level of the next entry the walker must load and the
// physical base of the table page holding it. With no hit, that is
// (LevelPML4, cr3).
func (p *PSC) LookupDeepest(va arch.VAddr, leafLevel arch.Level, cr3 arch.PAddr) (arch.Level, arch.PAddr) {
	// A hit in the cache of level l entries supplies the level l-1 table,
	// so search upward starting from the cache of (leafLevel+1) entries.
	for l := leafLevel + 1; l <= p.top; l++ {
		if base, ok := p.byLevel[l].lookup(l.Prefix(va)); ok {
			return l - 1, base
		}
	}
	return p.top, cr3
}

// Insert caches a non-leaf entry the walker just read: the entry at the
// given level for va pointed at the table page nextBase.
func (p *PSC) Insert(level arch.Level, va arch.VAddr, nextBase arch.PAddr) {
	if level < arch.LevelPD || level > p.top {
		return
	}
	p.byLevel[level].insert(level.Prefix(va), nextBase)
}

// InvalidatePrefix removes any cached entry covering va at the given level.
func (p *PSC) InvalidatePrefix(level arch.Level, va arch.VAddr) {
	if level < arch.LevelPD || level > p.top {
		return
	}
	c := p.byLevel[level]
	prefix := level.Prefix(va)
	for i := range c.entries {
		if c.entries[i].prefix == prefix {
			c.entries[i] = entry{prefix: math.MaxUint64}
		}
	}
}

// Flush empties every cache.
func (p *PSC) Flush() {
	for l := arch.LevelPD; l <= p.top; l++ {
		p.byLevel[l].flush()
	}
}

// Reset returns every cache to its just-constructed state. Flush empties
// the entries but deliberately keeps each LRU clock running (an OS flush
// does not rewind time); Reset also rewinds the clocks, so a pooled
// machine's PSCs are indistinguishable from freshly built ones.
func (p *PSC) Reset() {
	for l := arch.LevelPD; l <= p.top; l++ {
		p.byLevel[l].flush()
		p.byLevel[l].clock = 0
	}
}

// Live returns the number of valid entries in the cache of level-l entries
// (test/debug helper).
func (p *PSC) Live(l arch.Level) int { return p.byLevel[l].live() }

// Top returns the radix root level the PSCs were built for.
func (p *PSC) Top() arch.Level { return p.top }
