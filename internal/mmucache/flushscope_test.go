package mmucache

import (
	"testing"

	"atscale/internal/arch"
)

// These tests pin the flush-scoping contract the translation-scheme seam
// (internal/scheme) relies on: every flush scope drops exactly the
// structures its architectural event invalidates, and a *full* flush
// leaves zero residual hits in any walk-serving cache.

// fillNested populates every cache of a nested set with one entry.
func fillNested(n *Nested) (va arch.VAddr, gpa arch.PAddr) {
	va = arch.VAddr(0x7f00_1234_5000)
	gpa = arch.PAddr(0x4_2000)
	n.Guest.Insert(arch.LevelPD, va, 0x4000)
	n.Guest.Insert(arch.LevelPDPT, va, 0x3000)
	n.EPT.Insert(arch.LevelPD, arch.VAddr(gpa), 0x8000)
	n.NTLB.Insert(arch.PAddr(arch.PageBase(arch.VAddr(gpa), arch.Page4K)), 0x9000, arch.Page4K)
	return va, gpa
}

func pscLive(p *PSC) int {
	n := 0
	for l := arch.LevelPD; l <= p.Top(); l++ {
		n += p.Live(l)
	}
	return n
}

func TestFlushGuestScopesToGuestDimension(t *testing.T) {
	n := NewNested(arch.PSCGeometry{PML4Entries: 2, PDPTEntries: 4, PDEntries: 8},
		arch.PSCGeometry{PML4Entries: 2, PDPTEntries: 4, PDEntries: 8}, 16)
	va, gpa := fillNested(n)

	n.FlushGuest()
	if live := pscLive(n.Guest); live != 0 {
		t.Errorf("guest PSC live = %d after FlushGuest, want 0", live)
	}
	// The EPT dimension is keyed by guest-physical addresses under an
	// unchanged EPTP: it must stay warm.
	if live := pscLive(n.EPT); live == 0 {
		t.Error("FlushGuest dropped the EPT PSCs")
	}
	if n.NTLB.Live() == 0 {
		t.Error("FlushGuest dropped the nTLB")
	}
	if _, _, ok := n.NTLB.Lookup(gpa); !ok {
		t.Error("nTLB lookup misses after guest-scoped flush")
	}
	if level, _ := n.Guest.LookupDeepest(va, arch.LevelPT, cr3); level != n.Guest.Top() {
		t.Error("guest PSC still serves hits after FlushGuest")
	}
}

func TestFullFlushLeavesZeroResidualHits(t *testing.T) {
	n := NewNested(arch.PSCGeometry{PML4Entries: 2, PDPTEntries: 4, PDEntries: 8},
		arch.PSCGeometry{PML4Entries: 2, PDPTEntries: 4, PDEntries: 8}, 16)
	va, gpa := fillNested(n)

	n.Flush()
	if live := pscLive(n.Guest) + pscLive(n.EPT) + n.NTLB.Live(); live != 0 {
		t.Fatalf("full flush left %d live entries", live)
	}
	if level, base := n.Guest.LookupDeepest(va, arch.LevelPT, cr3); level != n.Guest.Top() || base != cr3 {
		t.Error("guest PSC residual hit after full flush")
	}
	if level, base := n.EPT.LookupDeepest(arch.VAddr(gpa), arch.LevelPT, cr3); level != n.EPT.Top() || base != cr3 {
		t.Error("EPT PSC residual hit after full flush")
	}
	if _, _, ok := n.NTLB.Lookup(gpa); ok {
		t.Error("nTLB residual hit after full flush")
	}
}

func TestPSCFlushKeepsClockResetRewinds(t *testing.T) {
	p := newPSC()
	va := arch.VAddr(0x7f00_1234_5000)
	p.Insert(arch.LevelPD, va, 0x4000)
	p.Flush()
	if pscLive(p) != 0 {
		t.Fatal("flush left live entries")
	}
	if level, _ := p.LookupDeepest(va, arch.LevelPT, cr3); level != p.Top() {
		t.Error("residual PSC hit after flush")
	}
	// Reset must behave like a fresh build: insert/lookup sequences
	// after Reset match a new PSC exactly (the machine pool depends on
	// renewed instances being byte-identical to fresh ones).
	p.Reset()
	fresh := newPSC()
	p.Insert(arch.LevelPD, va, 0x4000)
	fresh.Insert(arch.LevelPD, va, 0x4000)
	gl, gb := p.LookupDeepest(va, arch.LevelPT, cr3)
	wl, wb := fresh.LookupDeepest(va, arch.LevelPT, cr3)
	if gl != wl || gb != wb {
		t.Errorf("post-Reset PSC diverges from fresh: (%v,%#x) vs (%v,%#x)",
			gl, uint64(gb), wl, uint64(wb))
	}
}
