package mmucache

import (
	"math"

	"atscale/internal/arch"
)

// NTLB is the EPT translation cache ("nested TLB"): a small
// fully-associative cache mapping guest-physical pages to the host frames
// the EPT resolves them to. Each guest walk step needs the host address
// of a guest-physical table page, so without this cache a nested walk
// pays a full EPT walk per guest level; with it, warm guest-table pages
// cost one lookup. It is the host-dimension analogue of the walk-serving
// STLB hit, and it is keyed on guest-physical addresses — so it stays
// valid across guest context switches under a shared EPT, which is where
// the multi-tenant EPT-sharing benefit comes from.
type NTLB struct {
	entries []ntlbEntry
	//atlint:noreset replacement-age clock: Flush models an EPT invalidation, which empties entries but does not rewind hardware time (same model as PSC)
	clock uint64
}

type ntlbEntry struct {
	gbase arch.PAddr // guest-physical page base
	hbase arch.PAddr // host frame backing it
	size  arch.PageSize
	stamp uint64 // 0 marks an invalid entry
}

// NewNTLB builds an EPT translation cache with n entries (0 disables it).
func NewNTLB(n int) *NTLB {
	return &NTLB{entries: make([]ntlbEntry, n)}
}

// Lookup finds the cached EPT translation covering gpa, returning the
// backing host frame base and the mapping size.
func (t *NTLB) Lookup(gpa arch.PAddr) (arch.PAddr, arch.PageSize, bool) {
	t.clock++
	for i := range t.entries {
		e := &t.entries[i]
		if e.stamp != 0 && e.gbase == arch.PAddr(arch.PageBase(arch.VAddr(gpa), e.size)) {
			e.stamp = t.clock
			return e.hbase, e.size, true
		}
	}
	return 0, 0, false
}

// Insert caches one completed EPT walk: the guest-physical page at gbase
// is backed by the host frame at hbase with the given mapping size.
func (t *NTLB) Insert(gbase, hbase arch.PAddr, size arch.PageSize) {
	if len(t.entries) == 0 {
		return
	}
	t.clock++
	victim := 0
	oldest := uint64(math.MaxUint64)
	for i := range t.entries {
		e := &t.entries[i]
		if e.stamp != 0 && e.gbase == gbase && e.size == size {
			e.hbase = hbase
			e.stamp = t.clock
			return
		}
		if e.stamp < oldest {
			victim, oldest = i, e.stamp
		}
	}
	t.entries[victim] = ntlbEntry{gbase: gbase, hbase: hbase, size: size, stamp: t.clock}
}

// Flush empties the cache (full EPT invalidation; not needed on guest
// context switches under a shared EPT).
func (t *NTLB) Flush() {
	for i := range t.entries {
		t.entries[i] = ntlbEntry{}
	}
}

// Live returns the number of valid entries (test/debug helper).
func (t *NTLB) Live() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].stamp != 0 {
			n++
		}
	}
	return n
}

// Nested bundles the walk-serving caches of a nested (2D) translation
// engine, one set per dimension:
//
//   - Guest: paging-structure caches keyed on guest-virtual addresses,
//     letting the walker skip upper *guest* levels (their payloads are
//     guest-physical table pointers);
//   - EPT: paging-structure caches keyed on guest-physical addresses,
//     letting each EPT walk skip upper *EPT* levels;
//   - NTLB: the EPT translation cache short-circuiting whole EPT walks.
//
// Lookup order on a guest step: Guest PSC (to pick the walk entry
// point), then per step NTLB, then the EPT PSCs inside an EPT walk.
type Nested struct {
	Guest *PSC
	EPT   *PSC
	NTLB  *NTLB
}

// NewNested builds the nested cache set: guest-dimension PSCs from g,
// EPT-dimension PSCs from e, and an nTLB of ntlbEntries entries. Both
// dimensions are 4-level (nested paging pairs with PagingLevels=4).
func NewNested(g, e arch.PSCGeometry, ntlbEntries int) *Nested {
	return &Nested{
		Guest: New(g),
		EPT:   New(e),
		NTLB:  NewNTLB(ntlbEntries),
	}
}

// FlushGuest drops the guest-dimension caches only — the guest context
// switch: EPT PSCs and the nTLB are tagged by guest-physical addresses
// under an EPTP that did not change, so hardware (and this model) keeps
// them warm.
func (n *Nested) FlushGuest() { n.Guest.Flush() }

// Flush drops every cache in both dimensions (EPTP change).
func (n *Nested) Flush() {
	n.Guest.Flush()
	n.EPT.Flush()
	n.NTLB.Flush()
}
