package mmucache

import (
	"testing"

	"atscale/internal/arch"
)

func TestNTLBLookupInsert(t *testing.T) {
	n := NewNTLB(4)
	if _, _, ok := n.Lookup(0x1000); ok {
		t.Fatal("empty nTLB hit")
	}
	n.Insert(0x1000, 0xa000, arch.Page4K)
	if hbase, size, ok := n.Lookup(0x1000); !ok || hbase != 0xa000 || size != arch.Page4K {
		t.Fatalf("lookup = %#x,%v,%v", uint64(hbase), size, ok)
	}
	// Any offset within the cached mapping's page hits.
	if _, _, ok := n.Lookup(0x1ff8); !ok {
		t.Error("interior offset missed")
	}
	if _, _, ok := n.Lookup(0x2000); ok {
		t.Error("neighbouring page hit")
	}

	// A 2MB mapping covers all its 4KB chunks.
	n.Insert(0x20_0000, 0x40_0000, arch.Page2M)
	if hbase, size, ok := n.Lookup(0x20_0000 + 0x5432); !ok || hbase != 0x40_0000 || size != arch.Page2M {
		t.Fatalf("2MB lookup = %#x,%v,%v", uint64(hbase), size, ok)
	}
}

func TestNTLBLRUEviction(t *testing.T) {
	n := NewNTLB(2)
	n.Insert(0x1000, 0xa000, arch.Page4K)
	n.Insert(0x2000, 0xb000, arch.Page4K)
	n.Lookup(0x1000) // make 0x1000 the MRU
	n.Insert(0x3000, 0xc000, arch.Page4K)
	if _, _, ok := n.Lookup(0x2000); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, _, ok := n.Lookup(0x1000); !ok {
		t.Error("MRU entry was evicted")
	}
	if n.Live() != 2 {
		t.Errorf("live = %d, want 2", n.Live())
	}
}

func TestNTLBDisabledAndFlush(t *testing.T) {
	off := NewNTLB(0)
	off.Insert(0x1000, 0xa000, arch.Page4K)
	if _, _, ok := off.Lookup(0x1000); ok {
		t.Error("0-entry nTLB cached something")
	}

	n := NewNTLB(4)
	n.Insert(0x1000, 0xa000, arch.Page4K)
	n.Flush()
	if n.Live() != 0 {
		t.Errorf("live after flush = %d", n.Live())
	}
}

// TestNestedFlushScopes pins the cache-retention contract: FlushGuest
// (guest context switch) keeps the EPT dimension warm, Flush (EPTP
// change) drops everything.
func TestNestedFlushScopes(t *testing.T) {
	g := arch.DefaultSystem().PSC
	nc := NewNested(g, g, 8)
	nc.Guest.Insert(arch.LevelPD, 0x1000_0000, 0xa000)
	nc.EPT.Insert(arch.LevelPD, 0x2000_0000, 0xb000)
	nc.NTLB.Insert(0x3000, 0xc000, arch.Page4K)

	nc.FlushGuest()
	if nc.Guest.Live(arch.LevelPD) != 0 {
		t.Error("FlushGuest kept guest PSC entries")
	}
	if nc.EPT.Live(arch.LevelPD) != 1 || nc.NTLB.Live() != 1 {
		t.Error("FlushGuest dropped EPT-dimension state")
	}

	nc.Flush()
	if nc.EPT.Live(arch.LevelPD) != 0 || nc.NTLB.Live() != 0 {
		t.Error("Flush kept EPT-dimension state")
	}
}
