package mmucache

import (
	"testing"

	"atscale/internal/arch"
)

const cr3 = arch.PAddr(0x1000)

func newPSC() *PSC {
	return New(arch.PSCGeometry{PML4Entries: 2, PDPTEntries: 4, PDEntries: 8})
}

func TestColdLookupStartsAtRoot(t *testing.T) {
	p := newPSC()
	level, base := p.LookupDeepest(0x12345678, arch.LevelPT, cr3)
	if level != arch.LevelPML4 || base != cr3 {
		t.Fatalf("cold = %v, %#x; want PML4, cr3", level, uint64(base))
	}
}

func TestDeepestHitWins(t *testing.T) {
	p := newPSC()
	va := arch.VAddr(0x7f00_1234_5000)
	p.Insert(arch.LevelPML4, va, 0x2000) // PDPT base
	p.Insert(arch.LevelPDPT, va, 0x3000) // PD base
	p.Insert(arch.LevelPD, va, 0x4000)   // PT base

	level, base := p.LookupDeepest(va, arch.LevelPT, cr3)
	if level != arch.LevelPT || base != 0x4000 {
		t.Fatalf("deepest = %v, %#x; want PT, 0x4000", level, uint64(base))
	}
}

func TestLeafLevelExcludesPDECacheFor2M(t *testing.T) {
	p := newPSC()
	va := arch.VAddr(0x7f00_1234_5000)
	p.Insert(arch.LevelPD, va, 0x4000)
	p.Insert(arch.LevelPDPT, va, 0x3000)
	// For a 2MB walk the PDE itself is the leaf; the PDE cache must not
	// be consulted, so the PDPTE cache supplies the PD base.
	level, base := p.LookupDeepest(va, arch.LevelPD, cr3)
	if level != arch.LevelPD || base != 0x3000 {
		t.Fatalf("2M walk start = %v, %#x; want PD, 0x3000", level, uint64(base))
	}
}

func TestPrefixGranularity(t *testing.T) {
	p := newPSC()
	va := arch.VAddr(0x40000000) // PDPT index 1
	p.Insert(arch.LevelPD, va, 0x4000)
	// Same 2MB region -> hit.
	if level, base := p.LookupDeepest(va+0x1FF000, arch.LevelPT, cr3); level != arch.LevelPT || base != 0x4000 {
		t.Errorf("same-2MB lookup = %v, %#x", level, uint64(base))
	}
	// Next 2MB region -> the PDE cache must miss.
	if level, _ := p.LookupDeepest(va+0x200000, arch.LevelPT, cr3); level == arch.LevelPT {
		t.Error("PDE cache hit leaked across 2MB boundary")
	}
}

func TestLRUEviction(t *testing.T) {
	p := New(arch.PSCGeometry{PML4Entries: 2, PDPTEntries: 2, PDEntries: 2})
	va := func(i uint64) arch.VAddr { return arch.VAddr(i << arch.PageShift2M) }
	p.Insert(arch.LevelPD, va(0), 0x1000)
	p.Insert(arch.LevelPD, va(1), 0x2000)
	p.LookupDeepest(va(0), arch.LevelPT, cr3) // refresh 0
	p.Insert(arch.LevelPD, va(2), 0x3000)     // evicts 1
	if level, _ := p.LookupDeepest(va(1), arch.LevelPT, cr3); level == arch.LevelPT {
		t.Error("LRU victim survived")
	}
	if level, _ := p.LookupDeepest(va(0), arch.LevelPT, cr3); level != arch.LevelPT {
		t.Error("refreshed entry evicted")
	}
}

func TestReinsertUpdates(t *testing.T) {
	p := newPSC()
	va := arch.VAddr(0)
	p.Insert(arch.LevelPD, va, 0x1000)
	p.Insert(arch.LevelPD, va, 0x2000)
	if p.Live(arch.LevelPD) != 1 {
		t.Errorf("reinsert duplicated: live=%d", p.Live(arch.LevelPD))
	}
	if _, base := p.LookupDeepest(va, arch.LevelPT, cr3); base != 0x2000 {
		t.Errorf("stale base %#x", uint64(base))
	}
}

func TestInvalidatePrefix(t *testing.T) {
	p := newPSC()
	va := arch.VAddr(0x200000)
	p.Insert(arch.LevelPD, va, 0x1000)
	p.InvalidatePrefix(arch.LevelPD, va)
	if level, _ := p.LookupDeepest(va, arch.LevelPT, cr3); level == arch.LevelPT {
		t.Error("entry survived invalidation")
	}
}

func TestFlush(t *testing.T) {
	p := newPSC()
	p.Insert(arch.LevelPD, 0, 0x1000)
	p.Insert(arch.LevelPDPT, 0, 0x2000)
	p.Insert(arch.LevelPML4, 0, 0x3000)
	p.Flush()
	for l := arch.LevelPD; l <= arch.LevelPML4; l++ {
		if p.Live(l) != 0 {
			t.Errorf("level %v has %d live entries after flush", l, p.Live(l))
		}
	}
}

func TestCapacityBound(t *testing.T) {
	p := New(arch.PSCGeometry{PML4Entries: 2, PDPTEntries: 4, PDEntries: 8})
	for i := uint64(0); i < 100; i++ {
		p.Insert(arch.LevelPD, arch.VAddr(i<<arch.PageShift2M), arch.PAddr(i<<12))
	}
	if p.Live(arch.LevelPD) > 8 {
		t.Errorf("PDE cache overflow: %d live", p.Live(arch.LevelPD))
	}
}

func TestIgnoredLevels(t *testing.T) {
	p := newPSC()
	// Leaf-level inserts must be dropped silently.
	p.Insert(arch.LevelPT, 0x1000, 0x9000)
	p.InvalidatePrefix(arch.LevelPT, 0x1000)
}

func TestZeroSizedCachesNeverHit(t *testing.T) {
	p := New(arch.PSCGeometry{}) // all caches disabled
	va := arch.VAddr(0x200000)
	p.Insert(arch.LevelPD, va, 0x1000)
	p.Insert(arch.LevelPDPT, va, 0x2000)
	p.Insert(arch.LevelPML4, va, 0x3000)
	level, base := p.LookupDeepest(va, arch.LevelPT, cr3)
	if level != arch.LevelPML4 || base != cr3 {
		t.Errorf("disabled PSCs produced a hit: %v %#x", level, uint64(base))
	}
}

func TestFiveLevelPSC(t *testing.T) {
	p := NewWithDepth(arch.PSCGeometry{PML5Entries: 2, PML4Entries: 2, PDPTEntries: 2, PDEntries: 2}, 5)
	va := arch.VAddr(uint64(5) << 50)
	p.Insert(arch.LevelPML5, va, 0x9000)
	level, base := p.LookupDeepest(va, arch.LevelPT, cr3)
	if level != arch.LevelPML4 || base != 0x9000 {
		t.Errorf("PML5 cache miss: %v %#x", level, uint64(base))
	}
	// Cold 5-level lookup starts at PML5.
	level, base = p.LookupDeepest(arch.VAddr(1<<52), arch.LevelPT, cr3)
	if level != arch.LevelPML5 || base != cr3 {
		t.Errorf("cold 5-level start = %v %#x", level, uint64(base))
	}
}
