// Package pagetable implements the x86-64 4-level radix page table inside
// the simulated physical memory. Table pages are real frames and entries are
// real 8-byte words, so the hardware walker model reads the same bytes the
// OS wrote, and PTE loads occupy real cache lines in the simulated cache
// hierarchy — the property the paper's Figure 8 (PTE hit location) and the
// TLB filtering effect depend on.
package pagetable

import "atscale/internal/arch"

// PTE is one page-table entry in x86-64 long-mode format.
type PTE uint64

// Architectural PTE flag bits (subset the simulator uses).
const (
	// FlagPresent marks the entry valid.
	FlagPresent PTE = 1 << 0
	// FlagWrite permits stores through the mapping.
	FlagWrite PTE = 1 << 1
	// FlagUser permits user-mode access.
	FlagUser PTE = 1 << 2
	// FlagAccessed is set by the walker on use.
	FlagAccessed PTE = 1 << 5
	// FlagDirty is set by the walker on store.
	FlagDirty PTE = 1 << 6
	// FlagPS marks a PD or PDPT entry as a superpage leaf.
	FlagPS PTE = 1 << 7
)

// frameMask selects the physical-frame bits of an entry (bits 12..51).
const frameMask PTE = 0x000F_FFFF_FFFF_F000

// Present reports whether the entry is valid.
func (e PTE) Present() bool { return e&FlagPresent != 0 }

// Superpage reports whether the entry is a 2 MB/1 GB leaf (only meaningful
// at the PD and PDPT levels).
func (e PTE) Superpage() bool { return e&FlagPS != 0 }

// IsLeaf reports whether the entry terminates a walk at the given level.
func (e PTE) IsLeaf(level arch.Level) bool {
	return level == arch.LevelPT || e.Superpage()
}

// Frame returns the physical address the entry points at: the mapped frame
// for a leaf, the next-level table page otherwise.
func (e PTE) Frame() arch.PAddr { return arch.PAddr(e & frameMask) }

// makePTE builds an entry pointing at pa with the given flags.
func makePTE(pa arch.PAddr, flags PTE) PTE {
	return PTE(pa)&frameMask | flags | FlagPresent
}
