package pagetable

import (
	"math/rand"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/mem"
)

func newHashed(t *testing.T) (*HashedTable, *mem.Phys) {
	t.Helper()
	phys := mem.NewPhys(64 * arch.GB)
	ht, err := NewHashed(phys, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return ht, phys
}

func TestHashedMapLookupUnmap(t *testing.T) {
	ht, phys := newHashed(t)
	frame, _ := phys.AllocPage(arch.Page4K)
	va := arch.VAddr(0x7f00_1234_5000)
	if err := ht.Map(va, frame, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	pa, ps, ok := ht.Lookup(va + 0x123)
	if !ok || ps != arch.Page4K || pa != frame+0x123 {
		t.Fatalf("Lookup = %#x,%v,%v", uint64(pa), ps, ok)
	}
	if err := ht.Unmap(va, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ht.Lookup(va); ok {
		t.Error("lookup after unmap hit")
	}
	// The tombstoned slot must be reusable.
	if err := ht.Map(va, frame, arch.Page4K); err != nil {
		t.Errorf("remap after unmap: %v", err)
	}
}

func TestHashedRejectsSuperpagesAndMisalignment(t *testing.T) {
	ht, phys := newHashed(t)
	f2m, _ := phys.AllocPage(arch.Page2M)
	if err := ht.Map(0x200000, f2m, arch.Page2M); err == nil {
		t.Error("2MB map accepted")
	}
	f4k, _ := phys.AllocPage(arch.Page4K)
	if err := ht.Map(0x1001, f4k, arch.Page4K); err == nil {
		t.Error("misaligned map accepted")
	}
	if err := ht.Map(arch.VAddr(1<<50), f4k, arch.Page4K); err == nil {
		t.Error("non-canonical map accepted")
	}
}

func TestHashedDoubleMapFails(t *testing.T) {
	ht, phys := newHashed(t)
	f, _ := phys.AllocPage(arch.Page4K)
	if err := ht.Map(0x1000, f, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := ht.Map(0x1000, f, arch.Page4K); err == nil {
		t.Error("double map accepted")
	}
}

func TestHashedUnmapMissingFails(t *testing.T) {
	ht, _ := newHashed(t)
	if err := ht.Unmap(0x4000, arch.Page4K); err == nil {
		t.Error("unmap of absent page accepted")
	}
}

// TestHashedGrowthPreservesMappings inserts far more pages than the
// initial capacity, forcing several rehashes, and verifies every mapping
// against a host oracle.
func TestHashedGrowthPreservesMappings(t *testing.T) {
	ht, phys := newHashed(t) // starts at one-segment capacity
	rng := rand.New(rand.NewSource(15))
	oracle := map[arch.VAddr]arch.PAddr{}
	startBytes := ht.TableBytes()
	for i := 0; i < 300_000; i++ {
		vpn := uint64(rng.Int63n(1 << 30))
		va := arch.VAddr(vpn << 12)
		if _, dup := oracle[va]; dup {
			continue
		}
		frame, err := phys.AllocPage(arch.Page4K)
		if err != nil {
			t.Fatal(err)
		}
		if err := ht.Map(va, frame, arch.Page4K); err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
		oracle[va] = frame
	}
	if ht.TableBytes() <= startBytes {
		t.Error("table never grew")
	}
	if ht.Mappings(arch.Page4K) != uint64(len(oracle)) {
		t.Errorf("live = %d, oracle %d", ht.Mappings(arch.Page4K), len(oracle))
	}
	for va, frame := range oracle {
		pa, _, ok := ht.Lookup(va)
		if !ok || pa != frame {
			t.Fatalf("Lookup(%#x) = %#x,%v; want %#x", uint64(va), uint64(pa), ok, uint64(frame))
		}
	}
}

func TestHashedChurnWithTombstones(t *testing.T) {
	ht, phys := newHashed(t)
	rng := rand.New(rand.NewSource(16))
	oracle := map[arch.VAddr]arch.PAddr{}
	var keys []arch.VAddr
	for i := 0; i < 60_000; i++ {
		if len(keys) > 0 && rng.Intn(3) == 0 {
			// Unmap a random live page.
			j := rng.Intn(len(keys))
			va := keys[j]
			if err := ht.Unmap(va, arch.Page4K); err != nil {
				t.Fatal(err)
			}
			delete(oracle, va)
			keys[j] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			continue
		}
		va := arch.VAddr(uint64(rng.Int63n(1<<24)) << 12)
		if _, dup := oracle[va]; dup {
			continue
		}
		frame, err := phys.AllocPage(arch.Page4K)
		if err != nil {
			t.Fatal(err)
		}
		if err := ht.Map(va, frame, arch.Page4K); err != nil {
			t.Fatal(err)
		}
		oracle[va] = frame
		keys = append(keys, va)
	}
	for va, frame := range oracle {
		pa, _, ok := ht.Lookup(va)
		if !ok || pa != frame {
			t.Fatalf("post-churn Lookup(%#x) = %#x,%v; want %#x", uint64(va), uint64(pa), ok, uint64(frame))
		}
	}
}

func TestHashedInterfaceContract(t *testing.T) {
	ht, _ := newHashed(t)
	if ht.Superpages() {
		t.Error("hashed table claims superpages")
	}
	if err := ht.Collapse(0x200000); err == nil {
		t.Error("collapse accepted")
	}
	if !ht.Canonical(arch.VAddr(1<<47)) || ht.Canonical(arch.VAddr(1<<48)) {
		t.Error("canonicality wrong")
	}
	if ht.TableBytes() == 0 || ht.Root() == 0 {
		t.Error("table accessors degenerate")
	}
}
