package pagetable

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/mem"
)

// Table is one address space's radix page table. The OS layer calls Map and
// Unmap; the hardware walker reads entries through EntryAddr + the physical
// memory, exactly as a real MMU reads the tables the OS maintains.
//
// The table is built over a mem.Memory, not *mem.Phys directly: over host
// physical memory it is a native table (or an EPT); over the
// guest-physical memory of internal/virt its table pages — root included —
// are guest-physical addresses, which is what makes nested walks walk the
// EPT once per guest level.
type Table struct {
	phys   mem.Memory
	root   arch.PAddr
	top    arch.Level // radix root level (PML4 or PML5)
	levels int

	tablePages uint64 // number of table pages allocated (all levels)
	mappings   [arch.NumPageSizes]uint64
}

// New allocates an empty 4-level page table (just the PML4 root page).
func New(phys mem.Memory) (*Table, error) { return NewWithDepth(phys, 4) }

// NewWithDepth allocates an empty page table with the given radix depth
// (4 for classic x86-64, 5 for LA57).
func NewWithDepth(phys mem.Memory, levels int) (*Table, error) {
	top := arch.RootLevel(levels) // panics on unsupported depth
	root, err := phys.AllocPage(arch.Page4K)
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating root: %w", err)
	}
	return &Table{phys: phys, root: root, top: top, levels: levels, tablePages: 1}, nil
}

// Reset discards every mapping and re-allocates the root page, returning
// the table to its just-constructed state. The caller must have reset the
// underlying physical memory first: the old table pages are assumed gone,
// and with the allocator's bump pointer rewound the new root lands at the
// same physical address a fresh table's would — which is what keeps a
// renewed machine byte-identical to a newly built one.
func (t *Table) Reset() error {
	root, err := t.phys.AllocPage(arch.Page4K)
	if err != nil {
		return fmt.Errorf("pagetable: reallocating root: %w", err)
	}
	t.root = root
	t.tablePages = 1
	t.mappings = [arch.NumPageSizes]uint64{}
	return nil
}

// Depth returns the radix depth (4 or 5).
func (t *Table) Depth() int { return t.levels }

// Canonical reports whether va is representable at this table's depth.
func (t *Table) Canonical(va arch.VAddr) bool { return arch.CanonicalAt(va, t.levels) }

// Superpages reports that radix tables support 2 MB/1 GB leaves.
func (t *Table) Superpages() bool { return true }

// Top returns the root level (PML4 or PML5).
func (t *Table) Top() arch.Level { return t.top }

// Root returns the physical address of the PML4 page (the CR3 value).
func (t *Table) Root() arch.PAddr { return t.root }

// TableBytes returns the physical memory consumed by table pages. The
// paper's §V-E argues 2 MB mappings of terabyte heaps still accumulate
// megabytes of PTEs; this accessor exposes that quantity.
func (t *Table) TableBytes() uint64 { return t.tablePages * arch.Page4K.Bytes() }

// Mappings returns the number of live leaf mappings of the given size.
func (t *Table) Mappings(ps arch.PageSize) uint64 { return t.mappings[ps] }

// EntryAddr computes the physical address of the entry consulted at the
// given level of a walk for va, inside the table page at base.
func EntryAddr(base arch.PAddr, level arch.Level, va arch.VAddr) arch.PAddr {
	return base + arch.PAddr(level.Index(va)*arch.PTESize)
}

// entry reads the PTE for va at the given level of the table page at base.
func (t *Table) entry(base arch.PAddr, level arch.Level, va arch.VAddr) PTE {
	return PTE(t.phys.Read64(EntryAddr(base, level, va)))
}

func (t *Table) setEntry(base arch.PAddr, level arch.Level, va arch.VAddr, e PTE) {
	t.phys.Write64(EntryAddr(base, level, va), uint64(e))
}

// Map installs a translation va -> pa of the given page size. Both
// addresses must be aligned to the page size. Mapping over an existing
// translation (of any size) is an error.
func (t *Table) Map(va arch.VAddr, pa arch.PAddr, ps arch.PageSize) error {
	if !arch.CanonicalAt(va, t.levels) {
		return fmt.Errorf("pagetable: non-canonical va %#x", uint64(va))
	}
	if !arch.IsAligned(uint64(va), ps.Bytes()) || !arch.IsAligned(uint64(pa), ps.Bytes()) {
		return fmt.Errorf("pagetable: Map(%#x -> %#x) misaligned for %s", uint64(va), uint64(pa), ps)
	}
	leaf := ps.LeafLevel()
	base := t.root
	for level := t.top; level > leaf; level-- {
		e := t.entry(base, level, va)
		switch {
		case !e.Present():
			page, err := t.phys.AllocPage(arch.Page4K)
			if err != nil {
				return fmt.Errorf("pagetable: allocating level-%v table: %w", level-1, err)
			}
			t.tablePages++
			e = makePTE(page, FlagWrite|FlagUser)
			t.setEntry(base, level, va, e)
		case e.Superpage():
			return fmt.Errorf("pagetable: Map(%#x, %s) conflicts with existing %v superpage", uint64(va), ps, level)
		}
		base = e.Frame()
	}
	e := t.entry(base, leaf, va)
	if e.Present() {
		return fmt.Errorf("pagetable: va %#x already mapped", uint64(va))
	}
	flags := FlagWrite | FlagUser
	if leaf != arch.LevelPT {
		flags |= FlagPS
	}
	t.setEntry(base, leaf, va, makePTE(pa, flags))
	t.mappings[ps]++
	return nil
}

// Unmap removes the translation for va, which must have been mapped with
// the same page size. Intermediate table pages are retained (as mainstream
// OS kernels do), so unmap does not shrink TableBytes.
func (t *Table) Unmap(va arch.VAddr, ps arch.PageSize) error {
	leaf := ps.LeafLevel()
	base := t.root
	for level := t.top; level > leaf; level-- {
		e := t.entry(base, level, va)
		if !e.Present() || e.Superpage() {
			return fmt.Errorf("pagetable: Unmap(%#x, %s): no %s-level table", uint64(va), ps, level-1)
		}
		base = e.Frame()
	}
	e := t.entry(base, leaf, va)
	if !e.Present() || e.IsLeaf(leaf) != true {
		return fmt.Errorf("pagetable: Unmap(%#x, %s): not mapped", uint64(va), ps)
	}
	if leaf != arch.LevelPT && !e.Superpage() {
		return fmt.Errorf("pagetable: Unmap(%#x, %s): entry is a table pointer", uint64(va), ps)
	}
	t.setEntry(base, leaf, va, 0)
	t.mappings[ps]--
	return nil
}

// Collapse removes the empty page-table page covering va's 2 MB block and
// clears the PDE pointing at it, freeing the table page. It is the final
// page-table step of hugepage promotion: the caller must have unmapped
// all 512 base pages first (Collapse verifies this).
func (t *Table) Collapse(va arch.VAddr) error {
	base := t.root
	for level := t.top; level > arch.LevelPD; level-- {
		e := t.entry(base, level, va)
		if !e.Present() || e.Superpage() {
			return fmt.Errorf("pagetable: Collapse(%#x): no PD reached", uint64(va))
		}
		base = e.Frame()
	}
	pde := t.entry(base, arch.LevelPD, va)
	if !pde.Present() {
		return fmt.Errorf("pagetable: Collapse(%#x): PDE not present", uint64(va))
	}
	if pde.Superpage() {
		return fmt.Errorf("pagetable: Collapse(%#x): already a superpage", uint64(va))
	}
	ptPage := pde.Frame()
	for i := 0; i < arch.EntriesPerTable; i++ {
		if t.phys.Read64(ptPage+arch.PAddr(i*arch.PTESize)) != 0 {
			return fmt.Errorf("pagetable: Collapse(%#x): PT entry %d still live", uint64(va), i)
		}
	}
	t.setEntry(base, arch.LevelPD, va, 0)
	t.phys.FreePage(ptPage, arch.Page4K)
	t.tablePages--
	return nil
}

// Lookup performs a software reference walk and returns the physical
// address va translates to plus the mapping's page size. ok is false if va
// is unmapped. This is the correctness oracle the hardware walker model is
// property-tested against.
func (t *Table) Lookup(va arch.VAddr) (pa arch.PAddr, ps arch.PageSize, ok bool) {
	if !arch.CanonicalAt(va, t.levels) {
		return 0, 0, false
	}
	base := t.root
	for level := t.top; ; level-- {
		e := t.entry(base, level, va)
		if !e.Present() {
			return 0, 0, false
		}
		if e.IsLeaf(level) {
			switch level {
			case arch.LevelPT:
				ps = arch.Page4K
			case arch.LevelPD:
				ps = arch.Page2M
			case arch.LevelPDPT:
				ps = arch.Page1G
			default:
				return 0, 0, false // 512GB leaves do not exist on x86-64
			}
			return e.Frame() + arch.PAddr(uint64(va)&ps.Mask()), ps, true
		}
		base = e.Frame()
	}
}
