package pagetable

import (
	"testing"

	"atscale/internal/arch"
	"atscale/internal/mem"
)

func newTable5(t *testing.T) (*Table, *mem.Phys) {
	t.Helper()
	phys := mem.NewPhys(64 * arch.GB)
	pt, err := NewWithDepth(phys, 5)
	if err != nil {
		t.Fatal(err)
	}
	return pt, phys
}

func TestLA57MapLookupHighVA(t *testing.T) {
	pt, phys := newTable5(t)
	// A VA above the 48-bit boundary: only reachable with 5 levels.
	va := arch.VAddr(uint64(3)<<52 | 0x1234_5000)
	frame, _ := phys.AllocPage(arch.Page4K)
	if err := pt.Map(va, frame, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	pa, ps, ok := pt.Lookup(va + 0x42)
	if !ok || ps != arch.Page4K || pa != frame+0x42 {
		t.Fatalf("LA57 lookup = %#x,%v,%v", uint64(pa), ps, ok)
	}
}

func TestLA57RejectsAbove57Bits(t *testing.T) {
	pt, phys := newTable5(t)
	frame, _ := phys.AllocPage(arch.Page4K)
	if err := pt.Map(arch.VAddr(1<<57), frame, arch.Page4K); err == nil {
		t.Error("non-canonical 57-bit VA accepted")
	}
}

func TestFourLevelRejectsHighVA(t *testing.T) {
	phys := mem.NewPhys(64 * arch.GB)
	pt, err := New(phys)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := phys.AllocPage(arch.Page4K)
	if err := pt.Map(arch.VAddr(1<<50), frame, arch.Page4K); err == nil {
		t.Error("4-level table accepted a 50-bit VA")
	}
}

func TestLA57TableOverheadOneExtraLevel(t *testing.T) {
	pt4, phys4 := newTable(t)
	pt5, phys5 := newTable5(t)
	f4, _ := phys4.AllocPage(arch.Page4K)
	f5, _ := phys5.AllocPage(arch.Page4K)
	if err := pt4.Map(0x1000, f4, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := pt5.Map(0x1000, f5, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if pt5.TableBytes() != pt4.TableBytes()+4096 {
		t.Errorf("5-level table bytes %d, want 4-level %d + 4096",
			pt5.TableBytes(), pt4.TableBytes())
	}
}

func TestLA57SuperpagesStillWork(t *testing.T) {
	pt, phys := newTable5(t)
	frame, _ := phys.AllocPage(arch.Page1G)
	va := arch.VAddr(uint64(7) << 50)
	if err := pt.Map(va, frame, arch.Page1G); err != nil {
		t.Fatal(err)
	}
	pa, ps, ok := pt.Lookup(va + 12345*8)
	if !ok || ps != arch.Page1G || pa != frame+12345*8 {
		t.Fatalf("LA57 1GB lookup = %#x,%v,%v", uint64(pa), ps, ok)
	}
}

func TestDepthAccessors(t *testing.T) {
	pt4, _ := newTable(t)
	pt5, _ := newTable5(t)
	if pt4.Depth() != 4 || pt4.Top() != arch.LevelPML4 {
		t.Error("4-level accessors wrong")
	}
	if pt5.Depth() != 5 || pt5.Top() != arch.LevelPML5 {
		t.Error("5-level accessors wrong")
	}
}
