package pagetable

import (
	"fmt"

	"atscale/internal/arch"
	"atscale/internal/mem"
)

// HashedTable is a clustered hashed page table — the "alternative page
// table data structure" family the paper's discussion points at (hashed
// and cuckoo designs such as Skarlatos et al.'s elastic cuckoo page
// tables). A translation is one hash computation plus a short linear
// probe over cache-line-sized clusters, so walk length does not grow with
// the radix depth — removing the log M component of translation overhead.
//
// Clustering is what makes the structure competitive: one 64-byte cluster
// holds the translations of four consecutive pages (a tag plus four frame
// words), so adjacent-page translations share a cache line just as radix
// PTEs do. Naive one-slot-per-VPN hashing scatters neighbours across the
// table and makes every walk a cold DRAM access — the classic criticism
// of hashed page tables that clustered/ECPT designs answer.
//
// Clusters live in simulated physical memory (2 MB table segments), so
// probes occupy real cache lines exactly like radix PTE loads. The table
// maps 4 KB pages only: mixing page sizes requires parallel per-size
// tables or cuckoo ways, which this model omits (the comparison
// experiment runs 4 KB heaps).
type HashedTable struct {
	phys mem.Memory

	// segments are the 2 MB physical chunks holding clusters.
	segments []arch.PAddr
	clusters uint64 // total cluster count (power of two)
	occupied uint64 // clusters holding >=1 live entry
	tombs    uint64
	live     uint64 // live page translations
}

// Cluster layout: 8 words = 64 bytes = one cache line.
//
//	word 0:    tag = (vpn >> 2) + 2  (0 = empty, 1 = tombstone)
//	words 1-4: frame | FlagPresent for vpn&3 == 0..3 (0 = hole)
//	words 5-7: padding
const (
	clusterBytes = arch.CacheLineSize
	clusterSpan  = 4 // consecutive VPNs per cluster
	tagEmpty     = 0
	tagTomb      = 1
	tagBias      = 2
)

// hashedSeed scrambles cluster groups; fixed so layouts are reproducible.
const hashedSeed = 0x9E3779B97F4A7C15

// MaxProbe bounds a lookup's linear probe in clusters. The resize policy
// keeps the load factor low enough that real chains stay far shorter.
const MaxProbe = 16

// clustersPerSegment is how many clusters one 2 MB segment holds.
const clustersPerSegment = (2 * arch.MB) / clusterBytes

// NewHashed creates a hashed page table with capacity for at least
// initialSlots page translations (rounded up to whole 2 MB segments).
func NewHashed(phys mem.Memory, initialSlots uint64) (*HashedTable, error) {
	n := uint64(clustersPerSegment)
	for n*clusterSpan < initialSlots {
		n *= 2
	}
	t := &HashedTable{phys: phys}
	if err := t.addSegments(n); err != nil {
		return nil, err
	}
	t.clusters = n
	return t, nil
}

func (t *HashedTable) addSegments(totalClusters uint64) error {
	need := int(totalClusters / clustersPerSegment)
	for len(t.segments) < need {
		seg, err := t.phys.AllocPage(arch.Page2M)
		if err != nil {
			return fmt.Errorf("pagetable: hashed segment: %w", err)
		}
		t.segments = append(t.segments, seg)
	}
	return nil
}

// ClusterAddr returns the physical address of cluster i — the line a
// hardware hashed-walker loads.
func (t *HashedTable) ClusterAddr(i uint64) arch.PAddr {
	return t.segments[i/clustersPerSegment] + arch.PAddr(i%clustersPerSegment*clusterBytes)
}

// HashGroup returns the starting cluster for a VPN's group (vpn >> 2).
func (t *HashedTable) HashGroup(group uint64) uint64 {
	h := group * hashedSeed
	h ^= h >> 29
	return h & (t.clusters - 1)
}

// Clusters returns the current table size in clusters.
func (t *HashedTable) Clusters() uint64 { return t.clusters }

func (t *HashedTable) readTag(i uint64) uint64 {
	return t.phys.Read64(t.ClusterAddr(i))
}

func (t *HashedTable) frameAddr(i uint64, sub uint64) arch.PAddr {
	return t.ClusterAddr(i) + arch.PAddr(8+sub*8)
}

// findCluster probes for the cluster holding group, returning its index.
func (t *HashedTable) findCluster(group uint64) (uint64, bool) {
	h := t.HashGroup(group)
	tag := group + tagBias
	for p := uint64(0); p < MaxProbe; p++ {
		i := (h + p) & (t.clusters - 1)
		switch t.readTag(i) {
		case tag:
			return i, true
		case tagEmpty:
			return 0, false
		}
	}
	return 0, false
}

// Map installs a 4 KB translation. Superpages are unsupported.
func (t *HashedTable) Map(va arch.VAddr, pa arch.PAddr, ps arch.PageSize) error {
	if ps != arch.Page4K {
		return fmt.Errorf("pagetable: hashed table maps 4KB pages only, got %s", ps)
	}
	if !arch.Canonical(va) {
		return fmt.Errorf("pagetable: non-canonical va %#x", uint64(va))
	}
	if !arch.IsAligned(uint64(va), ps.Bytes()) || !arch.IsAligned(uint64(pa), ps.Bytes()) {
		return fmt.Errorf("pagetable: Map(%#x -> %#x) misaligned", uint64(va), uint64(pa))
	}
	// Grow before density threatens the probe bound.
	if (t.occupied+t.tombs)*10 >= t.clusters*6 {
		if err := t.grow(); err != nil {
			return err
		}
	}
	vpn := arch.PageNumber(va, arch.Page4K)
	group, sub := vpn/clusterSpan, vpn%clusterSpan
	tag := group + tagBias
	h := t.HashGroup(group)
	insert := int64(-1)
	for p := uint64(0); p < MaxProbe; p++ {
		i := (h + p) & (t.clusters - 1)
		switch t.readTag(i) {
		case tag:
			if t.phys.Read64(t.frameAddr(i, sub)) != 0 {
				return fmt.Errorf("pagetable: va %#x already mapped", uint64(va))
			}
			t.phys.Write64(t.frameAddr(i, sub), uint64(pa)|uint64(FlagPresent))
			t.live++
			return nil
		case tagEmpty:
			if insert < 0 {
				insert = int64(i)
			}
			p = MaxProbe
		case tagTomb:
			if insert < 0 {
				insert = int64(i)
			}
		}
	}
	if insert < 0 {
		if err := t.grow(); err != nil {
			return err
		}
		return t.Map(va, pa, ps)
	}
	i := uint64(insert)
	if t.readTag(i) == tagTomb {
		t.tombs--
	}
	t.phys.Write64(t.ClusterAddr(i), tag)
	for s := uint64(0); s < clusterSpan; s++ {
		t.phys.Write64(t.frameAddr(i, s), 0)
	}
	t.phys.Write64(t.frameAddr(i, sub), uint64(pa)|uint64(FlagPresent))
	t.occupied++
	t.live++
	return nil
}

// Unmap removes a 4 KB translation; an emptied cluster becomes a
// tombstone.
func (t *HashedTable) Unmap(va arch.VAddr, ps arch.PageSize) error {
	if ps != arch.Page4K {
		return fmt.Errorf("pagetable: hashed table maps 4KB pages only, got %s", ps)
	}
	vpn := arch.PageNumber(va, arch.Page4K)
	group, sub := vpn/clusterSpan, vpn%clusterSpan
	i, ok := t.findCluster(group)
	if !ok || t.phys.Read64(t.frameAddr(i, sub)) == 0 {
		return fmt.Errorf("pagetable: Unmap(%#x): not mapped", uint64(va))
	}
	t.phys.Write64(t.frameAddr(i, sub), 0)
	t.live--
	for s := uint64(0); s < clusterSpan; s++ {
		if t.phys.Read64(t.frameAddr(i, s)) != 0 {
			return nil
		}
	}
	t.phys.Write64(t.ClusterAddr(i), tagTomb)
	t.occupied--
	t.tombs++
	return nil
}

// Lookup is the software reference walk (the hardware hashed-walker's
// correctness oracle).
func (t *HashedTable) Lookup(va arch.VAddr) (arch.PAddr, arch.PageSize, bool) {
	if !arch.Canonical(va) {
		return 0, 0, false
	}
	vpn := arch.PageNumber(va, arch.Page4K)
	i, ok := t.findCluster(vpn / clusterSpan)
	if !ok {
		return 0, 0, false
	}
	frame := t.phys.Read64(t.frameAddr(i, vpn%clusterSpan))
	if frame == 0 {
		return 0, 0, false
	}
	return arch.PAddr(frame&uint64(frameMask)) + arch.PAddr(uint64(va)&arch.Page4K.Mask()),
		arch.Page4K, true
}

// grow doubles the table and rehashes every live cluster. VA->PA data
// mappings are unchanged, so cached TLB entries stay valid; only the
// table's own physical layout moves (as in an OS hashed-table resize).
func (t *HashedTable) grow() error {
	oldClusters := t.clusters
	oldSegs := t.segments
	t.segments = nil
	if err := t.addSegments(oldClusters * 2); err != nil {
		t.segments = oldSegs
		return err
	}
	t.clusters = oldClusters * 2
	t.occupied, t.tombs, t.live = 0, 0, 0
	readOld := func(i uint64, word uint64) uint64 {
		a := oldSegs[i/clustersPerSegment] + arch.PAddr(i%clustersPerSegment*clusterBytes+word*8)
		return t.phys.Read64(a)
	}
	for i := uint64(0); i < oldClusters; i++ {
		tag := readOld(i, 0)
		if tag < tagBias {
			continue
		}
		group := tag - tagBias
		for s := uint64(0); s < clusterSpan; s++ {
			frame := readOld(i, 1+s)
			if frame == 0 {
				continue
			}
			vpn := group*clusterSpan + s
			if err := t.Map(arch.VAddr(vpn<<arch.PageShift4K),
				arch.PAddr(frame&uint64(frameMask)), arch.Page4K); err != nil {
				return fmt.Errorf("pagetable: rehash: %w", err)
			}
		}
	}
	for _, seg := range oldSegs {
		t.phys.FreePage(seg, arch.Page2M)
	}
	return nil
}

// Root returns the base of the first table segment (informational; the
// hashed walker addresses clusters through the table geometry).
func (t *HashedTable) Root() arch.PAddr { return t.segments[0] }

// TableBytes returns the physical memory the table occupies.
func (t *HashedTable) TableBytes() uint64 {
	return uint64(len(t.segments)) * arch.Page2M.Bytes()
}

// Mappings returns live 4 KB mappings (0 for superpage sizes).
func (t *HashedTable) Mappings(ps arch.PageSize) uint64 {
	if ps == arch.Page4K {
		return t.live
	}
	return 0
}

// Superpages reports that hashed tables cannot hold superpage leaves.
func (t *HashedTable) Superpages() bool { return false }

// Collapse is unsupported (no radix level to collapse).
func (t *HashedTable) Collapse(va arch.VAddr) error {
	return fmt.Errorf("pagetable: hashed table cannot collapse %#x", uint64(va))
}

// Canonical reports 48-bit canonicality (hashed tables pair with the
// 4-level address-width configuration).
func (t *HashedTable) Canonical(va arch.VAddr) bool { return arch.Canonical(va) }
