package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"atscale/internal/arch"
	"atscale/internal/mem"
)

func newTable(t *testing.T) (*Table, *mem.Phys) {
	t.Helper()
	phys := mem.NewPhys(64 * arch.GB)
	pt, err := New(phys)
	if err != nil {
		t.Fatal(err)
	}
	return pt, phys
}

func TestMapLookup4K(t *testing.T) {
	pt, phys := newTable(t)
	frame, _ := phys.AllocPage(arch.Page4K)
	va := arch.VAddr(0x7f12_3456_7000)
	if err := pt.Map(va, frame, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	pa, ps, ok := pt.Lookup(va + 0x123)
	if !ok || ps != arch.Page4K || pa != frame+0x123 {
		t.Fatalf("Lookup = %#x, %v, %v; want %#x, 4KB, true", uint64(pa), ps, ok, uint64(frame+0x123))
	}
}

func TestMapLookupSuperpages(t *testing.T) {
	pt, phys := newTable(t)
	for _, ps := range []arch.PageSize{arch.Page2M, arch.Page1G} {
		frame, err := phys.AllocPage(ps)
		if err != nil {
			t.Fatal(err)
		}
		va := arch.VAddr(uint64(0x40) << 30 * uint64(ps+1))
		va = arch.VAddr(arch.AlignUp(uint64(va), ps.Bytes()))
		if err := pt.Map(va, frame, ps); err != nil {
			t.Fatalf("Map %s: %v", ps, err)
		}
		off := ps.Bytes()/2 + 8
		pa, gotPS, ok := pt.Lookup(va + arch.VAddr(off))
		if !ok || gotPS != ps || pa != frame+arch.PAddr(off) {
			t.Fatalf("%s Lookup = %#x, %v, %v", ps, uint64(pa), gotPS, ok)
		}
	}
}

func TestLookupUnmapped(t *testing.T) {
	pt, _ := newTable(t)
	if _, _, ok := pt.Lookup(0x1000); ok {
		t.Error("Lookup of unmapped va succeeded")
	}
	if _, _, ok := pt.Lookup(arch.VAddr(1 << 50)); ok {
		t.Error("Lookup of non-canonical va succeeded")
	}
}

func TestDoubleMapFails(t *testing.T) {
	pt, phys := newTable(t)
	frame, _ := phys.AllocPage(arch.Page4K)
	va := arch.VAddr(0x1000)
	if err := pt.Map(va, frame, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(va, frame, arch.Page4K); err == nil {
		t.Error("double map succeeded")
	}
}

func TestMapMisalignedFails(t *testing.T) {
	pt, phys := newTable(t)
	frame, _ := phys.AllocPage(arch.Page2M)
	if err := pt.Map(0x1000, frame, arch.Page2M); err == nil {
		t.Error("misaligned 2MB map succeeded")
	}
	if err := pt.Map(0x200000, frame+4096, arch.Page2M); err == nil {
		t.Error("misaligned 2MB frame map succeeded")
	}
}

func TestMapUnderSuperpageFails(t *testing.T) {
	pt, phys := newTable(t)
	big, _ := phys.AllocPage(arch.Page2M)
	va := arch.VAddr(0x4000_0000)
	if err := pt.Map(va, big, arch.Page2M); err != nil {
		t.Fatal(err)
	}
	small, _ := phys.AllocPage(arch.Page4K)
	if err := pt.Map(va+4096, small, arch.Page4K); err == nil {
		t.Error("4K map under live 2MB superpage succeeded")
	}
}

func TestUnmap(t *testing.T) {
	pt, phys := newTable(t)
	frame, _ := phys.AllocPage(arch.Page4K)
	va := arch.VAddr(0x5000)
	if err := pt.Map(va, frame, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if err := pt.Unmap(va, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := pt.Lookup(va); ok {
		t.Error("Lookup succeeded after Unmap")
	}
	if err := pt.Unmap(va, arch.Page4K); err == nil {
		t.Error("double unmap succeeded")
	}
	// The slot must be remappable.
	if err := pt.Map(va, frame, arch.Page4K); err != nil {
		t.Errorf("remap after unmap: %v", err)
	}
}

func TestMappingsCount(t *testing.T) {
	pt, phys := newTable(t)
	for i := 0; i < 10; i++ {
		f, _ := phys.AllocPage(arch.Page4K)
		if err := pt.Map(arch.VAddr(0x10000+i*4096), f, arch.Page4K); err != nil {
			t.Fatal(err)
		}
	}
	if got := pt.Mappings(arch.Page4K); got != 10 {
		t.Errorf("Mappings(4K) = %d, want 10", got)
	}
	if err := pt.Unmap(0x10000, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if got := pt.Mappings(arch.Page4K); got != 9 {
		t.Errorf("Mappings(4K) after unmap = %d, want 9", got)
	}
}

func TestTableBytesGrowth(t *testing.T) {
	pt, phys := newTable(t)
	base := pt.TableBytes()
	if base != 4096 {
		t.Fatalf("fresh table bytes = %d, want 4096", base)
	}
	f, _ := phys.AllocPage(arch.Page4K)
	if err := pt.Map(0x1000, f, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	// One 4K mapping needs PDPT+PD+PT pages on top of the root.
	if got := pt.TableBytes(); got != 4*4096 {
		t.Errorf("table bytes after first 4K map = %d, want %d", got, 4*4096)
	}
	// A second mapping in the same 2MB region shares all table pages.
	f2, _ := phys.AllocPage(arch.Page4K)
	if err := pt.Map(0x2000, f2, arch.Page4K); err != nil {
		t.Fatal(err)
	}
	if got := pt.TableBytes(); got != 4*4096 {
		t.Errorf("table bytes after neighbour map = %d, want %d", got, 4*4096)
	}
}

// TestRandomMapLookupProperty maps random pages of random sizes at disjoint
// VAs and checks Lookup agrees exactly, including offsets.
func TestRandomMapLookupProperty(t *testing.T) {
	pt, phys := newTable(t)
	rng := rand.New(rand.NewSource(42))
	type mapping struct {
		va arch.VAddr
		pa arch.PAddr
		ps arch.PageSize
	}
	var maps []mapping
	// Give every mapping its own 1GB-aligned slot so sizes never collide.
	for slot := 0; slot < 40; slot++ {
		ps := arch.PageSize(rng.Intn(3))
		frame, err := phys.AllocPage(ps)
		if err != nil {
			t.Fatal(err)
		}
		va := arch.VAddr(uint64(slot+1) << arch.PageShift1G)
		if err := pt.Map(va, frame, ps); err != nil {
			t.Fatalf("Map slot %d (%v): %v", slot, ps, err)
		}
		maps = append(maps, mapping{va, frame, ps})
	}
	for _, m := range maps {
		for trial := 0; trial < 16; trial++ {
			off := rng.Uint64() % m.ps.Bytes()
			pa, ps, ok := pt.Lookup(m.va + arch.VAddr(off))
			if !ok || ps != m.ps || pa != m.pa+arch.PAddr(off) {
				t.Fatalf("Lookup(%#x+%#x) = %#x,%v,%v; want %#x,%v",
					uint64(m.va), off, uint64(pa), ps, ok, uint64(m.pa)+off, m.ps)
			}
		}
		// Just past the page must not resolve unless another mapping
		// legitimately covers that VA (the next 1GB slot does for 1GB
		// mappings).
		past := m.va + arch.VAddr(m.ps.Bytes())
		if _, _, ok := pt.Lookup(past); ok {
			covered := false
			for _, o := range maps {
				if past >= o.va && uint64(past) < uint64(o.va)+o.ps.Bytes() {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("mapping %#x leaks past its size", uint64(m.va))
			}
		}
	}
}

// TestEntryAddrWithinTablePage checks the walker-visible entry addresses
// stay inside one 4K table page and are 8-byte aligned.
func TestEntryAddrWithinTablePage(t *testing.T) {
	base := arch.PAddr(0x1234000)
	check := func(raw uint64, lvl uint8) bool {
		va := arch.VAddr(raw & ((1 << arch.VABits) - 1))
		level := arch.Level(lvl%4 + 1)
		ea := EntryAddr(base, level, va)
		return ea >= base && ea < base+4096 && ea&7 == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPTEFlags(t *testing.T) {
	e := makePTE(0x200000, FlagWrite|FlagPS)
	if !e.Present() || !e.Superpage() || e.Frame() != 0x200000 {
		t.Errorf("PTE round-trip broken: %#x", uint64(e))
	}
	if !e.IsLeaf(arch.LevelPD) {
		t.Error("PS entry at PD not a leaf")
	}
	plain := makePTE(0x3000, FlagWrite)
	if plain.IsLeaf(arch.LevelPD) {
		t.Error("non-PS entry at PD is a leaf")
	}
	if !plain.IsLeaf(arch.LevelPT) {
		t.Error("PT entry not a leaf")
	}
}
