package perf

// This file implements the paper's derived metrics: the Table VI walk
// outcome formulae, the Equation 1 WCPI decomposition, and the five
// address-translation pressure metrics compared in Table V.

// WalkOutcomes classifies initiated page table walks, computed exactly as
// the paper's Table VI prescribes.
type WalkOutcomes struct {
	// Initiated = dtlb_load_misses.miss_causes_a_walk
	//           + dtlb_store_misses.miss_causes_a_walk.
	Initiated uint64
	// Completed = dtlb_load_misses.walk_completed
	//           + dtlb_store_misses.walk_completed.
	Completed uint64
	// Retired = mem_uops_retired.stlb_miss_loads
	//         + mem_uops_retired.stlb_miss_stores.
	Retired uint64
	// Aborted = Initiated - Completed.
	Aborted uint64
	// WrongPath = Completed - Retired.
	WrongPath uint64
}

// Outcomes derives the walk outcome distribution from raw counters.
func Outcomes(c Counters) WalkOutcomes {
	o := WalkOutcomes{
		Initiated: c.Get(DTLBLoadMissWalk) + c.Get(DTLBStoreMissWalk),
		Completed: c.Get(DTLBLoadWalkCompleted) + c.Get(DTLBStoreWalkCompleted),
		Retired:   c.Get(STLBMissLoads) + c.Get(STLBMissStores),
	}
	o.Aborted = o.Initiated - o.Completed
	o.WrongPath = o.Completed - o.Retired
	return o
}

// Fractions returns the retired / wrong-path / aborted shares of initiated
// walks (the band widths of the paper's Figure 7). All zeros when no walk
// was initiated.
func (o WalkOutcomes) Fractions() (retired, wrongPath, aborted float64) {
	if o.Initiated == 0 {
		return 0, 0, 0
	}
	n := float64(o.Initiated)
	return float64(o.Retired) / n, float64(o.WrongPath) / n, float64(o.Aborted) / n
}

// Equation1 is the multiplicative decomposition of WCPI (the paper's
// Equation 1):
//
//	walk cycles   accesses   TLB misses   PTW accesses   walk cycles
//	----------- = -------- x ---------- x ------------ x -----------
//	instruction   instr.     access       PT walk        PTW access
//
// Each factor is attributed to one component: the program, the TLB, the
// MMU caches, and the cache hierarchy respectively.
type Equation1 struct {
	// AccessesPerInstruction is the program term.
	AccessesPerInstruction float64
	// TLBMissesPerAccess is the TLB term (walks per retired access).
	TLBMissesPerAccess float64
	// WalkerLoadsPerWalk is the MMU-cache term (PTW accesses per walk).
	WalkerLoadsPerWalk float64
	// CyclesPerWalkerLoad is the cache-hierarchy term (PTE hotness).
	CyclesPerWalkerLoad float64
	// WCPI is the product, computed directly from counters.
	WCPI float64
}

// Product multiplies the four factors; it equals WCPI exactly whenever all
// intermediate denominators are non-zero (property-tested).
func (e Equation1) Product() float64 {
	return e.AccessesPerInstruction * e.TLBMissesPerAccess *
		e.WalkerLoadsPerWalk * e.CyclesPerWalkerLoad
}

// Metrics bundles every derived quantity the paper plots.
type Metrics struct {
	// Instructions, Cycles, Accesses are the run denominators.
	Instructions uint64
	Cycles       uint64
	Accesses     uint64

	// CPI is cycles per retired instruction.
	CPI float64

	// WCPI is walk cycles per instruction — the paper's headline metric.
	WCPI float64
	// WalkCyclesPerAccess is walk cycles over retired accesses.
	WalkCyclesPerAccess float64
	// WalkCycleFraction is walk cycles over total cycles.
	WalkCycleFraction float64
	// TLBMissesPerKiloAccess is initiated walks per 1000 retired accesses.
	TLBMissesPerKiloAccess float64
	// TLBMissesPerKiloInstruction is initiated walks per 1000 instructions.
	TLBMissesPerKiloInstruction float64

	// Eq1 is the WCPI decomposition.
	Eq1 Equation1

	// WalkCycles is total cycles with a walk active.
	WalkCycles uint64
	// Walks is the number of initiated walks.
	Walks uint64
	// WalkerLoads is the number of PTE loads across all walks.
	WalkerLoads uint64
	// AvgWalkCycles is walk cycles per completed-or-aborted walk.
	AvgWalkCycles float64

	// STLBHitRate is the fraction of L1-TLB misses the STLB caught.
	STLBHitRate float64

	// PTELocation is the fraction of walker loads satisfied by each
	// cache level: L1, L2, L3, memory (Figure 8's bands).
	PTELocation [4]float64

	// Outcomes is the walk outcome distribution (Figure 7's bands).
	Outcomes WalkOutcomes

	// MachineClearsPerKiloInstruction feeds Figure 9.
	MachineClearsPerKiloInstruction float64
	// BranchMispredictRate is mispredicts over retired branches.
	BranchMispredictRate float64

	// The remaining fields split translation work between the guest and
	// EPT dimensions (all zero on native runs).

	// EPTWalkCycles is the host-dimension share of WalkCycles; the guest
	// share is GuestWalkCycles. The universal invariant, native runs
	// included, is WalkCycles == GuestWalkCycles + EPTWalkCycles.
	EPTWalkCycles   uint64
	GuestWalkCycles uint64
	// EPTShare is EPTWalkCycles / WalkCycles — the fraction of
	// translation time spent walking the EPT.
	EPTShare float64
	// EPTWalks is the number of EPT walks started; NTLBHitRate is the
	// fraction of gPA translations the EPT translation cache served
	// without a walk.
	EPTWalks    uint64
	NTLBHitRate float64
	// EPTWalkerLoads is the EPT-dimension share of WalkerLoads.
	EPTWalkerLoads uint64
	// EPTPTELocation is the fraction of EPT-entry loads satisfied by each
	// cache level: L1, L2, L3, memory — the host-dimension Figure 8.
	EPTPTELocation [4]float64
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Compute derives all metrics from a counter snapshot (typically a Delta
// over the measured region).
func Compute(c Counters) Metrics {
	var m Metrics
	m.Instructions = c.Get(InstRetired)
	m.Cycles = c.Get(Cycles)
	m.Accesses = c.Get(AllLoads) + c.Get(AllStores)
	m.WalkCycles = c.Get(DTLBLoadWalkDuration) + c.Get(DTLBStoreWalkDuration)
	m.Outcomes = Outcomes(c)
	m.Walks = m.Outcomes.Initiated
	// WalkerLoads totals both dimensions: guest PTE loads land in
	// page_walker_loads.dtlb_*, EPT-entry loads in the ept_dtlb_* umasks.
	// The total must include both so the Eq1 product still equals WCPI
	// (walk_duration includes EPT-walk cycles).
	m.EPTWalkerLoads = c.Get(EPTWalkerLoadsL1) + c.Get(EPTWalkerLoadsL2) +
		c.Get(EPTWalkerLoadsL3) + c.Get(EPTWalkerLoadsMem)
	m.WalkerLoads = c.Get(WalkerLoadsL1) + c.Get(WalkerLoadsL2) +
		c.Get(WalkerLoadsL3) + c.Get(WalkerLoadsMem) + m.EPTWalkerLoads

	m.CPI = ratio(m.Cycles, m.Instructions)
	m.WCPI = ratio(m.WalkCycles, m.Instructions)
	m.WalkCyclesPerAccess = ratio(m.WalkCycles, m.Accesses)
	m.WalkCycleFraction = ratio(m.WalkCycles, m.Cycles)
	m.TLBMissesPerKiloAccess = 1000 * ratio(m.Walks, m.Accesses)
	m.TLBMissesPerKiloInstruction = 1000 * ratio(m.Walks, m.Instructions)
	m.AvgWalkCycles = ratio(m.WalkCycles, m.Walks)

	stlbHits := c.Get(DTLBLoadSTLBHit) + c.Get(DTLBStoreSTLBHit)
	m.STLBHitRate = ratio(stlbHits, stlbHits+m.Walks)

	m.Eq1 = Equation1{
		AccessesPerInstruction: ratio(m.Accesses, m.Instructions),
		TLBMissesPerAccess:     ratio(m.Walks, m.Accesses),
		WalkerLoadsPerWalk:     ratio(m.WalkerLoads, m.Walks),
		CyclesPerWalkerLoad:    ratio(m.WalkCycles, m.WalkerLoads),
		WCPI:                   m.WCPI,
	}

	if m.WalkerLoads > 0 {
		// Combined over both dimensions, mirroring WalkerLoads.
		guest := [4]Event{WalkerLoadsL1, WalkerLoadsL2, WalkerLoadsL3, WalkerLoadsMem}
		ept := [4]Event{EPTWalkerLoadsL1, EPTWalkerLoadsL2, EPTWalkerLoadsL3, EPTWalkerLoadsMem}
		for i := range guest {
			m.PTELocation[i] = ratio(c.Get(guest[i])+c.Get(ept[i]), m.WalkerLoads)
		}
	}
	if m.EPTWalkerLoads > 0 {
		for i, e := range []Event{EPTWalkerLoadsL1, EPTWalkerLoadsL2, EPTWalkerLoadsL3, EPTWalkerLoadsMem} {
			m.EPTPTELocation[i] = ratio(c.Get(e), m.EPTWalkerLoads)
		}
	}

	m.EPTWalkCycles = c.Get(EPTWalkDuration)
	m.GuestWalkCycles = c.Get(DTLBLoadWalkDurationGuest) + c.Get(DTLBStoreWalkDurationGuest)
	m.EPTShare = ratio(m.EPTWalkCycles, m.WalkCycles)
	m.EPTWalks = c.Get(EPTMissWalk)
	ntlbHits := c.Get(EPTWalkSTLBHit)
	m.NTLBHitRate = ratio(ntlbHits, ntlbHits+m.EPTWalks)

	m.MachineClearsPerKiloInstruction = 1000 * ratio(c.Get(MachineClears), m.Instructions)
	m.BranchMispredictRate = ratio(c.Get(BranchMispredicts), c.Get(Branches))
	return m
}
