package perf

import (
	"bytes"
	"reflect"
	"testing"
)

func TestIntervalReaderWindows(t *testing.T) {
	src := &fakeSource{}
	src.c.Add(InstRetired, 50) // pre-existing state: stream starts here
	r, err := NewIntervalReader(src.read, 100)
	if err != nil {
		t.Fatal(err)
	}

	// Below the boundary: no row.
	src.c.Add(InstRetired, 99)
	src.c.Add(Cycles, 10)
	r.Tick(src.c.Get(InstRetired))
	if len(r.Rows()) != 0 {
		t.Fatalf("row emitted below boundary")
	}

	// Crossing (with overshoot): one row holding the whole window.
	src.c.Add(InstRetired, 7)
	src.c.Add(Cycles, 5)
	r.Tick(src.c.Get(InstRetired))
	rows := r.Rows()
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	if rows[0].InstStart != 50 || rows[0].InstEnd != 156 {
		t.Errorf("window [%d,%d], want [50,156]", rows[0].InstStart, rows[0].InstEnd)
	}
	if rows[0].Delta.Get(Cycles) != 15 || rows[0].Delta.Get(InstRetired) != 106 {
		t.Errorf("window delta wrong: %+v", rows[0].Delta)
	}

	// Flush closes the partial window; an empty flush adds nothing.
	src.c.Add(InstRetired, 1)
	r.Flush()
	r.Flush()
	rows = r.Rows()
	if len(rows) != 2 {
		t.Fatalf("%d rows after flush, want 2", len(rows))
	}
	if rows[1].InstStart != 156 || rows[1].InstEnd != 157 || rows[1].Index != 1 {
		t.Errorf("flush row wrong: %+v", rows[1])
	}
}

func TestIntervalReaderZeroInterval(t *testing.T) {
	src := &fakeSource{}
	if _, err := NewIntervalReader(src.read, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func testRows() []IntervalRow {
	var d1, d2 Counters
	d1.Add(InstRetired, 1000)
	d1.Add(DTLBLoadWalkDuration, 777)
	d2.Add(InstRetired, 1004)
	d2.Add(WalkerLoadsMem, ^uint64(0))
	return []IntervalRow{
		{Index: 0, InstStart: 0, InstEnd: 1000, Delta: d1},
		{Index: 1, InstStart: 1000, InstEnd: 2004, Delta: d2},
	}
}

func TestIntervalsCSVRoundTrip(t *testing.T) {
	want := testRows()
	var buf bytes.Buffer
	if err := WriteIntervalsCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIntervalsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("csv round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestIntervalsJSONLRoundTrip(t *testing.T) {
	want := testRows()
	var buf bytes.Buffer
	if err := WriteIntervalsJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIntervalsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("jsonl round trip:\n got %+v\nwant %+v", got, want)
	}
}
