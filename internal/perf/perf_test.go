package perf

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventNamesRoundTrip(t *testing.T) {
	for _, e := range Events() {
		got, err := ByName(e.String())
		if err != nil || got != e {
			t.Errorf("ByName(%q) = %v, %v", e.String(), got, err)
		}
	}
	//atlint:allow eventname deliberately unknown name exercising the error path
	if _, err := ByName("bogus.event"); err == nil {
		t.Error("ByName(bogus) succeeded")
	}
}

func TestEventNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]Event{}
	for _, e := range Events() {
		name := e.String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Errorf("event %d has no name", e)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("events %v and %v share name %q", prev, e, name)
		}
		seen[name] = e
	}
}

func TestCountersIncAddGet(t *testing.T) {
	var c Counters
	c.Inc(InstRetired)
	c.Add(InstRetired, 9)
	c.Add(Cycles, 25)
	if c.Get(InstRetired) != 10 || c.Get(Cycles) != 25 {
		t.Errorf("counts wrong: %d %d", c.Get(InstRetired), c.Get(Cycles))
	}
	c.Reset()
	if c.Get(InstRetired) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	var c Counters
	c.Add(Cycles, 5)
	s := c.Snapshot()
	c.Add(Cycles, 5)
	if s.Get(Cycles) != 5 {
		t.Error("snapshot mutated by later counting")
	}
}

func TestDelta(t *testing.T) {
	var c Counters
	c.Add(Cycles, 100)
	start := c.Snapshot()
	c.Add(Cycles, 50)
	c.Add(InstRetired, 20)
	d := Delta(start, c.Snapshot())
	if d.Get(Cycles) != 50 || d.Get(InstRetired) != 20 {
		t.Errorf("delta = %d cycles, %d inst", d.Get(Cycles), d.Get(InstRetired))
	}
}

func TestDeltaBackwardsPanics(t *testing.T) {
	var a, b Counters
	a.Add(Cycles, 10)
	defer func() {
		if recover() == nil {
			t.Error("Delta going backwards did not panic")
		}
	}()
	Delta(a, b)
}

func TestOutcomesTableVI(t *testing.T) {
	var c Counters
	c.Add(DTLBLoadMissWalk, 70)
	c.Add(DTLBStoreMissWalk, 30) // initiated = 100
	c.Add(DTLBLoadWalkCompleted, 60)
	c.Add(DTLBStoreWalkCompleted, 20) // completed = 80
	c.Add(STLBMissLoads, 40)
	c.Add(STLBMissStores, 10) // retired = 50
	o := Outcomes(c)
	want := WalkOutcomes{Initiated: 100, Completed: 80, Retired: 50, Aborted: 20, WrongPath: 30}
	if o != want {
		t.Errorf("Outcomes = %+v, want %+v", o, want)
	}
	r, w, a := o.Fractions()
	if r != 0.5 || w != 0.3 || a != 0.2 {
		t.Errorf("Fractions = %v %v %v", r, w, a)
	}
}

func TestOutcomesConservation(t *testing.T) {
	// Property: for any consistent counter set (completed <= initiated,
	// retired <= completed), retired + wrongPath + aborted == initiated.
	check := func(i8, c8, r8 uint8) bool {
		init := uint64(i8)
		comp := uint64(c8) % (init + 1)
		ret := uint64(r8) % (comp + 1)
		var c Counters
		c.Add(DTLBLoadMissWalk, init)
		c.Add(DTLBLoadWalkCompleted, comp)
		c.Add(STLBMissLoads, ret)
		o := Outcomes(c)
		return o.Retired+o.WrongPath+o.Aborted == o.Initiated
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroFractions(t *testing.T) {
	var o WalkOutcomes
	r, w, a := o.Fractions()
	if r != 0 || w != 0 || a != 0 {
		t.Error("zero outcomes should give zero fractions")
	}
}

// randomRunCounters builds an internally consistent counter set resembling
// a real run.
func randomRunCounters(rng *rand.Rand) Counters {
	var c Counters
	inst := uint64(rng.Intn(1_000_000) + 1000)
	loads := inst / uint64(rng.Intn(5)+2)
	stores := loads / 3
	c.Add(InstRetired, inst)
	c.Add(Cycles, inst*2)
	c.Add(AllLoads, loads)
	c.Add(AllStores, stores)
	walks := loads / uint64(rng.Intn(50)+10)
	c.Add(DTLBLoadMissWalk, walks)
	c.Add(DTLBStoreMissWalk, walks/4)
	c.Add(DTLBLoadWalkCompleted, walks*9/10)
	c.Add(DTLBStoreWalkCompleted, walks/4*9/10)
	c.Add(STLBMissLoads, walks*7/10)
	c.Add(STLBMissStores, walks/4*7/10)
	wl := walks * uint64(rng.Intn(3)+1)
	c.Add(WalkerLoadsL1, wl/2)
	c.Add(WalkerLoadsL2, wl/4)
	c.Add(WalkerLoadsL3, wl/8)
	c.Add(WalkerLoadsMem, wl-wl/2-wl/4-wl/8)
	c.Add(DTLBLoadWalkDuration, wl*30)
	c.Add(DTLBStoreWalkDuration, wl*5)
	c.Add(Branches, inst/6)
	c.Add(BranchMispredicts, inst/150)
	c.Add(MachineClears, inst/10000)
	return c
}

func TestEquation1Identity(t *testing.T) {
	// The four Eq. 1 factors must multiply to WCPI exactly (paper Eq. 1).
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 200; i++ {
		m := Compute(randomRunCounters(rng))
		if m.Walks == 0 || m.WalkerLoads == 0 {
			continue
		}
		if p := m.Eq1.Product(); math.Abs(p-m.WCPI) > 1e-12*math.Max(1, m.WCPI) {
			t.Fatalf("Eq1 product %v != WCPI %v", p, m.WCPI)
		}
	}
}

func TestComputeBasics(t *testing.T) {
	var c Counters
	c.Add(InstRetired, 1000)
	c.Add(Cycles, 2500)
	c.Add(AllLoads, 300)
	c.Add(AllStores, 100)
	c.Add(DTLBLoadMissWalk, 40)
	c.Add(DTLBLoadWalkCompleted, 40)
	c.Add(STLBMissLoads, 40)
	c.Add(DTLBLoadWalkDuration, 800)
	c.Add(WalkerLoadsL1, 50)
	c.Add(WalkerLoadsMem, 30)
	m := Compute(c)
	if m.CPI != 2.5 {
		t.Errorf("CPI = %v", m.CPI)
	}
	if m.WCPI != 0.8 {
		t.Errorf("WCPI = %v", m.WCPI)
	}
	if m.WalkCyclesPerAccess != 2.0 {
		t.Errorf("WalkCyclesPerAccess = %v", m.WalkCyclesPerAccess)
	}
	if m.WalkCycleFraction != 800.0/2500 {
		t.Errorf("WalkCycleFraction = %v", m.WalkCycleFraction)
	}
	if m.TLBMissesPerKiloAccess != 100 {
		t.Errorf("TLBMissesPerKiloAccess = %v", m.TLBMissesPerKiloAccess)
	}
	if m.TLBMissesPerKiloInstruction != 40 {
		t.Errorf("TLBMissesPerKiloInstruction = %v", m.TLBMissesPerKiloInstruction)
	}
	if m.AvgWalkCycles != 20 {
		t.Errorf("AvgWalkCycles = %v", m.AvgWalkCycles)
	}
	if m.PTELocation[0] != 50.0/80 || m.PTELocation[3] != 30.0/80 {
		t.Errorf("PTELocation = %v", m.PTELocation)
	}
}

func TestPTELocationSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		m := Compute(randomRunCounters(rng))
		if m.WalkerLoads == 0 {
			continue
		}
		sum := m.PTELocation[0] + m.PTELocation[1] + m.PTELocation[2] + m.PTELocation[3]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("PTE location fractions sum to %v", sum)
		}
	}
}

func TestComputeOnZeroCountersIsSafe(t *testing.T) {
	m := Compute(Counters{})
	if m.WCPI != 0 || m.CPI != 0 || m.STLBHitRate != 0 {
		t.Error("zero counters produced non-zero metrics")
	}
}

func TestFormatContainsNames(t *testing.T) {
	var c Counters
	c.Add(InstRetired, 42)
	out := c.Format()
	if !strings.Contains(out, "inst_retired.any") || !strings.Contains(out, "42") {
		t.Errorf("Format output missing content:\n%s", out)
	}
	nz := c.FormatNonZero()
	if strings.Contains(nz, "cpu_clk_unhalted") {
		t.Error("FormatNonZero shows zero counters")
	}
}
