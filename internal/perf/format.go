package perf

import "fmt"

// This file is the one home for human-readable metric formatting. The
// CLIs (atperf, attrace) and the examples used to each hand-roll their
// own printf blocks over the same derived quantities; they now share
// these renderers, so the spellings and precisions stay consistent
// everywhere a Metrics is printed.

// Summary renders the headline derived metrics as one fixed-format
// line — the compact form the trace replayer and the examples print
// next to a label.
func (m Metrics) Summary() string {
	return fmt.Sprintf("CPI %7.3f  WCPI %7.4f  misses/kacc %7.2f  loads/walk %5.2f  walk-lat %6.1f",
		m.CPI, m.WCPI, m.TLBMissesPerKiloAccess, m.Eq1.WalkerLoadsPerWalk, m.AvgWalkCycles)
}

// FormatDerived renders the full derived-metrics block (atperf's
// default report), ending in a newline.
func (m Metrics) FormatDerived() string {
	ret, wp, ab := m.Outcomes.Fractions()
	return fmt.Sprintf(`derived:
  CPI                          %8.3f
  WCPI                         %8.4f
  walk cycle fraction          %8.4f
  TLB misses / kilo access     %8.2f
  TLB misses / kilo instr      %8.2f
  accesses / instruction       %8.3f
  walker loads / walk          %8.3f
  cycles / walker load         %8.1f
  avg walk latency             %8.1f
  STLB hit rate                %8.3f
  PTE hit location L1/L2/L3/M  %6.1f%% %6.1f%% %6.1f%% %6.1f%%
  walks retired/wrong/aborted  %6.1f%% %6.1f%% %6.1f%%
`,
		m.CPI, m.WCPI, m.WalkCycleFraction,
		m.TLBMissesPerKiloAccess, m.TLBMissesPerKiloInstruction,
		m.Eq1.AccessesPerInstruction, m.Eq1.WalkerLoadsPerWalk, m.Eq1.CyclesPerWalkerLoad,
		m.AvgWalkCycles, m.STLBHitRate,
		100*m.PTELocation[0], 100*m.PTELocation[1], 100*m.PTELocation[2], 100*m.PTELocation[3],
		100*ret, 100*wp, 100*ab)
}

// FormatVirt renders the nested-paging block, ending in a newline.
// eptWalksCompleted comes from the raw counter delta — it has no
// derived home on Metrics.
func (m Metrics) FormatVirt(eptWalksCompleted uint64) string {
	return fmt.Sprintf(`virtualization:
  guest walk cycles            %8d
  EPT walk cycles              %8d
  EPT walk share               %8.3f
  nTLB hit rate                %8.3f
  EPT walks completed          %8d
  EPT walker loads             %8d
  EPT PTE loc L1/L2/L3/M       %6.1f%% %6.1f%% %6.1f%% %6.1f%%
`,
		m.GuestWalkCycles, m.EPTWalkCycles, m.EPTShare, m.NTLBHitRate,
		eptWalksCompleted, m.EPTWalkerLoads,
		100*m.EPTPTELocation[0], 100*m.EPTPTELocation[1],
		100*m.EPTPTELocation[2], 100*m.EPTPTELocation[3])
}
