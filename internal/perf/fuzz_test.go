package perf

import "testing"

// FuzzComputeNeverPanicsOrNaNs drives the metric derivations with
// arbitrary counter values: Compute must never panic, and ratios with
// zero denominators must come out as 0, not NaN/Inf.
func FuzzComputeNeverPanicsOrNaNs(f *testing.F) {
	f.Add(uint64(1000), uint64(2500), uint64(300), uint64(40), uint64(35), uint64(800), uint64(90))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, inst, cyc, loads, walks, completed, dur, wl uint64) {
		var c Counters
		c.Add(InstRetired, inst)
		c.Add(Cycles, cyc)
		c.Add(AllLoads, loads)
		c.Add(DTLBLoadMissWalk, walks)
		if completed > walks {
			completed = walks
		}
		c.Add(DTLBLoadWalkCompleted, completed)
		c.Add(STLBMissLoads, completed/2)
		c.Add(DTLBLoadWalkDuration, dur)
		c.Add(WalkerLoadsL1, wl)
		m := Compute(c)
		for name, v := range map[string]float64{
			"CPI": m.CPI, "WCPI": m.WCPI, "WalkCycleFraction": m.WalkCycleFraction,
			"TLBMissesPerKiloAccess": m.TLBMissesPerKiloAccess,
			"AvgWalkCycles":          m.AvgWalkCycles,
			"STLBHitRate":            m.STLBHitRate,
			"Eq1Product":             m.Eq1.Product(),
		} {
			if v != v || v > 1e300 || v < -1e300 { // NaN or runaway
				t.Fatalf("%s = %v for counters inst=%d cyc=%d", name, v, inst, cyc)
			}
		}
		o := m.Outcomes
		if o.Retired+o.WrongPath+o.Aborted != o.Initiated {
			t.Fatalf("outcome conservation broken: %+v", o)
		}
	})
}
