// Package perf implements the simulated machine's performance-monitoring
// unit. Events carry the Intel Haswell names the paper's methodology is
// written in (Table VI), so the derived-metric code reads like the paper:
// walk outcomes come from dtlb_*_misses.miss_causes_a_walk minus
// walk_completed, WCPI from walk_duration over inst_retired.any, and the
// PTE-location distribution from page_walker_loads.dtlb_*.
package perf

import "fmt"

// Event is one hardware event the simulated PMU can count.
type Event uint8

// The counted events. Names (see String) follow the Linux perf spellings
// of the Haswell PMU events the paper uses.
const (
	// InstRetired counts retired instructions (inst_retired.any).
	InstRetired Event = iota
	// Cycles counts unhalted core cycles (cpu_clk_unhalted.thread).
	Cycles

	// AllLoads counts retired load uops (mem_uops_retired.all_loads).
	AllLoads
	// AllStores counts retired store uops (mem_uops_retired.all_stores).
	AllStores
	// STLBMissLoads counts retired loads that missed in the STLB
	// (mem_uops_retired.stlb_miss_loads).
	STLBMissLoads
	// STLBMissStores counts retired stores that missed in the STLB
	// (mem_uops_retired.stlb_miss_stores).
	STLBMissStores

	// DTLBLoadMissWalk counts load translations, speculative included,
	// that missed every TLB level and started a page walk
	// (dtlb_load_misses.miss_causes_a_walk).
	DTLBLoadMissWalk
	// DTLBStoreMissWalk is the store counterpart
	// (dtlb_store_misses.miss_causes_a_walk).
	DTLBStoreMissWalk
	// DTLBLoadWalkCompleted counts load walks that ran to completion
	// (dtlb_load_misses.walk_completed).
	DTLBLoadWalkCompleted
	// DTLBStoreWalkCompleted is the store counterpart
	// (dtlb_store_misses.walk_completed).
	DTLBStoreWalkCompleted
	// DTLBLoadWalkDuration accumulates cycles with a load walk active
	// (dtlb_load_misses.walk_duration).
	DTLBLoadWalkDuration
	// DTLBStoreWalkDuration is the store counterpart
	// (dtlb_store_misses.walk_duration).
	DTLBStoreWalkDuration
	// DTLBLoadSTLBHit counts load translations that missed the first
	// level TLB but hit the STLB (dtlb_load_misses.stlb_hit).
	DTLBLoadSTLBHit
	// DTLBStoreSTLBHit is the store counterpart
	// (dtlb_store_misses.stlb_hit).
	DTLBStoreSTLBHit

	// WalkerLoadsL1 counts page-walker PTE loads satisfied by the L1
	// data cache (page_walker_loads.dtlb_l1).
	WalkerLoadsL1
	// WalkerLoadsL2 is the L2 counterpart (page_walker_loads.dtlb_l2).
	WalkerLoadsL2
	// WalkerLoadsL3 is the L3 counterpart (page_walker_loads.dtlb_l3).
	WalkerLoadsL3
	// WalkerLoadsMem counts walker loads that went to DRAM
	// (page_walker_loads.dtlb_memory).
	WalkerLoadsMem

	// Branches counts retired branches (br_inst_retired.all_branches).
	Branches
	// BranchMispredicts counts retired mispredicted branches
	// (br_misp_retired.all_branches).
	BranchMispredicts
	// MachineClears counts pipeline clears of all causes
	// (machine_clears.count).
	MachineClears
	// MachineClearsMemOrder counts memory-ordering clears
	// (machine_clears.memory_ordering).
	MachineClearsMemOrder

	// PageFaults counts demand page faults taken (sw event faults).
	PageFaults

	// TLBPrefetchWalks counts walks issued by the (research-extension)
	// next-page TLB prefetcher. Prefetch walks are accounted in their
	// own domain so the Table VI outcome formulae stay faithful to the
	// dtlb_* architectural events.
	TLBPrefetchWalks
	// TLBPrefetchFills counts prefetched translations inserted into the
	// STLB.
	TLBPrefetchFills
	// TLBPrefetchCycles accumulates walker cycles spent on prefetches.
	TLBPrefetchCycles

	// THPPromotions counts 2 MB hugepage promotions performed by the
	// WCPI-guided promotion policy (sw event, khugepaged analogue).
	THPPromotions

	// The ept_* family extends the Haswell naming scheme to nested paging
	// (virtualized runs only; all zero natively). An "EPT walk" is one
	// gPA -> hPA translation performed inside a nested guest walk — up to
	// n_g+1 of them per guest walk.

	// EPTMissWalk counts gPA translations that missed the EPT translation
	// cache (nTLB) and started an EPT walk
	// (ept_misses.miss_causes_a_walk).
	EPTMissWalk
	// EPTWalkCompleted counts EPT walks that ran to completion
	// (ept_misses.walk_completed).
	EPTWalkCompleted
	// EPTWalkDuration accumulates cycles spent inside EPT walks — the
	// host-dimension share of walk_duration
	// (ept_misses.walk_duration).
	EPTWalkDuration
	// EPTWalkSTLBHit counts gPA translations served by the EPT
	// translation cache, skipping the EPT walk entirely
	// (ept_misses.walk_stlb_hit).
	EPTWalkSTLBHit
	// GuestWalkSTLBHit counts guest walks that entered below the guest
	// radix root thanks to a guest paging-structure-cache hit
	// (dtlb_misses.walk_stlb_hit_guest).
	GuestWalkSTLBHit
	// DTLBLoadWalkDurationGuest is the guest-dimension share of
	// dtlb_load_misses.walk_duration: cycles spent loading guest PTEs,
	// EPT-walk cycles excluded. Equals walk_duration on native runs
	// (dtlb_load_misses.walk_duration_guest).
	DTLBLoadWalkDurationGuest
	// DTLBStoreWalkDurationGuest is the store counterpart
	// (dtlb_store_misses.walk_duration_guest).
	DTLBStoreWalkDurationGuest

	// EPTWalkerLoadsL1 counts EPT-entry loads satisfied by the L1 data
	// cache (page_walker_loads.ept_dtlb_l1).
	EPTWalkerLoadsL1
	// EPTWalkerLoadsL2 is the L2 counterpart
	// (page_walker_loads.ept_dtlb_l2).
	EPTWalkerLoadsL2
	// EPTWalkerLoadsL3 is the L3 counterpart
	// (page_walker_loads.ept_dtlb_l3).
	EPTWalkerLoadsL3
	// EPTWalkerLoadsMem counts EPT-entry loads that went to DRAM
	// (page_walker_loads.ept_dtlb_memory).
	EPTWalkerLoadsMem

	// EPTViolations counts EPT violations serviced by the hypervisor —
	// first touches of guest-physical blocks during the measured region
	// (sw event, the guest's "host page fault").
	EPTViolations

	// The scheme_* / replica_* / dramcache_* family extends the naming
	// scheme to the pluggable translation schemes (internal/scheme). Each
	// backend declares which of these it populates; all stay zero under
	// the default radix scheme.

	// SchemeBlockHits counts page walks served by a Victima-style PTE
	// block cached in the data-cache hierarchy, short-circuiting the
	// radix walk to a single leaf load (scheme_walk_loads.block_hit).
	SchemeBlockHits
	// SchemeBlockMisses counts page walks that probed the PTE-block
	// directory and missed, taking the full radix walk
	// (scheme_walk_loads.block_miss).
	SchemeBlockMisses
	// ReplicaLocalWalks counts Mitosis walks served entirely from the
	// walking node's page-table replica (replica_local_walks).
	ReplicaLocalWalks
	// ReplicaRemoteWalks counts Mitosis walks that touched another
	// node's tables — a cold replica falling back to the master copy
	// (replica_remote_walks).
	ReplicaRemoteWalks
	// DRAMCacheHits counts walker PTE loads that missed SRAM and hit
	// the die-stacked DRAM cache (dramcache_hits).
	DRAMCacheHits
	// DRAMCacheMisses counts walker PTE loads that missed SRAM and the
	// DRAM cache both, paying the full miss path (dramcache_misses).
	DRAMCacheMisses
	// NUMAMigrations counts deterministic thread migrations between
	// NUMA nodes (sw event, numa.migrations).
	NUMAMigrations

	// NumEvents is the number of defined events.
	NumEvents
)

var eventNames = [NumEvents]string{
	InstRetired:            "inst_retired.any",
	Cycles:                 "cpu_clk_unhalted.thread",
	AllLoads:               "mem_uops_retired.all_loads",
	AllStores:              "mem_uops_retired.all_stores",
	STLBMissLoads:          "mem_uops_retired.stlb_miss_loads",
	STLBMissStores:         "mem_uops_retired.stlb_miss_stores",
	DTLBLoadMissWalk:       "dtlb_load_misses.miss_causes_a_walk",
	DTLBStoreMissWalk:      "dtlb_store_misses.miss_causes_a_walk",
	DTLBLoadWalkCompleted:  "dtlb_load_misses.walk_completed",
	DTLBStoreWalkCompleted: "dtlb_store_misses.walk_completed",
	DTLBLoadWalkDuration:   "dtlb_load_misses.walk_duration",
	DTLBStoreWalkDuration:  "dtlb_store_misses.walk_duration",
	DTLBLoadSTLBHit:        "dtlb_load_misses.stlb_hit",
	DTLBStoreSTLBHit:       "dtlb_store_misses.stlb_hit",
	WalkerLoadsL1:          "page_walker_loads.dtlb_l1",
	WalkerLoadsL2:          "page_walker_loads.dtlb_l2",
	WalkerLoadsL3:          "page_walker_loads.dtlb_l3",
	WalkerLoadsMem:         "page_walker_loads.dtlb_memory",
	Branches:               "br_inst_retired.all_branches",
	BranchMispredicts:      "br_misp_retired.all_branches",
	MachineClears:          "machine_clears.count",
	MachineClearsMemOrder:  "machine_clears.memory_ordering",
	PageFaults:             "faults",
	TLBPrefetchWalks:       "tlb_prefetch.walks",
	TLBPrefetchFills:       "tlb_prefetch.fills",
	TLBPrefetchCycles:      "tlb_prefetch.walk_duration",
	THPPromotions:          "thp.promotions",

	EPTMissWalk:                "ept_misses.miss_causes_a_walk",
	EPTWalkCompleted:           "ept_misses.walk_completed",
	EPTWalkDuration:            "ept_misses.walk_duration",
	EPTWalkSTLBHit:             "ept_misses.walk_stlb_hit",
	GuestWalkSTLBHit:           "dtlb_misses.walk_stlb_hit_guest",
	DTLBLoadWalkDurationGuest:  "dtlb_load_misses.walk_duration_guest",
	DTLBStoreWalkDurationGuest: "dtlb_store_misses.walk_duration_guest",
	EPTWalkerLoadsL1:           "page_walker_loads.ept_dtlb_l1",
	EPTWalkerLoadsL2:           "page_walker_loads.ept_dtlb_l2",
	EPTWalkerLoadsL3:           "page_walker_loads.ept_dtlb_l3",
	EPTWalkerLoadsMem:          "page_walker_loads.ept_dtlb_memory",
	EPTViolations:              "ept.violations",

	SchemeBlockHits:    "scheme_walk_loads.block_hit",
	SchemeBlockMisses:  "scheme_walk_loads.block_miss",
	ReplicaLocalWalks:  "replica_local_walks",
	ReplicaRemoteWalks: "replica_remote_walks",
	DRAMCacheHits:      "dramcache_hits",
	DRAMCacheMisses:    "dramcache_misses",
	NUMAMigrations:     "numa.migrations",
}

// String returns the perf-tool spelling of the event name.
func (e Event) String() string {
	if e < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// eventByName inverts eventNames once at package init; ByName is called
// per flag item in the CLIs and per record in the sample decoders, so it
// must not rescan the event table.
var eventByName = func() map[string]Event {
	m := make(map[string]Event, NumEvents)
	for e := Event(0); e < NumEvents; e++ {
		m[eventNames[e]] = e
	}
	return m
}()

// ByName resolves a perf-tool event name back to an Event.
func ByName(name string) (Event, error) {
	if e, ok := eventByName[name]; ok {
		return e, nil
	}
	return 0, fmt.Errorf("perf: unknown event %q", name)
}

// Events returns all defined events in definition order.
func Events() []Event {
	out := make([]Event, NumEvents)
	for i := range out {
		out[i] = Event(i)
	}
	return out
}
