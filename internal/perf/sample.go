package perf

// This file implements the PEBS analogue: a Sampler that arms counted
// events with a sampling period and captures a precise record each time
// the count crosses the period, into a fixed-size ring whose overflow
// drops are themselves counted — mirroring how real PEBS loses records
// when the debug-store buffer fills faster than it drains.

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// DefaultSampleCapacity is the default sample ring size (records).
const DefaultSampleCapacity = 1 << 16

// SampleOutcome classifies the walk behind a sample, in the paper's
// Table VI terms.
type SampleOutcome uint8

const (
	// OutcomeRetired marks a demand walk (or retired access).
	OutcomeRetired SampleOutcome = iota
	// OutcomeWrongPath marks a completed speculative walk that was
	// squashed before retirement.
	OutcomeWrongPath
	// OutcomeAborted marks a speculative walk killed by its cycle budget.
	OutcomeAborted
	// NumOutcomes is the number of walk outcomes.
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{"retired", "wrong-path", "aborted"}

// String returns the outcome's report spelling.
func (o SampleOutcome) String() string {
	if o < NumOutcomes {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// ParseOutcome resolves a report spelling back to a SampleOutcome.
func ParseOutcome(s string) (SampleOutcome, error) {
	for o := SampleOutcome(0); o < NumOutcomes; o++ {
		if outcomeNames[o] == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("perf: unknown outcome %q", s)
}

// PTELevel is the cache level that served the walk's leaf PTE load — the
// per-sample version of the page_walker_loads.dtlb_* aggregate events.
type PTELevel uint8

const (
	// PTEL1 means the leaf PTE came from the L1 data cache.
	PTEL1 PTELevel = iota
	// PTEL2 means the L2.
	PTEL2
	// PTEL3 means the L3.
	PTEL3
	// PTEMem means DRAM.
	PTEMem
	// PTENone marks samples with no walk (TLB-hit retirement samples).
	PTENone
	// NumPTELevels is the number of PTE-serving levels.
	NumPTELevels
)

var pteLevelNames = [NumPTELevels]string{"L1", "L2", "L3", "MEM", "none"}

// String returns the level's report spelling.
func (l PTELevel) String() string {
	if l < NumPTELevels {
		return pteLevelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// ParsePTELevel resolves a report spelling back to a PTELevel.
func ParsePTELevel(s string) (PTELevel, error) {
	for l := PTELevel(0); l < NumPTELevels; l++ {
		if pteLevelNames[l] == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("perf: unknown PTE level %q", s)
}

// Sample is one captured PEBS-style record.
type Sample struct {
	// Event is the armed event whose period crossing captured the record.
	Event Event
	// VA is the virtual address of the sampled access.
	VA uint64
	// Page is VA's 4 KB page base.
	Page uint64
	// WalkCycles is the sampled walk's latency (0 for TLB-hit retirement
	// samples).
	WalkCycles uint64
	// Level is the cache level that served the leaf PTE load.
	Level PTELevel
	// Outcome classifies the sampled walk.
	Outcome SampleOutcome
	// Inst is the retired-instruction count at capture.
	Inst uint64
	// Weight is the event count this record stands for: the sampling
	// period, times the number of periods the triggering increment
	// crossed. Summing weights over a stream reconstructs the aggregate
	// counter to within one period per armed event.
	Weight uint64
}

// Sampler is the simulated PMU's PEBS engine: arm events with periods,
// offer candidate records at event sites, drain captured samples.
// The zero Sampler is not usable; use NewSampler.
type Sampler struct {
	period [NumEvents]uint64
	left   [NumEvents]uint64
	filter func(Sample) bool

	buf      []Sample
	capacity int
	captured uint64
	dropped  uint64
	droppedW uint64
}

// NewSampler builds a sampler whose ring holds capacity records.
func NewSampler(capacity int) *Sampler {
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	return &Sampler{capacity: capacity, buf: make([]Sample, 0, capacity)}
}

// Arm starts sampling e with the given period (in units of the event:
// occurrences for count events, cycles for duration events). Re-arming
// changes the period and restarts the countdown.
func (s *Sampler) Arm(e Event, period uint64) error {
	if e >= NumEvents {
		return fmt.Errorf("perf: unknown event %d", e)
	}
	if period == 0 {
		return fmt.Errorf("perf: zero sampling period for %s", e)
	}
	s.period[e] = period
	s.left[e] = period
	return nil
}

// Disarm stops sampling e.
func (s *Sampler) Disarm(e Event) {
	if e < NumEvents {
		s.period[e] = 0
	}
}

// Armed reports whether e is being sampled.
func (s *Sampler) Armed(e Event) bool { return e < NumEvents && s.period[e] != 0 }

// SetFilter installs a predicate applied to candidates before they
// consume any period budget — the analogue of PEBS precise-event
// qualifiers (e.g. sample demand walks only).
func (s *Sampler) SetFilter(f func(Sample) bool) { s.filter = f }

// Offer advances e's countdown by n and, if one or more period
// boundaries were crossed, captures smp with its Event and Weight set.
// Unarmed events return immediately, so datapath call sites stay cheap.
func (s *Sampler) Offer(e Event, n uint64, smp Sample) {
	p := s.period[e]
	if p == 0 || n == 0 {
		return
	}
	if s.filter != nil && !s.filter(smp) {
		return
	}
	if n < s.left[e] {
		s.left[e] -= n
		return
	}
	over := n - s.left[e]
	crossings := 1 + over/p
	s.left[e] = p - over%p
	smp.Event = e
	smp.Weight = crossings * p
	s.capture(smp)
}

// capture appends the record or, if the ring is full, counts the drop.
func (s *Sampler) capture(smp Sample) {
	if len(s.buf) >= s.capacity {
		s.dropped++
		s.droppedW += smp.Weight
		return
	}
	s.buf = append(s.buf, smp)
	s.captured++
}

// Len returns the records currently buffered.
func (s *Sampler) Len() int { return len(s.buf) }

// Capacity returns the ring size in records — the bound the refute
// checker's ring-accounting identities are stated against.
func (s *Sampler) Capacity() int { return s.capacity }

// Period returns e's armed sampling period (0 when unarmed).
func (s *Sampler) Period(e Event) uint64 {
	if e >= NumEvents {
		return 0
	}
	return s.period[e]
}

// Captured returns total records captured (drained or not).
func (s *Sampler) Captured() uint64 { return s.captured }

// Dropped returns records lost to ring overflow.
func (s *Sampler) Dropped() uint64 { return s.dropped }

// DroppedWeight returns the event count the dropped records stood for —
// the attribution mass lost to overflow.
func (s *Sampler) DroppedWeight() uint64 { return s.droppedW }

// Drain returns the buffered records and empties the ring. Drop counters
// are not reset; they describe the sampler's lifetime.
func (s *Sampler) Drain() []Sample {
	out := s.buf
	s.buf = make([]Sample, 0, s.capacity)
	return out
}

// --- encoders -------------------------------------------------------------

var sampleCSVHeader = []string{"event", "va", "page", "walk_cycles", "level", "outcome", "inst", "weight"}

// WriteSamplesCSV encodes samples as CSV with a header row. Addresses
// are hex (0x-prefixed) so the files read naturally next to pmaps.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sampleCSVHeader); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{
			s.Event.String(),
			"0x" + strconv.FormatUint(s.VA, 16),
			"0x" + strconv.FormatUint(s.Page, 16),
			strconv.FormatUint(s.WalkCycles, 10),
			s.Level.String(),
			s.Outcome.String(),
			strconv.FormatUint(s.Inst, 10),
			strconv.FormatUint(s.Weight, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSamplesCSV decodes a WriteSamplesCSV stream.
func ReadSamplesCSV(r io.Reader) ([]Sample, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("perf: samples csv header: %w", err)
	}
	if len(header) != len(sampleCSVHeader) {
		return nil, fmt.Errorf("perf: samples csv: %d columns, want %d", len(header), len(sampleCSVHeader))
	}
	var out []Sample
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		s, err := parseSampleFields(rec[0], rec[1], rec[2], rec[3], rec[4], rec[5], rec[6], rec[7])
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

// sampleJSON is the JSONL wire form (addresses hex-encoded as strings so
// they survive tools that parse JSON numbers as float64).
type sampleJSON struct {
	Event      string `json:"event"`
	VA         string `json:"va"`
	Page       string `json:"page"`
	WalkCycles uint64 `json:"walk_cycles"`
	Level      string `json:"level"`
	Outcome    string `json:"outcome"`
	Inst       uint64 `json:"inst"`
	Weight     uint64 `json:"weight"`
}

// WriteSamplesJSONL encodes samples as JSON Lines, one record per line.
func WriteSamplesJSONL(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range samples {
		j := sampleJSON{
			Event:      s.Event.String(),
			VA:         "0x" + strconv.FormatUint(s.VA, 16),
			Page:       "0x" + strconv.FormatUint(s.Page, 16),
			WalkCycles: s.WalkCycles,
			Level:      s.Level.String(),
			Outcome:    s.Outcome.String(),
			Inst:       s.Inst,
			Weight:     s.Weight,
		}
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSamplesJSONL decodes a WriteSamplesJSONL stream.
func ReadSamplesJSONL(r io.Reader) ([]Sample, error) {
	dec := json.NewDecoder(r)
	var out []Sample
	for {
		var j sampleJSON
		if err := dec.Decode(&j); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		s, err := parseSampleFields(j.Event, j.VA, j.Page,
			strconv.FormatUint(j.WalkCycles, 10), j.Level, j.Outcome,
			strconv.FormatUint(j.Inst, 10), strconv.FormatUint(j.Weight, 10))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func parseSampleFields(event, va, page, cycles, level, outcome, inst, weight string) (Sample, error) {
	var s Sample
	var err error
	if s.Event, err = ByName(event); err != nil {
		return s, err
	}
	if s.VA, err = strconv.ParseUint(va, 0, 64); err != nil {
		return s, fmt.Errorf("perf: sample va: %w", err)
	}
	if s.Page, err = strconv.ParseUint(page, 0, 64); err != nil {
		return s, fmt.Errorf("perf: sample page: %w", err)
	}
	if s.WalkCycles, err = strconv.ParseUint(cycles, 10, 64); err != nil {
		return s, fmt.Errorf("perf: sample walk_cycles: %w", err)
	}
	if s.Level, err = ParsePTELevel(level); err != nil {
		return s, err
	}
	if s.Outcome, err = ParseOutcome(outcome); err != nil {
		return s, err
	}
	if s.Inst, err = strconv.ParseUint(inst, 10, 64); err != nil {
		return s, fmt.Errorf("perf: sample inst: %w", err)
	}
	if s.Weight, err = strconv.ParseUint(weight, 10, 64); err != nil {
		return s, fmt.Errorf("perf: sample weight: %w", err)
	}
	return s, nil
}
