package perf

import "fmt"

// Group is a perf_event-style counter group: a set of events enabled and
// disabled together, accumulating only while enabled. It supports
// multi-window measurement (enable around each region of interest, read
// once at the end) — the way one programs real PMU groups around phases.
type Group struct {
	read   func() Counters
	events []Event
	acc    [NumEvents]uint64
	start  Counters
	//atlint:noreset PERF_EVENT_IOC_RESET clears counts, not enablement; an enabled group keeps counting across Reset
	enabled bool
}

// NewGroup builds a group over a live counter source (typically
// Machine.Counters passed as a method value).
func NewGroup(read func() Counters, events ...Event) (*Group, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("perf: empty event group")
	}
	for _, e := range events {
		if e >= NumEvents {
			return nil, fmt.Errorf("perf: unknown event %d", e)
		}
	}
	return &Group{read: read, events: events}, nil
}

// Enable starts (or resumes) counting. Enabling an enabled group is a
// no-op, as with PERF_EVENT_IOC_ENABLE.
func (g *Group) Enable() {
	if g.enabled {
		return
	}
	g.start = g.read()
	g.enabled = true
}

// Disable stops counting and folds the window into the accumulators.
func (g *Group) Disable() {
	if !g.enabled {
		return
	}
	d := Delta(g.start, g.read())
	for _, e := range g.events {
		g.acc[e] += d.Get(e)
	}
	g.enabled = false
}

// Enabled reports whether the group is currently counting.
func (g *Group) Enabled() bool { return g.enabled }

// Count returns an event's accumulated value (including the live window
// if the group is enabled). Events outside the group read as 0.
func (g *Group) Count(e Event) uint64 {
	v := g.acc[e]
	if g.enabled {
		live := Delta(g.start, g.read())
		for _, ge := range g.events {
			if ge == e {
				return v + live.Get(e)
			}
		}
	}
	return v
}

// Read returns all group events in declaration order. The live window is
// snapshotted once, so a Read is one counter read regardless of group
// size (Count per event would recompute the full delta each time).
func (g *Group) Read() []uint64 {
	out := make([]uint64, len(g.events))
	var live Counters
	if g.enabled {
		live = Delta(g.start, g.read())
	}
	for i, e := range g.events {
		out[i] = g.acc[e]
		if g.enabled {
			out[i] += live.Get(e)
		}
	}
	return out
}

// Reset zeroes the accumulators (and restarts the live window if
// enabled).
func (g *Group) Reset() {
	g.acc = [NumEvents]uint64{}
	if g.enabled {
		g.start = g.read()
	}
}
