package perf

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is one PMU's worth of event counts. The zero value is ready to
// use. Counters is a value type: Snapshot copies are cheap and Delta works
// on values, mirroring how one programs and reads real counter groups.
type Counters struct {
	c [NumEvents]uint64
}

// Inc adds one to the event.
func (cs *Counters) Inc(e Event) { cs.c[e]++ }

// Add adds n to the event.
func (cs *Counters) Add(e Event, n uint64) { cs.c[e] += n }

// Get returns the event's count.
func (cs Counters) Get(e Event) uint64 { return cs.c[e] }

// Snapshot returns a copy of the current counts.
func (cs *Counters) Snapshot() Counters { return *cs }

// Reset zeroes every counter.
func (cs *Counters) Reset() { cs.c = [NumEvents]uint64{} }

// Delta returns end - start per event. It panics if any counter went
// backwards, which would indicate a simulator bug (counters are
// monotonic, like real PMU counters between resets).
func Delta(start, end Counters) Counters {
	var d Counters
	for e := Event(0); e < NumEvents; e++ {
		if end.c[e] < start.c[e] {
			panic(fmt.Sprintf("perf: counter %v went backwards (%d -> %d)",
				e, start.c[e], end.c[e]))
		}
		d.c[e] = end.c[e] - start.c[e]
	}
	return d
}

// Format renders the counters in `perf stat` style, one event per line,
// sorted by event definition order. Zero counters are included so runs are
// diffable.
func (cs Counters) Format() string {
	var b strings.Builder
	for e := Event(0); e < NumEvents; e++ {
		fmt.Fprintf(&b, "%20d  %s\n", cs.c[e], e)
	}
	return b.String()
}

// FormatNonZero renders only events with non-zero counts, sorted by count
// descending — convenient for quick inspection.
func (cs Counters) FormatNonZero() string {
	type row struct {
		e Event
		n uint64
	}
	var rows []row
	for e := Event(0); e < NumEvents; e++ {
		if cs.c[e] != 0 {
			rows = append(rows, row{e, cs.c[e]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%20d  %s\n", r.n, r.e)
	}
	return b.String()
}
