package perf

import "testing"

// fakeSource simulates a live PMU the test advances by hand.
type fakeSource struct{ c Counters }

func (f *fakeSource) read() Counters { return f.c.Snapshot() }

func TestGroupWindows(t *testing.T) {
	src := &fakeSource{}
	g, err := NewGroup(src.read, InstRetired, Cycles)
	if err != nil {
		t.Fatal(err)
	}
	// Counting outside any window must not accumulate.
	src.c.Add(InstRetired, 100)
	g.Enable()
	src.c.Add(InstRetired, 10)
	src.c.Add(Cycles, 20)
	g.Disable()
	src.c.Add(InstRetired, 1000) // outside the window
	g.Enable()
	src.c.Add(InstRetired, 5)
	g.Disable()
	if got := g.Count(InstRetired); got != 15 {
		t.Errorf("instructions = %d, want 15", got)
	}
	if got := g.Count(Cycles); got != 20 {
		t.Errorf("cycles = %d, want 20", got)
	}
}

func TestGroupLiveRead(t *testing.T) {
	src := &fakeSource{}
	g, _ := NewGroup(src.read, AllLoads)
	g.Enable()
	src.c.Add(AllLoads, 7)
	if got := g.Count(AllLoads); got != 7 {
		t.Errorf("live count = %d, want 7", got)
	}
	if got := g.Count(AllStores); got != 0 {
		t.Errorf("non-group event = %d, want 0", got)
	}
}

func TestGroupIdempotentEnableDisable(t *testing.T) {
	src := &fakeSource{}
	g, _ := NewGroup(src.read, Cycles)
	g.Enable()
	g.Enable() // must not reset the window start
	src.c.Add(Cycles, 5)
	g.Disable()
	g.Disable()
	if got := g.Count(Cycles); got != 5 {
		t.Errorf("cycles = %d, want 5", got)
	}
}

func TestGroupResetAndRead(t *testing.T) {
	src := &fakeSource{}
	g, _ := NewGroup(src.read, InstRetired, Cycles)
	g.Enable()
	src.c.Add(InstRetired, 3)
	g.Disable()
	g.Reset()
	if got := g.Read(); got[0] != 0 || got[1] != 0 {
		t.Errorf("after reset: %v", got)
	}
}

func TestGroupValidation(t *testing.T) {
	src := &fakeSource{}
	if _, err := NewGroup(src.read); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewGroup(src.read, NumEvents); err == nil {
		t.Error("unknown event accepted")
	}
}
