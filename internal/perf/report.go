package perf

// This file aggregates PEBS-style samples into a `perf report` analogue:
// top-K hot pages by attributed walk cycles, a log2 walk-latency
// histogram, and per-PTE-level / per-outcome breakdowns. The same
// aggregation (HotBlocks) feeds the OS promotion policy's hotness signal.

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// HistBuckets is the number of log2 walk-latency buckets: bucket i holds
// samples with WalkCycles in [2^(i-1), 2^i), bucket 0 holds zero-latency
// samples, and the last bucket absorbs everything longer.
const HistBuckets = 24

// walkCycleEvent reports whether e counts cycles with a walk active, so
// sample weights triggered by it are in cycle units.
func walkCycleEvent(e Event) bool {
	return e == DTLBLoadWalkDuration || e == DTLBStoreWalkDuration || e == TLBPrefetchCycles
}

// PageStat is one hot page's attribution.
type PageStat struct {
	// Page is the 4 KB page base (virtual).
	Page uint64
	// Cycles is the walk cycles attributed to the page (sum of weights
	// of cycle-domain samples landing on it).
	Cycles uint64
	// Samples is how many records landed on the page (all domains).
	Samples int
}

// Report is the aggregate view over one drained sample stream.
type Report struct {
	// Samples is the number of records aggregated.
	Samples int
	// Dropped is the ring-overflow record count; DroppedWeight the
	// attribution mass those records stood for. Both are reported so a
	// truncated profile is visibly truncated.
	Dropped       uint64
	DroppedWeight uint64
	// EstWalkCycles is the walk-cycle total reconstructed from
	// cycle-domain sample weights; it matches the aggregate
	// dtlb_*_misses.walk_duration counters to within one period per
	// armed event (plus DroppedWeight).
	EstWalkCycles uint64
	// HotPages is the top-K pages by attributed walk cycles.
	HotPages []PageStat
	// Hist is the log2 walk-latency histogram over all samples.
	Hist [HistBuckets]uint64
	// ByLevel counts samples by leaf-PTE-serving cache level.
	ByLevel [NumPTELevels]uint64
	// ByOutcome counts samples by walk outcome.
	ByOutcome [NumOutcomes]uint64
}

// histBucket maps a latency to its log2 bucket.
func histBucket(cycles uint64) int {
	b := bits.Len64(cycles)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// NewReport aggregates a drained sample stream. The sampler's Dropped
// and DroppedWeight are passed through so the report carries its own
// truncation evidence.
func NewReport(samples []Sample, dropped, droppedWeight uint64, topK int) Report {
	r := Report{Samples: len(samples), Dropped: dropped, DroppedWeight: droppedWeight}
	type agg struct {
		cycles  uint64
		samples int
	}
	pages := make(map[uint64]*agg)
	for _, s := range samples {
		r.Hist[histBucket(s.WalkCycles)]++
		if s.Level < NumPTELevels {
			r.ByLevel[s.Level]++
		}
		if s.Outcome < NumOutcomes {
			r.ByOutcome[s.Outcome]++
		}
		a := pages[s.Page]
		if a == nil {
			a = &agg{}
			pages[s.Page] = a
		}
		a.samples++
		if walkCycleEvent(s.Event) {
			a.cycles += s.Weight
			r.EstWalkCycles += s.Weight
		}
	}
	r.HotPages = make([]PageStat, 0, len(pages))
	//atlint:ordered collection order is erased by the total-order sort (cycles, samples, page) below
	for p, a := range pages {
		r.HotPages = append(r.HotPages, PageStat{Page: p, Cycles: a.cycles, Samples: a.samples})
	}
	sort.Slice(r.HotPages, func(i, j int) bool {
		if r.HotPages[i].Cycles != r.HotPages[j].Cycles {
			return r.HotPages[i].Cycles > r.HotPages[j].Cycles
		}
		if r.HotPages[i].Samples != r.HotPages[j].Samples {
			return r.HotPages[i].Samples > r.HotPages[j].Samples
		}
		return r.HotPages[i].Page < r.HotPages[j].Page
	})
	if topK > 0 && len(r.HotPages) > topK {
		r.HotPages = r.HotPages[:topK]
	}
	return r
}

// HotBlocks aggregates samples at 2^blockShift-byte granularity and
// returns up to k block bases, hottest first by total sample weight with
// ties broken by address — the sampler-backed replacement for the
// promotion policy's former bespoke walk-heat side channel.
func HotBlocks(samples []Sample, blockShift uint, k int) []uint64 {
	if len(samples) == 0 || k <= 0 {
		return nil
	}
	mask := ^uint64(0) << blockShift
	heat := make(map[uint64]uint64)
	for _, s := range samples {
		heat[s.VA&mask] += s.Weight
	}
	type hb struct {
		block uint64
		w     uint64
	}
	all := make([]hb, 0, len(heat))
	//atlint:ordered collection order is erased by the total-order sort (weight, block) below
	for b, w := range heat {
		all = append(all, hb{b, w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].block < all[j].block
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].block
	}
	return out
}

// Format renders the report as aligned text, `perf report` style.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "samples %d  dropped %d", r.Samples, r.Dropped)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, " (lost weight %d)", r.DroppedWeight)
	}
	fmt.Fprintf(&b, "  est. walk cycles %d\n", r.EstWalkCycles)

	if len(r.HotPages) > 0 {
		fmt.Fprintf(&b, "\nhot pages (top %d by attributed walk cycles):\n", len(r.HotPages))
		fmt.Fprintf(&b, "  %-18s %14s %9s %7s\n", "page", "walk cycles", "samples", "share")
		for _, p := range r.HotPages {
			share := 0.0
			if r.EstWalkCycles > 0 {
				share = float64(p.Cycles) / float64(r.EstWalkCycles)
			}
			fmt.Fprintf(&b, "  %#-18x %14d %9d %6.1f%%\n", p.Page, p.Cycles, p.Samples, 100*share)
		}
	}

	// Histogram: skip leading/trailing empty buckets, bar-scale to the
	// largest one.
	lo, hi := -1, -1
	var max uint64
	for i, n := range r.Hist {
		if n == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i
		if n > max {
			max = n
		}
	}
	if lo >= 0 {
		fmt.Fprintf(&b, "\nwalk latency (cycles, log2 buckets):\n")
		for i := lo; i <= hi; i++ {
			var label string
			switch {
			case i == 0:
				label = "0"
			case i == HistBuckets-1:
				label = fmt.Sprintf("%d+", uint64(1)<<(i-1))
			default:
				label = fmt.Sprintf("[%d,%d)", uint64(1)<<(i-1), uint64(1)<<i)
			}
			bar := int(40 * r.Hist[i] / max)
			fmt.Fprintf(&b, "  %-16s %10d %s\n", label, r.Hist[i], strings.Repeat("#", bar))
		}
	}

	if r.Samples > 0 {
		fmt.Fprintf(&b, "\nleaf PTE served from: ")
		for l := PTELevel(0); l < NumPTELevels; l++ {
			if l > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s %.1f%%", l, 100*float64(r.ByLevel[l])/float64(r.Samples))
		}
		fmt.Fprintf(&b, "\nwalk outcome:         ")
		for o := SampleOutcome(0); o < NumOutcomes; o++ {
			if o > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s %.1f%%", o, 100*float64(r.ByOutcome[o])/float64(r.Samples))
		}
		b.WriteString("\n")
	}
	return b.String()
}
