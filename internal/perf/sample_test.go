package perf

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSamplerPeriodCrossing(t *testing.T) {
	s := NewSampler(16)
	if err := s.Arm(DTLBLoadMissWalk, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Offer(DTLBLoadMissWalk, 1, Sample{VA: uint64(i)})
	}
	got := s.Drain()
	if len(got) != 2 {
		t.Fatalf("10 offers at period 4: %d samples, want 2", len(got))
	}
	// Captures on the 4th and 8th offer (0-indexed VAs 3 and 7).
	if got[0].VA != 3 || got[1].VA != 7 {
		t.Errorf("captured VAs %d,%d, want 3,7", got[0].VA, got[1].VA)
	}
	for _, smp := range got {
		if smp.Weight != 4 {
			t.Errorf("weight %d, want 4", smp.Weight)
		}
		if smp.Event != DTLBLoadMissWalk {
			t.Errorf("event %v, want DTLBLoadMissWalk", smp.Event)
		}
	}
}

// TestSamplerWeightConservation checks the PEBS weight invariant: total
// offered count equals total captured weight plus the residual countdown,
// so weights reconstruct the aggregate to within one period.
func TestSamplerWeightConservation(t *testing.T) {
	s := NewSampler(1 << 12)
	const period = 64
	if err := s.Arm(DTLBLoadWalkDuration, period); err != nil {
		t.Fatal(err)
	}
	offered := uint64(0)
	for i := 0; i < 500; i++ {
		n := uint64(i*37%223 + 1) // includes n > period
		s.Offer(DTLBLoadWalkDuration, n, Sample{})
		offered += n
	}
	var weights uint64
	for _, smp := range s.Drain() {
		weights += smp.Weight
	}
	if diff := offered - weights; diff >= period {
		t.Errorf("offered %d, captured weight %d: residual %d >= period %d",
			offered, weights, diff, period)
	}
}

func TestSamplerOverflowDrops(t *testing.T) {
	s := NewSampler(2)
	if err := s.Arm(AllLoads, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Offer(AllLoads, 1, Sample{VA: uint64(i)})
	}
	if s.Len() != 2 {
		t.Errorf("ring holds %d, want 2", s.Len())
	}
	if s.Dropped() != 3 {
		t.Errorf("dropped %d, want 3", s.Dropped())
	}
	if s.DroppedWeight() != 3 {
		t.Errorf("dropped weight %d, want 3", s.DroppedWeight())
	}
	// Drain clears the ring but not the lifetime drop counters.
	s.Drain()
	if s.Len() != 0 || s.Dropped() != 3 {
		t.Errorf("after drain: len %d dropped %d, want 0 and 3", s.Len(), s.Dropped())
	}
}

func TestSamplerFilter(t *testing.T) {
	s := NewSampler(16)
	if err := s.Arm(DTLBLoadMissWalk, 2); err != nil {
		t.Fatal(err)
	}
	s.SetFilter(func(smp Sample) bool { return smp.Outcome == OutcomeRetired })
	// Filtered-out candidates must not consume period budget either.
	for i := 0; i < 4; i++ {
		s.Offer(DTLBLoadMissWalk, 1, Sample{Outcome: OutcomeWrongPath})
		s.Offer(DTLBLoadMissWalk, 1, Sample{Outcome: OutcomeRetired})
	}
	got := s.Drain()
	if len(got) != 2 {
		t.Fatalf("%d samples, want 2 (4 retired offers at period 2)", len(got))
	}
	for _, smp := range got {
		if smp.Outcome != OutcomeRetired {
			t.Errorf("captured outcome %v, want retired", smp.Outcome)
		}
	}
}

func TestSamplerArmValidation(t *testing.T) {
	s := NewSampler(4)
	if err := s.Arm(NumEvents, 10); err == nil {
		t.Error("arming an unknown event succeeded")
	}
	if err := s.Arm(Cycles, 0); err == nil {
		t.Error("arming with zero period succeeded")
	}
	if s.Armed(Cycles) {
		t.Error("failed arm left the event armed")
	}
}

func testSamples() []Sample {
	return []Sample{
		{Event: DTLBLoadWalkDuration, VA: 0x7f00_0000_1238, Page: 0x7f00_0000_1000,
			WalkCycles: 212, Level: PTEMem, Outcome: OutcomeRetired, Inst: 123456, Weight: 4096},
		{Event: DTLBStoreMissWalk, VA: 0xdeadbeef008, Page: 0xdeadbeef000,
			WalkCycles: 18, Level: PTEL1, Outcome: OutcomeWrongPath, Inst: 9, Weight: 1},
		{Event: AllLoads, VA: 8, Page: 0, WalkCycles: 0, Level: PTENone,
			Outcome: OutcomeAborted, Inst: ^uint64(0), Weight: ^uint64(0)},
	}
}

func TestSamplesCSVRoundTrip(t *testing.T) {
	want := testSamples()
	var buf bytes.Buffer
	if err := WriteSamplesCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSamplesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("csv round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestSamplesJSONLRoundTrip(t *testing.T) {
	want := testSamples()
	var buf bytes.Buffer
	if err := WriteSamplesJSONL(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSamplesJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("jsonl round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestHotBlocksOrdering(t *testing.T) {
	samples := []Sample{
		{VA: 0x20_0008, Weight: 1},
		{VA: 0x20_0010, Weight: 1},
		{VA: 0x40_0000, Weight: 1},
		{VA: 0x60_0000, Weight: 1}, // ties with 0x40_0000: address breaks it
	}
	got := HotBlocks(samples, 21, 3)
	want := []uint64{0x20_0000, 0x40_0000, 0x60_0000}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("HotBlocks = %#x, want %#x", got, want)
	}
	if HotBlocks(nil, 21, 3) != nil {
		t.Error("HotBlocks(nil) != nil")
	}
}

func TestReportAggregation(t *testing.T) {
	samples := []Sample{
		{Event: DTLBLoadWalkDuration, Page: 0x1000, WalkCycles: 200, Level: PTEMem, Outcome: OutcomeRetired, Weight: 4096},
		{Event: DTLBLoadWalkDuration, Page: 0x1000, WalkCycles: 180, Level: PTEL3, Outcome: OutcomeRetired, Weight: 4096},
		{Event: DTLBLoadWalkDuration, Page: 0x2000, WalkCycles: 40, Level: PTEL1, Outcome: OutcomeWrongPath, Weight: 4096},
		{Event: DTLBLoadMissWalk, Page: 0x3000, WalkCycles: 10, Level: PTEL1, Outcome: OutcomeAborted, Weight: 64},
	}
	r := NewReport(samples, 2, 128, 10)
	if r.Samples != 4 || r.Dropped != 2 || r.DroppedWeight != 128 {
		t.Errorf("header fields wrong: %+v", r)
	}
	// Only cycle-domain samples contribute attribution weight.
	if r.EstWalkCycles != 3*4096 {
		t.Errorf("EstWalkCycles = %d, want %d", r.EstWalkCycles, 3*4096)
	}
	if len(r.HotPages) != 3 || r.HotPages[0].Page != 0x1000 || r.HotPages[0].Cycles != 2*4096 {
		t.Errorf("hot pages wrong: %+v", r.HotPages)
	}
	if r.ByOutcome[OutcomeRetired] != 2 || r.ByOutcome[OutcomeWrongPath] != 1 || r.ByOutcome[OutcomeAborted] != 1 {
		t.Errorf("outcome breakdown wrong: %v", r.ByOutcome)
	}
	if r.ByLevel[PTEMem] != 1 || r.ByLevel[PTEL3] != 1 || r.ByLevel[PTEL1] != 2 {
		t.Errorf("level breakdown wrong: %v", r.ByLevel)
	}
	if r.Format() == "" {
		t.Error("empty Format")
	}
}
