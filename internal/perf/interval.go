package perf

// This file implements `perf stat -I` for the simulated machine, keyed
// on retired instructions instead of wall time (the simulator's only
// monotonic clock shared across configurations): an IntervalReader
// snapshots counter deltas every N retired instructions, turning a run's
// WCPI / walk-outcome / PTE-location trajectory into a plottable
// timeline instead of one end-of-run aggregate.

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// IntervalRow is one streamed window of counter deltas.
type IntervalRow struct {
	// Index is the row's position in the stream (0-based).
	Index int
	// InstStart is the cumulative retired-instruction count at the
	// window's open.
	InstStart uint64
	// InstEnd is the count at the window's close. Windows close at the
	// first machine-level event at or past the boundary, so InstEnd may
	// overshoot InstStart+interval by one event's instructions.
	InstEnd uint64
	// Delta holds the window's counter deltas.
	Delta Counters
}

// IntervalReader streams counter rows every `every` retired
// instructions from a live counter source.
type IntervalReader struct {
	read     func() Counters
	every    uint64
	next     uint64
	base     Counters
	baseInst uint64
	rows     []IntervalRow
}

// NewIntervalReader opens a stream over a live counter source (typically
// Machine.Counters as a method value). The first window starts at the
// source's current state.
func NewIntervalReader(read func() Counters, every uint64) (*IntervalReader, error) {
	if every == 0 {
		return nil, fmt.Errorf("perf: zero interval")
	}
	r := &IntervalReader{read: read, every: every}
	r.base = read()
	r.baseInst = r.base.Get(InstRetired)
	r.next = r.baseInst + every
	return r, nil
}

// Tick advances the stream; inst is the current retired-instruction
// count. Until the boundary passes this is one compare, so it can sit on
// the machine's per-access path.
func (r *IntervalReader) Tick(inst uint64) {
	if inst < r.next {
		return
	}
	r.emit(r.read())
}

// Flush closes the open partial window, if it is non-empty.
func (r *IntervalReader) Flush() {
	if cur := r.read(); cur.Get(InstRetired) > r.baseInst {
		r.emit(cur)
	}
}

func (r *IntervalReader) emit(cur Counters) {
	curInst := cur.Get(InstRetired)
	r.rows = append(r.rows, IntervalRow{
		Index:     len(r.rows),
		InstStart: r.baseInst,
		InstEnd:   curInst,
		Delta:     Delta(r.base, cur),
	})
	r.base = cur
	r.baseInst = curInst
	r.next = curInst + r.every
}

// Rows returns the rows streamed so far.
func (r *IntervalReader) Rows() []IntervalRow { return r.rows }

// --- encoders -------------------------------------------------------------

// intervalCSVHeader builds the header: row fields then one column per
// event in definition order.
func intervalCSVHeader() []string {
	h := []string{"index", "inst_start", "inst_end"}
	for e := Event(0); e < NumEvents; e++ {
		h = append(h, e.String())
	}
	return h
}

// WriteIntervalsCSV encodes rows as CSV with a header row, one column
// per PMU event.
func WriteIntervalsCSV(w io.Writer, rows []IntervalRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(intervalCSVHeader()); err != nil {
		return err
	}
	rec := make([]string, 3+int(NumEvents))
	for _, r := range rows {
		rec[0] = strconv.Itoa(r.Index)
		rec[1] = strconv.FormatUint(r.InstStart, 10)
		rec[2] = strconv.FormatUint(r.InstEnd, 10)
		for e := Event(0); e < NumEvents; e++ {
			rec[3+e] = strconv.FormatUint(r.Delta.Get(e), 10)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadIntervalsCSV decodes a WriteIntervalsCSV stream.
func ReadIntervalsCSV(r io.Reader) ([]IntervalRow, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("perf: intervals csv header: %w", err)
	}
	if len(header) != 3+int(NumEvents) {
		return nil, fmt.Errorf("perf: intervals csv: %d columns, want %d", len(header), 3+int(NumEvents))
	}
	var out []IntervalRow
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		var row IntervalRow
		if row.Index, err = strconv.Atoi(rec[0]); err != nil {
			return nil, fmt.Errorf("perf: intervals csv index: %w", err)
		}
		if row.InstStart, err = strconv.ParseUint(rec[1], 10, 64); err != nil {
			return nil, fmt.Errorf("perf: intervals csv inst_start: %w", err)
		}
		if row.InstEnd, err = strconv.ParseUint(rec[2], 10, 64); err != nil {
			return nil, fmt.Errorf("perf: intervals csv inst_end: %w", err)
		}
		for e := Event(0); e < NumEvents; e++ {
			v, err := strconv.ParseUint(rec[3+e], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("perf: intervals csv %s: %w", e, err)
			}
			row.Delta.Add(e, v)
		}
		out = append(out, row)
	}
}

// intervalJSON is the JSONL wire form: counts as an array in event
// definition order, which keeps lines compact and field order
// deterministic.
type intervalJSON struct {
	Index     int      `json:"index"`
	InstStart uint64   `json:"inst_start"`
	InstEnd   uint64   `json:"inst_end"`
	Counts    []uint64 `json:"counts"`
}

// WriteIntervalsJSONL encodes rows as JSON Lines.
func WriteIntervalsJSONL(w io.Writer, rows []IntervalRow) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	counts := make([]uint64, NumEvents)
	for _, r := range rows {
		for e := Event(0); e < NumEvents; e++ {
			counts[e] = r.Delta.Get(e)
		}
		if err := enc.Encode(intervalJSON{Index: r.Index, InstStart: r.InstStart, InstEnd: r.InstEnd, Counts: counts}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadIntervalsJSONL decodes a WriteIntervalsJSONL stream.
func ReadIntervalsJSONL(r io.Reader) ([]IntervalRow, error) {
	dec := json.NewDecoder(r)
	var out []IntervalRow
	for {
		var j intervalJSON
		if err := dec.Decode(&j); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		if len(j.Counts) != int(NumEvents) {
			return nil, fmt.Errorf("perf: intervals jsonl: %d counts, want %d", len(j.Counts), NumEvents)
		}
		row := IntervalRow{Index: j.Index, InstStart: j.InstStart, InstEnd: j.InstEnd}
		for e := Event(0); e < NumEvents; e++ {
			row.Delta.Add(e, j.Counts[e])
		}
		out = append(out, row)
	}
}
