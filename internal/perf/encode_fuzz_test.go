package perf

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzSampleEncodingRoundTrip drives the sample CSV and JSONL codecs
// with arbitrary field values: every valid sample must survive both
// encode/decode cycles bit-identically.
func FuzzSampleEncodingRoundTrip(f *testing.F) {
	f.Add(uint64(0x7f0000001238), uint64(212), uint64(123456), uint64(4096), uint8(10), uint8(3), uint8(0))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint8(0), uint8(0), uint8(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), uint8(255), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, va, cycles, inst, weight uint64, ev, level, outcome uint8) {
		want := []Sample{{
			Event:      Event(ev) % NumEvents,
			VA:         va,
			Page:       va &^ 0xFFF,
			WalkCycles: cycles,
			Level:      PTELevel(level) % NumPTELevels,
			Outcome:    SampleOutcome(outcome) % NumOutcomes,
			Inst:       inst,
			Weight:     weight,
		}}
		var csvBuf, jsonBuf bytes.Buffer
		if err := WriteSamplesCSV(&csvBuf, want); err != nil {
			t.Fatal(err)
		}
		if err := WriteSamplesJSONL(&jsonBuf, want); err != nil {
			t.Fatal(err)
		}
		gotCSV, err := ReadSamplesCSV(&csvBuf)
		if err != nil {
			t.Fatalf("csv decode: %v", err)
		}
		gotJSON, err := ReadSamplesJSONL(&jsonBuf)
		if err != nil {
			t.Fatalf("jsonl decode: %v", err)
		}
		if !reflect.DeepEqual(gotCSV, want) {
			t.Errorf("csv round trip: got %+v want %+v", gotCSV, want)
		}
		if !reflect.DeepEqual(gotJSON, want) {
			t.Errorf("jsonl round trip: got %+v want %+v", gotJSON, want)
		}
	})
}

// FuzzIntervalEncodingRoundTrip does the same for interval rows, with
// the row's counter file filled from a seeded stream so every event
// column is exercised.
func FuzzIntervalEncodingRoundTrip(f *testing.F) {
	f.Add(int64(1), 3)
	f.Add(int64(42), 0)
	f.Add(int64(-7), 17)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n < 0 || n > 64 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		want := make([]IntervalRow, n)
		inst := uint64(0)
		for i := range want {
			want[i].Index = i
			want[i].InstStart = inst
			inst += rng.Uint64() % 1_000_000
			want[i].InstEnd = inst
			for e := Event(0); e < NumEvents; e++ {
				want[i].Delta.Add(e, rng.Uint64())
			}
		}
		var csvBuf, jsonBuf bytes.Buffer
		if err := WriteIntervalsCSV(&csvBuf, want); err != nil {
			t.Fatal(err)
		}
		if err := WriteIntervalsJSONL(&jsonBuf, want); err != nil {
			t.Fatal(err)
		}
		gotCSV, err := ReadIntervalsCSV(&csvBuf)
		if err != nil {
			t.Fatalf("csv decode: %v", err)
		}
		gotJSON, err := ReadIntervalsJSONL(&jsonBuf)
		if err != nil {
			t.Fatalf("jsonl decode: %v", err)
		}
		if n == 0 {
			if len(gotCSV) != 0 || len(gotJSON) != 0 {
				t.Fatalf("empty stream decoded non-empty")
			}
			return
		}
		if !reflect.DeepEqual(gotCSV, want) {
			t.Errorf("csv round trip mismatch (%d rows)", n)
		}
		if !reflect.DeepEqual(gotJSON, want) {
			t.Errorf("jsonl round trip mismatch (%d rows)", n)
		}
	})
}
