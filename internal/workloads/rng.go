package workloads

// RNG is a small deterministic generator (splitmix64) for input
// construction and workload drivers. Generators must be reproducible per
// (workload, size): the same instance is rebuilt identically for the 4 KB,
// 2 MB and 1 GB runs the overhead methodology compares.
type RNG struct{ s uint64 }

// NewRNG seeds a generator. Seed 0 is remapped so the stream is never
// degenerate.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n uint64) uint64 { return r.Next() % n }

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
