package graph

import (
	"math"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

func newKernelMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// hostComponents computes connected components with union-find on the
// host CSR (the oracle for the guest cc kernel).
func hostComponents(h hostCSR) []uint32 {
	parent := make([]uint32, h.n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(u uint32) uint32
	find = func(u uint32) uint32 {
		for parent[u] != u {
			parent[u] = parent[parent[u]]
			u = parent[u]
		}
		return u
	}
	for u := uint64(0); u < h.n; u++ {
		for _, v := range h.nbr[h.off[u]:h.off[u+1]] {
			ru, rv := find(uint32(u)), find(v)
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
		}
	}
	out := make([]uint32, h.n)
	for i := range out {
		out[i] = find(uint32(i))
	}
	return out
}

func TestCCMatchesUnionFind(t *testing.T) {
	m := newKernelMachine(t)
	h := generate("kron", 8) // kron graphs have isolated vertices: good test
	g, err := loadCSR(m, h)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := newCC(m, g)
	c := inst.(*cc)
	// Run label propagation to a fixed point (no budget pressure).
	for round := 0; round < 64; round++ {
		changed := false
		for u := uint64(0); u < g.N; u++ {
			cu := c.comp.Peek(u)
			best := cu
			for e := h.off[u]; e < h.off[u+1]; e++ {
				if cv := c.comp.Peek(uint64(h.nbr[e])); cv < best {
					best = cv
				}
			}
			if best != cu {
				c.comp.Poke(u, best)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	oracle := hostComponents(h)
	// Same partition: two vertices share a guest label iff they share an
	// oracle root.
	guestOf := map[uint32]uint64{}
	for u := uint64(0); u < g.N; u++ {
		root := oracle[u]
		label := c.comp.Peek(u)
		if prev, seen := guestOf[root]; seen {
			if prev != label {
				t.Fatalf("component of root %d has labels %d and %d", root, prev, label)
			}
		} else {
			guestOf[root] = label
		}
	}
	// And distinct components must not share labels.
	seen := map[uint64]uint32{}
	for root, label := range guestOf {
		if other, dup := seen[label]; dup {
			t.Fatalf("label %d shared by components %d and %d", label, root, other)
		}
		seen[label] = root
	}
}

func TestPRRanksFormDistribution(t *testing.T) {
	m := newKernelMachine(t)
	h := generate("urand", 8)
	g, err := loadCSR(m, h)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := newPR(m, g)
	p := inst.(*pr)
	p.Run(600_000) // a few full iterations at this scale
	var sum float64
	for u := uint64(0); u < g.N; u++ {
		r := math.Float64frombits(p.rank.Peek(u))
		if r < 0 || math.IsNaN(r) {
			t.Fatalf("rank[%d] = %v", u, r)
		}
		sum += r
	}
	// Ranks of a symmetric graph with the uniform start stay a
	// near-distribution (dangling mass loss is bounded by the zero-degree
	// vertex fraction, tiny for degree-16 urand).
	if sum < 0.9 || sum > 1.1 {
		t.Errorf("rank sum = %v, want ~1", sum)
	}
}

func TestBCSigmaCountsPaths(t *testing.T) {
	m := newKernelMachine(t)
	h := generate("urand", 7)
	g, err := loadCSR(m, h)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := newBC(m, g)
	b := inst.(*bc)
	b.source(workloads.NewBudget(m, 1<<62))
	// Verify sigma against a host BFS path-count from the same source:
	// identify the source as the unique vertex with dist 0.
	var src uint64 = ^uint64(0)
	for u := uint64(0); u < g.N; u++ {
		if b.dist.Peek(u) == 0 {
			src = u
			break
		}
	}
	if src == ^uint64(0) {
		t.Fatal("no source found")
	}
	dist := make([]uint64, g.N)
	sigma := make([]uint64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src], sigma[src] = 0, 1
	queue := []uint64{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v32 := range h.nbr[h.off[u]:h.off[u+1]] {
			v := uint64(v32)
			if dist[v] == inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for u := uint64(0); u < g.N; u++ {
		if b.dist.Peek(u) != dist[u] {
			t.Fatalf("dist[%d] = %d, oracle %d", u, b.dist.Peek(u), dist[u])
		}
		if b.sigma.Peek(u) != sigma[u] {
			t.Fatalf("sigma[%d] = %d, oracle %d", u, b.sigma.Peek(u), sigma[u])
		}
	}
}

// hostDijkstra is the oracle for the guest sssp kernel.
func hostDijkstra(h hostCSR, weights []uint64, src uint64) []uint64 {
	const infd = ^uint64(0)
	dist := make([]uint64, h.n)
	for i := range dist {
		dist[i] = infd
	}
	dist[src] = 0
	done := make([]bool, h.n)
	for {
		// Linear-scan extract-min (fine at test scale).
		u, best := uint64(0), infd
		for v := uint64(0); v < h.n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if best == infd {
			return dist
		}
		done[u] = true
		for e := h.off[u]; e < h.off[u+1]; e++ {
			v := uint64(h.nbr[e])
			if nd := dist[u] + weights[e]; nd < dist[v] {
				dist[v] = nd
			}
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	m := newKernelMachine(t)
	h := generate("urand", 7)
	g, err := loadCSR(m, h)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := newSSSP(m, g)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.(*sssp)
	s.source(workloads.NewBudget(m, 1<<62))
	// Recover the source and the weights the kernel generated.
	var src uint64 = ^uint64(0)
	for u := uint64(0); u < g.N; u++ {
		if s.dist.Peek(u) == 0 {
			src = u
			break
		}
	}
	if src == ^uint64(0) {
		t.Fatal("no source")
	}
	weights := make([]uint64, g.M)
	for e := uint64(0); e < g.M; e++ {
		weights[e] = s.weight.Peek(e)
	}
	oracle := hostDijkstra(h, weights, src)
	for u := uint64(0); u < g.N; u++ {
		if s.dist.Peek(u) != oracle[u] {
			t.Fatalf("dist[%d] = %d, oracle %d", u, s.dist.Peek(u), oracle[u])
		}
	}
}

func TestSSSPRegisteredAsExtension(t *testing.T) {
	spec, err := workloads.ByName("sssp-urand")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Suite != "gapbs-ext" {
		t.Errorf("sssp suite = %q; must stay out of the paper's Table I set", spec.Suite)
	}
}
