// Package graph implements the GAP benchmark suite slice of the paper's
// workload table: the bc, bfs, cc, pr and tc kernels driven by the urand
// (uniform random) and kron (Kronecker/R-MAT) input generators, all
// executing against simulated guest memory.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"atscale/internal/workloads"
)

// degree is the average degree of generated graphs (gapbs' -d default).
const degree = 16

// kron initiator matrix probabilities (Graph500 / gapbs defaults).
const (
	kronA = 0.57
	kronB = 0.19
	kronC = 0.19
)

// edge is one generated edge (host-side, transient).
type edge struct{ u, v uint32 }

// genURand generates 2^scale vertices with degree*2^scale uniform random
// edges, the gapbs "-u" generator.
func genURand(scale uint64, rng *workloads.RNG) []edge {
	n := uint64(1) << scale
	m := degree * n
	edges := make([]edge, 0, m)
	for i := uint64(0); i < m; i++ {
		edges = append(edges, edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))})
	}
	return edges
}

// genKron generates an R-MAT/Kronecker graph (the gapbs "-g" generator):
// each edge recursively descends the 2x2 initiator matrix, yielding a
// skewed, scale-free degree distribution.
func genKron(scale uint64, rng *workloads.RNG) []edge {
	n := uint64(1) << scale
	m := degree * n
	edges := make([]edge, 0, m)
	for i := uint64(0); i < m; i++ {
		var u, v uint64
		for bit := uint64(0); bit < scale; bit++ {
			p := rng.Float64()
			switch {
			case p < kronA:
				// top-left: no bits set
			case p < kronA+kronB:
				v |= 1 << bit
			case p < kronA+kronB+kronC:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, edge{uint32(u), uint32(v)})
	}
	return edges
}

// hostCSR is the host-side CSR built during setup, before the graph is
// poked into guest memory.
type hostCSR struct {
	n   uint64
	off []uint64 // n+1
	nbr []uint32 // off[n]
}

// buildHostCSR symmetrizes the edge list (gapbs treats these graphs as
// undirected), drops self-loops, sorts each adjacency list, and removes
// duplicate edges.
func buildHostCSR(n uint64, edges []edge) hostCSR {
	deg := make([]uint64, n+1)
	for _, e := range edges {
		if e.u == e.v {
			continue
		}
		deg[e.u]++
		deg[e.v]++
	}
	off := make([]uint64, n+1)
	var sum uint64
	for i := uint64(0); i < n; i++ {
		off[i] = sum
		sum += deg[i]
	}
	off[n] = sum
	nbr := make([]uint32, sum)
	pos := append([]uint64(nil), off...)
	for _, e := range edges {
		if e.u == e.v {
			continue
		}
		nbr[pos[e.u]] = e.v
		pos[e.u]++
		nbr[pos[e.v]] = e.u
		pos[e.v]++
	}
	// Sort and dedupe each adjacency list in place.
	w := uint64(0)
	newOff := make([]uint64, n+1)
	for u := uint64(0); u < n; u++ {
		newOff[u] = w
		lo, hi := off[u], off[u+1]
		list := nbr[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		var last uint32
		first := true
		for _, v := range list {
			if first || v != last {
				nbr[w] = v
				w++
				first = false
				last = v
			}
		}
	}
	newOff[n] = w
	return hostCSR{n: n, off: newOff, nbr: nbr[:w]}
}

// relabelByDegree returns a copy of g with vertices renumbered by
// descending degree — the gapbs triangle-counting optimization the paper
// credits for tc-kron's graceful scaling (§V-A).
func (g hostCSR) relabelByDegree() hostCSR {
	order := make([]uint32, g.n)
	for i := range order {
		order[i] = uint32(i)
	}
	degOf := func(u uint32) uint64 { return g.off[u+1] - g.off[u] }
	sort.Slice(order, func(i, j int) bool {
		di, dj := degOf(order[i]), degOf(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	newID := make([]uint32, g.n)
	for rank, old := range order {
		newID[old] = uint32(rank)
	}
	out := hostCSR{n: g.n, off: make([]uint64, g.n+1), nbr: make([]uint32, len(g.nbr))}
	var w uint64
	for rank := uint64(0); rank < g.n; rank++ {
		out.off[rank] = w
		old := order[rank]
		for e := g.off[old]; e < g.off[old+1]; e++ {
			out.nbr[w] = newID[g.nbr[e]]
			w++
		}
		list := out.nbr[out.off[rank]:w]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	}
	out.off[g.n] = w
	return out
}

// genCache memoizes host CSRs: the overhead methodology rebuilds the same
// instance for the 4 KB, 2 MB and 1 GB runs, several kernels share each
// generated graph, and regeneration dominates setup time at large scales.
// Total cache size across both generators and all ladder scales is a few
// hundred megabytes of host memory.
//
// Concurrent run units (the core campaign scheduler builds instances from
// many goroutines) coalesce per key: the first requester generates, later
// ones wait on its entry and share the finished CSR, which is immutable
// once built.
var (
	genMu    sync.Mutex
	genCache = map[string]*genEntry{}
)

type genEntry struct {
	once sync.Once
	h    hostCSR
}

// cached returns the memoized CSR for key, building it at most once even
// under concurrent callers.
func cached(key string, build func() hostCSR) hostCSR {
	genMu.Lock()
	e, ok := genCache[key]
	if !ok {
		e = &genEntry{}
		genCache[key] = e
	}
	genMu.Unlock()
	e.once.Do(func() { e.h = build() })
	return e.h
}

// generate builds the host CSR for a generator name and scale,
// deterministically per (generator, scale).
func generate(gen string, scale uint64) hostCSR {
	return cached(fmt.Sprintf("%s-%d", gen, scale), func() hostCSR {
		return generateUncached(gen, scale)
	})
}

// generateRelabeled is generate followed by the degree relabel (tc's
// input), cached separately.
func generateRelabeled(gen string, scale uint64) hostCSR {
	return cached(fmt.Sprintf("%s-%d-relabel", gen, scale), func() hostCSR {
		return generate(gen, scale).relabelByDegree()
	})
}

func generateUncached(gen string, scale uint64) hostCSR {
	rng := workloads.NewRNG(scale*1315423911 + uint64(len(gen)))
	var edges []edge
	switch gen {
	case "urand":
		edges = genURand(scale, rng)
	case "kron":
		edges = genKron(scale, rng)
	default:
		panic("graph: unknown generator " + gen)
	}
	return buildHostCSR(uint64(1)<<scale, edges)
}
