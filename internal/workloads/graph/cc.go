package graph

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// cc is connected components by label propagation (the gapbs cc kernel's
// propagation structure): each round every vertex adopts the minimum label
// among itself and its neighbours, until a fixed point.
type cc struct {
	m    *machine.Machine
	g    *CSR
	comp workloads.Array
}

func newCC(m *machine.Machine, g *CSR) (workloads.Instance, error) {
	comp, err := workloads.NewArray(m, g.N)
	if err != nil {
		return nil, err
	}
	c := &cc{m: m, g: g, comp: comp}
	c.reset()
	return c, nil
}

func (c *cc) reset() {
	for i := uint64(0); i < c.g.N; i++ {
		c.comp.Poke(i, i)
	}
}

func (c *cc) Run(budget uint64) {
	bud := workloads.NewBudget(c.m, budget)
	for !bud.Done() {
		changed := false
		for u := uint64(0); u < c.g.N; u++ {
			lo := c.g.Off(u)
			hi := c.g.Off(u + 1)
			cu := c.comp.Get(u)
			best := cu
			for e := lo; e < hi; e++ {
				v := c.g.Nbr(e)
				cv := c.comp.Get(v)
				smaller := cv < best
				c.m.Branch(0xCC1, smaller)
				if smaller {
					best = cv
				}
				c.m.Ops(1)
			}
			if best != cu {
				c.comp.Set(u, best)
				changed = true
			}
			c.m.Branch(0xCC2, best != cu)
			if u&2047 == 0 && bud.Done() {
				return
			}
		}
		if !changed {
			// Fixed point: restart the computation (fresh trial), as the
			// harness loops kernel trials to fill the budget.
			c.reset()
		}
	}
}
