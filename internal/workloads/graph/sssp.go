package graph

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// sssp is single-source shortest paths over unit-ish random weights —
// the sixth GAP kernel (the paper's Table I uses five; sssp is registered
// as an extension under the gapbs-ext suite). The implementation is
// Bellman-Ford-style label correcting with a FIFO worklist, the simple
// cousin of gapbs' delta-stepping: the access texture (frontier queue +
// random dist updates + weight loads) is what matters here.
type sssp struct {
	m      *machine.Machine
	g      *CSR
	weight workloads.Array // per directed edge entry
	dist   workloads.Array
	queue  workloads.Array // circular worklist
	inQ    workloads.Array
	rng    *workloads.RNG
}

func newSSSP(m *machine.Machine, g *CSR) (workloads.Instance, error) {
	weight, err := workloads.NewArray(m, g.M)
	if err != nil {
		return nil, err
	}
	rng := workloads.NewRNG(g.M ^ 0x555)
	for e := uint64(0); e < g.M; e++ {
		weight.Poke(e, rng.Intn(255)+1)
	}
	var arrs [3]workloads.Array
	for i := range arrs {
		if arrs[i], err = workloads.NewArray(m, g.N); err != nil {
			return nil, err
		}
	}
	return &sssp{
		m: m, g: g, weight: weight,
		dist: arrs[0], queue: arrs[1], inQ: arrs[2],
		rng: workloads.NewRNG(g.N ^ 0x55501),
	}, nil
}

func (s *sssp) Run(budget uint64) {
	bud := workloads.NewBudget(s.m, budget)
	for !bud.Done() {
		s.source(bud)
	}
}

func (s *sssp) source(bud *workloads.Budget) {
	for i := uint64(0); i < s.g.N; i++ {
		s.dist.Poke(i, inf)
		s.inQ.Poke(i, 0)
	}
	src := s.rng.Intn(s.g.N)
	s.dist.Set(src, 0)
	s.queue.Set(0, src)
	s.inQ.Set(src, 1)
	head, tail, live := uint64(0), uint64(1), uint64(1)
	for live > 0 {
		u := s.queue.Get(head % s.g.N)
		head++
		live--
		s.inQ.Set(u, 0)
		du := s.dist.Get(u)
		lo := s.g.Off(u)
		hi := s.g.Off(u + 1)
		s.m.Ops(4)
		for e := lo; e < hi; e++ {
			v := s.g.Nbr(e)
			w := s.weight.Get(e)
			nd := du + w
			dv := s.dist.Get(v)
			shorter := nd < dv
			s.m.Branch(0x555A, shorter)
			if shorter {
				s.dist.Set(v, nd)
				enqueued := s.inQ.Get(v) != 0
				s.m.Branch(0x555B, enqueued)
				if !enqueued && live < s.g.N-1 {
					s.queue.Set(tail%s.g.N, v)
					tail++
					live++
					s.inQ.Set(v, 1)
				}
			}
			s.m.Ops(1)
		}
		if head&511 == 0 && bud.Done() {
			return
		}
	}
}

func init() {
	for _, gen := range []string{"urand", "kron"} {
		workloads.Register(&workloads.Spec{
			Program:   "sssp",
			Generator: gen,
			Suite:     "gapbs-ext",
			Kind:      "graph processing (MT)",
			Ladder:    graphLadder,
			Build:     graphBuilder(gen, newSSSP),
		})
	}
}
