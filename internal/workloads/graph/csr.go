package graph

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// CSR is the guest-memory compressed-sparse-row graph every kernel
// traverses. Offsets and neighbours are 8-byte words in simulated memory;
// every traversal step is a retired load through the full translation
// stack.
type CSR struct {
	m *machine.Machine
	// N is the vertex count, M the directed edge-entry count.
	N, M uint64
	off  workloads.Array // N+1 entries
	nbr  workloads.Array // M entries
}

// loadCSR allocates guest arrays and pokes the host CSR into them
// (untimed setup).
func loadCSR(m *machine.Machine, h hostCSR) (*CSR, error) {
	off, err := workloads.NewArray(m, h.n+1)
	if err != nil {
		return nil, err
	}
	nbr, err := workloads.NewArray(m, uint64(len(h.nbr)))
	if err != nil {
		return nil, err
	}
	for i, v := range h.off {
		off.Poke(uint64(i), v)
	}
	for i, v := range h.nbr {
		nbr.Poke(uint64(i), uint64(v))
	}
	return &CSR{m: m, N: h.n, M: uint64(len(h.nbr)), off: off, nbr: nbr}, nil
}

// Off retires a load of the offset entry for u (call with u in [0, N]).
func (g *CSR) Off(u uint64) uint64 { return g.off.Get(u) }

// Nbr retires a load of neighbour entry e.
func (g *CSR) Nbr(e uint64) uint64 { return g.nbr.Get(e) }

// graphBuilder adapts a kernel constructor into a workloads.BuildFunc.
func graphBuilder(gen string, mk func(*machine.Machine, *CSR) (workloads.Instance, error)) workloads.BuildFunc {
	return func(m *machine.Machine, scale uint64) (workloads.Instance, error) {
		g, err := loadCSR(m, generate(gen, scale))
		if err != nil {
			return nil, err
		}
		return mk(m, g)
	}
}

// graphLadder is the scale ladder shared by all graph workloads
// (2^scale vertices, ~32*2^scale directed edge entries after
// symmetrization).
var graphLadder = []uint64{12, 13, 14, 15, 16, 17, 18, 19, 20}

func registerKernel(program string, mk func(*machine.Machine, *CSR) (workloads.Instance, error)) {
	for _, gen := range []string{"urand", "kron"} {
		workloads.Register(&workloads.Spec{
			Program:   program,
			Generator: gen,
			Suite:     "gapbs",
			Kind:      "graph processing (MT)",
			Ladder:    graphLadder,
			Build:     graphBuilder(gen, mk),
		})
	}
}

func init() {
	registerKernel("bfs", newBFS)
	registerKernel("pr", newPR)
	registerKernel("cc", newCC)
	registerKernel("bc", newBC)
	// tc runs on the degree-relabelled graph (the gapbs optimization the
	// paper credits for tc-kron's graceful scaling).
	for _, gen := range []string{"urand", "kron"} {
		gen := gen
		workloads.Register(&workloads.Spec{
			Program:   "tc",
			Generator: gen,
			Suite:     "gapbs",
			Kind:      "graph processing (MT)",
			Ladder:    graphLadder,
			Build: func(m *machine.Machine, scale uint64) (workloads.Instance, error) {
				g, err := loadCSR(m, generateRelabeled(gen, scale))
				if err != nil {
					return nil, err
				}
				return newTC(m, g)
			},
		})
	}
}
