package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteEdgeList regenerates the raw (pre-symmetrization) edge list of a
// generator at the given scale and writes it as "u v" lines — the
// standalone input-generator surface (cmd/atgen), mirroring how gapbs
// inputs can be dumped to .el files.
func WriteEdgeList(w io.Writer, gen string, scale uint64) (int, error) {
	h := generate(gen, scale)
	bw := bufio.NewWriter(w)
	edges := 0
	for u := uint64(0); u < h.n; u++ {
		for _, v := range h.nbr[h.off[u]:h.off[u+1]] {
			// Emit each undirected edge once.
			if uint64(v) < u {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return edges, err
			}
			edges++
		}
	}
	return edges, bw.Flush()
}

// Stats summarizes a generated graph for tooling output.
type Stats struct {
	Vertices uint64
	// DirectedEdges counts CSR entries (2x undirected edges).
	DirectedEdges uint64
	MaxDegree     uint64
}

// GraphStats regenerates a graph and summarizes it.
func GraphStats(gen string, scale uint64) Stats {
	h := generate(gen, scale)
	s := Stats{Vertices: h.n, DirectedEdges: uint64(len(h.nbr))}
	for u := uint64(0); u < h.n; u++ {
		if d := h.off[u+1] - h.off[u]; d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	return s
}
