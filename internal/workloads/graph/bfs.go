package graph

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// inf marks an unvisited vertex.
const inf = ^uint64(0)

// bfs is top-down breadth-first search from random sources (the gapbs bfs
// kernel's top-down phase; sources re-drawn per trial as gapbs does).
type bfs struct {
	m     *machine.Machine
	g     *CSR
	dist  workloads.Array
	queue workloads.Array
	rng   *workloads.RNG
}

func newBFS(m *machine.Machine, g *CSR) (workloads.Instance, error) {
	dist, err := workloads.NewArray(m, g.N)
	if err != nil {
		return nil, err
	}
	queue, err := workloads.NewArray(m, g.N)
	if err != nil {
		return nil, err
	}
	return &bfs{m: m, g: g, dist: dist, queue: queue, rng: workloads.NewRNG(g.N)}, nil
}

func (b *bfs) Run(budget uint64) {
	bud := workloads.NewBudget(b.m, budget)
	for !bud.Done() {
		b.trial(bud)
	}
}

// trial runs one BFS from a random source, stopping early if the budget
// expires.
func (b *bfs) trial(bud *workloads.Budget) {
	// Inter-trial reset is untimed, like the resets between gapbs trials.
	for i := uint64(0); i < b.g.N; i++ {
		b.dist.Poke(i, inf)
	}
	src := b.rng.Intn(b.g.N)
	b.dist.Set(src, 0)
	b.queue.Set(0, src)
	head, tail := uint64(0), uint64(1)
	for head < tail {
		u := b.queue.Get(head)
		head++
		du := b.dist.Get(u)
		lo := b.g.Off(u)
		hi := b.g.Off(u + 1)
		b.m.Ops(3) // index arithmetic, loop setup
		for e := lo; e < hi; e++ {
			v := b.g.Nbr(e)
			d := b.dist.Get(v)
			unvisited := d == inf
			b.m.Branch(0xBF5, unvisited)
			if unvisited {
				b.dist.Set(v, du+1)
				b.queue.Set(tail, v)
				tail++
			}
			b.m.Ops(1)
		}
		if head&1023 == 0 && bud.Done() {
			return
		}
	}
}
