package graph

import (
	"sort"
	"testing"

	"atscale/internal/arch"
	"atscale/internal/machine"
	"atscale/internal/perf"
	"atscale/internal/workloads"
)

func TestGeneratorsDeterministic(t *testing.T) {
	for _, gen := range []string{"urand", "kron"} {
		a := generate(gen, 8)
		b := generate(gen, 8)
		if a.n != b.n || len(a.nbr) != len(b.nbr) {
			t.Fatalf("%s nondeterministic shapes", gen)
		}
		for i := range a.nbr {
			if a.nbr[i] != b.nbr[i] {
				t.Fatalf("%s nondeterministic at %d", gen, i)
			}
		}
	}
}

func checkCSRWellFormed(t *testing.T, h hostCSR) {
	t.Helper()
	if h.off[0] != 0 || h.off[h.n] != uint64(len(h.nbr)) {
		t.Fatal("offsets malformed")
	}
	for u := uint64(0); u < h.n; u++ {
		if h.off[u] > h.off[u+1] {
			t.Fatalf("offsets not monotone at %d", u)
		}
		list := h.nbr[h.off[u]:h.off[u+1]]
		if !sort.SliceIsSorted(list, func(i, j int) bool { return list[i] < list[j] }) {
			t.Fatalf("adjacency of %d not sorted", u)
		}
		for i := 1; i < len(list); i++ {
			if list[i] == list[i-1] {
				t.Fatalf("duplicate neighbour %d of %d", list[i], u)
			}
		}
		for _, v := range list {
			if uint64(v) >= h.n {
				t.Fatalf("neighbour %d out of range", v)
			}
			if uint64(v) == u {
				t.Fatalf("self loop at %d", u)
			}
		}
	}
}

func TestCSRWellFormed(t *testing.T) {
	for _, gen := range []string{"urand", "kron"} {
		checkCSRWellFormed(t, generate(gen, 8))
	}
}

func TestCSRSymmetric(t *testing.T) {
	h := generate("urand", 7)
	has := func(u, v uint32) bool {
		list := h.nbr[h.off[u]:h.off[u+1]]
		i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
		return i < len(list) && list[i] == v
	}
	for u := uint64(0); u < h.n; u++ {
		for _, v := range h.nbr[h.off[u]:h.off[u+1]] {
			if !has(v, uint32(u)) {
				t.Fatalf("edge %d->%d not symmetric", u, v)
			}
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	h := generate("kron", 8)
	r := h.relabelByDegree()
	checkCSRWellFormed(t, r)
	if len(r.nbr) != len(h.nbr) {
		t.Fatalf("relabel changed edge count: %d vs %d", len(r.nbr), len(h.nbr))
	}
	// Degrees must be non-increasing in the new numbering.
	for u := uint64(1); u < r.n; u++ {
		if r.off[u+1]-r.off[u] > r.off[u]-r.off[u-1] {
			t.Fatalf("degree ordering violated at %d", u)
		}
	}
	// Degree multiset preserved.
	degs := func(g hostCSR) []int {
		d := make([]int, g.n)
		for u := uint64(0); u < g.n; u++ {
			d[u] = int(g.off[u+1] - g.off[u])
		}
		sort.Ints(d)
		return d
	}
	dh, dr := degs(h), degs(r)
	for i := range dh {
		if dh[i] != dr[i] {
			t.Fatal("relabel changed degree multiset")
		}
	}
}

func TestKronIsSkewed(t *testing.T) {
	// Kron graphs must have a much higher max degree than urand at the
	// same scale (scale-free vs binomial).
	maxDeg := func(h hostCSR) uint64 {
		var m uint64
		for u := uint64(0); u < h.n; u++ {
			if d := h.off[u+1] - h.off[u]; d > m {
				m = d
			}
		}
		return m
	}
	u, k := generate("urand", 10), generate("kron", 10)
	if maxDeg(k) < 3*maxDeg(u) {
		t.Errorf("kron max degree %d not >> urand %d", maxDeg(k), maxDeg(u))
	}
}

func TestAllKernelsRegistered(t *testing.T) {
	want := []string{"bc", "bfs", "cc", "pr", "tc"}
	for _, prog := range want {
		for _, gen := range []string{"urand", "kron"} {
			if _, err := workloads.ByName(prog + "-" + gen); err != nil {
				t.Errorf("%s-%s not registered: %v", prog, gen, err)
			}
		}
	}
}

// TestKernelsRunAndCount runs every kernel at tiny scale and checks the
// measured region produced a plausible counter profile.
func TestKernelsRunAndCount(t *testing.T) {
	for _, name := range []string{"bfs-urand", "pr-urand", "cc-urand", "bc-kron", "tc-kron"} {
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 7)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := spec.Build(m, 10) // 1024 vertices
			if err != nil {
				t.Fatal(err)
			}
			start := m.Counters()
			inst.Run(100_000)
			d := perf.Delta(start, m.Counters())
			accesses := d.Get(perf.AllLoads) + d.Get(perf.AllStores)
			if accesses < 100_000 {
				t.Errorf("ran only %d accesses", accesses)
			}
			if accesses > 400_000 {
				t.Errorf("overran budget: %d accesses", accesses)
			}
			if d.Get(perf.Branches) == 0 {
				t.Error("kernel retired no branches")
			}
			if d.Get(perf.InstRetired) <= accesses {
				t.Error("no non-memory instructions retired")
			}
			if m.Footprint() == 0 {
				t.Error("zero footprint")
			}
		})
	}
}

func TestTCCountsTriangles(t *testing.T) {
	// Cross-check the guest tc kernel against a host-side count on a
	// small graph.
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 7)
	if err != nil {
		t.Fatal(err)
	}
	h := generate("urand", 7).relabelByDegree()
	g, err := loadCSR(m, h)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := newTC(m, g)
	k := inst.(*tc)
	k.pass(workloads.NewBudget(m, 1<<62)) // one full pass, no budget stop
	// Host count.
	adj := make([]map[uint32]bool, h.n)
	for u := uint64(0); u < h.n; u++ {
		adj[u] = map[uint32]bool{}
		for _, v := range h.nbr[h.off[u]:h.off[u+1]] {
			adj[u][v] = true
		}
	}
	var want uint64
	for u := uint64(0); u < h.n; u++ {
		for _, v := range h.nbr[h.off[u]:h.off[u+1]] {
			if uint64(v) <= u {
				continue
			}
			for _, w := range h.nbr[h.off[v]:h.off[v+1]] {
				if uint64(w) > uint64(v) && adj[u][w] {
					want++
				}
			}
		}
	}
	if k.triangles != want {
		t.Errorf("tc counted %d triangles, host count %d", k.triangles, want)
	}
}

func TestBFSVisitsComponent(t *testing.T) {
	m, err := machine.New(arch.DefaultSystem(), arch.Page4K, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadCSR(m, generate("urand", 8))
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := newBFS(m, g)
	b := inst.(*bfs)
	b.trial(workloads.NewBudget(m, 1<<62))
	// With degree 16 the graph is connected w.h.p.; every vertex must
	// have a finite distance.
	unreached := 0
	for i := uint64(0); i < g.N; i++ {
		if b.dist.Peek(i) == inf {
			unreached++
		}
	}
	if unreached > int(g.N)/100 {
		t.Errorf("%d/%d vertices unreached", unreached, g.N)
	}
}
