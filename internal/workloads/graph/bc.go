package graph

import (
	"math"

	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// bc is Brandes betweenness centrality (the gapbs bc kernel): a forward
// BFS counting shortest paths (sigma), then a reverse sweep over the BFS
// order accumulating dependencies (delta).
type bc struct {
	m     *machine.Machine
	g     *CSR
	dist  workloads.Array
	sigma workloads.Array
	delta workloads.Array // float64 bits
	queue workloads.Array
	score workloads.Array // float64 bits
	rng   *workloads.RNG
}

func newBC(m *machine.Machine, g *CSR) (workloads.Instance, error) {
	var arrs [5]workloads.Array
	for i := range arrs {
		a, err := workloads.NewArray(m, g.N)
		if err != nil {
			return nil, err
		}
		arrs[i] = a
	}
	return &bc{
		m: m, g: g,
		dist: arrs[0], sigma: arrs[1], delta: arrs[2], queue: arrs[3], score: arrs[4],
		rng: workloads.NewRNG(g.N ^ 0xBC),
	}, nil
}

func (b *bc) Run(budget uint64) {
	bud := workloads.NewBudget(b.m, budget)
	for !bud.Done() {
		b.source(bud)
	}
}

// source processes one betweenness source: forward sigma-counting BFS,
// then the reverse dependency accumulation.
func (b *bc) source(bud *workloads.Budget) {
	// Per-source reset is untimed (between-trial state clearing).
	for i := uint64(0); i < b.g.N; i++ {
		b.dist.Poke(i, inf)
		b.sigma.Poke(i, 0)
		b.delta.Poke(i, 0)
	}
	src := b.rng.Intn(b.g.N)
	b.dist.Set(src, 0)
	b.sigma.Set(src, 1)
	b.queue.Set(0, src)
	head, tail := uint64(0), uint64(1)

	// Forward phase.
	for head < tail {
		u := b.queue.Get(head)
		head++
		du := b.dist.Get(u)
		su := b.sigma.Get(u)
		lo := b.g.Off(u)
		hi := b.g.Off(u + 1)
		b.m.Ops(3)
		for e := lo; e < hi; e++ {
			v := b.g.Nbr(e)
			dv := b.dist.Get(v)
			unvisited := dv == inf
			b.m.Branch(0xBC1, unvisited)
			if unvisited {
				dv = du + 1
				b.dist.Set(v, dv)
				b.queue.Set(tail, v)
				tail++
			}
			onPath := dv == du+1
			b.m.Branch(0xBC2, onPath)
			if onPath {
				b.sigma.Set(v, b.sigma.Get(v)+su)
			}
			b.m.Ops(1)
		}
		if head&1023 == 0 && bud.Done() {
			return
		}
	}

	// Reverse phase: accumulate dependencies in reverse BFS order.
	for i := tail; i > 0; i-- {
		u := b.queue.Get(i - 1)
		du := b.dist.Get(u)
		su := float64(b.sigma.Get(u))
		acc := 0.0
		lo := b.g.Off(u)
		hi := b.g.Off(u + 1)
		b.m.Ops(3)
		for e := lo; e < hi; e++ {
			v := b.g.Nbr(e)
			dv := b.dist.Get(v)
			succ := dv == du+1
			b.m.Branch(0xBC3, succ)
			if succ {
				sv := float64(b.sigma.Get(v))
				dl := math.Float64frombits(b.delta.Get(v))
				acc += su / sv * (1 + dl)
				b.m.Ops(3)
			}
		}
		b.delta.Set(u, math.Float64bits(acc))
		old := math.Float64frombits(b.score.Get(u))
		b.score.Set(u, math.Float64bits(old+acc))
		if i&1023 == 0 && bud.Done() {
			return
		}
	}
}
