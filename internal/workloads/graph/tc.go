package graph

import (
	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// tc is triangle counting by sorted-adjacency intersection on the
// degree-relabelled graph (the gapbs tc kernel). For every edge (u,v) with
// u < v it merges the two sorted neighbour lists counting common vertices
// beyond v, so each triangle is counted exactly once.
type tc struct {
	m         *machine.Machine
	g         *CSR
	triangles uint64
}

func newTC(m *machine.Machine, g *CSR) (workloads.Instance, error) {
	return &tc{m: m, g: g}, nil
}

func (t *tc) Run(budget uint64) {
	bud := workloads.NewBudget(t.m, budget)
	for !bud.Done() {
		t.pass(bud)
	}
}

func (t *tc) pass(bud *workloads.Budget) {
	for u := uint64(0); u < t.g.N; u++ {
		lo := t.g.Off(u)
		hi := t.g.Off(u + 1)
		t.m.Ops(2)
		for e := lo; e < hi; e++ {
			v := t.g.Nbr(e)
			forward := v > u
			t.m.Branch(0x7C1, forward)
			if !forward {
				continue
			}
			t.triangles += t.intersect(u, v, e, hi)
			// Relabelled scale-free graphs concentrate enormous merge
			// work on the first few hub vertices, so the budget must be
			// honoured per edge, not just per vertex.
			if e&15 == 0 && bud.Done() {
				return
			}
		}
		if u&15 == 0 && bud.Done() {
			return
		}
	}
}

// intersect merge-counts common neighbours of u (starting after edge eU,
// values > v by list order) and v (values > v).
func (t *tc) intersect(u, v, eU, hiU uint64) uint64 {
	loV := t.g.Off(v)
	hiV := t.g.Off(v + 1)
	t.m.Ops(2)
	i, j := eU+1, loV
	var count uint64
	for i < hiU && j < hiV {
		a := t.g.Nbr(i)
		b := t.g.Nbr(j)
		t.m.Ops(1)
		switch {
		case a == b:
			if a > v {
				count++
			}
			t.m.Branch(0x7C2, true)
			i++
			j++
		case a < b:
			t.m.Branch(0x7C2, false)
			i++
		default:
			t.m.Branch(0x7C2, false)
			j++
		}
	}
	return count
}
