package graph

import (
	"math"

	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// prDamping is the standard PageRank damping factor.
const prDamping = 0.85

// pr is pull-style PageRank (the gapbs pr kernel): each iteration gathers
// rank/degree contributions from every vertex's neighbours into a fresh
// rank vector, then the vectors swap (Jacobi iteration).
//
// Contributions are computed on the fly (rank and degree loads per edge)
// rather than via a precomputed contribution pass: the gather is the
// memory-bound heart of PageRank, and a budget-truncated run must sample
// it rather than the sequential prologue.
type pr struct {
	m    *machine.Machine
	g    *CSR
	rank workloads.Array // float64 bits, current iteration's input
	next workloads.Array // float64 bits, being produced
}

func newPR(m *machine.Machine, g *CSR) (workloads.Instance, error) {
	rank, err := workloads.NewArray(m, g.N)
	if err != nil {
		return nil, err
	}
	next, err := workloads.NewArray(m, g.N)
	if err != nil {
		return nil, err
	}
	init := math.Float64bits(1 / float64(g.N))
	for i := uint64(0); i < g.N; i++ {
		rank.Poke(i, init)
	}
	return &pr{m: m, g: g, rank: rank, next: next}, nil
}

func (p *pr) Run(budget uint64) {
	bud := workloads.NewBudget(p.m, budget)
	base := (1 - prDamping) / float64(p.g.N)
	for {
		for v := uint64(0); v < p.g.N; v++ {
			lo := p.g.Off(v)
			hi := p.g.Off(v + 1)
			sum := 0.0
			for e := lo; e < hi; e++ {
				u := p.g.Nbr(e)
				ru := math.Float64frombits(p.rank.Get(u))
				du := p.g.Off(u+1) - p.g.Off(u)
				if du == 0 {
					du = 1
				}
				sum += ru / float64(du)
				p.m.Ops(3)
			}
			p.m.Branch(0xF12, hi > lo)
			p.next.Set(v, math.Float64bits(base+prDamping*sum))
			if v&255 == 0 && bud.Done() {
				return
			}
		}
		// Jacobi swap: the produced vector becomes the next input.
		p.rank, p.next = p.next, p.rank
	}
}
