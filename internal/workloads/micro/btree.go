package micro

import (
	"sort"

	"atscale/internal/machine"
	"atscale/internal/workloads"
)

// btree is a B+tree index probe kernel: random point lookups descending a
// bulk-loaded tree in guest memory — the pointer-chasing index pattern of
// in-memory databases. Ladder parameter: number of keys.

// btreeFanout is the node fanout (8 keys + 8 children = one 128-byte
// node, two cache lines).
const btreeFanout = 8

// nodeWords is the guest-memory size of one node in 8-byte words.
const nodeWords = 2 * btreeFanout

// noKey pads unused key slots; all real keys are smaller.
const noKey = ^uint64(0)

type btree struct {
	m     *machine.Machine
	nodes workloads.Array
	root  uint64 // node index
	keys  []uint64
	rng   *workloads.RNG

	// found counts successful probes (sanity telemetry).
	found uint64
}

var btreeLadder = []uint64{1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22, 1 << 23}

// hostNode is the bulk-loader's staging form.
type hostNode struct {
	keys     [btreeFanout]uint64
	children [btreeFanout]uint64
	n        int
	leaf     bool
}

func newBTree(m *machine.Machine, nkeys uint64) (workloads.Instance, error) {
	rng := workloads.NewRNG(nkeys ^ 0xb7ee)
	keySet := make(map[uint64]bool, nkeys)
	keys := make([]uint64, 0, nkeys)
	for uint64(len(keys)) < nkeys {
		k := rng.Next() >> 1 // keep below noKey
		if !keySet[k] {
			keySet[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Bulk-load bottom-up: leaves hold (key, value) pairs, internal
	// nodes hold separator keys (max key of each child subtree).
	var nodes []hostNode
	level := make([]uint64, 0, (nkeys+btreeFanout-1)/btreeFanout) // node indices
	maxKey := make([]uint64, 0, cap(level))
	for i := 0; i < len(keys); i += btreeFanout {
		var n hostNode
		n.leaf = true
		for j := 0; j < btreeFanout; j++ {
			if i+j < len(keys) {
				n.keys[j] = keys[i+j]
				n.children[j] = keys[i+j] ^ 0x5a5a // the stored "value"
				n.n++
			} else {
				n.keys[j] = noKey
			}
		}
		level = append(level, uint64(len(nodes)))
		maxKey = append(maxKey, n.keys[n.n-1])
		nodes = append(nodes, n)
	}
	for len(level) > 1 {
		var nextLevel []uint64
		var nextMax []uint64
		for i := 0; i < len(level); i += btreeFanout {
			var n hostNode
			for j := 0; j < btreeFanout; j++ {
				if i+j < len(level) {
					n.keys[j] = maxKey[i+j]
					n.children[j] = level[i+j]
					n.n++
				} else {
					n.keys[j] = noKey
				}
			}
			nextLevel = append(nextLevel, uint64(len(nodes)))
			nextMax = append(nextMax, n.keys[n.n-1])
			nodes = append(nodes, n)
		}
		level, maxKey = nextLevel, nextMax
	}

	arr, err := workloads.NewArray(m, uint64(len(nodes))*nodeWords)
	if err != nil {
		return nil, err
	}
	for i, n := range nodes {
		base := uint64(i) * nodeWords
		for j := 0; j < btreeFanout; j++ {
			arr.Poke(base+uint64(j), n.keys[j])
			arr.Poke(base+uint64(btreeFanout+j), n.children[j])
		}
	}
	return &btree{m: m, nodes: arr, root: level[0], keys: keys, rng: rng}, nil
}

// probe performs one timed point lookup and returns the stored value.
func (t *btree) probe(key uint64) (uint64, bool) {
	idx := t.root
	for depth := 0; depth < 64; depth++ {
		base := idx * nodeWords
		slot := -1
		for j := 0; j < btreeFanout; j++ {
			k := t.nodes.Get(base + uint64(j))
			le := key <= k
			t.m.Branch(0xB7E1, le)
			t.m.Ops(1)
			if le {
				slot = j
				break
			}
		}
		if slot < 0 {
			return 0, false // beyond the max key
		}
		child := t.nodes.Get(base + uint64(btreeFanout+slot))
		if t.isLeaf(idx) {
			k := t.nodes.Get(base + uint64(slot))
			hit := k == key
			t.m.Branch(0xB7E2, hit)
			if hit {
				return child, true
			}
			return 0, false
		}
		idx = child
	}
	return 0, false
}

// isLeaf: bulk-loading appends leaves first, so leaf node indices are
// below the first internal node index — which equals the leaf count.
func (t *btree) isLeaf(idx uint64) bool {
	leaves := (uint64(len(t.keys)) + btreeFanout - 1) / btreeFanout
	return idx < leaves
}

func (t *btree) Run(budget uint64) {
	bud := workloads.NewBudget(t.m, budget)
	n := uint64(len(t.keys))
	for i := uint64(0); ; i++ {
		key := t.keys[t.rng.Intn(n)]
		if _, ok := t.probe(key); ok {
			t.found++
		}
		t.m.Ops(4)
		if i&255 == 0 && bud.Done() {
			return
		}
	}
}

func init() {
	workloads.Register(&workloads.Spec{
		Program:   "btree",
		Generator: "rand",
		Suite:     "micro",
		Kind:      "index probe (ST)",
		Ladder:    btreeLadder,
		Build: func(m *machine.Machine, nkeys uint64) (workloads.Instance, error) {
			return newBTree(m, nkeys)
		},
	})
}
